file(REMOVE_RECURSE
  "libtfmae_bench_common.a"
)
