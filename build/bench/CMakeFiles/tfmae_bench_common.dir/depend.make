# Empty dependencies file for tfmae_bench_common.
# This may be replaced when dependencies are built.
