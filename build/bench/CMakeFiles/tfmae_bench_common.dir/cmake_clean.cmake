file(REMOVE_RECURSE
  "CMakeFiles/tfmae_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tfmae_bench_common.dir/bench_common.cc.o.d"
  "libtfmae_bench_common.a"
  "libtfmae_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
