file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hparams.dir/bench_fig7_hparams.cc.o"
  "CMakeFiles/bench_fig7_hparams.dir/bench_fig7_hparams.cc.o.d"
  "bench_fig7_hparams"
  "bench_fig7_hparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
