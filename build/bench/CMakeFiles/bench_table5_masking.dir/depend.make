# Empty dependencies file for bench_table5_masking.
# This may be replaced when dependencies are built.
