file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_masking.dir/bench_table5_masking.cc.o"
  "CMakeFiles/bench_table5_masking.dir/bench_table5_masking.cc.o.d"
  "bench_table5_masking"
  "bench_table5_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
