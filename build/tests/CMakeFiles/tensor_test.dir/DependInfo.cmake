
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/tensor_test.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/tfmae_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfmae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tfmae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/tfmae_masking.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfmae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/tfmae_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tfmae_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/tfmae_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
