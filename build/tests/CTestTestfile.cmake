# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/masking_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/gru_test[1]_include.cmake")
include("/root/repo/build/tests/extended_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/range_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/forecasting_test[1]_include.cmake")
include("/root/repo/build/tests/ops_property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
