file(REMOVE_RECURSE
  "libtfmae_masking.a"
)
