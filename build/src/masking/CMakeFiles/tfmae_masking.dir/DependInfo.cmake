
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/masking/coefficient_of_variation.cc" "src/masking/CMakeFiles/tfmae_masking.dir/coefficient_of_variation.cc.o" "gcc" "src/masking/CMakeFiles/tfmae_masking.dir/coefficient_of_variation.cc.o.d"
  "/root/repo/src/masking/frequency_mask.cc" "src/masking/CMakeFiles/tfmae_masking.dir/frequency_mask.cc.o" "gcc" "src/masking/CMakeFiles/tfmae_masking.dir/frequency_mask.cc.o.d"
  "/root/repo/src/masking/temporal_mask.cc" "src/masking/CMakeFiles/tfmae_masking.dir/temporal_mask.cc.o" "gcc" "src/masking/CMakeFiles/tfmae_masking.dir/temporal_mask.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/tfmae_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
