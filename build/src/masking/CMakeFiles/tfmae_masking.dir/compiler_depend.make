# Empty compiler generated dependencies file for tfmae_masking.
# This may be replaced when dependencies are built.
