file(REMOVE_RECURSE
  "CMakeFiles/tfmae_masking.dir/coefficient_of_variation.cc.o"
  "CMakeFiles/tfmae_masking.dir/coefficient_of_variation.cc.o.d"
  "CMakeFiles/tfmae_masking.dir/frequency_mask.cc.o"
  "CMakeFiles/tfmae_masking.dir/frequency_mask.cc.o.d"
  "CMakeFiles/tfmae_masking.dir/temporal_mask.cc.o"
  "CMakeFiles/tfmae_masking.dir/temporal_mask.cc.o.d"
  "libtfmae_masking.a"
  "libtfmae_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
