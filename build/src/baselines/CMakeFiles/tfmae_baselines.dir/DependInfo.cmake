
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/anotran.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/anotran.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/anotran.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/conv_ae.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/conv_ae.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/conv_ae.cc.o.d"
  "/root/repo/src/baselines/dagmm.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dagmm.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dagmm.cc.o.d"
  "/root/repo/src/baselines/dcdetector.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dcdetector.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dcdetector.cc.o.d"
  "/root/repo/src/baselines/dense_ae.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dense_ae.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dense_ae.cc.o.d"
  "/root/repo/src/baselines/dsvdd.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dsvdd.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/dsvdd.cc.o.d"
  "/root/repo/src/baselines/iforest.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/iforest.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/iforest.cc.o.d"
  "/root/repo/src/baselines/lof.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/lof.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/lof.cc.o.d"
  "/root/repo/src/baselines/omni_ano.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/omni_ano.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/omni_ano.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/spectral_residual.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/spectral_residual.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/spectral_residual.cc.o.d"
  "/root/repo/src/baselines/thoc.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/thoc.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/thoc.cc.o.d"
  "/root/repo/src/baselines/tranad.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/tranad.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/tranad.cc.o.d"
  "/root/repo/src/baselines/usad.cc" "src/baselines/CMakeFiles/tfmae_baselines.dir/usad.cc.o" "gcc" "src/baselines/CMakeFiles/tfmae_baselines.dir/usad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tfmae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tfmae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfmae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/tfmae_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tfmae_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/tfmae_masking.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/tfmae_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
