file(REMOVE_RECURSE
  "libtfmae_baselines.a"
)
