# Empty dependencies file for tfmae_baselines.
# This may be replaced when dependencies are built.
