file(REMOVE_RECURSE
  "CMakeFiles/tfmae_baselines.dir/anotran.cc.o"
  "CMakeFiles/tfmae_baselines.dir/anotran.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/common.cc.o"
  "CMakeFiles/tfmae_baselines.dir/common.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/conv_ae.cc.o"
  "CMakeFiles/tfmae_baselines.dir/conv_ae.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/dagmm.cc.o"
  "CMakeFiles/tfmae_baselines.dir/dagmm.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/dcdetector.cc.o"
  "CMakeFiles/tfmae_baselines.dir/dcdetector.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/dense_ae.cc.o"
  "CMakeFiles/tfmae_baselines.dir/dense_ae.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/dsvdd.cc.o"
  "CMakeFiles/tfmae_baselines.dir/dsvdd.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/iforest.cc.o"
  "CMakeFiles/tfmae_baselines.dir/iforest.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/lof.cc.o"
  "CMakeFiles/tfmae_baselines.dir/lof.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/omni_ano.cc.o"
  "CMakeFiles/tfmae_baselines.dir/omni_ano.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/registry.cc.o"
  "CMakeFiles/tfmae_baselines.dir/registry.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/spectral_residual.cc.o"
  "CMakeFiles/tfmae_baselines.dir/spectral_residual.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/thoc.cc.o"
  "CMakeFiles/tfmae_baselines.dir/thoc.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/tranad.cc.o"
  "CMakeFiles/tfmae_baselines.dir/tranad.cc.o.d"
  "CMakeFiles/tfmae_baselines.dir/usad.cc.o"
  "CMakeFiles/tfmae_baselines.dir/usad.cc.o.d"
  "libtfmae_baselines.a"
  "libtfmae_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
