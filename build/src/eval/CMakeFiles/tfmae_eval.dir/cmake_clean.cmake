file(REMOVE_RECURSE
  "CMakeFiles/tfmae_eval.dir/detection.cc.o"
  "CMakeFiles/tfmae_eval.dir/detection.cc.o.d"
  "CMakeFiles/tfmae_eval.dir/metrics.cc.o"
  "CMakeFiles/tfmae_eval.dir/metrics.cc.o.d"
  "CMakeFiles/tfmae_eval.dir/range_metrics.cc.o"
  "CMakeFiles/tfmae_eval.dir/range_metrics.cc.o.d"
  "libtfmae_eval.a"
  "libtfmae_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
