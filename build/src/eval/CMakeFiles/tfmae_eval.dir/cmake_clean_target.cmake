file(REMOVE_RECURSE
  "libtfmae_eval.a"
)
