# Empty compiler generated dependencies file for tfmae_eval.
# This may be replaced when dependencies are built.
