
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/anomaly.cc" "src/data/CMakeFiles/tfmae_data.dir/anomaly.cc.o" "gcc" "src/data/CMakeFiles/tfmae_data.dir/anomaly.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/tfmae_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/tfmae_data.dir/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/tfmae_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/tfmae_data.dir/io.cc.o.d"
  "/root/repo/src/data/profiles.cc" "src/data/CMakeFiles/tfmae_data.dir/profiles.cc.o" "gcc" "src/data/CMakeFiles/tfmae_data.dir/profiles.cc.o.d"
  "/root/repo/src/data/timeseries.cc" "src/data/CMakeFiles/tfmae_data.dir/timeseries.cc.o" "gcc" "src/data/CMakeFiles/tfmae_data.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
