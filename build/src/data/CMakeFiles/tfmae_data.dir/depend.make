# Empty dependencies file for tfmae_data.
# This may be replaced when dependencies are built.
