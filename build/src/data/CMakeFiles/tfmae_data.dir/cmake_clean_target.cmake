file(REMOVE_RECURSE
  "libtfmae_data.a"
)
