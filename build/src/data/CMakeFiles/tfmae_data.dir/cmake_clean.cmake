file(REMOVE_RECURSE
  "CMakeFiles/tfmae_data.dir/anomaly.cc.o"
  "CMakeFiles/tfmae_data.dir/anomaly.cc.o.d"
  "CMakeFiles/tfmae_data.dir/generator.cc.o"
  "CMakeFiles/tfmae_data.dir/generator.cc.o.d"
  "CMakeFiles/tfmae_data.dir/io.cc.o"
  "CMakeFiles/tfmae_data.dir/io.cc.o.d"
  "CMakeFiles/tfmae_data.dir/profiles.cc.o"
  "CMakeFiles/tfmae_data.dir/profiles.cc.o.d"
  "CMakeFiles/tfmae_data.dir/timeseries.cc.o"
  "CMakeFiles/tfmae_data.dir/timeseries.cc.o.d"
  "libtfmae_data.a"
  "libtfmae_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
