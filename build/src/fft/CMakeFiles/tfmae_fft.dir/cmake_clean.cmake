file(REMOVE_RECURSE
  "CMakeFiles/tfmae_fft.dir/convolution.cc.o"
  "CMakeFiles/tfmae_fft.dir/convolution.cc.o.d"
  "CMakeFiles/tfmae_fft.dir/fft.cc.o"
  "CMakeFiles/tfmae_fft.dir/fft.cc.o.d"
  "libtfmae_fft.a"
  "libtfmae_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
