# Empty compiler generated dependencies file for tfmae_fft.
# This may be replaced when dependencies are built.
