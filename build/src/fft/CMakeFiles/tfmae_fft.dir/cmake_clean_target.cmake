file(REMOVE_RECURSE
  "libtfmae_fft.a"
)
