file(REMOVE_RECURSE
  "CMakeFiles/tfmae_core.dir/anomaly_detector.cc.o"
  "CMakeFiles/tfmae_core.dir/anomaly_detector.cc.o.d"
  "CMakeFiles/tfmae_core.dir/attribution.cc.o"
  "CMakeFiles/tfmae_core.dir/attribution.cc.o.d"
  "CMakeFiles/tfmae_core.dir/config_io.cc.o"
  "CMakeFiles/tfmae_core.dir/config_io.cc.o.d"
  "CMakeFiles/tfmae_core.dir/detector.cc.o"
  "CMakeFiles/tfmae_core.dir/detector.cc.o.d"
  "CMakeFiles/tfmae_core.dir/forecasting.cc.o"
  "CMakeFiles/tfmae_core.dir/forecasting.cc.o.d"
  "CMakeFiles/tfmae_core.dir/model.cc.o"
  "CMakeFiles/tfmae_core.dir/model.cc.o.d"
  "CMakeFiles/tfmae_core.dir/streaming.cc.o"
  "CMakeFiles/tfmae_core.dir/streaming.cc.o.d"
  "libtfmae_core.a"
  "libtfmae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
