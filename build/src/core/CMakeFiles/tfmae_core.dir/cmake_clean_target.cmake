file(REMOVE_RECURSE
  "libtfmae_core.a"
)
