# Empty compiler generated dependencies file for tfmae_core.
# This may be replaced when dependencies are built.
