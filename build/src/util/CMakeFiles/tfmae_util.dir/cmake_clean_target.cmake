file(REMOVE_RECURSE
  "libtfmae_util.a"
)
