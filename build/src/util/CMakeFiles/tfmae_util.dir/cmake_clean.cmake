file(REMOVE_RECURSE
  "CMakeFiles/tfmae_util.dir/logging.cc.o"
  "CMakeFiles/tfmae_util.dir/logging.cc.o.d"
  "CMakeFiles/tfmae_util.dir/memory.cc.o"
  "CMakeFiles/tfmae_util.dir/memory.cc.o.d"
  "CMakeFiles/tfmae_util.dir/rng.cc.o"
  "CMakeFiles/tfmae_util.dir/rng.cc.o.d"
  "CMakeFiles/tfmae_util.dir/stopwatch.cc.o"
  "CMakeFiles/tfmae_util.dir/stopwatch.cc.o.d"
  "CMakeFiles/tfmae_util.dir/table.cc.o"
  "CMakeFiles/tfmae_util.dir/table.cc.o.d"
  "libtfmae_util.a"
  "libtfmae_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
