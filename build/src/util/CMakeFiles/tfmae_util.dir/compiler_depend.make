# Empty compiler generated dependencies file for tfmae_util.
# This may be replaced when dependencies are built.
