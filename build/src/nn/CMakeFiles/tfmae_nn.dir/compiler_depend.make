# Empty compiler generated dependencies file for tfmae_nn.
# This may be replaced when dependencies are built.
