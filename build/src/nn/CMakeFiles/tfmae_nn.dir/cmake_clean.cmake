file(REMOVE_RECURSE
  "CMakeFiles/tfmae_nn.dir/adam.cc.o"
  "CMakeFiles/tfmae_nn.dir/adam.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/attention.cc.o"
  "CMakeFiles/tfmae_nn.dir/attention.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/gru.cc.o"
  "CMakeFiles/tfmae_nn.dir/gru.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/layers.cc.o"
  "CMakeFiles/tfmae_nn.dir/layers.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/module.cc.o"
  "CMakeFiles/tfmae_nn.dir/module.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/serialize.cc.o"
  "CMakeFiles/tfmae_nn.dir/serialize.cc.o.d"
  "CMakeFiles/tfmae_nn.dir/transformer.cc.o"
  "CMakeFiles/tfmae_nn.dir/transformer.cc.o.d"
  "libtfmae_nn.a"
  "libtfmae_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
