file(REMOVE_RECURSE
  "libtfmae_nn.a"
)
