# Empty compiler generated dependencies file for tfmae_tensor.
# This may be replaced when dependencies are built.
