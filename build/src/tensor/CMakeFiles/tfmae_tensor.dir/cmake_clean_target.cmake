file(REMOVE_RECURSE
  "libtfmae_tensor.a"
)
