file(REMOVE_RECURSE
  "CMakeFiles/tfmae_tensor.dir/ops_basic.cc.o"
  "CMakeFiles/tfmae_tensor.dir/ops_basic.cc.o.d"
  "CMakeFiles/tfmae_tensor.dir/ops_matmul.cc.o"
  "CMakeFiles/tfmae_tensor.dir/ops_matmul.cc.o.d"
  "CMakeFiles/tfmae_tensor.dir/ops_reduce.cc.o"
  "CMakeFiles/tfmae_tensor.dir/ops_reduce.cc.o.d"
  "CMakeFiles/tfmae_tensor.dir/ops_shape.cc.o"
  "CMakeFiles/tfmae_tensor.dir/ops_shape.cc.o.d"
  "CMakeFiles/tfmae_tensor.dir/shape.cc.o"
  "CMakeFiles/tfmae_tensor.dir/shape.cc.o.d"
  "CMakeFiles/tfmae_tensor.dir/tensor.cc.o"
  "CMakeFiles/tfmae_tensor.dir/tensor.cc.o.d"
  "libtfmae_tensor.a"
  "libtfmae_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmae_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
