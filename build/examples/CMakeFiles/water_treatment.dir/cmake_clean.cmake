file(REMOVE_RECURSE
  "CMakeFiles/water_treatment.dir/water_treatment.cpp.o"
  "CMakeFiles/water_treatment.dir/water_treatment.cpp.o.d"
  "water_treatment"
  "water_treatment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_treatment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
