# Empty compiler generated dependencies file for water_treatment.
# This may be replaced when dependencies are built.
