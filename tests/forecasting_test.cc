// Tests for the masked-autoencoder forecaster (the paper's future-work
// extension to time series prediction).
#include <cmath>

#include <gtest/gtest.h>

#include "core/forecasting.h"
#include "data/generator.h"

namespace tfmae::core {
namespace {

ForecasterConfig SmallConfig() {
  ForecasterConfig config;
  config.context = 24;
  config.horizon = 6;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 15;
  config.stride = 6;
  return config;
}

TEST(ForecastingTest, OutputShapeAndScale) {
  data::BaseSignalConfig signal;
  signal.length = 600;
  signal.num_features = 2;
  signal.noise_std = 0.02;
  signal.seed = 101;
  data::TimeSeries series = data::GenerateBaseSignal(signal);
  // Shift one channel far from zero to verify the de-normalization path.
  for (std::int64_t t = 0; t < series.length; ++t) {
    series.at(t, 1) += 100.0f;
  }

  TfmaeForecaster forecaster(SmallConfig());
  forecaster.Fit(series);
  const data::TimeSeries forecast = forecaster.Forecast(series);
  EXPECT_EQ(forecast.length, 6);
  EXPECT_EQ(forecast.num_features, 2);
  for (std::int64_t t = 0; t < forecast.length; ++t) {
    EXPECT_TRUE(std::isfinite(forecast.at(t, 0)));
    // De-normalized channel lands near its original level, not near zero.
    EXPECT_NEAR(forecast.at(t, 1), 100.0f, 10.0f);
  }
}

TEST(ForecastingTest, BeatsNaiveZeroPredictorOnPeriodicSignal) {
  data::BaseSignalConfig signal;
  signal.length = 900;
  signal.num_features = 1;
  signal.noise_std = 0.03;
  signal.seed = 102;
  data::TimeSeries series = data::GenerateBaseSignal(signal);
  data::TimeSeries train = series.Slice(0, 700);
  data::TimeSeries test = series.Slice(700, 200);

  TfmaeForecaster forecaster(SmallConfig());
  forecaster.Fit(train);
  // Normalized-scale MSE of predicting the mean (z-score 0) is ~1.
  const double mse = forecaster.Evaluate(test);
  EXPECT_LT(mse, 0.6) << "forecaster no better than predicting the mean";
}

TEST(ForecastingTest, ForecastBeforeFitDies) {
  TfmaeForecaster forecaster(SmallConfig());
  data::TimeSeries series = data::TimeSeries::Zeros(100, 1);
  EXPECT_DEATH(forecaster.Forecast(series), "Fit");
}

}  // namespace
}  // namespace tfmae::core
