// Tests for the baseline detectors: each must fit/score cleanly, be
// deterministic given its seed, and separate planted anomalies from normal
// data on an easy synthetic problem (AUROC well above chance).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/dagmm.h"
#include "baselines/iforest.h"
#include "baselines/lof.h"
#include "baselines/registry.h"
#include "data/generator.h"
#include "eval/metrics.h"

namespace tfmae::baselines {
namespace {

// Easy planted-anomaly problem: smooth periodic signal, strong spikes.
struct PlantedProblem {
  data::TimeSeries train;
  data::TimeSeries test;
};

PlantedProblem MakePlantedProblem(std::int64_t features) {
  data::BaseSignalConfig config;
  config.length = 900;
  config.num_features = features;
  config.noise_std = 0.05;
  config.seed = 71;
  data::TimeSeries full = data::GenerateBaseSignal(config);
  PlantedProblem problem;
  problem.train = full.Slice(0, 600);
  problem.test = full.Slice(600, 300);
  problem.test.labels.assign(300, 0);
  for (std::int64_t t : {40, 41, 120, 200, 201, 202, 280}) {
    for (std::int64_t n = 0; n < features; ++n) {
      problem.test.at(t, n) += 5.0f;
    }
    problem.test.labels[static_cast<std::size_t>(t)] = 1;
  }
  return problem;
}

TEST(ScoreAccumulatorTest, AveragesOverlaps) {
  ScoreAccumulator accumulator(5);
  accumulator.Add(0, {1.0f, 1.0f, 1.0f});
  accumulator.Add(2, {3.0f, 3.0f, 3.0f});
  const auto scores = accumulator.Finalize();
  EXPECT_FLOAT_EQ(scores[0], 1.0f);
  EXPECT_FLOAT_EQ(scores[2], 2.0f);  // (1 + 3) / 2
  EXPECT_FLOAT_EQ(scores[4], 3.0f);
}

TEST(ScoreAccumulatorTest, UncoveredPointsAreZero) {
  ScoreAccumulator accumulator(4);
  accumulator.AddUniform(1, 2, 5.0f);
  const auto scores = accumulator.Finalize();
  EXPECT_FLOAT_EQ(scores[0], 0.0f);
  EXPECT_FLOAT_EQ(scores[1], 5.0f);
  EXPECT_FLOAT_EQ(scores[3], 0.0f);
}

TEST(LofTest, FlagsIsolatedPoint) {
  // Dense cluster + one far point: the far point's LOF must dominate.
  data::TimeSeries train = data::TimeSeries::Zeros(200, 2);
  Rng rng(3);
  for (std::int64_t t = 0; t < 200; ++t) {
    train.at(t, 0) = static_cast<float>(rng.Normal(0, 0.1));
    train.at(t, 1) = static_cast<float>(rng.Normal(0, 0.1));
  }
  data::TimeSeries test = train.Slice(0, 50);
  test.at(25, 0) = 30.0f;
  test.at(25, 1) = 30.0f;
  LofDetector lof(10);
  lof.Fit(train);
  const auto scores = lof.Score(test);
  for (std::size_t t = 0; t < scores.size(); ++t) {
    if (t != 25) {
      EXPECT_LT(scores[t], scores[25]);
    }
  }
}

TEST(IForestTest, OutlierGetsHigherScore) {
  data::TimeSeries train = data::TimeSeries::Zeros(400, 2);
  Rng rng(5);
  for (std::int64_t t = 0; t < 400; ++t) {
    train.at(t, 0) = static_cast<float>(rng.Normal());
    train.at(t, 1) = static_cast<float>(rng.Normal());
  }
  IsolationForestDetector forest(50, 128);
  forest.Fit(train);
  data::TimeSeries test = data::TimeSeries::Zeros(2, 2);
  test.at(0, 0) = 0.0f;   // inlier
  test.at(1, 0) = 12.0f;  // outlier
  test.at(1, 1) = -12.0f;
  const auto scores = forest.Score(test);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_GT(scores[1], 0.6f);  // canonical iforest outlier threshold
}

TEST(GaussianMixtureTest, RecoversSeparatedClusters) {
  Rng rng(7);
  const std::int64_t n = 400;
  std::vector<float> points(static_cast<std::size_t>(n) * 2);
  for (std::int64_t i = 0; i < n; ++i) {
    const double center = i < n / 2 ? -5.0 : 5.0;
    points[static_cast<std::size_t>(i * 2)] =
        static_cast<float>(rng.Normal(center, 0.5));
    points[static_cast<std::size_t>(i * 2 + 1)] =
        static_cast<float>(rng.Normal(center, 0.5));
  }
  GaussianMixture gmm;
  gmm.Fit(points, n, 2, 2, 50, &rng);
  // Points near the centers have low energy; a point between them is
  // unlikely under both components.
  const float near_center[2] = {5.0f, 5.0f};
  const float between[2] = {0.0f, 0.0f};
  EXPECT_LT(gmm.Energy(near_center), gmm.Energy(between));
}

// Every registered baseline must separate the easy planted problem.
TEST(BaselineRosterTest, AllDetectorsBeatChanceOnEasyProblem) {
  const PlantedProblem problem = MakePlantedProblem(2);
  for (auto& detector : MakeAllBaselines()) {
    detector->Fit(problem.train);
    const auto scores = detector->Score(problem.test);
    ASSERT_EQ(scores.size(), 300u) << detector->Name();
    for (float s : scores) {
      ASSERT_TRUE(std::isfinite(s)) << detector->Name();
    }
    const double auroc = eval::Auroc(scores, problem.test.labels);
    EXPECT_GT(auroc, 0.7) << detector->Name() << " AUROC " << auroc;
  }
}

TEST(BaselineRosterTest, NamesAreUniqueAndStable) {
  auto detectors = MakeAllBaselines();
  EXPECT_EQ(detectors.size(), 13u);
  std::vector<std::string> names;
  for (const auto& d : detectors) names.push_back(d->Name());
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::unique(names.begin(), names.end()) == names.end());
}

TEST(BaselineRosterTest, DeterministicAcrossRuns) {
  const PlantedProblem problem = MakePlantedProblem(1);
  for (int which = 0; which < 2; ++which) {
    auto first = MakeAllBaselines();
    auto second = MakeAllBaselines();
    // Spot-check two detectors per run to bound the test cost.
    for (std::size_t i : {static_cast<std::size_t>(0),
                          static_cast<std::size_t>(1)}) {
      first[i]->Fit(problem.train);
      second[i]->Fit(problem.train);
      EXPECT_EQ(first[i]->Score(problem.test), second[i]->Score(problem.test))
          << first[i]->Name();
    }
    break;
  }
}

}  // namespace
}  // namespace tfmae::baselines
