// Pre-planned inference tests (DESIGN.md §10): bitwise eager-vs-planned
// scoring on every dataset profile at 1/2/4 threads, capture after a
// checkpoint round trip, re-capture on geometry change, the injected-fault
// eager fallback, zero-allocation steady-state replay, the scrub canary,
// the single-logical-allocation arena accounting, and the ledger `plan`
// event (instrumented builds).
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/inference_plan.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "tensor/pool.h"
#include "util/fault.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae::core {
namespace {

// Restores thread count, scrub mode and fault config on scope exit so a
// failing test cannot poison its neighbours.
class EnvGuard {
 public:
  ~EnvGuard() {
    ThreadPool::Instance().SetNumThreads(1);
    pool::SetScrubForTesting(false);
    fault::Clear();
  }
};

TfmaeConfig TinyConfig() {
  TfmaeConfig config;
  config.window = 16;
  config.stride = 16;
  config.model_dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 16;
  config.epochs = 1;
  config.seed = 3;
  return config;
}

data::TimeSeries Head(const data::TimeSeries& series, std::int64_t n) {
  data::TimeSeries out;
  out.length = std::min(n, series.length);
  out.num_features = series.num_features;
  out.values.assign(
      series.values.begin(),
      series.values.begin() +
          static_cast<std::size_t>(out.length * out.num_features));
  return out;
}

data::TimeSeries TinySignal(std::int64_t length, std::int64_t features,
                            std::uint64_t seed) {
  data::BaseSignalConfig signal;
  signal.length = length;
  signal.num_features = features;
  signal.seed = seed;
  return data::GenerateBaseSignal(signal);
}

// Two identically fitted detectors: .first scores through the plan, .second
// is the eager reference. Fit is deterministic for a fixed (data, config,
// seed), so both hold bitwise-equal weights and rng states; scoring call #k
// on one is comparable to call #k on the other.
struct Twins {
  std::unique_ptr<TfmaeDetector> planned;
  std::unique_ptr<TfmaeDetector> eager;
};

Twins FitTwins(const data::TimeSeries& train, const TfmaeConfig& config) {
  Twins twins;
  twins.planned = std::make_unique<TfmaeDetector>(config);
  twins.eager = std::make_unique<TfmaeDetector>(config);
  twins.planned->SetInferencePlanEnabled(true);
  twins.eager->SetInferencePlanEnabled(false);
  twins.planned->Fit(train);
  twins.eager->Fit(train);
  return twins;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
        << what << ": planned scores are not bitwise-identical to eager";
  }
}

// The acceptance contract: on every benchmark profile, planned scoring is
// bitwise-identical to eager at 1, 2 and 4 threads — and the plan really
// is active (a silent eager fallback would pass a pure score comparison).
TEST(InferencePlanTest, BitwiseMatchesEagerOnAllProfilesAtAllThreadCounts) {
  EnvGuard guard;
  const TfmaeConfig config = TinyConfig();
  for (const data::BenchmarkDataset dataset : data::MainDatasets()) {
    const data::LabeledDataset full = data::MakeBenchmarkDataset(dataset, 0.1);
    const data::TimeSeries train = Head(full.train, 256);
    const data::TimeSeries test = Head(full.test, 96);
    ASSERT_GE(train.length, config.window) << data::DatasetName(dataset);
    Twins twins = FitTwins(train, config);
    for (const int threads : {1, 2, 4}) {
      ThreadPool::Instance().SetNumThreads(threads);
      const std::vector<float> planned = twins.planned->Score(test);
      const std::vector<float> eager = twins.eager->Score(test);
      ASSERT_NE(twins.planned->inference_plan(), nullptr)
          << data::DatasetName(dataset) << " fell back to eager scoring";
      EXPECT_EQ(twins.planned->plan_capture_failures(), 0);
      ExpectBitwiseEqual(planned, eager,
                         data::DatasetName(dataset) + " @" +
                             std::to_string(threads) + "T");
    }
    EXPECT_GT(twins.planned->inference_plan()->stats().replays, 0);
  }
}

// A detector restored from a checkpoint captures a plan exactly like a
// freshly fitted one (weights arrive via LoadParameters, not Fit).
TEST(InferencePlanTest, CapturesAfterCheckpointRoundTrip) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 11);
  const data::TimeSeries test = TinySignal(80, 2, 12);
  TfmaeDetector fitted(TinyConfig());
  fitted.Fit(train);

  const std::string prefix =
      (std::filesystem::temp_directory_path() / "tfmae_plan_ckpt").string();
  ASSERT_TRUE(fitted.SaveCheckpoint(prefix));

  TfmaeDetector planned(TinyConfig());
  TfmaeDetector eager(TinyConfig());
  eager.SetInferencePlanEnabled(false);
  ASSERT_TRUE(planned.LoadCheckpoint(prefix));
  ASSERT_TRUE(eager.LoadCheckpoint(prefix));
  for (const char* suffix : {".config", ".norm", ".weights"}) {
    std::error_code ec;
    std::filesystem::remove(prefix + suffix, ec);
  }

  const std::vector<float> planned_scores = planned.Score(test);
  const std::vector<float> eager_scores = eager.Score(test);
  ASSERT_NE(planned.inference_plan(), nullptr);
  ExpectBitwiseEqual(planned_scores, eager_scores, "checkpoint resume");
}

// A series shorter than config.window shrinks the effective window; the old
// plan's geometry no longer matches and a fresh capture must replace it
// (never a wrong replay).
TEST(InferencePlanTest, RecapturesWhenWindowGeometryChanges) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 21);
  const data::TimeSeries long_test = TinySignal(80, 2, 22);
  const data::TimeSeries short_test = TinySignal(12, 2, 23);
  Twins twins = FitTwins(train, TinyConfig());

  ExpectBitwiseEqual(twins.planned->Score(long_test),
                     twins.eager->Score(long_test), "long series");
  ASSERT_NE(twins.planned->inference_plan(), nullptr);
  const std::int64_t long_arena =
      twins.planned->inference_plan()->stats().arena_bytes;

  ExpectBitwiseEqual(twins.planned->Score(short_test),
                     twins.eager->Score(short_test), "short series");
  ASSERT_NE(twins.planned->inference_plan(), nullptr);
  EXPECT_NE(twins.planned->inference_plan()->stats().arena_bytes, long_arena)
      << "geometry change did not trigger a re-capture";
  EXPECT_EQ(twins.planned->plan_capture_failures(), 0);
}

// Injected capture failure (fault site infer.plan.capture): the whole Score
// call degrades to eager — identical answers — and the next call captures
// normally.
TEST(InferencePlanTest, InjectedCaptureFaultFallsBackToEager) {
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection requires -DTFMAE_FAULTS=ON";
  }
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 31);
  const data::TimeSeries test = TinySignal(80, 2, 32);
  Twins twins = FitTwins(train, TinyConfig());

  fault::ScopedFaults faults("infer.plan.capture:#1");
  const std::vector<float> faulted = twins.planned->Score(test);
  EXPECT_EQ(twins.planned->inference_plan(), nullptr);
  EXPECT_EQ(twins.planned->plan_capture_failures(), 1);
  ExpectBitwiseEqual(faulted, twins.eager->Score(test), "faulted call");

  // The occurrence trigger is spent: the second call captures a real plan.
  const std::vector<float> recovered = twins.planned->Score(test);
  ASSERT_NE(twins.planned->inference_plan(), nullptr);
  EXPECT_EQ(twins.planned->plan_capture_failures(), 1);
  ExpectBitwiseEqual(recovered, twins.eager->Score(test), "recovered call");
}

// Steady-state replay performs zero tensor allocations: no MemoryStats
// alloc calls, no pool heap traffic.
TEST(InferencePlanTest, SteadyStateReplayAllocatesNothing) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 41);
  TfmaeDetector detector(TinyConfig());
  detector.Fit(train);
  ASSERT_NE(detector.model(), nullptr);

  Rng rng(7);
  std::vector<float> values(
      static_cast<std::size_t>(TinyConfig().window * train.num_features));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.37f * static_cast<float>(i));
  }
  const MaskedWindow window = detector.model()->PrepareWindow(values, &rng);

  std::vector<float> eager_scores;
  std::string error;
  std::unique_ptr<InferencePlan> plan =
      InferencePlan::Capture(*detector.model(), window, &eager_scores, &error);
  ASSERT_NE(plan, nullptr) << error;

  std::vector<float> out;
  plan->Score(window, &out);  // warm-up: resizes `out` once
  const std::int64_t allocs_before = MemoryStats::AllocCalls();
  const std::int64_t heap_before = pool::Stats().HeapAllocs();
  for (int i = 0; i < 4; ++i) plan->Score(window, &out);
  EXPECT_EQ(MemoryStats::AllocCalls() - allocs_before, 0);
  EXPECT_EQ(pool::Stats().HeapAllocs() - heap_before, 0);
  ExpectBitwiseEqual(out, eager_scores, "steady-state replay");
}

// TFMAE_POOL_SCRUB=1 refills the arena with NaN canaries before every
// replay; a replay that read uninitialized arena bytes would surface them.
TEST(InferencePlanTest, ScrubCanaryLeavesReplaysIdentical) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 51);
  TfmaeDetector detector(TinyConfig());
  detector.Fit(train);

  Rng rng(9);
  std::vector<float> values(
      static_cast<std::size_t>(TinyConfig().window * train.num_features));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::cos(0.21f * static_cast<float>(i));
  }
  const MaskedWindow window = detector.model()->PrepareWindow(values, &rng);

  std::vector<float> eager_scores;
  std::unique_ptr<InferencePlan> plan =
      InferencePlan::Capture(*detector.model(), window, &eager_scores);
  ASSERT_NE(plan, nullptr);

  pool::SetScrubForTesting(true);
  std::vector<float> first;
  std::vector<float> second;
  plan->Score(window, &first);
  plan->Score(window, &second);
  pool::SetScrubForTesting(false);
  for (const float s : first) EXPECT_TRUE(std::isfinite(s));
  ExpectBitwiseEqual(first, eager_scores, "scrubbed replay vs eager");
  ExpectBitwiseEqual(first, second, "scrubbed replay vs replay");
}

// The arena is ONE logical allocation: building a plan moves MemoryStats by
// exactly stats().arena_bytes (the capture pass's eager tensors all net
// out), and destroying the plan returns to the baseline.
TEST(InferencePlanTest, ArenaIsOneLogicalAllocation) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 61);
  TfmaeDetector detector(TinyConfig());
  detector.Fit(train);

  Rng rng(13);
  std::vector<float> values(
      static_cast<std::size_t>(TinyConfig().window * train.num_features));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.01f * static_cast<float>(i % 17);
  }
  const MaskedWindow window = detector.model()->PrepareWindow(values, &rng);

  const std::int64_t baseline = MemoryStats::CurrentBytes();
  {
    std::vector<float> eager_scores;
    std::unique_ptr<InferencePlan> plan = InferencePlan::Capture(
        *detector.model(), window, &eager_scores);
    ASSERT_NE(plan, nullptr);
    EXPECT_GT(plan->stats().arena_bytes, 0);
    EXPECT_EQ(MemoryStats::CurrentBytes() - baseline,
              plan->stats().arena_bytes)
        << "plan arena must account as exactly one logical allocation";
  }
  EXPECT_EQ(MemoryStats::CurrentBytes(), baseline);
}

// Instrumented builds emit one `plan` ledger event per capture, carrying the
// deterministic plan shape; its wall-clock t_capture_ms field is stripped
// from the canonical stream like every other t_* field.
TEST(InferencePlanTest, LedgerRecordsPlanEvent) {
  if (!obs::CompiledIn()) {
    GTEST_SKIP() << "emission sites require -DTFMAE_OBS=ON";
  }
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 71);
  const data::TimeSeries test = TinySignal(80, 2, 72);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tfmae_plan_event.jsonl")
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".partial", ec);

  obs::RunManifest manifest;
  manifest.tool = "inference_plan_test";
  manifest.run_id = "plan_event";
  ASSERT_TRUE(obs::Ledger::Instance().Open(path, manifest));
  TfmaeDetector detector(TinyConfig());
  detector.Fit(train);
  detector.Score(test);
  ASSERT_TRUE(obs::Ledger::Instance().Close());
  ASSERT_NE(detector.inference_plan(), nullptr);

  auto file = obs::ReadLedger(path);
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(file.has_value());
  const obs::LedgerEvent* plan_event = nullptr;
  for (const obs::LedgerEvent& event : file->events) {
    if (event.type == "plan") plan_event = &event;
  }
  ASSERT_NE(plan_event, nullptr) << "no plan event in the run ledger";
  EXPECT_GT(plan_event->Number("ops"), 0.0);
  EXPECT_GT(plan_event->Number("fused_ops"), 0.0);
  EXPECT_GT(plan_event->Number("arena_bytes"), 0.0);
  EXPECT_NE(plan_event->Field("t_capture_ms"), nullptr);
  const std::string canonical = obs::CanonicalEventStream(*file);
  EXPECT_EQ(canonical.find("t_capture_ms"), std::string::npos)
      << "wall-clock t_* fields must not reach the canonical stream";
}

}  // namespace
}  // namespace tfmae::core
