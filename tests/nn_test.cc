// Tests for the NN layer: module registry, layers, attention, transformer,
// positional encoding, Adam optimization, and checkpoint round-trips.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tfmae::nn {
namespace {

TEST(ModuleTest, RegistryCollectsNestedParameters) {
  Rng rng(1);
  FeedForward ffn(8, 16, &rng);
  // fc1: weight+bias, fc2: weight+bias.
  EXPECT_EQ(ffn.Parameters().size(), 4u);
  const auto named = ffn.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[3].first, "fc2.bias");
  EXPECT_EQ(ffn.NumParameters(), 8 * 16 + 16 + 16 * 8 + 8);
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  Rng rng(2);
  Linear linear(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  ops::SumAll(linear.Forward(x)).Backward();
  bool any_nonzero = false;
  for (const Tensor& p : linear.Parameters()) {
    if (p.grad_data() != nullptr) {
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        any_nonzero |= p.grad_data()[i] != 0.0f;
      }
    }
  }
  EXPECT_TRUE(any_nonzero);
  linear.ZeroGrad();
  for (const Tensor& p : linear.Parameters()) {
    if (p.grad_data() == nullptr) continue;
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      EXPECT_EQ(p.grad_data()[i], 0.0f);
    }
  }
}

TEST(LayerTest, LinearComputesAffineMap) {
  Rng rng(3);
  Linear linear(2, 2, &rng);
  // Overwrite parameters with known values.
  auto params = linear.NamedParameters();
  // weight [2,2] = [[1,2],[3,4]], bias = [10, 20].
  std::vector<float> w = {1, 2, 3, 4};
  std::vector<float> b = {10, 20};
  std::copy(w.begin(), w.end(), params[0].second.data());
  std::copy(b.begin(), b.end(), params[1].second.data());
  Tensor x = Tensor::FromData({1, 2}, {1, 1});
  Tensor y = linear.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.at(1), 2 + 4 + 20);
}

TEST(LayerTest, LayerNormNormalizesRows) {
  LayerNorm norm(4);
  Tensor x = Tensor::FromData({2, 4}, {1, 2, 3, 4, -5, 0, 5, 10});
  Tensor y = norm.Forward(x);
  for (std::int64_t r = 0; r < 2; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (std::int64_t c = 0; c < 4; ++c) mean += y.at(r * 4 + c);
    mean /= 4;
    for (std::int64_t c = 0; c < 4; ++c) {
      const double d = y.at(r * 4 + c) - mean;
      var += d * d;
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(PositionalEncodingTest, MatchesClosedForm) {
  const std::int64_t dim = 8;
  Tensor pe = SinusoidalPositionalEncoding(5, dim);
  for (std::int64_t t = 0; t < 5; ++t) {
    for (std::int64_t i = 0; i < dim; ++i) {
      const double exponent =
          static_cast<double>(i % 2 == 0 ? i : i - 1) / dim;
      const double angle = t / std::pow(10000.0, exponent);
      const double expected = i % 2 == 0 ? std::sin(angle) : std::cos(angle);
      EXPECT_NEAR(pe.at(t * dim + i), expected, 1e-5);
    }
  }
}

TEST(PositionalEncodingTest, AddUsesGivenPositions) {
  const std::int64_t dim = 4;
  Tensor zero = Tensor::Zeros({2, dim});
  Tensor decorated = AddPositionalEncoding(zero, {3, 7});
  Tensor table = SinusoidalPositionalEncoding(8, dim);
  for (std::int64_t i = 0; i < dim; ++i) {
    EXPECT_FLOAT_EQ(decorated.at(i), table.at(3 * dim + i));
    EXPECT_FLOAT_EQ(decorated.at(dim + i), table.at(7 * dim + i));
  }
}

TEST(AttentionTest, OutputShapeAndFiniteness) {
  Rng rng(4);
  MultiHeadSelfAttention attention(16, 4, &rng);
  Tensor x = Tensor::Randn({10, 16}, &rng);
  Tensor y = attention.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{10, 16}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.at(i)));
  }
}

TEST(AttentionTest, ExposedWeightsAreRowStochasticAndConsistent) {
  Rng rng(14);
  MultiHeadSelfAttention attention(8, 2, &rng);
  Tensor x = Tensor::Randn({6, 8}, &rng);
  Tensor weights;
  Tensor with = attention.ForwardWithWeights(x, &weights);
  Tensor without = attention.Forward(x);
  // Same output either way.
  for (std::int64_t i = 0; i < with.numel(); ++i) {
    EXPECT_FLOAT_EQ(with.at(i), without.at(i));
  }
  // Weights: [heads, T, T], rows on the simplex.
  ASSERT_TRUE(weights.defined());
  EXPECT_EQ(weights.shape(), (Shape{2, 6, 6}));
  for (std::int64_t h = 0; h < 2; ++h) {
    for (std::int64_t r = 0; r < 6; ++r) {
      double sum = 0.0;
      for (std::int64_t c = 0; c < 6; ++c) {
        const float w = weights.at((h * 6 + r) * 6 + c);
        EXPECT_GE(w, 0.0f);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(AttentionTest, GradientsReachAllProjections) {
  Rng rng(5);
  MultiHeadSelfAttention attention(8, 2, &rng);
  Tensor x = Tensor::Randn({6, 8}, &rng);
  ops::SumAll(attention.Forward(x)).Backward();
  for (const auto& [name, param] : attention.NamedParameters()) {
    ASSERT_NE(param.grad_data(), nullptr) << name;
    double norm = 0.0;
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      norm += std::abs(param.grad_data()[i]);
    }
    EXPECT_GT(norm, 0.0) << name << " received no gradient";
  }
}

TEST(TransformerTest, StackPreservesShape) {
  Rng rng(6);
  TransformerStack stack(3, 16, 4, 32, &rng);
  EXPECT_EQ(stack.num_layers(), 3);
  Tensor x = Tensor::Randn({12, 16}, &rng);
  Tensor y = stack.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{12, 16}));
}

TEST(AdamTest, ConvergesOnLeastSquares) {
  // Fit y = 2x + 1 with a Linear layer.
  Rng rng(7);
  Linear model(1, 1, &rng);
  nn::AdamOptions options;
  options.learning_rate = 5e-2f;
  Adam adam(model.Parameters(), options);
  for (int step = 0; step < 300; ++step) {
    Tensor x = Tensor::Randn({8, 1}, &rng);
    std::vector<float> target_values(8);
    for (int i = 0; i < 8; ++i) target_values[i] = 2.0f * x.at(i) + 1.0f;
    Tensor target = Tensor::FromData({8, 1}, target_values);
    Tensor loss = ops::MseLoss(model.Forward(x), target);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  }
  const auto named = model.NamedParameters();
  EXPECT_NEAR(named[0].second.at(0), 2.0f, 0.1f);  // weight
  EXPECT_NEAR(named[1].second.at(0), 1.0f, 0.1f);  // bias
  EXPECT_EQ(adam.num_steps(), 300);
}

TEST(AdamTest, GradientClippingBoundsUpdateDirection) {
  Rng rng(8);
  Tensor p = Tensor::Zeros({4}).set_requires_grad(true);
  nn::AdamOptions options;
  options.clip_grad_norm = 1.0f;
  Adam adam({p}, options);
  // Huge gradient: clipping keeps the moment estimates sane (no NaN/inf).
  Tensor loss = ops::SumAll(ops::Scale(p, 1e6f));
  loss.Backward();
  adam.Step();
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(p.at(i)));
  }
}

TEST(AdamTest, ExportImportStateReplaysIdentically) {
  // Two optimizers on identical parameters; after syncing state via
  // Export/Import, identical gradients must produce identical updates
  // (this is the property the training checkpoints rely on).
  Tensor p1 = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f}).set_requires_grad(true);
  Tensor p2 = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f}).set_requires_grad(true);
  Adam a(std::vector<Tensor>{p1}, nn::AdamOptions{});
  Adam b(std::vector<Tensor>{p2}, nn::AdamOptions{});
  for (int step = 0; step < 5; ++step) {
    Tensor loss = ops::SumAll(ops::Scale(p1, 0.5f));
    loss.Backward();
    a.Step();
    a.ZeroGrad();
  }
  ASSERT_TRUE(b.ImportState(a.ExportState()));
  for (std::int64_t i = 0; i < 3; ++i) p2.data()[i] = p1.at(i);
  for (int step = 0; step < 3; ++step) {
    Tensor la = ops::SumAll(ops::Scale(p1, 0.5f));
    la.Backward();
    a.Step();
    a.ZeroGrad();
    Tensor lb = ops::SumAll(ops::Scale(p2, 0.5f));
    lb.Backward();
    b.Step();
    b.ZeroGrad();
  }
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(p1.at(i), p2.at(i));
  EXPECT_EQ(a.num_steps(), 8);
  EXPECT_EQ(b.num_steps(), 8);
}

TEST(AdamTest, ImportStateRejectsMismatchedShapes) {
  Tensor p = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f}).set_requires_grad(true);
  Adam adam(std::vector<Tensor>{p}, nn::AdamOptions{});
  nn::AdamState wrong = adam.ExportState();
  wrong.m.pop_back();  // wrong parameter count
  EXPECT_FALSE(adam.ImportState(wrong));
  nn::AdamState resized = adam.ExportState();
  resized.v[0].resize(2);  // wrong element count
  EXPECT_FALSE(adam.ImportState(resized));
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(9);
  TransformerStack original(2, 8, 2, 16, &rng);
  const std::string path = ::testing::TempDir() + "/tfmae_ckpt.bin";
  ASSERT_TRUE(SaveParameters(original, path));

  Rng rng2(1234);  // different init
  TransformerStack reloaded(2, 8, 2, 16, &rng2);
  ASSERT_TRUE(LoadParameters(&reloaded, path));
  const auto a = original.NamedParameters();
  const auto b = reloaded.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second.ToVector(), b[i].second.ToVector()) << a[i].first;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadFailsOnMissingFileOrGarbage) {
  Rng rng(10);
  Linear model(2, 2, &rng);
  EXPECT_FALSE(LoadParameters(&model, "/nonexistent/path.bin"));
  const std::string path = ::testing::TempDir() + "/tfmae_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  EXPECT_FALSE(LoadParameters(&model, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tfmae::nn
