// Tests for the FFT library: agreement with the reference DFT, inverse
// round-trips across lengths (including non-powers-of-two via Bluestein),
// convolution, and the moving-sum primitives behind Eq. (5).
#include "fft/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fft/convolution.h"
#include "util/rng.h"

namespace tfmae::fft {
namespace {

std::vector<Complex> RandomSignal(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> signal(static_cast<std::size_t>(n));
  for (auto& value : signal) {
    value = Complex(rng.Normal(), rng.Normal());
  }
  return signal;
}

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(100));
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(100), 128);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
}

TEST(FftTest, MatchesNaiveDftSmall) {
  const std::vector<Complex> signal = RandomSignal(8, 1);
  const std::vector<Complex> fast = Fft(signal);
  const std::vector<Complex> slow = NaiveDft(signal);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-9);
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-9);
  }
}

TEST(FftTest, KnownSpectrumOfImpulse) {
  // DFT of a unit impulse at t=0 is all-ones.
  std::vector<Complex> impulse(16, Complex(0, 0));
  impulse[0] = Complex(1, 0);
  const std::vector<Complex> spectrum = Fft(impulse);
  for (const Complex& bin : spectrum) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, KnownSpectrumOfCosine) {
  // cos(2*pi*k0*t/n) has amplitude n/2 at bins k0 and n-k0.
  const std::int64_t n = 32;
  const std::int64_t k0 = 5;
  std::vector<Complex> signal(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    signal[static_cast<std::size_t>(t)] =
        Complex(std::cos(2.0 * M_PI * k0 * t / static_cast<double>(n)), 0);
  }
  const std::vector<double> amplitude = Amplitude(Fft(signal));
  for (std::int64_t k = 0; k < n; ++k) {
    if (k == k0 || k == n - k0) {
      EXPECT_NEAR(amplitude[static_cast<std::size_t>(k)], n / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(amplitude[static_cast<std::size_t>(k)], 0.0, 1e-9);
    }
  }
}

// Round-trip across many lengths, exercising both radix-2 and Bluestein.
class FftRoundTripTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FftRoundTripTest, IfftInvertsFft) {
  const std::int64_t n = GetParam();
  const std::vector<Complex> signal = RandomSignal(n, 1000 + n);
  const std::vector<Complex> recovered = Ifft(Fft(signal));
  ASSERT_EQ(recovered.size(), signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(recovered[i].real(), signal[i].real(), 1e-8) << "n=" << n;
    EXPECT_NEAR(recovered[i].imag(), signal[i].imag(), 1e-8) << "n=" << n;
  }
}

TEST_P(FftRoundTripTest, MatchesNaiveDft) {
  const std::int64_t n = GetParam();
  if (n > 256) GTEST_SKIP() << "naive DFT too slow";
  const std::vector<Complex> signal = RandomSignal(n, 2000 + n);
  const std::vector<Complex> fast = Fft(signal);
  const std::vector<Complex> slow = NaiveDft(signal);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(std::abs(fast[i] - slow[i]), 0.0, 1e-7) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 50, 100, 127,
                                           128, 255, 256, 1000, 1024));

TEST(FftTest, RealFftRoundTrip) {
  Rng rng(7);
  std::vector<double> signal(100);
  for (double& v : signal) v = rng.Normal();
  const std::vector<double> recovered = RealIfft(RealFft(signal));
  ASSERT_EQ(recovered.size(), signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(recovered[i], signal[i], 1e-8);
  }
}

TEST(FftTest, RealSpectrumIsConjugateSymmetric) {
  Rng rng(8);
  std::vector<double> signal(64);
  for (double& v : signal) v = rng.Normal();
  const std::vector<Complex> spectrum = RealFft(signal);
  for (std::size_t k = 1; k < signal.size(); ++k) {
    const Complex conj = std::conj(spectrum[signal.size() - k]);
    EXPECT_NEAR(spectrum[k].real(), conj.real(), 1e-8);
    EXPECT_NEAR(spectrum[k].imag(), conj.imag(), 1e-8);
  }
}

TEST(ConvolutionTest, FftMatchesNaive) {
  Rng rng(9);
  std::vector<double> a(37);
  std::vector<double> b(12);
  for (double& v : a) v = rng.Normal();
  for (double& v : b) v = rng.Normal();
  const std::vector<double> fast = FftConvolve(a, b);
  const std::vector<double> slow = NaiveConvolve(a, b);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-8);
  }
}

class MovingSumTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(MovingSumTest, FftMatchesNaive) {
  const auto [n, w] = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(n * 31 + w));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.Normal();
  const std::vector<double> fast = fft::MovingSumFft(x, w);
  const std::vector<double> slow = fft::MovingSumNaive(x, w);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7) << "n=" << n << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MovingSumTest,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 5, 50, 100, 333),
                       ::testing::Values<std::int64_t>(1, 3, 10, 25)));

TEST(MovingSumTest, KnownValues) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> sums = MovingSumNaive(x, 3);
  // Truncated prefix windows at the head.
  EXPECT_NEAR(sums[0], 1.0, 1e-12);
  EXPECT_NEAR(sums[1], 3.0, 1e-12);
  EXPECT_NEAR(sums[2], 6.0, 1e-12);
  EXPECT_NEAR(sums[3], 9.0, 1e-12);
  EXPECT_NEAR(sums[4], 12.0, 1e-12);
}

}  // namespace
}  // namespace tfmae::fft
