// Serving resilience suite (docs/RESILIENCE.md, "Serving resilience").
//
// The load-bearing claim: a FleetServer killed mid-run, rebuilt from its
// newest valid snapshot, and re-fed each stream's rows from total_pushed()
// on produces scores BITWISE-identical to an uninterrupted run — at 1/2/4
// threads, including across a corrupted-newest-snapshot fallback, and
// including windows that were queued but unscored when the snapshot was
// cut. Everything else here pins the rest of the resilience plane: typed
// overload shedding (drop-oldest victims are observable, block-deadline
// self-services the backlog), the sticky degraded-mode latch, the drain
// latch under concurrent producers, the scoring watchdog, and the
// serve.push / serve.score / serve.snapshot_write fault points.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/streaming.h"
#include "serve/fleet_server.h"
#include "serve/fleet_snapshot.h"
#include "util/checkpoint_file.h"
#include "util/fault.h"
#include "util/thread_pool.h"

#define SKIP_WITHOUT_FAULT_BUILD()                                       \
  do {                                                                   \
    if (!fault::CompiledIn()) {                                          \
      GTEST_SKIP() << "fault injection points require -DTFMAE_FAULTS=ON"; \
    }                                                                    \
  } while (0)

namespace tfmae::serve {
namespace {

constexpr std::int64_t kWindow = 16;
constexpr std::int64_t kFeatures = 2;

core::TfmaeConfig TestConfig() {
  core::TfmaeConfig config;
  config.window = kWindow;
  config.stride = kWindow;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 1;
  config.seed = 11;
  return config;
}

// One fitted detector shared by every test in the suite (training once
// keeps the suite fast; all tests treat it as read-only).
core::TfmaeDetector* SharedDetector() {
  static core::TfmaeDetector* detector = [] {
    auto* d = new core::TfmaeDetector(TestConfig());
    data::TimeSeries train;
    train.length = 256;
    train.num_features = kFeatures;
    train.values.resize(
        static_cast<std::size_t>(train.length * train.num_features));
    for (std::int64_t t = 0; t < train.length; ++t) {
      for (std::int64_t f = 0; f < kFeatures; ++f) {
        train.values[static_cast<std::size_t>(t * kFeatures + f)] =
            std::sin(0.19 * static_cast<double>(t) +
                     0.7 * static_cast<double>(f)) +
            0.05 * std::cos(0.83 * static_cast<double>(t));
      }
    }
    d->Fit(train);
    return d;
  }();
  return detector;
}

std::vector<float> RowFor(std::int64_t stream, std::int64_t t) {
  std::vector<float> row(static_cast<std::size_t>(kFeatures));
  for (std::int64_t f = 0; f < kFeatures; ++f) {
    row[static_cast<std::size_t>(f)] = static_cast<float>(
        std::sin(0.19 * static_cast<double>(t + 3 * stream) +
                 0.7 * static_cast<double>(f)) +
        0.01 * static_cast<double>(stream % 5));
  }
  return row;
}

core::StreamingOptions TestStreaming() {
  core::StreamingOptions options;
  options.window = kWindow;
  options.hop = 3;
  return options;
}

std::uint32_t BitsOf(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// (stream, seq) -> float32 score bits. The unit of the union-of-runs
// equality: a window's identity is the push that triggered it, its value
// the exact bits the model emitted.
using ScoreMap = std::map<std::pair<std::int64_t, std::int64_t>, std::uint32_t>;

// Folds a TakeResults batch into `map`. Duplicate keys (a window scored in
// both the crashed and the resumed run) are legal but must agree bitwise.
void MergeResults(const std::vector<ScoredWindow>& results, ScoreMap* map) {
  for (const ScoredWindow& r : results) {
    if (r.shed) continue;
    const auto key = std::make_pair(r.stream, r.seq);
    const std::uint32_t bits = BitsOf(r.score);
    auto [it, inserted] = map->insert({key, bits});
    if (!inserted) {
      EXPECT_EQ(it->second, bits)
          << "stream " << r.stream << " seq " << r.seq
          << " scored differently in two runs";
    }
  }
}

// Reference: the per-(stream, seq) score bits a sequential per-stream
// StreamingDetector emits over `rows` pushes — exactly the windows the
// fleet server enqueues (same cadence rule as StreamState).
ScoreMap SequentialReferenceMap(std::int64_t streams, std::int64_t rows) {
  ScoreMap reference;
  for (std::int64_t s = 0; s < streams; ++s) {
    core::StreamingDetector stream(SharedDetector(), TestStreaming());
    std::int64_t since = 0;
    bool scored_once = false;
    for (std::int64_t t = 0; t < rows; ++t) {
      const auto r = stream.Push(RowFor(s, t));
      if (!r.has_value()) continue;
      ++since;
      if (since >= TestStreaming().hop || !scored_once) {
        reference[{s, t}] = BitsOf(r->score);
        scored_once = true;
        since = 0;
      }
    }
  }
  return reference;
}

// Feeds ticks [from, to) across all streams (tick-major, matching how the
// soak driver replays), folding results into `map` after every tick.
void FeedTicks(FleetServer* server, const std::vector<std::int64_t>& ids,
               std::int64_t from, std::int64_t to, ScoreMap* map) {
  for (std::int64_t t = from; t < to; ++t) {
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(ids.size()); ++s) {
      AdmitStatus status =
          server->Push(ids[static_cast<std::size_t>(s)], RowFor(s, t));
      int guard = 0;
      while (status == AdmitStatus::kOverloaded && ++guard < 64) {
        server->Flush();
        status = server->Push(ids[static_cast<std::size_t>(s)], RowFor(s, t));
      }
      ASSERT_NE(status, AdmitStatus::kOverloaded);
      ASSERT_NE(status, AdmitStatus::kRejectedRow);
    }
    if (map != nullptr) MergeResults(server->TakeResults(), map);
  }
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Flips one byte in the middle of a file — the torn/bit-rotted newest
// snapshot the fallback walk must reject as a unit.
void CorruptFile(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, 32);
  const std::streamoff at = size / 2;
  f.seekg(at);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(at);
  f.write(&byte, 1);
}

// ---- Tentpole: kill / restore / re-feed == uninterrupted, bitwise --------

TEST(FleetSnapshotRestoreTest, RestoredRunBitwiseEqualsUninterruptedAt124) {
  const std::int64_t kStreams = 5;
  const std::int64_t kRows = 60;
  const std::int64_t kCut = 33;   // mid-hop, so pending windows exist
  const std::int64_t kLost = 7;   // post-snapshot work the "crash" loses
  const ScoreMap reference = SequentialReferenceMap(kStreams, kRows);
  ASSERT_FALSE(reference.empty());

  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool::Instance().SetNumThreads(threads);
    const std::string dir =
        FreshDir("tfmae_resilience_t" + std::to_string(threads));

    FleetOptions options;
    options.streaming = TestStreaming();
    options.batch_max = 4;
    options.snapshot_dir = dir;

    // Run 1: ingest to the cut, snapshot, then keep going — and "crash"
    // before any of the post-snapshot results are taken. Everything after
    // the snapshot must be regenerated by the resumed run.
    ScoreMap crash_map;
    {
      FleetServer server(SharedDetector(), options);
      std::vector<std::int64_t> ids;
      for (std::int64_t s = 0; s < kStreams; ++s) {
        ids.push_back(server.OpenStream());
      }
      FeedTicks(&server, ids, 0, kCut, &crash_map);
      std::string error;
      ASSERT_TRUE(server.SnapshotNow(&error)) << error;
      EXPECT_EQ(server.snapshot_index(), 1);
      FeedTicks(&server, ids, kCut, kCut + kLost, nullptr);
      // Destructor drains; its results are never observed — the crash.
    }

    // Run 2: fresh server, newest valid snapshot, re-feed the tail from
    // each stream's recorded position.
    std::string error;
    auto found = FindLatestValidFleetSnapshot(dir, &error);
    ASSERT_TRUE(found.has_value()) << error;
    FleetServer resumed(SharedDetector(), options);
    ASSERT_TRUE(resumed.Restore(found->second, &error)) << error;
    ASSERT_EQ(resumed.num_streams(), kStreams);
    EXPECT_EQ(resumed.stats().rows_pushed, kStreams * kCut);
    std::vector<std::int64_t> ids;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ids.push_back(s);
      ASSERT_EQ(resumed.total_pushed(s), kCut) << "stream " << s;
    }
    ScoreMap resume_map;
    FeedTicks(&resumed, ids, kCut, kRows, &resume_map);
    resumed.Drain();
    MergeResults(resumed.TakeResults(), &resume_map);

    // union(crashed, resumed) == uninterrupted reference, key for key and
    // bit for bit. MergeResults already pinned duplicate agreement.
    ScoreMap combined = crash_map;
    for (const auto& [key, bits] : resume_map) {
      auto [it, inserted] = combined.insert({key, bits});
      if (!inserted) {
        EXPECT_EQ(it->second, bits)
            << "stream " << key.first << " seq " << key.second
            << " disagrees between crashed and resumed runs";
      }
    }
    EXPECT_EQ(combined, reference);
  }
  ThreadPool::Instance().SetNumThreads(1);
}

TEST(FleetSnapshotRestoreTest, FallsBackPastCorruptedNewestSnapshot) {
  ThreadPool::Instance().SetNumThreads(1);
  const std::int64_t kStreams = 3;
  const std::int64_t kRows = 60;
  const ScoreMap reference = SequentialReferenceMap(kStreams, kRows);
  const std::string dir = FreshDir("tfmae_resilience_corrupt");

  FleetOptions options;
  options.streaming = TestStreaming();
  options.batch_max = 4;
  options.snapshot_dir = dir;

  ScoreMap crash_map;
  {
    FleetServer server(SharedDetector(), options);
    std::vector<std::int64_t> ids;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ids.push_back(server.OpenStream());
    }
    FeedTicks(&server, ids, 0, 20, &crash_map);
    std::string error;
    ASSERT_TRUE(server.SnapshotNow(&error)) << error;
    FeedTicks(&server, ids, 20, 40, &crash_map);
    ASSERT_TRUE(server.SnapshotNow(&error)) << error;
  }

  // Corrupt the newest snapshot: the walk must reject it (CRC) and fall
  // back to index 1, and the resumed run must still match bitwise.
  CorruptFile(FleetSnapshotPath(dir, 2));
  std::string error;
  EXPECT_FALSE(ReadFleetSnapshot(FleetSnapshotPath(dir, 2), &error).has_value());
  auto found = FindLatestValidFleetSnapshot(dir, &error);
  ASSERT_TRUE(found.has_value()) << error;
  EXPECT_EQ(found->first, FleetSnapshotPath(dir, 1));
  EXPECT_EQ(found->second.index, 1u);

  FleetServer resumed(SharedDetector(), options);
  ASSERT_TRUE(resumed.Restore(found->second, &error)) << error;
  std::vector<std::int64_t> ids;
  for (std::int64_t s = 0; s < kStreams; ++s) {
    ids.push_back(s);
    ASSERT_EQ(resumed.total_pushed(s), 20);
  }
  ScoreMap resume_map;
  FeedTicks(&resumed, ids, 20, kRows, &resume_map);
  resumed.Drain();
  MergeResults(resumed.TakeResults(), &resume_map);

  ScoreMap combined = crash_map;
  for (const auto& [key, bits] : resume_map) {
    auto [it, inserted] = combined.insert({key, bits});
    if (!inserted) {
      EXPECT_EQ(it->second, bits);
    }
  }
  EXPECT_EQ(combined, reference);
}

TEST(FleetSnapshotRestoreTest, PendingQueueIsCapturedAndRescoredOnRestore) {
  ThreadPool::Instance().SetNumThreads(1);
  const std::int64_t kStreams = 2;
  const std::int64_t kRows = 25;
  const ScoreMap reference = SequentialReferenceMap(kStreams, kRows);
  const std::string dir = FreshDir("tfmae_resilience_pending");

  FleetOptions options;
  options.streaming = TestStreaming();
  options.auto_flush = false;  // windows accumulate: the snapshot must carry
  options.snapshot_dir = dir;  // the whole unscored backlog

  {
    FleetServer server(SharedDetector(), options);
    std::vector<std::int64_t> ids;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ids.push_back(server.OpenStream());
    }
    FeedTicks(&server, ids, 0, kRows, nullptr);
    EXPECT_TRUE(server.TakeResults().empty());  // nothing flushed yet
    std::string error;
    ASSERT_TRUE(server.SnapshotNow(&error)) << error;
  }

  std::string error;
  auto data = ReadFleetSnapshot(FleetSnapshotPath(dir, 1), &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->pending.size(), reference.size());
  for (const PendingWindow& p : data->pending) {
    EXPECT_EQ(p.values.size(),
              static_cast<std::size_t>(kWindow * kFeatures));
    EXPECT_TRUE(reference.count({p.stream, p.seq}))
        << "unexpected pending window stream " << p.stream << " seq "
        << p.seq;
  }

  // Restore and drain WITHOUT pushing anything more: every score must come
  // from the re-enqueued pending windows alone.
  FleetServer resumed(SharedDetector(), options);
  ASSERT_TRUE(resumed.Restore(*data, &error)) << error;
  resumed.Drain();
  ScoreMap scores;
  MergeResults(resumed.TakeResults(), &scores);
  EXPECT_EQ(scores, reference);
}

TEST(FleetSnapshotRestoreTest, RestoreRejectsMismatchedServerOrSnapshot) {
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = TestStreaming();

  FleetSnapshotData data;
  {
    FleetServer server(SharedDetector(), options);
    const std::int64_t id = server.OpenStream();
    ScoreMap scratch;
    FeedTicks(&server, {id}, 0, 20, &scratch);
    const std::string dir = FreshDir("tfmae_resilience_mismatch");
    FleetOptions with_dir = options;
    with_dir.snapshot_dir = dir;
    FleetServer snap_server(SharedDetector(), with_dir);
    (void)snap_server.OpenStream();
    std::string error;
    ASSERT_TRUE(snap_server.SnapshotNow(&error)) << error;
    auto read = ReadFleetSnapshot(FleetSnapshotPath(dir, 1), &error);
    ASSERT_TRUE(read.has_value()) << error;
    data = *read;
  }

  // Not fresh: a server that already opened streams must refuse.
  {
    FleetServer server(SharedDetector(), options);
    (void)server.OpenStream();
    std::string error;
    EXPECT_FALSE(server.Restore(data, &error));
    EXPECT_FALSE(error.empty());
  }
  // Streaming-options mismatch (hop cadence is part of the state's meaning).
  {
    FleetOptions other = options;
    other.streaming.hop = TestStreaming().hop + 1;
    FleetServer server(SharedDetector(), other);
    std::string error;
    EXPECT_FALSE(server.Restore(data, &error));
    EXPECT_FALSE(error.empty());
  }
  // Config CRC mismatch (wrong model for this snapshot).
  {
    FleetSnapshotData tampered = data;
    tampered.config_crc ^= 0xDEADBEEFu;
    FleetServer server(SharedDetector(), options);
    std::string error;
    EXPECT_FALSE(server.Restore(tampered, &error));
    EXPECT_FALSE(error.empty());
  }
  // A valid restore still works after all those rejections.
  {
    FleetServer server(SharedDetector(), options);
    std::string error;
    EXPECT_TRUE(server.Restore(data, &error)) << error;
  }
}

TEST(FleetSnapshotFileTest, PathFormatPruneAndLatestWalk) {
  EXPECT_EQ(FleetSnapshotPath("/tmp/x", 7), "/tmp/x/fleet_00000007.tfmae");

  const std::string dir = FreshDir("tfmae_resilience_prune");
  std::filesystem::create_directories(dir);
  FleetSnapshotData data;
  data.streaming = TestStreaming();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    data.index = i;
    std::string error;
    ASSERT_TRUE(WriteFleetSnapshot(data, FleetSnapshotPath(dir, i), &error))
        << error;
  }
  PruneFleetSnapshots(dir, 2);
  EXPECT_FALSE(std::filesystem::exists(FleetSnapshotPath(dir, 3)));
  EXPECT_TRUE(std::filesystem::exists(FleetSnapshotPath(dir, 4)));
  EXPECT_TRUE(std::filesystem::exists(FleetSnapshotPath(dir, 5)));

  std::string error;
  auto found = FindLatestValidFleetSnapshot(dir, &error);
  ASSERT_TRUE(found.has_value()) << error;
  EXPECT_EQ(found->second.index, 5u);

  // Empty / missing directory: clean nullopt, not a crash.
  EXPECT_FALSE(
      FindLatestValidFleetSnapshot(dir + "_does_not_exist", &error).has_value());
}

// ---- StreamState codec: a decoded stream continues bitwise-identically ---

TEST(StreamStateCodecTest, DecodedStreamContinuesBitwiseIdentically) {
  core::StreamingOptions options;
  options.window = 8;
  options.hop = 3;
  options.impute_staleness_cap = 2;

  core::StreamState original(options);
  for (std::int64_t t = 0; t < 13; ++t) {
    std::vector<float> row = {static_cast<float>(t) * 0.5f,
                              std::sin(static_cast<float>(t))};
    if (t == 9) row[0] = std::nanf("");  // exercise LOCF repair state
    const auto outcome = original.Absorb(row);
    if (outcome.rescore_due) {
      original.CommitRescore(0.25f * static_cast<float>(t));
    }
  }
  original.set_threshold(1.5f);

  util::ByteWriter writer;
  original.EncodeTo(&writer);
  const std::vector<char> payload = writer.Take();

  core::StreamState decoded(options);
  util::ByteReader reader(payload.data(), payload.size());
  ASSERT_TRUE(decoded.DecodeFrom(&reader));
  ASSERT_TRUE(reader.AtEnd());

  EXPECT_EQ(decoded.total_pushed(), original.total_pushed());
  EXPECT_EQ(decoded.buffered_rows(), original.buffered_rows());
  EXPECT_EQ(decoded.threshold(), original.threshold());
  EXPECT_EQ(BitsOf(decoded.last_tail_score()),
            BitsOf(original.last_tail_score()));

  // Continue both with the same tail (including another repair) — every
  // outcome and the full window contents must stay identical.
  for (std::int64_t t = 13; t < 30; ++t) {
    std::vector<float> row = {static_cast<float>(t) * 0.5f,
                              std::sin(static_cast<float>(t))};
    if (t == 17) row[1] = std::nanf("");
    const auto a = original.Absorb(row);
    const auto b = decoded.Absorb(std::move(row));
    ASSERT_EQ(a.status, b.status) << "t=" << t;
    ASSERT_EQ(a.rescore_due, b.rescore_due) << "t=" << t;
    ASSERT_EQ(a.fresh, b.fresh) << "t=" << t;
    ASSERT_EQ(a.imputed_values, b.imputed_values) << "t=" << t;
    if (a.rescore_due) {
      const float score = 0.25f * static_cast<float>(t);
      original.CommitRescore(score);
      decoded.CommitRescore(score);
    }
  }
  ASSERT_EQ(original.window().size(), decoded.window().size());
  for (std::size_t i = 0; i < original.window().size(); ++i) {
    EXPECT_EQ(BitsOf(original.window()[i]), BitsOf(decoded.window()[i]))
        << "window value " << i;
  }
  EXPECT_EQ(original.health().rows_imputed, decoded.health().rows_imputed);
  EXPECT_EQ(original.health().values_imputed, decoded.health().values_imputed);
  EXPECT_EQ(original.health().rows_scored, decoded.health().rows_scored);

  // Truncated payloads are rejected, not misread.
  for (const std::size_t cut : {payload.size() / 2, payload.size() - 1}) {
    core::StreamState fresh(options);
    util::ByteReader short_reader(payload.data(), cut);
    EXPECT_FALSE(fresh.DecodeFrom(&short_reader)) << "cut=" << cut;
  }
}

// ---- Shedding, degraded mode, drain --------------------------------------

core::StreamingOptions HopOneStreaming() {
  core::StreamingOptions options;
  options.window = kWindow;
  options.hop = 1;  // every warm push is rescore-due: easy queue pressure
  return options;
}

TEST(FleetShedTest, DropOldestEvictsOldestAndPublishesShedMarkers) {
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = HopOneStreaming();
  options.queue_capacity = 4;
  options.auto_flush = false;
  options.shed_policy = ShedPolicy::kDropOldest;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  // 16 warm-up pushes enqueue the first window (seq 15); 8 more enqueue
  // seqs 16..23. Capacity 4 => the 5 oldest (15..19) are evicted.
  for (std::int64_t t = 0; t < 24; ++t) {
    const AdmitStatus status = server.Push(id, RowFor(0, t));
    ASSERT_NE(status, AdmitStatus::kOverloaded) << "t=" << t;
  }
  EXPECT_EQ(server.stats().shed_dropped, 5);
  EXPECT_EQ(server.stats().rows_pushed, 24);  // drop-oldest consumes the row

  std::vector<ScoredWindow> shed;
  for (const ScoredWindow& r : server.TakeResults()) {
    ASSERT_TRUE(r.shed);  // nothing scored yet: only victims are visible
    shed.push_back(r);
  }
  ASSERT_EQ(shed.size(), 5u);
  for (std::size_t i = 0; i < shed.size(); ++i) {
    EXPECT_EQ(shed[i].stream, id);
    EXPECT_EQ(shed[i].seq, 15 + static_cast<std::int64_t>(i));
  }

  // The survivors (the 4 newest) still score normally.
  EXPECT_EQ(server.Flush(), 4);
  std::vector<std::int64_t> scored_seqs;
  for (const ScoredWindow& r : server.TakeResults()) {
    EXPECT_FALSE(r.shed);
    scored_seqs.push_back(r.seq);
  }
  EXPECT_EQ(scored_seqs, (std::vector<std::int64_t>{20, 21, 22, 23}));
}

TEST(FleetShedTest, BlockDeadlineSelfServicesTheBacklog) {
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = HopOneStreaming();
  options.queue_capacity = 2;
  options.auto_flush = false;
  options.shed_policy = ShedPolicy::kBlockDeadline;
  options.shed_deadline_ms = 1000;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  // The caller never flushes; admission flushes for it. No push may fail.
  for (std::int64_t t = 0; t < 30; ++t) {
    ASSERT_NE(server.Push(id, RowFor(0, t)), AdmitStatus::kOverloaded)
        << "t=" << t;
  }
  server.Drain();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rows_overloaded, 0);
  EXPECT_EQ(stats.shed_deadline_expired, 0);
  EXPECT_EQ(stats.windows_scored, 15);  // seqs 15..29, hop 1
  EXPECT_EQ(stats.windows_enqueued, stats.windows_scored);
}

TEST(FleetShedTest, DegradedModeLatchesAndStaysSticky) {
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = HopOneStreaming();
  options.queue_capacity = 2;
  options.auto_flush = false;
  options.shed_policy = ShedPolicy::kRejectNew;
  options.degraded_after = 3;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  for (std::int64_t t = 0; t < 17; ++t) {  // fills the queue (seqs 15, 16)
    ASSERT_NE(server.Push(id, RowFor(0, t)), AdmitStatus::kOverloaded);
  }
  EXPECT_FALSE(server.degraded());
  for (int strike = 0; strike < 3; ++strike) {
    EXPECT_EQ(server.Push(id, RowFor(0, 17)), AdmitStatus::kOverloaded);
  }
  EXPECT_TRUE(server.degraded());
  EXPECT_TRUE(server.stats().degraded);

  // Recovery does not clear the latch: it marks "this run saturated once".
  server.Flush();
  EXPECT_NE(server.Push(id, RowFor(0, 17)), AdmitStatus::kOverloaded);
  EXPECT_TRUE(server.degraded());
}

TEST(FleetDrainTest, DrainLatchesAgainstConcurrentProducers) {
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = TestStreaming();
  options.batch_max = 8;
  FleetServer server(SharedDetector(), options);
  constexpr int kProducers = 4;
  std::vector<std::int64_t> ids;
  for (int s = 0; s < kProducers; ++s) ids.push_back(server.OpenStream());

  std::atomic<int> saw_draining{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int s = 0; s < kProducers; ++s) {
    producers.emplace_back([&, s] {
      for (std::int64_t t = 0; t < 2000000; ++t) {
        const AdmitStatus status =
            server.Push(ids[static_cast<std::size_t>(s)], RowFor(s, t));
        if (status == AdmitStatus::kDraining) {
          saw_draining.fetch_add(1);
          return;  // producer exits: the latch ends ingest, no livelock
        }
        if (status == AdmitStatus::kOverloaded) server.Flush();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Drain();
  for (auto& p : producers) p.join();

  EXPECT_EQ(saw_draining.load(), kProducers);
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.Push(ids[0], RowFor(0, 0)), AdmitStatus::kDraining);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.windows_scored, stats.windows_enqueued);  // nothing dropped
  EXPECT_GT(stats.rows_pushed, 0);
}

// ---- Fault-gated: serve.push / serve.score / serve.snapshot_write --------

TEST(FleetFaultTest, InjectedPushFaultIsRetryable) {
  SKIP_WITHOUT_FAULT_BUILD();
  ThreadPool::Instance().SetNumThreads(1);
  fault::ScopedFaults faults("serve.push:#2");
  FleetOptions options;
  options.streaming = TestStreaming();
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  EXPECT_NE(server.Push(id, RowFor(0, 0)), AdmitStatus::kOverloaded);
  // The second check fires: the row must NOT be consumed...
  EXPECT_EQ(server.Push(id, RowFor(0, 1)), AdmitStatus::kOverloaded);
  EXPECT_EQ(server.total_pushed(id), 1);
  // ...and the same row retried verbatim goes through.
  EXPECT_NE(server.Push(id, RowFor(0, 1)), AdmitStatus::kOverloaded);
  EXPECT_EQ(server.total_pushed(id), 2);
  EXPECT_EQ(server.stats().rows_overloaded, 1);
}

TEST(FleetFaultTest, SnapshotWriteFaultLeavesPreviousSnapshotUsable) {
  SKIP_WITHOUT_FAULT_BUILD();
  ThreadPool::Instance().SetNumThreads(1);
  const std::string dir = FreshDir("tfmae_resilience_snapfault");
  FleetOptions options;
  options.streaming = TestStreaming();
  options.snapshot_dir = dir;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();
  ScoreMap scratch;
  FeedTicks(&server, {id}, 0, 20, &scratch);

  std::string error;
  ASSERT_TRUE(server.SnapshotNow(&error)) << error;
  {
    fault::ScopedFaults faults("serve.snapshot_write:#1");
    EXPECT_FALSE(server.SnapshotNow(&error));
    EXPECT_FALSE(error.empty());
  }
  EXPECT_EQ(server.stats().snapshots_failed, 1);
  EXPECT_EQ(server.stats().snapshots_written, 1);

  // The failed write consumed nothing durable: the previous snapshot is
  // still the newest valid one and still restores.
  auto found = FindLatestValidFleetSnapshot(dir, &error);
  ASSERT_TRUE(found.has_value()) << error;
  EXPECT_EQ(found->second.index, 1u);
  FleetServer resumed(SharedDetector(), options);
  EXPECT_TRUE(resumed.Restore(found->second, &error)) << error;
  EXPECT_EQ(resumed.total_pushed(0), 20);
}

TEST(FleetFaultTest, WatchdogFlagsAStalledBatch) {
  SKIP_WITHOUT_FAULT_BUILD();
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = HopOneStreaming();
  options.auto_flush = false;
  options.watchdog_stall_ms = 5;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();
  for (std::int64_t t = 0; t < 16; ++t) {
    ASSERT_NE(server.Push(id, RowFor(0, t)), AdmitStatus::kOverloaded);
  }

  {
    // serve.score stretches every batch ~50ms — 10x the stall budget.
    fault::ScopedFaults faults("serve.score:1.0");
    EXPECT_EQ(server.Flush(), 1);
  }
  EXPECT_GE(server.stats().watchdog_stalls, 1);
}

TEST(FleetFaultTest, BlockDeadlineExpiresWhileScoringIsStalled) {
  SKIP_WITHOUT_FAULT_BUILD();
  ThreadPool::Instance().SetNumThreads(1);
  FleetOptions options;
  options.streaming = HopOneStreaming();
  options.queue_capacity = 1;
  options.auto_flush = false;
  options.shed_policy = ShedPolicy::kBlockDeadline;
  options.shed_deadline_ms = 10;
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();
  for (std::int64_t t = 0; t < 16; ++t) {  // enqueues seq 15 (queue 1/1)
    ASSERT_NE(server.Push(id, RowFor(0, t)), AdmitStatus::kOverloaded);
  }

  fault::ScopedFaults faults("serve.score:1.0");
  // A background Flush holds the scorer for ~50ms; the pushing thread
  // cannot self-service past a busy scorer and must give up at the
  // deadline instead of blocking forever.
  std::thread scorer([&server] { server.Flush(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_NE(server.Push(id, RowFor(0, 16)), AdmitStatus::kOverloaded);
  const AdmitStatus status = server.Push(id, RowFor(0, 17));
  scorer.join();
  EXPECT_EQ(status, AdmitStatus::kOverloaded);
  EXPECT_GE(server.stats().shed_deadline_expired, 1);
}

}  // namespace
}  // namespace tfmae::serve
