// Prometheus text-exposition renderer tests (docs/OBSERVABILITY.md, "Live
// endpoints & SLOs").
//
// The renderer is a pure function of a MetricsSnapshot, so most tests here
// construct snapshots by hand and pin the exposition-format contract:
// sanitized names, `_total` counter suffix, HELP/TYPE per family, cumulative
// monotone `_bucket{le=...}` series ending in `+Inf` == `_count`, and
// byte-identical output for identical state. One test renders the live
// registry to prove registered metrics actually surface in a scrape.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prom_export.h"

namespace tfmae::obs {
namespace {

// Count occurrences of `needle` in `text`.
int Occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++n;
  }
  return n;
}

TEST(PromExportTest, MetricNameSanitizes) {
  EXPECT_EQ(PromMetricName("serve.stage.queue_ns"), "serve_stage_queue_ns");
  EXPECT_EQ(PromMetricName("already_fine:name_09"), "already_fine:name_09");
  EXPECT_EQ(PromMetricName("weird-bytes here!"), "weird_bytes_here_");
  // A leading digit gets a '_' prepended (names must not start with one).
  EXPECT_EQ(PromMetricName("9lives.total"), "_9lives_total");
  EXPECT_EQ(PromMetricName(""), "");
}

TEST(PromExportTest, EscapeLabelHandlesBackslashQuoteNewline) {
  EXPECT_EQ(PromEscapeLabel("plain"), "plain");
  EXPECT_EQ(PromEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PromEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(PromExportTest, RendersCountersWithTotalSuffixAndHeaders) {
  MetricsSnapshot snap;
  snap.counters.push_back({"serve.batch.windows", 42});
  const std::string out = RenderPrometheusText(snap);
  EXPECT_NE(out.find("# HELP tfmae_serve_batch_windows_total tfmae counter "
                     "serve.batch.windows\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE tfmae_serve_batch_windows_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_batch_windows_total 42\n"),
            std::string::npos);
}

TEST(PromExportTest, RendersGaugesIncludingNegativeValues) {
  MetricsSnapshot snap;
  snap.gauges.push_back({"serve.queue.depth", -7});
  const std::string out = RenderPrometheusText(snap);
  EXPECT_NE(out.find("# TYPE tfmae_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_queue_depth -7\n"), std::string::npos);
}

TEST(PromExportTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  HistogramSnapshot h;
  h.name = "serve.stage.score_ns";
  // Samples 0, 1, 5, 5: bucket 0 holds {0}, bucket 1 holds {1}, bucket 3
  // holds {5, 5} (bucket b >= 1 spans [2^(b-1), 2^b)).
  h.buckets[HistogramBucket(0)] += 1;
  h.buckets[HistogramBucket(1)] += 1;
  h.buckets[HistogramBucket(5)] += 2;
  h.count = 4;
  h.sum = 11;
  h.min = 0;
  h.max = 5;
  MetricsSnapshot snap;
  snap.histograms.push_back(h);
  const std::string out = RenderPrometheusText(snap);

  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  // Bucket 2 (le="3") is empty but sits below the top populated bucket, so
  // the cumulative series still emits it, carrying the running total.
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_bucket{le=\"7\"} 4\n"),
            std::string::npos);
  // Nothing renders past the top populated bucket except the mandatory
  // +Inf, which always equals _count.
  EXPECT_EQ(out.find("le=\"15\""), std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_sum 11\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_score_ns_count 4\n"),
            std::string::npos);

  // Cumulative counts parsed back out of the text must be monotone
  // non-decreasing in bucket order.
  std::vector<std::uint64_t> cumulative;
  const std::string key = "_bucket{le=\"";
  for (std::size_t pos = out.find(key); pos != std::string::npos;
       pos = out.find(key, pos + 1)) {
    const std::size_t space = out.find(' ', pos);
    ASSERT_NE(space, std::string::npos);
    cumulative.push_back(std::stoull(out.substr(space + 1)));
  }
  ASSERT_EQ(cumulative.size(), 5u);  // le=0,1,3,7 and +Inf
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket index " << i;
  }
}

TEST(PromExportTest, EmptyHistogramRendersOnlyInfSumCount) {
  HistogramSnapshot h;
  h.name = "serve.stage.idle_ns";
  MetricsSnapshot snap;
  snap.histograms.push_back(h);
  const std::string out = RenderPrometheusText(snap);
  EXPECT_EQ(Occurrences(out, "_bucket{le=\""), 1);  // just +Inf
  EXPECT_NE(out.find("tfmae_serve_stage_idle_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_idle_ns_sum 0\n"), std::string::npos);
  EXPECT_NE(out.find("tfmae_serve_stage_idle_ns_count 0\n"),
            std::string::npos);
}

TEST(PromExportTest, RenderIsDeterministic) {
  MetricsSnapshot snap;
  snap.counters.push_back({"a.counter", 1});
  snap.gauges.push_back({"b.gauge", 2});
  HistogramSnapshot h;
  h.name = "c.hist";
  h.buckets[HistogramBucket(9)] = 3;
  h.count = 3;
  h.sum = 27;
  h.min = 9;
  h.max = 9;
  snap.histograms.push_back(h);
  EXPECT_EQ(RenderPrometheusText(snap), RenderPrometheusText(snap));
}

TEST(PromExportTest, LiveRegistryMetricsSurfaceInScrape) {
  Registry& reg = Registry::Instance();
  const int counter = reg.CounterId("promtest.scrape.hits");
  const int gauge = reg.GaugeId("promtest.scrape.depth");
  const int hist = reg.HistogramId("promtest.scrape.ns");
  ASSERT_NE(counter, kInvalidMetricId);
  ASSERT_NE(gauge, kInvalidMetricId);
  ASSERT_NE(hist, kInvalidMetricId);
  reg.CounterAdd(counter, 5);
  reg.GaugeSet(gauge, 11);
  reg.HistogramRecord(hist, 1000);
  reg.HistogramRecord(hist, 2000);

  const std::string out = RenderPrometheusText();
  EXPECT_NE(out.find("tfmae_promtest_scrape_hits_total 5\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_promtest_scrape_depth 11\n"), std::string::npos);
  EXPECT_NE(out.find("tfmae_promtest_scrape_ns_count 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("tfmae_promtest_scrape_ns_sum 3000\n"),
            std::string::npos);
  // Exposition hygiene over the whole document: every line is a comment or
  // a `name{labels} value` / `name value` sample; no line starts with a
  // digit or contains a bare dot in the metric name position.
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "document must end with newline";
    const std::string line = out.substr(start, end - start);
    ASSERT_FALSE(line.empty());
    if (line[0] != '#') {
      const std::size_t name_end = line.find_first_of(" {");
      ASSERT_NE(name_end, std::string::npos) << line;
      const std::string name = line.substr(0, name_end);
      for (char c : name) {
        ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':')
            << "bad metric-name byte in line: " << line;
      }
      ASSERT_FALSE(name.empty());
      ASSERT_FALSE(name[0] >= '0' && name[0] <= '9') << line;
    }
    start = end + 1;
  }
}

}  // namespace
}  // namespace tfmae::obs
