// Tests for the deployment/extension features: THOC-lite, occlusion
// attribution, and config (de)serialization.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "baselines/thoc.h"
#include "core/attribution.h"
#include "core/config_io.h"
#include "core/detector.h"
#include "data/generator.h"
#include "eval/metrics.h"

namespace tfmae {
namespace {

TEST(ThocTest, SeparatesPlantedSpikes) {
  data::BaseSignalConfig config;
  config.length = 900;
  config.num_features = 2;
  config.noise_std = 0.05;
  config.seed = 71;
  data::TimeSeries full = data::GenerateBaseSignal(config);
  data::TimeSeries train = full.Slice(0, 600);
  data::TimeSeries test = full.Slice(600, 300);
  test.labels.assign(300, 0);
  for (std::int64_t t : {50, 130, 210}) {
    test.at(t, 0) += 5.0f;
    test.at(t, 1) += 5.0f;
    test.labels[static_cast<std::size_t>(t)] = 1;
  }
  baselines::ThocDetector detector;
  detector.Fit(train);
  const auto scores = detector.Score(test);
  const double auroc = eval::Auroc(scores, test.labels);
  EXPECT_GT(auroc, 0.75) << "AUROC " << auroc;
}

TEST(AttributionTest, IdentifiesTheAnomalousChannel) {
  // 4 channels; the anomaly lives only in channel 2: its occlusion
  // attribution must dominate.
  data::BaseSignalConfig config;
  config.length = 900;
  config.num_features = 4;
  config.noise_std = 0.03;
  config.seed = 72;
  data::TimeSeries full = data::GenerateBaseSignal(config);
  data::TimeSeries train = full.Slice(0, 600);
  data::TimeSeries test = full.Slice(600, 300);
  const std::int64_t anomaly_at = 150;
  for (std::int64_t t = anomaly_at; t < anomaly_at + 4; ++t) {
    test.at(t, 2) += 6.0f;
  }

  core::TfmaeConfig tfmae_config;
  tfmae_config.window = 32;
  tfmae_config.model_dim = 16;
  tfmae_config.num_layers = 1;
  tfmae_config.num_heads = 2;
  tfmae_config.ff_hidden = 32;
  tfmae_config.epochs = 10;
  tfmae_config.stride = 16;
  tfmae_config.per_window_normalization = false;
  core::TfmaeDetector detector(tfmae_config);
  detector.Fit(train);

  core::AttributionOptions options;
  options.context = 64;
  const std::vector<float> attribution =
      core::OcclusionAttribution(&detector, test, anomaly_at, options);
  ASSERT_EQ(attribution.size(), 4u);
  for (std::int64_t n = 0; n < 4; ++n) {
    if (n == 2) continue;
    EXPECT_GT(attribution[2], attribution[static_cast<std::size_t>(n)])
        << "channel " << n;
  }
}

TEST(ConfigIoTest, RoundTripPreservesEveryField) {
  core::TfmaeConfig config;
  config.window = 77;
  config.model_dim = 48;
  config.num_layers = 4;
  config.temporal_mask_ratio = 0.33;
  config.frequency_mask_ratio = 0.44;
  config.learning_rate = 5e-4f;
  config.epochs = 12;
  config.batch_size = 8;
  config.use_adversarial = false;
  config.joint_alignment = false;
  config.per_window_normalization = false;
  config.temporal_mask = masking::TemporalMaskVariant::kRandom;
  config.frequency_mask = masking::FrequencyMaskVariant::kHighFrequency;
  config.cv_method = masking::CvMethod::kNaive;

  const auto parsed = core::ConfigFromString(core::ConfigToString(config));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->window, 77);
  EXPECT_EQ(parsed->model_dim, 48);
  EXPECT_EQ(parsed->num_layers, 4);
  EXPECT_NEAR(parsed->temporal_mask_ratio, 0.33, 1e-9);
  EXPECT_NEAR(parsed->frequency_mask_ratio, 0.44, 1e-9);
  EXPECT_NEAR(parsed->learning_rate, 5e-4f, 1e-9);
  EXPECT_EQ(parsed->epochs, 12);
  EXPECT_EQ(parsed->batch_size, 8);
  EXPECT_FALSE(parsed->use_adversarial);
  EXPECT_FALSE(parsed->joint_alignment);
  EXPECT_FALSE(parsed->per_window_normalization);
  EXPECT_EQ(parsed->temporal_mask, masking::TemporalMaskVariant::kRandom);
  EXPECT_EQ(parsed->frequency_mask,
            masking::FrequencyMaskVariant::kHighFrequency);
  EXPECT_EQ(parsed->cv_method, masking::CvMethod::kNaive);
}

TEST(ConfigIoTest, PartialConfigKeepsDefaults) {
  const auto parsed = core::ConfigFromString(
      "# only two overrides\nwindow = 99\nuse_adversarial = false\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->window, 99);
  EXPECT_FALSE(parsed->use_adversarial);
  // Untouched field keeps its default.
  EXPECT_EQ(parsed->model_dim, core::TfmaeConfig{}.model_dim);
}

TEST(ConfigIoTest, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(core::ConfigFromString("no_such_key = 1\n").has_value());
  EXPECT_FALSE(core::ConfigFromString("window = banana\n").has_value());
  EXPECT_FALSE(core::ConfigFromString("temporal_mask = nonsense\n").has_value());
  EXPECT_FALSE(core::ConfigFromString("just some text\n").has_value());
}

TEST(ConfigIoTest, FileRoundTrip) {
  core::TfmaeConfig config;
  config.epochs = 3;
  const std::string path = ::testing::TempDir() + "/tfmae_config.txt";
  ASSERT_TRUE(core::SaveConfig(config, path));
  const auto loaded = core::LoadConfig(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epochs, 3);
  std::remove(path.c_str());
}

TEST(BatchAccumulationTest, BatchedTrainingStillLearns) {
  data::BaseSignalConfig signal;
  signal.length = 700;
  signal.num_features = 1;
  signal.noise_std = 0.03;
  signal.seed = 73;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries train = full.Slice(0, 500);
  data::TimeSeries test = full.Slice(500, 200);
  test.labels.assign(200, 0);
  for (std::int64_t t : {60, 140}) {
    test.at(t, 0) += 7.0f;
    test.labels[static_cast<std::size_t>(t)] = 1;
  }
  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 15;
  config.stride = 8;
  config.batch_size = 4;
  config.per_window_normalization = false;
  core::TfmaeDetector detector(config);
  detector.Fit(train);
  // Steps = ceil(windows/batch) * epochs, far fewer than window visits.
  EXPECT_LT(detector.train_stats().num_steps,
            detector.train_stats().num_windows * 15);
  const double auroc = eval::Auroc(detector.Score(test), test.labels);
  EXPECT_GT(auroc, 0.85) << "AUROC " << auroc;
}

}  // namespace
}  // namespace tfmae
