// Memory-plane tests: pool size classes and recycling, refcount-aware
// reclamation under Tensor::Detach aliasing, inference-mode graph/grad
// retention, and the determinism contract — pooled, unpooled and
// scrub-canary training runs must produce bitwise-identical losses at every
// thread count.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae {
namespace {

// Restores pool enablement, scrub mode and thread count on scope exit so a
// failing test cannot poison its neighbours.
class PoolConfigGuard {
 public:
  PoolConfigGuard() : was_enabled_(pool::Enabled()) {}
  ~PoolConfigGuard() {
    pool::SetEnabled(was_enabled_);
    pool::SetScrubForTesting(false);
    ThreadPool::Instance().SetNumThreads(1);
  }

 private:
  bool was_enabled_;
};

TEST(PoolSizeClassTest, RoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(pool::SizeClassFloats(1), pool::kMinClassFloats);
  EXPECT_EQ(pool::SizeClassFloats(pool::kMinClassFloats),
            pool::kMinClassFloats);
  EXPECT_EQ(pool::SizeClassFloats(pool::kMinClassFloats + 1),
            2 * pool::kMinClassFloats);
  EXPECT_EQ(pool::SizeClassFloats(1000), 1024);
  EXPECT_EQ(pool::SizeClassFloats(1 << 20), 1 << 20);
  EXPECT_EQ(pool::SizeClassFloats((1 << 20) + 1), 1 << 21);
}

TEST(PoolRecycleTest, SameClassAcquisitionReusesReleasedBlock) {
  PoolConfigGuard guard;
  pool::SetEnabled(true);
  pool::Trim();
  // Distinctive size so neighbouring tests' leftovers cannot satisfy it.
  const std::int64_t numel = 12345;
  std::shared_ptr<float[]> first = pool::Acquire(numel);
  float* raw = first.get();
  first.reset();  // parks the block on its free list
  const pool::PoolStats before = pool::Stats();
  std::shared_ptr<float[]> second = pool::Acquire(numel);
  const pool::PoolStats after = pool::Stats();
  EXPECT_EQ(second.get(), raw);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(PoolRecycleTest, DetachAliasKeepsBlockLentOut) {
  PoolConfigGuard guard;
  pool::SetEnabled(true);
  pool::Trim();
  const std::int64_t numel = 23456;
  Tensor detached;
  float* raw = nullptr;
  {
    Tensor x = Tensor::Zeros({numel});
    raw = x.data();
    detached = x.Detach();
    EXPECT_EQ(detached.data(), raw);  // Detach aliases, never copies
  }
  // x is gone but the detached alias still owns the storage: the block must
  // NOT be recycled into a fresh acquisition of the same class.
  std::shared_ptr<float[]> probe = pool::Acquire(numel);
  EXPECT_NE(probe.get(), raw);
  probe.reset();
  const pool::PoolStats before = pool::Stats();
  detached = Tensor();  // last alias dies -> block parked on its free list
  const pool::PoolStats after = pool::Stats();
  EXPECT_EQ(after.releases, before.releases + 1);
  std::shared_ptr<float[]> reuse = pool::Acquire(numel);
  EXPECT_EQ(reuse.get(), raw);
}

TEST(PoolRetentionTest, NoGradScoringBuildsNoGraphAndNoGradBuffers) {
  PoolConfigGuard guard;
  pool::SetEnabled(true);
  Rng rng(3);
  nn::TransformerLayer layer(/*model_dim=*/32, /*num_heads=*/4,
                             /*ff_hidden_dim=*/64, &rng);
  Rng data_rng(4);
  Tensor x = Tensor::Randn({24, 32}, &data_rng);
  {
    NoGradGuard no_grad;
    (void)layer.Forward(x);  // warm-up: pool fills, PE cache builds
  }
  const std::int64_t nodes0 = ops::internal::GraphNodesCreated();
  const std::int64_t grads0 = MemoryStats::GradAllocCalls();
  {
    NoGradGuard no_grad;
    for (int i = 0; i < 3; ++i) (void)layer.Forward(x);
  }
  // Regression guard: scoring passes must not retain autograd state — no
  // graph nodes, no gradient buffers.
  EXPECT_EQ(ops::internal::GraphNodesCreated(), nodes0);
  EXPECT_EQ(MemoryStats::GradAllocCalls(), grads0);
}

// Runs a short TransformerLayer + Adam training loop and returns the per-step
// loss values. Identical seeds must give bitwise-identical sequences no
// matter how the memory plane is configured.
std::vector<float> TrainLosses(std::uint64_t seed, int steps) {
  Rng rng(seed);
  nn::TransformerLayer layer(/*model_dim=*/32, /*num_heads=*/4,
                             /*ff_hidden_dim=*/64, &rng);
  Rng data_rng(seed + 100);
  Tensor x = Tensor::Randn({48, 32}, &data_rng);
  Tensor target = Tensor::Randn({48, 32}, &data_rng);
  nn::AdamOptions opts;
  opts.learning_rate = 1e-3f;
  nn::Adam adam(layer.Parameters(), opts);
  std::vector<float> losses;
  losses.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    Tensor out = layer.Forward(x);
    Tensor loss = ops::MseLoss(out, target);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    losses.push_back(loss.item());
  }
  return losses;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(PoolDeterminismTest, PooledMatchesUnpooledBitwiseAcrossSeedsAndThreads) {
  PoolConfigGuard guard;
  const int kSteps = 4;
  for (std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{21}}) {
    for (int threads : {1, 2, 4}) {
      ThreadPool::Instance().SetNumThreads(threads);
      pool::SetEnabled(true);
      const std::vector<float> pooled = TrainLosses(seed, kSteps);
      pool::SetEnabled(false);
      const std::vector<float> unpooled = TrainLosses(seed, kSteps);
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " threads=" << threads);
      ExpectBitwiseEqual(pooled, unpooled);
    }
  }
}

TEST(PoolDeterminismTest, ScrubCanaryDoesNotChangeResults) {
  PoolConfigGuard guard;
  pool::SetEnabled(true);
  const std::vector<float> plain = TrainLosses(/*seed=*/9, /*steps=*/4);
  // NaN-fill every acquired buffer: any consumer reading recycled memory
  // before overwriting it would poison the losses.
  pool::SetScrubForTesting(true);
  const std::vector<float> scrubbed = TrainLosses(/*seed=*/9, /*steps=*/4);
  ExpectBitwiseEqual(plain, scrubbed);
}

}  // namespace
}  // namespace tfmae
