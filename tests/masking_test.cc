// Tests for the temporal-frequency masking strategies (paper Section IV-A):
// CV statistic correctness (naive == FFT), scale invariance, TopIndex,
// mask-variant behaviour, and the frequency-mask decomposition identity.
#include <cmath>

#include <gtest/gtest.h>

#include "fft/fft.h"
#include "masking/coefficient_of_variation.h"
#include "masking/frequency_mask.h"
#include "masking/temporal_mask.h"
#include "util/rng.h"

namespace tfmae::masking {
namespace {

std::vector<float> RandomSeries(std::int64_t length, std::int64_t features,
                                std::uint64_t seed, float offset = 0.0f) {
  Rng rng(seed);
  std::vector<float> series(static_cast<std::size_t>(length * features));
  for (float& v : series) v = static_cast<float>(rng.Normal()) + offset;
  return series;
}

class CvEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(CvEquivalenceTest, NaiveAndFftAgree) {
  const auto [length, features, window] = GetParam();
  const std::vector<float> series = RandomSeries(length, features, 3, 2.0f);
  const auto naive =
      CoefficientOfVariation(series, length, features, window,
                             CvMethod::kNaive);
  const auto fft =
      CoefficientOfVariation(series, length, features, window,
                             CvMethod::kFft);
  ASSERT_EQ(naive.size(), fft.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive[i], fft[i], 1e-5 * std::max(1.0, std::abs(naive[i])))
        << "t=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CvEquivalenceTest,
    ::testing::Combine(::testing::Values<std::int64_t>(10, 50, 100, 257),
                       ::testing::Values<std::int64_t>(1, 3),
                       ::testing::Values<std::int64_t>(1, 5, 10)));

TEST(CvTest, FlatSeriesHasZeroDispersion) {
  const std::vector<float> series(100, 5.0f);
  const auto scores =
      CoefficientOfVariation(series, 100, 1, 10, CvMethod::kNaive);
  for (double v : scores) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(CvTest, SpikeRaisesLocalDispersion) {
  std::vector<float> series(100, 1.0f);
  series[50] = 10.0f;
  const auto scores =
      CoefficientOfVariation(series, 100, 1, 10, CvMethod::kFft);
  // The spike's trailing windows (t in [50, 59]) must dominate.
  double max_elsewhere = 0.0;
  for (std::size_t t = 0; t < 100; ++t) {
    if (t < 50 || t > 59) max_elsewhere = std::max(max_elsewhere, scores[t]);
  }
  EXPECT_GT(scores[50], max_elsewhere * 10);
}

TEST(CvTest, ScaleInvarianceOfCvVsStdDev) {
  // The CV criterion is (approximately) invariant to rescaling the data;
  // the std-dev criterion is not — exactly the paper's argument for CV.
  std::vector<float> series = RandomSeries(200, 1, 5, 10.0f);
  std::vector<float> scaled = series;
  for (float& v : scaled) v *= 100.0f;

  const auto cv1 = CoefficientOfVariation(series, 200, 1, 10, CvMethod::kNaive);
  const auto cv2 = CoefficientOfVariation(scaled, 200, 1, 10, CvMethod::kNaive);
  const auto top1 = TopIndex(cv1, 20);
  const auto top2 = TopIndex(cv2, 20);
  // Same observations selected after rescaling (CV ratio scales ~linearly in
  // the scale factor only through the +eps guard; ordering is preserved).
  std::size_t common = 0;
  for (std::int64_t a : top1) {
    for (std::int64_t b : top2) {
      if (a == b) {
        ++common;
        break;
      }
    }
  }
  EXPECT_GE(common, 18u);

  const auto sd1 = SlidingStdDev(series, 200, 1, 10);
  const auto sd2 = SlidingStdDev(scaled, 200, 1, 10);
  // Std-dev scores scale by 100x — not scale-free.
  EXPECT_NEAR(sd2[100] / std::max(sd1[100], 1e-12), 100.0, 1.0);
}

TEST(TopIndexTest, ReturnsLargestInOrder) {
  const std::vector<double> values = {0.5, 3.0, -1.0, 2.0, 3.0};
  const auto top = TopIndex(values, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // 3.0 (first occurrence wins the tie)
  EXPECT_EQ(top[1], 4);  // 3.0
  EXPECT_EQ(top[2], 3);  // 2.0
}

TEST(TopIndexTest, EdgeCounts) {
  const std::vector<double> values = {1, 2, 3};
  EXPECT_TRUE(TopIndex(values, 0).empty());
  EXPECT_EQ(TopIndex(values, 3).size(), 3u);
}

TEST(TemporalMaskTest, RatioControlsMaskedCount) {
  const std::vector<float> series = RandomSeries(100, 2, 6);
  Rng rng(1);
  for (double ratio : {0.0, 0.1, 0.25, 0.5, 0.95}) {
    const TemporalMask mask = ComputeTemporalMask(
        series, 100, 2, 10, ratio,
        TemporalMaskVariant::kCoefficientOfVariation, CvMethod::kFft, &rng);
    EXPECT_EQ(static_cast<std::int64_t>(mask.masked.size()),
              static_cast<std::int64_t>(ratio * 100));
    EXPECT_EQ(mask.masked.size() + mask.unmasked.size(), 100u);
    // Disjoint and sorted.
    for (std::size_t i = 1; i < mask.masked.size(); ++i) {
      EXPECT_LT(mask.masked[i - 1], mask.masked[i]);
    }
  }
}

TEST(TemporalMaskTest, MasksThePlantedAnomaly) {
  std::vector<float> series(100, 1.0f);
  series[42] = 25.0f;
  Rng rng(2);
  const TemporalMask mask = ComputeTemporalMask(
      series, 100, 1, 10, 0.1, TemporalMaskVariant::kCoefficientOfVariation,
      CvMethod::kFft, &rng);
  EXPECT_TRUE(std::find(mask.masked.begin(), mask.masked.end(), 42) !=
              mask.masked.end());
}

TEST(TemporalMaskTest, NoneVariantMasksNothing) {
  const std::vector<float> series = RandomSeries(50, 1, 7);
  Rng rng(3);
  const TemporalMask mask =
      ComputeTemporalMask(series, 50, 1, 10, 0.5, TemporalMaskVariant::kNone,
                          CvMethod::kFft, &rng);
  EXPECT_TRUE(mask.masked.empty());
  EXPECT_EQ(mask.unmasked.size(), 50u);
}

TEST(TemporalMaskTest, RandomVariantIsSeedDeterministic) {
  const std::vector<float> series = RandomSeries(80, 1, 8);
  Rng rng1(4);
  Rng rng2(4);
  const auto m1 = ComputeTemporalMask(series, 80, 1, 10, 0.3,
                                      TemporalMaskVariant::kRandom,
                                      CvMethod::kFft, &rng1);
  const auto m2 = ComputeTemporalMask(series, 80, 1, 10, 0.3,
                                      TemporalMaskVariant::kRandom,
                                      CvMethod::kFft, &rng2);
  EXPECT_EQ(m1.masked, m2.masked);
}

TEST(FrequencyMaskTest, RatioControlsMaskedBins) {
  Rng rng(9);
  std::vector<float> column(100);
  for (float& v : column) v = static_cast<float>(rng.Normal());
  for (double ratio : {0.0, 0.2, 0.5}) {
    const auto masked =
        MaskFrequencyColumn(column, ratio, FrequencyMaskVariant::kAmplitude,
                            nullptr);
    EXPECT_EQ(static_cast<std::int64_t>(masked.masked_bins.size()),
              static_cast<std::int64_t>(ratio * 100));
  }
}

TEST(FrequencyMaskTest, ZeroRatioIsIdentity) {
  Rng rng(10);
  std::vector<float> column(64);
  for (float& v : column) v = static_cast<float>(rng.Normal());
  const auto masked = MaskFrequencyColumn(
      column, 0.0, FrequencyMaskVariant::kAmplitude, nullptr);
  for (std::size_t t = 0; t < column.size(); ++t) {
    EXPECT_NEAR(masked.base[t], column[t], 1e-5);
    EXPECT_EQ(masked.cos_coef[t], 0.0f);
    EXPECT_EQ(masked.sin_coef[t], 0.0f);
  }
}

TEST(FrequencyMaskTest, DecompositionMatchesDirectSubstitution) {
  // base + re*C + im*S must equal the IDFT with masked bins literally set
  // to the token value (Eq. (9)-(10)).
  Rng rng(11);
  std::vector<float> column(50);
  for (float& v : column) v = static_cast<float>(rng.Normal());
  const auto masked = MaskFrequencyColumn(
      column, 0.3, FrequencyMaskVariant::kAmplitude, nullptr);
  const float token_re = 0.7f;
  const float token_im = -1.3f;
  const std::vector<float> assembled =
      AssembleMaskedColumn(masked, token_re, token_im);

  // Direct route: replace masked bins in the spectrum with the token.
  std::vector<double> column_d(column.begin(), column.end());
  auto spectrum = fft::RealFft(column_d);
  for (std::int64_t bin : masked.masked_bins) {
    spectrum[static_cast<std::size_t>(bin)] =
        fft::Complex(token_re, token_im);
  }
  const std::vector<double> direct = fft::RealIfft(spectrum);
  for (std::size_t t = 0; t < column.size(); ++t) {
    EXPECT_NEAR(assembled[t], direct[t], 1e-4) << "t=" << t;
  }
}

TEST(FrequencyMaskTest, AmplitudeVariantMasksLowestAmplitudes) {
  // Signal = strong cosine at k0 plus tiny noise: the strong bins must
  // survive any reasonable masking ratio.
  const std::int64_t n = 64;
  const std::int64_t k0 = 4;
  Rng rng(12);
  std::vector<float> column(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    column[static_cast<std::size_t>(t)] = static_cast<float>(
        10.0 * std::cos(2.0 * M_PI * k0 * t / static_cast<double>(n)) +
        0.01 * rng.Normal());
  }
  const auto masked = MaskFrequencyColumn(
      column, 0.5, FrequencyMaskVariant::kAmplitude, nullptr);
  for (std::int64_t bin : masked.masked_bins) {
    EXPECT_NE(bin, k0);
    EXPECT_NE(bin, n - k0);
  }
}

TEST(FrequencyMaskTest, HighFrequencyVariantMasksNyquistNeighborhood) {
  Rng rng(13);
  std::vector<float> column(40);
  for (float& v : column) v = static_cast<float>(rng.Normal());
  const auto masked = MaskFrequencyColumn(
      column, 0.2, FrequencyMaskVariant::kHighFrequency, nullptr);
  // All masked bins have frequency index >= the largest unmasked one.
  std::int64_t min_masked_frequency = 40;
  for (std::int64_t bin : masked.masked_bins) {
    min_masked_frequency =
        std::min(min_masked_frequency, std::min(bin, 40 - bin));
  }
  EXPECT_GE(min_masked_frequency, 40 / 2 - 8 / 2);  // near Nyquist
}

}  // namespace
}  // namespace tfmae::masking
