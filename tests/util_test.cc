// Tests for the utility layer: RNG determinism and samplers, table/CSV
// rendering, stopwatch monotonicity, and memory accounting arithmetic.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/memory.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace tfmae {
namespace {

TEST(RngTest, DeterministicSequences) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(43);
  bool any_different = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) any_different |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<std::size_t>(rng.UniformInt(10))];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(4);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
  // Full sample returns a permutation.
  const auto all = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(std::set<std::int64_t>(all.begin(), all.end()).size(), 10u);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(TableTest, AlignedAndCsvRendering) {
  Table table({"name", "f1"});
  table.AddRow({"LOF", Table::Num(26.419, 2)});
  table.AddRow({"TFMAE, best", "98.36"});
  EXPECT_EQ(table.NumRows(), 2u);
  const std::string aligned = table.ToAligned();
  EXPECT_NE(aligned.find("LOF"), std::string::npos);
  EXPECT_NE(aligned.find("26.42"), std::string::npos);
  const std::string csv = table.ToCsv();
  // Cell with a comma gets quoted.
  EXPECT_NE(csv.find("\"TFMAE, best\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GT(t2, t1);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), t2);
}

TEST(MemoryStatsTest, AllocFreeArithmetic) {
  const std::int64_t before = MemoryStats::CurrentBytes();
  MemoryStats::RecordAlloc(1000);
  EXPECT_EQ(MemoryStats::CurrentBytes(), before + 1000);
  MemoryStats::RecordFree(1000);
  EXPECT_EQ(MemoryStats::CurrentBytes(), before);
}

}  // namespace
}  // namespace tfmae
