// Tests for the utility layer: RNG determinism and samplers, table/CSV
// rendering, stopwatch monotonicity, memory accounting arithmetic, CRC32,
// and the checkpoint container format.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <thread>

#include "util/checkpoint_file.h"
#include "util/crc32.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace tfmae {
namespace {

TEST(RngTest, DeterministicSequences) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(43);
  bool any_different = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) any_different |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<std::size_t>(rng.UniformInt(10))];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(4);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
  // Full sample returns a permutation.
  const auto all = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(std::set<std::int64_t>(all.begin(), all.end()).size(), 10u);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(TableTest, AlignedAndCsvRendering) {
  Table table({"name", "f1"});
  table.AddRow({"LOF", Table::Num(26.419, 2)});
  table.AddRow({"TFMAE, best", "98.36"});
  EXPECT_EQ(table.NumRows(), 2u);
  const std::string aligned = table.ToAligned();
  EXPECT_NE(aligned.find("LOF"), std::string::npos);
  EXPECT_NE(aligned.find("26.42"), std::string::npos);
  const std::string csv = table.ToCsv();
  // Cell with a comma gets quoted.
  EXPECT_NE(csv.find("\"TFMAE, best\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GT(t2, t1);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), t2);
}

TEST(MemoryStatsTest, AllocFreeArithmetic) {
  const std::int64_t before = MemoryStats::CurrentBytes();
  MemoryStats::RecordAlloc(1000);
  EXPECT_EQ(MemoryStats::CurrentBytes(), before + 1000);
  MemoryStats::RecordFree(1000);
  EXPECT_EQ(MemoryStats::CurrentBytes(), before);
}

TEST(Crc32Test, KnownAnswerAndChaining) {
  // The IEEE 802.3 check value for the nine ASCII digits.
  const char digits[] = "123456789";
  EXPECT_EQ(util::Crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("", 0), 0u);
  // Chained partial updates equal one pass over the concatenation.
  const std::uint32_t part = util::Crc32(digits, 4);
  EXPECT_EQ(util::Crc32(digits + 4, 5, part), 0xCBF43926u);
}

TEST(RngTest, StateRoundTripReplaysSequence) {
  Rng rng(7);
  for (int i = 0; i < 13; ++i) rng.NextU64();
  rng.Normal();  // populate the Box-Muller cache so it is part of the state
  const Rng::State state = rng.GetState();
  std::vector<double> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(rng.Normal());
  Rng replay(999);
  replay.SetState(state);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(replay.Normal(), expected[i]);
}

TEST(ByteCodecTest, RoundTripAndBoundsChecking) {
  util::ByteWriter w;
  w.U32(0xDEADBEEFu);
  w.I64(-42);
  w.F64(3.5);
  w.String("hello");
  w.FloatArray({1.0f, -2.0f});
  w.I64Array({10, 20, 30});
  const std::vector<char> bytes = w.Take();

  util::ByteReader r(bytes);
  std::uint32_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<float> floats;
  std::vector<std::int64_t> ints;
  ASSERT_TRUE(r.U32(&u) && r.I64(&i) && r.F64(&d) && r.String(&s) &&
              r.FloatArray(&floats) && r.I64Array(&ints));
  EXPECT_EQ(u, 0xDEADBEEFu);
  EXPECT_EQ(i, -42);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(floats, (std::vector<float>{1.0f, -2.0f}));
  EXPECT_EQ(ints, (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_TRUE(r.AtEnd());
  // Reading past the end fails instead of over-reading.
  std::uint32_t extra = 0;
  EXPECT_FALSE(r.U32(&extra));
}

class CheckpointContainerTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteSample(const std::string& path) {
    util::CheckpointFileWriter writer;
    writer.AddSection("alpha", {'a', 'b', 'c'});
    writer.AddSection("beta", std::vector<char>(100, 'x'));
    ASSERT_TRUE(writer.WriteAtomic(path));
  }
};

TEST_F(CheckpointContainerTest, RoundTrip) {
  const std::string path = Path("container_roundtrip.tfmae");
  WriteSample(path);
  std::string error;
  const auto reader = util::CheckpointFileReader::Open(path, &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ASSERT_NE(reader->Section("alpha"), nullptr);
  EXPECT_EQ(*reader->Section("alpha"), (std::vector<char>{'a', 'b', 'c'}));
  ASSERT_NE(reader->Section("beta"), nullptr);
  EXPECT_EQ(reader->Section("beta")->size(), 100u);
  EXPECT_EQ(reader->Section("missing"), nullptr);
  std::remove(path.c_str());
}

TEST_F(CheckpointContainerTest, DetectsTruncation) {
  const std::string path = Path("container_truncated.tfmae");
  WriteSample(path);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{4}, std::size_t{0}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    std::string error;
    EXPECT_FALSE(util::CheckpointFileReader::Open(path, &error).has_value())
        << "kept " << keep << " of " << bytes.size() << " bytes";
    EXPECT_FALSE(error.empty());
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointContainerTest, DetectsEveryFlippedByte) {
  const std::string path = Path("container_bitflip.tfmae");
  WriteSample(path);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Flip one byte at a sample of offsets spanning header, payload, CRC.
  for (std::size_t offset = 0; offset < bytes.size();
       offset += std::max<std::size_t>(1, bytes.size() / 37)) {
    std::vector<char> corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    EXPECT_FALSE(util::CheckpointFileReader::Open(path).has_value())
        << "flip at offset " << offset << " went undetected";
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointContainerTest, RejectsWrongMagicAndTrailingGarbage) {
  const std::string path = Path("container_magic.tfmae");
  WriteSample(path);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  {
    std::vector<char> wrong = bytes;
    wrong[0] = 'X';  // not our file type at all
    // Recompute the trailer CRC so the magic check itself is what rejects.
    const std::uint32_t crc =
        util::Crc32(wrong.data(), wrong.size() - sizeof(std::uint32_t));
    std::memcpy(wrong.data() + wrong.size() - sizeof(crc), &crc, sizeof(crc));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(wrong.data(), static_cast<std::streamsize>(wrong.size()));
  }
  std::string error;
  EXPECT_FALSE(util::CheckpointFileReader::Open(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  {
    // Appending bytes after the CRC trailer must also fail validation.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write("junk", 4);
  }
  EXPECT_FALSE(util::CheckpointFileReader::Open(path, &error).has_value());
  std::remove(path.c_str());
}

TEST_F(CheckpointContainerTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = Path("container_atomic.tfmae");
  WriteSample(path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Overwriting an existing container goes through the same rename.
  WriteSample(path);
  EXPECT_TRUE(util::CheckpointFileReader::Open(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tfmae
