// Tests for full-detector checkpointing (config + normalizer + weights) and
// the crash-safe training checkpoints of docs/RESILIENCE.md: corruption
// detection and fallback, and bitwise-identical kill-and-resume at several
// thread counts.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/detector.h"
#include "data/generator.h"
#include "nn/serialize.h"
#include "util/crc32.h"
#include "util/thread_pool.h"

namespace tfmae::core {
namespace {

TfmaeConfig SmallConfig() {
  TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 3;
  config.stride = 16;
  config.temporal_mask_ratio = 0.25;
  config.per_window_normalization = false;
  return config;
}

void RemoveCheckpoint(const std::string& prefix) {
  std::remove((prefix + ".config").c_str());
  std::remove((prefix + ".norm").c_str());
  std::remove((prefix + ".weights").c_str());
}

TEST(CheckpointTest, RoundTripReproducesScoresExactly) {
  data::BaseSignalConfig signal;
  signal.length = 500;
  signal.num_features = 3;
  signal.seed = 111;
  // A channel far from zero exercises the normalizer statistics.
  data::TimeSeries series = data::GenerateBaseSignal(signal);
  for (std::int64_t t = 0; t < series.length; ++t) series.at(t, 2) += 40.0f;
  data::TimeSeries train = series.Slice(0, 350);
  data::TimeSeries test = series.Slice(350, 150);

  TfmaeDetector original(SmallConfig());
  original.Fit(train);
  const std::string prefix = ::testing::TempDir() + "/tfmae_ckpt";
  ASSERT_TRUE(original.SaveCheckpoint(prefix));

  TfmaeDetector restored(TfmaeConfig{});  // different config; load overrides
  ASSERT_TRUE(restored.LoadCheckpoint(prefix));
  EXPECT_EQ(restored.config().window, 32);
  EXPECT_EQ(restored.config().model_dim, 16);

  const auto expected = original.Score(test);
  const auto actual = restored.Score(test);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-6) << "t=" << i;
  }
  RemoveCheckpoint(prefix);
}

TEST(CheckpointTest, LoadFailsOnMissingPieces) {
  TfmaeDetector detector(SmallConfig());
  EXPECT_FALSE(detector.LoadCheckpoint("/nonexistent/prefix"));

  // Config present but weights missing.
  data::BaseSignalConfig signal;
  signal.length = 200;
  signal.num_features = 1;
  signal.seed = 112;
  TfmaeDetector fitted(SmallConfig());
  fitted.Fit(data::GenerateBaseSignal(signal));
  const std::string prefix = ::testing::TempDir() + "/tfmae_partial";
  ASSERT_TRUE(fitted.SaveCheckpoint(prefix));
  std::remove((prefix + ".weights").c_str());
  TfmaeDetector loader(SmallConfig());
  EXPECT_FALSE(loader.LoadCheckpoint(prefix));
  RemoveCheckpoint(prefix);
}

TEST(CheckpointTest, SaveBeforeFitDies) {
  TfmaeDetector detector(SmallConfig());
  EXPECT_DEATH(detector.SaveCheckpoint("/tmp/should_not_exist"), "Fit");
}

// ---------------------------------------------------------------------------
// Crash-safe training checkpoints.

data::TimeSeries TrainSeries() {
  data::BaseSignalConfig signal;
  signal.length = 400;
  signal.num_features = 2;
  signal.seed = 321;
  return data::GenerateBaseSignal(signal);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void CorruptByte(const std::string& path, std::size_t offset_from_end) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(file.tellg());
  ASSERT_GT(size, offset_from_end);
  const auto pos =
      static_cast<std::streamoff>(size - 1 - offset_from_end);
  file.seekg(pos);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(pos);
  file.write(&byte, 1);
}

TEST(TrainingCheckpointTest, InterruptedFitWritesValidCheckpoints) {
  const std::string dir = FreshDir("tfmae_tc_write");
  TfmaeDetector detector(SmallConfig());
  FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 4;
  options.max_steps = 10;
  detector.Fit(TrainSeries(), options);
  EXPECT_TRUE(detector.train_stats().interrupted);
  EXPECT_EQ(detector.train_stats().num_steps, 10);
  EXPECT_GE(detector.train_stats().checkpoints_written, 2);
  EXPECT_EQ(detector.train_stats().checkpoint_failures, 0);

  std::string error;
  const auto latest = FindLatestValidCheckpoint(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->second.progress.steps, 8);  // last multiple of 4 <= 10
  EXPECT_EQ(latest->second.num_features, 2);
  std::filesystem::remove_all(dir);
}

TEST(TrainingCheckpointTest, PruneKeepsOnlyNewest) {
  const std::string dir = FreshDir("tfmae_tc_prune");
  TfmaeDetector detector(SmallConfig());
  FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 2;
  options.keep_last = 2;
  options.max_steps = 12;
  detector.Fit(TrainSeries(), options);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_LE(files, 2u);
  std::filesystem::remove_all(dir);
}

// The acceptance bar of the resilience plane: kill training at an arbitrary
// step, resume from disk, and land on EXACTLY the weights and losses of the
// uninterrupted run — at 1, 2, and 4 threads (resume must also not break the
// thread-count invariance contract of DESIGN.md §7).
TEST(TrainingCheckpointTest, KillAndResumeIsBitwiseIdentical) {
  const data::TimeSeries train = TrainSeries();
  const int saved_threads = ThreadPool::Instance().num_threads();
  std::vector<std::string> weights_by_threads;
  for (int threads : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(threads);

    TfmaeDetector reference(SmallConfig());
    reference.Fit(train);
    const std::vector<char> expected =
        nn::EncodeParameters(*reference.model());

    const std::string dir =
        FreshDir("tfmae_tc_resume_" + std::to_string(threads));
    FitOptions interrupt;
    interrupt.checkpoint_dir = dir;
    interrupt.checkpoint_every = 3;
    interrupt.max_steps = 11;
    TfmaeDetector killed(SmallConfig());
    killed.Fit(train, interrupt);
    ASSERT_TRUE(killed.train_stats().interrupted);

    FitOptions resume_options;
    resume_options.checkpoint_dir = dir;
    TfmaeDetector resumed(SmallConfig());
    ASSERT_TRUE(resumed.Resume(train, resume_options));
    EXPECT_EQ(resumed.train_stats().resumed_at_step, 9);
    EXPECT_FALSE(resumed.train_stats().interrupted);

    const std::vector<char> actual = nn::EncodeParameters(*resumed.model());
    EXPECT_TRUE(actual == expected)
        << "resumed weights diverge from the uninterrupted run at "
        << threads << " thread(s)";
    EXPECT_EQ(resumed.train_stats().mean_loss_last_epoch,
              reference.train_stats().mean_loss_last_epoch);
    EXPECT_EQ(resumed.train_stats().mean_loss_first_epoch,
              reference.train_stats().mean_loss_first_epoch);
    EXPECT_EQ(resumed.train_stats().num_steps,
              reference.train_stats().num_steps);
    weights_by_threads.emplace_back(expected.begin(), expected.end());
    std::filesystem::remove_all(dir);
  }
  ThreadPool::Instance().SetNumThreads(saved_threads);
  // And the whole exercise is thread-count invariant.
  EXPECT_EQ(weights_by_threads[0], weights_by_threads[1]);
  EXPECT_EQ(weights_by_threads[0], weights_by_threads[2]);
}

TEST(TrainingCheckpointTest, CorruptNewestFallsBackToPreviousCheckpoint) {
  const data::TimeSeries train = TrainSeries();
  const std::string dir = FreshDir("tfmae_tc_fallback");
  FitOptions interrupt;
  interrupt.checkpoint_dir = dir;
  interrupt.checkpoint_every = 3;
  interrupt.keep_last = 4;
  interrupt.max_steps = 11;
  TfmaeDetector killed(SmallConfig());
  killed.Fit(train, interrupt);

  // A torn write of the newest checkpoint (flip one byte near the CRC
  // trailer) must fall back to the previous one and still land bitwise on
  // the uninterrupted run.
  CorruptByte(TrainingCheckpointPath(dir, 9), 2);
  std::string error;
  const auto latest = FindLatestValidCheckpoint(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->second.progress.steps, 6);

  TfmaeDetector reference(SmallConfig());
  reference.Fit(train);
  FitOptions resume_options;
  resume_options.checkpoint_dir = dir;
  TfmaeDetector resumed(SmallConfig());
  ASSERT_TRUE(resumed.Resume(train, resume_options));
  EXPECT_EQ(resumed.train_stats().resumed_at_step, 6);
  EXPECT_TRUE(nn::EncodeParameters(*resumed.model()) ==
              nn::EncodeParameters(*reference.model()));
  std::filesystem::remove_all(dir);
}

TEST(TrainingCheckpointTest, RejectsTruncationFlipMagicAndVersion) {
  const std::string dir = FreshDir("tfmae_tc_corrupt");
  TfmaeDetector detector(SmallConfig());
  FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 4;
  options.max_steps = 4;
  detector.Fit(TrainSeries(), options);
  const std::string path = TrainingCheckpointPath(dir, 4);
  std::ifstream in(path, std::ios::binary);
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);

  const auto rewrite = [&](std::vector<char> contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  };
  std::string error;

  // Truncated mid-file.
  rewrite({bytes.begin(), bytes.begin() + static_cast<long>(bytes.size()) / 2});
  EXPECT_FALSE(LoadTrainingCheckpoint(path, &error).has_value());

  // Flipped byte inside a section payload.
  std::vector<char> flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 4);
  rewrite(flipped);
  EXPECT_FALSE(LoadTrainingCheckpoint(path, &error).has_value());

  // Wrong magic / wrong version: fix up the trailer CRC after tampering so
  // the header validation itself (not the checksum) is what rejects.
  const auto fix_trailer_crc = [](std::vector<char>* contents) {
    const std::uint32_t crc = util::Crc32(
        contents->data(), contents->size() - sizeof(std::uint32_t));
    std::memcpy(contents->data() + contents->size() - sizeof(crc), &crc,
                sizeof(crc));
  };
  std::vector<char> magic = bytes;
  magic[0] = 'Z';
  fix_trailer_crc(&magic);
  rewrite(magic);
  EXPECT_FALSE(LoadTrainingCheckpoint(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Unsupported container version (bytes 8..11 hold the version word).
  std::vector<char> version = bytes;
  version[8] = 99;
  fix_trailer_crc(&version);
  rewrite(version);
  EXPECT_FALSE(LoadTrainingCheckpoint(path, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  rewrite(bytes);  // pristine copy loads again
  EXPECT_TRUE(LoadTrainingCheckpoint(path, &error).has_value()) << error;
  std::filesystem::remove_all(dir);
}

TEST(TrainingCheckpointTest, ResumeRefusesMismatchedArchitectureOrData) {
  const data::TimeSeries train = TrainSeries();
  const std::string dir = FreshDir("tfmae_tc_mismatch");
  FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 4;
  options.max_steps = 8;
  TfmaeDetector killed(SmallConfig());
  killed.Fit(train, options);

  // Different architecture (config CRC differs).
  TfmaeConfig other = SmallConfig();
  other.model_dim = 32;
  TfmaeDetector wrong_arch(other);
  FitOptions resume_options;
  resume_options.checkpoint_dir = dir;
  EXPECT_FALSE(wrong_arch.Resume(train, resume_options));

  // Different data shape (feature count differs).
  data::BaseSignalConfig narrow;
  narrow.length = 400;
  narrow.num_features = 1;
  narrow.seed = 321;
  TfmaeDetector wrong_data(SmallConfig());
  EXPECT_FALSE(
      wrong_data.Resume(data::GenerateBaseSignal(narrow), resume_options));

  // Empty directory: nothing to resume from.
  const std::string empty = FreshDir("tfmae_tc_empty");
  FitOptions empty_options;
  empty_options.checkpoint_dir = empty;
  TfmaeDetector nothing(SmallConfig());
  EXPECT_FALSE(nothing.Resume(train, empty_options));

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(empty);
}

}  // namespace
}  // namespace tfmae::core
