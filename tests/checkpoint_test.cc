// Tests for full-detector checkpointing (config + normalizer + weights).
#include <cstdio>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/generator.h"

namespace tfmae::core {
namespace {

TfmaeConfig SmallConfig() {
  TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 3;
  config.stride = 16;
  config.temporal_mask_ratio = 0.25;
  config.per_window_normalization = false;
  return config;
}

void RemoveCheckpoint(const std::string& prefix) {
  std::remove((prefix + ".config").c_str());
  std::remove((prefix + ".norm").c_str());
  std::remove((prefix + ".weights").c_str());
}

TEST(CheckpointTest, RoundTripReproducesScoresExactly) {
  data::BaseSignalConfig signal;
  signal.length = 500;
  signal.num_features = 3;
  signal.seed = 111;
  // A channel far from zero exercises the normalizer statistics.
  data::TimeSeries series = data::GenerateBaseSignal(signal);
  for (std::int64_t t = 0; t < series.length; ++t) series.at(t, 2) += 40.0f;
  data::TimeSeries train = series.Slice(0, 350);
  data::TimeSeries test = series.Slice(350, 150);

  TfmaeDetector original(SmallConfig());
  original.Fit(train);
  const std::string prefix = ::testing::TempDir() + "/tfmae_ckpt";
  ASSERT_TRUE(original.SaveCheckpoint(prefix));

  TfmaeDetector restored(TfmaeConfig{});  // different config; load overrides
  ASSERT_TRUE(restored.LoadCheckpoint(prefix));
  EXPECT_EQ(restored.config().window, 32);
  EXPECT_EQ(restored.config().model_dim, 16);

  const auto expected = original.Score(test);
  const auto actual = restored.Score(test);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-6) << "t=" << i;
  }
  RemoveCheckpoint(prefix);
}

TEST(CheckpointTest, LoadFailsOnMissingPieces) {
  TfmaeDetector detector(SmallConfig());
  EXPECT_FALSE(detector.LoadCheckpoint("/nonexistent/prefix"));

  // Config present but weights missing.
  data::BaseSignalConfig signal;
  signal.length = 200;
  signal.num_features = 1;
  signal.seed = 112;
  TfmaeDetector fitted(SmallConfig());
  fitted.Fit(data::GenerateBaseSignal(signal));
  const std::string prefix = ::testing::TempDir() + "/tfmae_partial";
  ASSERT_TRUE(fitted.SaveCheckpoint(prefix));
  std::remove((prefix + ".weights").c_str());
  TfmaeDetector loader(SmallConfig());
  EXPECT_FALSE(loader.LoadCheckpoint(prefix));
  RemoveCheckpoint(prefix);
}

TEST(CheckpointTest, SaveBeforeFitDies) {
  TfmaeDetector detector(SmallConfig());
  EXPECT_DEATH(detector.SaveCheckpoint("/tmp/should_not_exist"), "Fit");
}

}  // namespace
}  // namespace tfmae::core
