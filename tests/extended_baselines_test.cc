// Tests for the second-wave baselines: AnomalyTransformer-lite (association
// discrepancy), OmniAnomaly-lite (GRU-VAE), and Spectral Residual.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/anotran.h"
#include "baselines/omni_ano.h"
#include "baselines/spectral_residual.h"
#include "data/generator.h"
#include "eval/metrics.h"

namespace tfmae::baselines {
namespace {

struct Planted {
  data::TimeSeries train;
  data::TimeSeries test;
};

Planted MakePlanted(std::uint64_t seed) {
  data::BaseSignalConfig config;
  config.length = 900;
  config.num_features = 2;
  config.noise_std = 0.05;
  config.seed = seed;
  data::TimeSeries full = data::GenerateBaseSignal(config);
  Planted planted;
  planted.train = full.Slice(0, 600);
  planted.test = full.Slice(600, 300);
  planted.test.labels.assign(300, 0);
  for (std::int64_t t : {50, 130, 131, 210, 275}) {
    for (std::int64_t n = 0; n < 2; ++n) planted.test.at(t, n) += 5.0f;
    planted.test.labels[static_cast<std::size_t>(t)] = 1;
  }
  return planted;
}

TEST(AnoTranTest, SeparatesPlantedSpikes) {
  const Planted planted = MakePlanted(81);
  AnoTranDetector detector;
  detector.Fit(planted.train);
  const auto scores = detector.Score(planted.test);
  ASSERT_EQ(scores.size(), 300u);
  const double auroc = eval::Auroc(scores, planted.test.labels);
  EXPECT_GT(auroc, 0.85) << "AUROC " << auroc;
}

TEST(AnoTranTest, DeterministicGivenSeed) {
  const Planted planted = MakePlanted(82);
  AnoTranOptions options;
  options.epochs = 3;
  AnoTranDetector a(options);
  AnoTranDetector b(options);
  a.Fit(planted.train);
  b.Fit(planted.train);
  EXPECT_EQ(a.Score(planted.test), b.Score(planted.test));
}

TEST(OmniAnoTest, SeparatesPlantedSpikes) {
  const Planted planted = MakePlanted(83);
  OmniAnoDetector detector;
  detector.Fit(planted.train);
  const auto scores = detector.Score(planted.test);
  const double auroc = eval::Auroc(scores, planted.test.labels);
  EXPECT_GT(auroc, 0.85) << "AUROC " << auroc;
}

TEST(OmniAnoTest, ScoresAreFiniteAndNonNegative) {
  const Planted planted = MakePlanted(84);
  OmniAnoOptions options;
  options.epochs = 2;
  OmniAnoDetector detector(options);
  detector.Fit(planted.train);
  for (float s : detector.Score(planted.test)) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0f);
  }
}

TEST(SpectralResidualTest, SaliencyPeaksAtSpike) {
  // Smooth sinusoid with one spike: the saliency map must peak there.
  std::vector<double> window(128);
  for (std::size_t t = 0; t < window.size(); ++t) {
    window[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 32.0);
  }
  window[64] += 4.0;
  const auto saliency = SpectralResidualDetector::SaliencyMap(window, 3);
  ASSERT_EQ(saliency.size(), window.size());
  std::size_t argmax = 0;
  for (std::size_t t = 1; t < saliency.size(); ++t) {
    if (saliency[t] > saliency[argmax]) argmax = t;
  }
  EXPECT_NEAR(static_cast<double>(argmax), 64.0, 2.0);
}

TEST(SpectralResidualTest, SeparatesPlantedSpikes) {
  const Planted planted = MakePlanted(85);
  SpectralResidualDetector detector;
  detector.Fit(planted.train);
  const auto scores = detector.Score(planted.test);
  const double auroc = eval::Auroc(scores, planted.test.labels);
  EXPECT_GT(auroc, 0.8) << "AUROC " << auroc;
}

TEST(SpectralResidualTest, ScoreBeforeFitDies) {
  SpectralResidualDetector detector;
  data::TimeSeries series = data::TimeSeries::Zeros(200, 1);
  EXPECT_DEATH(detector.Score(series), "Fit");
}

}  // namespace
}  // namespace tfmae::baselines
