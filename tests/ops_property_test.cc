// Property-style sweeps of the tensor operators against naive reference
// implementations across a grid of shapes, plus algebraic invariants
// (Parseval for the FFT, softmax simplex membership, layer-norm statistics,
// matmul associativity with identity).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include <gtest/gtest.h>

#include "fft/fft.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tfmae {
namespace {

Tensor RandomTensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng);
}

// ---- MatMul vs naive across shapes -----------------------------------------

class MatMulShapeTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(MatMulShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = RandomTensor({m, k}, 11 + static_cast<std::uint64_t>(m));
  Tensor b = RandomTensor({k, n}, 13 + static_cast<std::uint64_t>(n));
  Tensor c = ops::MatMul(a, b);
  ASSERT_EQ(c.shape(), (Shape{m, n}));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i * k + p)) *
               static_cast<double>(b.at(p * n + j));
      }
      EXPECT_NEAR(c.at(i * n + j), acc, 1e-3 * std::max(1.0, std::abs(acc)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 17),
                       ::testing::Values<std::int64_t>(1, 8, 31),
                       ::testing::Values<std::int64_t>(1, 5, 19)));

TEST(MatMulPropertyTest, IdentityIsNeutral) {
  Tensor a = RandomTensor({7, 7}, 17);
  Tensor identity = Tensor::Zeros({7, 7});
  for (std::int64_t i = 0; i < 7; ++i) identity.data()[i * 7 + i] = 1.0f;
  Tensor left = ops::MatMul(identity, a);
  Tensor right = ops::MatMul(a, identity);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(left.at(i), a.at(i), 1e-5);
    EXPECT_NEAR(right.at(i), a.at(i), 1e-5);
  }
}

TEST(MatMulPropertyTest, TransposeReversesProduct) {
  // (A B)^T == B^T A^T.
  Tensor a = RandomTensor({4, 6}, 19);
  Tensor b = RandomTensor({6, 3}, 23);
  Tensor lhs = ops::Transpose2(ops::MatMul(a, b));
  Tensor rhs = ops::MatMul(ops::Transpose2(b), ops::Transpose2(a));
  for (std::int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.at(i), rhs.at(i), 1e-4);
  }
}

// ---- Softmax invariants ------------------------------------------------------

class SoftmaxShapeTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(SoftmaxShapeTest, RowsOnSimplexAndShiftInvariant) {
  const auto [rows, cols] = GetParam();
  Tensor x = RandomTensor({rows, cols}, 29);
  Tensor y = ops::Softmax(x);
  for (std::int64_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float v = y.at(r * cols + c);
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // Shift invariance: softmax(x + c) == softmax(x).
  Tensor shifted = ops::Softmax(ops::AddScalar(x, 7.5f));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(shifted.at(i), y.at(i), 1e-5);
  }
  // exp(LogSoftmax) == Softmax.
  Tensor log_y = ops::LogSoftmax(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(std::exp(log_y.at(i)), y.at(i), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxShapeTest,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 4, 32),
                       ::testing::Values<std::int64_t>(1, 2, 16, 128)));

// ---- KL invariants ------------------------------------------------------------

TEST(KlPropertyTest, NonNegativeAndZeroOnIdenticalInputs) {
  for (std::uint64_t seed = 40; seed < 45; ++seed) {
    Tensor p = RandomTensor({6, 12}, seed);
    Tensor q = RandomTensor({6, 12}, seed + 100);
    EXPECT_GE(ops::KlDivLoss(p, q).item(), -1e-6) << "seed " << seed;
    EXPECT_NEAR(ops::KlDivLoss(p, p).item(), 0.0, 1e-6);
    const auto per_row = ops::SymmetricKlPerRow(p, p);
    for (float v : per_row) EXPECT_NEAR(v, 0.0, 1e-6);
  }
}

TEST(KlPropertyTest, SymmetricLossIsSymmetricInValue) {
  Tensor p = RandomTensor({5, 9}, 51);
  Tensor q = RandomTensor({5, 9}, 52);
  EXPECT_NEAR(ops::SymmetricKlLoss(p, q).item(),
              ops::SymmetricKlLoss(q, p).item(), 1e-5);
}

// ---- LayerNorm invariants ------------------------------------------------------

TEST(LayerNormPropertyTest, UnitGammaZeroBetaNormalizesAnyInputScale) {
  Tensor gamma = Tensor::Full({16}, 1.0f);
  Tensor beta = Tensor::Zeros({16});
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    Tensor x = ops::Scale(RandomTensor({8, 16}, 61), scale);
    Tensor y = ops::LayerNormOp(x, gamma, beta);
    for (std::int64_t r = 0; r < 8; ++r) {
      double mean = 0.0;
      for (std::int64_t c = 0; c < 16; ++c) mean += y.at(r * 16 + c);
      EXPECT_NEAR(mean / 16.0, 0.0, 1e-4) << "scale " << scale;
    }
  }
}

// ---- FFT invariants --------------------------------------------------------------

class ParsevalTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ParsevalTest, EnergyIsPreserved) {
  const std::int64_t n = GetParam();
  Rng rng(70 + static_cast<std::uint64_t>(n));
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (double& v : signal) v = rng.Normal();
  const auto spectrum = fft::RealFft(signal);
  double time_energy = 0.0;
  for (double v : signal) time_energy += v * v;
  double freq_energy = 0.0;
  for (const auto& bin : spectrum) freq_energy += std::norm(bin);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * std::max(1.0, time_energy))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, ParsevalTest,
                         ::testing::Values(8, 50, 100, 128, 321));

TEST(FftPropertyTest, LinearityOfTheTransform) {
  Rng rng(81);
  std::vector<fft::Complex> a(64);
  std::vector<fft::Complex> b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = fft::Complex(rng.Normal(), rng.Normal());
    b[i] = fft::Complex(rng.Normal(), rng.Normal());
  }
  std::vector<fft::Complex> combined(64);
  for (std::size_t i = 0; i < 64; ++i) combined[i] = 2.0 * a[i] - 3.0 * b[i];
  const auto fa = fft::Fft(a);
  const auto fb = fft::Fft(b);
  const auto fc = fft::Fft(combined);
  for (std::size_t i = 0; i < 64; ++i) {
    const fft::Complex expected = 2.0 * fa[i] - 3.0 * fb[i];
    EXPECT_NEAR(std::abs(fc[i] - expected), 0.0, 1e-8);
  }
}

// ---- Broadcasting sweep ------------------------------------------------------------

TEST(BroadcastPropertyTest, SuffixBroadcastMatchesManualExpansion) {
  Tensor big = RandomTensor({4, 3, 5}, 91);
  Tensor small = RandomTensor({5}, 92);
  Tensor sum = ops::Add(big, small);
  Tensor product = ops::Mul(big, small);
  for (std::int64_t i = 0; i < big.numel(); ++i) {
    const float s = small.at(i % 5);
    EXPECT_NEAR(sum.at(i), big.at(i) + s, 1e-6);
    EXPECT_NEAR(product.at(i), big.at(i) * s, 1e-6);
  }
}

TEST(BroadcastPropertyTest, ScalarOperandBroadcasts) {
  Tensor x = RandomTensor({3, 4}, 93);
  Tensor scalar = Tensor::Full({1}, 2.5f);
  Tensor quotient = ops::Div(x, scalar);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(quotient.at(i), x.at(i) / 2.5f, 1e-6);
  }
}

// ---- Fused / in-place variants ---------------------------------------------
//
// The memory plane's fused kernels promise BITWISE equality with the
// out-of-place compositions they replace (same per-element arithmetic in the
// same order), so these compare float bits, not tolerances.

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(FusedOpPropertyTest, BiasGeluBitwiseMatchesGeluOfAdd) {
  Tensor x = RandomTensor({7, 24}, 101);
  Tensor bias = RandomTensor({24}, 102);
  ExpectBitwiseEqual(ops::BiasGelu(x, bias), ops::Gelu(ops::Add(x, bias)));
}

TEST(FusedOpPropertyTest, ScaleSoftmaxBitwiseMatchesSoftmaxOfScale) {
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor x = RandomTensor({9, 17}, 103);
  ExpectBitwiseEqual(ops::ScaleSoftmax(x, scale),
                     ops::Softmax(ops::Scale(x, scale)));
}

TEST(FusedOpPropertyTest, AddInPlaceBitwiseMatchesAdd) {
  Tensor a = RandomTensor({6, 13}, 104);
  Tensor b = RandomTensor({6, 13}, 105);
  Tensor expected = ops::Add(a, b);
  ops::AddInPlace(&a, b);
  ExpectBitwiseEqual(a, expected);
}

TEST(FusedOpPropertyTest, MulScalarInPlaceBitwiseMatchesScale) {
  Tensor x = RandomTensor({5, 11}, 106);
  Tensor expected = ops::Scale(x, -0.37f);
  ops::MulScalarInPlace(&x, -0.37f);
  ExpectBitwiseEqual(x, expected);
}

// Fused backward passes checked against central finite differences through
// loss = sum(w ⊙ op(inputs)), mirroring autograd_test's harness.
void CheckFusedGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& op,
    std::vector<Tensor> inputs) {
  constexpr double kTol = 3e-2;
  constexpr float kEps = 1e-2f;
  Rng wrng(107);
  Tensor weights;
  auto loss_of = [&](const std::vector<Tensor>& in) {
    Tensor out = op(in);
    if (!weights.defined()) weights = Tensor::Randn(out.shape(), &wrng);
    return ops::SumAll(ops::Mul(out, weights));
  };
  for (Tensor& input : inputs) input.set_requires_grad(true);
  Tensor loss = loss_of(inputs);
  for (Tensor& input : inputs) input.ZeroGrad();
  loss.Backward();
  for (std::size_t which = 0; which < inputs.size(); ++which) {
    Tensor& input = inputs[which];
    ASSERT_NE(input.grad_data(), nullptr) << "input " << which;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float saved = input.data()[i];
      input.data()[i] = saved + kEps;
      const float up = loss_of(inputs).item();
      input.data()[i] = saved - kEps;
      const float down = loss_of(inputs).item();
      input.data()[i] = saved;
      const double numeric = (static_cast<double>(up) -
                              static_cast<double>(down)) /
                             (2.0 * static_cast<double>(kEps));
      const double analytic = input.grad_data()[i];
      const double scale =
          std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, kTol * scale)
          << "input " << which << " element " << i;
    }
  }
}

TEST(FusedOpPropertyTest, BiasGeluGradientMatchesFiniteDifference) {
  CheckFusedGradients(
      [](const auto& in) { return ops::BiasGelu(in[0], in[1]); },
      {RandomTensor({3, 8}, 108), RandomTensor({8}, 109)});
}

TEST(FusedOpPropertyTest, ScaleSoftmaxGradientMatchesFiniteDifference) {
  CheckFusedGradients(
      [](const auto& in) { return ops::ScaleSoftmax(in[0], 0.5f); },
      {RandomTensor({4, 6}, 110)});
}

}  // namespace
}  // namespace tfmae
