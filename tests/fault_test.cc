// Tests for the resilience plane's failure paths: the deterministic fault
// registry itself, the numeric-health guard, and — in -DTFMAE_FAULTS=ON
// builds — training/serialization/streaming recovery under injected
// failures, including the seeded sweep driven by scripts/check.sh faults
// (TFMAE_FAULT_SWEEP_SEED).
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/detector.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "data/io.h"
#include "nn/adam.h"
#include "nn/numeric_guard.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "util/fault.h"

namespace tfmae {
namespace {

// ---------------------------------------------------------------------------
// Fault registry (runs in every build: ShouldInject is always compiled; only
// the TFMAE_FAULT macro sites are gated).

TEST(FaultRegistryTest, UnconfiguredPointsNeverFire) {
  fault::Clear();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::ShouldInject("nonexistent.point"));
  }
  EXPECT_TRUE(fault::AllCounts().empty());
}

TEST(FaultRegistryTest, OccurrenceTriggerFiresExactlyOnNthCheck) {
  fault::ScopedFaults faults("test.point:#3");
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(fault::ShouldInject("test.point"));
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::InjectedCount("test.point"), 1u);
  EXPECT_EQ(fault::CheckCount("test.point"), 10u);
}

TEST(FaultRegistryTest, ProbabilityIsDeterministicPerSeedAndPoint) {
  const auto decisions = [](std::uint64_t seed) {
    fault::ScopedFaults faults("a.point:0.5,b.point:0.5", seed);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(fault::ShouldInject("a.point"));
      out.push_back(fault::ShouldInject("b.point"));
    }
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));

  // Point independence: interleaving checks of another point does not
  // perturb a point's own decision sequence.
  std::vector<bool> solo;
  {
    fault::ScopedFaults faults("a.point:0.5,b.point:0.5", 7);
    for (int i = 0; i < 64; ++i) solo.push_back(fault::ShouldInject("a.point"));
  }
  std::vector<bool> interleaved;
  {
    fault::ScopedFaults faults("a.point:0.5,b.point:0.5", 7);
    for (int i = 0; i < 64; ++i) {
      interleaved.push_back(fault::ShouldInject("a.point"));
      fault::ShouldInject("b.point");
      fault::ShouldInject("b.point");
    }
  }
  EXPECT_EQ(solo, interleaved);
}

TEST(FaultRegistryTest, AllCountsAreNamedAndSorted) {
  fault::ScopedFaults faults("z.point:#1,a.point:#1");
  fault::ShouldInject("z.point");
  const auto counts = fault::AllCounts();
  ASSERT_EQ(counts.size(), 4u);  // checks+injected for both points
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LT(counts[i - 1].first, counts[i].first);
  }
  EXPECT_EQ(counts[0].first, "fault.checks.a.point");
  bool found = false;
  for (const auto& [name, value] : counts) {
    if (name == "fault.injected.z.point") {
      EXPECT_EQ(value, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultRegistryDeathTest, MalformedSpecDies) {
  EXPECT_DEATH(fault::Configure("no_colon_here"), "");
  EXPECT_DEATH(fault::Configure("p:not_a_number"), "");
  EXPECT_DEATH(fault::Configure("p:1.5"), "");
}

TEST(FaultRegistryTest, TryConfigureAcceptsTheFullGrammar) {
  std::string error;
  // Occurrence triggers, probability bounds, multi-entry specs, and a point
  // name that itself contains colonless dots.
  EXPECT_TRUE(fault::TryConfigure("serve.push:#1", 1, &error)) << error;
  EXPECT_TRUE(fault::TryConfigure("a:#12,b:0.0,c:1.0,d:0.5", 1, &error))
      << error;
  // Empty entries between commas are tolerated (trailing comma etc.).
  EXPECT_TRUE(fault::TryConfigure("a:#1,,b:#2,", 1, &error)) << error;
  EXPECT_TRUE(fault::ShouldInject("a"));
  // An empty spec succeeds and clears every point.
  EXPECT_TRUE(fault::TryConfigure("", 1, &error)) << error;
  EXPECT_TRUE(fault::AllCounts().empty());
  fault::Clear();
}

TEST(FaultRegistryTest, TryConfigureRejectsMalformedEntries) {
  const char* kBad[] = {
      "no_colon_here",   // no trigger at all
      ":0.5",            // empty point name
      "p:",              // empty trigger
      "p:#",             // occurrence marker with no digits
      "p:#0",            // occurrence is 1-based
      "p:#abc",          // non-numeric occurrence
      "p:#3junk",        // trailing garbage after the digits
      "p:not_a_number",  // non-numeric probability
      "p:1.5",           // probability > 1
      "p:-0.1",          // probability < 0
      "p:nan",           // NaN fails the closed-range check
      "p:0.5junk",       // trailing garbage after the number
      "good:#1,p:",      // one bad entry poisons the whole spec
  };
  for (const char* spec : kBad) {
    std::string error;
    EXPECT_FALSE(fault::TryConfigure(spec, 1, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultRegistryTest, FailedTryConfigureLeavesLiveRegistryUntouched) {
  fault::ScopedFaults faults("keep.me:#1");
  std::string error;
  // All-or-nothing: the valid first entry of a bad spec must not land.
  EXPECT_FALSE(fault::TryConfigure("replace.me:#1,broken:", 1, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(fault::ShouldInject("keep.me"));   // old config still live
  EXPECT_FALSE(fault::ShouldInject("replace.me"));
  EXPECT_EQ(fault::CheckCount("replace.me"), 0u);
}

// ---------------------------------------------------------------------------
// Numeric guard (runs in every build; needs no injection machinery).

TEST(NumericGuardTest, BlownLossSkipsRestoresAndBacksOffLr) {
  Tensor p = Tensor::FromData({2}, {5.0f, -3.0f}).set_requires_grad(true);
  nn::AdamOptions options;
  options.learning_rate = 0.1f;
  nn::Adam adam({p}, options);
  nn::NumericGuard guard(&adam);

  // One healthy step moves the weights; commit it as the good snapshot.
  Tensor loss = ops::SumAll(ops::Scale(p, 2.0f));
  loss.Backward();
  ASSERT_TRUE(guard.PreStep(loss.item()));
  adam.Step();
  guard.CommitGoodStep();
  adam.ZeroGrad();
  const float good0 = p.at(0);
  const float good1 = p.at(1);

  // A non-finite loss must skip the step, restore the snapshot, and halve
  // the learning rate.
  Tensor blown = ops::SumAll(ops::Scale(p, 2.0f));
  blown.Backward();
  EXPECT_FALSE(guard.PreStep(std::nanf("")));
  EXPECT_EQ(p.at(0), good0);
  EXPECT_EQ(p.at(1), good1);
  EXPECT_FLOAT_EQ(adam.options().learning_rate, 0.05f);
  EXPECT_EQ(guard.stats().nonfinite_loss, 1);
  EXPECT_EQ(guard.stats().skipped_steps, 1);
  EXPECT_EQ(guard.stats().restores, 1);
  EXPECT_FALSE(guard.gave_up());
}

TEST(NumericGuardTest, OverflowedGradientIsCaughtBeforeTheStep) {
  Tensor p = Tensor::FromData({2}, {0.0f, 0.0f}).set_requires_grad(true);
  nn::Adam adam({p}, nn::AdamOptions{});
  nn::NumericGuard guard(&adam);
  // d(loss)/dp = 1e38 * 1e38 overflows to Inf while the loss itself (p = 0)
  // stays finite — only the gradient sweep can catch this one.
  Tensor loss = ops::SumAll(ops::Scale(ops::Scale(p, 1e38f), 1e38f));
  loss.Backward();
  ASSERT_TRUE(std::isfinite(loss.item()));
  EXPECT_FALSE(guard.PreStep(loss.item()));
  EXPECT_EQ(guard.stats().nonfinite_grad, 1);
  EXPECT_EQ(p.at(0), 0.0f);
}

TEST(NumericGuardTest, GivesUpAfterMaxConsecutiveSkips) {
  Tensor p = Tensor::FromData({1}, {1.0f}).set_requires_grad(true);
  nn::Adam adam({p}, nn::AdamOptions{});
  nn::NumericGuardOptions options;
  options.max_consecutive_skips = 3;
  nn::NumericGuard guard(&adam, options);
  for (int i = 0; i < 4; ++i) {
    Tensor loss = ops::SumAll(p);
    loss.Backward();
    EXPECT_FALSE(guard.PreStep(std::nanf("")));
    adam.ZeroGrad();
  }
  EXPECT_TRUE(guard.gave_up());
  // Once given up, the guard refuses further steps without counting more.
  EXPECT_FALSE(guard.PreStep(1.0f));
}

// ---------------------------------------------------------------------------
// Injection through real subsystems (fault builds only).

core::TfmaeConfig TinyConfig() {
  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 2;
  config.stride = 16;
  config.per_window_normalization = false;
  return config;
}

data::TimeSeries TinySeries() {
  data::BaseSignalConfig signal;
  signal.length = 300;
  signal.num_features = 2;
  signal.seed = 77;
  return data::GenerateBaseSignal(signal);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

#define SKIP_WITHOUT_FAULT_BUILD()                                       \
  do {                                                                   \
    if (!fault::CompiledIn()) {                                          \
      GTEST_SKIP() << "fault injection points require -DTFMAE_FAULTS=ON"; \
    }                                                                    \
  } while (0)

TEST(FaultInjectionTest, InjectedNanLossIsSkippedAndTrainingRecovers) {
  SKIP_WITHOUT_FAULT_BUILD();
  fault::ScopedFaults faults("train.nan_loss:#5");
  core::TfmaeDetector detector(TinyConfig());
  detector.Fit(TinySeries());
  const core::TrainStats& stats = detector.train_stats();
  EXPECT_GE(stats.numeric.nonfinite_loss, 1);
  EXPECT_GE(stats.numeric.skipped_steps, 1);
  EXPECT_GE(stats.numeric.restores, 1);
  EXPECT_FALSE(stats.interrupted);
  EXPECT_TRUE(std::isfinite(stats.mean_loss_last_epoch));
  EXPECT_GT(stats.num_steps, 0);
}

TEST(FaultInjectionTest, InjectedCheckpointWriteFailureDoesNotKillTraining) {
  SKIP_WITHOUT_FAULT_BUILD();
  const std::string dir = FreshDir("tfmae_fault_io");
  fault::ScopedFaults faults("io.checkpoint_write:#1");
  core::FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 4;
  core::TfmaeDetector detector(TinyConfig());
  detector.Fit(TinySeries(), options);
  EXPECT_GE(detector.train_stats().checkpoint_failures, 1);
  EXPECT_GE(detector.train_stats().checkpoints_written, 1);
  EXPECT_FALSE(detector.train_stats().interrupted);
  // Later (uninjected) writes produced a usable checkpoint.
  EXPECT_TRUE(core::FindLatestValidCheckpoint(dir).has_value());
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectionTest, InjectedInterruptThenResumeIsBitwiseIdentical) {
  SKIP_WITHOUT_FAULT_BUILD();
  const data::TimeSeries train = TinySeries();
  core::TfmaeDetector reference(TinyConfig());
  reference.Fit(train);

  const std::string dir = FreshDir("tfmae_fault_kill");
  core::FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 3;
  core::TfmaeDetector killed(TinyConfig());
  {
    fault::ScopedFaults faults("train.interrupt:#8");
    killed.Fit(train, options);
  }
  ASSERT_TRUE(killed.train_stats().interrupted);

  core::TfmaeDetector resumed(TinyConfig());
  core::FitOptions resume_options;
  resume_options.checkpoint_dir = dir;
  ASSERT_TRUE(resumed.Resume(train, resume_options));
  EXPECT_TRUE(nn::EncodeParameters(*resumed.model()) ==
              nn::EncodeParameters(*reference.model()));
  EXPECT_EQ(resumed.train_stats().mean_loss_last_epoch,
            reference.train_stats().mean_loss_last_epoch);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectionTest, InjectedCsvFaultSurfacesLineDiagnostic) {
  SKIP_WITHOUT_FAULT_BUILD();
  const std::string path = ::testing::TempDir() + "/fault_rows.csv";
  data::TimeSeries series = data::TimeSeries::Zeros(5, 2);
  ASSERT_TRUE(data::SaveCsv(series, path));
  fault::ScopedFaults faults("data.csv_row:#2");
  data::CsvDiagnostic diagnostic;
  EXPECT_FALSE(data::LoadCsv(path, &diagnostic).has_value());
  EXPECT_EQ(diagnostic.line, 3);  // header + 1 clean row precede it
  EXPECT_NE(diagnostic.message.find("injected"), std::string::npos);
  std::remove(path.c_str());
}

// Minimal detector for streaming tests: score = |first feature| at each step.
class TailDetector : public core::AnomalyDetector {
 public:
  std::string Name() const override { return "tail"; }
  void Fit(const data::TimeSeries&) override {}
  std::vector<float> Score(const data::TimeSeries& series) override {
    std::vector<float> scores(static_cast<std::size_t>(series.length));
    for (std::int64_t t = 0; t < series.length; ++t) {
      scores[static_cast<std::size_t>(t)] = std::abs(series.at(t, 0));
    }
    return scores;
  }
};

TEST(FaultInjectionTest, InjectedStreamCorruptionIsImputedNotFatal) {
  SKIP_WITHOUT_FAULT_BUILD();
  fault::ScopedFaults faults("streaming.corrupt_value:0.2", 3);
  TailDetector detector;
  core::StreamingOptions options;
  options.window = 8;
  options.hop = 1;
  core::StreamingDetector stream(&detector, options);
  std::int64_t scored = 0;
  for (int t = 0; t < 200; ++t) {
    const auto result = stream.Push({1.0f, 2.0f});
    if (result.has_value()) {
      ++scored;
      EXPECT_TRUE(std::isfinite(result->score));
    }
  }
  EXPECT_GT(scored, 0);
  EXPECT_GT(stream.health().rows_imputed, 0);
  EXPECT_EQ(stream.health().rows_rejected, 0);
  EXPECT_GT(fault::InjectedCount("streaming.corrupt_value"), 0u);
}

// The scripts/check.sh faults sweep: TFMAE_FAULT_SWEEP_SEED selects the
// injection pattern; training plus its recovery machinery must survive
// every seed without aborting or producing non-finite statistics.
TEST(FaultInjectionTest, SweepSeedSurvivesRandomizedFaults) {
  SKIP_WITHOUT_FAULT_BUILD();
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("TFMAE_FAULT_SWEEP_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const std::string dir = FreshDir("tfmae_fault_sweep");
  fault::ScopedFaults faults(
      "train.nan_loss:0.05,io.checkpoint_write:0.25", seed);
  core::FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 2;
  core::TfmaeDetector detector(TinyConfig());
  detector.Fit(TinySeries(), options);
  const core::TrainStats& stats = detector.train_stats();
  EXPECT_FALSE(stats.interrupted);
  EXPECT_TRUE(std::isfinite(stats.mean_loss_last_epoch));
  EXPECT_GT(stats.num_steps, 0);
  // Whatever mix of write failures happened, the newest surviving
  // checkpoint (if any was written at all) must validate.
  if (stats.checkpoints_written > 0) {
    EXPECT_TRUE(core::FindLatestValidCheckpoint(dir).has_value());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tfmae
