// Tests for the dataset substrate: container invariants, normalization,
// windowing, base-signal generation, anomaly injection, benchmark profiles,
// distribution shift, and CSV I/O.
#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/anomaly.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/profiles.h"
#include "data/timeseries.h"

namespace tfmae::data {
namespace {

TEST(TimeSeriesTest, ZerosAndAccessors) {
  TimeSeries ts = TimeSeries::Zeros(10, 3);
  EXPECT_EQ(ts.length, 10);
  EXPECT_EQ(ts.num_features, 3);
  ts.at(4, 2) = 7.0f;
  EXPECT_EQ(ts.at(4, 2), 7.0f);
  EXPECT_EQ(ts.values[4 * 3 + 2], 7.0f);
  EXPECT_EQ(ts.AnomalyRatio(), 0.0);
}

TEST(TimeSeriesTest, SlicePreservesValuesAndLabels) {
  TimeSeries ts = TimeSeries::Zeros(10, 2);
  ts.labels.assign(10, 0);
  ts.labels[5] = 1;
  for (std::int64_t t = 0; t < 10; ++t) ts.at(t, 0) = static_cast<float>(t);
  TimeSeries slice = ts.Slice(4, 3);
  EXPECT_EQ(slice.length, 3);
  EXPECT_EQ(slice.at(0, 0), 4.0f);
  EXPECT_EQ(slice.labels, (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(NormalizerTest, ZeroMeanUnitVarianceOnTrain) {
  Rng rng(1);
  TimeSeries ts = TimeSeries::Zeros(500, 2);
  for (std::int64_t t = 0; t < 500; ++t) {
    ts.at(t, 0) = static_cast<float>(rng.Normal(5.0, 2.0));
    ts.at(t, 1) = static_cast<float>(rng.Normal(-3.0, 0.5));
  }
  ZScoreNormalizer normalizer;
  normalizer.Fit(ts);
  TimeSeries normalized = normalizer.Apply(ts);
  for (std::int64_t n = 0; n < 2; ++n) {
    double mean = 0.0;
    for (std::int64_t t = 0; t < 500; ++t) mean += normalized.at(t, n);
    mean /= 500;
    double var = 0.0;
    for (std::int64_t t = 0; t < 500; ++t) {
      var += (normalized.at(t, n) - mean) * (normalized.at(t, n) - mean);
    }
    var /= 500;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(NormalizerTest, ConstantFeaturePassesThrough) {
  TimeSeries ts = TimeSeries::Zeros(100, 1);
  for (std::int64_t t = 0; t < 100; ++t) ts.at(t, 0) = 4.0f;
  ZScoreNormalizer normalizer;
  normalizer.Fit(ts);
  TimeSeries normalized = normalizer.Apply(ts);
  for (std::int64_t t = 0; t < 100; ++t) {
    EXPECT_TRUE(std::isfinite(normalized.at(t, 0)));
    EXPECT_NEAR(normalized.at(t, 0), 0.0f, 1e-6);
  }
}

TEST(WindowTest, StartsCoverSeries) {
  // Aligned case.
  EXPECT_EQ(WindowStarts(100, 50, 50), (std::vector<std::int64_t>{0, 50}));
  // Misaligned tail gets a final end-aligned window.
  EXPECT_EQ(WindowStarts(105, 50, 50), (std::vector<std::int64_t>{0, 50, 55}));
  // Series shorter than the window: no windows.
  EXPECT_TRUE(WindowStarts(30, 50, 50).empty());
  // Stride 1 covers every offset.
  EXPECT_EQ(WindowStarts(52, 50, 1).size(), 3u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  BaseSignalConfig config;
  config.length = 200;
  config.num_features = 3;
  config.seed = 77;
  TimeSeries a = GenerateBaseSignal(config);
  TimeSeries b = GenerateBaseSignal(config);
  EXPECT_EQ(a.values, b.values);
  config.seed = 78;
  TimeSeries c = GenerateBaseSignal(config);
  EXPECT_NE(a.values, c.values);
}

TEST(GeneratorTest, ChannelsAreDistinct) {
  BaseSignalConfig config;
  config.length = 300;
  config.num_features = 2;
  config.seed = 5;
  TimeSeries ts = GenerateBaseSignal(config);
  double diff = 0.0;
  for (std::int64_t t = 0; t < ts.length; ++t) {
    diff += std::abs(ts.at(t, 0) - ts.at(t, 1));
  }
  EXPECT_GT(diff / ts.length, 0.1);
}

TEST(GeneratorTest, DistributionShiftRampsProgressively) {
  TimeSeries ts = TimeSeries::Zeros(101, 1);
  for (std::int64_t t = 0; t <= 100; ++t) ts.at(t, 0) = 1.0f;
  ApplyDistributionShift(&ts, 2.0, 1.0);
  EXPECT_NEAR(ts.at(0, 0), 1.0f, 1e-6);     // no shift at the start
  EXPECT_NEAR(ts.at(100, 0), 3.0f, 1e-6);   // full shift at the end
  EXPECT_NEAR(ts.at(50, 0), 2.0f, 1e-5);    // halfway
}

class AnomalyInjectionTest : public ::testing::TestWithParam<AnomalyType> {};

TEST_P(AnomalyInjectionTest, MarksLabelsAndChangesValues) {
  BaseSignalConfig config;
  config.length = 400;
  config.num_features = 4;
  config.seed = 11;
  TimeSeries ts = GenerateBaseSignal(config);
  const TimeSeries original = ts;
  Rng rng(3);
  AnomalyOptions options;
  InjectOne(&ts, GetParam(), options, &rng);
  // Some labels set...
  std::int64_t labeled = 0;
  for (std::uint8_t label : ts.labels) labeled += label;
  EXPECT_GT(labeled, 0);
  // ...and values changed only in a bounded neighbourhood.
  std::int64_t changed = 0;
  for (std::size_t i = 0; i < ts.values.size(); ++i) {
    if (ts.values[i] != original.values[i]) ++changed;
  }
  EXPECT_GT(changed, 0);
}

INSTANTIATE_TEST_SUITE_P(Types, AnomalyInjectionTest,
                         ::testing::Values(AnomalyType::kGlobalPoint,
                                           AnomalyType::kContextual,
                                           AnomalyType::kSeasonal,
                                           AnomalyType::kTrend,
                                           AnomalyType::kShapelet));

TEST(AnomalyInjectionTest, ReachesTargetRatioApproximately) {
  BaseSignalConfig config;
  config.length = 2000;
  config.num_features = 2;
  config.seed = 21;
  TimeSeries ts = GenerateBaseSignal(config);
  Rng rng(4);
  AnomalyMix mix{.global_point = 1, .contextual = 1, .seasonal = 1,
                 .trend = 1, .shapelet = 1};
  InjectAnomalies(&ts, mix, 0.08, AnomalyOptions{}, &rng);
  EXPECT_GE(ts.AnomalyRatio(), 0.06);
  EXPECT_LE(ts.AnomalyRatio(), 0.15);
}

TEST(AnomalyInjectionTest, ZeroRatioInjectsNothing) {
  BaseSignalConfig config;
  config.length = 200;
  config.num_features = 1;
  config.seed = 22;
  TimeSeries ts = GenerateBaseSignal(config);
  Rng rng(5);
  EXPECT_EQ(InjectAnomalies(&ts, AnomalyMix{.global_point = 1}, 0.0,
                            AnomalyOptions{}, &rng),
            0);
  EXPECT_EQ(ts.AnomalyRatio(), 0.0);
}

class ProfileTest : public ::testing::TestWithParam<BenchmarkDataset> {};

TEST_P(ProfileTest, MatchesPublishedCharacteristics) {
  const DatasetProfile profile = GetProfile(GetParam());
  LabeledDataset dataset = MakeDataset(profile);
  EXPECT_EQ(dataset.train.length, profile.train_length);
  EXPECT_EQ(dataset.val.length, profile.val_length);
  EXPECT_EQ(dataset.test.length, profile.test_length);
  EXPECT_EQ(dataset.test.num_features, profile.base.num_features);
  // The test anomaly ratio lands near the paper's Table II value.
  EXPECT_GE(dataset.test.AnomalyRatio(), profile.test_anomaly_ratio * 0.6);
  EXPECT_LE(dataset.test.AnomalyRatio(), profile.test_anomaly_ratio * 1.8);
  // Labels exist on all splits; train contamination is bounded.
  EXPECT_EQ(dataset.train.labels.size(),
            static_cast<std::size_t>(dataset.train.length));
  EXPECT_LE(dataset.train.AnomalyRatio(),
            std::max(0.001, profile.train_contamination * 2.5));
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, ProfileTest,
                         ::testing::Values(BenchmarkDataset::kMsl,
                                           BenchmarkDataset::kPsm,
                                           BenchmarkDataset::kSmd,
                                           BenchmarkDataset::kSwat,
                                           BenchmarkDataset::kSmap,
                                           BenchmarkDataset::kNipsTsGlobal,
                                           BenchmarkDataset::kNipsTsSeasonal));

TEST(ProfileTest, ScaleGrowsSplits) {
  const DatasetProfile small = GetProfile(BenchmarkDataset::kSmd, 0.5);
  const DatasetProfile big = GetProfile(BenchmarkDataset::kSmd, 1.0);
  EXPECT_EQ(small.train_length, big.train_length / 2);
}

TEST(ProfileTest, DatasetNamesMatchPaper) {
  EXPECT_EQ(DatasetName(BenchmarkDataset::kSwat), "SWaT");
  EXPECT_EQ(DatasetName(BenchmarkDataset::kNipsTsGlobal), "NIPS-TS-Global");
  EXPECT_EQ(MainDatasets().size(), 5u);
}

TEST(IoTest, CsvRoundTripWithLabels) {
  TimeSeries ts = TimeSeries::Zeros(5, 2);
  ts.labels.assign(5, 0);
  ts.labels[2] = 1;
  for (std::int64_t t = 0; t < 5; ++t) {
    ts.at(t, 0) = static_cast<float>(t) * 0.5f;
    ts.at(t, 1) = -static_cast<float>(t);
  }
  const std::string path = ::testing::TempDir() + "/tfmae_io_test.csv";
  ASSERT_TRUE(SaveCsv(ts, path));
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->length, 5);
  EXPECT_EQ(loaded->num_features, 2);
  EXPECT_EQ(loaded->labels, ts.labels);
  for (std::size_t i = 0; i < ts.values.size(); ++i) {
    EXPECT_NEAR(loaded->values[i], ts.values[i], 1e-5);
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadFailsOnMissingFile) {
  CsvDiagnostic diagnostic;
  EXPECT_FALSE(LoadCsv("/nonexistent/file.csv", &diagnostic).has_value());
  EXPECT_FALSE(diagnostic.ok());
  EXPECT_EQ(diagnostic.line, 0);
}

std::string WriteCsv(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream file(path);
  file << contents;
  return path;
}

TEST(IoTest, RaggedRowReportsLineNumber) {
  const std::string path = WriteCsv("ragged.csv",
                                    "f0,f1\n"
                                    "1,2\n"
                                    "3\n");
  CsvDiagnostic diagnostic;
  EXPECT_FALSE(LoadCsv(path, &diagnostic).has_value());
  EXPECT_EQ(diagnostic.line, 3);
  EXPECT_NE(diagnostic.message.find("ragged"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoTest, NonNumericCellReportsLineAndColumn) {
  const std::string path = WriteCsv("nonnum.csv",
                                    "f0,f1\n"
                                    "1,2\n"
                                    "3,oops\n");
  CsvDiagnostic diagnostic;
  EXPECT_FALSE(LoadCsv(path, &diagnostic).has_value());
  EXPECT_EQ(diagnostic.line, 3);
  EXPECT_NE(diagnostic.message.find("oops"), std::string::npos);
  EXPECT_NE(diagnostic.message.find("f1"), std::string::npos);
  // Trailing garbage after a valid prefix is also a parse error, not "1.5".
  const std::string garbage = WriteCsv("garbage.csv",
                                       "f0\n"
                                       "1.5abc\n");
  EXPECT_FALSE(LoadCsv(garbage, &diagnostic).has_value());
  EXPECT_EQ(diagnostic.line, 2);
  std::remove(path.c_str());
  std::remove(garbage.c_str());
}

TEST(IoTest, BadLabelReportsLine) {
  const std::string path = WriteCsv("badlabel.csv",
                                    "f0,label\n"
                                    "1,0\n"
                                    "2,maybe\n");
  CsvDiagnostic diagnostic;
  EXPECT_FALSE(LoadCsv(path, &diagnostic).has_value());
  EXPECT_EQ(diagnostic.line, 3);
  EXPECT_NE(diagnostic.message.find("label"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoTest, EmptyAndNanCellsBecomeMissingValues) {
  const std::string path = WriteCsv("missing.csv",
                                    "f0,f1\n"
                                    "1,2\n"
                                    ",nan\n"
                                    "5,NA\n");
  CsvDiagnostic diagnostic;
  auto loaded = LoadCsv(path, &diagnostic);
  ASSERT_TRUE(loaded.has_value()) << diagnostic.message;
  EXPECT_TRUE(diagnostic.ok());
  EXPECT_EQ(diagnostic.rows, 3);
  EXPECT_EQ(diagnostic.missing_values, 3);
  EXPECT_TRUE(std::isnan(loaded->at(1, 0)));
  EXPECT_TRUE(std::isnan(loaded->at(1, 1)));
  EXPECT_TRUE(std::isnan(loaded->at(2, 1)));
  EXPECT_FLOAT_EQ(loaded->at(2, 0), 5.0f);
  std::remove(path.c_str());
}

TEST(IoTest, ImputeMissingLocfRepairsGapsBothDirections) {
  const std::string path = WriteCsv("impute.csv",
                                    "f0,f1,f2\n"
                                    "nan,1,nan\n"
                                    "2,,nan\n"
                                    "3,3,nan\n"
                                    "nan,4,nan\n");
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  const std::int64_t imputed = ImputeMissingLocf(&*loaded);
  // f0: leading gap backfilled from 2, trailing carried from 3 (2 repairs);
  // f1: one interior LOCF repair; f2: no finite value at all -> zero-filled.
  EXPECT_EQ(imputed, 2 + 1 + 4);
  EXPECT_FLOAT_EQ(loaded->at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(loaded->at(3, 0), 3.0f);
  EXPECT_FLOAT_EQ(loaded->at(1, 1), 1.0f);
  for (std::int64_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(loaded->at(t, 2), 0.0f);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tfmae::data
