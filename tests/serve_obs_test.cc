// Live serving observability suite (docs/OBSERVABILITY.md, "Live endpoints
// & SLOs"): stage-attributed window timelines, per-stream SLO error
// budgets, the online score-drift monitor, and the /statusz JSON payload.
//
// Stage sums, e2e quantiles, SLO ledgers, and the drift monitor are plain
// ServeStats state (not obs macros), so everything here pins behavior in
// the default tier-1 build — no TFMAE_OBS required.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/drift.h"
#include "serve/fleet_server.h"

namespace tfmae::serve {
namespace {

constexpr std::int64_t kWindow = 16;
constexpr std::int64_t kFeatures = 2;

core::TfmaeConfig TestConfig() {
  core::TfmaeConfig config;
  config.window = kWindow;
  config.stride = kWindow;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 1;
  config.seed = 11;
  return config;
}

data::TimeSeries TrainSeries() {
  data::TimeSeries train;
  train.length = 256;
  train.num_features = kFeatures;
  train.values.resize(
      static_cast<std::size_t>(train.length * train.num_features));
  for (std::int64_t t = 0; t < train.length; ++t) {
    for (std::int64_t f = 0; f < kFeatures; ++f) {
      train.values[static_cast<std::size_t>(t * kFeatures + f)] =
          std::sin(0.19 * static_cast<double>(t) +
                   0.7 * static_cast<double>(f)) +
          0.05 * std::cos(0.83 * static_cast<double>(t));
    }
  }
  return train;
}

// One fitted detector shared by every test (read-only after Fit).
core::TfmaeDetector* SharedDetector() {
  static core::TfmaeDetector* detector = [] {
    auto* d = new core::TfmaeDetector(TestConfig());
    d->Fit(TrainSeries());
    return d;
  }();
  return detector;
}

std::vector<float> RowFor(std::int64_t stream, std::int64_t t) {
  std::vector<float> row(static_cast<std::size_t>(kFeatures));
  for (std::int64_t f = 0; f < kFeatures; ++f) {
    row[static_cast<std::size_t>(f)] = static_cast<float>(
        std::sin(0.19 * static_cast<double>(t + 3 * stream) +
                 0.7 * static_cast<double>(f)) +
        0.01 * static_cast<double>(stream % 5));
  }
  return row;
}

FleetOptions BaseOptions() {
  FleetOptions options;
  options.streaming.window = kWindow;
  options.streaming.hop = 3;
  options.batch_max = 8;
  return options;
}

// Pushes `rows` ticks across `streams` streams and drains.
void RunLoad(FleetServer* server, std::int64_t streams, std::int64_t rows) {
  for (std::int64_t s = 0; s < streams; ++s) server->OpenStream();
  for (std::int64_t t = 0; t < rows; ++t) {
    for (std::int64_t s = 0; s < streams; ++s) {
      ASSERT_NE(server->Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
    }
  }
  server->Drain();
}

// The server's own scores for this load, in scoring order (used to build a
// matched drift reference).
std::vector<float> ScoresFor(std::int64_t streams, std::int64_t rows) {
  FleetServer server(SharedDetector(), BaseOptions());
  RunLoad(&server, streams, rows);
  std::vector<float> scores;
  for (const ScoredWindow& r : server.TakeResults()) {
    scores.push_back(r.score);
  }
  return scores;
}

// ---- Stage-attributed timelines ------------------------------------------

TEST(ServeObsTest, StageSumsReconcileExactlyWithTotal) {
  FleetServer server(SharedDetector(), BaseOptions());
  RunLoad(&server, 4, 60);
  const ServeStats stats = server.stats();
  ASSERT_GT(stats.windows_scored, 0);
  // The invariant is by construction, so it holds EXACTLY, not within a
  // tolerance: every window's total is defined as the sum of its stages.
  EXPECT_EQ(stats.stage_total_ns,
            stats.stage_queue_ns + stats.stage_batch_ns +
                stats.stage_score_ns + stats.stage_result_ns);
  // Scoring does real work, so the score stage cannot be empty, and the
  // end-to-end quantiles must be populated and ordered.
  EXPECT_GT(stats.stage_score_ns, 0);
  EXPECT_GT(stats.stage_total_ns, 0);
  EXPECT_GT(stats.p50_e2e_ns, 0.0);
  EXPECT_LE(stats.p50_e2e_ns, stats.p95_e2e_ns);
  EXPECT_LE(stats.p95_e2e_ns, stats.p99_e2e_ns);
  // Experienced latency includes queue wait, so the e2e p50 cannot be
  // below the per-window scoring p50.
  EXPECT_GE(stats.p99_e2e_ns, stats.p50_window_ns);
}

TEST(ServeObsTest, StageSumsGrowMonotonicallyAcrossBatches) {
  FleetServer server(SharedDetector(), BaseOptions());
  for (std::int64_t s = 0; s < 2; ++s) server.OpenStream();
  std::int64_t previous_total = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t t = 0; t < 30; ++t) {
      for (std::int64_t s = 0; s < 2; ++s) {
        ASSERT_NE(server.Push(s, RowFor(s, 90 * round + t)),
                  AdmitStatus::kOverloaded);
      }
    }
    server.Flush();
    const ServeStats stats = server.stats();
    EXPECT_GE(stats.stage_total_ns, previous_total);
    EXPECT_EQ(stats.stage_total_ns,
              stats.stage_queue_ns + stats.stage_batch_ns +
                  stats.stage_score_ns + stats.stage_result_ns);
    previous_total = stats.stage_total_ns;
  }
  server.Drain();
}

// ---- Per-stream SLO error budgets ----------------------------------------

TEST(ServeObsTest, ImpossibleLatencySloBreachesAndExhausts) {
  FleetOptions options = BaseOptions();
  options.slo_latency_ns = 1;  // nothing scores in a nanosecond
  options.slo_window = 8;
  options.slo_budget = 0.0;  // zero tolerance: one breach over a full ring
  FleetServer server(SharedDetector(), options);
  RunLoad(&server, 3, 80);
  const ServeStats stats = server.stats();
  ASSERT_GT(stats.windows_scored, 0);
  // Every scored window breached the 1ns objective...
  EXPECT_EQ(stats.slo_latency_breaches, stats.windows_scored);
  // ...and every stream burned through its (empty) budget.
  EXPECT_EQ(stats.slo_exhausted_streams, 3);
  EXPECT_GE(stats.slo_exhausted_episodes, 3);
  EXPECT_EQ(stats.slo_staleness_breaches, 0);  // staleness objective off
}

TEST(ServeObsTest, GenerousLatencySloNeverBreaches) {
  FleetOptions options = BaseOptions();
  options.slo_latency_ns = 60'000'000'000;  // a minute per window
  options.slo_window = 8;
  FleetServer server(SharedDetector(), options);
  RunLoad(&server, 3, 80);
  const ServeStats stats = server.stats();
  ASSERT_GT(stats.windows_scored, 0);
  EXPECT_EQ(stats.slo_latency_breaches, 0);
  EXPECT_EQ(stats.slo_exhausted_streams, 0);
  EXPECT_EQ(stats.slo_exhausted_episodes, 0);
}

TEST(ServeObsTest, StalenessSloBreachesWhenResultsLagIngest) {
  FleetOptions options = BaseOptions();
  options.auto_flush = false;  // queue everything, score only at Drain
  options.slo_staleness_rows = 1;
  options.slo_window = 8;
  options.queue_capacity = 4096;
  FleetServer server(SharedDetector(), options);
  server.OpenStream();
  // 120 rows pushed before anything scores: by drain time, early windows
  // are scored dozens of rows after their trigger row arrived.
  for (std::int64_t t = 0; t < 120; ++t) {
    ASSERT_NE(server.Push(0, RowFor(0, t)), AdmitStatus::kOverloaded);
  }
  server.Drain();
  const ServeStats stats = server.stats();
  ASSERT_GT(stats.windows_scored, 0);
  EXPECT_GT(stats.slo_staleness_breaches, 0);
  EXPECT_EQ(stats.slo_latency_breaches, 0);  // latency objective off
}

TEST(ServeObsTest, SloOffByDefaultCountsNothing) {
  FleetServer server(SharedDetector(), BaseOptions());
  RunLoad(&server, 2, 60);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.slo_latency_breaches, 0);
  EXPECT_EQ(stats.slo_staleness_breaches, 0);
  EXPECT_EQ(stats.slo_exhausted_streams, 0);
  EXPECT_EQ(stats.slo_exhausted_episodes, 0);
}

// ---- Online score-drift monitor ------------------------------------------

TEST(ServeObsTest, MatchedReferenceChecksButNeverAlarms) {
  const std::vector<float> produced = ScoresFor(3, 60);
  ASSERT_FALSE(produced.empty());

  FleetOptions options = BaseOptions();
  // Cadence == total score count, so the single check fires only once the
  // reservoir holds the exact multiset the reference was built from: the
  // binned empirical distributions coincide and K-S is exactly zero.
  options.drift_check_every = static_cast<std::int64_t>(produced.size());
  options.drift_reservoir = 4096;  // hold every score of this short run
  options.drift_threshold = 0.35;
  FleetServer server(SharedDetector(), options);
  server.SetDriftReference(core::BuildScoreDistribution(produced));
  RunLoad(&server, 3, 60);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.drift_checks, 1);
  EXPECT_EQ(stats.drift_alarms, 0);
  EXPECT_LT(stats.drift_ks, 1e-12);
}

TEST(ServeObsTest, ShiftedReferenceRaisesDriftAlarm) {
  std::vector<float> shifted = ScoresFor(3, 60);
  ASSERT_FALSE(shifted.empty());
  for (float& s : shifted) s += 100.0f;  // disjoint support vs live scores

  FleetOptions options = BaseOptions();
  options.drift_check_every = 8;
  options.drift_reservoir = 256;
  options.drift_threshold = 0.5;
  FleetServer server(SharedDetector(), options);
  server.SetDriftReference(core::BuildScoreDistribution(shifted));
  RunLoad(&server, 3, 60);
  const ServeStats stats = server.stats();
  ASSERT_GT(stats.drift_checks, 0);
  EXPECT_EQ(stats.drift_alarms, stats.drift_checks);  // every check fires
  EXPECT_GT(stats.drift_ks, 0.5);
}

TEST(ServeObsTest, DriftDisabledByDefault) {
  FleetServer server(SharedDetector(), BaseOptions());
  server.SetDriftReference(
      core::BuildScoreDistribution(ScoresFor(2, 40)));
  RunLoad(&server, 2, 40);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.drift_checks, 0);
  EXPECT_EQ(stats.drift_alarms, 0);
}

TEST(ServeObsTest, CalibrateThresholdInstallsFallbackReference) {
  FleetOptions options = BaseOptions();
  options.drift_check_every = 8;
  options.drift_reservoir = 128;
  FleetServer server(SharedDetector(), options);
  // No explicit SetDriftReference: calibration scores become the reference.
  server.CalibrateThreshold(SharedDetector()->Score(TrainSeries()), 0.05);
  RunLoad(&server, 3, 60);
  EXPECT_GT(server.stats().drift_checks, 0);
}

// ---- Score-distribution persistence --------------------------------------

TEST(ServeObsTest, ScoreDistributionSaveLoadRoundTrip) {
  const core::ScoreDistribution original =
      core::BuildScoreDistribution(ScoresFor(2, 50));
  ASSERT_FALSE(original.empty());
  const std::string path = ::testing::TempDir() + "/tfmae_drift_rt.drift";
  ASSERT_TRUE(core::SaveScoreDistribution(original, path));
  core::ScoreDistribution restored;
  std::string error;
  ASSERT_TRUE(core::LoadScoreDistribution(path, &restored, &error)) << error;
  EXPECT_EQ(restored.lo, original.lo);
  EXPECT_EQ(restored.hi, original.hi);
  EXPECT_EQ(restored.count, original.count);
  EXPECT_EQ(restored.buckets, original.buckets);
  std::remove(path.c_str());
}

TEST(ServeObsTest, CorruptScoreDistributionFailsToLoad) {
  const std::string path = ::testing::TempDir() + "/tfmae_drift_bad.drift";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[] = "not a checkpoint container";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  core::ScoreDistribution dist;
  std::string error;
  EXPECT_FALSE(core::LoadScoreDistribution(path, &dist, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(ServeObsTest, DetectorCheckpointCarriesScoreReference) {
  core::TfmaeDetector original(TestConfig());
  original.Fit(TrainSeries());
  original.SetScoreReference(
      core::BuildScoreDistribution(original.Score(TrainSeries())));
  ASSERT_TRUE(original.has_score_reference());

  const std::string prefix = ::testing::TempDir() + "/tfmae_obs_ckpt";
  ASSERT_TRUE(original.SaveCheckpoint(prefix));
  core::TfmaeDetector restored(TestConfig());
  ASSERT_TRUE(restored.LoadCheckpoint(prefix));
  ASSERT_TRUE(restored.has_score_reference());
  EXPECT_EQ(restored.score_reference().count,
            original.score_reference().count);
  EXPECT_EQ(restored.score_reference().buckets,
            original.score_reference().buckets);

  // A corrupt sidecar degrades to "no reference" — the model itself still
  // loads (same tolerant contract as the quant sidecar).
  std::FILE* f = std::fopen((prefix + ".drift").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("xx", 1, 2, f);
  std::fclose(f);
  core::TfmaeDetector degraded(TestConfig());
  ASSERT_TRUE(degraded.LoadCheckpoint(prefix));
  EXPECT_FALSE(degraded.has_score_reference());

  for (const char* ext :
       {".config", ".norm", ".weights", ".quant", ".drift"}) {
    std::remove((prefix + ext).c_str());
  }
}

// ---- /statusz JSON payload -----------------------------------------------

TEST(ServeObsTest, ServeStatsJsonIsWellFormedAndCarriesLiveValues) {
  FleetOptions options = BaseOptions();
  options.slo_latency_ns = 1;
  options.slo_window = 8;
  options.slo_budget = 0.0;
  FleetServer server(SharedDetector(), options);
  RunLoad(&server, 2, 60);
  const ServeStats stats = server.stats();
  const std::string json = ServeStatsJson(stats);

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Structural sanity: braces and quotes balance, keys are quoted.
  int depth = 0;
  int quotes = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '"') ++quotes;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);

  const std::string scored = "\"windows_scored\":" +
                             std::to_string(stats.windows_scored);
  EXPECT_NE(json.find(scored), std::string::npos) << json;
  const std::string breaches = "\"slo_latency_breaches\":" +
                               std::to_string(stats.slo_latency_breaches);
  EXPECT_NE(json.find(breaches), std::string::npos) << json;
  for (const char* key :
       {"\"streams\":", "\"stage_queue_ns\":", "\"stage_total_ns\":",
        "\"p99_e2e_ns\":", "\"drift_ks\":", "\"degraded\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Rendering the same stats twice is byte-identical (the payload feeds
  // canonical dumps and scrape diffs).
  EXPECT_EQ(json, ServeStatsJson(stats));
}

}  // namespace
}  // namespace tfmae::serve
