// Tests for the streaming detection wrapper.
#include <cmath>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/streaming.h"
#include "data/generator.h"

namespace tfmae::core {
namespace {

// A deterministic stub detector: score of a point = |first feature|.
class StubDetector : public AnomalyDetector {
 public:
  std::string Name() const override { return "Stub"; }
  void Fit(const data::TimeSeries&) override {}
  std::vector<float> Score(const data::TimeSeries& series) override {
    std::vector<float> scores(static_cast<std::size_t>(series.length));
    for (std::int64_t t = 0; t < series.length; ++t) {
      scores[static_cast<std::size_t>(t)] = std::abs(series.at(t, 0));
    }
    ++score_calls;
    return scores;
  }
  int score_calls = 0;
};

TEST(StreamingTest, NoResultUntilWindowFills) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 5;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(stream.Push({1.0f}).has_value()) << "push " << i;
  }
  EXPECT_TRUE(stream.Push({1.0f}).has_value());
  EXPECT_EQ(stream.total_pushed(), 5);
}

TEST(StreamingTest, ScoresTailOfTrailingWindow) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 3;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  stream.Push({1.0f});
  stream.Push({2.0f});
  auto r3 = stream.Push({3.0f});
  ASSERT_TRUE(r3.has_value());
  // hop=1: exactly the freshly pushed observation is scored.
  EXPECT_FLOAT_EQ(r3->score, 3.0f);
  auto r4 = stream.Push({-7.0f});
  ASSERT_TRUE(r4.has_value());
  EXPECT_FLOAT_EQ(r4->score, 7.0f);
  auto r5 = stream.Push({0.5f});
  ASSERT_TRUE(r5.has_value());
  EXPECT_FLOAT_EQ(r5->score, 0.5f);
}

TEST(StreamingTest, HopReducesRescoringCalls) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 4;
  options.hop = 5;
  StreamingDetector stream(&stub, options);
  for (int i = 0; i < 24; ++i) stream.Push({static_cast<float>(i)});
  // 21 scoreable pushes, rescored every 5 (plus the initial fill) -> far
  // fewer detector calls than pushes.
  EXPECT_LE(stub.score_calls, 6);
  EXPECT_GE(stub.score_calls, 3);
}

// Pins the documented warm-up semantics for hop > 1 (see StreamingOptions
// and the Push doc comment in core/streaming.h): no partial-window results,
// the first scoreable push always rescores fresh (tail observation only),
// and the hop cadence restarts from that first scoreable push.
TEST(StreamingTest, WarmUpFirstResultIsFreshWithHop) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 4;
  options.hop = 3;
  StreamingDetector stream(&stub, options);

  // Pushes 1..3: filling the first window, no result, no detector call.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(stream.Push({1.0f}).has_value()) << "push " << i;
  }
  EXPECT_EQ(stub.score_calls, 0);

  // Push 4 completes the window: a fresh rescore happens immediately even
  // though the hop counter (1) has not reached hop (3), and only the tail
  // observation's score is emitted.
  auto first = stream.Push({6.0f});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(stub.score_calls, 1);
  EXPECT_FLOAT_EQ(first->score, 6.0f);

  // Pushes 5 and 6 reuse the first fresh tail score without rescoring —
  // even though push 6's own value (9) is larger.
  auto second = stream.Push({2.0f});
  auto third = stream.Push({9.0f});
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(stub.score_calls, 1);
  EXPECT_FLOAT_EQ(second->score, 6.0f);
  EXPECT_FLOAT_EQ(third->score, 6.0f);

  // Push 7 is the third since the first rescore: the hop cycle completes
  // and the max over the 3 freshly scored observations (2, 9, 3) surfaces
  // the in-segment spike.
  auto fourth = stream.Push({3.0f});
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(stub.score_calls, 2);
  EXPECT_FLOAT_EQ(fourth->score, 9.0f);
}

TEST(StreamingTest, ThresholdCalibrationFlagsAnomalies) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 3;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  // Calibrate at the 90th percentile of benign scores ~1.
  std::vector<float> calibration(100, 1.0f);
  calibration[99] = 2.0f;
  stream.CalibrateThreshold(calibration, 0.01);
  stream.Push({1.0f});
  stream.Push({1.0f});
  auto normal = stream.Push({1.0f});
  ASSERT_TRUE(normal.has_value());
  EXPECT_FALSE(normal->is_anomaly);
  auto anomalous = stream.Push({50.0f});
  ASSERT_TRUE(anomalous.has_value());
  EXPECT_TRUE(anomalous->is_anomaly);
}

TEST(StreamingTest, EndToEndWithTfmae) {
  // Stream a series with one strong spike through a trained TFMAE.
  data::BaseSignalConfig signal;
  signal.length = 700;
  signal.num_features = 1;
  signal.noise_std = 0.03;
  signal.seed = 91;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries train = full.Slice(0, 500);
  data::TimeSeries live = full.Slice(500, 200);
  live.at(150, 0) += 8.0f;

  TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 10;
  config.stride = 16;
  config.per_window_normalization = false;
  TfmaeDetector detector(config);
  detector.Fit(train);

  StreamingOptions options;
  options.window = 32;
  options.hop = 4;
  StreamingDetector stream(&detector, options);
  stream.CalibrateThreshold(detector.Score(train), 0.01);

  float spike_score = 0.0f;
  float benign_max = 0.0f;
  for (std::int64_t t = 0; t < live.length; ++t) {
    const auto result = stream.Push({live.at(t, 0)});
    if (!result.has_value()) continue;
    if (t >= 150 && t < 155) {
      spike_score = std::max(spike_score, result->score);
    } else if (t < 145) {
      benign_max = std::max(benign_max, result->score);
    }
  }
  EXPECT_GT(spike_score, benign_max);
}

// ---------------------------------------------------------------------------
// Degraded-input handling (docs/RESILIENCE.md).

TEST(StreamingDegradedTest, WrongArityIsRejectedNotFatal) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 3;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  stream.Push({1.0f, 2.0f});  // fixes arity at 2

  // Too few and too many values: rejected with a typed status, stream
  // position unchanged.
  EXPECT_FALSE(stream.Push({1.0f}).has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kRejected);
  EXPECT_FALSE(stream.Push({1.0f, 2.0f, 3.0f}).has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kRejected);
  EXPECT_EQ(stream.health().rows_rejected, 2);
  EXPECT_EQ(stream.total_pushed(), 1);

  // The stream still works afterwards.
  stream.Push({1.0f, 2.0f});
  auto result = stream.Push({3.0f, 4.0f});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kScored);
  EXPECT_FLOAT_EQ(result->score, 3.0f);
}

TEST(StreamingDegradedTest, NanValuesAreImputedByLastObservation) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 2;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  stream.Push({5.0f, 1.0f});
  const float nan = std::nanf("");
  auto result = stream.Push({nan, 2.0f});
  ASSERT_TRUE(result.has_value());
  // The NaN in feature 0 was replaced by the previous value 5.
  EXPECT_FLOAT_EQ(result->score, 5.0f);
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->imputed_values, 1);
  EXPECT_EQ(stream.health().rows_imputed, 1);
  EXPECT_EQ(stream.health().values_imputed, 1);

  // A fresh value resumes normal scoring and resets the staleness clock.
  auto clean = stream.Push({7.0f, 3.0f});
  ASSERT_TRUE(clean.has_value());
  EXPECT_FALSE(clean->degraded);
  EXPECT_FLOAT_EQ(clean->score, 7.0f);
}

TEST(StreamingDegradedTest, MissingValueBeforeAnyGoodOneIsRejected) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 2;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  const float nan = std::nanf("");
  EXPECT_FALSE(stream.Push({nan, 1.0f}).has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kRejected);
  EXPECT_EQ(stream.total_pushed(), 0);
  // Once a complete row arrives, imputation has a source and rows flow.
  stream.Push({4.0f, 1.0f});
  auto result = stream.Push({nan, 2.0f});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->degraded);
}

TEST(StreamingDegradedTest, StalenessCapQuarantinesLongGaps) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 2;
  options.hop = 1;
  options.impute_staleness_cap = 2;
  StreamingDetector stream(&stub, options);
  stream.Push({1.0f, 1.0f});
  stream.Push({2.0f, 2.0f});
  const float nan = std::nanf("");
  // Two consecutive imputations are within the cap...
  EXPECT_TRUE(stream.Push({nan, 3.0f}).has_value());
  EXPECT_TRUE(stream.Push({nan, 4.0f}).has_value());
  // ...the third exceeds it: quarantined, consumed, but unscored.
  EXPECT_FALSE(stream.Push({nan, 5.0f}).has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kQuarantined);
  EXPECT_EQ(stream.health().rows_quarantined, 1);
  EXPECT_EQ(stream.total_pushed(), 5);
  // Recovery: a complete row ends the quarantine immediately.
  auto result = stream.Push({9.0f, 6.0f});
  ASSERT_TRUE(result.has_value());
  EXPECT_FLOAT_EQ(result->score, 9.0f);
}

TEST(StreamingDegradedTest, OutOfRangeRowsAreQuarantinedBySigmaRule) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 4;
  options.hop = 1;
  options.quarantine_sigma = 6.0;
  options.quarantine_warmup = 32;
  StreamingDetector stream(&stub, options);
  // Feed values ~N(0, 1)-ish deterministic jitter to build statistics.
  for (int i = 0; i < 64; ++i) {
    stream.Push({static_cast<float>((i % 7) - 3) * 0.5f, 1.0f});
  }
  EXPECT_EQ(stream.health().rows_quarantined, 0);
  // A sensor glitch ~1e8 sigma out is quarantined, not scored as an alert.
  EXPECT_FALSE(stream.Push({1e8f, 1.0f}).has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kQuarantined);
  EXPECT_EQ(stream.health().rows_quarantined, 1);
  // The next sane value scores again.
  auto result = stream.Push({0.5f, 1.0f});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stream.last_push_status(), PushStatus::kScored);
}

TEST(StreamingDegradedTest, HealthReportAccumulates) {
  StubDetector stub;
  StreamingOptions options;
  options.window = 2;
  options.hop = 1;
  StreamingDetector stream(&stub, options);
  const float nan = std::nanf("");
  stream.Push({1.0f});              // warm-up
  stream.Push({2.0f});              // scored
  stream.Push({nan});               // imputed + scored
  stream.Push({3.0f, 4.0f});        // rejected (arity)
  const StreamHealth& health = stream.health();
  EXPECT_EQ(health.rows_warmup, 1);
  EXPECT_EQ(health.rows_scored, 2);
  EXPECT_EQ(health.rows_imputed, 1);
  EXPECT_EQ(health.values_imputed, 1);
  EXPECT_EQ(health.rows_rejected, 1);
  EXPECT_EQ(health.rows_quarantined, 0);
}

}  // namespace
}  // namespace tfmae::core
