// Tests for the observability layer (src/obs): registry semantics, the
// determinism contract (bitwise-stable dumps at any thread count), the
// exporters, and the compiled-out macro path.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

// Materialize the compiled-out macro expansions in this translation unit,
// regardless of how the tree was built, to prove they are true no-ops:
// valid in constant evaluation, so they cannot touch the registry, take a
// lock, or read a clock.
#define TFMAE_OBS_FORCE_DISABLED 1
#include "obs/obs_macros.h"

namespace {

constexpr bool DisabledMacrosAreNoOps() {
  TFMAE_TRACE("obs_test.constexpr.site");
  TFMAE_COUNTER_ADD("obs_test.constexpr.counter", 42);
  TFMAE_HISTOGRAM_RECORD("obs_test.constexpr.hist", 7);
  TFMAE_GAUGE_SET("obs_test.constexpr.gauge", -3);
  TFMAE_GAUGE_MAX("obs_test.constexpr.gauge", 9);
  return true;
}
static_assert(DisabledMacrosAreNoOps(),
              "disabled instrumentation macros must be constant-evaluable");

}  // namespace

// Restore the build's real macro definitions for the rest of the file.
#undef TFMAE_OBS_FORCE_DISABLED
#include "obs/obs_macros.h"

namespace tfmae::obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulatesAndIdsAreIdempotent) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  const int id = reg.CounterId("obs_test.counter.basic");
  EXPECT_EQ(id, reg.CounterId("obs_test.counter.basic"));
  reg.CounterAdd(id, 3);
  reg.CounterAdd(id, 39);
  EXPECT_EQ(reg.CounterValue("obs_test.counter.basic"), 42u);
  EXPECT_EQ(reg.CounterValue("obs_test.counter.unregistered"), 0u);
}

TEST(ObsMetricsTest, HistogramBucketMapping) {
  EXPECT_EQ(HistogramBucket(0), 0);
  EXPECT_EQ(HistogramBucket(1), 1);
  EXPECT_EQ(HistogramBucket(2), 2);
  EXPECT_EQ(HistogramBucket(3), 2);  // [2, 4) -> bucket 2
  EXPECT_EQ(HistogramBucket(4), 3);
  EXPECT_EQ(HistogramBucket((1u << 10) - 1), 10);
  EXPECT_EQ(HistogramBucket(1u << 10), 11);
  EXPECT_EQ(HistogramBucket(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(3), 7u);
}

TEST(ObsMetricsTest, HistogramStats) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  const int id = reg.HistogramId("obs_test.hist.stats");
  for (std::uint64_t v : {5u, 10u, 100u, 1000u}) reg.HistogramRecord(id, v);
  const MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot* h = snap.Histogram("obs_test.hist.stats");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 1115u);
  EXPECT_EQ(h->min, 5u);
  EXPECT_EQ(h->max, 1000u);
  EXPECT_DOUBLE_EQ(h->Mean(), 1115.0 / 4.0);
  // p100 upper bound from the bucket CDF: within a factor of 2 of the max.
  EXPECT_GE(h->Percentile(1.0), 1000.0);
  EXPECT_LE(h->Percentile(1.0), 2048.0);
  EXPECT_EQ(snap.Histogram("obs_test.hist.unregistered"), nullptr);
}

TEST(ObsMetricsTest, QuantileInterpolatesLogLinearlyInsideBuckets) {
  HistogramSnapshot h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty

  // Ten samples, all in bucket 3 ([4, 8)): the quantile moves smoothly
  // through the bucket instead of jumping to its upper bound.
  h.count = 10;
  h.min = 4;
  h.max = 7;
  h.buckets[3] = 10;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 4.0);              // clamped to min
  EXPECT_NEAR(h.Quantile(0.5), std::exp2(2.5), 1e-9);  // 2^(2 + 0.5)
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.0);              // clamped to max
  EXPECT_LE(h.Quantile(0.25), h.Quantile(0.75));

  // Mass split across distant buckets: low quantiles stay in the low
  // bucket, the tail clamps to the observed max.
  HistogramSnapshot split;
  split.count = 4;
  split.min = 1;
  split.max = 600;
  split.buckets[1] = 3;    // value 1
  split.buckets[10] = 1;   // one sample in [512, 1024)
  EXPECT_NEAR(split.Quantile(0.5), std::exp2(2.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(split.Quantile(0.99), 600.0);

  // A zero-valued distribution reports 0 at every quantile.
  HistogramSnapshot zeros;
  zeros.count = 5;
  zeros.buckets[0] = 5;
  EXPECT_EQ(zeros.Quantile(0.9), 0.0);
}

TEST(ObsMetricsTest, GaugeSetAndHighWatermark) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  const int id = reg.GaugeId("obs_test.gauge.level");
  reg.GaugeSet(id, 17);
  reg.GaugeSet(id, -4);  // last write wins
  reg.GaugeMax(id, 3);   // raises: 3 > -4
  reg.GaugeMax(id, 1);   // no-op: 1 < 3
  const MetricsSnapshot snap = reg.Snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "obs_test.gauge.level") {
      EXPECT_EQ(value, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  Registry& reg = Registry::Instance();
  const int id = reg.CounterId("obs_test.counter.reset");
  reg.CounterAdd(id, 99);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("obs_test.counter.reset"), 0u);
  EXPECT_EQ(id, reg.CounterId("obs_test.counter.reset"));
}

// The determinism contract: recording the same logical workload from pool
// workers must produce bitwise-identical JSON dumps at every thread count,
// exactly like varying TFMAE_NUM_THREADS (SetNumThreads is the same knob;
// the env var only sets its initial value).
TEST(ObsMetricsTest, DumpsBitwiseStableAcrossThreadCounts) {
  Registry& reg = Registry::Instance();
  const int counter = reg.CounterId("obs_test.parallel.counter");
  const int hist = reg.HistogramId("obs_test.parallel.hist");
  const int saved_threads = ThreadPool::Instance().num_threads();

  std::vector<std::string> dumps;
  for (int threads : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(threads);
    reg.Reset();
    ParallelFor(0, 4096, /*grain=*/64, [&](std::int64_t s, std::int64_t e) {
      for (std::int64_t i = s; i < e; ++i) {
        reg.CounterAdd(counter, static_cast<std::uint64_t>(i) + 1);
        reg.HistogramRecord(hist, static_cast<std::uint64_t>(i % 257));
      }
    });
    std::ostringstream json;
    DumpJsonTo(json);
    dumps.push_back(json.str());
  }
  ThreadPool::Instance().SetNumThreads(saved_threads);

  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
  // Sanity: the dump actually contains the workload's exact totals.
  EXPECT_EQ(reg.CounterValue("obs_test.parallel.counter"),
            std::uint64_t{4096} * 4097 / 2);
  EXPECT_NE(dumps[0].find("obs_test.parallel.counter"), std::string::npos);
}

TEST(ObsTraceTest, ScopedTraceRecordsOnlyWhileEnabled) {
  Registry::Instance().Reset();
  TraceSite* site = GetTraceSite("obs_test.trace.site");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site, GetTraceSite("obs_test.trace.site"));

  SetEnabled(true);
  { ScopedTrace scope(site); }
  SetEnabled(false);
  { ScopedTrace scope(site); }  // must not record

  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  EXPECT_EQ(snap.Counter("obs_test.trace.site.calls"), 1u);
  const HistogramSnapshot* h = snap.Histogram("obs_test.trace.site.time_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST(ObsTraceTest, AutogradRecordAggregatesPerOp) {
  Registry::Instance().Reset();
  SetEnabled(true);
  AutogradRecord("ObsTestOp", 100);
  AutogradRecord("ObsTestOp", 23);
  SetEnabled(false);
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  EXPECT_EQ(snap.Counter("autograd.ObsTestOp.calls"), 2u);
  EXPECT_EQ(snap.Counter("autograd.ObsTestOp.self_ns"), 123u);
}

TEST(ObsExportTest, JsonDumpHasStableSections) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  reg.CounterAdd(reg.CounterId("obs_test.json.counter"), 7);
  std::ostringstream json;
  DumpJsonTo(json);
  const std::string s = json.str();
  EXPECT_NE(s.find("\"obs_compiled\""), std::string::npos);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"gauges\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
  EXPECT_NE(s.find("\"obs_test.json.counter\": 7"), std::string::npos);
}

TEST(ObsExportTest, TextDumpListsTopSites) {
  Registry::Instance().Reset();
  SetEnabled(true);
  { ScopedTrace scope(GetTraceSite("obs_test.text.site")); }
  SetEnabled(false);
  std::ostringstream text;
  DumpText(text);
  EXPECT_NE(text.str().find("obs_test.text.site"), std::string::npos);
}

TEST(ObsExportTest, ChromeTraceRoundTrip) {
  Registry::Instance().Reset();
  ClearTraceEvents();
  SetEnabled(true);
  StartTracing();
  { ScopedTrace scope(GetTraceSite("obs_test.chrome.site")); }
  StopTracing();
  SetEnabled(false);

  const auto events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].second.site->name, "obs_test.chrome.site");
  EXPECT_EQ(DroppedTraceEvents(), 0u);

  const std::string path =
      testing::TempDir() + "/obs_test_chrome_trace.json";
  WriteChromeTrace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("obs_test.chrome.site"), std::string::npos);
  ClearTraceEvents();
  std::remove(path.c_str());
}

TEST(ObsTraceTest, CompiledInMatchesBuildDefinition) {
#if defined(TFMAE_OBS_ENABLED)
  EXPECT_TRUE(CompiledIn());
#else
  EXPECT_FALSE(CompiledIn());
#endif
}

}  // namespace
}  // namespace tfmae::obs
