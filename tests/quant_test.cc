// Int8 scoring path tests (DESIGN.md §12): quant kernel bitwise identity
// across ISA paths and thread counts, round-half-away quantization,
// calibration edge cases (constant channels, saturating outliers,
// feature-count mismatch refusal), QuantSpec container round trips with
// corrupt-section rejection, the injected-fault fp32 fallback, and
// end-to-end int8-vs-fp32 score agreement.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/inference_plan.h"
#include "core/quant.h"
#include "data/generator.h"
#include "obs/ledger.h"
#include "tensor/quant_kernels.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae::core {
namespace {

namespace quant = tfmae::quant;

class EnvGuard {
 public:
  ~EnvGuard() {
    ThreadPool::Instance().SetNumThreads(1);
    fault::Clear();
  }
};

TfmaeConfig TinyConfig() {
  TfmaeConfig config;
  config.window = 16;
  config.stride = 16;
  config.model_dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 16;
  config.epochs = 1;
  config.seed = 3;
  return config;
}

data::TimeSeries TinySignal(std::int64_t length, std::int64_t features,
                            std::uint64_t seed) {
  data::BaseSignalConfig signal;
  signal.length = length;
  signal.num_features = features;
  signal.seed = seed;
  return data::GenerateBaseSignal(signal);
}

// A fitted + calibrated detector in the requested quantization mode. Fit
// and Calibrate are deterministic for fixed (data, config, seed), so two
// MakeDetector calls hold bitwise-equal weights and specs.
std::unique_ptr<TfmaeDetector> MakeDetector(const data::TimeSeries& train,
                                            TfmaeDetector::QuantMode mode) {
  auto detector = std::make_unique<TfmaeDetector>(TinyConfig());
  detector->SetQuantMode(TfmaeDetector::QuantMode::kOff);
  detector->Fit(train);
  if (mode == TfmaeDetector::QuantMode::kInt8) {
    std::string error;
    EXPECT_TRUE(detector->Calibrate(train, &error)) << error;
    detector->SetQuantMode(mode);
  }
  return detector;
}

// ---- Kernel layer ----------------------------------------------------------

struct QuantProblem {
  std::vector<std::uint8_t> a;       // [m, k4]
  std::vector<std::int8_t> packed;   // packed weights
  std::vector<float> col_scale;
  std::vector<std::int32_t> col_comp;
  std::vector<float> bias;
  float a_scale = 0.02f;
};

QuantProblem MakeProblem(std::int64_t m, std::int64_t k, std::int64_t n,
                         std::uint64_t seed) {
  Rng rng(seed);
  QuantProblem p;
  const std::int64_t k4 = quant::RoundUpK4(k);
  p.a.resize(static_cast<std::size_t>(m * k4), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      p.a[static_cast<std::size_t>(i * k4 + j)] =
          static_cast<std::uint8_t>(rng.NextU64() % 256);
    }
  }
  std::vector<float> w(static_cast<std::size_t>(k * n));
  for (float& v : w) v = static_cast<float>(rng.Normal());
  p.packed.resize(static_cast<std::size_t>(quant::PackedWeightBytes(k, n)));
  p.col_scale.resize(static_cast<std::size_t>(n));
  p.col_comp.resize(static_cast<std::size_t>(n));
  quant::QuantizePackWeights(w.data(), k, n, p.packed.data(),
                             p.col_scale.data(), p.col_comp.data());
  p.bias.resize(static_cast<std::size_t>(n));
  for (float& v : p.bias) v = static_cast<float>(rng.Normal());
  return p;
}

// Every compiled ISA path must match the scalar reference bit-for-bit, for
// every epilogue, on shapes exercising remainder columns and K % 4 != 0.
TEST(QuantKernelTest, AllIsaPathsBitwiseMatchScalar) {
  const std::int64_t shapes[][3] = {
      {1, 4, 1},   {3, 7, 5},   {8, 8, 16},  {5, 33, 17},
      {16, 32, 64}, {2, 31, 33}, {7, 64, 19},
  };
  for (const auto& shape : shapes) {
    const std::int64_t m = shape[0];
    const std::int64_t k = shape[1];
    const std::int64_t n = shape[2];
    QuantProblem p = MakeProblem(m, k, n, 1000 + static_cast<std::uint64_t>(k));
    for (const quant::Epilogue epi :
         {quant::Epilogue::kNone, quant::Epilogue::kBias,
          quant::Epilogue::kBiasGelu}) {
      const float* bias = epi == quant::Epilogue::kNone ? nullptr
                                                        : p.bias.data();
      std::vector<float> ref(static_cast<std::size_t>(m * n), 0.0f);
      quant::QuantLinearScalar(p.a.data(), p.packed.data(), p.col_scale.data(),
                               p.col_comp.data(), bias, p.a_scale, epi,
                               ref.data(), m, k, n);
      for (const char* isa : {"scalar", "avx2", "avx512vnni"}) {
        std::vector<float> out(static_cast<std::size_t>(m * n), -1.0f);
        if (!quant::QuantLinearPath(isa, p.a.data(), p.packed.data(),
                                    p.col_scale.data(), p.col_comp.data(),
                                    bias, p.a_scale, epi, out.data(), m, k,
                                    n)) {
          continue;  // not compiled on this host
        }
        EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                                 ref.size() * sizeof(float)))
            << isa << " diverges from scalar at m=" << m << " k=" << k
            << " n=" << n << " epilogue=" << static_cast<int>(epi);
      }
      // The dispatching entry point too.
      std::vector<float> out(static_cast<std::size_t>(m * n), -1.0f);
      quant::QuantLinear(p.a.data(), p.packed.data(), p.col_scale.data(),
                         p.col_comp.data(), bias, p.a_scale, epi, out.data(),
                         m, k, n);
      EXPECT_EQ(0,
                std::memcmp(ref.data(), out.data(), ref.size() * sizeof(float)));
    }
  }
}

TEST(QuantKernelTest, ThreadCountInvariant) {
  EnvGuard guard;
  const std::int64_t m = 37;
  const std::int64_t k = 33;
  const std::int64_t n = 21;
  QuantProblem p = MakeProblem(m, k, n, 77);
  std::vector<std::vector<float>> results;
  for (const int threads : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(threads);
    std::vector<float> out(static_cast<std::size_t>(m * n), 0.0f);
    quant::QuantLinear(p.a.data(), p.packed.data(), p.col_scale.data(),
                       p.col_comp.data(), p.bias.data(), p.a_scale,
                       quant::Epilogue::kBiasGelu, out.data(), m, k, n);
    results.push_back(std::move(out));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                             results[0].size() * sizeof(float)))
        << "thread-count variance between runs 0 and " << i;
  }
}

TEST(QuantKernelTest, QuantizeRoundsHalfAwayFromZeroAndSaturates) {
  const float scale = 0.5f;  // inv_scale = 2
  // 0.25 / 0.5 = 0.5 -> rounds away to 1; -0.25 -> -1. Huge values clamp.
  const float src[] = {0.0f, 0.25f, -0.25f, 0.24f, -0.24f, 1e6f, -1e6f};
  std::uint8_t dst[8] = {};
  quant::QuantizeU8(src, dst, 1, 7, 1.0f / scale);
  EXPECT_EQ(dst[0], 128);
  EXPECT_EQ(dst[1], 129);
  EXPECT_EQ(dst[2], 127);
  EXPECT_EQ(dst[3], 128);
  EXPECT_EQ(dst[4], 128);
  EXPECT_EQ(dst[5], 255);  // saturating outlier, positive
  EXPECT_EQ(dst[6], 0);    // saturating outlier, negative
  EXPECT_EQ(dst[7], 0);    // k4 padding lane stays zero
}

TEST(QuantKernelTest, AllZeroWeightColumnStaysFinite) {
  const std::int64_t k = 6;
  const std::int64_t n = 3;
  std::vector<float> w(static_cast<std::size_t>(k * n), 0.0f);
  for (std::int64_t i = 0; i < k; ++i) {
    w[static_cast<std::size_t>(i * n)] = 1.0f;  // column 0 nonzero only
  }
  std::vector<std::int8_t> packed(
      static_cast<std::size_t>(quant::PackedWeightBytes(k, n)));
  std::vector<float> col_scale(static_cast<std::size_t>(n));
  std::vector<std::int32_t> col_comp(static_cast<std::size_t>(n));
  quant::QuantizePackWeights(w.data(), k, n, packed.data(), col_scale.data(),
                             col_comp.data());
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isfinite(col_scale[static_cast<std::size_t>(j)]));
    EXPECT_GT(col_scale[static_cast<std::size_t>(j)], 0.0f);
  }
  // An all-zero column must produce exactly zero output (wq == 0, comp == 0).
  std::vector<std::uint8_t> a(static_cast<std::size_t>(quant::RoundUpK4(k)),
                              200);
  std::vector<float> out(static_cast<std::size_t>(n), -1.0f);
  quant::QuantLinear(a.data(), packed.data(), col_scale.data(),
                     col_comp.data(), nullptr, 0.1f, quant::Epilogue::kNone,
                     out.data(), 1, k, n);
  EXPECT_NE(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 0.0f);
}

TEST(QuantKernelTest, TransposedPackMatchesPlainPack) {
  Rng rng(5);
  const std::int64_t k = 9;
  const std::int64_t n = 7;
  std::vector<float> w(static_cast<std::size_t>(k * n));
  for (float& v : w) v = static_cast<float>(rng.Normal());
  std::vector<float> w_t(static_cast<std::size_t>(k * n));
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      w_t[static_cast<std::size_t>(j * k + i)] =
          w[static_cast<std::size_t>(i * n + j)];
    }
  }
  const std::size_t bytes =
      static_cast<std::size_t>(quant::PackedWeightBytes(k, n));
  std::vector<std::int8_t> p1(bytes);
  std::vector<std::int8_t> p2(bytes);
  std::vector<float> s1(static_cast<std::size_t>(n));
  std::vector<float> s2(static_cast<std::size_t>(n));
  std::vector<std::int32_t> c1(static_cast<std::size_t>(n));
  std::vector<std::int32_t> c2(static_cast<std::size_t>(n));
  quant::QuantizePackWeights(w.data(), k, n, p1.data(), s1.data(), c1.data());
  quant::QuantizePackWeightsT(w_t.data(), k, n, p2.data(), s2.data(),
                              c2.data());
  EXPECT_EQ(0, std::memcmp(p1.data(), p2.data(), bytes));
  EXPECT_EQ(0, std::memcmp(s1.data(), s2.data(), s1.size() * sizeof(float)));
  EXPECT_EQ(0,
            std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(std::int32_t)));
}

TEST(QuantKernelTest, FastExpTracksLibmClosely) {
  for (float x = -20.0f; x <= 20.0f; x += 0.0173f) {
    const float got = quant::FastExp(x);
    const float want = std::exp(x);
    EXPECT_NEAR(got, want, 1e-5f * want + 1e-30f) << "x=" << x;
  }
  EXPECT_GT(quant::FastExp(-200.0f), 0.0f);  // clamps instead of underflowing
  EXPECT_TRUE(std::isfinite(quant::FastExp(1000.0f)));
}

// ---- QuantSpec persistence -------------------------------------------------

QuantSpec SampleSpec() {
  QuantSpec spec;
  spec.num_features = 4;
  spec.windows = 12;
  QuantSite site;
  site.weight_index = 3;
  site.in_features = 5;
  site.absmax = {0.5f, 1.25f, 0.0f, 3.5f, 0.125f};
  site.moments.count = 60;
  site.moments.mean = 0.01;
  site.moments.m2 = 4.2;
  spec.sites.push_back(site);
  site.weight_index = 7;
  spec.sites.push_back(site);
  return spec;
}

TEST(QuantSpecTest, EncodeDecodeRoundTrip) {
  const QuantSpec spec = SampleSpec();
  QuantSpec back;
  ASSERT_TRUE(DecodeQuantSpec(EncodeQuantSpec(spec), &back));
  EXPECT_EQ(back.num_features, spec.num_features);
  EXPECT_EQ(back.windows, spec.windows);
  ASSERT_EQ(back.sites.size(), spec.sites.size());
  for (std::size_t i = 0; i < back.sites.size(); ++i) {
    EXPECT_EQ(back.sites[i].weight_index, spec.sites[i].weight_index);
    EXPECT_EQ(back.sites[i].in_features, spec.sites[i].in_features);
    EXPECT_EQ(back.sites[i].absmax, spec.sites[i].absmax);
    EXPECT_EQ(back.sites[i].moments.count, spec.sites[i].moments.count);
    EXPECT_EQ(back.sites[i].moments.mean, spec.sites[i].moments.mean);
    EXPECT_EQ(back.sites[i].moments.m2, spec.sites[i].moments.m2);
  }
}

TEST(QuantSpecTest, DecodeRejectsTruncationAndTrailingGarbage) {
  const QuantSpec spec = SampleSpec();
  std::vector<char> payload = EncodeQuantSpec(spec);
  QuantSpec back;
  for (const std::size_t cut : {payload.size() - 1, payload.size() / 2,
                                std::size_t{3}, std::size_t{0}}) {
    std::vector<char> truncated(payload.begin(),
                                payload.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeQuantSpec(truncated, &back)) << "cut=" << cut;
  }
  std::vector<char> padded = payload;
  padded.push_back('x');
  EXPECT_FALSE(DecodeQuantSpec(padded, &back));
}

TEST(QuantSpecTest, FileRoundTripAndCorruptContainerRejection) {
  const QuantSpec spec = SampleSpec();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tfmae_quant_spec.quant")
          .string();
  ASSERT_TRUE(SaveQuantSpec(spec, path));
  QuantSpec back;
  std::string error;
  ASSERT_TRUE(LoadQuantSpec(path, &back, &error)) << error;
  EXPECT_EQ(back.sites.size(), spec.sites.size());

  // Flip one payload byte: the section CRC must reject the container.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(40);
  char byte = 0;
  f.seekg(40);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(40);
  f.write(&byte, 1);
  f.close();
  QuantSpec corrupt;
  EXPECT_FALSE(LoadQuantSpec(path, &corrupt, &error));
  std::filesystem::remove(path);
  EXPECT_FALSE(LoadQuantSpec(path, &corrupt, &error));  // missing file
}

// ---- Calibration -----------------------------------------------------------

TEST(QuantCalibrationTest, RecordsSitesWithFiniteScales) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 3, 21);
  auto detector = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  const QuantSpec& spec = detector->quant_spec();
  ASSERT_FALSE(spec.empty());
  EXPECT_EQ(spec.num_features, 3);
  EXPECT_GT(spec.windows, 0);
  for (const QuantSite& site : spec.sites) {
    EXPECT_GE(site.weight_index, 0);
    EXPECT_GT(site.in_features, 0);
    EXPECT_EQ(static_cast<std::int64_t>(site.absmax.size()),
              site.in_features);
    EXPECT_TRUE(std::isfinite(site.ActivationScale()));
    EXPECT_GT(site.ActivationScale(), 0.0f);
    EXPECT_GT(site.moments.count, 0);
    EXPECT_TRUE(std::isfinite(site.moments.Variance()));
  }
}

// A constant (zero-variance) feature must calibrate to a clamped, positive
// scale — never a division by zero — and still score finitely.
TEST(QuantCalibrationTest, ConstantChannelNeverDividesByZero) {
  EnvGuard guard;
  data::TimeSeries train = TinySignal(192, 2, 22);
  for (std::int64_t t = 0; t < train.length; ++t) {
    train.values[static_cast<std::size_t>(t * 2 + 1)] = 4.0f;  // constant
  }
  auto detector = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  for (const QuantSite& site : detector->quant_spec().sites) {
    EXPECT_GT(site.ActivationScale(), 0.0f);
    EXPECT_TRUE(std::isfinite(site.ActivationScale()));
  }
  const std::vector<float> scores = detector->Score(train);
  for (const float s : scores) EXPECT_TRUE(std::isfinite(s));
  EXPECT_EQ(detector->quant_fallbacks(), 0);
  ASSERT_NE(detector->inference_plan(), nullptr);
  EXPECT_TRUE(detector->inference_plan()->stats().quantized);
}

TEST(QuantCalibrationTest, EmptyWindowListIsRefused) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 23);
  TfmaeDetector detector(TinyConfig());
  detector.Fit(train);
  QuantSpec spec;
  std::string error;
  EXPECT_FALSE(CalibrateQuantSpec(*detector.model(), {}, 2, &spec, &error));
  EXPECT_FALSE(error.empty());
}

// A spec calibrated for a different feature count must be refused — the
// detector falls back to fp32 and counts it, rather than scoring with
// ranges measured on another geometry.
TEST(QuantCalibrationTest, FeatureCountMismatchFallsBackToFp32) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 24);
  auto detector = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  QuantSpec doctored = detector->quant_spec();
  doctored.num_features = 9;  // claims a different series geometry
  detector->SetQuantSpec(std::move(doctored));
  const std::vector<float> scores = detector->Score(train);
  EXPECT_FALSE(scores.empty());
  EXPECT_GT(detector->quant_fallbacks(), 0);
  ASSERT_NE(detector->inference_plan(), nullptr);
  EXPECT_FALSE(detector->inference_plan()->stats().quantized);
}

// ---- End to end ------------------------------------------------------------

TEST(QuantScoringTest, Int8PlanActivatesAndTracksFp32) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(256, 3, 31);
  const data::TimeSeries test = TinySignal(96, 3, 32);
  auto int8 = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  auto fp32 = MakeDetector(train, TfmaeDetector::QuantMode::kOff);
  const std::vector<float> qs = int8->Score(test);
  const std::vector<float> fs = fp32->Score(test);
  ASSERT_EQ(qs.size(), fs.size());
  EXPECT_EQ(int8->quant_fallbacks(), 0);
  ASSERT_NE(int8->inference_plan(), nullptr);
  const InferencePlanStats& stats = int8->inference_plan()->stats();
  EXPECT_TRUE(stats.quantized);
  EXPECT_GT(stats.quant_linear_ops, 0);
  EXPECT_GT(stats.elided_quant_pairs, 0);
  EXPECT_GT(stats.quant_arena_bytes, 0);
  // The int8 arena is byte-granular: ~4x smaller than fp32 slots of the
  // same logical shape. It must be well under the fp32 arena size.
  EXPECT_LT(stats.quant_arena_bytes, stats.arena_bytes);
  float max_abs = 0.0f;
  float max_err = 0.0f;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_TRUE(std::isfinite(qs[i]));
    max_abs = std::max(max_abs, std::fabs(fs[i]));
    max_err = std::max(max_err, std::fabs(qs[i] - fs[i]));
  }
  EXPECT_LE(max_err, 0.25f * std::max(max_abs, 1e-3f))
      << "int8 scores left the quantization-noise envelope";
}

TEST(QuantScoringTest, Int8ScoresBitwiseIdenticalAcrossThreadCounts) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(256, 2, 41);
  const data::TimeSeries test = TinySignal(96, 2, 42);
  std::vector<std::vector<float>> runs;
  for (const int threads : {1, 2, 4}) {
    // A fresh detector per thread count keeps the mask rng streams aligned
    // (Fit/Calibrate are deterministic), so any difference is the kernels'.
    auto detector = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
    ThreadPool::Instance().SetNumThreads(threads);
    runs.push_back(detector->Score(test));
    ASSERT_NE(detector->inference_plan(), nullptr);
    EXPECT_TRUE(detector->inference_plan()->stats().quantized);
    EXPECT_EQ(detector->quant_fallbacks(), 0);
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[1].data(),
                           runs[0].size() * sizeof(float)))
      << "int8 scores differ between 1 and 2 threads";
  EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[2].data(),
                           runs[0].size() * sizeof(float)))
      << "int8 scores differ between 1 and 4 threads";
}

TEST(QuantScoringTest, MissingCalibrationFallsBackToFp32Bitwise) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 51);
  const data::TimeSeries test = TinySignal(80, 2, 52);
  auto uncalibrated = MakeDetector(train, TfmaeDetector::QuantMode::kOff);
  uncalibrated->SetQuantMode(TfmaeDetector::QuantMode::kInt8);
  auto reference = MakeDetector(train, TfmaeDetector::QuantMode::kOff);
  const std::vector<float> got = uncalibrated->Score(test);
  const std::vector<float> want = reference->Score(test);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0,
            std::memcmp(got.data(), want.data(), got.size() * sizeof(float)))
      << "uncalibrated int8 mode must be exactly the fp32 path";
  EXPECT_GT(uncalibrated->quant_fallbacks(), 0);
  ASSERT_NE(uncalibrated->inference_plan(), nullptr);
  EXPECT_FALSE(uncalibrated->inference_plan()->stats().quantized);
}

TEST(QuantScoringTest, CheckpointRoundTripCarriesTheSpec) {
  EnvGuard guard;
  const data::TimeSeries train = TinySignal(192, 2, 61);
  const data::TimeSeries test = TinySignal(80, 2, 62);
  auto fitted = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "tfmae_quant_ckpt").string();
  ASSERT_TRUE(fitted->SaveCheckpoint(prefix));
  ASSERT_TRUE(std::filesystem::exists(prefix + ".quant"));

  TfmaeDetector loaded(TinyConfig());
  ASSERT_TRUE(loaded.LoadCheckpoint(prefix));
  ASSERT_TRUE(loaded.has_quant_spec());
  loaded.SetQuantMode(TfmaeDetector::QuantMode::kInt8);
  const std::vector<float> got = loaded.Score(test);
  EXPECT_EQ(loaded.quant_fallbacks(), 0);
  ASSERT_NE(loaded.inference_plan(), nullptr);
  EXPECT_TRUE(loaded.inference_plan()->stats().quantized);
  for (const float s : got) EXPECT_TRUE(std::isfinite(s));

  // Corrupting the .quant container degrades the NEXT load to fp32 — the
  // weights still load and the detector still scores.
  {
    std::fstream f(prefix + ".quant",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(32);
    char byte = 0;
    f.seekg(32);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x11);
    f.seekp(32);
    f.write(&byte, 1);
  }
  TfmaeDetector degraded(TinyConfig());
  ASSERT_TRUE(degraded.LoadCheckpoint(prefix));
  EXPECT_FALSE(degraded.has_quant_spec());
  degraded.SetQuantMode(TfmaeDetector::QuantMode::kInt8);
  const std::vector<float> fp32_scores = degraded.Score(test);
  EXPECT_FALSE(fp32_scores.empty());
  EXPECT_GT(degraded.quant_fallbacks(), 0);
  for (const char* suffix : {".config", ".norm", ".weights", ".quant"}) {
    std::filesystem::remove(prefix + suffix);
  }
}

// The injected-fault proof of the fp32 fallback: a quant-capture fault must
// leave scoring running on the fp32 plan, bitwise-equal to a plain fp32
// detector, with the fallback counted.
TEST(QuantScoringTest, InjectedQuantCaptureFaultFallsBackToFp32) {
  EnvGuard guard;
  if (!fault::CompiledIn()) {
    GTEST_SKIP() << "fault injection not compiled in (-DTFMAE_FAULTS=ON)";
  }
  const data::TimeSeries train = TinySignal(192, 2, 71);
  const data::TimeSeries test = TinySignal(80, 2, 72);
  auto faulty = MakeDetector(train, TfmaeDetector::QuantMode::kInt8);
  auto reference = MakeDetector(train, TfmaeDetector::QuantMode::kOff);
  fault::ScopedFaults faults("infer.quant.capture:#1");
  const std::vector<float> got = faulty->Score(test);
  fault::Clear();
  const std::vector<float> want = reference->Score(test);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0,
            std::memcmp(got.data(), want.data(), got.size() * sizeof(float)))
      << "faulted int8 scoring must be exactly the fp32 path";
  EXPECT_GT(faulty->quant_fallbacks(), 0);
  ASSERT_NE(faulty->inference_plan(), nullptr);
  EXPECT_FALSE(faulty->inference_plan()->stats().quantized);
}

}  // namespace
}  // namespace tfmae::core
