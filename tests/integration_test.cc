// End-to-end integration tests across modules: the full paper protocol on
// scaled-down benchmark profiles, TFMAE against a baseline on data designed
// to exhibit the paper's two challenges (abnormal bias, distribution shift),
// and cross-module consistency checks.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/dense_ae.h"
#include "baselines/iforest.h"
#include "core/detector.h"
#include "data/profiles.h"
#include "eval/metrics.h"

namespace tfmae {
namespace {

core::TfmaeConfig FastConfig() {
  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 15;
  config.stride = 16;
  config.score_stride = 8;
  config.temporal_mask_ratio = 0.25;
  return config;
}

TEST(IntegrationTest, FullProtocolOnNipsGlobalProfile) {
  data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kNipsTsGlobal, 0.5);
  core::TfmaeConfig config = FastConfig();
  config.per_window_normalization = false;
  core::TfmaeDetector detector(config);
  const eval::DetectionReport report =
      core::RunProtocol(&detector, dataset, 0.04);
  // Scaled-down substrate: we assert a clear detection signal, not the
  // paper's absolute numbers.
  EXPECT_GT(report.auroc, 0.75) << "TFMAE failed to separate point anomalies";
  EXPECT_GT(report.adjusted.f1, 0.25);
}

TEST(IntegrationTest, TemporalMaskingTargetsContaminatedRegions) {
  // Challenge I (abnormal bias): the CV mask must preferentially cover the
  // contaminated observations of a training window.
  data::BaseSignalConfig signal;
  signal.length = 64;
  signal.num_features = 1;
  signal.noise_std = 0.02;
  signal.seed = 61;
  data::TimeSeries window = data::GenerateBaseSignal(signal);
  window.at(20, 0) += 8.0f;
  window.at(45, 0) += 8.0f;

  Rng rng(1);
  const auto mask = masking::ComputeTemporalMask(
      window.values, 64, 1, 10, 0.25,
      masking::TemporalMaskVariant::kCoefficientOfVariation,
      masking::CvMethod::kFft, &rng);
  const bool covers_20 = std::find(mask.masked.begin(), mask.masked.end(),
                                   20) != mask.masked.end();
  const bool covers_45 = std::find(mask.masked.begin(), mask.masked.end(),
                                   45) != mask.masked.end();
  EXPECT_TRUE(covers_20 && covers_45);
}

TEST(IntegrationTest, ContrastiveScoreIsShiftRobustRelativeToReconstruction) {
  // Challenge II (distribution shift): apply a strong ramp to an
  // anomaly-free test slice. The reconstruction baseline's scores should
  // inflate along the ramp far more than TFMAE's contrastive scores
  // (measured as correlation between score and time).
  data::BaseSignalConfig signal;
  signal.length = 1000;
  signal.num_features = 1;
  signal.noise_std = 0.05;
  signal.seed = 62;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries train = full.Slice(0, 600);
  data::TimeSeries test = full.Slice(600, 400);
  data::ApplyDistributionShift(&test, 1.6, 1.2);

  auto time_correlation = [](const std::vector<float>& scores) {
    const double n = static_cast<double>(scores.size());
    double mean_score = 0.0;
    for (float s : scores) mean_score += s;
    mean_score /= n;
    const double mean_t = (n - 1) / 2.0;
    double cov = 0.0;
    double var_s = 0.0;
    double var_t = 0.0;
    for (std::size_t t = 0; t < scores.size(); ++t) {
      const double ds = scores[t] - mean_score;
      const double dt = static_cast<double>(t) - mean_t;
      cov += ds * dt;
      var_s += ds * ds;
      var_t += dt * dt;
    }
    return cov / std::sqrt(var_s * var_t + 1e-12);
  };

  core::TfmaeConfig config = FastConfig();
  config.per_window_normalization = true;
  core::TfmaeDetector tfmae(config);
  tfmae.Fit(train);
  const double tfmae_corr = time_correlation(tfmae.Score(test));

  baselines::DenseAeOptions options;
  options.window = 32;
  options.stride = 16;
  options.epochs = 15;
  baselines::DenseAeDetector reconstruction(options);
  reconstruction.Fit(train);
  const double recon_corr = time_correlation(reconstruction.Score(test));

  EXPECT_LT(std::abs(tfmae_corr), std::abs(recon_corr))
      << "TFMAE score drifts with the shift more than reconstruction";
  EXPECT_GT(std::abs(recon_corr), 0.3)
      << "the planted shift failed to stress the reconstruction baseline";
}

TEST(IntegrationTest, CombinedProtocolReportsSaneThresholds) {
  data::LabeledDataset dataset = data::MakeBenchmarkDataset(
      data::BenchmarkDataset::kNipsTsSeasonal, 0.5);
  core::TfmaeConfig config = FastConfig();
  config.per_window_normalization = false;
  config.temporal_mask_ratio = 0.5;
  core::TfmaeDetector detector(config);
  detector.Fit(dataset.train);
  const auto val_scores = detector.Score(dataset.val);
  const auto test_scores = detector.Score(dataset.test);
  const auto report = eval::EvaluateDetection(val_scores, test_scores,
                                              dataset.test.labels, 0.03);
  // The threshold must lie inside the observed score range.
  float max_score = 0.0f;
  for (float s : test_scores) max_score = std::max(max_score, s);
  EXPECT_GT(report.threshold, 0.0f);
  EXPECT_LE(report.threshold, max_score);
}

TEST(IntegrationTest, BaselineAndTfmaeAgreeOnScoreLength) {
  data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kNipsTsGlobal, 0.25);
  core::TfmaeConfig config = FastConfig();
  config.epochs = 2;
  core::TfmaeDetector tfmae(config);
  tfmae.Fit(dataset.train);
  baselines::IsolationForestDetector forest;
  forest.Fit(dataset.train);
  EXPECT_EQ(tfmae.Score(dataset.test).size(),
            forest.Score(dataset.test).size());
}

}  // namespace
}  // namespace tfmae
