// Tests for run-ledger reporting (src/obs/report): K-S drift arithmetic,
// run digests, and byte-exact goldens for the summary and diff renderings
// consumed by tools/tfmae_report.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "obs/report.h"

namespace tfmae::obs {
namespace {

// ctest runs each TEST as its own process, possibly in parallel with other
// tests from this binary, so scratch paths must be unique per test, not
// just per run_id.
std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string test = info != nullptr ? info->name() : "unknown";
  return (std::filesystem::temp_directory_path() /
          ("tfmae_report_" + test + "_" + name))
      .string();
}

void RemoveRun(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".partial", ec);
}

/// Writes a small deterministic run and reads it back. `variant` b gets one
/// extra step, a guard trip, and a shifted score distribution.
LedgerFile MakeRun(const std::string& run_id, bool variant_b) {
  const std::string path = TempPath(run_id + ".jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = run_id;
  manifest.num_threads = 1;
  EXPECT_TRUE(ledger.Open(path, manifest));
  ledger.Step(0, 2.0, 0.5, 1e-3);
  ledger.Step(1, 1.0, 0.25, 1e-3);
  if (variant_b) {
    ledger.GuardTrip(2, "nonfinite_loss", 3.0, 5e-4);
    ledger.Step(2, 0.5, 0.125, 5e-4);
    ledger.EpochEnd(0, 1.25, 3);
    ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 4, {1, 3});
  } else {
    ledger.CheckpointWrite(1, "ckpt_000001.bin", true);
    ledger.EpochEnd(0, 1.5, 2);
    ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 4, {2, 2});
  }
  EXPECT_TRUE(ledger.Close());
  auto file = ReadLedger(path);
  EXPECT_TRUE(file.has_value());
  RemoveRun(path);
  return std::move(*file);
}

TEST(KsDistanceTest, IdenticalDistributionsHaveZeroDistance) {
  const std::vector<std::uint64_t> buckets = {3, 1, 4, 1, 5};
  EXPECT_EQ(KsDistance(0.0, 2.0, buckets, 0.0, 2.0, buckets), 0.0);
}

TEST(KsDistanceTest, DisjointSupportsHaveDistanceOne) {
  EXPECT_DOUBLE_EQ(KsDistance(0.0, 1.0, {4}, 2.0, 3.0, {4}), 1.0);
}

TEST(KsDistanceTest, EmptySideYieldsZero) {
  EXPECT_EQ(KsDistance(0.0, 1.0, {}, 0.0, 1.0, {4}), 0.0);
  EXPECT_EQ(KsDistance(0.0, 1.0, {0, 0}, 0.0, 1.0, {4}), 0.0);
}

TEST(KsDistanceTest, PartialOverlapIsSupOfCdfGap) {
  // CDFs at the shared inner edge 0.5: 2/4 vs 1/4.
  EXPECT_DOUBLE_EQ(KsDistance(0.0, 1.0, {2, 2}, 0.0, 1.0, {1, 3}), 0.25);
  // Different binnings/ranges still compare on merged edges; the gap peaks
  // where run a's support ends: CDF_a(0.5) = 1 vs CDF_b(0.5) = 1/2.
  EXPECT_DOUBLE_EQ(KsDistance(0.0, 0.5, {1, 1}, 0.0, 1.0, {1, 1, 1, 1}), 0.5);
}

TEST(ReportTest, DigestCountsEventsByType) {
  const RunDigest d = DigestRun(MakeRun("digest_b", /*variant_b=*/true));
  EXPECT_EQ(d.tool, "report_test");
  EXPECT_EQ(d.run_id, "digest_b");
  EXPECT_TRUE(d.sealed);
  EXPECT_EQ(d.steps, 3);
  EXPECT_EQ(d.guard_trips, 1);
  EXPECT_EQ(d.guard_give_ups, 0);
  EXPECT_EQ(d.checkpoints_ok, 0);
  EXPECT_DOUBLE_EQ(d.first_loss, 2.0);
  EXPECT_DOUBLE_EQ(d.last_loss, 0.5);
  ASSERT_EQ(d.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(d.epochs[0].second, 1.25);
  ASSERT_EQ(d.histograms.size(), 1u);

  const RunDigest a = DigestRun(MakeRun("digest_a", /*variant_b=*/false));
  EXPECT_EQ(a.steps, 2);
  EXPECT_EQ(a.guard_trips, 0);
  EXPECT_EQ(a.checkpoints_ok, 1);
  EXPECT_EQ(a.checkpoints_failed, 0);
}

TEST(ReportTest, PlanEventsSurfaceInDigestAndSummary) {
  const std::string path = TempPath("plan.jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = "plan_run";
  manifest.num_threads = 1;
  ASSERT_TRUE(ledger.Open(path, manifest));
  // Two captures (geometry change mid-run); the digest keeps the last one.
  ledger.Event("plan", {{"ops", "120"},
                        {"captured_ops", "150"},
                        {"fused_ops", "12"},
                        {"arena_bytes", "40960"},
                        {"t_capture_ms", "3.5"}});
  ledger.Event("plan", {{"ops", "140"},
                        {"captured_ops", "179"},
                        {"fused_ops", "15"},
                        {"arena_bytes", "57600"},
                        {"t_capture_ms", "2.5"}});
  ASSERT_TRUE(ledger.Close());
  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  RemoveRun(path);

  const RunDigest d = DigestRun(*file);
  EXPECT_EQ(d.plan_captures, 2);
  EXPECT_EQ(d.plan_ops, 140);
  EXPECT_EQ(d.plan_fused_ops, 15);
  EXPECT_EQ(d.plan_arena_bytes, 57600);

  ReportOptions options;
  options.show_timing = false;
  const std::string report = RenderRunReport(*file, options);
  EXPECT_NE(report.find("inference plan: 2 capture(s), 140 ops "
                        "(15 fused away), arena 57600 B"),
            std::string::npos)
      << report;
}

TEST(ReportTest, QuantEventsSurfaceInDigestAndSummary) {
  const std::string path = TempPath("quant.jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = "quant_run";
  manifest.num_threads = 1;
  ASSERT_TRUE(ledger.Open(path, manifest));
  ledger.Event("quant", {{"verdict", JsonQuote("calibrated")},
                         {"sites", "26"},
                         {"windows", "31"},
                         {"amax_min", "0.125"},
                         {"amax_max", "9.5"}});
  ledger.Event("quant", {{"verdict", JsonQuote("self_verified")},
                         {"isa", JsonQuote("avx512vnni")},
                         {"sites", "26"},
                         {"quant_linear_ops", "26"},
                         {"elided_quant_pairs", "34"},
                         {"quant_arena_bytes", "3648"}});
  ledger.Event("quant", {{"verdict", JsonQuote("fallback")},
                         {"reason", JsonQuote("no calibration spec")}});
  ASSERT_TRUE(ledger.Close());
  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  RemoveRun(path);

  const RunDigest d = DigestRun(*file);
  EXPECT_EQ(d.quant_calibrations, 1);
  EXPECT_EQ(d.quant_plans, 1);
  EXPECT_EQ(d.quant_fallbacks, 1);
  EXPECT_EQ(d.quant_sites, 26);
  EXPECT_EQ(d.quant_linear_ops, 26);
  EXPECT_EQ(d.quant_elided_pairs, 34);
  EXPECT_EQ(d.quant_arena_bytes, 3648);
  EXPECT_DOUBLE_EQ(d.quant_amax_min, 0.125);
  EXPECT_DOUBLE_EQ(d.quant_amax_max, 9.5);
  EXPECT_EQ(d.quant_fallback_reason, "no calibration spec");

  ReportOptions options;
  options.show_timing = false;
  const std::string report = RenderRunReport(*file, options);
  EXPECT_NE(report.find("calibrated 26 sites (|x| 0.125..9.5)"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("int8 plan self-verified: 26 int8 matmuls, "
                        "34 elided quant pairs, u8 arena 3648 B"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("1 fp32 fallback(s) (no calibration spec)"),
            std::string::npos)
      << report;
}

TEST(ReportTest, RunReportGoldenWithoutTiming) {
  ReportOptions options;
  options.show_timing = false;
  const std::string report = RenderRunReport(MakeRun("run_a", false), options);
  EXPECT_EQ(report,
            "== run: run_a (report_test) ==\n"
            "  threads: 1  integrity: sealed\n"
            "  events: 5  steps: 2  guard trips: 0  checkpoints: 1\n"
            "  loss: first 2 -> last 1\n"
            "  epoch  mean_loss\n"
            "      0  1.5\n"
            "  scores 'anomaly_score': n=4  p50 0.5  p95 0.95  p99 0.99"
            "  max 1\n");
}

TEST(ReportTest, RunDiffGoldenIsDeterministic) {
  const LedgerFile a = MakeRun("run_a", false);
  const LedgerFile b = MakeRun("run_b", true);
  const std::string diff = RenderRunDiff(a, b);
  EXPECT_EQ(diff,
            "== diff: run_a vs run_b ==\n"
            "  steps: 2 vs 3  [DIFFERS]\n"
            "  guard trips: 0 vs 1  [DIFFERS]\n"
            "  checkpoints: 1 vs 0\n"
            "  final step loss: 1 vs 0.5  (delta -0.5)\n"
            "  epoch  mean_loss_a    mean_loss_b    delta\n"
            "      0  1.5           1.25          -0.25\n"
            "  scores 'anomaly_score': K-S distance 0.250000\n");
  // Rendering is pure: a second render is byte-identical.
  EXPECT_EQ(diff, RenderRunDiff(a, b));
}

TEST(ReportTest, DiffOfARunWithItselfReportsIdenticalScores) {
  const LedgerFile a = MakeRun("run_a", false);
  const std::string diff = RenderRunDiff(a, a);
  EXPECT_NE(diff.find("K-S distance 0.000000  (identical)"),
            std::string::npos);
  EXPECT_EQ(diff.find("[DIFFERS]"), std::string::npos);
}

TEST(ReportTest, DuplicateHistogramNamesPairByOccurrence) {
  // A run that calls Score twice records two histograms under the same
  // name; the diff must pair first-with-first and second-with-second, not
  // compare everything against run b's first.
  const auto make = [](const std::string& run_id,
                       std::vector<std::uint64_t> second) {
    const std::string path = TempPath(run_id + ".jsonl");
    RemoveRun(path);
    Ledger ledger;
    RunManifest manifest;
    manifest.tool = "report_test";
    manifest.run_id = run_id;
    EXPECT_TRUE(ledger.Open(path, manifest));
    ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 4, {2, 2});
    ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 4, second);
    EXPECT_TRUE(ledger.Close());
    auto file = ReadLedger(path);
    EXPECT_TRUE(file.has_value());
    RemoveRun(path);
    return std::move(*file);
  };
  // Both runs: identical first Score, identical second Score — but the
  // second distribution differs from the first. Positional pairing yields
  // two zero-drift rows; first-match-by-name would report 0.25 drift.
  const LedgerFile a = make("dup_a", {1, 3});
  const LedgerFile b = make("dup_b", {1, 3});
  const std::string diff = RenderRunDiff(a, b);
  EXPECT_EQ(diff.find("0.250000"), std::string::npos) << diff;
  std::size_t identical_rows = 0;
  for (std::size_t pos = diff.find("(identical)"); pos != std::string::npos;
       pos = diff.find("(identical)", pos + 1)) {
    ++identical_rows;
  }
  EXPECT_EQ(identical_rows, 2u);
  EXPECT_EQ(diff.find("only in run"), std::string::npos);

  // Unbalanced counts surface as one-sided rows instead of mispairing.
  const std::string path = TempPath("dup_c.jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = "dup_c";
  ASSERT_TRUE(ledger.Open(path, manifest));
  ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 4, {2, 2});
  ASSERT_TRUE(ledger.Close());
  auto c = ReadLedger(path);
  ASSERT_TRUE(c.has_value());
  RemoveRun(path);
  const std::string uneven = RenderRunDiff(a, *c);
  EXPECT_NE(uneven.find("'anomaly_score': only in run a"), std::string::npos);
}

TEST(ReportTest, UnsealedRunIsFlaggedInTheSummary) {
  const std::string path = TempPath("unsealed.jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = "unsealed";
  ASSERT_TRUE(ledger.Open(path, manifest));
  ledger.Step(0, 1.0, 0.1, 1e-3);
  ledger.Abandon();
  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  const std::string report = RenderRunReport(*file);
  EXPECT_NE(report.find("UNSEALED prefix"), std::string::npos);
  RemoveRun(path);
}

TEST(ReportTest, EpochTableRespectsRowCap) {
  const std::string path = TempPath("rowcap.jsonl");
  RemoveRun(path);
  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "report_test";
  manifest.run_id = "rowcap";
  ASSERT_TRUE(ledger.Open(path, manifest));
  for (int e = 0; e < 6; ++e) ledger.EpochEnd(e, 1.0 / (1 + e), e + 1);
  ASSERT_TRUE(ledger.Close());
  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  ReportOptions options;
  options.show_timing = false;
  options.max_epoch_rows = 2;
  const std::string report = RenderRunReport(*file, options);
  EXPECT_NE(report.find("... (6 epochs total)"), std::string::npos);
  EXPECT_EQ(report.find("\n      2  "), std::string::npos);
  RemoveRun(path);
}

}  // namespace
}  // namespace tfmae::obs
