// Finite-difference gradient checks for every differentiable operator.
//
// Each check builds loss = sum(w ⊙ op(inputs)) with fixed random weights w
// (so every output element contributes a distinct gradient path), then
// compares the autograd gradient of every input element against a central
// finite difference.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tfmae {
namespace {

using OpFn = std::function<Tensor(const std::vector<Tensor>&)>;

// Wraps op output into a scalar with fixed per-element weights.
Tensor WeightedLoss(const Tensor& out, std::uint64_t seed) {
  Rng rng(seed);
  Tensor weights = Tensor::Randn(out.shape(), &rng);
  return ops::SumAll(ops::Mul(out, weights));
}

void CheckGradients(const OpFn& op, std::vector<Tensor> inputs,
                    double tolerance = 3e-2, float eps = 1e-2f) {
  for (Tensor& input : inputs) input.set_requires_grad(true);

  Tensor loss = WeightedLoss(op(inputs), /*seed=*/99);
  for (Tensor& input : inputs) input.ZeroGrad();
  loss.Backward();

  for (std::size_t which = 0; which < inputs.size(); ++which) {
    Tensor& input = inputs[which];
    ASSERT_NE(input.grad_data(), nullptr) << "input " << which;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float saved = input.data()[i];
      input.data()[i] = saved + eps;
      const float up = WeightedLoss(op(inputs), 99).item();
      input.data()[i] = saved - eps;
      const float down = WeightedLoss(op(inputs), 99).item();
      input.data()[i] = saved;
      const double numeric =
          (static_cast<double>(up) - static_cast<double>(down)) /
          (2.0 * static_cast<double>(eps));
      const double analytic = input.grad_data()[i];
      const double scale =
          std::max({1.0, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tolerance * scale)
          << "input " << which << " element " << i;
    }
  }
}

Tensor SmallTensor(Shape shape, std::uint64_t seed, float spread = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng, spread);
}

TEST(AutogradTest, Add) {
  CheckGradients([](const auto& in) { return ops::Add(in[0], in[1]); },
                 {SmallTensor({3, 4}, 1), SmallTensor({3, 4}, 2)});
}

TEST(AutogradTest, AddBroadcastBias) {
  CheckGradients([](const auto& in) { return ops::Add(in[0], in[1]); },
                 {SmallTensor({3, 4}, 3), SmallTensor({4}, 4)});
}

TEST(AutogradTest, SubBroadcastBothOrders) {
  CheckGradients([](const auto& in) { return ops::Sub(in[0], in[1]); },
                 {SmallTensor({3, 4}, 5), SmallTensor({4}, 6)});
  CheckGradients([](const auto& in) { return ops::Sub(in[0], in[1]); },
                 {SmallTensor({4}, 7), SmallTensor({3, 4}, 8)});
}

TEST(AutogradTest, MulAndDiv) {
  CheckGradients([](const auto& in) { return ops::Mul(in[0], in[1]); },
                 {SmallTensor({2, 5}, 9), SmallTensor({2, 5}, 10)});
  // Keep denominators away from zero.
  Tensor denominator = Tensor::FromData({2, 3}, {1.5f, -2, 2.5f, 3, -1.2f, 2});
  CheckGradients([](const auto& in) { return ops::Div(in[0], in[1]); },
                 {SmallTensor({2, 3}, 11), denominator});
}

TEST(AutogradTest, ScalarOps) {
  CheckGradients([](const auto& in) { return ops::Scale(in[0], -1.7f); },
                 {SmallTensor({4}, 12)});
  CheckGradients([](const auto& in) { return ops::AddScalar(in[0], 3.0f); },
                 {SmallTensor({4}, 13)});
  CheckGradients([](const auto& in) { return ops::Neg(in[0]); },
                 {SmallTensor({4}, 14)});
}

TEST(AutogradTest, SmoothUnaryOps) {
  CheckGradients([](const auto& in) { return ops::Exp(in[0]); },
                 {SmallTensor({6}, 15, 0.5f)});
  CheckGradients([](const auto& in) { return ops::Tanh(in[0]); },
                 {SmallTensor({6}, 16)});
  CheckGradients([](const auto& in) { return ops::Sigmoid(in[0]); },
                 {SmallTensor({6}, 17)});
  CheckGradients([](const auto& in) { return ops::Square(in[0]); },
                 {SmallTensor({6}, 18)});
  CheckGradients([](const auto& in) { return ops::Gelu(in[0]); },
                 {SmallTensor({6}, 19)});
}

TEST(AutogradTest, PositiveDomainUnaryOps) {
  Tensor positive = Tensor::FromData({4}, {0.5f, 1.0f, 2.0f, 3.5f});
  CheckGradients([](const auto& in) { return ops::Log(in[0]); },
                 {positive.Clone()});
  CheckGradients([](const auto& in) { return ops::Sqrt(in[0]); },
                 {positive.Clone()});
}

TEST(AutogradTest, ReluAwayFromKink) {
  Tensor x = Tensor::FromData({4}, {-1.0f, -0.4f, 0.6f, 1.5f});
  CheckGradients([](const auto& in) { return ops::Relu(in[0]); }, {x});
}

TEST(AutogradTest, MatMul) {
  CheckGradients([](const auto& in) { return ops::MatMul(in[0], in[1]); },
                 {SmallTensor({3, 4}, 20), SmallTensor({4, 2}, 21)});
}

TEST(AutogradTest, BatchMatMul) {
  CheckGradients([](const auto& in) { return ops::BatchMatMul(in[0], in[1]); },
                 {SmallTensor({2, 3, 4}, 22), SmallTensor({2, 4, 2}, 23)});
}

TEST(AutogradTest, LinearWithBias) {
  CheckGradients(
      [](const auto& in) { return ops::Linear(in[0], in[1], in[2]); },
      {SmallTensor({3, 4}, 24), SmallTensor({4, 2}, 25), SmallTensor({2}, 26)});
}

TEST(AutogradTest, ShapeOps) {
  CheckGradients(
      [](const auto& in) { return ops::Reshape(in[0], {4, 3}); },
      {SmallTensor({3, 4}, 27)});
  CheckGradients(
      [](const auto& in) { return ops::Permute3(in[0], {2, 0, 1}); },
      {SmallTensor({2, 3, 4}, 28)});
  CheckGradients([](const auto& in) { return ops::Transpose2(in[0]); },
                 {SmallTensor({3, 5}, 29)});
}

TEST(AutogradTest, IndexingOps) {
  CheckGradients(
      [](const auto& in) { return ops::IndexRows(in[0], {2, 0, 2}); },
      {SmallTensor({3, 4}, 30)});
  CheckGradients(
      [](const auto& in) { return ops::ScatterRows(in[0], {3, 1}, 5); },
      {SmallTensor({2, 4}, 31)});
  CheckGradients([](const auto& in) { return ops::RepeatRow(in[0], 4); },
                 {SmallTensor({3}, 32)});
  CheckGradients([](const auto& in) { return ops::SliceRows(in[0], 1, 2); },
                 {SmallTensor({4, 3}, 33)});
  CheckGradients(
      [](const auto& in) { return ops::ConcatRows(in[0], in[1]); },
      {SmallTensor({2, 3}, 34), SmallTensor({4, 3}, 35)});
  CheckGradients([](const auto& in) { return ops::Im2Col(in[0], 3); },
                 {SmallTensor({6, 2}, 36)});
}

TEST(AutogradTest, Reductions) {
  CheckGradients([](const auto& in) { return ops::SumAll(in[0]); },
                 {SmallTensor({3, 4}, 37)});
  CheckGradients([](const auto& in) { return ops::MeanAll(in[0]); },
                 {SmallTensor({3, 4}, 38)});
}

TEST(AutogradTest, SoftmaxFamily) {
  CheckGradients([](const auto& in) { return ops::Softmax(in[0]); },
                 {SmallTensor({3, 5}, 39)});
  CheckGradients([](const auto& in) { return ops::LogSoftmax(in[0]); },
                 {SmallTensor({3, 5}, 40)});
}

TEST(AutogradTest, LayerNorm) {
  CheckGradients(
      [](const auto& in) { return ops::LayerNormOp(in[0], in[1], in[2]); },
      {SmallTensor({4, 6}, 41), SmallTensor({6}, 42), SmallTensor({6}, 43)});
}

TEST(AutogradTest, Losses) {
  CheckGradients([](const auto& in) { return ops::MseLoss(in[0], in[1]); },
                 {SmallTensor({3, 4}, 44), SmallTensor({3, 4}, 45)});
  CheckGradients([](const auto& in) { return ops::KlDivLoss(in[0], in[1]); },
                 {SmallTensor({3, 4}, 46), SmallTensor({3, 4}, 47)});
  CheckGradients(
      [](const auto& in) { return ops::SymmetricKlLoss(in[0], in[1]); },
      {SmallTensor({3, 4}, 48), SmallTensor({3, 4}, 49)});
}

TEST(AutogradTest, SymmetricKlPerRowMatchesLoss) {
  // The per-row scoring utility must agree with the differentiable loss:
  // mean(per-row) == KL(p,q)+KL(q,p) averaged over rows.
  Tensor p = SmallTensor({5, 8}, 50);
  Tensor q = SmallTensor({5, 8}, 51);
  const std::vector<float> per_row = ops::SymmetricKlPerRow(p, q);
  double mean = 0.0;
  for (float v : per_row) mean += v;
  mean /= static_cast<double>(per_row.size());
  const float loss = ops::SymmetricKlLoss(p, q).item();
  EXPECT_NEAR(mean, loss, 1e-4);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // x feeds two paths that rejoin: gradients must sum.
  Tensor x = SmallTensor({3}, 52).set_requires_grad(true);
  Tensor y = ops::Add(ops::Scale(x, 2.0f), ops::Scale(x, 3.0f));
  ops::SumAll(y).Backward();
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(x.grad_data()[i], 5.0f);
  }
}

}  // namespace
}  // namespace tfmae
