// Tests for the run ledger (src/obs/ledger): CRC-sealed round trips, the
// crashed-run valid-prefix guarantee, corruption truncation, the canonical
// (timestamp-free) event stream, and — in instrumented builds — byte-level
// replay determinism of a full Fit/Score run at 1/2/4 threads.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/generator.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace tfmae::obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("tfmae_ledger_" + name))
      .string();
}

void RemoveRun(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".partial", ec);
}

RunManifest TestManifest(const std::string& run_id) {
  RunManifest manifest;
  manifest.tool = "ledger_test";
  manifest.run_id = run_id;
  manifest.seed = 7;
  manifest.config_crc = 0xdeadbeef;
  manifest.num_threads = 1;
  manifest.build_flags = BuildFlagsString();
  return manifest;
}

TEST(LedgerTest, SealedRoundTripPreservesTypedEvents) {
  const std::string path = TempPath("roundtrip.jsonl");
  RemoveRun(path);
  Ledger ledger;
  ASSERT_TRUE(ledger.Open(path, TestManifest("roundtrip")));
  ASSERT_TRUE(ledger.IsOpen());
  ledger.MaskingStats(10, 32, 80, 320, 24);
  ledger.Step(0, 1.5, 0.25, 1e-3);
  ledger.GuardTrip(1, "nonfinite_loss", 2.0, 5e-4);
  ledger.CheckpointWrite(2, "ckpt_000002.bin", true);
  ledger.EpochEnd(0, 1.25, 3);
  ledger.ScoreHistogram("anomaly_score", 0.0, 1.0, 6, {1, 2, 3});
  ledger.StreamEvent("alert", 41, 0.93);
  EXPECT_EQ(ledger.events_written(), 7);
  ASSERT_TRUE(ledger.Close());
  EXPECT_FALSE(ledger.IsOpen());
  EXPECT_FALSE(std::filesystem::exists(path + ".partial"));

  std::string error;
  auto file = ReadLedger(path, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_TRUE(file->sealed);
  EXPECT_EQ(file->dropped_lines, 0);
  EXPECT_EQ(file->Tool(), "ledger_test");
  EXPECT_EQ(file->RunId(), "roundtrip");
  EXPECT_EQ(file->NumThreads(), 1);
  EXPECT_EQ(file->manifest.Text("build_flags"), BuildFlagsString());
  ASSERT_EQ(file->events.size(), 7u);

  EXPECT_EQ(file->events[0].type, "masking_stats");
  EXPECT_EQ(file->events[0].Number("masked_frequency_bins"), 24.0);
  EXPECT_EQ(file->events[1].type, "step");
  EXPECT_DOUBLE_EQ(file->events[1].Number("loss"), 1.5);
  EXPECT_DOUBLE_EQ(file->events[1].Number("grad_norm"), 0.25);
  EXPECT_EQ(file->events[2].type, "guard_trip");
  EXPECT_EQ(file->events[2].Text("kind"), "nonfinite_loss");
  EXPECT_EQ(file->events[3].type, "checkpoint_write");
  EXPECT_EQ(file->events[3].Text("file"), "ckpt_000002.bin");
  EXPECT_EQ(*file->events[3].Field("ok"), "true");
  EXPECT_EQ(file->events[4].type, "epoch_end");
  EXPECT_EQ(file->events[5].type, "score_histogram");
  EXPECT_EQ(file->events[5].U64Array("buckets"),
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(file->events[6].type, "stream");
  EXPECT_EQ(file->events[6].Text("what"), "alert");
  // Sequence numbers are contiguous from 0 (the manifest).
  for (std::size_t i = 0; i < file->events.size(); ++i) {
    EXPECT_EQ(file->events[i].seq, static_cast<std::int64_t>(i + 1));
  }
  RemoveRun(path);
}

TEST(LedgerTest, AbandonedRunLeavesReadableValidPrefix) {
  const std::string path = TempPath("abandon.jsonl");
  RemoveRun(path);
  Ledger ledger;
  ASSERT_TRUE(ledger.Open(path, TestManifest("abandon")));
  ledger.Step(0, 3.0, 1.0, 1e-3);
  ledger.Step(1, 2.0, 0.5, 1e-3);
  ledger.Abandon();  // what a SIGKILL mid-run leaves behind

  // The sealed path never appeared; the reader falls back to the .partial.
  EXPECT_FALSE(std::filesystem::exists(path));
  std::string error;
  auto file = ReadLedger(path, &error);
  ASSERT_TRUE(file.has_value()) << error;
  EXPECT_FALSE(file->sealed);
  EXPECT_EQ(file->path, path + ".partial");
  EXPECT_EQ(file->dropped_lines, 0);
  ASSERT_EQ(file->events.size(), 2u);
  EXPECT_DOUBLE_EQ(file->events[1].Number("loss"), 2.0);
  RemoveRun(path);
}

TEST(LedgerTest, CorruptMiddleLineTruncatesToValidPrefix) {
  const std::string path = TempPath("corrupt.jsonl");
  RemoveRun(path);
  Ledger ledger;
  ASSERT_TRUE(ledger.Open(path, TestManifest("corrupt")));
  for (int i = 0; i < 5; ++i) ledger.Step(i, 1.0 + i, 0.1, 1e-3);
  ASSERT_TRUE(ledger.Close());

  // Flip one byte inside the third step line.
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GE(lines.size(), 7u);  // manifest + 5 steps + footer
  lines[3][lines[3].find("loss") + 7] ^= 1;
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& l : lines) out << l << '\n';
  out.close();

  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  // The valid prefix is the two steps before the corrupted line; the seal is
  // void (the footer lies beyond the corruption).
  EXPECT_FALSE(file->sealed);
  EXPECT_EQ(file->events.size(), 2u);
  EXPECT_EQ(file->dropped_lines, 4);  // corrupt line + 2 later steps + footer
  RemoveRun(path);
}

TEST(LedgerTest, TornFinalLineIsDropped) {
  const std::string path = TempPath("torn.jsonl");
  RemoveRun(path);
  Ledger ledger;
  ASSERT_TRUE(ledger.Open(path, TestManifest("torn")));
  ledger.Step(0, 1.0, 0.1, 1e-3);
  ledger.Abandon();

  // Simulate a kill mid-write: append half a line with no newline.
  std::ofstream out(path + ".partial", std::ios::app);
  out << "{\"seq\":2,\"t\":123,\"type\":\"step\",\"loss\":9";
  out.close();

  auto file = ReadLedger(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_FALSE(file->sealed);
  EXPECT_EQ(file->events.size(), 1u);
  EXPECT_EQ(file->dropped_lines, 1);
  RemoveRun(path);
}

TEST(LedgerTest, DoubleOpenIsRejected) {
  const std::string path_a = TempPath("double_a.jsonl");
  const std::string path_b = TempPath("double_b.jsonl");
  RemoveRun(path_a);
  RemoveRun(path_b);
  Ledger ledger;
  ASSERT_TRUE(ledger.Open(path_a, TestManifest("a")));
  EXPECT_FALSE(ledger.Open(path_b, TestManifest("b")));
  EXPECT_TRUE(ledger.IsOpen());
  ledger.Abandon();
  RemoveRun(path_a);
  RemoveRun(path_b);
}

TEST(LedgerTest, EmittersAreNoOpsWhileClosed) {
  Ledger ledger;
  ledger.Step(0, 1.0, 0.1, 1e-3);  // must not crash
  ledger.GuardGiveUp(3, 26);
  EXPECT_EQ(ledger.events_written(), 0);
  EXPECT_FALSE(ledger.Close());
}

TEST(LedgerTest, CanonicalStreamStripsTimestampsOnly) {
  const std::string path_a = TempPath("canon_a.jsonl");
  const std::string path_b = TempPath("canon_b.jsonl");
  RemoveRun(path_a);
  RemoveRun(path_b);
  for (const std::string& path : {path_a, path_b}) {
    Ledger ledger;
    RunManifest manifest = TestManifest("canon");
    // Thread count varies between the "runs"; the canonical stream must not
    // see it (it lives in the manifest, which is excluded).
    manifest.num_threads = path == path_a ? 1 : 4;
    ASSERT_TRUE(ledger.Open(path, manifest));
    ledger.Step(0, 0.5, 0.25, 1e-3);
    ledger.EpochEnd(0, 0.5, 1);
    ASSERT_TRUE(ledger.Close());
  }
  auto a = ReadLedger(path_a);
  auto b = ReadLedger(path_b);
  ASSERT_TRUE(a.has_value() && b.has_value());
  // Raw lines differ (timestamps, hence CRCs); canonical streams match.
  EXPECT_EQ(CanonicalEventStream(*a), CanonicalEventStream(*b));
  EXPECT_NE(CanonicalEventStream(*a).find("\"loss\":0.5"), std::string::npos);
  EXPECT_EQ(CanonicalEventStream(*a).find("\"t\":"), std::string::npos);
  EXPECT_EQ(CanonicalEventStream(*a).find("crc"), std::string::npos);
  RemoveRun(path_a);
  RemoveRun(path_b);
}

// The acceptance contract of the telemetry plane: a full Fit + Score run
// instrumented through the process ledger produces a byte-identical
// canonical event stream at 1, 2, and 4 threads (DESIGN.md §7 extended to
// ledger events). Needs the emission sites compiled in.
TEST(LedgerReplayTest, CanonicalStreamIsThreadCountInvariant) {
  if (!CompiledIn()) {
    GTEST_SKIP() << "emission sites require -DTFMAE_OBS=ON";
  }
  data::BaseSignalConfig signal;
  signal.length = 192;
  signal.num_features = 2;
  signal.seed = 11;
  const data::TimeSeries series = data::GenerateBaseSignal(signal);

  core::TfmaeConfig config;
  config.window = 16;
  config.stride = 8;
  config.model_dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 16;
  config.epochs = 2;
  config.seed = 3;

  std::string reference;
  for (const int threads : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(threads);
    const std::string path =
        TempPath("replay_t" + std::to_string(threads) + ".jsonl");
    RemoveRun(path);
    RunManifest manifest = TestManifest("replay");
    manifest.num_threads = threads;
    ASSERT_TRUE(Ledger::Instance().Open(path, manifest));
    core::TfmaeDetector detector(config);
    detector.Fit(series);
    detector.Score(series);
    ASSERT_TRUE(Ledger::Instance().Close());

    auto file = ReadLedger(path);
    ASSERT_TRUE(file.has_value());
    EXPECT_TRUE(file->sealed);
    EXPECT_GT(file->events.size(), 0u);
    const std::string canonical = CanonicalEventStream(*file);
    if (threads == 1) {
      reference = canonical;
    } else {
      EXPECT_EQ(canonical, reference)
          << "ledger event stream varies with TFMAE_NUM_THREADS=" << threads;
    }
    RemoveRun(path);
  }
  ThreadPool::Instance().SetNumThreads(1);
}

}  // namespace
}  // namespace tfmae::obs
