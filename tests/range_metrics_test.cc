// Tests for the range-based precision/recall metrics.
#include <gtest/gtest.h>

#include "eval/range_metrics.h"

namespace tfmae::eval {
namespace {

TEST(ExtractRangesTest, FindsMaximalRuns) {
  const std::vector<std::uint8_t> binary = {0, 1, 1, 0, 1, 0, 0, 1, 1, 1};
  const auto ranges = ExtractRanges(binary);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].begin, 1);
  EXPECT_EQ(ranges[0].end, 3);
  EXPECT_EQ(ranges[1].begin, 4);
  EXPECT_EQ(ranges[1].end, 5);
  EXPECT_EQ(ranges[2].begin, 7);
  EXPECT_EQ(ranges[2].end, 10);
}

TEST(ExtractRangesTest, EdgeCases) {
  EXPECT_TRUE(ExtractRanges({}).empty());
  EXPECT_TRUE(ExtractRanges({0, 0, 0}).empty());
  const auto all = ExtractRanges({1, 1, 1});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].length(), 3);
}

TEST(RangeMetricsTest, PerfectPredictionScoresOne) {
  const std::vector<std::uint8_t> labels = {0, 1, 1, 0, 0, 1, 1, 1, 0};
  const RangeMetrics m = ComputeRangeMetrics(labels, labels);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(RangeMetricsTest, NoPredictionScoresZero) {
  const std::vector<std::uint8_t> labels = {0, 1, 1, 0};
  const std::vector<std::uint8_t> predictions = {0, 0, 0, 0};
  const RangeMetrics m = ComputeRangeMetrics(predictions, labels);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(RangeMetricsTest, PartialOverlapWithExistenceReward) {
  // One real range [2, 6); prediction covers half of it.
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1, 1, 1, 0, 0};
  const std::vector<std::uint8_t> predictions = {0, 0, 1, 1, 0, 0, 0, 0};
  RangeMetricOptions options;
  options.alpha = 0.2;
  const RangeMetrics m = ComputeRangeMetrics(predictions, labels, options);
  // Recall = 0.2 * 1 (existence) + 0.8 * 1 (cardinality) * 0.5 (overlap).
  EXPECT_NEAR(m.recall, 0.2 + 0.8 * 0.5, 1e-12);
  // Precision: the predicted range is fully inside the real range.
  EXPECT_NEAR(m.precision, 1.0, 1e-12);
}

TEST(RangeMetricsTest, FragmentationIsPenalized) {
  // One real range [0, 8); two fragmented predictions each covering 2 steps.
  const std::vector<std::uint8_t> labels = {1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<std::uint8_t> predictions = {1, 1, 0, 0, 1, 1, 0, 0};
  RangeMetricOptions options;
  options.alpha = 0.0;
  const RangeMetrics m = ComputeRangeMetrics(predictions, labels, options);
  // Overlap 4/8 = 0.5, cardinality 1/2 -> recall 0.25.
  EXPECT_NEAR(m.recall, 0.25, 1e-12);
  // Each prediction fully inside the real range -> precision 1.
  EXPECT_NEAR(m.precision, 1.0, 1e-12);
}

TEST(RangeMetricsTest, FalsePositiveRangeLowersPrecisionOnly) {
  const std::vector<std::uint8_t> labels = {1, 1, 0, 0, 0, 0};
  const std::vector<std::uint8_t> predictions = {1, 1, 0, 0, 1, 1};
  RangeMetricOptions options;
  options.alpha = 0.0;
  const RangeMetrics m = ComputeRangeMetrics(predictions, labels, options);
  EXPECT_NEAR(m.recall, 1.0, 1e-12);
  EXPECT_NEAR(m.precision, 0.5, 1e-12);  // one of two predictions is real
}

TEST(RangeMetricsTest, AlphaInterpolatesExistence) {
  // Tiny 1-step hit inside a 10-step range: overlap term ~0.1, existence 1.
  std::vector<std::uint8_t> labels(12, 0);
  for (int i = 1; i <= 10; ++i) labels[static_cast<std::size_t>(i)] = 1;
  std::vector<std::uint8_t> predictions(12, 0);
  predictions[5] = 1;
  for (double alpha : {0.0, 0.5, 1.0}) {
    RangeMetricOptions options;
    options.alpha = alpha;
    const RangeMetrics m = ComputeRangeMetrics(predictions, labels, options);
    EXPECT_NEAR(m.recall, alpha * 1.0 + (1 - alpha) * 0.1, 1e-12)
        << "alpha=" << alpha;
  }
}

}  // namespace
}  // namespace tfmae::eval
