// Tests for the GRU layer: shapes, step/sequence consistency, gradient
// flow through time, and the ability to fit a short memory task.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/gru.h"
#include "tensor/ops.h"

namespace tfmae::nn {
namespace {

TEST(GruTest, OutputShape) {
  Rng rng(1);
  GruLayer gru(3, 8, &rng);
  Tensor x = Tensor::Randn({12, 3}, &rng);
  Tensor states = gru.Forward(x);
  EXPECT_EQ(states.shape(), (Shape{12, 8}));
  for (std::int64_t i = 0; i < states.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(states.at(i)));
    EXPECT_LE(std::abs(states.at(i)), 1.0f + 1e-5f);  // gated states bounded
  }
}

TEST(GruTest, ForwardMatchesManualStepping) {
  Rng rng(2);
  GruLayer gru(2, 4, &rng);
  Tensor x = Tensor::Randn({5, 2}, &rng);
  Tensor states = gru.Forward(x);
  Tensor h = Tensor::Zeros({1, 4});
  for (std::int64_t t = 0; t < 5; ++t) {
    h = gru.Step(ops::SliceRows(x, t, 1), h);
    for (std::int64_t d = 0; d < 4; ++d) {
      EXPECT_NEAR(h.at(d), states.at(t * 4 + d), 1e-5f) << "t=" << t;
    }
  }
}

TEST(GruTest, GradientsFlowThroughTime) {
  Rng rng(3);
  GruLayer gru(2, 4, &rng);
  Tensor x = Tensor::Randn({6, 2}, &rng).set_requires_grad(true);
  ops::SumAll(gru.Forward(x)).Backward();
  // Every input step influences later states, so every step has gradient.
  ASSERT_NE(x.grad_data(), nullptr);
  for (std::int64_t t = 0; t < 6; ++t) {
    double norm = 0.0;
    for (std::int64_t d = 0; d < 2; ++d) {
      norm += std::abs(x.grad_data()[t * 2 + d]);
    }
    EXPECT_GT(norm, 0.0) << "no gradient at step " << t;
  }
  for (const auto& [name, param] : gru.NamedParameters()) {
    ASSERT_NE(param.grad_data(), nullptr) << name;
  }
}

TEST(GruTest, LearnsToEchoPreviousInput) {
  // Task: output_t ~ input_{t-1} through a readout. Tests that the state
  // actually carries memory.
  Rng rng(4);
  GruLayer gru(1, 8, &rng);
  Linear readout(8, 1, &rng);
  std::vector<Tensor> parameters = gru.Parameters();
  for (Tensor& p : readout.Parameters()) parameters.push_back(p);
  AdamOptions options;
  options.learning_rate = 2e-2f;
  Adam adam(parameters, options);

  Rng data_rng(5);
  float final_loss = 1e9f;
  for (int step = 0; step < 150; ++step) {
    Tensor x = Tensor::Randn({10, 1}, &data_rng);
    // Target: x shifted by one step (first target is 0).
    std::vector<float> target_values(10, 0.0f);
    for (int t = 1; t < 10; ++t) target_values[static_cast<std::size_t>(t)] = x.at(t - 1);
    Tensor target = Tensor::FromData({10, 1}, target_values);
    Tensor prediction = readout.Forward(gru.Forward(x));
    Tensor loss = ops::MseLoss(prediction, target);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.5f);  // well below the variance of the target (~1)
}

}  // namespace
}  // namespace tfmae::nn
