// Minimal HTTP/1.1 metrics listener tests (docs/OBSERVABILITY.md, "Live
// endpoints & SLOs").
//
// The client side is a raw POSIX socket speaking literal HTTP/1.1 bytes —
// deliberately not a helper from the code under test — so these tests pin
// the wire format an actual scraper sees: status line, Content-Length
// framing, Connection: close, and the 400/404/405 error paths.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/prom_export.h"

namespace tfmae::obs {
namespace {

// Sends `request` to 127.0.0.1:port and returns everything the server
// writes until it closes the connection (the endpoint is Connection: close,
// so read-to-EOF is the correct framing).
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

// Body after the blank line separating headers from payload.
std::string BodyOf(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpEndpointTest, ServesRegisteredPathWithFramingHeaders) {
  HttpEndpoint endpoint;
  endpoint.Handle("/hello", [] {
    HttpResponse r;
    r.body = "hi there\n";
    return r;
  });
  std::string error;
  ASSERT_TRUE(endpoint.Start(0, &error)) << error;
  ASSERT_GT(endpoint.port(), 0);
  EXPECT_TRUE(endpoint.running());

  const std::string response = Get(endpoint.port(), "/hello");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_EQ(BodyOf(response), "hi there\n");

  // A query string does not change which handler matches.
  EXPECT_EQ(BodyOf(Get(endpoint.port(), "/hello?verbose=1")), "hi there\n");
  endpoint.Stop();
  EXPECT_FALSE(endpoint.running());
}

TEST(HttpEndpointTest, HandlerStatusAndContentTypePropagate) {
  HttpEndpoint endpoint;
  endpoint.Handle("/drain", [] {
    HttpResponse r;
    r.status = 503;
    r.body = "draining\n";
    return r;
  });
  endpoint.Handle("/stats", [] {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = "{}";
    return r;
  });
  ASSERT_TRUE(endpoint.Start(0));
  const std::string drain = Get(endpoint.port(), "/drain");
  EXPECT_EQ(drain.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u)
      << drain;
  EXPECT_EQ(BodyOf(drain), "draining\n");
  const std::string stats = Get(endpoint.port(), "/stats");
  EXPECT_NE(stats.find("Content-Type: application/json\r\n"),
            std::string::npos);
  endpoint.Stop();
}

TEST(HttpEndpointTest, ErrorPaths400And404And405) {
  HttpEndpoint endpoint;
  endpoint.Handle("/only", [] { return HttpResponse{}; });
  ASSERT_TRUE(endpoint.Start(0));
  EXPECT_EQ(Get(endpoint.port(), "/nope").rfind("HTTP/1.1 404 Not Found", 0),
            0u);
  EXPECT_EQ(RawRequest(endpoint.port(),
                       "POST /only HTTP/1.1\r\nHost: x\r\n\r\n")
                .rfind("HTTP/1.1 405 Method Not Allowed", 0),
            0u);
  EXPECT_EQ(RawRequest(endpoint.port(), "garbage\r\n\r\n")
                .rfind("HTTP/1.1 400 Bad Request", 0),
            0u);
  endpoint.Stop();
}

TEST(HttpEndpointTest, MetricsScrapeRoundTrip) {
  Registry& reg = Registry::Instance();
  const int counter = reg.CounterId("httptest.scrape.hits");
  ASSERT_NE(counter, kInvalidMetricId);
  reg.CounterAdd(counter, 3);

  HttpEndpoint endpoint;
  endpoint.Handle("/metrics", [] {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = RenderPrometheusText();
    return r;
  });
  ASSERT_TRUE(endpoint.Start(0));
  const std::string response = Get(endpoint.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4; "
                          "charset=utf-8\r\n"),
            std::string::npos);
  const std::string body = BodyOf(response);
  EXPECT_NE(body.find("tfmae_httptest_scrape_hits_total 3\n"),
            std::string::npos);
  // The scraped body is exactly what the renderer produced: Content-Length
  // framing did not truncate or pad it.
  EXPECT_EQ(body, RenderPrometheusText());
  endpoint.Stop();
}

TEST(HttpEndpointTest, StopUnblocksAcceptAndIsIdempotent) {
  HttpEndpoint endpoint;
  endpoint.Handle("/x", [] { return HttpResponse{}; });
  ASSERT_TRUE(endpoint.Start(0));
  const int port = endpoint.port();
  EXPECT_FALSE(Get(port, "/x").empty());
  endpoint.Stop();   // must return promptly even with accept() parked
  endpoint.Stop();   // double-stop is a no-op
  EXPECT_FALSE(endpoint.running());
  // The listener is really gone: a fresh connection attempt fails.
  EXPECT_TRUE(Get(port, "/x").empty());
}

TEST(HttpEndpointTest, StartFailsOnTakenPortWithError) {
  HttpEndpoint first;
  first.Handle("/a", [] { return HttpResponse{}; });
  ASSERT_TRUE(first.Start(0));
  HttpEndpoint second;
  second.Handle("/a", [] { return HttpResponse{}; });
  std::string error;
  EXPECT_FALSE(second.Start(first.port(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(second.running());
  first.Stop();
}

}  // namespace
}  // namespace tfmae::obs
