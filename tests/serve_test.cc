// Fleet-server determinism suite (docs/SERVING.md).
//
// The load-bearing claim: batched cross-stream scoring through per-lane
// inference-plan replicas is BITWISE-identical to driving one sequential
// StreamingDetector per stream against the same shared detector — at 1/2/4
// threads, under any push interleaving, flush timing, or concurrent ingest.
// Everything else here (backpressure, drain-loses-nothing, health parity,
// ApproxBytes) pins the serving contracts of docs/SERVING.md.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/streaming.h"
#include "serve/fleet_server.h"
#include "util/thread_pool.h"

namespace tfmae::serve {
namespace {

constexpr std::int64_t kWindow = 16;
constexpr std::int64_t kFeatures = 2;

core::TfmaeConfig TestConfig() {
  core::TfmaeConfig config;
  config.window = kWindow;
  config.stride = kWindow;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 1;
  config.seed = 11;
  return config;
}

// One fitted detector shared by every test in the suite (training once
// keeps the suite fast; all tests treat it as read-only).
core::TfmaeDetector* SharedDetector() {
  static core::TfmaeDetector* detector = [] {
    auto* d = new core::TfmaeDetector(TestConfig());
    data::TimeSeries train;
    train.length = 256;
    train.num_features = kFeatures;
    train.values.resize(
        static_cast<std::size_t>(train.length * train.num_features));
    for (std::int64_t t = 0; t < train.length; ++t) {
      for (std::int64_t f = 0; f < kFeatures; ++f) {
        train.values[static_cast<std::size_t>(t * kFeatures + f)] =
            std::sin(0.19 * static_cast<double>(t) +
                     0.7 * static_cast<double>(f)) +
            0.05 * std::cos(0.83 * static_cast<double>(t));
      }
    }
    d->Fit(train);
    return d;
  }();
  return detector;
}

// Deterministic per-stream telemetry row.
std::vector<float> RowFor(std::int64_t stream, std::int64_t t) {
  std::vector<float> row(static_cast<std::size_t>(kFeatures));
  for (std::int64_t f = 0; f < kFeatures; ++f) {
    row[static_cast<std::size_t>(f)] = static_cast<float>(
        std::sin(0.19 * static_cast<double>(t + 3 * stream) +
                 0.7 * static_cast<double>(f)) +
        0.01 * static_cast<double>(stream % 5));
  }
  return row;
}

core::StreamingOptions TestStreaming() {
  core::StreamingOptions options;
  options.window = kWindow;
  options.hop = 3;
  return options;
}

// Reference: per-stream rescore-score sequences from the synchronous
// sequential wrapper (one StreamingDetector per stream, shared detector).
// Returns scores[stream] in push order, rescore pushes only — exactly the
// windows the fleet server enqueues.
std::vector<std::vector<float>> SequentialReference(std::int64_t streams,
                                                    std::int64_t rows) {
  std::vector<std::vector<float>> scores(
      static_cast<std::size_t>(streams));
  for (std::int64_t s = 0; s < streams; ++s) {
    core::StreamingDetector stream(SharedDetector(), TestStreaming());
    std::int64_t since = 0;
    bool scored_once = false;
    for (std::int64_t t = 0; t < rows; ++t) {
      const auto r = stream.Push(RowFor(s, t));
      if (!r.has_value()) continue;
      ++since;
      if (since >= TestStreaming().hop || !scored_once) {
        // This push triggered a rescore (same cadence rule as StreamState).
        scores[static_cast<std::size_t>(s)].push_back(r->score);
        scored_once = true;
        since = 0;
      }
    }
  }
  return scores;
}

// Collects the fleet server's async per-stream score sequences.
std::vector<std::vector<float>> CollectScores(FleetServer* server,
                                              std::int64_t streams) {
  std::vector<std::vector<ScoredWindow>> by_stream(
      static_cast<std::size_t>(streams));
  for (const ScoredWindow& r : server->TakeResults()) {
    by_stream[static_cast<std::size_t>(r.stream)].push_back(r);
  }
  std::vector<std::vector<float>> scores(static_cast<std::size_t>(streams));
  for (std::int64_t s = 0; s < streams; ++s) {
    auto& list = by_stream[static_cast<std::size_t>(s)];
    // Per-stream results must already be in push order regardless of batch
    // composition; sort by seq only to make the check independent of it.
    std::vector<std::int64_t> seqs;
    for (const auto& r : list) seqs.push_back(r.seq);
    EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()))
        << "stream " << s << " results out of push order";
    for (const auto& r : list) {
      scores[static_cast<std::size_t>(s)].push_back(r.score);
    }
  }
  return scores;
}

TEST(FleetServeTest, BatchedScoresBitwiseEqualSequentialAt124Threads) {
  const std::int64_t kStreams = 6;
  const std::int64_t kRows = 40;
  const auto reference = SequentialReference(kStreams, kRows);

  for (const int threads : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(threads);
    FleetOptions options;
    options.streaming = TestStreaming();
    options.batch_max = 4;
    FleetServer server(SharedDetector(), options);
    std::vector<std::int64_t> ids;
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ids.push_back(server.OpenStream());
    }
    for (std::int64_t t = 0; t < kRows; ++t) {
      for (std::int64_t s = 0; s < kStreams; ++s) {
        const AdmitStatus status = server.Push(ids[s], RowFor(s, t));
        ASSERT_NE(status, AdmitStatus::kOverloaded);
      }
    }
    server.Drain();
    const auto scores = CollectScores(&server, kStreams);
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ASSERT_EQ(scores[s].size(), reference[s].size())
          << "threads=" << threads << " stream=" << s;
      for (std::size_t i = 0; i < scores[s].size(); ++i) {
        // Bitwise, not approximate: batching must not change a single ULP.
        EXPECT_EQ(scores[s][i], reference[s][i])
            << "threads=" << threads << " stream=" << s << " i=" << i;
      }
    }
    EXPECT_GT(server.stats().batches, 0);
  }
  ThreadPool::Instance().SetNumThreads(1);
}

TEST(FleetServeTest, InterleavedPushOrdersYieldIdenticalScores) {
  const std::int64_t kStreams = 5;
  const std::int64_t kRows = 30;
  const auto reference = SequentialReference(kStreams, kRows);

  // Three interleavings of the same per-stream timelines, with different
  // flush cadences. Per-stream score sequences must be identical in all.
  for (const int ordering : {0, 1, 2}) {
    FleetOptions options;
    options.streaming = TestStreaming();
    options.batch_max = 3;
    options.auto_flush = ordering != 1;  // exercise explicit-flush paths too
    FleetServer server(SharedDetector(), options);
    for (std::int64_t s = 0; s < kStreams; ++s) server.OpenStream();

    if (ordering == 0) {
      // Tick-major, reverse stream order inside a tick.
      for (std::int64_t t = 0; t < kRows; ++t) {
        for (std::int64_t s = kStreams - 1; s >= 0; --s) {
          ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
        }
      }
    } else if (ordering == 1) {
      // Stream-major chunks with mid-stream flushes.
      for (std::int64_t s = 0; s < kStreams; ++s) {
        for (std::int64_t t = 0; t < kRows; ++t) {
          ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
          if (t % 7 == 0) server.Flush();
        }
      }
    } else {
      // Uneven progress: odd streams run ahead, then evens catch up.
      for (std::int64_t t = 0; t < kRows; ++t) {
        for (std::int64_t s = 1; s < kStreams; s += 2) {
          ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
        }
      }
      for (std::int64_t t = 0; t < kRows; ++t) {
        for (std::int64_t s = 0; s < kStreams; s += 2) {
          ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
        }
      }
    }
    server.Drain();
    const auto scores = CollectScores(&server, kStreams);
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ASSERT_EQ(scores[s].size(), reference[s].size())
          << "ordering=" << ordering << " stream=" << s;
      for (std::size_t i = 0; i < scores[s].size(); ++i) {
        EXPECT_EQ(scores[s][i], reference[s][i])
            << "ordering=" << ordering << " stream=" << s << " i=" << i;
      }
    }
  }
}

TEST(FleetServeTest, ConcurrentIngestIsDeterministic) {
  const std::int64_t kStreams = 12;
  const std::int64_t kRows = 30;
  const int kProducers = 4;
  const auto reference = SequentialReference(kStreams, kRows);

  ThreadPool::Instance().SetNumThreads(2);
  FleetOptions options;
  options.streaming = TestStreaming();
  options.batch_max = 4;
  options.queue_capacity = 8;  // small, to exercise overload-retry under load
  FleetServer server(SharedDetector(), options);
  for (std::int64_t s = 0; s < kStreams; ++s) server.OpenStream();

  // Each producer owns a disjoint set of streams (per-stream push order is
  // the caller's contract); producers run concurrently with auto-flush
  // batches and retry overloads by flushing themselves.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t t = 0; t < kRows; ++t) {
        for (std::int64_t s = p; s < kStreams; s += kProducers) {
          for (;;) {
            const AdmitStatus status = server.Push(s, RowFor(s, t));
            if (status != AdmitStatus::kOverloaded) break;
            server.Flush();
          }
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  server.Drain();

  const auto scores = CollectScores(&server, kStreams);
  for (std::int64_t s = 0; s < kStreams; ++s) {
    ASSERT_EQ(scores[s].size(), reference[s].size()) << "stream=" << s;
    for (std::size_t i = 0; i < scores[s].size(); ++i) {
      EXPECT_EQ(scores[s][i], reference[s][i])
          << "stream=" << s << " i=" << i;
    }
  }
  ThreadPool::Instance().SetNumThreads(1);
}

TEST(FleetServeTest, BackpressureRefusesWithoutConsuming) {
  FleetOptions options;
  options.streaming = TestStreaming();
  options.queue_capacity = 2;
  options.batch_max = 2;
  options.auto_flush = false;  // let the queue actually fill
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  // Fill the first window, then keep pushing until admission refuses.
  std::int64_t t = 0;
  std::int64_t overload_at = -1;
  for (; t < 200; ++t) {
    const AdmitStatus status = server.Push(id, RowFor(0, t));
    if (status == AdmitStatus::kOverloaded) {
      overload_at = t;
      break;
    }
  }
  ASSERT_GE(overload_at, 0) << "queue never filled";
  const std::int64_t consumed = server.total_pushed(id);
  EXPECT_EQ(server.stats().rows_overloaded, 1);

  // The refused row was NOT consumed: re-pushing the SAME row after a flush
  // continues the stream exactly where it left off.
  EXPECT_GT(server.Flush(), 0);
  EXPECT_NE(server.Push(id, RowFor(0, overload_at)),
            AdmitStatus::kOverloaded);
  EXPECT_EQ(server.total_pushed(id), consumed + 1);

  // And the overall score sequence equals an overload-free run.
  for (t = overload_at + 1; t < 60; ++t) {
    for (;;) {
      if (server.Push(id, RowFor(0, t)) != AdmitStatus::kOverloaded) break;
      server.Flush();
    }
  }
  server.Drain();
  const auto reference = SequentialReference(1, 60);
  const auto scores = CollectScores(&server, 1);
  ASSERT_EQ(scores[0].size(), reference[0].size());
  for (std::size_t i = 0; i < scores[0].size(); ++i) {
    EXPECT_EQ(scores[0][i], reference[0][i]) << "i=" << i;
  }
}

TEST(FleetServeTest, DrainLosesNoAdmittedWindow) {
  FleetOptions options;
  options.streaming = TestStreaming();
  options.auto_flush = false;
  options.queue_capacity = 1024;
  options.batch_max = 5;  // deliberately not a divisor of the window count
  FleetServer server(SharedDetector(), options);
  const std::int64_t kStreams = 4;
  for (std::int64_t s = 0; s < kStreams; ++s) server.OpenStream();
  for (std::int64_t t = 0; t < 40; ++t) {
    for (std::int64_t s = 0; s < kStreams; ++s) {
      ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
    }
  }
  const std::int64_t enqueued = server.stats().windows_enqueued;
  ASSERT_GT(enqueued, 0);
  EXPECT_EQ(server.stats().windows_scored, 0);
  EXPECT_EQ(server.Drain(), enqueued);
  EXPECT_EQ(server.stats().windows_scored, enqueued);
  EXPECT_EQ(static_cast<std::int64_t>(server.TakeResults().size()), enqueued);
}

TEST(FleetServeTest, EagerModeMatchesSequentialToo) {
  // Plan disabled: the batcher's serial-eager fallback path must preserve
  // the same bitwise guarantee (eager == planned by the PR 6 contract).
  const auto reference = SequentialReference(3, 30);
  core::TfmaeDetector* detector = SharedDetector();
  const bool was_enabled = detector->inference_plan_enabled();
  detector->SetInferencePlanEnabled(false);
  FleetOptions options;
  options.streaming = TestStreaming();
  FleetServer server(detector, options);
  for (std::int64_t s = 0; s < 3; ++s) server.OpenStream();
  for (std::int64_t t = 0; t < 30; ++t) {
    for (std::int64_t s = 0; s < 3; ++s) {
      ASSERT_NE(server.Push(s, RowFor(s, t)), AdmitStatus::kOverloaded);
    }
  }
  server.Drain();
  detector->SetInferencePlanEnabled(was_enabled);
  const auto scores = CollectScores(&server, 3);
  EXPECT_GT(server.stats().eager_windows, 0);
  EXPECT_EQ(server.stats().plan_lanes, 0);
  for (std::int64_t s = 0; s < 3; ++s) {
    ASSERT_EQ(scores[s].size(), reference[s].size());
    for (std::size_t i = 0; i < scores[s].size(); ++i) {
      EXPECT_EQ(scores[s][i], reference[s][i]) << "s=" << s << " i=" << i;
    }
  }
}

TEST(FleetServeTest, HealthAndSyncResultsMatchSequentialInLockstep) {
  // Degraded rows (NaN holes + a wrong-arity record) flow through the same
  // StreamState the sequential wrapper uses: health counters and the
  // synchronous in-between-hop results must match under tick-lockstep
  // driving (Flush between ticks keeps committed scores current).
  core::StreamingDetector sequential(SharedDetector(), TestStreaming());
  FleetOptions options;
  options.streaming = TestStreaming();
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();

  for (std::int64_t t = 0; t < 50; ++t) {
    std::vector<float> row = RowFor(0, t);
    if (t > 0 && t % 11 == 0) {
      row[0] = std::numeric_limits<float>::quiet_NaN();  // imputed by LOCF
    }
    const auto expect = sequential.Push(row);
    core::StreamingResult got;
    const AdmitStatus status = server.Push(id, row, &got);
    ASSERT_NE(status, AdmitStatus::kOverloaded);
    server.Flush();
    if (status == AdmitStatus::kAccepted && expect.has_value()) {
      EXPECT_EQ(got.score, expect->score) << "t=" << t;
      EXPECT_EQ(got.degraded, expect->degraded) << "t=" << t;
      EXPECT_EQ(got.imputed_values, expect->imputed_values) << "t=" << t;
    }
  }
  // A wrong-arity record is refused by both.
  sequential.Push({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(server.Push(id, {1.0f, 2.0f, 3.0f}), AdmitStatus::kRejectedRow);

  const core::StreamHealth& a = sequential.health();
  const core::StreamHealth& b = server.health(id);
  EXPECT_EQ(a.rows_scored, b.rows_scored);
  EXPECT_EQ(a.rows_warmup, b.rows_warmup);
  EXPECT_EQ(a.rows_imputed, b.rows_imputed);
  EXPECT_EQ(a.rows_quarantined, b.rows_quarantined);
  EXPECT_EQ(a.rows_rejected, b.rows_rejected);
  EXPECT_EQ(a.values_imputed, b.values_imputed);
}

TEST(FleetServeTest, ApproxBytesAccountsPerStreamFootprint) {
  FleetOptions options;
  options.streaming = TestStreaming();
  FleetServer server(SharedDetector(), options);
  const std::int64_t id = server.OpenStream();
  for (std::int64_t t = 0; t < kWindow + 4; ++t) {
    server.Push(id, RowFor(0, t));
  }
  server.Drain();
  const std::int64_t bytes = server.ApproxBytesPerStream();
  EXPECT_GT(bytes, kWindow * kFeatures * 4)  // at least the window buffer
      << "per-stream footprint unreported";
  EXPECT_LT(bytes, 1 << 20) << "per-stream footprint implausibly large";
  EXPECT_EQ(server.stats().bytes_per_stream, bytes);

  // The sequential wrapper reports the same accounting.
  core::StreamingDetector sequential(SharedDetector(), TestStreaming());
  for (std::int64_t t = 0; t < kWindow + 4; ++t) {
    sequential.Push(RowFor(0, t));
  }
  EXPECT_EQ(sequential.ApproxBytes(), bytes);
}

TEST(FleetServeTest, UnknownStreamAndStreamCapAreTyped) {
  FleetOptions options;
  options.streaming = TestStreaming();
  options.max_streams = 2;
  FleetServer server(SharedDetector(), options);
  EXPECT_EQ(server.Push(0, RowFor(0, 0)), AdmitStatus::kUnknownStream);
  EXPECT_EQ(server.OpenStream(), 0);
  EXPECT_EQ(server.OpenStream(), 1);
  EXPECT_EQ(server.OpenStream(), -1);  // capacity reached: typed, no abort
  EXPECT_EQ(server.Push(7, RowFor(0, 0)), AdmitStatus::kUnknownStream);
}

}  // namespace
}  // namespace tfmae::serve
