// Tests for Tensor basics: factories, accessors, aliasing semantics of
// Detach, memory accounting, and gradient-mode switching.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "util/memory.h"
#include "util/rng.h"

namespace tfmae {
namespace {

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor zeros = Tensor::Zeros({2, 3});
  EXPECT_EQ(zeros.numel(), 6);
  EXPECT_EQ(zeros.rank(), 2u);
  EXPECT_EQ(zeros.dim(0), 2);
  EXPECT_EQ(zeros.dim(1), 3);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(zeros.at(i), 0.0f);

  Tensor full = Tensor::Full({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(full.at(i), 2.5f);

  Tensor data = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(data.at(3), 4.0f);
  EXPECT_EQ(data.ToVector(), (std::vector<float>{1, 2, 3, 4}));

  Tensor scalar = Tensor::Full({1}, 7.0f);
  EXPECT_EQ(scalar.item(), 7.0f);
}

TEST(TensorTest, RandnIsDeterministicGivenSeed) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor a = Tensor::Randn({8}, &rng1);
  Tensor b = Tensor::Randn({8}, &rng2);
  EXPECT_EQ(a.ToVector(), b.ToVector());
}

TEST(TensorTest, CloneIsDeepDetachIsAliased) {
  Tensor original = Tensor::FromData({3}, {1, 2, 3});
  Tensor cloned = original.Clone();
  Tensor detached = original.Detach();
  original.data()[0] = 99.0f;
  EXPECT_EQ(cloned.at(0), 1.0f);    // deep copy unaffected
  EXPECT_EQ(detached.at(0), 99.0f);  // alias reflects the write
  EXPECT_FALSE(detached.requires_grad());
}

TEST(TensorTest, DetachCutsGradientFlow) {
  Tensor x = Tensor::FromData({2}, {1, 2}).set_requires_grad(true);
  Tensor through = ops::SumAll(ops::Scale(x, 2.0f));
  Tensor blocked = ops::SumAll(ops::Scale(x, 2.0f).Detach());
  through.Backward();
  ASSERT_NE(x.grad_data(), nullptr);
  EXPECT_FLOAT_EQ(x.grad_data()[0], 2.0f);
  x.ZeroGrad();
  blocked.Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 0.0f);
}

TEST(TensorTest, NoGradGuardSuppressesGraph) {
  Tensor x = Tensor::FromData({2}, {1, 2}).set_requires_grad(true);
  {
    NoGradGuard guard;
    Tensor y = ops::Scale(x, 3.0f);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = ops::Scale(x, 3.0f);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, GradientAccumulatesAcrossBackwards) {
  Tensor x = Tensor::FromData({1}, {2}).set_requires_grad(true);
  Tensor y1 = ops::SumAll(ops::Square(x));
  y1.Backward();
  Tensor y2 = ops::SumAll(ops::Square(x));
  y2.Backward();
  // dy/dx = 2x = 4 each time; two backwards accumulate to 8.
  EXPECT_FLOAT_EQ(x.grad_data()[0], 8.0f);
}

TEST(TensorTest, MemoryAccountingBalances) {
  const std::int64_t before = MemoryStats::CurrentBytes();
  {
    Tensor a = Tensor::Zeros({128, 128});
    EXPECT_GE(MemoryStats::CurrentBytes(),
              before + 128 * 128 * static_cast<std::int64_t>(sizeof(float)));
    Tensor alias = a.Detach();  // aliases the same buffer
    (void)alias;
  }
  EXPECT_EQ(MemoryStats::CurrentBytes(), before);
}

TEST(TensorTest, PeakTracksHighWaterMark) {
  MemoryStats::ResetPeak();
  const std::int64_t base = MemoryStats::PeakBytes();
  {
    Tensor big = Tensor::Zeros({256, 256});
    (void)big;
  }
  EXPECT_GE(MemoryStats::PeakBytes(),
            base + 256 * 256 * static_cast<std::int64_t>(sizeof(float)));
}

TEST(TensorShapeTest, Helpers) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(RowMajorStrides({2, 3, 4}), (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_TRUE(IsSuffixOf({3}, {2, 3}));
  EXPECT_TRUE(IsSuffixOf({2, 3}, {2, 3}));
  EXPECT_FALSE(IsSuffixOf({2}, {2, 3}));
  EXPECT_FALSE(IsSuffixOf({1, 2, 3}, {2, 3}));
}

}  // namespace
}  // namespace tfmae
