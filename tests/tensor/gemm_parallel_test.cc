// Tests for the parallel GEMM backend: every kernel variant against a naive
// j-p reference over awkward shapes, the ops-level MatMul / BatchedMatMul /
// BatchedMatMulBt forward and gradients, and the determinism contract —
// 1-thread and N-thread runs must be bitwise identical.
#include "tensor/gemm_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae {
namespace {

std::vector<float> RandomVec(std::int64_t n, Rng* rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return v;
}

// Reference C[m,n] += A[m,k] * B[k,n], ascending-p accumulation per element
// (the order every kernel in gemm_kernels.cc is contracted to follow).
void RefGemm(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

struct Shape {
  std::int64_t m, k, n;
};

// Odd shapes: 1x1, tall-skinny, primes nowhere near the 8x64 tile, an exact
// multiple of the tile, and single-row/column edges.
const Shape kShapes[] = {{1, 1, 1},    {257, 3, 5},  {13, 29, 37},
                         {64, 64, 64}, {8, 128, 64}, {1, 7, 130},
                         {66, 5, 1},   {3, 100, 70}};

TEST(GemmKernelsTest, GemmMatchesNaiveBitwise) {
  Rng rng(11);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, &rng);
    std::vector<float> b = RandomVec(s.k * s.n, &rng);
    std::vector<float> c = RandomVec(s.m * s.n, &rng);  // accumulate into junk
    std::vector<float> ref = c;
    gemm::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    RefGemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    // Same per-element operation order and -ffp-contract=off everywhere, so
    // equality is exact, not approximate.
    EXPECT_EQ(c, ref) << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernelsTest, GemmMatchesSeedKernel) {
  Rng rng(12);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, &rng);
    std::vector<float> b = RandomVec(s.k * s.n, &rng);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    std::vector<float> seed = c;
    gemm::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    gemm::GemmNaiveSeed(a.data(), b.data(), seed.data(), s.m, s.k, s.n);
    EXPECT_EQ(c, seed) << "shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernelsTest, TransposedVariantsMatchNaive) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, &rng);
    std::vector<float> b = RandomVec(s.k * s.n, &rng);

    // GemmBt consumes B stored as [n, k]; build that layout explicitly.
    std::vector<float> b_t(static_cast<std::size_t>(s.k * s.n));
    for (std::int64_t p = 0; p < s.k; ++p) {
      for (std::int64_t j = 0; j < s.n; ++j) {
        b_t[j * s.k + p] = b[p * s.n + j];
      }
    }
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    std::vector<float> ref = c;
    gemm::GemmBt(a.data(), b_t.data(), c.data(), s.m, s.k, s.n);
    RefGemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    EXPECT_EQ(c, ref) << "Bt shape " << s.m << "x" << s.k << "x" << s.n;

    // GemmAtB: C[k,n] += A^T[k,m] * G[m,n] with A given as [m,k].
    std::vector<float> g = RandomVec(s.m * s.n, &rng);
    std::vector<float> at(static_cast<std::size_t>(s.k * s.m));
    for (std::int64_t i = 0; i < s.m; ++i) {
      for (std::int64_t p = 0; p < s.k; ++p) at[p * s.m + i] = a[i * s.k + p];
    }
    std::vector<float> c2(static_cast<std::size_t>(s.k * s.n), 0.0f);
    std::vector<float> ref2 = c2;
    gemm::GemmAtB(a.data(), g.data(), c2.data(), s.m, s.k, s.n);
    RefGemm(at.data(), g.data(), ref2.data(), s.k, s.m, s.n);
    EXPECT_EQ(c2, ref2) << "AtB shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernelsTest, BatchedGemmMatchesPerSliceGemm) {
  Rng rng(14);
  const std::int64_t batch = 5, m = 13, k = 29, n = 37;
  std::vector<float> a = RandomVec(batch * m * k, &rng);
  std::vector<float> b = RandomVec(batch * k * n, &rng);
  std::vector<float> c(static_cast<std::size_t>(batch * m * n), 0.0f);
  std::vector<float> ref = c;
  gemm::BatchedGemm(a.data(), b.data(), c.data(), batch, m, k, n);
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    RefGemm(a.data() + bi * m * k, b.data() + bi * k * n,
            ref.data() + bi * m * n, m, k, n);
  }
  EXPECT_EQ(c, ref);
}

// TensorImpl rejects zero dims, so K=0 is exercised at the kernel layer:
// an accumulate-GEMM over an empty contraction must leave C untouched.
TEST(GemmKernelsTest, KZeroLeavesOutputUntouched) {
  Rng rng(15);
  std::vector<float> a, b;
  std::vector<float> c = RandomVec(6 * 9, &rng);
  const std::vector<float> before = c;
  gemm::Gemm(a.data(), b.data(), c.data(), 6, 0, 9);
  gemm::GemmBt(a.data(), b.data(), c.data(), 6, 0, 9);
  EXPECT_EQ(c, before);
  // GemmAtB with m=0 is the matching empty case (C is [k,n]).
  std::vector<float> c2 = RandomVec(4 * 9, &rng);
  const std::vector<float> before2 = c2;
  gemm::GemmAtB(a.data(), b.data(), c2.data(), 0, 4, 9);
  EXPECT_EQ(c2, before2);
}

// ---- ops-level forward + gradients ----------------------------------------

Tensor RandomTensor(std::vector<std::int64_t> dims, Rng* rng) {
  std::int64_t numel = 1;
  for (auto d : dims) numel *= d;
  Tensor t = Tensor::Zeros(std::move(dims));
  for (std::int64_t i = 0; i < numel; ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
  return t;
}

TEST(GemmOpsTest, BatchedMatMulForwardAndGradMatchNaive) {
  Rng rng(16);
  const std::int64_t batch = 3, m = 5, k = 11, n = 7;
  Tensor a = RandomTensor({batch, m, k}, &rng).set_requires_grad(true);
  Tensor b = RandomTensor({batch, k, n}, &rng).set_requires_grad(true);
  Tensor out = ops::BatchedMatMul(a, b);
  ASSERT_EQ(out.dim(0), batch);
  ASSERT_EQ(out.dim(1), m);
  ASSERT_EQ(out.dim(2), n);

  std::vector<float> ref(static_cast<std::size_t>(batch * m * n), 0.0f);
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    RefGemm(a.data() + bi * m * k, b.data() + bi * k * n,
            ref.data() + bi * m * n, m, k, n);
  }
  for (std::int64_t i = 0; i < batch * m * n; ++i) {
    EXPECT_FLOAT_EQ(out.at(i), ref[i]);
  }

  ops::SumAll(out).Backward();
  ASSERT_NE(a.grad_data(), nullptr);
  ASSERT_NE(b.grad_data(), nullptr);
  // d(sum)/dA[bi] = 1 * B[bi]^T, d(sum)/dB[bi] = A[bi]^T * 1.
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t p = 0; p < k; ++p) {
        float want = 0.0f;
        for (std::int64_t j = 0; j < n; ++j) {
          want += b.at(bi * k * n + p * n + j);
        }
        EXPECT_NEAR(a.grad_data()[bi * m * k + i * k + p], want, 1e-4f);
      }
    }
    for (std::int64_t p = 0; p < k; ++p) {
      for (std::int64_t j = 0; j < n; ++j) {
        float want = 0.0f;
        for (std::int64_t i = 0; i < m; ++i) {
          want += a.at(bi * m * k + i * k + p);
        }
        EXPECT_NEAR(b.grad_data()[bi * k * n + p * n + j], want, 1e-4f);
      }
    }
  }
}

TEST(GemmOpsTest, BatchedMatMulBtMatchesExplicitTranspose) {
  Rng rng(17);
  const std::int64_t batch = 4, m = 6, k = 9, n = 5;
  Tensor a = RandomTensor({batch, m, k}, &rng).set_requires_grad(true);
  Tensor b = RandomTensor({batch, n, k}, &rng).set_requires_grad(true);

  Tensor direct = ops::BatchedMatMulBt(a, b);
  Tensor via_t = ops::BatchedMatMul(a, ops::Permute3(b, {0, 2, 1}));
  ASSERT_EQ(direct.numel(), via_t.numel());
  for (std::int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_FLOAT_EQ(direct.at(i), via_t.at(i)) << "elem " << i;
  }

  // Gradients of the fused op against the transpose-then-matmul composition.
  ops::SumAll(direct).Backward();
  std::vector<float> da(a.grad_data(), a.grad_data() + a.numel());
  std::vector<float> db(b.grad_data(), b.grad_data() + b.numel());
  a.ZeroGrad();
  b.ZeroGrad();
  ops::SumAll(ops::BatchedMatMul(a, ops::Permute3(b, {0, 2, 1}))).Backward();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(da[i], a.grad_data()[i], 1e-4f);
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    EXPECT_NEAR(db[i], b.grad_data()[i], 1e-4f);
  }
}

// ---- determinism across thread counts -------------------------------------

class ThreadSweepTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ThreadPool::Instance().num_threads(); }
  void TearDown() override { ThreadPool::Instance().SetNumThreads(saved_); }

 private:
  int saved_ = 1;
};

TEST_F(ThreadSweepTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(18);
  // Big enough that every variant actually dispatches multiple chunks.
  // k == n so the same square [64, 64] buffer serves as B [k, n] for the
  // plain kernel and as B^T [n, k] for the Bt variant.
  const std::int64_t batch = 4, m = 96, k = 64, n = 64;
  std::vector<float> a = RandomVec(batch * m * k, &rng);
  std::vector<float> b = RandomVec(batch * k * n, &rng);

  const std::int64_t out_mn = batch * m * n;   // BatchedGemm / BatchedGemmBt
  const std::int64_t out_kk = batch * k * k;   // BatchedGemmAtB: C = A^T A
  auto run_all = [&](int threads) {
    ThreadPool::Instance().SetNumThreads(threads);
    std::vector<float> out(static_cast<std::size_t>(2 * out_mn + out_kk),
                           0.0f);
    gemm::BatchedGemm(a.data(), b.data(), out.data(), batch, m, k, n);
    gemm::BatchedGemmBt(a.data(), b.data(), out.data() + out_mn, batch, m, k,
                        n);
    gemm::BatchedGemmAtB(a.data(), a.data(), out.data() + 2 * out_mn, batch,
                         m, k, k);
    return out;
  };
  const std::vector<float> one = run_all(1);
  for (int threads : {2, 4, 7}) {
    const std::vector<float> many = run_all(threads);
    ASSERT_EQ(one.size(), many.size());
    EXPECT_EQ(0, std::memcmp(one.data(), many.data(),
                             one.size() * sizeof(float)))
        << threads << " threads diverged from 1 thread";
  }
}

TEST_F(ThreadSweepTest, TrainingStepBitwiseIdenticalAcrossThreadCounts) {
  // Forward + backward through ops that use every parallel path (GEMM,
  // elementwise, row reductions) must not depend on the pool size.
  auto run = [](int threads) {
    ThreadPool::Instance().SetNumThreads(threads);
    Rng rng(19);
    Tensor x = RandomTensor({64, 96}, &rng).set_requires_grad(true);
    Tensor w = RandomTensor({96, 96}, &rng).set_requires_grad(true);
    Tensor h = ops::Gelu(ops::MatMul(x, w));
    Tensor y = ops::Softmax(h);
    Tensor loss = ops::SumAll(ops::Mul(y, h));
    loss.Backward();
    std::vector<float> out;
    out.push_back(loss.item());
    out.insert(out.end(), x.grad_data(), x.grad_data() + x.numel());
    out.insert(out.end(), w.grad_data(), w.grad_data() + w.numel());
    return out;
  };
  const std::vector<float> one = run(1);
  const std::vector<float> four = run(4);
  ASSERT_EQ(one.size(), four.size());
  EXPECT_EQ(0, std::memcmp(one.data(), four.data(),
                           one.size() * sizeof(float)));
}

TEST_F(ThreadSweepTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool::Instance().SetNumThreads(4);
  for (std::int64_t n : {1, 2, 63, 64, 65, 1000}) {
    for (std::int64_t grain : {1, 7, 64, 4096}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      ParallelFor(0, n, grain, [&](std::int64_t s, std::int64_t e) {
        // Chunks are disjoint, so unsynchronized writes are race-free.
        for (std::int64_t i = s; i < e; ++i) ++hits[i];
      });
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i], 1) << "n=" << n << " grain=" << grain
                              << " index " << i;
      }
    }
  }
}

}  // namespace
}  // namespace tfmae
