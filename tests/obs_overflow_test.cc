// Registry cap-exhaustion tests. These permanently fill the process-wide
// registration tables (Reset() zeroes values but keeps names), so they live
// in their own test binary: nothing else can share this process and expect
// free registry slots.
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tfmae::obs {
namespace {

TEST(RegistryOverflowTest, CounterTableOverflowsToSentinelAndIsCounted) {
  Registry& reg = Registry::Instance();
  // Slot 0 is pre-taken by the overflow counter itself.
  EXPECT_EQ(reg.CounterId("obs.registry.overflow"), 0);
  int registered = 0;
  for (int i = 0; i < kMaxCounters; ++i) {
    const int id = reg.CounterId("overflow.counter." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxCounters);
    ++registered;
  }
  // The table held kMaxCounters - 1 new names on top of the builtin.
  EXPECT_EQ(registered, kMaxCounters - 1);

  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  EXPECT_EQ(reg.CounterId("overflow.counter.one_too_many"), kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  // Re-registering an existing name still works at capacity.
  EXPECT_EQ(reg.CounterId("overflow.counter.0"),
            reg.CounterId("overflow.counter.0"));
  // Recording against the sentinel is a safe no-op.
  reg.CounterAdd(kInvalidMetricId, 17);
  EXPECT_EQ(reg.CounterValue("overflow.counter.one_too_many"), 0u);
}

TEST(RegistryOverflowTest, GaugeTableOverflowsToSentinel) {
  Registry& reg = Registry::Instance();
  int registered = 0;
  for (int i = 0; i < kMaxGauges; ++i) {
    const int id = reg.GaugeId("overflow.gauge." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    ++registered;
  }
  EXPECT_EQ(registered, kMaxGauges);
  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  const int id = reg.GaugeId("overflow.gauge.one_too_many");
  EXPECT_EQ(id, kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  reg.GaugeSet(id, 42);  // safe no-op
  reg.GaugeMax(id, 42);  // safe no-op
}

TEST(RegistryOverflowTest, HistogramTableOverflowsToSentinel) {
  Registry& reg = Registry::Instance();
  int registered = 0;
  for (int i = 0; i < kMaxHistograms; ++i) {
    const int id = reg.HistogramId("overflow.hist." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    ++registered;
  }
  EXPECT_EQ(registered, kMaxHistograms);
  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  const int id = reg.HistogramId("overflow.hist.one_too_many");
  EXPECT_EQ(id, kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  reg.HistogramRecord(id, 123);  // safe no-op
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Histogram("overflow.hist.one_too_many"), nullptr);
}

}  // namespace
}  // namespace tfmae::obs
