// Registry cap-exhaustion tests. These permanently fill the process-wide
// registration tables (Reset() zeroes values but keeps names), so they live
// in their own test binary: nothing else can share this process and expect
// free registry slots.
//
// The HistogramSnapshot quantile edge-case suite also lives here: it is
// registry-free (snapshots constructed by hand), and keeping the quantile
// contract next to the cap contract means one binary pins everything the
// exporter math relies on at the registry's documented limits.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tfmae::obs {
namespace {

// ---- Quantile / Percentile edge cases ------------------------------------

TEST(HistogramQuantileEdgeTest, EmptySnapshotIsZeroEverywhere) {
  HistogramSnapshot h;
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramQuantileEdgeTest, OutOfRangePIsClampedNotExtrapolated) {
  HistogramSnapshot h;
  h.buckets[HistogramBucket(10)] = 4;  // bucket 4: [8, 16)
  h.count = 4;
  h.sum = 40;
  h.min = 10;
  h.max = 10;
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 10.0);  // clamped to observed min
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);  // clamped to observed max
}

TEST(HistogramQuantileEdgeTest, AllMassInBucketZeroIsExactlyZero) {
  HistogramSnapshot h;
  h.buckets[HistogramBucket(0)] = 100;  // bucket 0 holds only the value 0
  h.count = 100;
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(p), 0.0) << "p=" << p;
    EXPECT_EQ(h.Percentile(p), 0.0) << "p=" << p;
  }
}

TEST(HistogramQuantileEdgeTest, SingleSampleIsReturnedAtEveryP) {
  HistogramSnapshot h;
  h.buckets[HistogramBucket(777)] = 1;
  h.count = 1;
  h.sum = 777;
  h.min = 777;
  h.max = 777;
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(p), 777.0) << "p=" << p;
  }
}

TEST(HistogramQuantileEdgeTest, TopBucketValuesDoNotOverflowTheMath) {
  // Bucket 63 spans [2^62, 2^64): the interpolation exponentiates b-1+f,
  // which must stay finite in double for the largest representable bucket.
  HistogramSnapshot h;
  const std::uint64_t huge = ~0ull;  // all-ones lands in the last bucket
  h.buckets[HistogramBucket(huge)] = 2;
  h.count = 2;
  h.sum = ~0ull;  // saturated; irrelevant to quantiles
  h.min = huge - 1;
  h.max = huge;
  for (double p : {0.0, 0.5, 1.0}) {
    const double q = h.Quantile(p);
    EXPECT_TRUE(std::isfinite(q)) << "p=" << p;
    EXPECT_GE(q, static_cast<double>(h.min));
    EXPECT_LE(q, static_cast<double>(h.max));
  }
}

TEST(HistogramQuantileEdgeTest, QuantileIsMonotoneInP) {
  HistogramSnapshot h;
  // Spread mass across several buckets including empty gaps.
  h.buckets[HistogramBucket(1)] = 3;
  h.buckets[HistogramBucket(50)] = 5;
  h.buckets[HistogramBucket(5000)] = 2;
  h.count = 10;
  h.min = 1;
  h.max = 5000;
  double previous = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = h.Quantile(p);
    EXPECT_GE(q, previous) << "p=" << p;
    previous = q;
  }
}

// ---- Cap exhaustion -------------------------------------------------------

TEST(RegistryOverflowTest, CounterTableOverflowsToSentinelAndIsCounted) {
  Registry& reg = Registry::Instance();
  // Slot 0 is pre-taken by the overflow counter itself.
  EXPECT_EQ(reg.CounterId("obs.registry.overflow"), 0);
  int registered = 0;
  int last_id = kInvalidMetricId;
  for (int i = 0; i < kMaxCounters; ++i) {
    const int id = reg.CounterId("overflow.counter." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxCounters);
    last_id = id;
    ++registered;
  }
  // The table held kMaxCounters - 1 new names on top of the builtin.
  EXPECT_EQ(registered, kMaxCounters - 1);

  // Near-cap behavior: the very last slot is a fully functional counter,
  // not a degraded one — recording and snapshotting work at capacity.
  reg.CounterAdd(last_id, 29);
  EXPECT_EQ(reg.CounterValue("overflow.counter." +
                             std::to_string(registered - 1)),
            29u);

  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  EXPECT_EQ(reg.CounterId("overflow.counter.one_too_many"), kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  // Re-registering an existing name still works at capacity.
  EXPECT_EQ(reg.CounterId("overflow.counter.0"),
            reg.CounterId("overflow.counter.0"));
  // Recording against the sentinel is a safe no-op.
  reg.CounterAdd(kInvalidMetricId, 17);
  EXPECT_EQ(reg.CounterValue("overflow.counter.one_too_many"), 0u);

  // A full table snapshots completely: every registered name is present.
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(static_cast<int>(snap.counters.size()), kMaxCounters);
}

TEST(RegistryOverflowTest, GaugeTableOverflowsToSentinel) {
  Registry& reg = Registry::Instance();
  int registered = 0;
  for (int i = 0; i < kMaxGauges; ++i) {
    const int id = reg.GaugeId("overflow.gauge." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    ++registered;
  }
  EXPECT_EQ(registered, kMaxGauges);
  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  const int id = reg.GaugeId("overflow.gauge.one_too_many");
  EXPECT_EQ(id, kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  reg.GaugeSet(id, 42);  // safe no-op
  reg.GaugeMax(id, 42);  // safe no-op
}

TEST(RegistryOverflowTest, HistogramTableOverflowsToSentinel) {
  Registry& reg = Registry::Instance();
  int registered = 0;
  int last_id = kInvalidMetricId;
  for (int i = 0; i < kMaxHistograms; ++i) {
    const int id = reg.HistogramId("overflow.hist." + std::to_string(i));
    if (id == kInvalidMetricId) break;
    last_id = id;
    ++registered;
  }
  EXPECT_EQ(registered, kMaxHistograms);
  const std::uint64_t before = reg.CounterValue("obs.registry.overflow");
  const int id = reg.HistogramId("overflow.hist.one_too_many");
  EXPECT_EQ(id, kInvalidMetricId);
  EXPECT_EQ(reg.CounterValue("obs.registry.overflow"), before + 1);
  reg.HistogramRecord(id, 123);  // safe no-op
  // The last in-cap slot still records and quantiles correctly.
  reg.HistogramRecord(last_id, 4096);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Histogram("overflow.hist.one_too_many"), nullptr);
  const HistogramSnapshot* last = snap.Histogram(
      "overflow.hist." + std::to_string(registered - 1));
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->count, 1u);
  EXPECT_EQ(last->sum, 4096u);
  EXPECT_DOUBLE_EQ(last->Quantile(1.0), 4096.0);
}

}  // namespace
}  // namespace tfmae::obs
