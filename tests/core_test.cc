// Tests for the TFMAE core: window preparation, the dual autoencoder's
// shapes and gradient routing, the adversarial contrastive objective's
// stop-gradient semantics, ablation variants, scoring, and the detector's
// end-to-end behaviour on planted anomalies.
#include <cmath>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/model.h"
#include "data/generator.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace tfmae::core {
namespace {

std::vector<float> ToyWindow(std::int64_t length, std::int64_t features,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<std::size_t>(length * features));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(
        std::sin(0.3 * static_cast<double>(i)) + 0.1 * rng.Normal());
  }
  return values;
}

TfmaeConfig SmallConfig() {
  TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 2;
  config.stride = 16;
  return config;
}

TEST(TfmaeModelTest, PrepareWindowSplitsMaskConsistently) {
  TfmaeConfig config = SmallConfig();
  config.temporal_mask_ratio = 0.25;
  Rng rng(1);
  TfmaeModel model(2, config, &rng);
  Rng mask_rng(2);
  const MaskedWindow window =
      model.PrepareWindow(ToyWindow(32, 2, 3), &mask_rng);
  EXPECT_EQ(window.length, 32);
  EXPECT_EQ(window.temporal.masked.size(), 8u);  // 25% of 32
  EXPECT_EQ(window.temporal.unmasked.size(), 24u);
  EXPECT_EQ(window.frequency.size(), 2u);
  for (const auto& column : window.frequency) {
    EXPECT_EQ(column.base.size(), 32u);
    EXPECT_EQ(column.masked_bins.size(),
              static_cast<std::size_t>(0.3 * 32));  // default ratio 0.3
  }
}

TEST(TfmaeModelTest, ForwardShapesAndFiniteness) {
  TfmaeConfig config = SmallConfig();
  Rng rng(4);
  TfmaeModel model(3, config, &rng);
  Rng mask_rng(5);
  const MaskedWindow window =
      model.PrepareWindow(ToyWindow(32, 3, 6), &mask_rng);
  const TfmaeModel::Views views = model.Forward(window);
  EXPECT_EQ(views.temporal.shape(), (Shape{32, 16}));
  EXPECT_EQ(views.frequency.shape(), (Shape{32, 16}));
  for (std::int64_t i = 0; i < views.temporal.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(views.temporal.at(i)));
    EXPECT_TRUE(std::isfinite(views.frequency.at(i)));
  }
}

TEST(TfmaeModelTest, LossIsFiniteScalar) {
  TfmaeConfig config = SmallConfig();
  Rng rng(7);
  TfmaeModel model(1, config, &rng);
  Rng mask_rng(8);
  const MaskedWindow window =
      model.PrepareWindow(ToyWindow(32, 1, 9), &mask_rng);
  const Tensor loss = model.Loss(model.Forward(window));
  EXPECT_EQ(loss.numel(), 1);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(TfmaeModelTest, StopGradientRoutesUpdatesToIntendedBranch) {
  // With the paper-faithful objective (no joint alignment), the minimizing
  // stage must not push gradients into the temporal branch through the
  // detached view, and vice versa — but the adversarial stage feeds the
  // temporal side. Check: with adversarial off, temporal-branch parameters
  // receive zero gradient.
  TfmaeConfig config = SmallConfig();
  config.use_adversarial = false;
  config.joint_alignment = false;
  Rng rng(10);
  TfmaeModel model(1, config, &rng);
  Rng mask_rng(11);
  const MaskedWindow window =
      model.PrepareWindow(ToyWindow(32, 1, 12), &mask_rng);
  model.ZeroGrad();
  model.Loss(model.Forward(window)).Backward();

  double temporal_grad = 0.0;
  double frequency_grad = 0.0;
  for (const auto& [name, param] : model.NamedParameters()) {
    if (param.grad_data() == nullptr) continue;
    double norm = 0.0;
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      norm += std::abs(param.grad_data()[i]);
    }
    if (name.find("temporal") != std::string::npos) temporal_grad += norm;
    if (name.find("frequency") != std::string::npos) frequency_grad += norm;
  }
  EXPECT_EQ(temporal_grad, 0.0);
  EXPECT_GT(frequency_grad, 0.0);
}

TEST(TfmaeModelTest, AdversarialStageFeedsTemporalBranch) {
  TfmaeConfig config = SmallConfig();
  config.use_adversarial = true;
  config.joint_alignment = false;
  Rng rng(13);
  TfmaeModel model(1, config, &rng);
  Rng mask_rng(14);
  const MaskedWindow window =
      model.PrepareWindow(ToyWindow(32, 1, 15), &mask_rng);
  model.ZeroGrad();
  model.Loss(model.Forward(window)).Backward();
  double temporal_grad = 0.0;
  for (const auto& [name, param] : model.NamedParameters()) {
    if (param.grad_data() == nullptr ||
        name.find("temporal") == std::string::npos) {
      continue;
    }
    for (std::int64_t i = 0; i < param.numel(); ++i) {
      temporal_grad += std::abs(param.grad_data()[i]);
    }
  }
  EXPECT_GT(temporal_grad, 0.0);
}

// Every Table IV / Table V ablation variant must run end to end.
struct AblationCase {
  const char* name;
  void (*apply)(TfmaeConfig*);
};

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationTest, VariantTrainsAndScores) {
  TfmaeConfig config = SmallConfig();
  config.epochs = 1;
  GetParam().apply(&config);

  data::BaseSignalConfig signal;
  signal.length = 200;
  signal.num_features = 2;
  signal.seed = 31;
  data::TimeSeries train = data::GenerateBaseSignal(signal);

  TfmaeDetector detector(config);
  detector.Fit(train);
  const std::vector<float> scores = detector.Score(train);
  ASSERT_EQ(scores.size(), 200u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AblationTest,
    ::testing::Values(
        AblationCase{"wo_adv",
                     [](TfmaeConfig* c) { c->use_adversarial = false; }},
        AblationCase{"w_radv",
                     [](TfmaeConfig* c) { c->reverse_adversarial = true; }},
        AblationCase{"wo_fre",
                     [](TfmaeConfig* c) { c->use_frequency_branch = false; }},
        AblationCase{"wo_fd",
                     [](TfmaeConfig* c) { c->use_frequency_decoder = false; }},
        AblationCase{"wo_tem",
                     [](TfmaeConfig* c) { c->use_temporal_branch = false; }},
        AblationCase{"wo_te",
                     [](TfmaeConfig* c) { c->use_temporal_encoder = false; }},
        AblationCase{"wo_td",
                     [](TfmaeConfig* c) { c->use_temporal_decoder = false; }},
        AblationCase{"wo_mt",
                     [](TfmaeConfig* c) {
                       c->temporal_mask = masking::TemporalMaskVariant::kNone;
                     }},
        AblationCase{"w_smt",
                     [](TfmaeConfig* c) {
                       c->temporal_mask = masking::TemporalMaskVariant::kStdDev;
                     }},
        AblationCase{"w_rmt",
                     [](TfmaeConfig* c) {
                       c->temporal_mask = masking::TemporalMaskVariant::kRandom;
                     }},
        AblationCase{"wo_mf",
                     [](TfmaeConfig* c) {
                       c->frequency_mask = masking::FrequencyMaskVariant::kNone;
                     }},
        AblationCase{"w_hmf",
                     [](TfmaeConfig* c) {
                       c->frequency_mask =
                           masking::FrequencyMaskVariant::kHighFrequency;
                     }},
        AblationCase{"w_rmf",
                     [](TfmaeConfig* c) {
                       c->frequency_mask =
                           masking::FrequencyMaskVariant::kRandom;
                     }},
        AblationCase{"wo_fft", [](TfmaeConfig* c) {
                       c->cv_method = masking::CvMethod::kNaive;
                     }}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.name;
    });

TEST(TfmaeDetectorTest, ScoreBeforeFitDies) {
  TfmaeDetector detector(SmallConfig());
  data::TimeSeries series = data::TimeSeries::Zeros(100, 1);
  EXPECT_DEATH(detector.Score(series), "Fit");
}

TEST(TfmaeDetectorTest, DetectsPlantedSpikes) {
  // Clean periodic train, test with strong planted spikes: the spike scores
  // must dominate the normal scores.
  data::BaseSignalConfig signal;
  signal.length = 900;
  signal.num_features = 1;
  signal.noise_std = 0.03;
  signal.seed = 41;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries train = full.Slice(0, 600);
  data::TimeSeries test = full.Slice(600, 300);
  test.labels.assign(300, 0);
  for (std::int64_t t : {60, 150, 240}) {
    test.at(t, 0) += 6.0f;
    test.labels[static_cast<std::size_t>(t)] = 1;
  }

  TfmaeConfig config = SmallConfig();
  config.epochs = 20;
  config.stride = 8;
  config.score_stride = 8;
  TfmaeDetector detector(config);
  detector.Fit(train);
  const std::vector<float> scores = detector.Score(test);
  const double auroc = eval::Auroc(scores, test.labels);
  EXPECT_GT(auroc, 0.9) << "spikes not separated (AUROC " << auroc << ")";
  EXPECT_GT(detector.train_stats().num_steps, 0);
  EXPECT_GT(detector.train_stats().fit_seconds, 0.0);
  EXPECT_GT(detector.train_stats().peak_tensor_bytes, 0);
}

TEST(TfmaeDetectorTest, ModelCheckpointRoundTrip) {
  data::BaseSignalConfig signal;
  signal.length = 300;
  signal.num_features = 2;
  signal.seed = 51;
  data::TimeSeries train = data::GenerateBaseSignal(signal);
  TfmaeConfig config = SmallConfig();
  config.epochs = 1;
  TfmaeDetector detector(config);
  detector.Fit(train);

  const std::string path = ::testing::TempDir() + "/tfmae_model.bin";
  ASSERT_TRUE(nn::SaveParameters(*detector.model(), path));

  TfmaeDetector reloaded(config);
  reloaded.Fit(train);  // same seed -> same architecture; then overwrite
  ASSERT_TRUE(nn::LoadParameters(reloaded.model(), path));
  // Identical parameters -> identical scores.
  const auto s1 = detector.Score(train);
  const auto s2 = reloaded.Score(train);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i], s2[i], 1e-5);
  }
  std::remove(path.c_str());
}

TEST(RunProtocolTest, ProducesConsistentReport) {
  data::DatasetProfile profile =
      data::GetProfile(data::BenchmarkDataset::kNipsTsGlobal, 0.3);
  data::LabeledDataset dataset = data::MakeDataset(profile);
  TfmaeConfig config = SmallConfig();
  config.epochs = 5;
  TfmaeDetector detector(config);
  const eval::DetectionReport report =
      RunProtocol(&detector, dataset, 0.03);
  EXPECT_GE(report.adjusted.f1, report.raw.f1 - 1e-12);
  EXPECT_GE(report.auroc, 0.0);
  EXPECT_LE(report.auroc, 1.0);
}

}  // namespace
}  // namespace tfmae::core
