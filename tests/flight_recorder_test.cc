// Tests for the crash flight recorder (src/obs/flight_recorder): postmortem
// round trips, ring-wrap retention, the ledger tee, the async-signal-safe
// dump path, and — in instrumented fault builds — the black box left behind
// by an injected training interrupt and by a real fatal signal.
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "data/generator.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace tfmae::obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("tfmae_fr_" + name))
      .string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override { FlightRecorder::Instance().Disarm(); }
};

TEST_F(FlightRecorderTest, DumpRoundTripsNotesAndCounters) {
  const std::string path = TempPath("roundtrip.json");
  std::filesystem::remove(path);
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Arm(path);
  ASSERT_TRUE(recorder.armed());
  recorder.Note("guard", "nonfinite loss at step 12");
  recorder.Note("fault", "detail with \"quotes\" and a\ttab");
  EXPECT_EQ(recorder.notes_recorded(), 2u);
  Registry::Instance().CounterAdd(Registry::Instance().CounterId("fr.test"), 3);
  ASSERT_TRUE(recorder.Dump("unit_test"));

  const std::string doc = Slurp(path);
  EXPECT_NE(doc.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"guard\""), std::string::npos);
  EXPECT_NE(doc.find("nonfinite loss at step 12"), std::string::npos);
  // Detail text is JSON-escaped.
  EXPECT_NE(doc.find("\\\"quotes\\\" and a\\u0009tab"), std::string::npos);
  // Normal-path dumps carry the nonzero-counter appendix.
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"fr.test\": 3"), std::string::npos);
  // No signal field on a non-signal dump.
  EXPECT_EQ(doc.find("\"signal\":"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(FlightRecorderTest, RingKeepsNewestEntriesAfterWrap) {
  const std::string path = TempPath("wrap.json");
  std::filesystem::remove(path);
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Arm(path);
  const int total = FlightRecorder::kMaxEntries + 44;
  for (int i = 0; i < total; ++i) {
    recorder.Note("tick", "note number " + std::to_string(i));
  }
  EXPECT_EQ(recorder.notes_recorded(), static_cast<std::uint64_t>(total));
  ASSERT_TRUE(recorder.Dump("wrap_test"));

  const std::string doc = Slurp(path);
  // The oldest 44 notes fell off; the newest kMaxEntries survive, oldest
  // first ("n" is the monotone note index).
  EXPECT_EQ(doc.find("\"n\":43,"), std::string::npos);
  EXPECT_NE(doc.find("\"n\":44,"), std::string::npos);
  EXPECT_NE(doc.find("note number " + std::to_string(total - 1)),
            std::string::npos);
  // Oldest-first ordering.
  EXPECT_LT(doc.find("\"n\":44,"), doc.find("\"n\":45,"));
  std::filesystem::remove(path);
}

TEST_F(FlightRecorderTest, DisarmedRecorderIsInert) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Disarm();
  recorder.Note("guard", "should vanish");
  EXPECT_FALSE(recorder.Dump("nowhere"));
  EXPECT_FALSE(recorder.DumpSignalSafe("nowhere", SIGSEGV));
}

TEST_F(FlightRecorderTest, LedgerLinesTeeIntoTheRing) {
  const std::string ledger_path = TempPath("tee.jsonl");
  const std::string pm_path = TempPath("tee_pm.json");
  std::filesystem::remove(pm_path);
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Arm(pm_path);

  Ledger ledger;
  RunManifest manifest;
  manifest.tool = "fr_test";
  manifest.run_id = "tee";
  ASSERT_TRUE(ledger.Open(ledger_path, manifest));
  ledger.Step(7, 0.125, 0.5, 1e-3);
  ledger.Abandon();
  ASSERT_TRUE(recorder.Dump("tee_test"));

  // The postmortem's tail is the exact ledger lines (escaped), so the black
  // box ends with the event stream the run died holding.
  const std::string doc = Slurp(pm_path);
  EXPECT_NE(doc.find("\"kind\":\"ledger\""), std::string::npos);
  EXPECT_NE(doc.find("\\\"type\\\":\\\"step\\\""), std::string::npos);
  EXPECT_NE(doc.find("\\\"loss\\\":0.125"), std::string::npos);
  std::filesystem::remove(pm_path);
  std::error_code ec;
  std::filesystem::remove(ledger_path, ec);
  std::filesystem::remove(ledger_path + ".partial", ec);
}

TEST_F(FlightRecorderTest, SignalSafeDumpRecordsSignalNumber) {
  const std::string path = TempPath("sigsafe.json");
  std::filesystem::remove(path);
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Arm(path);
  recorder.Note("guard", "last words");
  ASSERT_TRUE(recorder.DumpSignalSafe("fatal_signal", SIGABRT));

  const std::string doc = Slurp(path);
  EXPECT_NE(doc.find("\"reason\":\"fatal_signal\""), std::string::npos);
  EXPECT_NE(doc.find("\"signal\":" + std::to_string(SIGABRT)),
            std::string::npos);
  EXPECT_NE(doc.find("last words"), std::string::npos);
  // Signal-path dumps skip the registry appendix (not signal-safe).
  EXPECT_EQ(doc.find("\"counters\":"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(FlightRecorderTest, ReArmingClearsTheRing) {
  const std::string path = TempPath("rearm.json");
  std::filesystem::remove(path);
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Arm(TempPath("rearm_old.json"));
  recorder.Note("stale", "from the previous run");
  recorder.Arm(path);
  recorder.Note("fresh", "from this run");
  ASSERT_TRUE(recorder.Dump("rearm_test"));
  const std::string doc = Slurp(path);
  EXPECT_EQ(doc.find("from the previous run"), std::string::npos);
  EXPECT_NE(doc.find("from this run"), std::string::npos);
  std::filesystem::remove(path);
}

// Acceptance path: an injected training fault leaves a postmortem naming the
// fault, with the tail of the run ledger teed into the black box.
TEST_F(FlightRecorderTest, InjectedTrainFaultLeavesPostmortem) {
  if (!CompiledIn() || !fault::CompiledIn()) {
    GTEST_SKIP() << "needs -DTFMAE_OBS=ON and -DTFMAE_FAULTS=ON";
  }
  const std::string pm_path = TempPath("fault_pm.json");
  const std::string ledger_path = TempPath("fault_run.jsonl");
  std::filesystem::remove(pm_path);
  FlightRecorder::Instance().Arm(pm_path);
  RunManifest manifest;
  manifest.tool = "fr_test";
  manifest.run_id = "fault";
  ASSERT_TRUE(Ledger::Instance().Open(ledger_path, manifest));

  data::BaseSignalConfig signal;
  signal.length = 128;
  signal.num_features = 2;
  signal.seed = 5;
  core::TfmaeConfig config;
  config.window = 16;
  config.stride = 8;
  config.model_dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 16;
  config.epochs = 2;
  core::TfmaeDetector detector(config);
  {
    fault::ScopedFaults faults("train.interrupt:#3");
    detector.Fit(data::GenerateBaseSignal(signal));
  }
  EXPECT_TRUE(detector.train_stats().interrupted);
  Ledger::Instance().Abandon();

  ASSERT_TRUE(std::filesystem::exists(pm_path));
  const std::string doc = Slurp(pm_path);
  EXPECT_NE(doc.find("\"reason\":\"injected_fault\""), std::string::npos);
  EXPECT_NE(doc.find("train.interrupt"), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"ledger\""), std::string::npos);
  std::filesystem::remove(pm_path);
  std::error_code ec;
  std::filesystem::remove(ledger_path, ec);
  std::filesystem::remove(ledger_path + ".partial", ec);
}

// A real fatal signal: the handler writes the black box before the default
// disposition kills the (death-test child) process, and the parent can read
// it afterwards.
TEST_F(FlightRecorderTest, FatalSignalWritesPostmortemBeforeDying) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = TempPath("signal_pm.json");
  std::filesystem::remove(path);
  EXPECT_EXIT(
      {
        FlightRecorder& recorder = FlightRecorder::Instance();
        recorder.Arm(path);
        recorder.InstallSignalHandlers();
        recorder.Note("guard", "about to abort");
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string doc = Slurp(path);
  EXPECT_NE(doc.find("\"reason\":\"fatal_signal\""), std::string::npos);
  EXPECT_NE(doc.find("\"signal\":" + std::to_string(SIGABRT)),
            std::string::npos);
  EXPECT_NE(doc.find("about to abort"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tfmae::obs
