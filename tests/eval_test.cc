// Tests for the evaluation library: confusion/PRF arithmetic, AUROC,
// quantile thresholding (both protocols), point adjustment, and CDFs.
#include <gtest/gtest.h>

#include "eval/detection.h"
#include "eval/metrics.h"

namespace tfmae::eval {
namespace {

TEST(MetricsTest, ConfusionCounts) {
  const std::vector<std::uint8_t> pred = {1, 0, 1, 1, 0, 0};
  const std::vector<std::uint8_t> truth = {1, 0, 0, 1, 1, 0};
  const Confusion c = CountConfusion(pred, truth);
  EXPECT_EQ(c.true_positive, 2);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.false_negative, 1);
  EXPECT_EQ(c.true_negative, 2);
}

TEST(MetricsTest, PrfKnownValues) {
  Confusion c;
  c.true_positive = 8;
  c.false_positive = 2;
  c.false_negative = 8;
  const PrfMetrics m = ComputePrf(c);
  EXPECT_DOUBLE_EQ(m.precision, 0.8);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_NEAR(m.f1, 2 * 0.8 * 0.5 / 1.3, 1e-12);
}

TEST(MetricsTest, PrfDegenerateCases) {
  // No predictions, no anomalies.
  const PrfMetrics m = ComputePrf(Confusion{});
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(MetricsTest, AurocPerfectAndInverted) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auroc(scores, labels), 1.0);
  const std::vector<std::uint8_t> inverted = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auroc(scores, inverted), 0.0);
}

TEST(MetricsTest, AurocTiesGiveHalfCredit) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<std::uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(Auroc(scores, labels), 0.5);
}

TEST(MetricsTest, AurocSingleClassIsChance) {
  const std::vector<float> scores = {0.1f, 0.9f};
  EXPECT_DOUBLE_EQ(Auroc(scores, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(Auroc(scores, {1, 1}), 0.5);
}

TEST(ThresholdTest, QuantileSelectsTopFraction) {
  std::vector<float> scores(100);
  for (int i = 0; i < 100; ++i) scores[static_cast<std::size_t>(i)] = i;
  const float threshold = QuantileThreshold(scores, 0.10);
  const auto predictions = ApplyThreshold(scores, threshold);
  std::int64_t flagged = 0;
  for (std::uint8_t p : predictions) flagged += p;
  EXPECT_EQ(flagged, 10);
}

TEST(PointAdjustTest, SegmentFullyCreditedOnSingleHit) {
  //               segment [2,5)            segment [7,9)
  const std::vector<std::uint8_t> labels = {0, 0, 1, 1, 1, 0, 0, 1, 1, 0};
  const std::vector<std::uint8_t> pred = {0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  const auto adjusted = PointAdjust(pred, labels);
  EXPECT_EQ(adjusted,
            (std::vector<std::uint8_t>{0, 0, 1, 1, 1, 0, 0, 0, 0, 0}));
}

TEST(PointAdjustTest, MissedSegmentsStayMissed) {
  const std::vector<std::uint8_t> labels = {1, 1, 0, 1, 1};
  const std::vector<std::uint8_t> pred = {0, 0, 1, 0, 0};
  const auto adjusted = PointAdjust(pred, labels);
  EXPECT_EQ(adjusted, (std::vector<std::uint8_t>{0, 0, 1, 0, 0}));
}

TEST(PointAdjustTest, FalsePositivesPreserved) {
  const std::vector<std::uint8_t> labels = {0, 0, 0};
  const std::vector<std::uint8_t> pred = {0, 1, 0};
  EXPECT_EQ(PointAdjust(pred, labels), pred);
}

TEST(DetectionTest, EndToEndProtocolValidationOnly) {
  // Validation scores in [0,1); test has an obvious anomaly at index 2.
  std::vector<float> val(200);
  for (int i = 0; i < 200; ++i) val[static_cast<std::size_t>(i)] = i / 200.0f;
  const std::vector<float> test = {0.1f, 0.2f, 5.0f, 0.3f};
  const std::vector<std::uint8_t> labels = {0, 0, 1, 0};
  const DetectionReport report = EvaluateDetection(
      val, test, labels, 0.01, ThresholdProtocol::kValidationOnly);
  EXPECT_EQ(report.adjusted.f1, 1.0);
  EXPECT_GT(report.auroc, 0.99);
}

TEST(DetectionTest, CombinedProtocolUsesTestScores) {
  // All validation scores tiny; combined protocol still finds a sensible
  // threshold because the test scores enter the pool.
  std::vector<float> val(100, 0.001f);
  std::vector<float> test(100, 0.5f);
  std::vector<std::uint8_t> labels(100, 0);
  test[50] = 10.0f;
  labels[50] = 1;
  const DetectionReport combined = EvaluateDetection(
      val, test, labels, 0.005, ThresholdProtocol::kCombined);
  EXPECT_EQ(combined.adjusted.f1, 1.0);
}

TEST(DetectionTest, RawVsAdjustedOrdering) {
  // Point adjustment can only improve recall, never hurt it.
  std::vector<float> val(50, 0.0f);
  std::vector<float> test = {0.f, 9.f, 0.f, 0.f, 0.f, 0.f};
  std::vector<std::uint8_t> labels = {0, 1, 1, 1, 0, 0};
  const DetectionReport report =
      EvaluateDetection(val, test, labels, 0.2, ThresholdProtocol::kCombined);
  EXPECT_GE(report.adjusted.recall, report.raw.recall);
  EXPECT_GE(report.adjusted.f1, report.raw.f1);
}

TEST(CdfTest, MonotoneAndBounded) {
  const std::vector<float> scores = {1, 2, 3, 4, 5};
  const auto cdf = EmpiricalCdf(scores, 0.0f, 6.0f, 13);
  ASSERT_EQ(cdf.size(), 13u);
  EXPECT_EQ(cdf.front().second, 0.0f);
  EXPECT_EQ(cdf.back().second, 1.0f);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
  }
  // F(3.0) = 3/5.
  EXPECT_NEAR(cdf[6].second, 0.6f, 1e-6);  // x = 3.0 at grid index 6
}

}  // namespace
}  // namespace tfmae::eval
