// tfmae_report — render run ledgers written by the --ledger= flag (see
// docs/OBSERVABILITY.md, "Run ledger & flight recorder").
//
//   tfmae_report RUN.jsonl             one-run summary
//   tfmae_report RUN_A.jsonl RUN_B.jsonl
//                                      summary of each run, then a diff:
//                                      per-epoch loss deltas and K-S
//                                      score-distribution drift
//   --no-timing                        suppress wall-clock-derived figures
//                                      (byte-stable output for goldens)
//   --epochs=N                         cap the per-epoch loss tables at N rows
//
// A crashed run's "<path>.partial" is picked up automatically when the
// sealed file does not exist; the report marks such runs "UNSEALED prefix".
// Exit status: 0 on success, 1 on usage error or an unreadable ledger.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/ledger.h"
#include "obs/report.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: tfmae_report [--no-timing] [--epochs=N] LEDGER "
               "[LEDGER_B]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  tfmae::obs::ReportOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-timing") {
      options.show_timing = false;
    } else if (arg.rfind("--epochs=", 0) == 0) {
      options.max_epoch_rows = std::atoi(arg.c_str() + 9);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tfmae_report: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2) return Usage();

  std::vector<tfmae::obs::LedgerFile> ledgers;
  for (const std::string& path : paths) {
    std::string error;
    auto file = tfmae::obs::ReadLedger(path, &error);
    if (!file.has_value()) {
      std::fprintf(stderr, "tfmae_report: cannot read %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    ledgers.push_back(std::move(*file));
  }

  for (const tfmae::obs::LedgerFile& file : ledgers) {
    std::fputs(tfmae::obs::RenderRunReport(file, options).c_str(), stdout);
  }
  if (ledgers.size() == 2) {
    std::fputs(
        tfmae::obs::RenderRunDiff(ledgers[0], ledgers[1], options).c_str(),
        stdout);
  }
  return 0;
}
