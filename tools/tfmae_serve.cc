// tfmae_serve — fleet-serving replay driver (docs/SERVING.md).
//
// Drives a serve::FleetServer with N concurrent streams from one process:
// trains (or loads) one shared detector, opens --streams streams, replays
// synthetic telemetry (or a CSV) through them with per-stream phase offsets,
// and prints the serving statistics: rows/sec, batched windows/sec, score
// latency quantiles, bytes/stream, and degraded-input health totals.
//
//   tfmae_serve --streams=1024 --threads=2 --batch_max=64 --rows=200
//   tfmae_serve --streams=256 --seconds=30       # run for a wall budget
//   tfmae_serve --csv=telemetry.csv --streams=64 # replay a CSV fleet
//   tfmae_serve --checkpoint=PREFIX ...          # reuse a saved detector
//   tfmae_serve --verify ...                     # also check batched ==
//                                                # sequential (exit 1 on drift)
//
//   tfmae_serve --quant=int8 ...                 # int8 scoring lanes
//                                                # (calibrates on train when
//                                                # the checkpoint has no
//                                                # .quant spec)
//
// Crash safety (docs/RESILIENCE.md, "Serving resilience"):
//
//   tfmae_serve --snapshot_dir=DIR --snapshot_every=K   # snapshot the whole
//                                                # fleet every K ticks
//   tfmae_serve --snapshot_dir=DIR --restore     # resume from the newest
//                                                # valid snapshot and re-feed
//                                                # each stream's tail
//   tfmae_serve --score_log=PATH                 # append "stream seq bits"
//                                                # per scored window (bits =
//                                                # the float32 score, hex) —
//                                                # what the chaos soak diffs
//
// Snapshots are cut at tick boundaries only, AFTER the tick's results are
// flushed to the score log, so everything a snapshot's stream states count
// as scored is durably logged; everything later is regenerated when the
// restored run re-feeds from total_pushed(stream). The union of a killed
// run's log and its resumed run's log therefore covers exactly the
// uninterrupted run's log, score bits included (the re-feed protocol
// assumes rows are never rejected, which holds for the clean synthetic
// replay the soak uses).
//
// Live observability (docs/OBSERVABILITY.md, "Live endpoints & SLOs"):
//
//   tfmae_serve --metrics_port=9464             # HTTP endpoints while serving:
//                                               #   /metrics  Prometheus text
//                                               #   /healthz  ok|degraded, 503
//                                               #             once draining
//                                               #   /statusz  ServeStats JSON
//                                               # (port 0 picks an ephemeral
//                                               # port, printed on stdout)
//   tfmae_serve --stats_every=100               # one-line JSON stats every
//                                               # N ticks on stdout
//   tfmae_serve --trace_sample=64 --obs_trace=F # sampled per-window stage
//                                               # timelines in the chrome trace
//   tfmae_serve --slo_latency_ms=50 --slo_staleness_rows=64
//                                               # per-stream SLO error budgets
//   tfmae_serve --drift_every=256               # online score-drift monitor
//                                               # vs the calibration reference
//
// Flags: --streams=N --threads=T --batch_max=B --rows=R --seconds=S
//        --window=W --hop=H --queue_capacity=Q --anomaly_fraction=F
//        --csv=PATH --checkpoint=PREFIX --save_checkpoint=PREFIX
//        --quant=int8|off --verify --quiet
//        --snapshot_dir=DIR --snapshot_every=K (default from env
//        TFMAE_SERVE_SNAPSHOT_EVERY) --restore --score_log=PATH
//        --shed_policy=reject|drop_oldest|block (default from env
//        TFMAE_SERVE_SHED_POLICY) --watchdog_ms=MS
//        --metrics_port=P --stats_every=N --trace_sample=N
//        --slo_latency_ms=MS --slo_staleness_rows=N
//        --drift_every=N --drift_threshold=F --drain_linger_ms=MS
// plus the shared observability flags of MaybeProfileFromArgs
// (--obs_json/--obs_trace/--obs_text/--ledger/--flight_recorder).
//
// Graceful drain: SIGTERM/SIGINT stop ingest at the next row; every admitted
// window is then scored (Drain), the stats are printed, and the process
// exits 0 — no admitted work is ever dropped on shutdown.
//
// Overload handling: a kOverloaded push self-services one Flush, then backs
// off exponentially (1 ms doubling to 64 ms) for up to 24 attempts before
// the row is dropped; every retry, nap, and drop is counted in the stats
// block ("backoff" line) instead of the old unbounded busy-spin.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/drift.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "data/io.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/prom_export.h"
#include "serve/fleet_server.h"
#include "serve/fleet_snapshot.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::int64_t IntFlag(int argc, char** argv, const char* prefix,
                     std::int64_t fallback) {
  const char* v = FlagValue(argc, argv, prefix);
  return v != nullptr ? std::atoll(v) : fallback;
}

// One deterministic replay row: stream `s` reads the shared series at a
// per-stream phase offset, so streams are decorrelated but reproducible.
std::vector<float> ReplayRow(const tfmae::data::TimeSeries& series,
                             std::int64_t stream, std::int64_t t) {
  const std::int64_t row =
      (t + 17 * stream) % series.length;
  std::vector<float> values(
      static_cast<std::size_t>(series.num_features));
  for (std::int64_t f = 0; f < series.num_features; ++f) {
    values[static_cast<std::size_t>(f)] = series.at(row, f);
  }
  return values;
}

// Appends every freshly scored window to the score log as
// "stream seq bits\n" (bits = the raw float32 score, zero-padded hex), the
// bitwise-comparable record the chaos soak diffs. Shed markers are skipped:
// they carry no score.
void LogResults(std::FILE* log, const std::vector<tfmae::serve::ScoredWindow>& results,
                std::int64_t* anomalies) {
  for (const auto& r : results) {
    if (r.is_anomaly) ++*anomalies;
    if (log == nullptr || r.shed) continue;
    std::uint32_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.score));
    std::memcpy(&bits, &r.score, sizeof(bits));
    std::fprintf(log, "%lld %lld %08x\n", static_cast<long long>(r.stream),
                 static_cast<long long>(r.seq),
                 static_cast<unsigned>(bits));
  }
}

}  // namespace

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);

  const std::int64_t streams = IntFlag(argc, argv, "--streams=", 1024);
  const std::int64_t threads = IntFlag(argc, argv, "--threads=", 1);
  const std::int64_t batch_max = IntFlag(argc, argv, "--batch_max=", 64);
  const std::int64_t rows = IntFlag(argc, argv, "--rows=", 200);
  const std::int64_t seconds = IntFlag(argc, argv, "--seconds=", 0);
  const std::int64_t window = IntFlag(argc, argv, "--window=", 32);
  const std::int64_t hop = IntFlag(argc, argv, "--hop=", 8);
  const std::int64_t queue_capacity =
      IntFlag(argc, argv, "--queue_capacity=", 4096);
  const char* csv_path = FlagValue(argc, argv, "--csv=");
  const char* checkpoint = FlagValue(argc, argv, "--checkpoint=");
  const char* save_checkpoint = FlagValue(argc, argv, "--save_checkpoint=");
  const double anomaly_fraction = [&] {
    const char* v = FlagValue(argc, argv, "--anomaly_fraction=");
    return v != nullptr ? std::atof(v) : 0.02;
  }();
  const char* quant_flag = FlagValue(argc, argv, "--quant=");
  const bool verify = HasFlag(argc, argv, "--verify");
  const bool quiet = HasFlag(argc, argv, "--quiet");
  const char* snapshot_dir = FlagValue(argc, argv, "--snapshot_dir=");
  const std::int64_t snapshot_every = [&] {
    // Flag wins; TFMAE_SERVE_SNAPSHOT_EVERY supplies the fleet-wide default.
    const char* v = FlagValue(argc, argv, "--snapshot_every=");
    if (v != nullptr) return static_cast<std::int64_t>(std::atoll(v));
    const char* env = std::getenv("TFMAE_SERVE_SNAPSHOT_EVERY");
    return env != nullptr ? static_cast<std::int64_t>(std::atoll(env))
                          : std::int64_t{0};
  }();
  const bool restore = HasFlag(argc, argv, "--restore");
  const char* score_log_path = FlagValue(argc, argv, "--score_log=");
  const char* shed_policy_name = [&]() -> const char* {
    const char* v = FlagValue(argc, argv, "--shed_policy=");
    if (v != nullptr) return v;
    return std::getenv("TFMAE_SERVE_SHED_POLICY");
  }();
  const std::int64_t watchdog_ms = IntFlag(argc, argv, "--watchdog_ms=", 0);
  // Live observability flags. --metrics_port is present/absent (0 is a valid
  // value: bind an ephemeral port and print it).
  const char* metrics_port_flag = FlagValue(argc, argv, "--metrics_port=");
  const std::int64_t metrics_port =
      metrics_port_flag != nullptr ? std::atoll(metrics_port_flag) : 0;
  const std::int64_t stats_every = IntFlag(argc, argv, "--stats_every=", 0);
  const std::int64_t trace_sample = IntFlag(argc, argv, "--trace_sample=", 0);
  const std::int64_t slo_latency_ms =
      IntFlag(argc, argv, "--slo_latency_ms=", 0);
  const std::int64_t slo_staleness_rows =
      IntFlag(argc, argv, "--slo_staleness_rows=", 0);
  const std::int64_t drift_every = IntFlag(argc, argv, "--drift_every=", 0);
  const double drift_threshold = [&] {
    const char* v = FlagValue(argc, argv, "--drift_threshold=");
    return v != nullptr ? std::atof(v) : 0.35;
  }();
  const std::int64_t drain_linger_ms =
      IntFlag(argc, argv, "--drain_linger_ms=", 0);
  if (quant_flag != nullptr && std::strcmp(quant_flag, "int8") != 0 &&
      std::strcmp(quant_flag, "off") != 0) {
    std::fprintf(stderr, "tfmae_serve: --quant must be int8 or off\n");
    return 1;
  }
  tfmae::serve::ShedPolicy shed_policy = tfmae::serve::ShedPolicy::kRejectNew;
  if (shed_policy_name != nullptr && shed_policy_name[0] != '\0') {
    const auto parsed = tfmae::serve::ParseShedPolicy(shed_policy_name);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "tfmae_serve: --shed_policy must be reject, drop_oldest, "
                   "or block (got %s)\n",
                   shed_policy_name);
      return 1;
    }
    shed_policy = *parsed;
  }
  if (streams < 1 || threads < 1 || window < 2 || hop < 1) {
    std::fprintf(stderr, "tfmae_serve: invalid flag value\n");
    return 1;
  }
  if (restore && snapshot_dir == nullptr) {
    std::fprintf(stderr, "tfmae_serve: --restore requires --snapshot_dir\n");
    return 1;
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  tfmae::ThreadPool::Instance().SetNumThreads(static_cast<int>(threads));

  // Replay data: a CSV fleet (missing cells LOCF-repaired for training; the
  // streams still see the raw rows, exercising the degraded-input path) or
  // a synthetic multivariate signal.
  tfmae::data::TimeSeries series;
  if (csv_path != nullptr) {
    tfmae::data::CsvDiagnostic diagnostic;
    auto loaded = tfmae::data::LoadCsv(csv_path, &diagnostic);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "tfmae_serve: %s\n", diagnostic.message.c_str());
      return 1;
    }
    series = std::move(*loaded);
  } else {
    tfmae::data::BaseSignalConfig signal;
    signal.length = 2048;
    signal.num_features = 4;
    signal.seed = 20240605;
    series = tfmae::data::GenerateBaseSignal(signal);
  }
  tfmae::data::TimeSeries train = series;
  tfmae::data::ImputeMissingLocf(&train);

  // One shared read-only detector for the whole fleet.
  tfmae::core::TfmaeConfig config;
  config.window = window;
  config.stride = window;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ff_hidden = 64;
  config.epochs = 1;
  config.seed = 17;
  tfmae::core::TfmaeDetector detector(config);
  tfmae::Stopwatch fit_watch;
  if (checkpoint != nullptr) {
    if (!detector.LoadCheckpoint(checkpoint)) {
      std::fprintf(stderr, "tfmae_serve: cannot load checkpoint %s\n",
                   checkpoint);
      return 1;
    }
  } else {
    detector.Fit(train);
  }
  // --save_checkpoint: persist the fitted detector so later runs (the chaos
  // soak's kill/restore/reference triple) share one identical model without
  // re-fitting.
  if (save_checkpoint != nullptr) {
    if (!detector.SaveCheckpoint(save_checkpoint)) {
      std::fprintf(stderr, "tfmae_serve: cannot save checkpoint %s\n",
                   save_checkpoint);
      return 1;
    }
  }
  // --quant overrides the TFMAE_QUANT default the detector started with.
  // Int8 without a spec (fresh fit, or a checkpoint saved before
  // calibration) calibrates on the training replay here, so the serving
  // lanes and the threshold calibration below share one precision.
  if (quant_flag != nullptr) {
    detector.SetQuantMode(std::strcmp(quant_flag, "int8") == 0
                              ? tfmae::core::TfmaeDetector::QuantMode::kInt8
                              : tfmae::core::TfmaeDetector::QuantMode::kOff);
  }
  if (detector.quant_mode() == tfmae::core::TfmaeDetector::QuantMode::kInt8 &&
      !detector.has_quant_spec()) {
    std::string quant_error;
    if (!detector.Calibrate(train, &quant_error) && !quiet) {
      std::fprintf(stderr, "tfmae_serve: int8 calibration failed (%s); "
                           "serving falls back to fp32\n",
                   quant_error.c_str());
    }
  }
  const std::vector<float> calibration = detector.Score(train);
  // Drift-monitor reference: a loaded checkpoint may carry one
  // (<prefix>.drift); otherwise the calibration scores just computed become
  // it. SaveCheckpoint ran before the reference existed, so persist the
  // sidecar explicitly for later runs of the same prefix.
  if (!detector.has_score_reference()) {
    detector.SetScoreReference(tfmae::core::BuildScoreDistribution(calibration));
    if (save_checkpoint != nullptr &&
        !tfmae::core::SaveScoreDistribution(
            detector.score_reference(), std::string(save_checkpoint) + ".drift") &&
        !quiet) {
      std::fprintf(stderr, "tfmae_serve: cannot save drift reference %s.drift\n",
                   save_checkpoint);
    }
  }
  if (!quiet) {
    std::printf("model ready in %.1fs (%s)\n", fit_watch.ElapsedSeconds(),
                checkpoint != nullptr ? "checkpoint" : "fitted");
  }

  tfmae::serve::FleetOptions options;
  options.streaming.window = window;
  options.streaming.hop = hop;
  options.max_streams = streams;
  options.queue_capacity = queue_capacity;
  options.batch_max = batch_max;
  options.shed_policy = shed_policy;
  options.watchdog_stall_ms = watchdog_ms;
  options.trace_sample = trace_sample;
  options.slo_latency_ns = slo_latency_ms * 1000000;
  options.slo_staleness_rows = slo_staleness_rows;
  options.drift_check_every = drift_every;
  options.drift_threshold = drift_threshold;
  if (snapshot_dir != nullptr) options.snapshot_dir = snapshot_dir;
  tfmae::serve::FleetServer server(&detector, options);
  server.CalibrateThreshold(calibration, anomaly_fraction);

  // Live endpoints. Declared after the server so it stops serving BEFORE
  // the server is destroyed — a late scrape can never race a dying server.
  tfmae::obs::HttpEndpoint endpoint;
  if (metrics_port_flag != nullptr) {
    endpoint.Handle("/metrics", [] {
      tfmae::obs::HttpResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = tfmae::obs::RenderPrometheusText();
      return response;
    });
    endpoint.Handle("/healthz", [&server] {
      tfmae::obs::HttpResponse response;
      if (server.draining()) {
        response.status = 503;
        response.body = "draining\n";
      } else if (server.degraded()) {
        // Alive but shedding: stays 200 so the fleet does not flap, the
        // body carries the latch for anyone who looks.
        response.body = "degraded\n";
      } else {
        response.body = "ok\n";
      }
      return response;
    });
    endpoint.Handle("/statusz", [&server] {
      tfmae::obs::HttpResponse response;
      response.content_type = "application/json";
      response.body = tfmae::serve::ServeStatsJson(server.stats()) + "\n";
      return response;
    });
    std::string endpoint_error;
    if (!endpoint.Start(static_cast<int>(metrics_port), &endpoint_error)) {
      std::fprintf(stderr, "tfmae_serve: metrics endpoint failed: %s\n",
                   endpoint_error.c_str());
      return 1;
    }
    // Printed even under --quiet: an ephemeral port is unknowable otherwise.
    std::printf("metrics endpoint on port %d\n", endpoint.port());
    std::fflush(stdout);
  }

  // Per-stream re-feed start: 0 for a fresh run; total_pushed(stream) after
  // a restore, so the replay skips exactly the rows the snapshot already
  // holds and the continuation is bitwise-identical to an uninterrupted run.
  std::vector<std::int64_t> start_tick(static_cast<std::size_t>(streams), 0);
  std::int64_t restored_rows = 0;
  if (restore) {
    std::string restore_error;
    auto found =
        tfmae::serve::FindLatestValidFleetSnapshot(snapshot_dir, &restore_error);
    if (!found.has_value()) {
      std::fprintf(stderr, "tfmae_serve: no valid snapshot in %s (%s)\n",
                   snapshot_dir, restore_error.c_str());
      return 1;
    }
    if (static_cast<std::int64_t>(found->second.stream_states.size()) !=
        streams) {
      std::fprintf(stderr,
                   "tfmae_serve: snapshot holds %lld streams, --streams=%lld\n",
                   static_cast<long long>(found->second.stream_states.size()),
                   static_cast<long long>(streams));
      return 1;
    }
    if (!server.Restore(found->second, &restore_error)) {
      std::fprintf(stderr, "tfmae_serve: restore failed (%s)\n",
                   restore_error.c_str());
      return 1;
    }
    for (std::int64_t s = 0; s < streams; ++s) {
      start_tick[static_cast<std::size_t>(s)] = server.total_pushed(s);
      restored_rows += server.total_pushed(s);
    }
    if (!quiet) {
      std::printf("restored %lld streams (%lld rows) from %s (snapshot %lld)\n",
                  static_cast<long long>(streams),
                  static_cast<long long>(restored_rows), found->first.c_str(),
                  static_cast<long long>(server.snapshot_index()));
    }
  } else {
    for (std::int64_t s = 0; s < streams; ++s) {
      if (server.OpenStream() < 0) {
        std::fprintf(stderr, "tfmae_serve: stream capacity exhausted\n");
        return 1;
      }
    }
  }

  std::FILE* score_log = nullptr;
  if (score_log_path != nullptr) {
    score_log = std::fopen(score_log_path, "a");
    if (score_log == nullptr) {
      std::fprintf(stderr, "tfmae_serve: cannot open score log %s\n",
                   score_log_path);
      return 1;
    }
  }

  // Ingest loop: tick-major over the fleet. Overloads retry with bounded
  // exponential backoff (one self-service Flush, then 1 ms doubling to
  // 64 ms, at most kMaxAttempts per row) instead of an unbounded busy-spin;
  // exhausted rows are dropped and counted. Stops after --rows ticks, at
  // the --seconds wall budget, on SIGTERM/SIGINT, or on kDraining.
  constexpr int kMaxAttempts = 24;
  tfmae::Stopwatch watch;
  std::int64_t ticks = 0;
  std::int64_t pushed = 0;
  std::int64_t anomalies = 0;
  std::int64_t overload_retries = 0;
  std::int64_t backoff_naps = 0;
  std::int64_t retry_gave_up = 0;
  const std::int64_t max_ticks =
      seconds > 0 && rows <= 0 ? -1 : rows;  // --seconds alone: unbounded
  while (!g_stop) {
    if (max_ticks >= 0 && ticks >= max_ticks) break;
    if (seconds > 0 && watch.ElapsedSeconds() >= static_cast<double>(seconds)) break;
    for (std::int64_t s = 0; s < streams && !g_stop; ++s) {
      if (ticks < start_tick[static_cast<std::size_t>(s)]) continue;
      const std::vector<float> row = ReplayRow(series, s, ticks);
      std::int64_t backoff_ms = 1;
      for (int attempt = 1;; ++attempt) {
        const tfmae::serve::AdmitStatus status = server.Push(s, row);
        if (status == tfmae::serve::AdmitStatus::kDraining) {
          g_stop = 1;  // the server is shutting down; stop ingest
          break;
        }
        if (status != tfmae::serve::AdmitStatus::kOverloaded) {
          ++pushed;
          break;
        }
        ++overload_retries;
        if (attempt >= kMaxAttempts) {
          ++retry_gave_up;  // budget exhausted: drop this row, keep serving
          break;
        }
        server.Flush();  // self-service first; nap only if still saturated
        if (attempt > 1) {
          ++backoff_naps;
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min<std::int64_t>(backoff_ms * 2, 64);
        }
      }
    }
    ++ticks;
    LogResults(score_log, server.TakeResults(), &anomalies);
    if (stats_every > 0 && ticks % stats_every == 0) {
      // One-line JSON heartbeat: same payload as /statusz, with the tick
      // spliced in as the first key so log scrapers can align the series.
      const std::string line = tfmae::serve::ServeStatsJson(server.stats());
      std::printf("stats {\"tick\":%lld,%s\n", static_cast<long long>(ticks),
                  line.c_str() + 1);
      std::fflush(stdout);
    }
    // Snapshot at tick boundaries, AFTER the tick's scores are durably in
    // the log: Flush + log + fflush + snapshot, so nothing the snapshot
    // counts as scored can be missing from the killed run's log.
    if (snapshot_dir != nullptr && snapshot_every > 0 && ticks > 0 &&
        ticks % snapshot_every == 0) {
      server.Flush();
      LogResults(score_log, server.TakeResults(), &anomalies);
      if (score_log != nullptr) std::fflush(score_log);
      std::string snapshot_error;
      if (!server.SnapshotNow(&snapshot_error) && !quiet) {
        std::fprintf(stderr, "tfmae_serve: snapshot failed (%s)\n",
                     snapshot_error.c_str());
      }
    }
  }
  const bool interrupted = g_stop != 0;

  // Graceful drain: every admitted window is scored before reporting.
  server.Drain();
  LogResults(score_log, server.TakeResults(), &anomalies);
  if (score_log != nullptr) {
    std::fflush(score_log);
    std::fclose(score_log);
  }
  const double elapsed = watch.ElapsedSeconds();

  const tfmae::serve::ServeStats stats = server.stats();
  std::printf("tfmae_serve: %lld streams x %lld ticks%s\n",
              static_cast<long long>(streams), static_cast<long long>(ticks),
              interrupted ? " (interrupted; drained cleanly)" : "");
  std::printf("  rows        %lld pushed, %.0f rows/sec\n",
              static_cast<long long>(pushed),
              elapsed > 0.0 ? static_cast<double>(pushed) / elapsed : 0.0);
  std::printf(
      "  windows     %lld scored in %lld batches (max batch %lld), "
      "%.0f windows/sec\n",
      static_cast<long long>(stats.windows_scored),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.max_batch),
      elapsed > 0.0 ? static_cast<double>(stats.windows_scored) / elapsed
                    : 0.0);
  std::printf("  latency     p50 %.0f us  p95 %.0f us  p99 %.0f us per window\n",
              stats.p50_window_ns / 1e3, stats.p95_window_ns / 1e3,
              stats.p99_window_ns / 1e3);
  std::printf("  memory      %lld bytes/stream (%lld streams)\n",
              static_cast<long long>(stats.bytes_per_stream),
              static_cast<long long>(stats.streams));
  std::printf(
      "  admission   %lld overloaded, peak queue depth %lld, "
      "%lld plan lanes, %lld eager windows\n",
      static_cast<long long>(stats.rows_overloaded),
      static_cast<long long>(stats.peak_queue_depth),
      static_cast<long long>(stats.plan_lanes),
      static_cast<long long>(stats.eager_windows));
  std::printf(
      "  backoff     %lld overload retries, %lld naps, %lld rows dropped "
      "(budget %d attempts)\n",
      static_cast<long long>(overload_retries),
      static_cast<long long>(backoff_naps),
      static_cast<long long>(retry_gave_up), kMaxAttempts);
  std::printf(
      "  resilience  policy=%s, %lld shed, %lld deadline-expired, "
      "degraded=%s, %lld snapshots (%lld failed), %lld watchdog stalls%s\n",
      tfmae::serve::ShedPolicyName(options.shed_policy),
      static_cast<long long>(stats.shed_dropped),
      static_cast<long long>(stats.shed_deadline_expired),
      stats.degraded ? "yes" : "no",
      static_cast<long long>(stats.snapshots_written),
      static_cast<long long>(stats.snapshots_failed),
      static_cast<long long>(stats.watchdog_stalls),
      restore ? " (restored run)" : "");
  if (stats.quant_lanes > 0) {
    std::printf(
        "  precision   int8 (%lld lanes), %lld fp32 fallbacks, arena "
        "%lld B fp32 + %lld B packed u8 per lane\n",
        static_cast<long long>(stats.quant_lanes),
        static_cast<long long>(stats.quant_fallbacks),
        static_cast<long long>(stats.plan_arena_bytes),
        static_cast<long long>(stats.quant_arena_bytes));
  } else {
    std::printf("  precision   fp32, %lld fp32 fallbacks, arena %lld B per "
                "lane\n",
                static_cast<long long>(stats.quant_fallbacks),
                static_cast<long long>(stats.plan_arena_bytes));
  }
  std::printf(
      "  health      %lld alerts, %lld quarantined, %lld rejected, "
      "%lld warmup rows\n",
      static_cast<long long>(anomalies),
      static_cast<long long>(stats.rows_quarantined),
      static_cast<long long>(stats.rows_rejected),
      static_cast<long long>(stats.rows_warmup));
  if (slo_latency_ms > 0 || slo_staleness_rows > 0) {
    std::printf(
        "  slo         %lld latency breaches, %lld staleness breaches, "
        "%lld streams exhausted (%lld episodes)\n",
        static_cast<long long>(stats.slo_latency_breaches),
        static_cast<long long>(stats.slo_staleness_breaches),
        static_cast<long long>(stats.slo_exhausted_streams),
        static_cast<long long>(stats.slo_exhausted_episodes));
  }
  if (drift_every > 0) {
    std::printf("  drift       %lld checks, %lld alarms, last ks %.4f "
                "(threshold %.2f)\n",
                static_cast<long long>(stats.drift_checks),
                static_cast<long long>(stats.drift_alarms), stats.drift_ks,
                drift_threshold);
  }
  std::fflush(stdout);

  // Keep the live endpoints up briefly after drain so an external prober
  // can observe the drained /healthz (503) before the process exits.
  if (drain_linger_ms > 0 && endpoint.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_linger_ms));
  }

  if (verify) {
    // Batched-equals-sequential spot check: replay a few streams through
    // the synchronous wrapper and compare every rescore score bitwise.
    const std::int64_t check_streams = std::min<std::int64_t>(streams, 4);
    const std::int64_t check_ticks = std::min<std::int64_t>(
        ticks > 0 ? ticks : 1, 3 * window);
    tfmae::serve::FleetServer check_server(&detector, options);
    for (std::int64_t s = 0; s < check_streams; ++s) {
      check_server.OpenStream();
    }
    for (std::int64_t t = 0; t < check_ticks; ++t) {
      for (std::int64_t s = 0; s < check_streams; ++s) {
        check_server.Push(s, ReplayRow(series, s, t));
      }
    }
    check_server.Drain();
    std::vector<std::vector<float>> batched(
        static_cast<std::size_t>(check_streams));
    for (const auto& r : check_server.TakeResults()) {
      batched[static_cast<std::size_t>(r.stream)].push_back(r.score);
    }
    bool identical = true;
    for (std::int64_t s = 0; s < check_streams; ++s) {
      tfmae::core::StreamingDetector sequential(&detector, options.streaming);
      std::vector<float> reference;
      std::int64_t since = 0;
      bool scored_once = false;
      for (std::int64_t t = 0; t < check_ticks; ++t) {
        const auto r = sequential.Push(ReplayRow(series, s, t));
        if (!r.has_value()) continue;
        if (++since >= options.streaming.hop || !scored_once) {
          reference.push_back(r->score);
          scored_once = true;
          since = 0;
        }
      }
      const auto& got = batched[static_cast<std::size_t>(s)];
      if (got.size() != reference.size() ||
          !std::equal(got.begin(), got.end(), reference.begin())) {
        identical = false;
      }
    }
    std::printf("  verify      batched == sequential: %s\n",
                identical ? "PASS (bitwise)" : "FAIL");
    if (!identical) return 1;
  }
  return 0;
}
