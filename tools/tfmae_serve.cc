// tfmae_serve — fleet-serving replay driver (docs/SERVING.md).
//
// Drives a serve::FleetServer with N concurrent streams from one process:
// trains (or loads) one shared detector, opens --streams streams, replays
// synthetic telemetry (or a CSV) through them with per-stream phase offsets,
// and prints the serving statistics: rows/sec, batched windows/sec, score
// latency quantiles, bytes/stream, and degraded-input health totals.
//
//   tfmae_serve --streams=1024 --threads=2 --batch_max=64 --rows=200
//   tfmae_serve --streams=256 --seconds=30       # run for a wall budget
//   tfmae_serve --csv=telemetry.csv --streams=64 # replay a CSV fleet
//   tfmae_serve --checkpoint=PREFIX ...          # reuse a saved detector
//   tfmae_serve --verify ...                     # also check batched ==
//                                                # sequential (exit 1 on drift)
//
//   tfmae_serve --quant=int8 ...                 # int8 scoring lanes
//                                                # (calibrates on train when
//                                                # the checkpoint has no
//                                                # .quant spec)
//
// Flags: --streams=N --threads=T --batch_max=B --rows=R --seconds=S
//        --window=W --hop=H --queue_capacity=Q --anomaly_fraction=F
//        --csv=PATH --checkpoint=PREFIX --quant=int8|off --verify --quiet
// plus the shared observability flags of MaybeProfileFromArgs
// (--obs_json/--obs_trace/--obs_text/--ledger/--flight_recorder).
//
// Graceful drain: SIGTERM/SIGINT stop ingest at the next row; every admitted
// window is then scored (Drain), the stats are printed, and the process
// exits 0 — no admitted work is ever dropped on shutdown.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "data/io.h"
#include "obs/export.h"
#include "serve/fleet_server.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::int64_t IntFlag(int argc, char** argv, const char* prefix,
                     std::int64_t fallback) {
  const char* v = FlagValue(argc, argv, prefix);
  return v != nullptr ? std::atoll(v) : fallback;
}

// One deterministic replay row: stream `s` reads the shared series at a
// per-stream phase offset, so streams are decorrelated but reproducible.
std::vector<float> ReplayRow(const tfmae::data::TimeSeries& series,
                             std::int64_t stream, std::int64_t t) {
  const std::int64_t row =
      (t + 17 * stream) % series.length;
  std::vector<float> values(
      static_cast<std::size_t>(series.num_features));
  for (std::int64_t f = 0; f < series.num_features; ++f) {
    values[static_cast<std::size_t>(f)] = series.at(row, f);
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);

  const std::int64_t streams = IntFlag(argc, argv, "--streams=", 1024);
  const std::int64_t threads = IntFlag(argc, argv, "--threads=", 1);
  const std::int64_t batch_max = IntFlag(argc, argv, "--batch_max=", 64);
  const std::int64_t rows = IntFlag(argc, argv, "--rows=", 200);
  const std::int64_t seconds = IntFlag(argc, argv, "--seconds=", 0);
  const std::int64_t window = IntFlag(argc, argv, "--window=", 32);
  const std::int64_t hop = IntFlag(argc, argv, "--hop=", 8);
  const std::int64_t queue_capacity =
      IntFlag(argc, argv, "--queue_capacity=", 4096);
  const char* csv_path = FlagValue(argc, argv, "--csv=");
  const char* checkpoint = FlagValue(argc, argv, "--checkpoint=");
  const double anomaly_fraction = [&] {
    const char* v = FlagValue(argc, argv, "--anomaly_fraction=");
    return v != nullptr ? std::atof(v) : 0.02;
  }();
  const char* quant_flag = FlagValue(argc, argv, "--quant=");
  const bool verify = HasFlag(argc, argv, "--verify");
  const bool quiet = HasFlag(argc, argv, "--quiet");
  if (quant_flag != nullptr && std::strcmp(quant_flag, "int8") != 0 &&
      std::strcmp(quant_flag, "off") != 0) {
    std::fprintf(stderr, "tfmae_serve: --quant must be int8 or off\n");
    return 1;
  }
  if (streams < 1 || threads < 1 || window < 2 || hop < 1) {
    std::fprintf(stderr, "tfmae_serve: invalid flag value\n");
    return 1;
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  tfmae::ThreadPool::Instance().SetNumThreads(static_cast<int>(threads));

  // Replay data: a CSV fleet (missing cells LOCF-repaired for training; the
  // streams still see the raw rows, exercising the degraded-input path) or
  // a synthetic multivariate signal.
  tfmae::data::TimeSeries series;
  if (csv_path != nullptr) {
    tfmae::data::CsvDiagnostic diagnostic;
    auto loaded = tfmae::data::LoadCsv(csv_path, &diagnostic);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "tfmae_serve: %s\n", diagnostic.message.c_str());
      return 1;
    }
    series = std::move(*loaded);
  } else {
    tfmae::data::BaseSignalConfig signal;
    signal.length = 2048;
    signal.num_features = 4;
    signal.seed = 20240605;
    series = tfmae::data::GenerateBaseSignal(signal);
  }
  tfmae::data::TimeSeries train = series;
  tfmae::data::ImputeMissingLocf(&train);

  // One shared read-only detector for the whole fleet.
  tfmae::core::TfmaeConfig config;
  config.window = window;
  config.stride = window;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ff_hidden = 64;
  config.epochs = 1;
  config.seed = 17;
  tfmae::core::TfmaeDetector detector(config);
  tfmae::Stopwatch fit_watch;
  if (checkpoint != nullptr) {
    if (!detector.LoadCheckpoint(checkpoint)) {
      std::fprintf(stderr, "tfmae_serve: cannot load checkpoint %s\n",
                   checkpoint);
      return 1;
    }
  } else {
    detector.Fit(train);
  }
  // --quant overrides the TFMAE_QUANT default the detector started with.
  // Int8 without a spec (fresh fit, or a checkpoint saved before
  // calibration) calibrates on the training replay here, so the serving
  // lanes and the threshold calibration below share one precision.
  if (quant_flag != nullptr) {
    detector.SetQuantMode(std::strcmp(quant_flag, "int8") == 0
                              ? tfmae::core::TfmaeDetector::QuantMode::kInt8
                              : tfmae::core::TfmaeDetector::QuantMode::kOff);
  }
  if (detector.quant_mode() == tfmae::core::TfmaeDetector::QuantMode::kInt8 &&
      !detector.has_quant_spec()) {
    std::string quant_error;
    if (!detector.Calibrate(train, &quant_error) && !quiet) {
      std::fprintf(stderr, "tfmae_serve: int8 calibration failed (%s); "
                           "serving falls back to fp32\n",
                   quant_error.c_str());
    }
  }
  const std::vector<float> calibration = detector.Score(train);
  if (!quiet) {
    std::printf("model ready in %.1fs (%s)\n", fit_watch.ElapsedSeconds(),
                checkpoint != nullptr ? "checkpoint" : "fitted");
  }

  tfmae::serve::FleetOptions options;
  options.streaming.window = window;
  options.streaming.hop = hop;
  options.max_streams = streams;
  options.queue_capacity = queue_capacity;
  options.batch_max = batch_max;
  tfmae::serve::FleetServer server(&detector, options);
  server.CalibrateThreshold(calibration, anomaly_fraction);
  for (std::int64_t s = 0; s < streams; ++s) {
    if (server.OpenStream() < 0) {
      std::fprintf(stderr, "tfmae_serve: stream capacity exhausted\n");
      return 1;
    }
  }

  // Ingest loop: tick-major over the fleet; overloads retry via Flush.
  // Stops after --rows ticks, or at the --seconds wall budget, or on
  // SIGTERM/SIGINT — whichever comes first.
  tfmae::Stopwatch watch;
  std::int64_t ticks = 0;
  std::int64_t pushed = 0;
  std::int64_t anomalies = 0;
  const std::int64_t max_ticks =
      seconds > 0 && rows <= 0 ? -1 : rows;  // --seconds alone: unbounded
  while (!g_stop) {
    if (max_ticks >= 0 && ticks >= max_ticks) break;
    if (seconds > 0 && watch.ElapsedSeconds() >= static_cast<double>(seconds)) break;
    for (std::int64_t s = 0; s < streams && !g_stop; ++s) {
      const std::vector<float> row = ReplayRow(series, s, ticks);
      for (;;) {
        const tfmae::serve::AdmitStatus status = server.Push(s, row);
        if (status != tfmae::serve::AdmitStatus::kOverloaded) break;
        server.Flush();
      }
      ++pushed;
    }
    ++ticks;
    for (const auto& r : server.TakeResults()) {
      if (r.is_anomaly) ++anomalies;
    }
  }
  const bool interrupted = g_stop != 0;

  // Graceful drain: every admitted window is scored before reporting.
  server.Drain();
  for (const auto& r : server.TakeResults()) {
    if (r.is_anomaly) ++anomalies;
  }
  const double elapsed = watch.ElapsedSeconds();

  const tfmae::serve::ServeStats stats = server.stats();
  std::printf("tfmae_serve: %lld streams x %lld ticks%s\n",
              static_cast<long long>(streams), static_cast<long long>(ticks),
              interrupted ? " (interrupted; drained cleanly)" : "");
  std::printf("  rows        %lld pushed, %.0f rows/sec\n",
              static_cast<long long>(pushed),
              elapsed > 0.0 ? static_cast<double>(pushed) / elapsed : 0.0);
  std::printf(
      "  windows     %lld scored in %lld batches (max batch %lld), "
      "%.0f windows/sec\n",
      static_cast<long long>(stats.windows_scored),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.max_batch),
      elapsed > 0.0 ? static_cast<double>(stats.windows_scored) / elapsed
                    : 0.0);
  std::printf("  latency     p50 %.0f us  p95 %.0f us  p99 %.0f us per window\n",
              stats.p50_window_ns / 1e3, stats.p95_window_ns / 1e3,
              stats.p99_window_ns / 1e3);
  std::printf("  memory      %lld bytes/stream (%lld streams)\n",
              static_cast<long long>(stats.bytes_per_stream),
              static_cast<long long>(stats.streams));
  std::printf(
      "  admission   %lld overloaded, peak queue depth %lld, "
      "%lld plan lanes, %lld eager windows\n",
      static_cast<long long>(stats.rows_overloaded),
      static_cast<long long>(stats.peak_queue_depth),
      static_cast<long long>(stats.plan_lanes),
      static_cast<long long>(stats.eager_windows));
  if (stats.quant_lanes > 0) {
    std::printf(
        "  precision   int8 (%lld lanes), %lld fp32 fallbacks, arena "
        "%lld B fp32 + %lld B packed u8 per lane\n",
        static_cast<long long>(stats.quant_lanes),
        static_cast<long long>(stats.quant_fallbacks),
        static_cast<long long>(stats.plan_arena_bytes),
        static_cast<long long>(stats.quant_arena_bytes));
  } else {
    std::printf("  precision   fp32, %lld fp32 fallbacks, arena %lld B per "
                "lane\n",
                static_cast<long long>(stats.quant_fallbacks),
                static_cast<long long>(stats.plan_arena_bytes));
  }
  std::printf(
      "  health      %lld alerts, %lld quarantined, %lld rejected, "
      "%lld warmup rows\n",
      static_cast<long long>(anomalies),
      static_cast<long long>(stats.rows_quarantined),
      static_cast<long long>(stats.rows_rejected),
      static_cast<long long>(stats.rows_warmup));

  if (verify) {
    // Batched-equals-sequential spot check: replay a few streams through
    // the synchronous wrapper and compare every rescore score bitwise.
    const std::int64_t check_streams = std::min<std::int64_t>(streams, 4);
    const std::int64_t check_ticks = std::min<std::int64_t>(
        ticks > 0 ? ticks : 1, 3 * window);
    tfmae::serve::FleetServer check_server(&detector, options);
    for (std::int64_t s = 0; s < check_streams; ++s) {
      check_server.OpenStream();
    }
    for (std::int64_t t = 0; t < check_ticks; ++t) {
      for (std::int64_t s = 0; s < check_streams; ++s) {
        check_server.Push(s, ReplayRow(series, s, t));
      }
    }
    check_server.Drain();
    std::vector<std::vector<float>> batched(
        static_cast<std::size_t>(check_streams));
    for (const auto& r : check_server.TakeResults()) {
      batched[static_cast<std::size_t>(r.stream)].push_back(r.score);
    }
    bool identical = true;
    for (std::int64_t s = 0; s < check_streams; ++s) {
      tfmae::core::StreamingDetector sequential(&detector, options.streaming);
      std::vector<float> reference;
      std::int64_t since = 0;
      bool scored_once = false;
      for (std::int64_t t = 0; t < check_ticks; ++t) {
        const auto r = sequential.Push(ReplayRow(series, s, t));
        if (!r.has_value()) continue;
        if (++since >= options.streaming.hop || !scored_once) {
          reference.push_back(r->score);
          scored_once = true;
          since = 0;
        }
      }
      const auto& got = batched[static_cast<std::size_t>(s)];
      if (got.size() != reference.size() ||
          !std::equal(got.begin(), got.end(), reference.begin())) {
        identical = false;
      }
    }
    std::printf("  verify      batched == sequential: %s\n",
                identical ? "PASS (bitwise)" : "FAIL");
    if (!identical) return 1;
  }
  return 0;
}
