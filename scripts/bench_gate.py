#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a fresh `bench_micro` sweep against the committed baselines in
bench_results/baselines/ and exits non-zero when a tracked metric regresses
past the tolerance. Only *relative* metrics are gated (speedup ratios,
allocation reductions, bitwise-determinism booleans): absolute seconds vary
with the host and with container load, ratios of two timings taken in the
same process do not.

Usage:
  scripts/bench_gate.py --current-dir DIR [--baseline-dir DIR] [--tolerance F]
  scripts/bench_gate.py --smoke          # baseline vs itself; must pass

The current directory is expected to contain files with the same names as
the baselines (tensor_backend.json, memory_plane.json, resilience.json,
inference_plan.json, serving.json); missing files are reported as failures
so a broken sweep cannot silently pass the gate.

The serving sweep carries its own hard floors (docs/SERVING.md and
docs/RESILIENCE.md): batched scores must be bitwise-identical to sequential
per-stream scoring, the sweep must demonstrate >= 1024 concurrent streams,
and a snapshotted/restored/re-fed fleet must reproduce the uninterrupted
run bit for bit (snapshot_restore_bitwise — never waived, since it is a
determinism verdict rather than a timing).

The inference-plan sweep additionally carries *hard floors* from the
pre-planned-inference acceptance contract (DESIGN.md §10): planned scoring
must be >= 1.3x faster than eager per window regardless of baseline drift,
and the 4-thread elementwise dispatch must scale >= 1.5x over 1 thread —
the latter only enforced when the measuring host actually has >= 4
hardware cores (the sweep records hw_cores; on smaller hosts the scaling
check degrades to the relative-to-baseline comparison). `scripts/check.sh bench` produces them; see
bench_results/baselines/README.md for how the baselines were recorded.

The quant sweep (quant.json, produced by `bench_micro --quant_json`)
carries the int8 acceptance contract (DESIGN.md §12) as hard floors that
are ALWAYS armed — they are single-thread and accuracy measurements, so no
hw_cores waiver applies: int8 scoring must be >= 1.8x faster than fp32 at
1 thread, int8 scores must be bitwise thread-count-invariant, and
point-adjust F1 must match fp32 within |dF1| <= 0.005 on every dataset
profile (f1_parity records the verdict; max_f1_delta the worst case).
"""

import argparse
import json
import math
import os
import sys

DEFAULT_TOLERANCE = 0.35  # fraction of the baseline a ratio may lose

# summary keys gated per sweep: (key, kind). "ratio" = higher is better,
# current >= baseline * (1 - tolerance); "bool" = must stay true if the
# baseline recorded true.
SUMMARY_CHECKS = {
    "memory_plane.json": [
        ("alloc_reduction_x", "ratio"),
        ("speedup_x", "ratio"),
        ("losses_bitwise_identical", "bool"),
    ],
    "resilience.json": [
        ("weights_bitwise_identical", "bool"),
        ("fault_drill_recovered", "bool"),
    ],
    "inference_plan.json": [
        ("speedup_x", "ratio"),
        ("elementwise_4t_speedup", "ratio"),
        ("planned_zero_alloc", "bool"),
        ("scores_bitwise_identical", "bool"),
    ],
    "serving.json": [
        ("batch_efficiency_x", "ratio"),
        ("batched_bitwise_identical", "bool"),
        ("snapshot_restore_bitwise", "bool"),
    ],
    "quant.json": [
        ("speedup_1t_x", "ratio"),
        ("scores_bitwise_identical", "bool"),
        ("f1_parity", "bool"),
    ],
}

# Absolute floors (checked against the *current* sweep, independent of the
# baseline): the DESIGN.md §10 acceptance contract.
PLAN_SPEEDUP_FLOOR = 1.3
PLAN_ELEMENTWISE_4T_FLOOR = 1.5

# Fleet-serving acceptance contract (docs/SERVING.md): batched scores must
# stay bitwise-identical to sequential per-stream scoring, and the sweep
# must demonstrate at least this many concurrent streams.
SERVING_MAX_STREAMS_FLOOR = 1024

# Int8 acceptance contract (DESIGN.md §12). Single-thread speedup and F1
# parity are host-size-independent, so these floors are never waived.
QUANT_SPEEDUP_1T_FLOOR = 1.8
QUANT_F1_TOLERANCE = 0.005


def quant_floor_failures(name, current):
    """Absolute acceptance floors for the int8 quantization sweep."""
    if name != "quant.json" or not isinstance(current, dict):
        return []
    failures = []
    summary = current.get("summary", {})
    speedup = summary.get("speedup_1t_x", 0.0)
    if speedup < QUANT_SPEEDUP_1T_FLOOR:
        failures.append(
            f"{name}: speedup_1t_x = {speedup:.2f}, below the hard "
            f"{QUANT_SPEEDUP_1T_FLOOR}x int8-vs-fp32 floor at 1 thread")
    else:
        print(f"  ok  {name}: speedup_1t_x = {speedup:.2f} "
              f"(hard floor {QUANT_SPEEDUP_1T_FLOOR})")
    if not summary.get("scores_bitwise_identical", False):
        failures.append(
            f"{name}: scores_bitwise_identical is not true — int8 scores "
            f"diverged across thread counts")
    else:
        print(f"  ok  {name}: scores_bitwise_identical = true (hard)")
    max_delta = summary.get("max_f1_delta", None)
    if not summary.get("f1_parity", False) or max_delta is None \
            or max_delta > QUANT_F1_TOLERANCE:
        failures.append(
            f"{name}: f1_parity failed (max_f1_delta = {max_delta}, "
            f"tolerance {QUANT_F1_TOLERANCE}) — int8 F1 drifted from fp32 "
            f"on at least one dataset profile")
    else:
        print(f"  ok  {name}: f1_parity = true, max_f1_delta = "
              f"{max_delta:.4f} (hard tolerance {QUANT_F1_TOLERANCE})")
    fell_back = [p.get("dataset", "?") for p in current.get("profiles", [])
                 if p.get("fell_back", False)]
    if fell_back:
        failures.append(
            f"{name}: fp32 fallback during parity evaluation on "
            f"{', '.join(fell_back)} — parity was not measured on int8")
    return failures


def serving_floor_failures(name, current):
    """Absolute acceptance floors for the fleet-serving sweep."""
    if name != "serving.json" or not isinstance(current, dict):
        return quant_floor_failures(name, current)
    failures = []
    summary = current.get("summary", {})
    if not summary.get("batched_bitwise_identical", False):
        failures.append(
            f"{name}: batched_bitwise_identical is not true — batched "
            f"serving diverged from sequential per-stream scoring")
    else:
        print(f"  ok  {name}: batched_bitwise_identical = true (hard)")
    # Crash-safety contract (docs/RESILIENCE.md): snapshot + restore +
    # re-feed must reproduce the uninterrupted run bit for bit. This floor
    # is NEVER waived — it is a determinism check, not a timing, so host
    # size and load cannot excuse it.
    if not summary.get("snapshot_restore_bitwise", False):
        failures.append(
            f"{name}: snapshot_restore_bitwise is not true — a restored "
            f"fleet diverged from the uninterrupted run (never waived)")
    else:
        print(f"  ok  {name}: snapshot_restore_bitwise = true "
              f"(hard, never waived)")
    max_streams = summary.get("max_streams", 0)
    if max_streams < SERVING_MAX_STREAMS_FLOOR:
        failures.append(
            f"{name}: max_streams = {max_streams}, below the hard "
            f"{SERVING_MAX_STREAMS_FLOOR}-stream floor")
    else:
        print(f"  ok  {name}: max_streams = {max_streams} "
              f"(hard floor {SERVING_MAX_STREAMS_FLOOR})")
    return failures


def hard_floor_failures(name, current):
    """Absolute acceptance floors for the inference-plan sweep."""
    if name != "inference_plan.json" or not isinstance(current, dict):
        return serving_floor_failures(name, current)
    failures = []
    summary = current.get("summary", {})
    speedup = summary.get("speedup_x", 0.0)
    if speedup < PLAN_SPEEDUP_FLOOR:
        failures.append(
            f"{name}: speedup_x = {speedup:.2f}, below the hard "
            f"{PLAN_SPEEDUP_FLOOR}x planned-vs-eager floor")
    else:
        print(f"  ok  {name}: speedup_x = {speedup:.2f} "
              f"(hard floor {PLAN_SPEEDUP_FLOOR})")
    elem = summary.get("elementwise_4t_speedup", 0.0)
    hw_cores = summary.get("hw_cores", 0)
    if hw_cores >= 4:
        if elem < PLAN_ELEMENTWISE_4T_FLOOR:
            failures.append(
                f"{name}: elementwise_4t_speedup = {elem:.2f}, below the "
                f"hard {PLAN_ELEMENTWISE_4T_FLOOR}x floor "
                f"({hw_cores} hardware cores)")
        else:
            print(f"  ok  {name}: elementwise_4t_speedup = {elem:.2f} "
                  f"(hard floor {PLAN_ELEMENTWISE_4T_FLOOR})")
    else:
        print(f"  ok  {name}: elementwise_4t_speedup = {elem:.2f} "
              f"(hard floor waived: host has {hw_cores} hardware core(s), "
              f"needs 4; relative check still applies)")
    return failures


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def tensor_backend_checks(data):
    """Relative metrics from the tensor-backend sweep (a list of op rows)."""
    checks = []
    gemm_speedups = [
        row["speedup_vs_seed"]
        for row in data
        if row.get("op") == "gemm" and row.get("threads") == 1
    ]
    if gemm_speedups:
        checks.append(("gemm_speedup_vs_seed_geomean", "ratio",
                       geomean(gemm_speedups)))
    best_scaling = {}
    for row in data:
        speedup = row.get("speedup_vs_1thread")
        if row.get("op") in ("attention_forward", "train_step") and speedup:
            key = f"{row['op']}_best_thread_scaling"
            best_scaling[key] = max(best_scaling.get(key, 0.0), speedup)
    for key, value in sorted(best_scaling.items()):
        checks.append((key, "ratio", value))
    return checks


def extract_checks(name, data):
    """-> list of (check_name, kind, value)."""
    if name == "tensor_backend.json":
        return tensor_backend_checks(data)
    checks = []
    summary = data.get("summary", {}) if isinstance(data, dict) else {}
    for key, kind in SUMMARY_CHECKS.get(name, []):
        if key in summary:
            checks.append((key, kind, summary[key]))
    return checks


def compare(name, baseline, current, tolerance):
    """-> list of failure strings for one sweep file."""
    failures = []
    base_checks = {c[0]: c for c in extract_checks(name, baseline)}
    cur_checks = {c[0]: c for c in extract_checks(name, current)}
    for check_name, (_, kind, base_value) in sorted(base_checks.items()):
        if check_name not in cur_checks:
            failures.append(f"{name}: {check_name} missing from current sweep")
            continue
        cur_value = cur_checks[check_name][2]
        if kind == "bool":
            if bool(base_value) and not bool(cur_value):
                failures.append(
                    f"{name}: {check_name} was true in the baseline, now "
                    f"{cur_value}")
            else:
                print(f"  ok  {name}: {check_name} = {cur_value}")
        else:
            floor = base_value * (1.0 - tolerance)
            if cur_value < floor:
                failures.append(
                    f"{name}: {check_name} = {cur_value:.3f}, below "
                    f"{floor:.3f} (baseline {base_value:.3f} - "
                    f"{tolerance:.0%} tolerance)")
            else:
                print(f"  ok  {name}: {check_name} = {cur_value:.3f} "
                      f"(baseline {base_value:.3f}, floor {floor:.3f})")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir",
                        default=os.path.join(os.path.dirname(__file__), "..",
                                             "bench_results", "baselines"))
    parser.add_argument("--current-dir",
                        help="directory holding the fresh sweep JSONs")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--smoke", action="store_true",
                        help="compare the baselines against themselves "
                             "(validates the gate plumbing and the committed "
                             "files)")
    args = parser.parse_args()
    if args.smoke:
        args.current_dir = args.baseline_dir
    if not args.current_dir:
        parser.error("--current-dir is required unless --smoke is given")

    baseline_files = sorted(
        f for f in os.listdir(args.baseline_dir) if f.endswith(".json"))
    if not baseline_files:
        print(f"bench_gate: no baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    failures = []
    for name in baseline_files:
        with open(os.path.join(args.baseline_dir, name)) as f:
            baseline = json.load(f)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(current_path):
            failures.append(f"{name}: no current sweep at {current_path}")
            continue
        with open(current_path) as f:
            current = json.load(f)
        failures.extend(compare(name, baseline, current, args.tolerance))
        failures.extend(hard_floor_failures(name, current))

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"bench_gate: all checks passed "
          f"({len(baseline_files)} sweep file(s), "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
