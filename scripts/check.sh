#!/usr/bin/env bash
# Build and run the test suite, optionally under a sanitizer or with the
# observability layer compiled in.
#
# Usage:
#   scripts/check.sh [plain|thread|address|undefined|obs|pool|faults|report|bench|plan|serve|quant|chaos|live] [extra ctest args...]
#
# Examples:
#   scripts/check.sh                 # plain Release build, full suite
#   scripts/check.sh thread          # ThreadSanitizer build, full suite
#   scripts/check.sh thread -R Gemm  # tsan build, GEMM/thread-pool tests only
#   scripts/check.sh obs             # -DTFMAE_OBS=ON + tsan, collection on
#   scripts/check.sh faults          # -DTFMAE_FAULTS=ON + UBSan + seeded sweep
#   scripts/check.sh report          # run-telemetry suite + bench-gate smoke
#   scripts/check.sh bench           # bench sweeps gated against baselines
#   scripts/check.sh quant           # int8 suites under ASan+UBSan + parity smoke
#   scripts/check.sh chaos           # serve-resilience suite + kill -9 soak
#   scripts/check.sh live            # live-observability suites + scrape smoke
#
# The obs mode is the instrumentation soak from docs/OBSERVABILITY.md: the
# whole tier-1 suite runs with the macros compiled in, TFMAE_OBS=1 so every
# site actually records, and ThreadSanitizer watching the registry's
# lock-free shard path.
#
# The pool mode is the memory-plane soak from DESIGN.md: the tier-1 suite
# runs under AddressSanitizer three times — pool on, pool on with the NaN
# scrub canary, and TFMAE_POOL=0 — so buffer recycling, read-before-write
# of recycled memory, and the unpooled escape hatch are all exercised with
# lifetime checking. The PoolDeterminismTest cases inside the suite pin the
# two-seed bitwise pooled-vs-unpooled training-loss comparison at 1/2/4
# threads.
#
# The faults mode is the resilience soak from docs/RESILIENCE.md: the whole
# tier-1 suite runs with -DTFMAE_FAULTS=ON (and UndefinedBehaviorSanitizer,
# since injected failures walk the error paths that rarely run otherwise).
# Injection points are compiled in but inert, so the suite must pass exactly
# as in a plain build — that is the first run. The second phase re-runs the
# fault-injection tests under a sweep of seeds (TFMAE_FAULT_SWEEP_SEED),
# which the tests use to drive randomized injected I/O failures, NaN losses,
# and interrupts; training and recovery must survive every seed.
#
# The report mode is the run-telemetry gate from docs/OBSERVABILITY.md
# ("Run ledger & flight recorder"): a -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON
# Release build runs the ledger / flight-recorder / report / registry-cap
# suites — including the 1/2/4-thread replay-determinism contract and the
# injected-fault postmortem — then smoke-tests the benchmark gate against
# the committed baselines.
#
# The plan mode is the pre-planned-inference soak from DESIGN.md §10: the
# InferencePlan suite (bitwise eager-vs-planned scoring, arena accounting,
# injected capture faults, the scrub canary) runs twice — once under
# AddressSanitizer (arena offsets and lifetimes are hand-planned, so every
# replay is an ASan workout) and once under ThreadSanitizer (replay
# dispatches coarse parallel-for chunks over shared arena rows). Both runs
# compile -DTFMAE_FAULTS=ON and -DTFMAE_OBS=ON so the fallback and ledger
# cases are active rather than skipped.
#
# The serve mode is the fleet-serving soak from docs/SERVING.md: the
# serve suite (concurrent ingest, backpressure, batched-vs-sequential
# bitwise identity at 1/2/4 threads, drain completeness) runs twice —
# under AddressSanitizer (per-lane plan arenas, snapshot lifetimes) and
# under ThreadSanitizer (lock-free stream publication, lane claiming,
# concurrent Push/Flush) — then a 30-second tfmae_serve smoke replays a
# 256-stream synthetic fleet end to end with --verify.
#
# The chaos mode is the serving-resilience soak from docs/RESILIENCE.md
# ("Serving resilience"): the serve-resilience suite (snapshot/restore
# bitwise identity at 1/2/4 threads, corrupted-newest fallback, shed
# policies, the sticky degraded latch, drain under concurrent producers,
# the scoring watchdog, and the serve.* fault points) runs under
# AddressSanitizer with -DTFMAE_FAULTS=ON and -DTFMAE_OBS=ON, then
# scripts/chaos_soak.py kill -9s a live tfmae_serve mid-run three times
# (one seed per thread count), restores each from its newest valid
# snapshot, re-feeds the tail, and fails unless the union of the killed
# and resumed score logs is bitwise-identical to an uninterrupted
# reference run.
#
# The live mode is the live-observability soak from docs/OBSERVABILITY.md
# ("Live endpoints & SLOs"): the exporter / HTTP endpoint / stage-timeline /
# SLO / drift suites run under AddressSanitizer (socket buffers, reservoir
# and ring lifetimes) and ThreadSanitizer (the scrape thread reads the
# registry while scoring threads record into it), both with -DTFMAE_OBS=ON
# and -DTFMAE_FAULTS=ON so every macro site is live. Then
# scripts/live_smoke.py drives a 256-stream tfmae_serve with
# --metrics_port=0, scrapes /metrics mid-load, validates the exposition
# format and the stage-sum/end-to-end reconciliation, and asserts /healthz
# flips to 503 during drain.
#
# The bench mode is the performance gate from docs/OBSERVABILITY.md
# ("Benchmark gating"): it runs the bench_micro JSON sweeps in the same
# build and fails if any tracked relative metric (speedup ratios,
# allocation reduction, bitwise-determinism booleans) regresses past the
# tolerance in scripts/bench_gate.py.
#
# The quant mode is the int8-scoring soak from DESIGN.md §12: the quant
# suites (kernel ISA/thread-count bitwise identity, QuantSpec container
# round-trips, calibration edge cases, int8 plan activation and fallback —
# including the injected-fault fp32 demotion) run under AddressSanitizer
# and again under UndefinedBehaviorSanitizer, both with -DTFMAE_FAULTS=ON
# and -DTFMAE_OBS=ON so the fallback and ledger cases are active. Then the
# ASan build runs a 3-profile F1-parity smoke (`bench_micro
# --quant_json ... --quant_profiles=3`), which fails on its own if int8 F1
# drifts past the tolerance or int8 scores diverge across thread counts.
# The full 5-profile parity sweep with the 1.8x speedup floor runs in
# bench mode, where timings are unsanitized.
#
# Each mode builds into its own directory (build-check-<mode>) so sanitized
# and plain object files never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-plain}"
shift || true

case "$SAN" in
  plain)   SAN_FLAG="" ;;
  thread|address|undefined) SAN_FLAG="-DTFMAE_SANITIZE=$SAN" ;;
  obs)     SAN_FLAG="-DTFMAE_OBS=ON -DTFMAE_SANITIZE=thread" ;;
  pool)    SAN_FLAG="-DTFMAE_SANITIZE=address" ;;
  faults)  SAN_FLAG="-DTFMAE_FAULTS=ON -DTFMAE_OBS=ON -DTFMAE_SANITIZE=undefined" ;;
  report|bench) SAN_FLAG="-DTFMAE_OBS=ON -DTFMAE_FAULTS=ON" ;;
  plan|serve|quant|chaos|live) SAN_FLAG="" ;;
  *)
    echo "usage: $0 [plain|thread|address|undefined|obs|pool|faults|report|bench|plan|serve|quant|chaos|live] [ctest args...]" >&2
    exit 2
    ;;
esac

# configure_and_build DIR [cmake flags...] — one CMake configure + build per
# mode/sanitizer combination, each into its own directory so sanitized and
# plain object files never mix.
configure_and_build() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$(nproc)"
}

if [ "$SAN" = "plan" ]; then
  for san in address thread; do
    BUILD_DIR="build-check-plan-$san"
    configure_and_build "$BUILD_DIR" \
      -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON "-DTFMAE_SANITIZE=$san"
    echo "== plan suite: $san sanitizer, capture/replay/fallback tests =="
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'InferencePlan' "$@"
  done
  exit 0
fi

if [ "$SAN" = "serve" ]; then
  for san in address thread; do
    BUILD_DIR="build-check-serve-$san"
    configure_and_build "$BUILD_DIR" \
      -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON "-DTFMAE_SANITIZE=$san"
    echo "== serve suite: $san sanitizer, fleet-server tests =="
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'Serve' "$@"
  done
  echo "== serve smoke: 256 streams, 30 seconds, batched == sequential =="
  "build-check-serve-address/tools/tfmae_serve" \
    --streams=256 --threads=2 --seconds=30 --verify
  exit 0
fi

if [ "$SAN" = "chaos" ]; then
  BUILD_DIR="build-check-chaos"
  configure_and_build "$BUILD_DIR" \
    -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON -DTFMAE_SANITIZE=address
  echo "== serve resilience suite: ASan, snapshot/shed/watchdog/fault tests =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'FleetSnapshot|FleetShed|FleetDrain|FleetFault|StreamStateCodec' "$@"
  echo "== chaos soak: kill -9 mid-run, restore, union-of-logs bitwise =="
  python3 scripts/chaos_soak.py --serve-bin "$BUILD_DIR/tools/tfmae_serve"
  exit 0
fi

if [ "$SAN" = "live" ]; then
  for san in address thread; do
    BUILD_DIR="build-check-live-$san"
    configure_and_build "$BUILD_DIR" \
      -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON "-DTFMAE_SANITIZE=$san"
    echo "== live suite: $san sanitizer, exporter/endpoint/SLO/drift tests =="
    TFMAE_OBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R 'PromExport|HttpEndpoint|ServeObs|RegistryOverflow|HistogramQuantile' "$@"
  done
  echo "== live smoke: 256 streams, mid-load scrape, drained /healthz == 503 =="
  TFMAE_OBS=1 python3 scripts/live_smoke.py \
    --serve-bin "build-check-live-address/tools/tfmae_serve"
  exit 0
fi

if [ "$SAN" = "quant" ]; then
  for san in address undefined; do
    BUILD_DIR="build-check-quant-$san"
    configure_and_build "$BUILD_DIR" \
      -DTFMAE_OBS=ON -DTFMAE_FAULTS=ON "-DTFMAE_SANITIZE=$san"
    echo "== quant suite: $san sanitizer, kernel/spec/calibration/plan tests =="
    ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'Quant' "$@"
  done
  echo "== quant parity smoke: 3 dataset profiles, int8 vs fp32 F1 =="
  "build-check-quant-address/bench/bench_micro" \
    --quant_json="build-check-quant-address/quant_smoke.json" \
    --quant_profiles=3
  exit 0
fi

BUILD_DIR="build-check-$SAN"

configure_and_build "$BUILD_DIR" $SAN_FLAG
if [ "$SAN" = "obs" ]; then
  TFMAE_OBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
elif [ "$SAN" = "faults" ]; then
  echo "== faults suite: UBSan, injection points compiled in but inert =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  for seed in 1 7 1234; do
    echo "== faults sweep: injected failures, seed $seed =="
    TFMAE_FAULT_SWEEP_SEED="$seed" \
      ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R 'FaultRegistry|FaultInjection|NumericGuard' "$@"
  done
elif [ "$SAN" = "report" ]; then
  echo "== telemetry suite: ledger, flight recorder, report, registry caps =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'Ledger|FlightRecorder|Report|RegistryOverflow|KsDistance|Obs' "$@"
  echo "== bench gate smoke: committed baselines vs themselves =="
  python3 scripts/bench_gate.py --smoke
elif [ "$SAN" = "bench" ]; then
  OUT_DIR="$BUILD_DIR/bench_sweeps"
  mkdir -p "$OUT_DIR"
  echo "== bench sweep: tensor backend =="
  "$BUILD_DIR/bench/bench_micro" \
    --tensor_backend_json="$OUT_DIR/tensor_backend.json"
  echo "== bench sweep: memory plane =="
  "$BUILD_DIR/bench/bench_micro" \
    --memory_plane_json="$OUT_DIR/memory_plane.json"
  echo "== bench sweep: resilience =="
  "$BUILD_DIR/bench/bench_micro" \
    --resilience_json="$OUT_DIR/resilience.json"
  echo "== bench sweep: inference plan =="
  "$BUILD_DIR/bench/bench_micro" \
    --inference_plan_json="$OUT_DIR/inference_plan.json"
  echo "== bench sweep: fleet serving =="
  "$BUILD_DIR/bench/bench_micro" \
    --serving_json="$OUT_DIR/serving.json"
  echo "== bench sweep: int8 quantization (5-profile F1 parity) =="
  "$BUILD_DIR/bench/bench_micro" \
    --quant_json="$OUT_DIR/quant.json"
  echo "== bench gate: sweeps vs bench_results/baselines =="
  python3 scripts/bench_gate.py --current-dir "$OUT_DIR"
elif [ "$SAN" = "pool" ]; then
  echo "== pool suite: ASan, TFMAE_POOL=1 =="
  TFMAE_POOL=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 =="
  TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=0 =="
  TFMAE_POOL=0 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
fi
