#!/usr/bin/env bash
# Build and run the test suite, optionally under a sanitizer.
#
# Usage:
#   scripts/check.sh [plain|thread|address|undefined] [extra ctest args...]
#
# Examples:
#   scripts/check.sh                 # plain Release build, full suite
#   scripts/check.sh thread          # ThreadSanitizer build, full suite
#   scripts/check.sh thread -R Gemm  # tsan build, GEMM/thread-pool tests only
#
# Each mode builds into its own directory (build-check-<mode>) so sanitized
# and plain object files never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-plain}"
shift || true

case "$SAN" in
  plain)   SAN_FLAG="" ;;
  thread|address|undefined) SAN_FLAG="-DTFMAE_SANITIZE=$SAN" ;;
  *)
    echo "usage: $0 [plain|thread|address|undefined] [ctest args...]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check-$SAN"

cmake -B "$BUILD_DIR" -S . $SAN_FLAG >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
