#!/usr/bin/env bash
# Build and run the test suite, optionally under a sanitizer or with the
# observability layer compiled in.
#
# Usage:
#   scripts/check.sh [plain|thread|address|undefined|obs|pool] [extra ctest args...]
#
# Examples:
#   scripts/check.sh                 # plain Release build, full suite
#   scripts/check.sh thread          # ThreadSanitizer build, full suite
#   scripts/check.sh thread -R Gemm  # tsan build, GEMM/thread-pool tests only
#   scripts/check.sh obs             # -DTFMAE_OBS=ON + tsan, collection on
#
# The obs mode is the instrumentation soak from docs/OBSERVABILITY.md: the
# whole tier-1 suite runs with the macros compiled in, TFMAE_OBS=1 so every
# site actually records, and ThreadSanitizer watching the registry's
# lock-free shard path.
#
# The pool mode is the memory-plane soak from DESIGN.md: the tier-1 suite
# runs under AddressSanitizer three times — pool on, pool on with the NaN
# scrub canary, and TFMAE_POOL=0 — so buffer recycling, read-before-write
# of recycled memory, and the unpooled escape hatch are all exercised with
# lifetime checking. The PoolDeterminismTest cases inside the suite pin the
# two-seed bitwise pooled-vs-unpooled training-loss comparison at 1/2/4
# threads.
#
# Each mode builds into its own directory (build-check-<mode>) so sanitized
# and plain object files never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-plain}"
shift || true

case "$SAN" in
  plain)   SAN_FLAG="" ;;
  thread|address|undefined) SAN_FLAG="-DTFMAE_SANITIZE=$SAN" ;;
  obs)     SAN_FLAG="-DTFMAE_OBS=ON -DTFMAE_SANITIZE=thread" ;;
  pool)    SAN_FLAG="-DTFMAE_SANITIZE=address" ;;
  *)
    echo "usage: $0 [plain|thread|address|undefined|obs|pool] [ctest args...]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check-$SAN"

cmake -B "$BUILD_DIR" -S . $SAN_FLAG >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [ "$SAN" = "obs" ]; then
  TFMAE_OBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
elif [ "$SAN" = "pool" ]; then
  echo "== pool suite: ASan, TFMAE_POOL=1 =="
  TFMAE_POOL=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 =="
  TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=0 =="
  TFMAE_POOL=0 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
fi
