#!/usr/bin/env bash
# Build and run the test suite, optionally under a sanitizer or with the
# observability layer compiled in.
#
# Usage:
#   scripts/check.sh [plain|thread|address|undefined|obs] [extra ctest args...]
#
# Examples:
#   scripts/check.sh                 # plain Release build, full suite
#   scripts/check.sh thread          # ThreadSanitizer build, full suite
#   scripts/check.sh thread -R Gemm  # tsan build, GEMM/thread-pool tests only
#   scripts/check.sh obs             # -DTFMAE_OBS=ON + tsan, collection on
#
# The obs mode is the instrumentation soak from docs/OBSERVABILITY.md: the
# whole tier-1 suite runs with the macros compiled in, TFMAE_OBS=1 so every
# site actually records, and ThreadSanitizer watching the registry's
# lock-free shard path.
#
# Each mode builds into its own directory (build-check-<mode>) so sanitized
# and plain object files never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-plain}"
shift || true

case "$SAN" in
  plain)   SAN_FLAG="" ;;
  thread|address|undefined) SAN_FLAG="-DTFMAE_SANITIZE=$SAN" ;;
  obs)     SAN_FLAG="-DTFMAE_OBS=ON -DTFMAE_SANITIZE=thread" ;;
  *)
    echo "usage: $0 [plain|thread|address|undefined|obs] [ctest args...]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check-$SAN"

cmake -B "$BUILD_DIR" -S . $SAN_FLAG >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [ "$SAN" = "obs" ]; then
  TFMAE_OBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
fi
