#!/usr/bin/env bash
# Build and run the test suite, optionally under a sanitizer or with the
# observability layer compiled in.
#
# Usage:
#   scripts/check.sh [plain|thread|address|undefined|obs|pool|faults] [extra ctest args...]
#
# Examples:
#   scripts/check.sh                 # plain Release build, full suite
#   scripts/check.sh thread          # ThreadSanitizer build, full suite
#   scripts/check.sh thread -R Gemm  # tsan build, GEMM/thread-pool tests only
#   scripts/check.sh obs             # -DTFMAE_OBS=ON + tsan, collection on
#   scripts/check.sh faults          # -DTFMAE_FAULTS=ON + UBSan + seeded sweep
#
# The obs mode is the instrumentation soak from docs/OBSERVABILITY.md: the
# whole tier-1 suite runs with the macros compiled in, TFMAE_OBS=1 so every
# site actually records, and ThreadSanitizer watching the registry's
# lock-free shard path.
#
# The pool mode is the memory-plane soak from DESIGN.md: the tier-1 suite
# runs under AddressSanitizer three times — pool on, pool on with the NaN
# scrub canary, and TFMAE_POOL=0 — so buffer recycling, read-before-write
# of recycled memory, and the unpooled escape hatch are all exercised with
# lifetime checking. The PoolDeterminismTest cases inside the suite pin the
# two-seed bitwise pooled-vs-unpooled training-loss comparison at 1/2/4
# threads.
#
# The faults mode is the resilience soak from docs/RESILIENCE.md: the whole
# tier-1 suite runs with -DTFMAE_FAULTS=ON (and UndefinedBehaviorSanitizer,
# since injected failures walk the error paths that rarely run otherwise).
# Injection points are compiled in but inert, so the suite must pass exactly
# as in a plain build — that is the first run. The second phase re-runs the
# fault-injection tests under a sweep of seeds (TFMAE_FAULT_SWEEP_SEED),
# which the tests use to drive randomized injected I/O failures, NaN losses,
# and interrupts; training and recovery must survive every seed.
#
# Each mode builds into its own directory (build-check-<mode>) so sanitized
# and plain object files never mix.
set -euo pipefail

cd "$(dirname "$0")/.."

SAN="${1:-plain}"
shift || true

case "$SAN" in
  plain)   SAN_FLAG="" ;;
  thread|address|undefined) SAN_FLAG="-DTFMAE_SANITIZE=$SAN" ;;
  obs)     SAN_FLAG="-DTFMAE_OBS=ON -DTFMAE_SANITIZE=thread" ;;
  pool)    SAN_FLAG="-DTFMAE_SANITIZE=address" ;;
  faults)  SAN_FLAG="-DTFMAE_FAULTS=ON -DTFMAE_OBS=ON -DTFMAE_SANITIZE=undefined" ;;
  *)
    echo "usage: $0 [plain|thread|address|undefined|obs|pool|faults] [ctest args...]" >&2
    exit 2
    ;;
esac

BUILD_DIR="build-check-$SAN"

cmake -B "$BUILD_DIR" -S . $SAN_FLAG >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [ "$SAN" = "obs" ]; then
  TFMAE_OBS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
elif [ "$SAN" = "faults" ]; then
  echo "== faults suite: UBSan, injection points compiled in but inert =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  for seed in 1 7 1234; do
    echo "== faults sweep: injected failures, seed $seed =="
    TFMAE_FAULT_SWEEP_SEED="$seed" \
      ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -R 'FaultRegistry|FaultInjection|NumericGuard' "$@"
  done
elif [ "$SAN" = "pool" ]; then
  echo "== pool suite: ASan, TFMAE_POOL=1 =="
  TFMAE_POOL=1 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 =="
  TFMAE_POOL=1 TFMAE_POOL_SCRUB=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
  echo "== pool suite: ASan, TFMAE_POOL=0 =="
  TFMAE_POOL=0 ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
fi
