#!/usr/bin/env python3
"""Live-observability smoke for the serving plane (docs/OBSERVABILITY.md,
"Live endpoints & SLOs").

Drives a multi-stream `tfmae_serve` with `--metrics_port=0` (ephemeral
port, printed on stdout) and validates what an external operator actually
sees:

 1. /healthz answers 200 ("ok" or "degraded") while the server is live.
 2. /statusz is valid JSON carrying the ServeStats payload.
 3. /metrics mid-load is well-formed Prometheus text exposition:
    `tfmae_`-prefixed names, HELP/TYPE per family, cumulative monotone
    `_bucket{le=...}` series whose `+Inf` bucket equals `_count`.
 4. The stage-attributed timelines reconcile: the four per-stage histogram
    sums add up to the end-to-end total exactly, and the batch+score
    stages account for the `serve.score.window_ns` scoring latency within
    a 10% tolerance.
 5. On SIGTERM the server drains, /healthz flips to 503 while the
    endpoint lingers (`--drain_linger_ms`), and the process exits 0.

The scrape side is a plain HTTP client (urllib) so the smoke exercises the
listener's real wire framing, not a test double.

Usage:
  TFMAE_OBS=1 scripts/live_smoke.py --serve-bin build/tools/tfmae_serve
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

PORT_RE = re.compile(r"^metrics endpoint on port (\d+)$", re.M)
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
BUCKET_RE = re.compile(r'\{le="([^"]+)"\}')


def fetch(port, path, timeout=5.0):
    """-> (status, body) for GET http://127.0.0.1:port/path."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:  # non-2xx still has a body
        return err.code, err.read().decode("utf-8")


def parse_exposition(text):
    """Validates format line by line -> {family: {(labels or ''): float}}."""
    samples = {}
    helped, typed = set(), set()
    for line in text.splitlines():
        if not line:
            raise SystemExit("live_smoke: blank line in exposition")
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        if line.startswith("#"):
            raise SystemExit(f"live_smoke: unknown comment line: {line!r}")
        m = SAMPLE_RE.match(line)
        if m is None:
            raise SystemExit(f"live_smoke: malformed sample line: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        if not name.startswith("tfmae_"):
            raise SystemExit(f"live_smoke: unprefixed metric: {name}")
        samples.setdefault(name, {})[labels] = float(value)
    for name in samples:
        family = re.sub(r"_(bucket|sum|count|total)$", "", name)
        if not (name in helped or family in helped or
                name + "_total" in helped):
            raise SystemExit(f"live_smoke: {name} has no # HELP header")
    return samples


def histogram(samples, family):
    """-> (sum, count, [(le, cumulative)...]) for one histogram family."""
    total = samples.get(f"{family}_sum", {}).get("", None)
    count = samples.get(f"{family}_count", {}).get("", None)
    if total is None or count is None:
        raise SystemExit(f"live_smoke: histogram {family} missing _sum/_count")
    buckets = []
    for labels, value in samples.get(f"{family}_bucket", {}).items():
        m = BUCKET_RE.match(labels)
        if m is None:
            raise SystemExit(f"live_smoke: bad bucket labels {labels!r}")
        le = float("inf") if m.group(1) == "+Inf" else float(m.group(1))
        buckets.append((le, value))
    buckets.sort(key=lambda b: b[0])
    if not buckets or buckets[-1][0] != float("inf"):
        raise SystemExit(f"live_smoke: {family} lacks a +Inf bucket")
    if buckets[-1][1] != count:
        raise SystemExit(f"live_smoke: {family} +Inf bucket "
                         f"{buckets[-1][1]} != _count {count}")
    for (_, a), (_, b) in zip(buckets, buckets[1:]):
        if b < a:
            raise SystemExit(f"live_smoke: {family} buckets not cumulative")
    return total, count, buckets


def check_stage_reconciliation(samples):
    stages = ["queue", "batch", "score", "result"]
    sums = {}
    counts = {}
    for stage in stages:
        family = f"tfmae_serve_stage_{stage}_ns"
        sums[stage], counts[stage], _ = histogram(samples, family)
    total_sum, total_count, _ = histogram(samples, "tfmae_serve_stage_total_ns")
    for stage in stages:
        if counts[stage] != total_count:
            raise SystemExit(
                f"live_smoke: stage {stage} count {counts[stage]} != total "
                f"count {total_count} — stages must be recorded per window")
    stage_sum = sum(sums.values())
    # Totals are defined as the sum of the four stages, so the histogram
    # _sums agree exactly — no tolerance needed.
    if stage_sum != total_sum:
        raise SystemExit(
            f"live_smoke: stage sums {stage_sum} != total {total_sum}")
    # The scoring-latency histogram covers the pop->scored interval, i.e.
    # the batch-form + score stages; amortized integer division makes this
    # approximate per window, so reconcile within 10%.
    window_sum, window_count, _ = histogram(samples,
                                            "tfmae_serve_score_window_ns")
    if window_count != total_count:
        raise SystemExit(
            f"live_smoke: window_ns count {window_count} != stage count "
            f"{total_count}")
    covered = sums["batch"] + sums["score"]
    if window_sum > 0 and abs(covered - window_sum) > 0.10 * window_sum:
        raise SystemExit(
            f"live_smoke: batch+score stages {covered} vs "
            f"serve.score.window_ns {window_sum} — off by more than 10%")
    return total_count, stage_sum


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--serve-bin", required=True)
    parser.add_argument("--streams", type=int, default=256)
    parser.add_argument("--seconds", type=int, default=20,
                        help="load duration before the SIGTERM drain")
    parser.add_argument("--drain-linger-ms", type=int, default=4000)
    opts = parser.parse_args()

    env = dict(os.environ, TFMAE_OBS="1")
    cmd = [
        opts.serve_bin,
        f"--streams={opts.streams}",
        "--rows=0",
        f"--seconds={opts.seconds}",
        "--verify",
        "--metrics_port=0",
        "--stats_every=50",
        "--slo_latency_ms=5000",
        "--drift_every=256",
        f"--drain_linger_ms={opts.drain_linger_ms}",
    ]
    print(f"live_smoke: {' '.join(cmd)}")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)

    # Drain stdout on a thread so the server can never block on a full
    # pipe while the smoke is busy scraping or waiting out the drain.
    lines = []
    port_found = threading.Event()

    def pump():
        for line in proc.stdout:
            lines.append(line)
            if PORT_RE.search(line):
                port_found.set()

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()
    try:
        # The port line appears once the model is fitted and serving starts.
        if not port_found.wait(timeout=120.0):
            raise SystemExit("live_smoke: no 'metrics endpoint on port' line")
        port = int(PORT_RE.search("".join(lines)).group(1))
        print(f"live_smoke: serving on port {port}")

        # Let load accumulate so the scrape sees real stage timelines.
        time.sleep(min(5.0, opts.seconds / 2.0))

        status, body = fetch(port, "/healthz")
        if status != 200 or body.strip() not in ("ok", "degraded"):
            raise SystemExit(
                f"live_smoke: live /healthz = {status} {body!r}")
        print(f"live_smoke: /healthz {status} {body.strip()!r}")

        status, body = fetch(port, "/statusz")
        if status != 200:
            raise SystemExit(f"live_smoke: /statusz = {status}")
        stats = json.loads(body)
        if stats.get("windows_scored", 0) <= 0:
            raise SystemExit("live_smoke: /statusz shows nothing scored yet")
        print(f"live_smoke: /statusz ok — {stats['windows_scored']} windows "
              f"scored, {stats['streams']} streams")

        status, body = fetch(port, "/metrics")
        if status != 200:
            raise SystemExit(f"live_smoke: /metrics = {status}")
        samples = parse_exposition(body)
        windows, stage_sum = check_stage_reconciliation(samples)
        print(f"live_smoke: /metrics ok — {len(samples)} series, stage "
              f"timelines reconcile over {int(windows)} windows "
              f"({int(stage_sum)} ns total)")

        status, _ = fetch(port, "/no_such_path")
        if status != 404:
            raise SystemExit(f"live_smoke: unknown path = {status}, want 404")

        # Drain: SIGTERM, then /healthz must flip to 503 while the process
        # lingers with the endpoint still up.
        proc.send_signal(signal.SIGTERM)
        flip_deadline = time.monotonic() + opts.seconds + 60.0
        flipped = False
        while time.monotonic() < flip_deadline:
            try:
                status, body = fetch(port, "/healthz", timeout=2.0)
            except (urllib.error.URLError, OSError):
                break  # linger expired before we caught the 503
            if status == 503:
                flipped = True
                print(f"live_smoke: drained /healthz 503 {body.strip()!r}")
                break
            time.sleep(0.1)
        if not flipped:
            raise SystemExit("live_smoke: /healthz never served 503 during "
                             "drain — raise --drain-linger-ms")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=opts.seconds + 120.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            rc = proc.wait()
        reader.join(timeout=10.0)
    if rc != 0:
        sys.stdout.write("".join(lines))
        raise SystemExit(f"live_smoke: tfmae_serve exited {rc}")
    if "stats {" not in "".join(lines):
        raise SystemExit("live_smoke: no --stats_every heartbeat lines")
    print("live_smoke: PASS — exposition valid, stages reconcile, "
          "drain flips /healthz, verify green with the endpoint active")
    return 0


if __name__ == "__main__":
    sys.exit(main())
