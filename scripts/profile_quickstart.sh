#!/usr/bin/env bash
# Profile the quickstart example through the observability layer.
#
# Builds the tree with -DTFMAE_OBS=ON (into its own build directory so the
# default build stays uninstrumented), runs examples/quickstart with
# --obs_json (and --obs_trace for a chrome://tracing timeline), then
# sanity-checks the emitted JSON profile.
#
# Usage:
#   scripts/profile_quickstart.sh [output.json]
#
# Outputs (defaults under build-obs/):
#   PROFILE_quickstart.json   metrics snapshot (counters/gauges/histograms)
#   PROFILE_quickstart_trace.json   chrome://tracing timeline
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build-obs"
OUT_JSON="${1:-$BUILD_DIR/PROFILE_quickstart.json}"
OUT_TRACE="${OUT_JSON%.json}_trace.json"

cmake -B "$BUILD_DIR" -S . -DTFMAE_OBS=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target quickstart

"$BUILD_DIR/examples/quickstart" \
  --obs_json="$OUT_JSON" --obs_trace="$OUT_TRACE"

# Sanity-check the profile: it must parse as JSON, report instrumentation
# compiled in, and contain the hot-path metrics the quickstart exercises.
python3 - "$OUT_JSON" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    profile = json.load(f)

assert profile.get("obs_compiled") is True, "instrumentation not compiled in"
counters = profile.get("counters", {})
histograms = profile.get("histograms", {})

for required in ("tensor.gemm.flops", "tensor.gemm.calls",
                 "nn.adam.steps"):
    assert counters.get(required, 0) > 0, f"missing counter {required}"
for required in ("tensor.gemm.time_ns",):
    hist = histograms.get(required)
    assert hist and hist.get("count", 0) > 0, f"missing histogram {required}"

gemm_ms = counters.get("tensor.gemm.total_ns", 0) / 1e6
print(f"profile OK: {path}")
print(f"  gemm: {counters['tensor.gemm.calls']} calls, "
      f"{counters['tensor.gemm.flops']/1e9:.2f} GFLOP, {gemm_ms:.1f} ms")
print(f"  adam steps: {counters['nn.adam.steps']}")
EOF

echo "trace timeline: $OUT_TRACE (load in chrome://tracing or Perfetto)"
