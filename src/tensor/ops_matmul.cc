// Matrix multiplication operators and their gradients.
//
// All compute is delegated to the blocked, thread-parallel kernels in
// gemm_kernels.h — forward and backward paths alike — so Transformer
// training parallelizes across the pool while staying bit-deterministic in
// the thread count.
#include <cstring>

#include "tensor/capture.h"
#include "tensor/gemm_kernels.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "tensor/pool.h"
#include "util/logging.h"

namespace tfmae::ops {
namespace {

using internal::SetGraph;
using internal::ShouldTrack;

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "MatMul expects rank-2 tensors, got "
                      << ShapeToString(a.shape()) << " x "
                      << ShapeToString(b.shape()));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  TFMAE_CHECK_MSG(b.dim(0) == k, "MatMul inner-dimension mismatch: "
                                     << ShapeToString(a.shape()) << " x "
                                     << ShapeToString(b.shape()));
  Tensor out = Tensor::Zeros({m, n});
  gemm::Gemm(a.data(), b.data(), out.data(), m, k, n);
  capture::NoteMatMul(a, b, out);

  if (ShouldTrack({a, b})) {
    SetGraph(&out, "MatMul", {a, b}, [a, b, m, k, n](TensorImpl& self) {
      const float* grad = self.grad.get();
      if (a.requires_grad()) {
        // dA[i,p] = sum_j G[i,j] * B[p,j], i.e. G * B^T with B stored [K,N].
        // Zero-filled pooled scratch: the kernels accumulate into it.
        pool::Scratch da(m * k, /*zero_fill=*/true);
        gemm::GemmBt(grad, b.data(), da.data(), m, n, k);
        internal::AccumulateGrad(a, da.data());
      }
      if (b.requires_grad()) {
        // dB = A^T * G.
        pool::Scratch db(k * n, /*zero_fill=*/true);
        gemm::GemmAtB(a.data(), grad, db.data(), m, k, n);
        internal::AccumulateGrad(b, db.data());
      }
    });
  }
  return out;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 3 && b.rank() == 3,
                  "BatchedMatMul expects rank-3 tensors");
  const std::int64_t batch = a.dim(0);
  const std::int64_t m = a.dim(1);
  const std::int64_t k = a.dim(2);
  const std::int64_t n = b.dim(2);
  TFMAE_CHECK_MSG(b.dim(0) == batch && b.dim(1) == k,
                  "BatchedMatMul shape mismatch: "
                      << ShapeToString(a.shape()) << " x "
                      << ShapeToString(b.shape()));
  Tensor out = Tensor::Zeros({batch, m, n});
  gemm::BatchedGemm(a.data(), b.data(), out.data(), batch, m, k, n);
  capture::NoteBatchedMatMul(a, b, out, /*transpose_b=*/false);
  if (ShouldTrack({a, b})) {
    SetGraph(&out, "BatchedMatMul", {a, b},
             [a, b, batch, m, k, n](TensorImpl& self) {
      const float* grad = self.grad.get();
      if (a.requires_grad()) {
        pool::Scratch da(batch * m * k, /*zero_fill=*/true);
        gemm::BatchedGemmBt(grad, b.data(), da.data(), batch, m, n, k);
        internal::AccumulateGrad(a, da.data());
      }
      if (b.requires_grad()) {
        pool::Scratch db(batch * k * n, /*zero_fill=*/true);
        gemm::BatchedGemmAtB(a.data(), grad, db.data(), batch, m, k, n);
        internal::AccumulateGrad(b, db.data());
      }
    });
  }
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  return BatchedMatMul(a, b);
}

Tensor BatchedMatMulBt(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 3 && b.rank() == 3,
                  "BatchedMatMulBt expects rank-3 tensors");
  const std::int64_t batch = a.dim(0);
  const std::int64_t m = a.dim(1);
  const std::int64_t k = a.dim(2);
  const std::int64_t n = b.dim(1);
  TFMAE_CHECK_MSG(b.dim(0) == batch && b.dim(2) == k,
                  "BatchedMatMulBt shape mismatch: "
                      << ShapeToString(a.shape()) << " x "
                      << ShapeToString(b.shape()));
  Tensor out = Tensor::Zeros({batch, m, n});
  gemm::BatchedGemmBt(a.data(), b.data(), out.data(), batch, m, k, n);
  capture::NoteBatchedMatMul(a, b, out, /*transpose_b=*/true);
  if (ShouldTrack({a, b})) {
    SetGraph(&out, "BatchedMatMulBt", {a, b},
             [a, b, batch, m, k, n](TensorImpl& self) {
      const float* grad = self.grad.get();
      if (a.requires_grad()) {
        // dA[bi] = G[bi] * B[bi] : [M,N] x [N,K].
        pool::Scratch da(batch * m * k, /*zero_fill=*/true);
        gemm::BatchedGemm(grad, b.data(), da.data(), batch, m, n, k);
        internal::AccumulateGrad(a, da.data());
      }
      if (b.requires_grad()) {
        // dB[bi] = G[bi]^T * A[bi] : [N,M] x [M,K].
        pool::Scratch db(batch * n * k, /*zero_fill=*/true);
        gemm::BatchedGemmAtB(grad, a.data(), db.data(), batch, m, n, k);
        internal::AccumulateGrad(b, db.data());
      }
    });
  }
  return out;
}

Tensor Linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  Tensor out = MatMul(x, w);
  if (bias.defined()) out = Add(out, bias);
  return out;
}

}  // namespace tfmae::ops
