// Matrix multiplication kernels and their gradients.
//
// The inner kernel is a cache-friendly i-k-j loop (the k-loop broadcast of
// A[i][k] lets the compiler vectorize the j-sweep), which is the main
// compute path for Transformer training on this CPU substrate.
#include <cstring>

#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "util/logging.h"

namespace tfmae::ops {
namespace {

using internal::SetGraph;
using internal::ShouldTrack;

// C[M,N] += A[M,K] * B[K,N]
void GemmAccumulate(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

// C[M,N] += A[M,K] * B^T where B is [N,K] (i.e. multiply by B transposed).
void GemmAccumulateBt(const float* a, const float* b_t, float* c,
                      std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b_t + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// C[K,N] += A^T * G where A is [M,K], G is [M,N].
void GemmAccumulateAtB(const float* a, const float* g, float* c,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * grow[j];
      }
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "MatMul expects rank-2 tensors, got "
                      << ShapeToString(a.shape()) << " x "
                      << ShapeToString(b.shape()));
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  TFMAE_CHECK_MSG(b.dim(0) == k, "MatMul inner-dimension mismatch: "
                                     << ShapeToString(a.shape()) << " x "
                                     << ShapeToString(b.shape()));
  Tensor out = Tensor::Zeros({m, n});
  GemmAccumulate(a.data(), b.data(), out.data(), m, k, n);

  if (ShouldTrack({a, b})) {
    SetGraph(&out, {a, b}, [a, b, m, k, n](TensorImpl& self) {
      const float* grad = self.grad.get();
      if (a.requires_grad()) {
        // dA = G * B^T : [M,N] x [N,K]^T-of-[K,N].
        std::vector<float> da(static_cast<std::size_t>(m * k), 0.0f);
        // B is [K,N]; we need G[M,N] * B^T[N,K]. Reuse GemmAccumulateBt with
        // "B rows" being columns of B — build via AtB on transposed roles:
        // dA[i,p] = sum_j G[i,j] * B[p,j].
        for (std::int64_t i = 0; i < m; ++i) {
          const float* grow = grad + i * n;
          float* darow = da.data() + i * k;
          for (std::int64_t p = 0; p < k; ++p) {
            const float* brow = b.data() + p * n;
            float acc = 0.0f;
            for (std::int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
            darow[p] += acc;
          }
        }
        internal::AccumulateGrad(a, da.data());
      }
      if (b.requires_grad()) {
        std::vector<float> db(static_cast<std::size_t>(k * n), 0.0f);
        GemmAccumulateAtB(a.data(), grad, db.data(), m, k, n);
        internal::AccumulateGrad(b, db.data());
      }
    });
  }
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 3 && b.rank() == 3,
                  "BatchMatMul expects rank-3 tensors");
  const std::int64_t batch = a.dim(0);
  const std::int64_t m = a.dim(1);
  const std::int64_t k = a.dim(2);
  const std::int64_t n = b.dim(2);
  TFMAE_CHECK_MSG(b.dim(0) == batch && b.dim(1) == k,
                  "BatchMatMul shape mismatch: " << ShapeToString(a.shape())
                                                 << " x "
                                                 << ShapeToString(b.shape()));
  Tensor out = Tensor::Zeros({batch, m, n});
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    GemmAccumulate(a.data() + bi * m * k, b.data() + bi * k * n,
                   out.data() + bi * m * n, m, k, n);
  }
  if (ShouldTrack({a, b})) {
    SetGraph(&out, {a, b}, [a, b, batch, m, k, n](TensorImpl& self) {
      const float* grad = self.grad.get();
      if (a.requires_grad()) {
        std::vector<float> da(static_cast<std::size_t>(batch * m * k), 0.0f);
        for (std::int64_t bi = 0; bi < batch; ++bi) {
          GemmAccumulateBt(grad + bi * m * n, b.data() + bi * k * n,
                           da.data() + bi * m * k, m, n, k);
        }
        internal::AccumulateGrad(a, da.data());
      }
      if (b.requires_grad()) {
        std::vector<float> db(static_cast<std::size_t>(batch * k * n), 0.0f);
        for (std::int64_t bi = 0; bi < batch; ++bi) {
          GemmAccumulateAtB(a.data() + bi * m * k, grad + bi * m * n,
                            db.data() + bi * k * n, m, k, n);
        }
        internal::AccumulateGrad(b, db.data());
      }
    });
  }
  return out;
}

Tensor Linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  Tensor out = MatMul(x, w);
  if (bias.defined()) out = Add(out, bias);
  return out;
}

}  // namespace tfmae::ops
