// Elementwise binary/unary/scalar operators.
//
// Large loops are dispatched over the thread pool in fixed-size chunks
// (see ops_internal.h); every chunk writes a disjoint slice of the output,
// so results are bit-identical at any pool size.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "tensor/capture.h"
#include "tensor/op_kernels.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "tensor/pool.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tfmae::ops {

namespace internal {

namespace {
std::atomic<std::int64_t> g_graph_nodes{0};
}  // namespace

bool ShouldTrack(std::initializer_list<Tensor> inputs) {
  if (!GradModeEnabled()) return false;
  for (const Tensor& t : inputs) {
    if (t.defined() && t.requires_grad()) return true;
  }
  return false;
}

void SetGraph(Tensor* out, const char* op, std::vector<Tensor> inputs,
              std::function<void(TensorImpl&)> backward_fn) {
  g_graph_nodes.fetch_add(1, std::memory_order_relaxed);
  out->set_requires_grad(true);
  out->impl()->op = op;
  out->impl()->inputs = std::move(inputs);
  out->impl()->backward_fn = std::move(backward_fn);
}

std::int64_t GraphNodesCreated() {
  return g_graph_nodes.load(std::memory_order_relaxed);
}

void AccumulateGrad(const Tensor& t, const float* src) {
  AccumulateGradScaled(t, src, 1.0f);
}

void AccumulateGradScaled(const Tensor& t, const float* src, float scale) {
  if (!t.defined() || !t.requires_grad()) return;
  float* g = t.impl()->EnsureGrad();
  ParallelElems(t.numel(), [g, src, scale](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) g[i] += scale * src[i];
  });
}

void ParallelElems(std::int64_t n,
                   const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n < kParallelThreshold) {
    fn(0, n);
    return;
  }
  ParallelFor(0, n, kElemGrain, fn);
}

std::int64_t RowGrain(std::int64_t cols) {
  return std::max<std::int64_t>(
      1, kParallelThreshold / std::max<std::int64_t>(1, cols));
}

std::int64_t ParallelRows(
    std::int64_t rows, std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t grain = RowGrain(cols);
  if (rows * cols < kParallelThreshold) {
    fn(0, rows);
  } else {
    ParallelFor(0, rows, grain, fn);
  }
  return grain;
}

}  // namespace internal

namespace {

using internal::ParallelElems;
using internal::SetGraph;
using internal::ShouldTrack;

// The per-element arithmetic lives in op_kernels.h, shared with the
// pre-planned inference executor (bitwise identity by construction).
using kernels::BinaryKind;

// Resolves the broadcast layout: `big` iterates fully, `small` repeats every
// small->numel() elements. Returns (big, small, small_is_lhs).
struct BroadcastPlan {
  Tensor big;
  Tensor small;
  bool small_is_lhs = false;
};

BroadcastPlan PlanBroadcast(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK(a.defined() && b.defined());
  if (SameShape(a.shape(), b.shape())) return {a, b, false};
  if (b.numel() == 1 || IsSuffixOf(b.shape(), a.shape())) return {a, b, false};
  if (a.numel() == 1 || IsSuffixOf(a.shape(), b.shape())) return {b, a, true};
  TFMAE_CHECK_MSG(false, "incompatible broadcast shapes "
                             << ShapeToString(a.shape()) << " vs "
                             << ShapeToString(b.shape()));
  return {};
}

// Sums `grad` (numel = big) blockwise into a small-tensor-sized buffer
// (caller-provided, at least small_n floats). Serial: the accumulation
// order over the big range is part of the deterministic contract.
void ReduceToSmall(const float* grad, std::int64_t big_n, std::int64_t small_n,
                   float* out) {
  std::fill(out, out + small_n, 0.0f);
  for (std::int64_t i = 0; i < big_n; ++i) {
    out[i % small_n] += grad[i];
  }
}

const char* BinaryOpName(BinaryKind kind) {
  switch (kind) {
    case BinaryKind::kAdd:
      return "Add";
    case BinaryKind::kSub:
      return "Sub";
    case BinaryKind::kMul:
      return "Mul";
    case BinaryKind::kDiv:
      return "Div";
  }
  return "BinaryOp";
}

Tensor BinaryOp(const Tensor& a, const Tensor& b, BinaryKind kind) {
  BroadcastPlan plan = PlanBroadcast(a, b);
  const Tensor& big = plan.big;
  const Tensor& small = plan.small;
  const std::int64_t big_n = big.numel();
  const std::int64_t small_n = small.numel();
  TFMAE_CHECK(big_n % small_n == 0);

  Tensor out = Tensor::Empty(big.shape());
  const float* pb = big.data();
  const float* ps = small.data();
  float* po = out.data();
  const bool small_lhs = plan.small_is_lhs;
  ParallelElems(big_n, [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) {
      const float x = small_lhs ? ps[i % small_n] : pb[i];
      const float y = small_lhs ? pb[i] : ps[i % small_n];
      po[i] = kernels::ApplyBinary(kind, x, y);
    }
  });
  capture::NoteBinary(static_cast<int>(kind), a, b, out);

  if (ShouldTrack({a, b})) {
    SetGraph(&out, BinaryOpName(kind), {a, b}, [a, b, kind](TensorImpl& self) {
      BroadcastPlan plan = PlanBroadcast(a, b);
      const Tensor& big = plan.big;
      const Tensor& small = plan.small;
      const std::int64_t big_n = big.numel();
      const std::int64_t small_n = small.numel();
      const float* grad = self.grad.get();
      const float* pb = big.data();
      const float* ps = small.data();
      const bool small_lhs = plan.small_is_lhs;

      // d(out)/d(big) and d(out)/d(small) per element (pooled scratch,
      // fully overwritten below).
      pool::Scratch big_grad(big_n);
      pool::Scratch small_grad_full(big_n);
      float* pbig_grad = big_grad.data();
      float* psmall_grad = small_grad_full.data();
      ParallelElems(big_n, [=](std::int64_t s, std::int64_t e) {
        for (std::int64_t i = s; i < e; ++i) {
          const float sv = ps[i % small_n];
          const float bv = pb[i];
          float d_big = 0.0f;
          float d_small = 0.0f;
          switch (kind) {
            case BinaryKind::kAdd:
              d_big = 1.0f;
              d_small = 1.0f;
              break;
            case BinaryKind::kSub:
              // out = lhs - rhs; lhs is small when small_lhs.
              d_big = small_lhs ? -1.0f : 1.0f;
              d_small = small_lhs ? 1.0f : -1.0f;
              break;
            case BinaryKind::kMul:
              d_big = sv;
              d_small = bv;
              break;
            case BinaryKind::kDiv: {
              if (small_lhs) {
                // out = small / big.
                d_small = 1.0f / bv;
                d_big = -sv / (bv * bv);
              } else {
                // out = big / small.
                d_big = 1.0f / sv;
                d_small = -bv / (sv * sv);
              }
              break;
            }
          }
          pbig_grad[i] = grad[i] * d_big;
          psmall_grad[i] = grad[i] * d_small;
        }
      });
      internal::AccumulateGrad(big, big_grad.data());
      pool::Scratch small_grad(small_n);
      ReduceToSmall(small_grad_full.data(), big_n, small_n, small_grad.data());
      internal::AccumulateGrad(small, small_grad.data());
    });
  }
  return out;
}

Tensor UnaryOp(const Tensor& x, const char* op, float (*fwd)(float),
               float (*bwd)(float)) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelElems(x.numel(), [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) po[i] = fwd(px[i]);
  });
  capture::NoteUnsupported(op);
  if (ShouldTrack({x})) {
    SetGraph(&out, op, {x}, [x, bwd](TensorImpl& self) {
      const float* grad = self.grad.get();
      const float* px = x.data();
      const std::int64_t n = x.numel();
      pool::Scratch gx(n);
      float* pgx = gx.data();
      ParallelElems(n, [=](std::int64_t s, std::int64_t e) {
        for (std::int64_t i = s; i < e; ++i) pgx[i] = grad[i] * bwd(px[i]);
      });
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

constexpr float kLogFloor = 1e-12f;

float FwdNeg(float v) { return -v; }
float BwdNeg(float) { return -1.0f; }
float FwdExp(float v) { return std::exp(v); }
float BwdExp(float v) { return std::exp(v); }
float FwdLog(float v) { return std::log(v < kLogFloor ? kLogFloor : v); }
float BwdLog(float v) { return 1.0f / (v < kLogFloor ? kLogFloor : v); }
float FwdSqrt(float v) { return std::sqrt(v < 0.0f ? 0.0f : v); }
float BwdSqrt(float v) {
  const float clamped = v < 1e-12f ? 1e-12f : v;
  return 0.5f / std::sqrt(clamped);
}
float FwdSquare(float v) { return v * v; }
float BwdSquare(float v) { return 2.0f * v; }
float FwdRelu(float v) { return v > 0.0f ? v : 0.0f; }
float BwdRelu(float v) { return v > 0.0f ? 1.0f : 0.0f; }
float FwdTanh(float v) { return std::tanh(v); }
float BwdTanh(float v) {
  const float t = std::tanh(v);
  return 1.0f - t * t;
}
float FwdSigmoid(float v) { return 1.0f / (1.0f + std::exp(-v)); }
float BwdSigmoid(float v) {
  const float s = 1.0f / (1.0f + std::exp(-v));
  return s * (1.0f - s);
}

using kernels::kGeluC;  // sqrt(2/pi)

float FwdGelu(float v) { return kernels::GeluApprox(v); }
float BwdGelu(float v) {
  const float inner = kGeluC * (v + 0.044715f * v * v * v);
  const float t = std::tanh(inner);
  const float d_inner = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
  return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * d_inner;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, BinaryKind::kAdd);
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, BinaryKind::kSub);
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, BinaryKind::kMul);
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, BinaryKind::kDiv);
}

Tensor Scale(const Tensor& x, float c) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelElems(x.numel(), [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) po[i] = px[i] * c;
  });
  capture::NoteUnsupported("Scale");
  if (ShouldTrack({x})) {
    SetGraph(&out, "Scale", {x}, [x, c](TensorImpl& self) {
      internal::AccumulateGradScaled(x, self.grad.get(), c);
    });
  }
  return out;
}

Tensor AddScalar(const Tensor& x, float c) {
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelElems(x.numel(), [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) po[i] = px[i] + c;
  });
  capture::NoteUnsupported("AddScalar");
  if (ShouldTrack({x})) {
    SetGraph(&out, "AddScalar", {x}, [x](TensorImpl& self) {
      internal::AccumulateGrad(x, self.grad.get());
    });
  }
  return out;
}

Tensor Neg(const Tensor& x) { return UnaryOp(x, "Neg", FwdNeg, BwdNeg); }
Tensor Exp(const Tensor& x) { return UnaryOp(x, "Exp", FwdExp, BwdExp); }
Tensor Log(const Tensor& x) { return UnaryOp(x, "Log", FwdLog, BwdLog); }
Tensor Sqrt(const Tensor& x) { return UnaryOp(x, "Sqrt", FwdSqrt, BwdSqrt); }
Tensor Square(const Tensor& x) {
  return UnaryOp(x, "Square", FwdSquare, BwdSquare);
}
Tensor Relu(const Tensor& x) { return UnaryOp(x, "Relu", FwdRelu, BwdRelu); }
Tensor Gelu(const Tensor& x) { return UnaryOp(x, "Gelu", FwdGelu, BwdGelu); }
Tensor Tanh(const Tensor& x) { return UnaryOp(x, "Tanh", FwdTanh, BwdTanh); }
Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(x, "Sigmoid", FwdSigmoid, BwdSigmoid);
}

Tensor BiasGelu(const Tensor& x, const Tensor& bias) {
  TFMAE_CHECK(x.defined() && bias.defined());
  TFMAE_CHECK_MSG(bias.numel() == 1 || IsSuffixOf(bias.shape(), x.shape()),
                  "BiasGelu bias " << ShapeToString(bias.shape())
                                   << " must broadcast over "
                                   << ShapeToString(x.shape()));
  const std::int64_t n = x.numel();
  const std::int64_t bn = bias.numel();
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  const bool track = ShouldTrack({x, bias});
  // When tracking, the forward's tanh values are cached in a pool-backed
  // side tensor so the backward does not pay the transcendental again.
  // Reading the stored value is bitwise-equal to recomputing it, so the
  // fusion stays indistinguishable from Gelu(Add(x, bias)).
  Tensor tanh_cache;
  if (track) tanh_cache = Tensor::Empty(x.shape());
  float* pt = track ? tanh_cache.data() : nullptr;
  // One pass instead of materializing x + bias: same per-element arithmetic
  // as Gelu(Add(x, bias)), so the fusion is bitwise-invisible.
  ParallelElems(n, [=](std::int64_t s, std::int64_t e) {
    if (pt != nullptr) {
      for (std::int64_t i = s; i < e; ++i) {
        const float v = px[i] + pb[i % bn];
        const float inner = kGeluC * (v + 0.044715f * v * v * v);
        const float t = std::tanh(inner);
        pt[i] = t;
        po[i] = 0.5f * v * (1.0f + t);
      }
    } else {
      for (std::int64_t i = s; i < e; ++i) po[i] = FwdGelu(px[i] + pb[i % bn]);
    }
  });
  capture::NoteBiasGelu(x, bias, out);
  if (track) {
    SetGraph(&out, "BiasGelu", {x, bias},
             [x, bias, tanh_cache](TensorImpl& self) {
               const float* grad = self.grad.get();
               const float* px = x.data();
               const float* pb = bias.data();
               const float* pt = tanh_cache.data();
               const std::int64_t n = x.numel();
               const std::int64_t bn = bias.numel();
               // d(out)/d(pre) with pre = x + bias recomputed on the fly
               // (cheap) and tanh(inner) read from the forward's cache.
               pool::Scratch gpre(n);
               float* pg = gpre.data();
               ParallelElems(n, [=](std::int64_t s, std::int64_t e) {
                 for (std::int64_t i = s; i < e; ++i) {
                   const float v = px[i] + pb[i % bn];
                   const float t = pt[i];
                   const float d_inner =
                       kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
                   pg[i] = grad[i] * (0.5f * (1.0f + t) +
                                      0.5f * v * (1.0f - t * t) * d_inner);
                 }
               });
               internal::AccumulateGrad(x, gpre.data());
               if (bias.requires_grad()) {
                 pool::Scratch gbias(bn);
                 ReduceToSmall(gpre.data(), n, bn, gbias.data());
                 internal::AccumulateGrad(bias, gbias.data());
               }
             });
  }
  return out;
}

void AddInPlace(Tensor* x, const Tensor& y) {
  TFMAE_CHECK(x != nullptr && x->defined() && y.defined());
  TFMAE_CHECK_MSG(!GradModeEnabled() ||
                      (!x->requires_grad() && !y.requires_grad()),
                  "AddInPlace requires a no-grad context: in-place writes "
                  "would corrupt recorded graph values");
  TFMAE_CHECK_MSG(!x->impl()->backward_fn,
                  "AddInPlace destination must not be a recorded op output "
                  "(a pending backward may read its stored values)");
  TFMAE_CHECK_MSG(
      SameShape(y.shape(), x->shape()) || y.numel() == 1 ||
          IsSuffixOf(y.shape(), x->shape()),
      "AddInPlace operand " << ShapeToString(y.shape())
                            << " must broadcast over "
                            << ShapeToString(x->shape()));
  const std::int64_t n = x->numel();
  const std::int64_t yn = y.numel();
  float* px = x->data();
  const float* py = y.data();
  ParallelElems(n, [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) px[i] += py[i % yn];
  });
}

void MulScalarInPlace(Tensor* x, float c) {
  TFMAE_CHECK(x != nullptr && x->defined());
  TFMAE_CHECK_MSG(!GradModeEnabled() || !x->requires_grad(),
                  "MulScalarInPlace requires a no-grad context: in-place "
                  "writes would corrupt recorded graph values");
  TFMAE_CHECK_MSG(!x->impl()->backward_fn,
                  "MulScalarInPlace destination must not be a recorded op "
                  "output (a pending backward may read its stored values)");
  const std::int64_t n = x->numel();
  float* px = x->data();
  ParallelElems(n, [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t i = s; i < e; ++i) px[i] *= c;
  });
}

}  // namespace tfmae::ops
