#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "obs/trace.h"
#include "tensor/capture.h"
#include "tensor/pool.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/rng.h"

namespace tfmae {

namespace {
thread_local bool g_grad_mode = true;

// Pool-backed buffer whose handle also keeps the LOGICAL MemoryStats books
// balanced: the exact byte count is recorded here and freed when the last
// alias (Tensor copy or Detach) drops the block. The pool tracks the
// physical (size-class) side separately.
std::shared_ptr<float[]> AllocateBuffer(std::int64_t numel) {
  const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
  MemoryStats::RecordAlloc(bytes);
  std::shared_ptr<float[]> block = pool::Acquire(numel);
  return std::shared_ptr<float[]>(block.get(),
                                  [block, bytes](float*) mutable {
                                    MemoryStats::RecordFree(bytes);
                                    block.reset();
                                  });
}
}  // namespace

TensorImpl::TensorImpl(Shape s) : shape(std::move(s)) {
  TFMAE_CHECK_MSG(!shape.empty(), "rank-0 tensors are not supported");
  for (std::int64_t d : shape) {
    TFMAE_CHECK_MSG(d > 0, "non-positive dimension in " << ShapeToString(shape));
  }
  numel = NumElements(shape);
  data = AllocateBuffer(numel);
}

float* TensorImpl::EnsureGrad() {
  if (!grad) {
    const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
    MemoryStats::RecordGradAlloc(bytes);
    std::shared_ptr<float[]> block = pool::Acquire(numel);
    grad = std::shared_ptr<float[]>(block.get(),
                                    [block, bytes](float*) mutable {
                                      MemoryStats::RecordFree(bytes);
                                      block.reset();
                                    });
    std::fill(grad.get(), grad.get() + numel, 0.0f);
  }
  return grad.get();
}

Tensor Tensor::Empty(Shape shape) {
  return Tensor(std::make_shared<TensorImpl>(std::move(shape)));
}

Tensor Tensor::Zeros(Shape shape) {
  Tensor t = Empty(std::move(shape));
  std::fill(t.data(), t.data() + t.numel(), 0.0f);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  std::fill(t.data(), t.data() + t.numel(), value);
  return t;
}

Tensor Tensor::FromData(Shape shape, const std::vector<float>& values) {
  Tensor t = Empty(std::move(shape));
  TFMAE_CHECK_MSG(static_cast<std::int64_t>(values.size()) == t.numel(),
                  "FromData size mismatch: " << values.size() << " values for "
                                             << ShapeToString(t.shape()));
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  ops::capture::NoteFromData(t);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

const Shape& Tensor::shape() const {
  TFMAE_CHECK(defined());
  return impl_->shape;
}

std::int64_t Tensor::numel() const {
  TFMAE_CHECK(defined());
  return impl_->numel;
}

std::int64_t Tensor::dim(std::size_t axis) const {
  TFMAE_CHECK(defined() && axis < impl_->shape.size());
  return impl_->shape[axis];
}

std::size_t Tensor::rank() const {
  TFMAE_CHECK(defined());
  return impl_->shape.size();
}

float* Tensor::data() {
  TFMAE_CHECK(defined());
  return impl_->data.get();
}

const float* Tensor::data() const {
  TFMAE_CHECK(defined());
  return impl_->data.get();
}

float Tensor::at(std::int64_t flat_index) const {
  TFMAE_CHECK(defined() && flat_index >= 0 && flat_index < impl_->numel);
  return impl_->data[static_cast<std::size_t>(flat_index)];
}

std::vector<float> Tensor::ToVector() const {
  TFMAE_CHECK(defined());
  return std::vector<float>(data(), data() + numel());
}

float Tensor::item() const {
  TFMAE_CHECK_MSG(defined() && numel() == 1,
                  "item() requires a one-element tensor");
  return impl_->data[0];
}

bool Tensor::requires_grad() const {
  TFMAE_CHECK(defined());
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  TFMAE_CHECK(defined());
  impl_->requires_grad = value;
  return *this;
}

const float* Tensor::grad_data() const {
  TFMAE_CHECK(defined());
  return impl_->grad.get();
}

Tensor Tensor::grad() const {
  TFMAE_CHECK_MSG(defined() && impl_->grad,
                  "grad() called on a tensor with no accumulated gradient");
  Tensor g = Empty(impl_->shape);
  std::memcpy(g.data(), impl_->grad.get(),
              static_cast<std::size_t>(impl_->numel) * sizeof(float));
  return g;
}

void Tensor::ZeroGrad() {
  TFMAE_CHECK(defined());
  if (impl_->grad) {
    std::fill(impl_->grad.get(), impl_->grad.get() + impl_->numel, 0.0f);
  }
}

void Tensor::Backward() const {
  TFMAE_CHECK_MSG(defined() && numel() == 1,
                  "Backward() must be called on a scalar loss");
  // Iterative post-order DFS building a reverse topological order over the
  // recorded graph. The containers are thread-local and keep their capacity
  // (and the set its buckets) across calls, so repeated training steps walk
  // the same-shaped graph without touching the heap.
  struct Frame {
    TensorImpl* node;
    std::size_t next_input;
  };
  thread_local std::vector<TensorImpl*> topo;
  thread_local std::unordered_set<TensorImpl*> visited;
  thread_local std::vector<Frame> stack;
  topo.clear();
  visited.clear();
  stack.clear();
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input < frame.node->inputs.size()) {
      TensorImpl* child = frame.node->inputs[frame.next_input++].impl().get();
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }
  // topo is in post-order: inputs before outputs. Walk outputs-first.
  impl_->EnsureGrad()[0] = 1.0f;
  TFMAE_TRACE("tensor.backward");
  const bool time_nodes = obs::CompiledIn() && obs::Enabled();
  for (std::size_t i = topo.size(); i-- > 0;) {
    TensorImpl* node = topo[i];
    if (node->backward_fn && node->grad) {
      if (time_nodes) {
        const std::uint64_t start = obs::NowNs();
        node->backward_fn(*node);
        obs::AutogradRecord(node->op, obs::NowNs() - start);
      } else {
        node->backward_fn(*node);
      }
    }
  }
}

Tensor Tensor::Detach() const {
  TFMAE_CHECK(defined());
  auto detached = std::make_shared<TensorImpl>(impl_->shape);
  // Alias the storage: Detach is free and reflects later in-place updates,
  // matching the stop-gradient semantics of Eq. (15). The buffer created by
  // the constructor is dropped here (its deleter returns it to the pool and
  // keeps the MemoryStats books balanced); the shared alias guarantees the
  // pool cannot recycle the aliased block until BOTH handles are gone.
  detached->data = impl_->data;
  return Tensor(std::move(detached));
}

Tensor Tensor::Clone() const {
  TFMAE_CHECK(defined());
  Tensor copy = Empty(impl_->shape);
  std::memcpy(copy.data(), data(),
              static_cast<std::size_t>(numel()) * sizeof(float));
  return copy;
}

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }

NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

}  // namespace tfmae
