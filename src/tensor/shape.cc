#include "tensor/shape.h"

#include <sstream>

namespace tfmae {

std::int64_t NumElements(const Shape& shape) {
  if (shape.empty()) return 0;
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::vector<std::int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  for (std::size_t i = shape.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * shape[i];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

bool IsSuffixOf(const Shape& suffix, const Shape& shape) {
  if (suffix.size() > shape.size()) return false;
  const std::size_t offset = shape.size() - suffix.size();
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (suffix[i] != shape[offset + i]) return false;
  }
  return true;
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

}  // namespace tfmae
