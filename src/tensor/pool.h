// Pooled tensor-buffer allocator: the memory plane under the autograd tape.
//
// Every TensorImpl data/grad buffer and every backward scratch buffer is
// acquired here. Buffers are recycled through power-of-two size-class free
// lists, so a steady-state training step — whose tensor shapes repeat
// exactly from step to step — performs (near-)zero heap allocations after
// the first warm-up step: each buffer released at the end of step N is
// handed back for the same role in step N+1.
//
// Contracts:
//  * Determinism. The pool hands out memory, never values: every buffer is
//    either fully overwritten or explicitly zero-filled by its consumer
//    before any element is read (the rule Tensor::Empty already imposes).
//    Pooled and unpooled runs are therefore bitwise identical; the
//    scrub-on-acquire canary mode (below) exists to prove it.
//  * Aliasing. Acquire() returns a shared_ptr whose deleter releases the
//    block, so a block is reclaimed only when the LAST alias dies —
//    Tensor::Detach()'s storage sharing (the Eq. (15) stop-gradient path)
//    needs no special casing.
//  * Accounting. MemoryStats keeps recording LOGICAL bytes (exact tensor
//    sizes, alloc on acquire / free on final release) so the Fig. 10
//    memory-footprint comparison is unchanged by pooling; PoolStats tracks
//    the PHYSICAL side (hits, misses, cached and outstanding class bytes).
//
// Escape hatches:
//  * TFMAE_POOL=0 in the environment (or SetEnabled(false)) routes new
//    acquisitions to plain new[]/delete[]. Toggling is safe mid-process:
//    each block's deleter remembers how it was allocated.
//  * TFMAE_POOL_SCRUB=1 (or SetScrubForTesting(true)) fills every acquired
//    buffer with a signaling-NaN canary, so any read-before-write of
//    recycled memory poisons results instead of silently reusing stale
//    values.
//  * Trim() drops all cached free blocks (the epoch/arena reset hook for
//    long-lived servers between workloads).
#ifndef TFMAE_TENSOR_POOL_H_
#define TFMAE_TENSOR_POOL_H_

#include <cstdint>
#include <memory>

namespace tfmae::pool {

/// Point-in-time view of the pool's physical accounting. All counters are
/// monotone except the byte gauges.
struct PoolStats {
  std::int64_t hits = 0;        ///< acquisitions served from a free list
  std::int64_t misses = 0;      ///< acquisitions that hit the heap (pooled)
  std::int64_t unpooled = 0;    ///< acquisitions served while disabled
  std::int64_t releases = 0;    ///< blocks parked back on a free list
  std::int64_t outstanding_bytes = 0;       ///< class bytes currently lent out
  std::int64_t peak_outstanding_bytes = 0;  ///< high-water mark of the above
  std::int64_t cached_bytes = 0;            ///< class bytes parked on free lists

  /// Physical heap allocations performed by the tensor substrate so far
  /// (pool misses plus unpooled acquisitions) — the quantity the memory
  /// plane exists to drive to zero per steady-state step.
  std::int64_t HeapAllocs() const { return misses + unpooled; }
};

/// Rounds a float count up to its size class (next power of two, minimum
/// kMinClassFloats). Exposed for tests and capacity planning.
std::int64_t SizeClassFloats(std::int64_t numel);

/// Smallest class handed out; sub-kilobyte requests share one class so tiny
/// bias/scalar tensors do not fragment the free lists.
constexpr std::int64_t kMinClassFloats = 256;

/// Acquires a buffer of at least `numel` floats. Contents are unspecified
/// (possibly recycled); the caller must fully overwrite or zero-fill before
/// reading. The returned handle's deleter releases the block back to the
/// pool (or the heap, if pooling was off at acquisition) when the last
/// alias dies. Thread-safe.
std::shared_ptr<float[]> Acquire(std::int64_t numel);

/// True iff new acquisitions are pooled. Initialized from TFMAE_POOL
/// (anything but "0" enables; default on).
bool Enabled();

/// Turns pooling on/off for subsequent acquisitions. Blocks already lent
/// out are unaffected (their deleters remember their origin).
void SetEnabled(bool on);

/// Fills every subsequently acquired buffer with a NaN canary before
/// handing it out (both pooled and unpooled), so reads of
/// not-yet-overwritten memory become loudly visible. Initialized from
/// TFMAE_POOL_SCRUB ("1" enables; default off).
void SetScrubForTesting(bool on);

/// True iff scrub-on-acquire is currently on. The pre-planned inference
/// arena honors the same canary discipline between replays.
bool ScrubEnabled();

/// Frees every cached (idle) block. Outstanding buffers are untouched.
void Trim();

/// Snapshot of the physical accounting.
PoolStats Stats();

/// Resets peak_outstanding_bytes to the current outstanding level.
void ResetPeak();

/// Zeroes the monotone counters (hits, misses, unpooled, releases) and
/// resets the peak like ResetPeak(). Benchmark sweeps call this per row so
/// one row's churn cannot bleed into the next row's deltas.
void ResetCounters();

/// RAII scratch buffer for operator internals (backward partials, per-chunk
/// workspaces). Replaces `std::vector<float>` on hot paths: the backing
/// block comes from the pool and, unless `zero_fill` is set, skips the
/// vector's value-initialization memset (legal exactly when the consumer
/// fully overwrites it). Movable, not copyable.
class Scratch {
 public:
  explicit Scratch(std::int64_t numel, bool zero_fill = false);

  float* data() { return buffer_.get(); }
  const float* data() const { return buffer_.get(); }
  std::int64_t numel() const { return numel_; }

  Scratch(Scratch&&) = default;
  Scratch& operator=(Scratch&&) = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

 private:
  std::shared_ptr<float[]> buffer_;
  std::int64_t numel_ = 0;
};

}  // namespace tfmae::pool

#endif  // TFMAE_TENSOR_POOL_H_
