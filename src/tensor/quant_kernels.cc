#include "tensor/quant_kernels.h"

#include <cstring>
#include <string>

#include "util/thread_pool.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tfmae::quant {
namespace {

// Fixed row grain for the ParallelFor dispatch: boundaries depend only on
// the row count, never the thread count (determinism contract).
constexpr std::int64_t kRowGrain = 8;

// Round half away from zero, the single rounding rule of the whole scheme.
inline int RoundHalfAway(float v) {
  return static_cast<int>(v >= 0.0f ? v + 0.5f : v - 0.5f);
}

inline float ApplyScalarEpilogue(std::int32_t acc, std::int64_t j,
                                 const float* col_scale,
                                 const std::int32_t* col_comp,
                                 const float* bias, float a_scale,
                                 Epilogue epilogue) {
  const std::int32_t corrected = acc + col_comp[j];
  const float cs = a_scale * col_scale[j];
  float real = static_cast<float>(corrected) * cs;
  if (epilogue != Epilogue::kNone) real = real + bias[j];
  if (epilogue == Epilogue::kBiasGelu) real = FastGelu(real);
  return real;
}

void ScalarRows(const std::uint8_t* a, const std::int8_t* packed_b,
                const float* col_scale, const std::int32_t* col_comp,
                const float* bias, float a_scale, Epilogue epilogue,
                float* out, std::int64_t k4, std::int64_t n, std::int64_t s,
                std::int64_t e) {
  const std::int64_t kb_count = k4 / 4;
  for (std::int64_t i = s; i < e; ++i) {
    const std::uint8_t* arow = a + i * k4;
    float* orow = out + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t kb = 0; kb < kb_count; ++kb) {
        const std::int8_t* bp = packed_b + (kb * n + j) * 4;
        const std::uint8_t* ap = arow + kb * 4;
        acc += static_cast<std::int32_t>(ap[0]) * bp[0];
        acc += static_cast<std::int32_t>(ap[1]) * bp[1];
        acc += static_cast<std::int32_t>(ap[2]) * bp[2];
        acc += static_cast<std::int32_t>(ap[3]) * bp[3];
      }
      orow[j] = ApplyScalarEpilogue(acc, j, col_scale, col_comp, bias,
                                    a_scale, epilogue);
    }
  }
}

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)
#define TFMAE_QUANT_HAVE_VNNI 1

void VnniRows(const std::uint8_t* a, const std::int8_t* packed_b,
              const float* col_scale, const std::int32_t* col_comp,
              const float* bias, float a_scale, Epilogue epilogue, float* out,
              std::int64_t k4, std::int64_t n, std::int64_t s,
              std::int64_t e) {
  const std::int64_t kb_count = k4 / 4;
  const __m512 a_scale_v = _mm512_set1_ps(a_scale);
  for (std::int64_t i = s; i < e; ++i) {
    const std::uint8_t* arow = a + i * k4;
    float* orow = out + i * n;
    for (std::int64_t j0 = 0; j0 < n; j0 += 16) {
      const int jw = static_cast<int>(std::min<std::int64_t>(16, n - j0));
      const __mmask16 mask =
          jw == 16 ? static_cast<__mmask16>(0xffff)
                   : static_cast<__mmask16>((1u << jw) - 1u);
      __m512i acc = _mm512_setzero_si512();
      for (std::int64_t kb = 0; kb < kb_count; ++kb) {
        std::uint32_t adword;
        std::memcpy(&adword, arow + kb * 4, 4);
        const __m512i av = _mm512_set1_epi32(static_cast<int>(adword));
        const __m512i bv = _mm512_maskz_loadu_epi32(
            mask, packed_b + (kb * n + j0) * 4);
        acc = _mm512_dpbusd_epi32(acc, av, bv);
      }
      acc = _mm512_add_epi32(acc,
                             _mm512_maskz_loadu_epi32(mask, col_comp + j0));
      // Mul-then-add, never FMA: the scalar reference rounds twice and the
      // SIMD paths must match it bit for bit.
      const __m512 cs = _mm512_mul_ps(
          a_scale_v, _mm512_maskz_loadu_ps(mask, col_scale + j0));
      __m512 real = _mm512_mul_ps(_mm512_cvtepi32_ps(acc), cs);
      if (epilogue != Epilogue::kNone) {
        real = _mm512_add_ps(real, _mm512_maskz_loadu_ps(mask, bias + j0));
      }
      // FastGeluV is per-lane bitwise-identical to the scalar FastGelu,
      // so the ISA paths keep matching the scalar reference exactly.
      if (epilogue == Epilogue::kBiasGelu) real = FastGeluV(real);
      _mm512_mask_storeu_ps(orow + j0, mask, real);
    }
  }
}
#endif  // AVX-512 VNNI

#if defined(__AVX2__)
#define TFMAE_QUANT_HAVE_AVX2 1

// Exact AVX2 kernel: u8 and s8 are widened to 16 bit before madd_epi16, so
// unlike the maddubs shortcut there is no intermediate s16 saturation — the
// result is the same exact integer the scalar loop produces.
void Avx2Rows(const std::uint8_t* a, const std::int8_t* packed_b,
              const float* col_scale, const std::int32_t* col_comp,
              const float* bias, float a_scale, Epilogue epilogue, float* out,
              std::int64_t k4, std::int64_t n, std::int64_t s,
              std::int64_t e) {
  const std::int64_t kb_count = k4 / 4;
  const std::int64_t n4 = n & ~3LL;  // columns handled four at a time
  for (std::int64_t i = s; i < e; ++i) {
    const std::uint8_t* arow = a + i * k4;
    float* orow = out + i * n;
    for (std::int64_t j0 = 0; j0 < n4; j0 += 4) {
      // acc8 holds two partial sums per column: lanes (2c, 2c+1) belong to
      // column j0+c and are combined after the K loop (integer adds are
      // exact, so the split changes nothing).
      __m256i acc8 = _mm256_setzero_si256();
      for (std::int64_t kb = 0; kb < kb_count; ++kb) {
        std::uint32_t adword;
        std::memcpy(&adword, arow + kb * 4, 4);
        const __m128i a8 = _mm_cvtsi32_si128(static_cast<int>(adword));
        const __m128i a16 = _mm_cvtepu8_epi16(a8);  // 4 u16 in the low half
        const __m256i a16rep =
            _mm256_set1_epi64x(_mm_cvtsi128_si64(a16));
        const __m128i b8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            packed_b + (kb * n + j0) * 4));
        const __m256i b16 = _mm256_cvtepi8_epi16(b8);
        acc8 = _mm256_add_epi32(acc8, _mm256_madd_epi16(a16rep, b16));
      }
      alignas(32) std::int32_t pairs[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(pairs), acc8);
      for (int c = 0; c < 4; ++c) {
        const std::int32_t acc = pairs[2 * c] + pairs[2 * c + 1];
        orow[j0 + c] = ApplyScalarEpilogue(acc, j0 + c, col_scale, col_comp,
                                           bias, a_scale, epilogue);
      }
    }
    for (std::int64_t j = n4; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t kb = 0; kb < kb_count; ++kb) {
        const std::int8_t* bp = packed_b + (kb * n + j) * 4;
        const std::uint8_t* ap = arow + kb * 4;
        acc += static_cast<std::int32_t>(ap[0]) * bp[0] +
               static_cast<std::int32_t>(ap[1]) * bp[1] +
               static_cast<std::int32_t>(ap[2]) * bp[2] +
               static_cast<std::int32_t>(ap[3]) * bp[3];
      }
      orow[j] = ApplyScalarEpilogue(acc, j, col_scale, col_comp, bias,
                                    a_scale, epilogue);
    }
  }
}
#endif  // __AVX2__

using RowKernel = void (*)(const std::uint8_t*, const std::int8_t*,
                           const float*, const std::int32_t*, const float*,
                           float, Epilogue, float*, std::int64_t, std::int64_t,
                           std::int64_t, std::int64_t);

void RunRows(RowKernel kernel, const std::uint8_t* a,
             const std::int8_t* packed_b, const float* col_scale,
             const std::int32_t* col_comp, const float* bias, float a_scale,
             Epilogue epilogue, float* out, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  const std::int64_t k4 = RoundUpK4(k);
  ParallelFor(0, m, kRowGrain, [&](std::int64_t s, std::int64_t e) {
    kernel(a, packed_b, col_scale, col_comp, bias, a_scale, epilogue, out,
           k4, n, s, e);
  });
}

void PackQuantizedColumn(const float* col_src, std::int64_t stride,
                         std::int64_t k, std::int64_t n, std::int64_t j,
                         std::int8_t* packed, float* col_scale,
                         std::int32_t* col_comp, const float* row_scale) {
  const auto elem = [&](std::int64_t kk) {
    const float w = col_src[kk * stride];
    return row_scale != nullptr ? w * row_scale[kk] : w;
  };
  float absmax = 0.0f;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    absmax = std::max(absmax, std::fabs(elem(kk)));
  }
  // All-zero (or denormal-tiny) columns quantize to zeros under any scale;
  // clamp so the stored scale is never 0/inf/NaN.
  const float scale = absmax > 1e-30f ? absmax / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  col_scale[j] = scale;
  std::int32_t sum = 0;
  const std::int64_t k4 = RoundUpK4(k);
  for (std::int64_t kk = 0; kk < k4; ++kk) {
    std::int8_t q = 0;
    if (kk < k) {
      const int r = RoundHalfAway(elem(kk) * inv);
      q = static_cast<std::int8_t>(std::min(127, std::max(-127, r)));
    }
    packed[((kk / 4) * n + j) * 4 + (kk % 4)] = q;
    sum += q;
  }
  col_comp[j] = -kActZeroPoint * sum;
}

}  // namespace

void QuantizeU8(const float* src, std::uint8_t* dst, std::int64_t m,
                std::int64_t k, float inv_scale) {
  const std::int64_t k4 = RoundUpK4(k);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* srow = src + i * k;
    std::uint8_t* drow = dst + i * k4;
    for (std::int64_t j = 0; j < k; ++j) {
      const int q = RoundHalfAway(srow[j] * inv_scale) + kActZeroPoint;
      drow[j] = static_cast<std::uint8_t>(std::min(255, std::max(0, q)));
    }
    for (std::int64_t j = k; j < k4; ++j) drow[j] = 0;
  }
}

void QuantizeU8PerChannel(const float* src, std::uint8_t* dst, std::int64_t m,
                          std::int64_t k, const float* inv_scale) {
  const std::int64_t k4 = RoundUpK4(k);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* srow = src + i * k;
    std::uint8_t* drow = dst + i * k4;
    for (std::int64_t j = 0; j < k; ++j) {
      const int q = RoundHalfAway(srow[j] * inv_scale[j]) + kActZeroPoint;
      drow[j] = static_cast<std::uint8_t>(std::min(255, std::max(0, q)));
    }
    for (std::int64_t j = k; j < k4; ++j) drow[j] = 0;
  }
}

void DequantizeU8(const std::uint8_t* src, float* dst, std::int64_t m,
                  std::int64_t k, float scale) {
  const std::int64_t k4 = RoundUpK4(k);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      dst[i * k + j] =
          static_cast<float>(static_cast<int>(src[i * k4 + j]) -
                             kActZeroPoint) *
          scale;
    }
  }
}

void QuantizePackWeights(const float* w, std::int64_t k, std::int64_t n,
                         std::int8_t* packed, float* col_scale,
                         std::int32_t* col_comp, const float* row_scale) {
  for (std::int64_t j = 0; j < n; ++j) {
    PackQuantizedColumn(w + j, n, k, n, j, packed, col_scale, col_comp,
                        row_scale);
  }
}

void QuantizePackWeightsT(const float* w_t, std::int64_t k, std::int64_t n,
                          std::int8_t* packed, float* col_scale,
                          std::int32_t* col_comp, const float* row_scale) {
  for (std::int64_t j = 0; j < n; ++j) {
    PackQuantizedColumn(w_t + j * k, 1, k, n, j, packed, col_scale, col_comp,
                        row_scale);
  }
}

void QuantLinearScalar(const std::uint8_t* a, const std::int8_t* packed_b,
                       const float* col_scale, const std::int32_t* col_comp,
                       const float* bias, float a_scale, Epilogue epilogue,
                       float* out, std::int64_t m, std::int64_t k,
                       std::int64_t n) {
  RunRows(ScalarRows, a, packed_b, col_scale, col_comp, bias, a_scale,
          epilogue, out, m, k, n);
}

void QuantLinear(const std::uint8_t* a, const std::int8_t* packed_b,
                 const float* col_scale, const std::int32_t* col_comp,
                 const float* bias, float a_scale, Epilogue epilogue,
                 float* out, std::int64_t m, std::int64_t k, std::int64_t n) {
#if defined(TFMAE_QUANT_HAVE_VNNI)
  RunRows(VnniRows, a, packed_b, col_scale, col_comp, bias, a_scale, epilogue,
          out, m, k, n);
#elif defined(TFMAE_QUANT_HAVE_AVX2)
  RunRows(Avx2Rows, a, packed_b, col_scale, col_comp, bias, a_scale, epilogue,
          out, m, k, n);
#else
  RunRows(ScalarRows, a, packed_b, col_scale, col_comp, bias, a_scale,
          epilogue, out, m, k, n);
#endif
}

const char* QuantGemmIsa() {
#if defined(TFMAE_QUANT_HAVE_VNNI)
  return "avx512vnni";
#elif defined(TFMAE_QUANT_HAVE_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

bool QuantLinearPath(const char* isa, const std::uint8_t* a,
                     const std::int8_t* packed_b, const float* col_scale,
                     const std::int32_t* col_comp, const float* bias,
                     float a_scale, Epilogue epilogue, float* out,
                     std::int64_t m, std::int64_t k, std::int64_t n) {
  const std::string name(isa);
  if (name == "scalar") {
    RunRows(ScalarRows, a, packed_b, col_scale, col_comp, bias, a_scale,
            epilogue, out, m, k, n);
    return true;
  }
#if defined(TFMAE_QUANT_HAVE_AVX2)
  if (name == "avx2") {
    RunRows(Avx2Rows, a, packed_b, col_scale, col_comp, bias, a_scale,
            epilogue, out, m, k, n);
    return true;
  }
#endif
#if defined(TFMAE_QUANT_HAVE_VNNI)
  if (name == "avx512vnni") {
    RunRows(VnniRows, a, packed_b, col_scale, col_comp, bias, a_scale,
            epilogue, out, m, k, n);
    return true;
  }
#endif
  return false;
}

}  // namespace tfmae::quant
