// Shared forward compute kernels.
//
// Every kernel here is the single source of truth for one operator's
// forward arithmetic: the eager operator library (ops_basic.cc,
// ops_reduce.cc, ops_shape.cc) and the pre-planned inference executor
// (core/inference_plan.cc) both call these functions, so the two paths are
// bitwise-identical by construction — there is no second copy of the
// per-element math that could drift.
//
// Kernels are row- or range-level: parallel dispatch (and therefore chunk
// layout) stays with the caller. The ForEach* helpers re-export the
// deterministic dispatch used by the eager ops plus a coarser-grained
// variant for the replay executor's batched elementwise ops; all of them
// cut chunks at fixed boundaries that depend only on the element/row
// counts, never the thread count (see util/thread_pool.h).
#ifndef TFMAE_TENSOR_OP_KERNELS_H_
#define TFMAE_TENSOR_OP_KERNELS_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <functional>

namespace tfmae::ops::kernels {

/// Elementwise binary operator selector, shared between the eager BinaryOp
/// and captured/fused replay programs.
enum class BinaryKind { kAdd = 0, kSub = 1, kMul = 2, kDiv = 3 };

inline float ApplyBinary(BinaryKind kind, float x, float y) {
  switch (kind) {
    case BinaryKind::kAdd:
      return x + y;
    case BinaryKind::kSub:
      return x - y;
    case BinaryKind::kMul:
      return x * y;
    case BinaryKind::kDiv:
      return x / y;
  }
  return 0.0f;
}

/// sqrt(2/pi), the tanh-approximation constant of the paper's GELU.
constexpr float kGeluC = 0.7978845608028654f;

inline float GeluApprox(float v) {
  const float inner = kGeluC * (v + 0.044715f * v * v * v);
  return 0.5f * v * (1.0f + std::tanh(inner));
}

/// One softmax row: out[j] = exp(in[j] - max) / sum. `in` and `out` may not
/// alias.
inline void SoftmaxRow(const float* in, float* out, std::int64_t cols) {
  float max_v = in[0];
  for (std::int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, in[j]);
  float sum = 0.0f;
  for (std::int64_t j = 0; j < cols; ++j) {
    out[j] = std::exp(in[j] - max_v);
    sum += out[j];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t j = 0; j < cols; ++j) out[j] *= inv;
}

/// Softmax of a scaled row: materializes in[j] * scale into `tmp` (>= cols
/// floats) first, so the arithmetic is exactly Softmax(Scale(x, scale)).
inline void ScaleSoftmaxRow(const float* in, float* out, std::int64_t cols,
                            float scale, float* tmp) {
  for (std::int64_t j = 0; j < cols; ++j) tmp[j] = in[j] * scale;
  SoftmaxRow(tmp, out, cols);
}

/// One layer-norm row with affine parameters. Writes the row mean and
/// inverse std to *mean_out / *inv_std_out (the eager op caches them for
/// backward; the replay executor passes locals).
inline void LayerNormRow(const float* in, const float* gamma,
                         const float* beta, std::int64_t cols, float eps,
                         float* out, float* mean_out, float* inv_std_out) {
  float mu = 0.0f;
  for (std::int64_t j = 0; j < cols; ++j) mu += in[j];
  mu /= static_cast<float>(cols);
  float var = 0.0f;
  for (std::int64_t j = 0; j < cols; ++j) {
    const float d = in[j] - mu;
    var += d * d;
  }
  var /= static_cast<float>(cols);
  const float istd = 1.0f / std::sqrt(var + eps);
  *mean_out = mu;
  *inv_std_out = istd;
  for (std::int64_t j = 0; j < cols; ++j) {
    out[j] = (in[j] - mu) * istd * gamma[j] + beta[j];
  }
}

/// Symmetric KL divergence between the softmax distributions of two logit
/// rows (Eq. (16)). `p_tmp` / `q_tmp` are >= cols floats of scratch.
inline float SymmetricKlRow(const float* p_in, const float* q_in,
                            std::int64_t cols, float* p_tmp, float* q_tmp) {
  constexpr float kFloor = 1e-12f;
  SoftmaxRow(p_in, p_tmp, cols);
  SoftmaxRow(q_in, q_tmp, cols);
  double kl_pq = 0.0;
  double kl_qp = 0.0;
  for (std::int64_t j = 0; j < cols; ++j) {
    const double pj = std::max(p_tmp[j], kFloor);
    const double qj = std::max(q_tmp[j], kFloor);
    kl_pq += pj * std::log(pj / qj);
    kl_qp += qj * std::log(qj / pj);
  }
  return static_cast<float>(kl_pq + kl_qp);
}

/// Rank-3 permutation: out = transpose(in, perm) with in_shape the INPUT
/// shape. Serial (the tensors involved are small; matches the eager op).
void Permute3Forward(const float* in, float* out,
                     const std::array<std::int64_t, 3>& in_shape,
                     const std::array<int, 3>& perm);

// ---- Deterministic parallel dispatch ---------------------------------------

/// Same chunking as the eager elementwise ops (ops_internal.h
/// ParallelElems): serial below the threshold, fixed kElemGrain chunks
/// above.
void ForEachElemChunk(std::int64_t n,
                      const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Coarser fixed-grain variant for the replay executor's batched/fused
/// elementwise ops: fewer chunks means fewer pool handoffs per dispatch.
/// Same serial threshold; chunk boundaries still depend only on n.
void ForEachElemChunkCoarse(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn);

/// The row grain ParallelRows / ForEachRowChunk use for this row width.
std::int64_t RowChunkGrain(std::int64_t cols);

/// Same chunking as the eager row-wise ops (ops_internal.h ParallelRows).
/// Returns the grain used, for chunk-indexed scratch regions.
std::int64_t ForEachRowChunk(
    std::int64_t rows, std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace tfmae::ops::kernels

#endif  // TFMAE_TENSOR_OP_KERNELS_H_
