// Shape manipulation and row-indexing operators.
#include <cstring>

#include "tensor/capture.h"
#include "tensor/op_kernels.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "tensor/pool.h"
#include "util/logging.h"

namespace tfmae::ops {
namespace {
using internal::SetGraph;
using internal::ShouldTrack;
}  // namespace

Tensor Reshape(const Tensor& x, Shape shape) {
  TFMAE_CHECK_MSG(NumElements(shape) == x.numel(),
                  "Reshape element-count mismatch: "
                      << ShapeToString(x.shape()) << " -> "
                      << ShapeToString(shape));
  Tensor out = Tensor::Empty(std::move(shape));
  std::memcpy(out.data(), x.data(),
              static_cast<std::size_t>(x.numel()) * sizeof(float));
  capture::NoteReshape(x, out);
  if (ShouldTrack({x})) {
    SetGraph(&out, "Reshape", {x}, [x](TensorImpl& self) {
      internal::AccumulateGrad(x, self.grad.get());
    });
  }
  return out;
}

Tensor Permute3(const Tensor& x, const std::array<int, 3>& perm) {
  TFMAE_CHECK_MSG(x.rank() == 3, "Permute3 expects a rank-3 tensor, got "
                                     << ShapeToString(x.shape()));
  const Shape& in = x.shape();
  Shape out_shape = {in[static_cast<std::size_t>(perm[0])],
                     in[static_cast<std::size_t>(perm[1])],
                     in[static_cast<std::size_t>(perm[2])]};
  Tensor out = Tensor::Empty(out_shape);
  kernels::Permute3Forward(x.data(), out.data(), {in[0], in[1], in[2]}, perm);
  capture::NotePermute3(x, perm, out);
  if (ShouldTrack({x})) {
    SetGraph(&out, "Permute3", {x}, [x, perm, out_shape](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const auto in_strides = RowMajorStrides(x.shape());
      const float* grad = self.grad.get();
      pool::Scratch gx(x.numel(), /*zero_fill=*/true);
      std::int64_t idx = 0;
      for (std::int64_t i = 0; i < out_shape[0]; ++i) {
        for (std::int64_t j = 0; j < out_shape[1]; ++j) {
          for (std::int64_t k = 0; k < out_shape[2]; ++k) {
            std::int64_t coords[3];
            coords[perm[0]] = i;
            coords[perm[1]] = j;
            coords[perm[2]] = k;
            gx.data()[coords[0] * in_strides[0] + coords[1] * in_strides[1] +
                      coords[2] * in_strides[2]] += grad[idx++];
          }
        }
      }
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor Transpose2(const Tensor& x) {
  TFMAE_CHECK_MSG(x.rank() == 2, "Transpose2 expects a rank-2 tensor");
  const std::int64_t m = x.dim(0);
  const std::int64_t n = x.dim(1);
  Tensor out = Tensor::Empty({n, m});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      po[j * m + i] = px[i * n + j];
    }
  }
  capture::NoteUnsupported("Transpose2");
  if (ShouldTrack({x})) {
    SetGraph(&out, "Transpose2", {x}, [x, m, n](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gx(m * n);  // every element written
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          gx.data()[i * n + j] = grad[j * m + i];
        }
      }
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor IndexRows(const Tensor& x, const std::vector<std::int64_t>& indices) {
  TFMAE_CHECK_MSG(x.rank() == 2, "IndexRows expects a rank-2 tensor");
  const std::int64_t rows = x.dim(0);
  const std::int64_t cols = x.dim(1);
  const std::int64_t out_rows = static_cast<std::int64_t>(indices.size());
  TFMAE_CHECK(out_rows > 0);
  Tensor out = Tensor::Empty({out_rows, cols});
  for (std::int64_t i = 0; i < out_rows; ++i) {
    const std::int64_t r = indices[static_cast<std::size_t>(i)];
    TFMAE_CHECK_MSG(r >= 0 && r < rows, "IndexRows index out of range: " << r);
    std::memcpy(out.data() + i * cols, x.data() + r * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
  capture::NoteIndexRows(x, indices, out);
  if (ShouldTrack({x})) {
    SetGraph(&out, "IndexRows", {x}, [x, indices, cols](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gx(x.numel(), /*zero_fill=*/true);
      for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::int64_t r = indices[i];
        for (std::int64_t c = 0; c < cols; ++c) {
          gx.data()[r * cols + c] +=
              grad[static_cast<std::int64_t>(i) * cols + c];
        }
      }
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor ScatterRows(const Tensor& src, const std::vector<std::int64_t>& indices,
                   std::int64_t total_rows) {
  TFMAE_CHECK_MSG(src.rank() == 2, "ScatterRows expects a rank-2 source");
  TFMAE_CHECK_MSG(static_cast<std::int64_t>(indices.size()) == src.dim(0),
                  "ScatterRows needs one index per source row");
  const std::int64_t cols = src.dim(1);
  Tensor out = Tensor::Zeros({total_rows, cols});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t r = indices[i];
    TFMAE_CHECK_MSG(r >= 0 && r < total_rows,
                    "ScatterRows index out of range: " << r);
    std::memcpy(out.data() + r * cols,
                src.data() + static_cast<std::int64_t>(i) * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
  capture::NoteScatterRows(src, indices, total_rows, out);
  if (ShouldTrack({src})) {
    SetGraph(&out, "ScatterRows", {src}, [src, indices, cols](TensorImpl& self) {
      if (!src.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gs(src.numel());  // every element written
      for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::int64_t r = indices[i];
        for (std::int64_t c = 0; c < cols; ++c) {
          gs.data()[static_cast<std::int64_t>(i) * cols + c] =
              grad[r * cols + c];
        }
      }
      internal::AccumulateGrad(src, gs.data());
    });
  }
  return out;
}

Tensor RepeatRow(const Tensor& row, std::int64_t n) {
  TFMAE_CHECK_MSG(
      row.rank() == 1 || (row.rank() == 2 && row.dim(0) == 1),
      "RepeatRow expects a [D] or [1, D] tensor, got "
          << ShapeToString(row.shape()));
  const std::int64_t cols = row.rank() == 1 ? row.dim(0) : row.dim(1);
  Tensor out = Tensor::Empty({n, cols});
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * cols, row.data(),
                static_cast<std::size_t>(cols) * sizeof(float));
  }
  capture::NoteRepeatRow(row, n, out);
  if (ShouldTrack({row})) {
    SetGraph(&out, "RepeatRow", {row}, [row, n, cols](TensorImpl& self) {
      if (!row.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gr(cols, /*zero_fill=*/true);
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t c = 0; c < cols; ++c) {
          gr.data()[c] += grad[i * cols + c];
        }
      }
      internal::AccumulateGrad(row, gr.data());
    });
  }
  return out;
}

Tensor SliceRows(const Tensor& x, std::int64_t start, std::int64_t len) {
  TFMAE_CHECK_MSG(x.rank() == 2, "SliceRows expects a rank-2 tensor");
  TFMAE_CHECK_MSG(start >= 0 && len > 0 && start + len <= x.dim(0),
                  "SliceRows range [" << start << ", " << start + len
                                      << ") out of bounds for "
                                      << ShapeToString(x.shape()));
  const std::int64_t cols = x.dim(1);
  Tensor out = Tensor::Empty({len, cols});
  std::memcpy(out.data(), x.data() + start * cols,
              static_cast<std::size_t>(len * cols) * sizeof(float));
  capture::NoteUnsupported("SliceRows");
  if (ShouldTrack({x})) {
    SetGraph(&out, "SliceRows", {x}, [x, start, len, cols](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gx(x.numel(), /*zero_fill=*/true);
      std::memcpy(gx.data() + start * cols, grad,
                  static_cast<std::size_t>(len * cols) * sizeof(float));
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  TFMAE_CHECK_MSG(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                  "ConcatRows expects rank-2 tensors with equal columns");
  const std::int64_t cols = a.dim(1);
  const std::int64_t ra = a.dim(0);
  const std::int64_t rb = b.dim(0);
  Tensor out = Tensor::Empty({ra + rb, cols});
  std::memcpy(out.data(), a.data(),
              static_cast<std::size_t>(ra * cols) * sizeof(float));
  std::memcpy(out.data() + ra * cols, b.data(),
              static_cast<std::size_t>(rb * cols) * sizeof(float));
  capture::NoteUnsupported("ConcatRows");
  if (ShouldTrack({a, b})) {
    SetGraph(&out, "ConcatRows", {a, b}, [a, b, ra, rb, cols](TensorImpl& self) {
      const float* grad = self.grad.get();
      internal::AccumulateGrad(a, grad);
      if (b.requires_grad()) {
        internal::AccumulateGrad(b, grad + ra * cols);
      }
      (void)rb;
    });
  }
  return out;
}

Tensor Im2Col(const Tensor& x, std::int64_t kernel_size) {
  TFMAE_CHECK_MSG(x.rank() == 2, "Im2Col expects a rank-2 [T, C] tensor");
  TFMAE_CHECK_MSG(kernel_size >= 1 && kernel_size % 2 == 1,
                  "Im2Col requires an odd kernel size, got " << kernel_size);
  const std::int64_t t_len = x.dim(0);
  const std::int64_t channels = x.dim(1);
  const std::int64_t half = kernel_size / 2;
  Tensor out = Tensor::Zeros({t_len, kernel_size * channels});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t t = 0; t < t_len; ++t) {
    for (std::int64_t k = 0; k < kernel_size; ++k) {
      const std::int64_t src = t + k - half;
      if (src < 0 || src >= t_len) continue;  // zero padding
      std::memcpy(po + (t * kernel_size + k) * channels, px + src * channels,
                  static_cast<std::size_t>(channels) * sizeof(float));
    }
  }
  capture::NoteUnsupported("Im2Col");
  if (ShouldTrack({x})) {
    SetGraph(&out, "Im2Col", {x}, [x, kernel_size, t_len, channels,
                         half](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      pool::Scratch gx(x.numel(), /*zero_fill=*/true);
      for (std::int64_t t = 0; t < t_len; ++t) {
        for (std::int64_t k = 0; k < kernel_size; ++k) {
          const std::int64_t src = t + k - half;
          if (src < 0 || src >= t_len) continue;
          for (std::int64_t c = 0; c < channels; ++c) {
            gx.data()[src * channels + c] +=
                grad[(t * kernel_size + k) * channels + c];
          }
        }
      }
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

}  // namespace tfmae::ops
