#include "tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::pool {
namespace {

// One class per power of two: class c holds blocks of 2^c floats. 48
// classes cover every representable buffer (2^47 floats is far beyond
// addressable memory).
constexpr int kNumClasses = 48;

bool EnvFlag(const char* name, bool default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return !(v[0] == '0' && v[1] == '\0');
}

int ClassIndex(std::int64_t class_floats) {
  int c = 0;
  while ((std::int64_t{1} << c) < class_floats) ++c;
  return c;
}

// Free lists plus physical accounting. Intentionally leaked (like the obs
// registry): block deleters may run during static destruction.
struct Pool {
  std::mutex mu;
  std::vector<float*> free_lists[kNumClasses];

  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> misses{0};
  std::atomic<std::int64_t> unpooled{0};
  std::atomic<std::int64_t> releases{0};
  std::atomic<std::int64_t> outstanding_bytes{0};
  std::atomic<std::int64_t> peak_outstanding_bytes{0};
  std::atomic<std::int64_t> cached_bytes{0};

  std::atomic<bool> enabled{EnvFlag("TFMAE_POOL", true)};
  std::atomic<bool> scrub{EnvFlag("TFMAE_POOL_SCRUB", false)};
};

Pool& Instance() {
  static Pool* pool = new Pool;
  return *pool;
}

void RaisePeak(Pool& pool, std::int64_t current) {
  std::int64_t peak = pool.peak_outstanding_bytes.load(std::memory_order_relaxed);
  while (current > peak &&
         !pool.peak_outstanding_bytes.compare_exchange_weak(
             peak, current, std::memory_order_relaxed)) {
  }
}

void Release(Pool& pool, float* p, int class_index) {
  const std::int64_t bytes =
      (std::int64_t{1} << class_index) * static_cast<std::int64_t>(sizeof(float));
  pool.releases.fetch_add(1, std::memory_order_relaxed);
  pool.outstanding_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  pool.cached_bytes.fetch_add(bytes, std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("tensor.pool.release", 1);
  TFMAE_GAUGE_SET("tensor.pool.outstanding_bytes",
                  pool.outstanding_bytes.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(pool.mu);
  pool.free_lists[class_index].push_back(p);
}

}  // namespace

std::int64_t SizeClassFloats(std::int64_t numel) {
  TFMAE_CHECK(numel > 0);
  std::int64_t c = kMinClassFloats;
  while (c < numel) c <<= 1;
  return c;
}

std::shared_ptr<float[]> Acquire(std::int64_t numel) {
  Pool& pool = Instance();
  const std::int64_t class_floats = SizeClassFloats(numel);

  float* p = nullptr;
  if (pool.enabled.load(std::memory_order_relaxed)) {
    const int class_index = ClassIndex(class_floats);
    const std::int64_t class_bytes =
        class_floats * static_cast<std::int64_t>(sizeof(float));
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      auto& list = pool.free_lists[class_index];
      if (!list.empty()) {
        p = list.back();
        list.pop_back();
      }
    }
    if (p != nullptr) {
      pool.hits.fetch_add(1, std::memory_order_relaxed);
      pool.cached_bytes.fetch_sub(class_bytes, std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("tensor.pool.hit", 1);
    } else {
      p = new float[static_cast<std::size_t>(class_floats)];
      pool.misses.fetch_add(1, std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("tensor.pool.miss", 1);
    }
    const std::int64_t outstanding =
        pool.outstanding_bytes.fetch_add(class_bytes,
                                         std::memory_order_relaxed) +
        class_bytes;
    RaisePeak(pool, outstanding);
    TFMAE_GAUGE_SET("tensor.pool.outstanding_bytes", outstanding);
    TFMAE_GAUGE_MAX("tensor.pool.peak_outstanding_bytes", outstanding);
    if (pool.scrub.load(std::memory_order_relaxed)) {
      std::fill(p, p + class_floats, std::numeric_limits<float>::quiet_NaN());
    }
    return std::shared_ptr<float[]>(
        p, [class_index](float* ptr) { Release(Instance(), ptr, class_index); });
  }

  // Pooling disabled: plain heap allocation, exact size.
  p = new float[static_cast<std::size_t>(numel)];
  pool.unpooled.fetch_add(1, std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("tensor.pool.unpooled_alloc", 1);
  if (pool.scrub.load(std::memory_order_relaxed)) {
    std::fill(p, p + numel, std::numeric_limits<float>::quiet_NaN());
  }
  return std::shared_ptr<float[]>(p, [](float* ptr) { delete[] ptr; });
}

bool Enabled() { return Instance().enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  Instance().enabled.store(on, std::memory_order_relaxed);
}

void SetScrubForTesting(bool on) {
  Instance().scrub.store(on, std::memory_order_relaxed);
}

bool ScrubEnabled() { return Instance().scrub.load(std::memory_order_relaxed); }

void Trim() {
  Pool& pool = Instance();
  std::lock_guard<std::mutex> lock(pool.mu);
  for (int c = 0; c < kNumClasses; ++c) {
    for (float* p : pool.free_lists[c]) {
      pool.cached_bytes.fetch_sub(
          (std::int64_t{1} << c) * static_cast<std::int64_t>(sizeof(float)),
          std::memory_order_relaxed);
      delete[] p;
    }
    pool.free_lists[c].clear();
  }
}

PoolStats Stats() {
  Pool& pool = Instance();
  PoolStats s;
  s.hits = pool.hits.load(std::memory_order_relaxed);
  s.misses = pool.misses.load(std::memory_order_relaxed);
  s.unpooled = pool.unpooled.load(std::memory_order_relaxed);
  s.releases = pool.releases.load(std::memory_order_relaxed);
  s.outstanding_bytes = pool.outstanding_bytes.load(std::memory_order_relaxed);
  s.peak_outstanding_bytes =
      pool.peak_outstanding_bytes.load(std::memory_order_relaxed);
  s.cached_bytes = pool.cached_bytes.load(std::memory_order_relaxed);
  return s;
}

void ResetPeak() {
  Pool& pool = Instance();
  pool.peak_outstanding_bytes.store(
      pool.outstanding_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void ResetCounters() {
  Pool& pool = Instance();
  pool.hits.store(0, std::memory_order_relaxed);
  pool.misses.store(0, std::memory_order_relaxed);
  pool.unpooled.store(0, std::memory_order_relaxed);
  pool.releases.store(0, std::memory_order_relaxed);
  ResetPeak();
}

Scratch::Scratch(std::int64_t numel, bool zero_fill)
    : buffer_(Acquire(numel)), numel_(numel) {
  if (zero_fill) std::fill(buffer_.get(), buffer_.get() + numel, 0.0f);
}

}  // namespace tfmae::pool
