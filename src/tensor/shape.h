// Shape type and helpers shared by the tensor library.
#ifndef TFMAE_TENSOR_SHAPE_H_
#define TFMAE_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tfmae {

/// A tensor shape: dimension sizes, outermost first. Rank 0 is disallowed;
/// scalars are represented as shape {1}.
using Shape = std::vector<std::int64_t>;

/// Product of all dimensions. Returns 0 for an empty shape.
std::int64_t NumElements(const Shape& shape);

/// Row-major strides for the given shape.
std::vector<std::int64_t> RowMajorStrides(const Shape& shape);

/// Human-readable rendering like "[3, 128]".
std::string ShapeToString(const Shape& shape);

/// True iff `suffix` equals the trailing dimensions of `shape`
/// (used by broadcasting: a [D] bias broadcasts over a [T, D] activation).
bool IsSuffixOf(const Shape& suffix, const Shape& shape);

/// True iff the two shapes are identical.
bool SameShape(const Shape& a, const Shape& b);

}  // namespace tfmae

#endif  // TFMAE_TENSOR_SHAPE_H_
