#include "tensor/op_kernels.h"

#include "tensor/ops_internal.h"
#include "tensor/shape.h"
#include "util/thread_pool.h"

namespace tfmae::ops::kernels {

namespace {
// Coarse grain for batched replay elementwise ops: 4x the eager kElemGrain,
// so a fused four-op chain dispatched once over coarse chunks creates ~16x
// fewer pool handoffs than four eager ops at fine grain.
constexpr std::int64_t kCoarseElemGrain = internal::kElemGrain * 4;
}  // namespace

void Permute3Forward(const float* in, float* out,
                     const std::array<std::int64_t, 3>& in_shape,
                     const std::array<int, 3>& perm) {
  const Shape shape_vec = {in_shape[0], in_shape[1], in_shape[2]};
  const auto in_strides = RowMajorStrides(shape_vec);
  const std::int64_t d0 = in_shape[static_cast<std::size_t>(perm[0])];
  const std::int64_t d1 = in_shape[static_cast<std::size_t>(perm[1])];
  const std::int64_t d2 = in_shape[static_cast<std::size_t>(perm[2])];
  std::int64_t idx = 0;
  for (std::int64_t i = 0; i < d0; ++i) {
    for (std::int64_t j = 0; j < d1; ++j) {
      for (std::int64_t k = 0; k < d2; ++k) {
        std::int64_t coords[3];
        coords[perm[0]] = i;
        coords[perm[1]] = j;
        coords[perm[2]] = k;
        out[idx++] = in[coords[0] * in_strides[0] + coords[1] * in_strides[1] +
                        coords[2] * in_strides[2]];
      }
    }
  }
}

void ForEachElemChunk(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  internal::ParallelElems(n, fn);
}

void ForEachElemChunkCoarse(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n < internal::kParallelThreshold) {
    fn(0, n);
    return;
  }
  ParallelFor(0, n, kCoarseElemGrain, fn);
}

std::int64_t RowChunkGrain(std::int64_t cols) {
  return internal::RowGrain(cols);
}

std::int64_t ForEachRowChunk(
    std::int64_t rows, std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  return internal::ParallelRows(rows, cols, fn);
}

}  // namespace tfmae::ops::kernels
