// Blocked, thread-parallel GEMM kernels over raw float buffers.
//
// This is the compute core under ops::MatMul / ops::BatchedMatMul and their
// gradients. All kernels ACCUMULATE into C (callers zero-initialize), and
// all are deterministic with respect to the thread count:
//  * work is split across the pool in fixed row-tile units (see
//    util/thread_pool.h), so each output element is produced by exactly one
//    thread, and
//  * every kernel accumulates each C element over the inner dimension in
//    ascending index order, regardless of tiling or pool size,
// so an N-thread run is bit-identical to a 1-thread run.
//
// The inner micro-kernel keeps an MR x NR tile of C in registers across the
// whole K loop (MR/NR are chosen per ISA at compile time); the transposed
// variants pack the transposed operand into a scratch buffer and reuse the
// same micro-kernel, which keeps all inner loops branch-free and dense —
// there is deliberately no zero-skip: on dense activations a data-dependent
// branch in the hot loop defeats vectorization.
#ifndef TFMAE_TENSOR_GEMM_KERNELS_H_
#define TFMAE_TENSOR_GEMM_KERNELS_H_

#include <cstdint>

namespace tfmae::gemm {

/// C[M,N] += A[M,K] * B[K,N].
void Gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C[bi] += A[bi] * B[bi] for bi in [0, batch); A is [batch,M,K], B is
/// [batch,K,N], C is [batch,M,N]. Parallel across batch x row-tiles.
void BatchedGemm(const float* a, const float* b, float* c, std::int64_t batch,
                 std::int64_t m, std::int64_t k, std::int64_t n);

/// C[M,N] += A[M,K] * B^T where B is stored row-major as [N,K].
void GemmBt(const float* a, const float* b_t, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n);

/// Batched GemmBt: A [batch,M,K], B [batch,N,K], C [batch,M,N].
void BatchedGemmBt(const float* a, const float* b_t, float* c,
                   std::int64_t batch, std::int64_t m, std::int64_t k,
                   std::int64_t n);

/// C[K,N] += A^T * G where A is [M,K] and G is [M,N].
void GemmAtB(const float* a, const float* g, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

/// Batched GemmAtB: A [batch,M,K], G [batch,M,N], C [batch,K,N].
void BatchedGemmAtB(const float* a, const float* g, float* c,
                    std::int64_t batch, std::int64_t m, std::int64_t k,
                    std::int64_t n);

/// The original single-threaded i-k-j kernel this backend replaced
/// (including its zero-skip branch). Frozen as the baseline reference for
/// bench_micro's speedup tracking and for correctness tests; not used on
/// any compute path.
void GemmNaiveSeed(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n);

}  // namespace tfmae::gemm

#endif  // TFMAE_TENSOR_GEMM_KERNELS_H_
