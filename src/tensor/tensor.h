// Dense float32 tensors with reverse-mode automatic differentiation.
//
// This is the deep-learning substrate of the repository: TFMAE's Transformer
// autoencoders and every learned baseline are trained through this tape.
//
// Design:
//  * A Tensor is a shared handle to a TensorImpl holding a contiguous
//    row-major float buffer.
//  * Differentiable operations (see ops.h) record, on their output, the list
//    of input tensors and a backward closure. Tensor::Backward() walks the
//    recorded graph in reverse topological order and accumulates gradients
//    into each requires-grad leaf.
//  * Gradient recording can be suspended with NoGradGuard (used during
//    inference/scoring so no graph memory is retained).
//  * Data and grad buffers are acquired from the buffer pool (tensor/pool.h)
//    so steady-state training steps recycle their buffers instead of hitting
//    the heap; all logical buffer allocations are reported to MemoryStats,
//    which powers the Fig. 10 memory-footprint comparison.
#ifndef TFMAE_TENSOR_TENSOR_H_
#define TFMAE_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/shape.h"

namespace tfmae {

class Rng;
struct TensorImpl;

/// Shared handle to a dense float32 tensor, optionally carrying autograd
/// history. Copying a Tensor aliases the underlying buffer.
class Tensor {
 public:
  /// Null handle. Most methods other than defined()/operator bool require a
  /// non-null handle.
  Tensor() = default;

  /// True iff this handle points at storage.
  bool defined() const { return impl_ != nullptr; }
  explicit operator bool() const { return defined(); }

  // ---- Factories -----------------------------------------------------------

  /// Uninitialized tensor of the given shape (contents unspecified).
  static Tensor Empty(Shape shape);

  /// All-zeros tensor.
  static Tensor Zeros(Shape shape);

  /// Tensor filled with `value`.
  static Tensor Full(Shape shape, float value);

  /// Copies `values` (size must equal NumElements(shape)).
  static Tensor FromData(Shape shape, const std::vector<float>& values);

  /// I.i.d. normal(0, stddev) entries drawn from `rng`.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f);

  /// I.i.d. uniform[lo, hi) entries drawn from `rng`.
  static Tensor Rand(Shape shape, Rng* rng, float lo, float hi);

  // ---- Accessors -----------------------------------------------------------

  const Shape& shape() const;
  std::int64_t numel() const;
  std::int64_t dim(std::size_t axis) const;
  std::size_t rank() const;

  float* data();
  const float* data() const;

  /// Element access by flat row-major offset (bounds-checked in debug).
  float at(std::int64_t flat_index) const;

  /// Copies the buffer into a std::vector.
  std::vector<float> ToVector() const;

  /// Single value of a one-element tensor.
  float item() const;

  // ---- Autograd ------------------------------------------------------------

  bool requires_grad() const;

  /// Marks this tensor as a gradient leaf (a trainable parameter).
  Tensor& set_requires_grad(bool value);

  /// Gradient buffer (same shape), or nullptr if never written.
  const float* grad_data() const;

  /// Gradient as a Tensor copy; CHECK-fails if no gradient was accumulated.
  Tensor grad() const;

  /// Zeroes the gradient buffer if present.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this scalar (numel()==1) tensor,
  /// seeding d(self)/d(self) = 1.
  void Backward() const;

  /// Returns a tensor sharing this buffer but detached from the autograd
  /// graph (the stop-gradient operator used by Eq. (15)).
  Tensor Detach() const;

  /// Deep copy of the buffer, detached from the graph.
  Tensor Clone() const;

  /// Internal: shared implementation pointer (used by ops.cc).
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Implementation record behind a Tensor handle. Public members are used by
/// the operator library (ops.cc); user code should stay on the Tensor API.
struct TensorImpl {
  explicit TensorImpl(Shape s);

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Lazily allocates and zero-fills the gradient buffer.
  float* EnsureGrad();

  // Both buffers come from the buffer pool (tensor/pool.h); their deleters
  // release the blocks for reuse (and keep MemoryStats balanced) when the
  // last alias dies.
  Shape shape;
  std::int64_t numel = 0;
  std::shared_ptr<float[]> data;        // shared so Detach can alias storage
  std::shared_ptr<float[]> grad;        // same numel as data; lazy
  bool requires_grad = false;

  // Autograd graph: inputs this node was computed from, and a closure that
  // reads this node's grad buffer and accumulates into the inputs' grads.
  // `op` is the producing operator's name (a string literal set by
  // ops::internal::SetGraph) — "leaf" for tensors no operator produced;
  // Backward() aggregates per-op timing under it when observability is on.
  const char* op = "leaf";
  std::vector<Tensor> inputs;
  std::function<void(TensorImpl&)> backward_fn;
};

/// True while gradient recording is enabled (default). Ops consult this; when
/// false they skip building graph edges entirely.
bool GradModeEnabled();

/// RAII scope that disables gradient recording (inference / scoring).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace tfmae

#endif  // TFMAE_TENSOR_TENSOR_H_
