// Graph capture for the pre-planned inference executor (DESIGN.md §10).
//
// A Recorder installs itself as the calling thread's active capture context;
// while it is active, every operator in the scoring graph reports its
// (inputs, output, attributes) through the Note* hooks below. The recorder
// resolves tensors to graph nodes by TensorImpl pointer identity — it keeps
// a handle to every noted tensor alive for the duration of the capture, so
// a recycled impl address can never be mistaken for an earlier node.
//
// The hooks are no-ops (one thread-local load) when no recorder is active
// on the calling thread; the eager path is otherwise untouched. Capture is
// strictly opportunistic: any tensor the recorder cannot attribute (an
// untagged external input, an op with no hook) fails the capture with a
// reason string, and the caller falls back to the eager path. A failed
// capture never produces a wrong plan — only no plan.
//
// Layering: this header knows nothing about models or detectors. The plan
// builder (core/inference_plan.cc) drives the Recorder and interprets the
// captured program.
#ifndef TFMAE_TENSOR_CAPTURE_H_
#define TFMAE_TENSOR_CAPTURE_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace tfmae::ops::capture {

/// Identity of a dynamic (per-replay) tensor input. The driver tags the
/// next FromData call before the traced code creates the tensor.
enum class InputTag {
  kNone = 0,
  kTemporalValues,  ///< raw window values, [T, N]
  kFreqBase,        ///< frequency-mask base series, [T, N]
  kFreqCos,         ///< frequency-mask cosine coefficients, [T, N]
  kFreqSin,         ///< frequency-mask sine coefficients, [T, N]
};

/// Identity of a dynamic (per-replay) index vector, registered by address
/// before capture; unregistered vectors are snapshotted as constants.
enum class IndexTag {
  kNone = 0,
  kTemporalUnmasked,
  kTemporalMasked,
};

/// Operator vocabulary of the captured program.
enum class OpKind {
  kBinary,          // attrs[0] = BinaryKind
  kBiasGelu,
  kMatMul,          // attrs = {m, k, n}
  kBatchedMatMul,   // attrs = {batch, m, k, n}
  kBatchedMatMulBt, // attrs = {batch, m, k, n}
  kReshape,
  kPermute3,        // attrs = {in0, in1, in2, perm0, perm1, perm2}
  kIndexRows,       // attrs = {cols}
  kScatterRows,     // attrs = {total_rows, cols}
  kRepeatRow,       // attrs = {n, cols}
  kScaleSoftmax,    // attrs = {rows, cols}; scalar = scale
  kLayerNorm,       // attrs = {rows, cols}; scalar = eps
  kPosEncAdd,       // attrs = {rows, dim}
  kSymKlPerRow,     // attrs = {rows, cols}; terminal (scores output)
};

/// How a node's storage is produced.
enum class NodeKind {
  kIntermediate,  ///< written by a captured op
  kInput,         ///< rebound per replay (InputTag)
  kWeight,        ///< model parameter, stable across replays
  kConstant,      ///< value snapshot taken at capture time
};

struct NodeInfo {
  NodeKind kind = NodeKind::kIntermediate;
  Shape shape;
  std::int64_t numel = 0;
  InputTag input_tag = InputTag::kNone;  ///< for kInput nodes
  int weight_index = -1;                 ///< for kWeight nodes
  std::vector<float> constant;           ///< for kConstant nodes
};

struct CapturedOp {
  OpKind kind = OpKind::kBinary;
  std::vector<int> inputs;  ///< node ids, operand order
  int output = -1;          ///< node id (-1 for the kSymKlPerRow terminal)
  std::vector<std::int64_t> attrs;
  float scalar = 0.0f;
  /// For index-consuming ops: the dynamic binding, or kNone with a
  /// value snapshot in `indices`.
  IndexTag index_tag = IndexTag::kNone;
  std::vector<std::int64_t> indices;
};

/// Records one traced forward pass. Construction installs the recorder as
/// the thread's active capture context; destruction uninstalls it. Exactly
/// one recorder may be active per thread.
class Recorder {
 public:
  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // ---- Pre-capture setup ---------------------------------------------------

  /// Registers a model parameter; tensors aliasing its storage resolve to a
  /// weight node instead of failing the capture.
  void AddParameter(const Tensor& parameter);

  /// Registers a dynamic index vector by address (the traced code must pass
  /// this exact object to the index-consuming ops).
  void TagIndexVector(const std::vector<std::int64_t>* indices, IndexTag tag);

  // ---- Results -------------------------------------------------------------

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const std::vector<CapturedOp>& ops() const { return ops_; }
  const std::vector<Tensor>& parameters() const { return parameters_; }
  /// Rows of the terminal kSymKlPerRow op (-1 until it was captured).
  std::int64_t score_rows() const { return score_rows_; }

  // ---- Hook implementation (called via the free functions below) ----------

  void Fail(const std::string& reason);
  void OnFromData(const Tensor& out);
  void OnBinary(int binary_kind, const Tensor& a, const Tensor& b,
                const Tensor& out);
  void OnBiasGelu(const Tensor& x, const Tensor& bias, const Tensor& out);
  void OnMatMul(const Tensor& a, const Tensor& b, const Tensor& out);
  void OnBatchedMatMul(const Tensor& a, const Tensor& b, const Tensor& out,
                       bool transpose_b);
  void OnReshape(const Tensor& x, const Tensor& out);
  void OnPermute3(const Tensor& x, const std::array<int, 3>& perm,
                  const Tensor& out);
  void OnIndexRows(const Tensor& x, const std::vector<std::int64_t>& indices,
                   const Tensor& out);
  void OnScatterRows(const Tensor& src,
                     const std::vector<std::int64_t>& indices,
                     std::int64_t total_rows, const Tensor& out);
  void OnRepeatRow(const Tensor& row, std::int64_t n, const Tensor& out);
  void OnScaleSoftmax(const Tensor& x, float scale, const Tensor& out);
  void OnLayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps, const Tensor& out);
  void OnPosEncAdd(const Tensor& x, const std::vector<std::int64_t>& positions,
                   const Tensor& out);
  void OnSymKlPerRow(const Tensor& p, const Tensor& q);
  void OnUnsupported(const char* op);

 private:
  /// Node id for an op input: existing node, registered weight, or failure
  /// (-1) for a tensor of unknown provenance.
  int ResolveInput(const Tensor& t, const char* op);
  /// Fresh intermediate node for an op output (keeps the tensor alive).
  int AddOutput(const Tensor& out);
  void BindIndices(CapturedOp* op, const std::vector<std::int64_t>& indices);

  std::string error_;
  std::vector<NodeInfo> nodes_;
  std::vector<CapturedOp> ops_;
  std::vector<Tensor> parameters_;
  std::vector<Tensor> live_;  ///< keeps every noted impl alive (id stability)
  std::unordered_map<const TensorImpl*, int> node_of_;
  std::unordered_map<const TensorImpl*, int> weight_of_;
  std::unordered_map<const std::vector<std::int64_t>*, IndexTag> index_tags_;
  std::int64_t score_rows_ = -1;
};

/// True iff a recorder is active on this thread (cheap; the hooks use it).
bool Active();

/// Tags the next FromData call on this thread as the given dynamic input.
/// Consumed by the next OnFromData; a no-op when no recorder is active.
void TagNextInput(InputTag tag);

// ---- Operator hooks --------------------------------------------------------
//
// Called by the eager ops after computing their output. All are no-ops
// unless a recorder is active on this thread.

void NoteFromData(const Tensor& out);
void NoteBinary(int binary_kind, const Tensor& a, const Tensor& b,
                const Tensor& out);
void NoteBiasGelu(const Tensor& x, const Tensor& bias, const Tensor& out);
void NoteMatMul(const Tensor& a, const Tensor& b, const Tensor& out);
void NoteBatchedMatMul(const Tensor& a, const Tensor& b, const Tensor& out,
                       bool transpose_b);
void NoteReshape(const Tensor& x, const Tensor& out);
void NotePermute3(const Tensor& x, const std::array<int, 3>& perm,
                  const Tensor& out);
void NoteIndexRows(const Tensor& x, const std::vector<std::int64_t>& indices,
                   const Tensor& out);
void NoteScatterRows(const Tensor& src,
                     const std::vector<std::int64_t>& indices,
                     std::int64_t total_rows, const Tensor& out);
void NoteRepeatRow(const Tensor& row, std::int64_t n, const Tensor& out);
void NoteScaleSoftmax(const Tensor& x, float scale, const Tensor& out);
void NoteLayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps, const Tensor& out);
void NotePosEncAdd(const Tensor& x, const std::vector<std::int64_t>& positions,
                   const Tensor& out);
void NoteSymKlPerRow(const Tensor& p, const Tensor& q);
/// Any differentiable op without a dedicated hook calls this: it fails the
/// capture (fallback to eager) instead of silently dropping the op.
void NoteUnsupported(const char* op);

}  // namespace tfmae::ops::capture

#endif  // TFMAE_TENSOR_CAPTURE_H_
