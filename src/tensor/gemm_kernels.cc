#include "tensor/gemm_kernels.h"

#include <algorithm>

#include "tensor/pool.h"

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace tfmae::gemm {
namespace {

// Register-tile sizes. The micro-kernel carries kMR x kNR accumulators in
// registers; kNR = 64 floats is four AVX-512 vectors (eight AVX2 vectors),
// wide enough to hide the mul->add latency chains without fused
// multiply-add (the whole project builds with -ffp-contract=off so kernel
// numerics match the naive seed loop bit-for-bit). Eight accumulator rows
// suit the 32 vector registers of AVX-512/AVX2 builds; the SSE2 baseline
// has 16 x 4-wide registers, where four rows is the most that avoids
// spills.
#if defined(__AVX2__) || defined(__AVX512F__)
constexpr std::int64_t kMR = 8;
#else
constexpr std::int64_t kMR = 4;
#endif
constexpr std::int64_t kNR = 64;

// A chunk handed to the pool should amortize dispatch overhead: aim for at
// least ~2M flops (~tens of microseconds) per chunk.
constexpr double kMinFlopsPerChunk = 2.0 * 1024.0 * 1024.0;

// C tile [kMR x kNR] at `c` accumulated over the full K loop in registers.
// lda/ldb/ldc are row strides of A/B/C.
void MicroKernel(const float* a, std::int64_t lda, const float* b,
                 std::int64_t ldb, float* c, std::int64_t ldc,
                 std::int64_t k) {
  float acc[kMR][kNR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* brow = b + p * ldb;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r * lda + p];
      for (std::int64_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Compile-time-width column tile for narrow C panels: W columns, up to kMR
// rows, accumulators in registers, p loop outermost. Same ascending-p
// per-element order as every other kernel here. W = 8/16/32 covers the
// head-dim panels of attention (A*V and its backward companions).
template <int W>
void EdgeColsTile(const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc, std::int64_t k,
                  std::int64_t rows) {
  float acc[kMR][W];
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int j = 0; j < W; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const float* brow = b + p * ldb;
    for (std::int64_t r = 0; r < rows; ++r) {
      const float av = a[r * lda + p];
      for (int j = 0; j < W; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int j = 0; j < W; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Fallback for tile remainders: rows [i0,i1) (at most kMR), cols [j0,j1).
// Register-tiled like the micro-kernel — accumulators live in a stack array
// and the p loop is outermost so the compiler vectorizes across columns —
// which matters for narrow-C shapes (n < kNR, e.g. the attention A*V panels
// of width head_dim) that never reach MicroKernel. Each C element is still
// accumulated in ascending-p order, so results stay bit-identical to the
// naive seed loop.
void EdgeKernel(const float* a, const float* b, float* c, std::int64_t k,
                std::int64_t n, std::int64_t i0, std::int64_t i1,
                std::int64_t j0, std::int64_t j1) {
  const std::int64_t rows = i1 - i0;
  if (rows > kMR) {
    // Defensive: callers hand over at most one kMR-row tile.
    for (std::int64_t i = i0; i < i1; i += kMR) {
      EdgeKernel(a, b, c, k, n, i, std::min(i1, i + kMR), j0, j1);
    }
    return;
  }
  float acc[kMR][kNR];
  for (std::int64_t jj = j0; jj < j1; jj += kNR) {
    const std::int64_t w = std::min<std::int64_t>(kNR, j1 - jj);
    switch (w) {
      case 8:
        EdgeColsTile<8>(a + i0 * k, k, b + jj, n, c + i0 * n + jj, n, k, rows);
        continue;
      case 16:
        EdgeColsTile<16>(a + i0 * k, k, b + jj, n, c + i0 * n + jj, n, k,
                         rows);
        continue;
      case 32:
        EdgeColsTile<32>(a + i0 * k, k, b + jj, n, c + i0 * n + jj, n, k,
                         rows);
        continue;
      default:
        break;
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* crow = c + (i0 + r) * n + jj;
      for (std::int64_t j = 0; j < w; ++j) acc[r][j] = crow[j];
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n + jj;
      for (std::int64_t r = 0; r < rows; ++r) {
        const float av = a[(i0 + r) * k + p];
        for (std::int64_t j = 0; j < w; ++j) acc[r][j] += av * brow[j];
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      float* crow = c + (i0 + r) * n + jj;
      for (std::int64_t j = 0; j < w; ++j) crow[j] = acc[r][j];
    }
  }
}

// One row-tile of one matrix: rows [r0, r1) with r0 % kMR == 0 and
// r1 - r0 <= kMR (r1 < r0 + kMR only for the final partial tile).
void GemmRowTile(const float* a, const float* b, float* c, std::int64_t k,
                 std::int64_t n, std::int64_t r0, std::int64_t r1) {
  const std::int64_t nb = n - n % kNR;
  if (r1 - r0 == kMR) {
    for (std::int64_t j = 0; j < nb; j += kNR) {
      MicroKernel(a + r0 * k, k, b + j, n, c + r0 * n + j, n, k);
    }
    if (nb < n) EdgeKernel(a, b, c, k, n, r0, r1, nb, n);
  } else {
    EdgeKernel(a, b, c, k, n, r0, r1, 0, n);
  }
}

// Cache-blocked transpose: dst[src_cols, src_rows] = src[src_rows,
// src_cols]^T.
void TransposePack(const float* src, std::int64_t src_rows,
                   std::int64_t src_cols, float* dst) {
  constexpr std::int64_t kTB = 32;
  for (std::int64_t r0 = 0; r0 < src_rows; r0 += kTB) {
    const std::int64_t r1 = std::min(src_rows, r0 + kTB);
    for (std::int64_t c0 = 0; c0 < src_cols; c0 += kTB) {
      const std::int64_t c1 = std::min(src_cols, c0 + kTB);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[c * src_rows + r] = src[r * src_cols + c];
        }
      }
    }
  }
}

// Packs the transposed operand of every batch into `scratch`
// ([batch, src_cols, src_rows]), parallel across batches.
void BatchedTransposePack(const float* src, std::int64_t batch,
                          std::int64_t src_rows, std::int64_t src_cols,
                          float* scratch) {
  const std::int64_t per_batch = src_rows * src_cols;
  const std::int64_t grain =
      std::max<std::int64_t>(1, (1 << 18) / std::max<std::int64_t>(
                                                1, per_batch));
  ParallelFor(0, batch, grain, [=](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t bi = b0; bi < b1; ++bi) {
      TransposePack(src + bi * per_batch, src_rows, src_cols,
                    scratch + bi * per_batch);
    }
  });
}

}  // namespace

void BatchedGemm(const float* a, const float* b, float* c, std::int64_t batch,
                 std::int64_t m, std::int64_t k, std::int64_t n) {
  if (batch <= 0 || m <= 0 || n <= 0 || k < 0) return;
  // Inclusive scope: the packed variants (Bt/AtB) funnel through here, so
  // tensor.gemm totals cover every dense multiply in the process.
  TFMAE_TRACE("tensor.gemm");
  TFMAE_COUNTER_ADD("tensor.gemm.flops", 2 * batch * m * k * n);
  // Bytes touched assuming one pass over each operand and a read-modify-
  // write of C (the kernels accumulate).
  TFMAE_COUNTER_ADD("tensor.gemm.bytes",
                    4 * batch * (m * k + k * n + 2 * m * n));
  // One unit = one kMR-row tile of one batch element. Chunk boundaries are
  // fixed by shape alone, so results are thread-count invariant.
  const std::int64_t blocks = (m + kMR - 1) / kMR;
  const std::int64_t units = batch * blocks;
  const double unit_flops =
      2.0 * static_cast<double>(kMR) * static_cast<double>(std::max<std::int64_t>(1, k)) *
      static_cast<double>(n);
  const std::int64_t grain = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(kMinFlopsPerChunk / unit_flops));
  ParallelFor(0, units, grain, [=](std::int64_t s, std::int64_t e) {
    for (std::int64_t u = s; u < e; ++u) {
      const std::int64_t bi = u / blocks;
      const std::int64_t r0 = (u % blocks) * kMR;
      const std::int64_t r1 = std::min(m, r0 + kMR);
      GemmRowTile(a + bi * m * k, b + bi * k * n, c + bi * m * n, k, n, r0,
                  r1);
    }
  });
}

void Gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  BatchedGemm(a, b, c, 1, m, k, n);
}

void BatchedGemmBt(const float* a, const float* b_t, float* c,
                   std::int64_t batch, std::int64_t m, std::int64_t k,
                   std::int64_t n) {
  if (batch <= 0 || m <= 0 || n <= 0 || k < 0) return;
  if (k == 0) return;
  // The nested BatchedGemm records under tensor.gemm as well; this site
  // isolates the packing overhead (gemm_bt total minus gemm total).
  TFMAE_TRACE("tensor.gemm_bt");
  // Pack B^T ([n, k] per batch) into row-major [k, n], then run the dense
  // kernel. The packs cost O(k*n) against the kernel's O(m*k*n). The
  // workspace comes from the pool (no zero-fill: TransposePack writes every
  // element), so steady-state backward gemms stay allocation-free.
  pool::Scratch packed(batch * k * n);
  BatchedTransposePack(b_t, batch, n, k, packed.data());
  BatchedGemm(a, packed.data(), c, batch, m, k, n);
}

void GemmBt(const float* a, const float* b_t, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  BatchedGemmBt(a, b_t, c, 1, m, k, n);
}

void BatchedGemmAtB(const float* a, const float* g, float* c,
                    std::int64_t batch, std::int64_t m, std::int64_t k,
                    std::int64_t n) {
  if (batch <= 0 || k <= 0 || n <= 0 || m < 0) return;
  if (m == 0) return;
  TFMAE_TRACE("tensor.gemm_atb");
  // Pack A ([m, k] per batch) into A^T ([k, m]), then C += A^T * G is a
  // dense Gemm with M'=k, K'=m, N'=n. Pool-backed workspace, no zero-fill
  // (fully written by the pack).
  pool::Scratch packed(batch * k * m);
  BatchedTransposePack(a, batch, m, k, packed.data());
  BatchedGemm(packed.data(), g, c, batch, k, m, n);
}

void GemmAtB(const float* a, const float* g, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  BatchedGemmAtB(a, g, c, 1, m, k, n);
}

void GemmNaiveSeed(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace tfmae::gemm
