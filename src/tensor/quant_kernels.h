// Int8 inference kernels: quantize/dequantize, the u8 x s8 -> s32 GEMM
// family, and the fused dequantization epilogues the quantized inference
// plan replays (DESIGN.md §12).
//
// Scheme (fixed across the repository):
//  * Activations are quantized to u8 with a FIXED zero point of 128 and a
//    PER-TENSOR scale calibrated from training absmax ranges — every
//    channel of a slot shares step = absmax / 127:
//      q[.,c] = clamp(round_half_away(x[.,c] / step) + 128, 0, 255).
//    The machinery is per-channel (the step is carried as a scale vector
//    folded into the weight side at pack time: row k of the weight is
//    pre-multiplied by scale[k], so the integer GEMM and its epilogue are
//    oblivious to it — the kernels below take a single a_scale, which the
//    folded path passes as 1), but calibration deliberately emits a
//    uniform vector: SmoothQuant-style per-channel steps and extra
//    headroom were both tried and measurably hurt F1 parity (see
//    CalibrateQuantSpec in src/core/quant.cc, which also keeps the
//    score-forming final decoder layers in fp32).
//  * Weights are quantized to s8 symmetrically with one scale PER OUTPUT
//    CHANNEL (per column of the [in, out] weight matrix):
//      wq = clamp(round_half_away(w / col_scale[n]), -127, 127).
//  * The integer GEMM accumulates sum_k a_q[m,k] * w_q[k,n] exactly in s32;
//    the fixed zero point is removed afterwards with a precomputed
//    per-column compensation term comp[n] = -128 * sum_k w_q[k,n], so
//      real[m,n] ~= (acc[m,n] + comp[n]) * a_scale * col_scale[n].
//
// Determinism contract, matching gemm_kernels.h: integer accumulation is
// exact (no rounding anywhere in the K loop), chunk boundaries depend only
// on shapes, and the float epilogue is computed per output element from
// that element's exact s32 accumulator — so every kernel here is bitwise
// thread-count-invariant, and the AVX-512-VNNI / AVX2 / scalar
// implementations all produce bit-identical outputs (the SIMD paths reorder
// additions of exactly-representable integers only).
//
// Weights are packed once at plan-build time into the VNNI-friendly
// [k4/4, n, 4] interleave (k4 = k rounded up to a multiple of 4, padded
// with zeros), which both the AVX-512 `vpdpbusd` path and the AVX2
// `madd_epi16` path consume directly.
//
// The Fast* transcendental kernels below are the quantized plan's
// replacements for the exp/tanh-heavy fp32 epilogues (GeLU, softmax). They
// are deterministic polynomial evaluations (no libm), accurate to ~1e-7
// relative, and are used ONLY on the int8 path — the fp32 plan keeps libm
// so it stays bitwise-identical to eager scoring.
#ifndef TFMAE_TENSOR_QUANT_KERNELS_H_
#define TFMAE_TENSOR_QUANT_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace tfmae::quant {

/// The fixed activation zero point (u8 midpoint).
inline constexpr int kActZeroPoint = 128;

/// K rounded up to the multiple of 4 the packed layouts use.
constexpr std::int64_t RoundUpK4(std::int64_t k) { return (k + 3) & ~3LL; }

/// Bytes of packed weight storage for a [k, n] matrix.
constexpr std::int64_t PackedWeightBytes(std::int64_t k, std::int64_t n) {
  return RoundUpK4(k) * n;
}

/// Deterministic float exp: 2^(x log2 e) with the exponent split into an
/// integer part (applied via the float exponent field) and a degree-6
/// polynomial on the fraction. ~2e-7 relative error, monotone, no libm.
inline float FastExp(float x) {
  x = std::min(std::max(x, -87.0f), 88.0f);
  const float z = x * 1.442695040888963f;  // log2(e)
  const float zi = std::floor(z);
  const float f = z - zi;
  // 2^f on [0, 1): Taylor expansion of exp(f ln 2), degree 6.
  float p = 1.5534392930963093e-4f;
  p = p * f + 1.3333558146428443e-3f;
  p = p * f + 9.6181291076284772e-3f;
  p = p * f + 5.5504108664821580e-2f;
  p = p * f + 2.4022650695910071e-1f;
  p = p * f + 6.9314718055994531e-1f;
  p = p * f + 1.0f;
  union {
    std::uint32_t u;
    float f32;
  } scale;
  scale.u = static_cast<std::uint32_t>(static_cast<int>(zi) + 127) << 23;
  return p * scale.f32;
}

/// tanh via one FastExp: tanh(u) = (e^{2u} - 1) / (e^{2u} + 1).
inline float FastTanh(float u) {
  const float e2 = FastExp(2.0f * u);
  return (e2 - 1.0f) / (e2 + 1.0f);
}

/// The paper's tanh-approximation GELU with FastTanh inside — the int8
/// epilogue twin of ops::kernels::GeluApprox.
inline float FastGelu(float v) {
  const float kC = 0.7978845608028654f;  // sqrt(2/pi), == kn::kGeluC
  const float inner = kC * (v + 0.044715f * v * v * v);
  return 0.5f * v * (1.0f + FastTanh(inner));
}

#if defined(__AVX512F__)
/// 16-lane FastExp. Lane i is the EXACT operation sequence of the scalar
/// FastExp (min/max clamp, mul, floor, mul-then-add Horner — never FMA,
/// which -ffp-contract=off also forbids in the scalar form), so each lane
/// is bitwise-identical to FastExp of that lane's input. zi is integral,
/// so round-to-nearest cvtps matches the scalar truncating cast.
inline __m512 FastExpV(__m512 x) {
  x = _mm512_min_ps(_mm512_max_ps(x, _mm512_set1_ps(-87.0f)),
                    _mm512_set1_ps(88.0f));
  const __m512 z = _mm512_mul_ps(x, _mm512_set1_ps(1.442695040888963f));
  const __m512 zi = _mm512_floor_ps(z);
  const __m512 f = _mm512_sub_ps(z, zi);
  __m512 p = _mm512_set1_ps(1.5534392930963093e-4f);
  p = _mm512_add_ps(_mm512_mul_ps(p, f),
                    _mm512_set1_ps(1.3333558146428443e-3f));
  p = _mm512_add_ps(_mm512_mul_ps(p, f),
                    _mm512_set1_ps(9.6181291076284772e-3f));
  p = _mm512_add_ps(_mm512_mul_ps(p, f),
                    _mm512_set1_ps(5.5504108664821580e-2f));
  p = _mm512_add_ps(_mm512_mul_ps(p, f),
                    _mm512_set1_ps(2.4022650695910071e-1f));
  p = _mm512_add_ps(_mm512_mul_ps(p, f),
                    _mm512_set1_ps(6.9314718055994531e-1f));
  p = _mm512_add_ps(_mm512_mul_ps(p, f), _mm512_set1_ps(1.0f));
  const __m512i e = _mm512_slli_epi32(
      _mm512_add_epi32(_mm512_cvtps_epi32(zi), _mm512_set1_epi32(127)), 23);
  return _mm512_mul_ps(p, _mm512_castsi512_ps(e));
}

/// 16-lane FastTanh; per-lane bitwise-identical to the scalar form
/// (IEEE division matches the scalar `/` exactly).
inline __m512 FastTanhV(__m512 u) {
  const __m512 e2 = FastExpV(_mm512_mul_ps(_mm512_set1_ps(2.0f), u));
  const __m512 one = _mm512_set1_ps(1.0f);
  return _mm512_div_ps(_mm512_sub_ps(e2, one), _mm512_add_ps(e2, one));
}

/// 16-lane FastGelu; per-lane bitwise-identical to the scalar form.
inline __m512 FastGeluV(__m512 v) {
  __m512 t = _mm512_mul_ps(_mm512_set1_ps(0.044715f), v);
  t = _mm512_mul_ps(t, v);
  t = _mm512_mul_ps(t, v);
  const __m512 inner =
      _mm512_mul_ps(_mm512_set1_ps(0.7978845608028654f), _mm512_add_ps(v, t));
  const __m512 th = FastTanhV(inner);
  return _mm512_mul_ps(_mm512_mul_ps(_mm512_set1_ps(0.5f), v),
                       _mm512_add_ps(_mm512_set1_ps(1.0f), th));
}
#endif  // __AVX512F__

/// out[j] = FastGelu(x[j] + bias[j]) over one bias-aligned span. The
/// AVX-512 body is per-element bitwise-identical to the scalar loop, so
/// callers may mix the two freely (chunk prologues, tails, non-AVX hosts).
inline void BiasGeluRowFast(const float* x, const float* bias, float* out,
                            std::int64_t n) {
  std::int64_t j = 0;
#if defined(__AVX512F__)
  for (; j + 16 <= n; j += 16) {
    const __m512 v =
        _mm512_add_ps(_mm512_loadu_ps(x + j), _mm512_loadu_ps(bias + j));
    _mm512_storeu_ps(out + j, FastGeluV(v));
  }
#endif
  for (; j < n; ++j) out[j] = FastGelu(x[j] + bias[j]);
}

/// One softmax row computed with FastExp (same max-subtraction form as
/// ops::kernels::SoftmaxRow). `in` and `out` may not alias. The AVX-512
/// body reorders only the exact max reduction and the exp sum; the summed
/// terms themselves are bitwise-identical to the scalar FastExp, and the
/// reduction order is fixed by `cols` alone, so the row stays deterministic
/// and thread-count-invariant (rows are never split across threads).
inline void SoftmaxRowFast(const float* in, float* out, std::int64_t cols) {
#if defined(__AVX512F__)
  if (cols >= 16) {
    std::int64_t j = 16;
    __m512 maxv = _mm512_loadu_ps(in);
    for (; j + 16 <= cols; j += 16) {
      maxv = _mm512_max_ps(maxv, _mm512_loadu_ps(in + j));
    }
    float max_v = _mm512_reduce_max_ps(maxv);
    for (; j < cols; ++j) max_v = std::max(max_v, in[j]);
    const __m512 max_bcast = _mm512_set1_ps(max_v);
    __m512 sumv = _mm512_setzero_ps();
    j = 0;
    for (; j + 16 <= cols; j += 16) {
      const __m512 e =
          FastExpV(_mm512_sub_ps(_mm512_loadu_ps(in + j), max_bcast));
      _mm512_storeu_ps(out + j, e);
      sumv = _mm512_add_ps(sumv, e);
    }
    float sum = _mm512_reduce_add_ps(sumv);
    for (; j < cols; ++j) {
      out[j] = FastExp(in[j] - max_v);
      sum += out[j];
    }
    const float inv = 1.0f / sum;
    const __m512 invv = _mm512_set1_ps(inv);
    j = 0;
    for (; j + 16 <= cols; j += 16) {
      _mm512_storeu_ps(out + j, _mm512_mul_ps(_mm512_loadu_ps(out + j), invv));
    }
    for (; j < cols; ++j) out[j] *= inv;
    return;
  }
#endif
  float max_v = in[0];
  for (std::int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, in[j]);
  float sum = 0.0f;
  for (std::int64_t j = 0; j < cols; ++j) {
    out[j] = FastExp(in[j] - max_v);
    sum += out[j];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t j = 0; j < cols; ++j) out[j] *= inv;
}

/// Fast twin of ops::kernels::ScaleSoftmaxRow.
inline void ScaleSoftmaxRowFast(const float* in, float* out,
                                std::int64_t cols, float scale, float* tmp) {
  std::int64_t j = 0;
#if defined(__AVX512F__)
  const __m512 sv = _mm512_set1_ps(scale);
  for (; j + 16 <= cols; j += 16) {
    _mm512_storeu_ps(tmp + j, _mm512_mul_ps(_mm512_loadu_ps(in + j), sv));
  }
#endif
  for (; j < cols; ++j) tmp[j] = in[j] * scale;
  SoftmaxRowFast(tmp, out, cols);
}

/// Quantizes a row-major [m, k] fp32 activation into u8 [m, k4] with
/// k4 = RoundUpK4(k); the padding columns are written as zero (they meet
/// zero weight lanes, so they never contribute). inv_scale = 1 / a_scale.
/// Rounding is round-half-away-from-zero, identical in every ISA path.
void QuantizeU8(const float* src, std::uint8_t* dst, std::int64_t m,
                std::int64_t k, float inv_scale);

/// Per-channel variant: column j of the activation uses its own calibrated
/// inv_scale[j]. The matching channel scale is folded into the packed
/// weights (`row_scale` below), so the GEMM epilogue still sees a single
/// a_scale of 1 — per-channel activation steps at zero replay cost.
void QuantizeU8PerChannel(const float* src, std::uint8_t* dst, std::int64_t m,
                          std::int64_t k, const float* inv_scale);

/// Dequantizes u8 [m, k4] back to fp32 [m, k] (tests / diagnostics; the
/// inference path never materializes dequantized activations).
void DequantizeU8(const std::uint8_t* src, float* dst, std::int64_t m,
                  std::int64_t k, float scale);

/// Quantizes a [k, n] row-major fp32 weight matrix to s8 with per-column
/// scales and packs it into the [k4/4, n, 4] interleave. Outputs:
///  * packed:    PackedWeightBytes(k, n) bytes
///  * col_scale: n floats, col_scale[j] = max_k |w[k,j]| / 127 (clamped to
///               a tiny positive floor so all-zero columns stay finite)
///  * col_comp:  n s32 zero-point compensations, -128 * sum_k wq[k,j]
/// When `row_scale` is non-null, w[k, j] is replaced by
/// w[k, j] * row_scale[k] before quantization — this folds the per-channel
/// activation scales into the weight side (the activation is then
/// quantized by QuantizeU8PerChannel with 1 / row_scale and the epilogue
/// a_scale is 1).
void QuantizePackWeights(const float* w, std::int64_t k, std::int64_t n,
                         std::int8_t* packed, float* col_scale,
                         std::int32_t* col_comp,
                         const float* row_scale = nullptr);

/// Transposed variant: the weight is stored row-major as [n, k] (each row
/// one output channel). Produces the exact same packed layout / scales /
/// compensation as QuantizePackWeights on the equivalent [k, n] matrix.
void QuantizePackWeightsT(const float* w_t, std::int64_t k, std::int64_t n,
                          std::int8_t* packed, float* col_scale,
                          std::int32_t* col_comp,
                          const float* row_scale = nullptr);

/// Fused dequantization epilogue applied to each s32 accumulator.
enum class Epilogue {
  kNone = 0,      ///< out = real
  kBias = 1,      ///< out = real + bias[n]
  kBiasGelu = 2,  ///< out = FastGelu(real + bias[n])
};

/// The int8 linear kernel: u8 [m, k4] activation x packed s8 weights ->
/// fp32 [m, n] with the dequantization (+ bias / + bias + GeLU) epilogue
/// fused — the s32 accumulators live in registers and are never stored.
/// `bias` may be null for Epilogue::kNone. Deterministic and bitwise
/// thread-count-invariant; allocation-free.
void QuantLinear(const std::uint8_t* a, const std::int8_t* packed_b,
                 const float* col_scale, const std::int32_t* col_comp,
                 const float* bias, float a_scale, Epilogue epilogue,
                 float* out, std::int64_t m, std::int64_t k, std::int64_t n);

/// Portable reference implementation (plain integer loops + the identical
/// scalar epilogue). The SIMD paths must match it bit-for-bit; tests and
/// the capture self-verification lean on this.
void QuantLinearScalar(const std::uint8_t* a, const std::int8_t* packed_b,
                       const float* col_scale, const std::int32_t* col_comp,
                       const float* bias, float a_scale, Epilogue epilogue,
                       float* out, std::int64_t m, std::int64_t k,
                       std::int64_t n);

/// Which SIMD path QuantLinear dispatches to ("avx512vnni", "avx2",
/// "scalar") — surfaced in bench sweeps and the quant ledger event.
const char* QuantGemmIsa();

/// Runs one named implementation ("scalar", "avx2", "avx512vnni") with the
/// QuantLinear signature; returns false when that path is not compiled on
/// this host. Tests sweep every available path against the scalar
/// reference and require bitwise identity.
bool QuantLinearPath(const char* isa, const std::uint8_t* a,
                     const std::int8_t* packed_b, const float* col_scale,
                     const std::int32_t* col_comp, const float* bias,
                     float a_scale, Epilogue epilogue, float* out,
                     std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace tfmae::quant

#endif  // TFMAE_TENSOR_QUANT_KERNELS_H_
