// Differentiable operator library over Tensor.
//
// Every function here computes its result eagerly and, when gradient mode is
// on and at least one input requires a gradient, records a backward closure
// on the output. Gradients follow the standard reverse-mode rules; each op's
// backward is covered by a finite-difference gradient check in
// tests/tensor_autograd_test.cc.
//
// Broadcasting for binary elementwise ops supports: identical shapes, one
// operand being a one-element scalar, or one operand's shape being a suffix
// of the other's (e.g. a [D] bias over a [T, D] activation).
#ifndef TFMAE_TENSOR_OPS_H_
#define TFMAE_TENSOR_OPS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace tfmae::ops {

// ---- Elementwise binary (broadcasting) -------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---- Scalar ----------------------------------------------------------------

/// x * c.
Tensor Scale(const Tensor& x, float c);
/// x + c.
Tensor AddScalar(const Tensor& x, float c);

// ---- Unary -----------------------------------------------------------------

Tensor Neg(const Tensor& x);
Tensor Exp(const Tensor& x);
Tensor Log(const Tensor& x);   ///< Natural log; inputs are clamped to >=1e-12.
Tensor Sqrt(const Tensor& x);  ///< Inputs are clamped to >= 0.
Tensor Square(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor Gelu(const Tensor& x);  ///< tanh approximation.
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);

// ---- Fused -----------------------------------------------------------------
//
// Fused kernels are bit-identical to the compositions they replace (pinned by
// tests/ops_property_test.cc): they apply the same per-element arithmetic in
// the same order, but build one graph node instead of two and skip the
// intermediate buffer.

/// Gelu(Add(x, bias)): the feed-forward activation. `bias` broadcasts as in
/// Add (same shape, scalar, or suffix).
Tensor BiasGelu(const Tensor& x, const Tensor& bias);

/// Softmax(Scale(x, scale)) over the last dimension — the scaled-dot-product
/// attention normalization, without materializing the scaled scores.
Tensor ScaleSoftmax(const Tensor& x, float scale);

// ---- In-place --------------------------------------------------------------
//
// In-place ops mutate their destination and record nothing on the tape. They
// CHECK-fail if called where a gradient could flow through the destination:
// grad mode must be off, or neither operand may require a gradient — and the
// destination must not be a recorded op output (a pending backward may read
// its stored values). Intended for inference fast paths and optimizer-style
// leaf updates.

/// x += y elementwise (broadcast: same shape, scalar, or suffix).
void AddInPlace(Tensor* x, const Tensor& y);

/// x *= c elementwise.
void MulScalarInPlace(Tensor* x, float c);

// ---- Matrix multiplication ---------------------------------------------------

/// [M, K] x [K, N] -> [M, N].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// [B, M, K] x [B, K, N] -> [B, M, N]. Batches and row tiles are dispatched
/// across the thread pool in one flat unit space (no per-slice rank-2 ops).
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// [B, M, K] x [B, N, K] -> [B, M, N]: multiplies by the last-two-axes
/// transpose of b without materializing it through a Permute3 graph node
/// (the Q·K^T step of attention).
Tensor BatchedMatMulBt(const Tensor& a, const Tensor& b);

/// Deprecated alias of BatchedMatMul.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

/// x [M, Din] * w [Din, Dout] + bias [Dout] (bias optional, pass null Tensor).
Tensor Linear(const Tensor& x, const Tensor& w, const Tensor& bias);

// ---- Shape -----------------------------------------------------------------

/// Copies into a new shape with the same element count.
Tensor Reshape(const Tensor& x, Shape shape);

/// Permutes the axes of a rank-3 tensor; perm is a permutation of {0,1,2}.
Tensor Permute3(const Tensor& x, const std::array<int, 3>& perm);

/// [M, N] -> [N, M].
Tensor Transpose2(const Tensor& x);

// ---- Row indexing (dim-0 of a rank-2 tensor) ---------------------------------

/// Gathers rows: out[i] = x[indices[i]].
Tensor IndexRows(const Tensor& x, const std::vector<std::int64_t>& indices);

/// Scatters rows of src into a zero [total_rows, D] output at the given
/// (unique) positions.
Tensor ScatterRows(const Tensor& src, const std::vector<std::int64_t>& indices,
                   std::int64_t total_rows);

/// Repeats a [D] or [1, D] row n times -> [n, D]. Backward sums over rows.
Tensor RepeatRow(const Tensor& row, std::int64_t n);

/// Contiguous row slice [start, start+len).
Tensor SliceRows(const Tensor& x, std::int64_t start, std::int64_t len);

/// Concatenates two rank-2 tensors along dim 0 (equal column counts).
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// im2col for 1-D convolution with "same" zero padding: for input [T, C] and
/// odd kernel size k, out[t] = concat(x[t-k/2], ..., x[t+k/2]) -> [T, k*C].
Tensor Im2Col(const Tensor& x, std::int64_t kernel_size);

// ---- Reductions ---------------------------------------------------------------

/// Sum of all elements -> shape {1}.
Tensor SumAll(const Tensor& x);

/// Mean of all elements -> shape {1}.
Tensor MeanAll(const Tensor& x);

// ---- Softmax / normalization ---------------------------------------------------

/// Softmax over the last dimension (numerically stabilized).
Tensor Softmax(const Tensor& x);

/// Log-softmax over the last dimension.
Tensor LogSoftmax(const Tensor& x);

/// Layer normalization over the last dimension with affine parameters
/// gamma, beta of shape [D].
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

// ---- Losses ---------------------------------------------------------------------

/// Mean squared error, mean over all elements -> scalar.
Tensor MseLoss(const Tensor& prediction, const Tensor& target);

/// KL(softmax(p) || softmax(q)) averaged over rows -> scalar. Rows are the
/// leading dims; the distribution is over the last dim.
Tensor KlDivLoss(const Tensor& p_logits, const Tensor& q_logits);

/// KlDivLoss(p, q) + KlDivLoss(q, p) — the symmetric objective of Eq. (14).
Tensor SymmetricKlLoss(const Tensor& p_logits, const Tensor& q_logits);

/// Non-differentiable utility: per-row symmetric KL between softmax(p) and
/// softmax(q) — the anomaly score of Eq. (16). Shapes [T, D] -> T values.
std::vector<float> SymmetricKlPerRow(const Tensor& p_logits,
                                     const Tensor& q_logits);

}  // namespace tfmae::ops

#endif  // TFMAE_TENSOR_OPS_H_
