#include "tensor/capture.h"

#include <utility>

#include "util/logging.h"

namespace tfmae::ops::capture {
namespace {

thread_local Recorder* g_recorder = nullptr;
thread_local InputTag g_next_input_tag = InputTag::kNone;

}  // namespace

Recorder::Recorder() {
  TFMAE_CHECK_MSG(g_recorder == nullptr,
                  "nested capture recorders are not supported");
  g_recorder = this;
  g_next_input_tag = InputTag::kNone;
}

Recorder::~Recorder() {
  g_recorder = nullptr;
  g_next_input_tag = InputTag::kNone;
}

void Recorder::AddParameter(const Tensor& parameter) {
  if (!parameter.defined()) return;
  const int index = static_cast<int>(parameters_.size());
  parameters_.push_back(parameter);
  weight_of_[parameter.impl().get()] = index;
}

void Recorder::TagIndexVector(const std::vector<std::int64_t>* indices,
                              IndexTag tag) {
  index_tags_[indices] = tag;
}

void Recorder::Fail(const std::string& reason) {
  if (error_.empty()) error_ = reason;
}

int Recorder::ResolveInput(const Tensor& t, const char* op) {
  if (!t.defined()) {
    Fail(std::string(op) + ": undefined input tensor");
    return -1;
  }
  const TensorImpl* impl = t.impl().get();
  auto found = node_of_.find(impl);
  if (found != node_of_.end()) return found->second;
  auto weight = weight_of_.find(impl);
  if (weight != weight_of_.end()) {
    const int id = static_cast<int>(nodes_.size());
    NodeInfo info;
    info.kind = NodeKind::kWeight;
    info.shape = t.shape();
    info.numel = t.numel();
    info.weight_index = weight->second;
    nodes_.push_back(std::move(info));
    node_of_[impl] = id;
    live_.push_back(t);
    return id;
  }
  Fail(std::string(op) + ": input of unknown provenance");
  return -1;
}

int Recorder::AddOutput(const Tensor& out) {
  const int id = static_cast<int>(nodes_.size());
  NodeInfo info;
  info.kind = NodeKind::kIntermediate;
  info.shape = out.shape();
  info.numel = out.numel();
  nodes_.push_back(std::move(info));
  node_of_[out.impl().get()] = id;
  live_.push_back(out);
  return id;
}

void Recorder::BindIndices(CapturedOp* op,
                           const std::vector<std::int64_t>& indices) {
  auto found = index_tags_.find(&indices);
  if (found != index_tags_.end()) {
    op->index_tag = found->second;
  } else {
    // Unregistered vector (e.g. a full 0..T-1 range built on the fly):
    // snapshot the values; they are part of the plan.
    op->index_tag = IndexTag::kNone;
    op->indices = indices;
  }
}

void Recorder::OnFromData(const Tensor& out) {
  const InputTag tag = g_next_input_tag;
  g_next_input_tag = InputTag::kNone;
  if (!ok()) return;
  if (tag == InputTag::kNone) {
    Fail("FromData: untagged external input during capture");
    return;
  }
  const int id = static_cast<int>(nodes_.size());
  NodeInfo info;
  info.kind = NodeKind::kInput;
  info.shape = out.shape();
  info.numel = out.numel();
  info.input_tag = tag;
  nodes_.push_back(std::move(info));
  node_of_[out.impl().get()] = id;
  live_.push_back(out);
}

void Recorder::OnBinary(int binary_kind, const Tensor& a, const Tensor& b,
                        const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kBinary;
  op.attrs = {binary_kind};
  op.inputs = {ResolveInput(a, "Binary"), ResolveInput(b, "Binary")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnBiasGelu(const Tensor& x, const Tensor& bias,
                          const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kBiasGelu;
  op.inputs = {ResolveInput(x, "BiasGelu"), ResolveInput(bias, "BiasGelu")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnMatMul(const Tensor& a, const Tensor& b, const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kMatMul;
  op.attrs = {a.dim(0), a.dim(1), b.dim(1)};
  op.inputs = {ResolveInput(a, "MatMul"), ResolveInput(b, "MatMul")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnBatchedMatMul(const Tensor& a, const Tensor& b,
                               const Tensor& out, bool transpose_b) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = transpose_b ? OpKind::kBatchedMatMulBt : OpKind::kBatchedMatMul;
  const std::int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  op.attrs = {a.dim(0), a.dim(1), a.dim(2), n};
  op.inputs = {ResolveInput(a, "BatchedMatMul"),
               ResolveInput(b, "BatchedMatMul")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnReshape(const Tensor& x, const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kReshape;
  op.inputs = {ResolveInput(x, "Reshape")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnPermute3(const Tensor& x, const std::array<int, 3>& perm,
                          const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kPermute3;
  op.attrs = {x.dim(0), x.dim(1), x.dim(2), perm[0], perm[1], perm[2]};
  op.inputs = {ResolveInput(x, "Permute3")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnIndexRows(const Tensor& x,
                           const std::vector<std::int64_t>& indices,
                           const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kIndexRows;
  op.attrs = {x.dim(1)};
  op.inputs = {ResolveInput(x, "IndexRows")};
  if (!ok()) return;
  BindIndices(&op, indices);
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnScatterRows(const Tensor& src,
                             const std::vector<std::int64_t>& indices,
                             std::int64_t total_rows, const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kScatterRows;
  op.attrs = {total_rows, src.dim(1)};
  op.inputs = {ResolveInput(src, "ScatterRows")};
  if (!ok()) return;
  BindIndices(&op, indices);
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnRepeatRow(const Tensor& row, std::int64_t n,
                           const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kRepeatRow;
  op.attrs = {n, out.dim(1)};
  op.inputs = {ResolveInput(row, "RepeatRow")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnScaleSoftmax(const Tensor& x, float scale, const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kScaleSoftmax;
  const std::int64_t cols = x.shape().back();
  op.attrs = {x.numel() / cols, cols};
  op.scalar = scale;
  op.inputs = {ResolveInput(x, "ScaleSoftmax")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnLayerNorm(const Tensor& x, const Tensor& gamma,
                           const Tensor& beta, float eps, const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kLayerNorm;
  const std::int64_t cols = x.shape().back();
  op.attrs = {x.numel() / cols, cols};
  op.scalar = eps;
  op.inputs = {ResolveInput(x, "LayerNorm"), ResolveInput(gamma, "LayerNorm"),
               ResolveInput(beta, "LayerNorm")};
  if (!ok()) return;
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnPosEncAdd(const Tensor& x,
                           const std::vector<std::int64_t>& positions,
                           const Tensor& out) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kPosEncAdd;
  op.attrs = {x.dim(0), x.dim(1)};
  op.inputs = {ResolveInput(x, "PosEncAdd")};
  if (!ok()) return;
  BindIndices(&op, positions);
  op.output = AddOutput(out);
  ops_.push_back(std::move(op));
}

void Recorder::OnSymKlPerRow(const Tensor& p, const Tensor& q) {
  if (!ok()) return;
  CapturedOp op;
  op.kind = OpKind::kSymKlPerRow;
  const std::int64_t cols = p.shape().back();
  op.attrs = {p.numel() / cols, cols};
  op.inputs = {ResolveInput(p, "SymKlPerRow"), ResolveInput(q, "SymKlPerRow")};
  if (!ok()) return;
  op.output = -1;
  score_rows_ = op.attrs[0];
  ops_.push_back(std::move(op));
}

void Recorder::OnUnsupported(const char* op) {
  Fail(std::string(op) + ": no capture support");
}

bool Active() { return g_recorder != nullptr; }

void TagNextInput(InputTag tag) {
  if (g_recorder != nullptr) g_next_input_tag = tag;
}

#define TFMAE_CAPTURE_FORWARD(call) \
  if (g_recorder != nullptr) g_recorder->call

void NoteFromData(const Tensor& out) { TFMAE_CAPTURE_FORWARD(OnFromData(out)); }
void NoteBinary(int binary_kind, const Tensor& a, const Tensor& b,
                const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnBinary(binary_kind, a, b, out));
}
void NoteBiasGelu(const Tensor& x, const Tensor& bias, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnBiasGelu(x, bias, out));
}
void NoteMatMul(const Tensor& a, const Tensor& b, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnMatMul(a, b, out));
}
void NoteBatchedMatMul(const Tensor& a, const Tensor& b, const Tensor& out,
                       bool transpose_b) {
  TFMAE_CAPTURE_FORWARD(OnBatchedMatMul(a, b, out, transpose_b));
}
void NoteReshape(const Tensor& x, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnReshape(x, out));
}
void NotePermute3(const Tensor& x, const std::array<int, 3>& perm,
                  const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnPermute3(x, perm, out));
}
void NoteIndexRows(const Tensor& x, const std::vector<std::int64_t>& indices,
                   const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnIndexRows(x, indices, out));
}
void NoteScatterRows(const Tensor& src,
                     const std::vector<std::int64_t>& indices,
                     std::int64_t total_rows, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnScatterRows(src, indices, total_rows, out));
}
void NoteRepeatRow(const Tensor& row, std::int64_t n, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnRepeatRow(row, n, out));
}
void NoteScaleSoftmax(const Tensor& x, float scale, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnScaleSoftmax(x, scale, out));
}
void NoteLayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps, const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnLayerNorm(x, gamma, beta, eps, out));
}
void NotePosEncAdd(const Tensor& x, const std::vector<std::int64_t>& positions,
                   const Tensor& out) {
  TFMAE_CAPTURE_FORWARD(OnPosEncAdd(x, positions, out));
}
void NoteSymKlPerRow(const Tensor& p, const Tensor& q) {
  TFMAE_CAPTURE_FORWARD(OnSymKlPerRow(p, q));
}
void NoteUnsupported(const char* op) {
  TFMAE_CAPTURE_FORWARD(OnUnsupported(op));
}

#undef TFMAE_CAPTURE_FORWARD

}  // namespace tfmae::ops::capture
