// Reductions, softmax family, layer normalization, and loss helpers.
//
// Row-wise ops parallelize over rows (each row is written by exactly one
// chunk). Cross-row reductions (SumAll, LayerNorm's gamma/beta grads) keep
// determinism by accumulating per-chunk partials at fixed chunk boundaries
// and combining them serially in chunk index order — so results are
// bit-identical at every thread count.
#include <cmath>
#include <cstring>

#include "tensor/capture.h"
#include "tensor/op_kernels.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "tensor/pool.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tfmae::ops {
namespace {

using internal::ParallelRows;
using internal::RowGrain;
using internal::SetGraph;
using internal::ShouldTrack;

// Fixed chunk size for flat deterministic reductions.
constexpr std::int64_t kSumChunk = 1 << 16;

// Interprets x as [rows, cols] with cols = last dimension.
void RowView(const Tensor& x, std::int64_t* rows, std::int64_t* cols) {
  TFMAE_CHECK(x.rank() >= 1);
  *cols = x.shape().back();
  *rows = x.numel() / *cols;
}

// Row-level arithmetic shared with the pre-planned inference executor.
using kernels::SoftmaxRow;

}  // namespace

Tensor SumAll(const Tensor& x) {
  Tensor out = Tensor::Empty({1});
  const float* px = x.data();
  const std::int64_t n = x.numel();
  if (n < internal::kParallelThreshold) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) acc += px[i];
    out.data()[0] = static_cast<float>(acc);
  } else {
    // Per-chunk double partials at fixed boundaries, combined in index
    // order: the same bits at any thread count.
    const std::int64_t nchunks = (n + kSumChunk - 1) / kSumChunk;
    std::vector<double> partials(static_cast<std::size_t>(nchunks), 0.0);
    double* pp = partials.data();
    ParallelFor(0, n, kSumChunk, [=](std::int64_t s, std::int64_t e) {
      double acc = 0.0;
      for (std::int64_t i = s; i < e; ++i) acc += px[i];
      pp[s / kSumChunk] = acc;
    });
    double total = 0.0;
    for (std::int64_t c = 0; c < nchunks; ++c) total += pp[c];
    out.data()[0] = static_cast<float>(total);
  }
  capture::NoteUnsupported("SumAll");
  if (ShouldTrack({x})) {
    SetGraph(&out, "SumAll", {x}, [x](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float g = self.grad.get()[0];
      pool::Scratch gx(x.numel());
      std::fill(gx.data(), gx.data() + x.numel(), g);
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor MeanAll(const Tensor& x) {
  return Scale(SumAll(x), 1.0f / static_cast<float>(x.numel()));
}

Tensor Softmax(const Tensor& x) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(x, &rows, &cols);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      SoftmaxRow(px + r * cols, po + r * cols, cols);
    }
  });
  capture::NoteUnsupported("Softmax");
  if (ShouldTrack({x})) {
    // The backward needs the output values y; they are reachable through
    // `self` (capturing the output Tensor here would create a shared_ptr
    // cycle and leak the graph).
    SetGraph(&out, "Softmax", {x}, [x, rows, cols](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      const float* py = self.data.get();
      pool::Scratch gx(x.numel());
      float* pgx = gx.data();
      ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* gy = grad + r * cols;
          const float* yr = py + r * cols;
          float dot = 0.0f;
          for (std::int64_t j = 0; j < cols; ++j) dot += gy[j] * yr[j];
          float* gxr = pgx + r * cols;
          for (std::int64_t j = 0; j < cols; ++j) {
            gxr[j] = yr[j] * (gy[j] - dot);
          }
        }
      });
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor ScaleSoftmax(const Tensor& x, float scale) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(x, &rows, &cols);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  // Materialize each scaled row before the softmax so the arithmetic is
  // exactly Softmax(Scale(x, scale)) — the fused op must stay bit-identical
  // to the composition it replaces (pinned by ops_property_test).
  ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
    pool::Scratch scaled(cols);
    float* ps = scaled.data();
    for (std::int64_t r = r0; r < r1; ++r) {
      kernels::ScaleSoftmaxRow(px + r * cols, po + r * cols, cols, scale, ps);
    }
  });
  capture::NoteScaleSoftmax(x, scale, out);
  if (ShouldTrack({x})) {
    SetGraph(&out, "ScaleSoftmax", {x},
             [x, rows, cols, scale](TensorImpl& self) {
               if (!x.requires_grad()) return;
               const float* grad = self.grad.get();
               const float* py = self.data.get();
               // src is the softmax backward w.r.t. the scaled input; the
               // chain rule through Scale is the final scale factor, applied
               // in AccumulateGradScaled exactly as the composed Scale
               // backward would.
               pool::Scratch src(x.numel());
               float* psrc = src.data();
               ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
                 for (std::int64_t r = r0; r < r1; ++r) {
                   const float* gy = grad + r * cols;
                   const float* yr = py + r * cols;
                   float dot = 0.0f;
                   for (std::int64_t j = 0; j < cols; ++j) dot += gy[j] * yr[j];
                   float* sr = psrc + r * cols;
                   for (std::int64_t j = 0; j < cols; ++j) {
                     sr[j] = yr[j] * (gy[j] - dot);
                   }
                 }
               });
               internal::AccumulateGradScaled(x, src.data(), scale);
             });
  }
  return out;
}

Tensor LogSoftmax(const Tensor& x) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(x, &rows, &cols);
  Tensor out = Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* in = px + r * cols;
      float* o = po + r * cols;
      float max_v = in[0];
      for (std::int64_t j = 1; j < cols; ++j) max_v = std::max(max_v, in[j]);
      float sum = 0.0f;
      for (std::int64_t j = 0; j < cols; ++j) sum += std::exp(in[j] - max_v);
      const float log_sum = std::log(sum) + max_v;
      for (std::int64_t j = 0; j < cols; ++j) o[j] = in[j] - log_sum;
    }
  });
  capture::NoteUnsupported("LogSoftmax");
  if (ShouldTrack({x})) {
    SetGraph(&out, "LogSoftmax", {x}, [x, rows, cols](TensorImpl& self) {
      if (!x.requires_grad()) return;
      const float* grad = self.grad.get();
      const float* py = self.data.get();
      pool::Scratch gx(x.numel());
      float* pgx = gx.data();
      ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float* gy = grad + r * cols;
          const float* yr = py + r * cols;
          float gsum = 0.0f;
          for (std::int64_t j = 0; j < cols; ++j) gsum += gy[j];
          float* gxr = pgx + r * cols;
          for (std::int64_t j = 0; j < cols; ++j) {
            gxr[j] = gy[j] - std::exp(yr[j]) * gsum;
          }
        }
      });
      internal::AccumulateGrad(x, gx.data());
    });
  }
  return out;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(x, &rows, &cols);
  TFMAE_CHECK_MSG(gamma.numel() == cols && beta.numel() == cols,
                  "LayerNorm affine parameters must have " << cols
                                                           << " elements");
  Tensor out = Tensor::Empty(x.shape());
  // Cache per-row mean and inverse std for backward.
  Tensor mean = Tensor::Empty({rows});
  Tensor inv_std = Tensor::Empty({rows});
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  float* pmean = mean.data();
  float* pinv = inv_std.data();
  ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      kernels::LayerNormRow(px + r * cols, pg, pb, cols, eps, po + r * cols,
                            pmean + r, pinv + r);
    }
  });
  capture::NoteLayerNorm(x, gamma, beta, eps, out);
  if (ShouldTrack({x, gamma, beta})) {
    SetGraph(&out, "LayerNorm", {x, gamma, beta},
             [x, gamma, beta, mean, inv_std, rows, cols](TensorImpl& self) {
               const float* grad = self.grad.get();
               const float* px = x.data();
               const float* pg = gamma.data();
               pool::Scratch gx(x.numel());  // every element written
               // The gamma/beta gradients reduce over rows: accumulate one
               // partial pair per row chunk, then combine in chunk order.
               const std::int64_t grain = RowGrain(cols);
               const std::int64_t nchunks = (rows + grain - 1) / grain;
               pool::Scratch partials(nchunks * 2 * cols, /*zero_fill=*/true);
               float* pgx = gx.data();
               float* ppart = partials.data();
               const float* pmean = mean.data();
               const float* pinv = inv_std.data();
               ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
                 float* pggamma = ppart + (r0 / grain) * 2 * cols;
                 float* pgbeta = pggamma + cols;
                 for (std::int64_t r = r0; r < r1; ++r) {
                   const float mu = pmean[r];
                   const float istd = pinv[r];
                   const float* in = px + r * cols;
                   const float* gy = grad + r * cols;
                   // dxhat, plus the two row-wide reductions of the standard
                   // layer-norm backward.
                   float sum_dxhat = 0.0f;
                   float sum_dxhat_xhat = 0.0f;
                   for (std::int64_t j = 0; j < cols; ++j) {
                     const float xhat = (in[j] - mu) * istd;
                     const float dxhat = gy[j] * pg[j];
                     sum_dxhat += dxhat;
                     sum_dxhat_xhat += dxhat * xhat;
                     pggamma[j] += gy[j] * xhat;
                     pgbeta[j] += gy[j];
                   }
                   const float inv_cols = 1.0f / static_cast<float>(cols);
                   float* gxr = pgx + r * cols;
                   for (std::int64_t j = 0; j < cols; ++j) {
                     const float xhat = (in[j] - mu) * istd;
                     const float dxhat = gy[j] * pg[j];
                     gxr[j] = istd * (dxhat - inv_cols * sum_dxhat -
                                      xhat * inv_cols * sum_dxhat_xhat);
                   }
                 }
               });
               pool::Scratch ggamma(cols, /*zero_fill=*/true);
               pool::Scratch gbeta(cols, /*zero_fill=*/true);
               for (std::int64_t c = 0; c < nchunks; ++c) {
                 const float* pggamma = ppart + c * 2 * cols;
                 const float* pgbeta = pggamma + cols;
                 for (std::int64_t j = 0; j < cols; ++j) {
                   ggamma.data()[j] += pggamma[j];
                   gbeta.data()[j] += pgbeta[j];
                 }
               }
               internal::AccumulateGrad(x, gx.data());
               internal::AccumulateGrad(gamma, ggamma.data());
               internal::AccumulateGrad(beta, gbeta.data());
             });
  }
  return out;
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  Tensor diff = Sub(prediction, target);
  return MeanAll(Square(diff));
}

Tensor KlDivLoss(const Tensor& p_logits, const Tensor& q_logits) {
  TFMAE_CHECK_MSG(SameShape(p_logits.shape(), q_logits.shape()),
                  "KlDivLoss shape mismatch");
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(p_logits, &rows, &cols);
  Tensor p_log = LogSoftmax(p_logits);
  Tensor q_log = LogSoftmax(q_logits);
  Tensor p = Exp(p_log);
  Tensor elem = Mul(p, Sub(p_log, q_log));
  return Scale(SumAll(elem), 1.0f / static_cast<float>(rows));
}

Tensor SymmetricKlLoss(const Tensor& p_logits, const Tensor& q_logits) {
  return Add(KlDivLoss(p_logits, q_logits), KlDivLoss(q_logits, p_logits));
}

std::vector<float> SymmetricKlPerRow(const Tensor& p_logits,
                                     const Tensor& q_logits) {
  TFMAE_CHECK_MSG(SameShape(p_logits.shape(), q_logits.shape()),
                  "SymmetricKlPerRow shape mismatch");
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowView(p_logits, &rows, &cols);
  std::vector<float> scores(static_cast<std::size_t>(rows), 0.0f);
  const float* pp = p_logits.data();
  const float* pq = q_logits.data();
  float* ps = scores.data();
  ParallelRows(rows, cols, [=](std::int64_t r0, std::int64_t r1) {
    pool::Scratch p(cols);
    pool::Scratch q(cols);
    for (std::int64_t r = r0; r < r1; ++r) {
      ps[r] = kernels::SymmetricKlRow(pp + r * cols, pq + r * cols, cols,
                                      p.data(), q.data());
    }
  });
  capture::NoteSymKlPerRow(p_logits, q_logits);
  return scores;
}

}  // namespace tfmae::ops
