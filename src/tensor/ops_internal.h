// Shared helpers for the operator implementations. Internal to src/tensor.
#ifndef TFMAE_TENSOR_OPS_INTERNAL_H_
#define TFMAE_TENSOR_OPS_INTERNAL_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace tfmae::ops::internal {

/// True iff gradient mode is on and any input requires a gradient.
bool ShouldTrack(std::initializer_list<Tensor> inputs);

/// Marks `out` as produced by operator `op` from `inputs` with the given
/// backward closure. `op` must be a string literal (stored unowned on the
/// node); it names the node in the observability layer's per-op backward
/// timing (`autograd.<op>.self_ns`) and in debug output.
void SetGraph(Tensor* out, const char* op, std::vector<Tensor> inputs,
              std::function<void(TensorImpl&)> backward_fn);

/// Monotone count of autograd graph nodes recorded by SetGraph since process
/// start. Stays flat across NoGradGuard regions — the retention regression
/// tests pin the inference fast path on this.
std::int64_t GraphNodesCreated();

/// Adds `src` (numel values) into t's gradient buffer if t requires grad.
void AccumulateGrad(const Tensor& t, const float* src);

/// Adds src scaled by `scale` into t's gradient buffer if t requires grad.
void AccumulateGradScaled(const Tensor& t, const float* src, float scale);

// ---- Parallel dispatch helpers ---------------------------------------------
//
// Chunk boundaries depend only on the element/row counts (never the thread
// count), so any op whose writes are disjoint per chunk stays bit-identical
// at every pool size. Reductions must combine per-chunk partials in chunk
// index order; kElemGrain / the ParallelRows grain are the boundaries to
// key those partials on.

/// Fixed elementwise chunk size used by ParallelElems.
constexpr std::int64_t kElemGrain = 1 << 14;

/// Minimum element count before an elementwise loop is worth dispatching.
constexpr std::int64_t kParallelThreshold = 1 << 15;

/// Runs fn(s, e) over [0, n): serially in one chunk when n is small,
/// otherwise over fixed kElemGrain chunks on the pool.
void ParallelElems(std::int64_t n,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Row-wise dispatch for [rows, cols] views: grain scales inversely with
/// the row width. Returns the grain used (for chunk-indexed partials).
std::int64_t ParallelRows(
    std::int64_t rows, std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// The grain ParallelRows will use for this view (shape-only function).
std::int64_t RowGrain(std::int64_t cols);

}  // namespace tfmae::ops::internal

#endif  // TFMAE_TENSOR_OPS_INTERNAL_H_
