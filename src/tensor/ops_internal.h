// Shared helpers for the operator implementations. Internal to src/tensor.
#ifndef TFMAE_TENSOR_OPS_INTERNAL_H_
#define TFMAE_TENSOR_OPS_INTERNAL_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace tfmae::ops::internal {

/// True iff gradient mode is on and any input requires a gradient.
bool ShouldTrack(std::initializer_list<Tensor> inputs);

/// Marks `out` as produced from `inputs` with the given backward closure.
/// No-op unless ShouldTrack(inputs).
void SetGraph(Tensor* out, std::vector<Tensor> inputs,
              std::function<void(TensorImpl&)> backward_fn);

/// Adds `src` (numel values) into t's gradient buffer if t requires grad.
void AccumulateGrad(const Tensor& t, const float* src);

/// Adds src scaled by `scale` into t's gradient buffer if t requires grad.
void AccumulateGradScaled(const Tensor& t, const float* src, float scale);

}  // namespace tfmae::ops::internal

#endif  // TFMAE_TENSOR_OPS_INTERNAL_H_
