#include "serve/fleet_server.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "core/config_io.h"
#include "core/inference_plan.h"
#include "data/timeseries.h"
#include "eval/detection.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae::serve {
namespace {

// Per-(stream, seq) mask-RNG seed. The paper's CV/amplitude masks are pure
// functions of the window values and never draw from it; the random-masking
// ablation variants do, and this keeps their draws deterministic under ANY
// batch composition (a shared RNG would make mask draws depend on scoring
// order). splitmix64 finalizer.
std::uint64_t MixSeed(std::uint64_t seed, std::int64_t stream,
                      std::int64_t seq) {
  std::uint64_t x = seed +
                    0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(stream + 1) +
                    0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(seq + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Log2Bucket(std::uint64_t v) {
  int b = 0;
  while (v > 1 && b < 63) {
    v >>= 1;
    ++b;
  }
  return b;
}

void AtomicMax(std::atomic<std::int64_t>* target, std::int64_t value) {
  std::int64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Quantile over a fixed log2 histogram with linear interpolation inside a
/// bucket (the obs exporters' scheme), clamped to the observed min/max.
double HistogramQuantile(const std::uint64_t* counts, int buckets,
                         std::uint64_t min_v, std::uint64_t max_v, double p) {
  std::uint64_t total = 0;
  for (int b = 0; b < buckets; ++b) total += counts[b];
  if (total == 0) return 0.0;
  const double target = p * static_cast<double>(total);
  double cumulative = 0.0;
  for (int b = 0; b < buckets; ++b) {
    const double count = static_cast<double>(counts[b]);
    if (count == 0.0) continue;
    if (cumulative + count >= target) {
      const double lo = static_cast<double>(1ULL << b);
      const double hi = lo * 2.0;
      const double frac = (target - cumulative) / count;
      double v = lo + (hi - lo) * frac;
      v = std::max(v, static_cast<double>(min_v));
      v = std::min(v, static_cast<double>(max_v));
      return v;
    }
    cumulative += count;
  }
  return static_cast<double>(max_v);
}

void JsonField(std::string* out, const char* key, const std::string& value) {
  if (out->size() > 1) out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(value);
}

std::string JsonDouble(double v, const char* fmt = "%.1f") {
  char buf[32];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNew:
      return "reject";
    case ShedPolicy::kDropOldest:
      return "drop_oldest";
    case ShedPolicy::kBlockDeadline:
      return "block";
  }
  return "reject";
}

std::optional<ShedPolicy> ParseShedPolicy(std::string_view name) {
  if (name == "reject") return ShedPolicy::kRejectNew;
  if (name == "drop_oldest") return ShedPolicy::kDropOldest;
  if (name == "block") return ShedPolicy::kBlockDeadline;
  return std::nullopt;
}

/// One stream slot: the compact state plus its ingest lock. Pushes to
/// different streams contend only on the queue; pushes to the same stream
/// are the caller's timeline and serialize here.
struct FleetServer::Entry {
  /// `slo_window` > 0 allocates this stream's sliding error-budget ring
  /// (one byte per tracked window); 0 means no SLO objective is active and
  /// the ring stays empty.
  Entry(const core::StreamingOptions& options, std::int64_t slo_window)
      : state(options) {
    if (slo_window > 0) {
      slo_ring.assign(static_cast<std::size_t>(slo_window), 0);
    }
  }
  std::mutex mu;
  core::StreamState state;
  // Sliding SLO error budget (guarded by mu): violation bits of the last
  // slo_window scored windows, their running sum, and the sticky-per-
  // episode exhaustion latch (clears when the window recovers).
  std::vector<std::uint8_t> slo_ring;
  std::size_t slo_pos = 0;
  std::int64_t slo_filled = 0;
  std::int64_t slo_violations = 0;
  bool slo_exhausted = false;
};

/// One batch lane: a private InferencePlan replica with its own planned
/// arena plus a reusable output buffer. Lanes are the batch dimension of
/// the PR 6 arena planner — replay is stateful (one arena, rebindable
/// inputs), so concurrency comes from replicas, not sharing. Every lane
/// self-verified against the eager path at capture, so all lanes produce
/// bitwise-identical scores for the same window.
struct FleetServer::Lane {
  std::unique_ptr<core::InferencePlan> plan;
  bool quantized = false;  ///< plan compiled for the int8 path
  std::vector<float> out;
  std::atomic_flag busy = ATOMIC_FLAG_INIT;
};

/// One ready window awaiting a batched pass: a value snapshot (the stream's
/// buffer keeps sliding underneath) plus the metadata its result carries.
struct FleetServer::Request {
  std::int64_t stream = -1;
  std::int64_t seq = -1;
  std::int64_t fresh = 0;
  std::int32_t imputed = 0;
  std::vector<float> values;
  /// Stage clock: admission stamp (local NowNs()) for the queue-wait stage
  /// and the experienced-latency SLO. 0 for windows restored from a
  /// snapshot — their wait predates this process, so they count a zero
  /// queue stage and are exempt from the latency objective.
  std::uint64_t t_admit_ns = 0;
};

FleetServer::FleetServer(core::TfmaeDetector* detector, FleetOptions options)
    : detector_(detector), options_(options) {
  TFMAE_CHECK(detector != nullptr);
  TFMAE_CHECK_MSG(detector->fitted(),
                  "FleetServer requires a fitted detector");
  TFMAE_CHECK(options_.max_streams >= 1);
  TFMAE_CHECK(options_.queue_capacity >= 1);
  TFMAE_CHECK(options_.batch_max >= 1);
  // The serving geometry: one ready window == one model window, so the
  // batcher can coalesce windows from any mix of streams into one pass. A
  // larger stream window would make Score() slice sub-windows and average —
  // use the synchronous StreamingDetector for that shape.
  TFMAE_CHECK_MSG(options_.streaming.window <= detector->config().window,
                  "FleetServer: streaming.window must not exceed the "
                  "detector's config().window (one window per rescore)");
  TFMAE_CHECK(options_.snapshot_keep >= 2);
  streams_.resize(static_cast<std::size_t>(options_.max_streams));
  const std::string config_text = core::ConfigToString(detector_->config());
  config_crc_ = util::Crc32(config_text.data(), config_text.size());
  // Drift monitor reference: the detector's persisted calibration score
  // distribution when it carries one (<prefix>.drift sidecar); otherwise
  // CalibrateThreshold or SetDriftReference installs one later.
  if (detector_->has_score_reference()) {
    drift_ref_ = detector_->score_reference();
  }
  if (options_.drift_check_every > 0 && options_.drift_reservoir > 0) {
    drift_ring_.reserve(static_cast<std::size_t>(options_.drift_reservoir));
  }
  if (options_.watchdog_stall_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

FleetServer::~FleetServer() {
  // Shutdown contract: every admitted window is scored before the server
  // goes away, even if the owner forgot to Drain().
  Drain();
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

std::int64_t FleetServer::OpenStream() {
  std::lock_guard<std::mutex> lock(open_mu_);
  const std::int64_t n = num_streams_.load(std::memory_order_relaxed);
  if (n >= options_.max_streams) return -1;
  const bool slo_on =
      options_.slo_latency_ns > 0 || options_.slo_staleness_rows > 0;
  auto entry = std::make_unique<Entry>(options_.streaming,
                                       slo_on ? options_.slo_window : 0);
  entry->state.set_threshold(default_threshold_);
  streams_[static_cast<std::size_t>(n)] = std::move(entry);
  // Publish AFTER the slot is filled so lock-free readers of num_streams()
  // always find a constructed Entry behind any id they accept.
  num_streams_.store(n + 1, std::memory_order_release);
  TFMAE_GAUGE_SET("serve.streams", n + 1);
  return n;
}

void FleetServer::set_threshold(float threshold) {
  std::lock_guard<std::mutex> lock(open_mu_);
  default_threshold_ = threshold;
  const std::int64_t n = num_streams_.load(std::memory_order_acquire);
  for (std::int64_t s = 0; s < n; ++s) {
    Entry& entry = *streams_[static_cast<std::size_t>(s)];
    std::lock_guard<std::mutex> stream_lock(entry.mu);
    entry.state.set_threshold(threshold);
  }
}

void FleetServer::CalibrateThreshold(
    const std::vector<float>& calibration_scores, double anomaly_fraction) {
  set_threshold(
      eval::QuantileThreshold(calibration_scores, anomaly_fraction));
  // The same calibration scores double as the drift monitor's reference
  // distribution when no persisted one was installed.
  std::lock_guard<std::mutex> lock(drift_mu_);
  if (drift_ref_.empty()) {
    drift_ref_ = core::BuildScoreDistribution(calibration_scores);
  }
}

void FleetServer::SetDriftReference(core::ScoreDistribution reference) {
  std::lock_guard<std::mutex> lock(drift_mu_);
  drift_ref_ = std::move(reference);
}

AdmitStatus FleetServer::Push(std::int64_t stream,
                              const std::vector<float>& row,
                              core::StreamingResult* result) {
  TFMAE_TRACE("serve.push");
  if (draining_.load(std::memory_order_acquire)) return AdmitStatus::kDraining;
  if (stream < 0 || stream >= num_streams()) return AdmitStatus::kUnknownStream;
  if (TFMAE_FAULT("serve.push")) {
    // Injected ingest failure, shaped exactly like an admission-control
    // refusal: the row is untouched and the caller's overload retry path
    // must absorb it.
    rows_overloaded_.fetch_add(1, std::memory_order_relaxed);
    TFMAE_COUNTER_ADD("serve.ingest.rejected_overload", 1);
    RecordShedStrike();
    return AdmitStatus::kOverloaded;
  }
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];

  if (options_.shed_policy == ShedPolicy::kBlockDeadline) {
    // Self-service pre-wait: instead of bouncing kOverloaded back, the
    // pushing thread spends its own time scoring the backlog, up to the
    // deadline. Runs BEFORE entry.mu so a waiting push never blocks the
    // scoring path's result commits for this stream.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.shed_deadline_ms);
    for (;;) {
      {
        std::lock_guard<std::mutex> queue_lock(queue_mu_);
        if (static_cast<std::int64_t>(queue_.size()) <
            options_.queue_capacity) {
          break;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      TryFlush();  // no-op when another thread is mid-batch; then nap
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  bool queued = false;
  std::int64_t depth = 0;
  {
    std::lock_guard<std::mutex> stream_lock(entry.mu);
    {
      // Admission control BEFORE the row is absorbed: an overloaded refusal
      // must leave the stream untouched so the caller can re-push the same
      // row after draining. Checked up front rather than at enqueue time —
      // once Absorb() has advanced the hop cadence there is no way to hand
      // the window back.
      std::lock_guard<std::mutex> queue_lock(queue_mu_);
      if (static_cast<std::int64_t>(queue_.size()) >=
          options_.queue_capacity) {
        if (options_.shed_policy == ShedPolicy::kDropOldest &&
            !queue_.empty()) {
          // Evict the oldest admitted window to make room for the new row,
          // and publish the victim as a shed-marked result so the coverage
          // gap is observable rather than silent.
          Request victim = std::move(queue_.front());
          queue_.pop_front();
          shed_dropped_.fetch_add(1, std::memory_order_relaxed);
          TFMAE_COUNTER_ADD("serve.shed.dropped", 1);
          RecordShedStrike();
          ScoredWindow marker;
          marker.stream = victim.stream;
          marker.seq = victim.seq;
          marker.fresh = victim.fresh;
          marker.degraded = victim.imputed > 0;
          marker.imputed_values = victim.imputed;
          marker.shed = true;
          std::lock_guard<std::mutex> results_lock(results_mu_);
          results_.push_back(marker);
        } else {
          rows_overloaded_.fetch_add(1, std::memory_order_relaxed);
          TFMAE_COUNTER_ADD("serve.ingest.rejected_overload", 1);
          if (options_.shed_policy == ShedPolicy::kBlockDeadline) {
            shed_deadline_expired_.fetch_add(1, std::memory_order_relaxed);
            TFMAE_COUNTER_ADD("serve.shed.deadline_expired", 1);
          }
          RecordShedStrike();
          return AdmitStatus::kOverloaded;
        }
      }
    }
    // The row is being admitted: saturation is over for strike purposes
    // (the degraded latch, once set, stays).
    shed_strikes_.store(0, std::memory_order_relaxed);

    const core::AbsorbOutcome outcome = entry.state.Absorb(row);
    switch (outcome.status) {
      case core::PushStatus::kRejected:
        rows_rejected_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.rejected_row", 1);
        return AdmitStatus::kRejectedRow;
      case core::PushStatus::kQuarantined:
        rows_quarantined_.fetch_add(1, std::memory_order_relaxed);
        rows_pushed_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.quarantined", 1);
        return AdmitStatus::kQuarantined;
      case core::PushStatus::kWarmup:
        rows_warmup_.fetch_add(1, std::memory_order_relaxed);
        rows_pushed_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.admitted", 1);
        return AdmitStatus::kWarmup;
      case core::PushStatus::kScored:
        break;
    }
    rows_pushed_.fetch_add(1, std::memory_order_relaxed);
    TFMAE_COUNTER_ADD("serve.ingest.admitted", 1);

    if (outcome.rescore_due) {
      Request request;
      request.stream = stream;
      request.seq = entry.state.total_pushed() - 1;
      request.fresh = outcome.fresh;
      request.imputed = outcome.imputed_values;
      request.values = entry.state.window();  // snapshot before it slides
      request.t_admit_ns = NowNs();           // stage clock: queue wait starts
      std::lock_guard<std::mutex> queue_lock(queue_mu_);
      queue_.push_back(std::move(request));
      depth = static_cast<std::int64_t>(queue_.size());
      AtomicMax(&peak_queue_depth_, depth);
      windows_enqueued_.fetch_add(1, std::memory_order_relaxed);
      queued = true;
    } else if (result != nullptr) {
      // In-between-hop push: StreamingDetector's documented semantics —
      // reuse the latest committed tail score.
      result->score = entry.state.last_tail_score();
      result->is_anomaly = result->score >= entry.state.threshold();
      result->degraded = outcome.imputed_values > 0;
      result->imputed_values = outcome.imputed_values;
    }
  }

  if (!queued) {
    MaybeAutoSnapshot();
    return AdmitStatus::kAccepted;
  }
  TFMAE_GAUGE_MAX("serve.queue.depth_peak", depth);
  TFMAE_HISTOGRAM_RECORD("serve.queue.depth", static_cast<std::uint64_t>(depth));
  // Flush OUTSIDE every lock: the scoring path re-acquires stream locks to
  // commit results (lock order: score_mu_ -> entry.mu; the push path holds
  // entry.mu -> queue_mu_ — no cycle as long as nothing here holds a lock
  // while asking for score_mu_).
  if (options_.auto_flush && depth >= options_.batch_max) TryFlush();
  MaybeAutoSnapshot();
  return AdmitStatus::kQueued;
}

bool FleetServer::EnsureLanesLocked(std::int64_t want,
                                    const core::MaskedWindow& example) {
  want = std::max<std::int64_t>(want, 1);
  while (static_cast<std::int64_t>(lanes_.size()) < want) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Lane precision: int8 when the detector selected it and carries a
  // calibration spec, unless a quantized capture already failed (sticky —
  // mixed-precision lanes would make batch scores depend on lane
  // assignment, breaking the batch-composition invariance contract).
  const core::QuantSpec* spec = nullptr;
  if (!quant_capture_failed_ &&
      detector_->quant_mode() == core::TfmaeDetector::QuantMode::kInt8 &&
      detector_->has_quant_spec()) {
    spec = &detector_->quant_spec();
  }
  for (std::int64_t i = 0; i < want; ++i) {
    Lane& lane = *lanes_[static_cast<std::size_t>(i)];
    const bool want_quant = spec != nullptr;
    if (lane.plan != nullptr && lane.plan->Matches(example) &&
        lane.quantized == want_quant) {
      continue;
    }
    lane.plan.reset();
    std::string error;
    lane.plan = core::InferencePlan::Capture(*detector_->model(), example,
                                             &lane.out, &error, spec);
    if (lane.plan == nullptr) {
      if (spec != nullptr) {
        // A failed int8 capture demotes the WHOLE server to fp32 lanes
        // (sticky): every already-captured int8 lane is dropped and this
        // loop restarts in fp32, so one batch never mixes precisions.
        quant_capture_failed_ = true;
        quant_lane_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.quant.capture_fallbacks", 1);
        spec = nullptr;
        for (auto& l : lanes_) l->plan.reset();
        i = -1;
        continue;
      }
      // Capture failure never produces a wrong plan, only no plan: this
      // batch scores eagerly and the next batch retries the capture.
      TFMAE_COUNTER_ADD("serve.plan.capture_fallbacks", 1);
      return false;
    }
    lane.quantized = want_quant;
    TFMAE_COUNTER_ADD("serve.plan.lane_captures", 1);
  }
  return true;
}

std::int64_t FleetServer::ScoreBatchLocked() {
  std::vector<Request> batch;
  {
    std::lock_guard<std::mutex> queue_lock(queue_mu_);
    const std::int64_t take = std::min<std::int64_t>(
        options_.batch_max, static_cast<std::int64_t>(queue_.size()));
    batch.reserve(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  if (batch.empty()) return 0;
  TFMAE_TRACE("serve.batch");
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.size());
  const std::int64_t window = options_.streaming.window;
  const core::TfmaeModel& model = *detector_->model();
  const core::TfmaeConfig& config = detector_->config();
  const std::uint64_t t0 = NowNs();
  // Heartbeat for the watchdog: this batch is now in flight.
  batch_start_ns_.store(t0, std::memory_order_release);
  const bool fault_slow_batch = TFMAE_FAULT("serve.score");
  if (fault_slow_batch) {
    // Injected scoring stall: long enough for a tight watchdog deadline to
    // fire, and the batch is forced onto the eager path (bitwise-identical
    // scores by the plan's capture-time self-verification, so the
    // determinism contract is unaffected).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Phase 1 (dispatch thread, serial): replicate TfmaeDetector::Score's
  // exact per-window pipeline — global z-score, optional per-window
  // instance normalization, mask preparation. Masking/FFT are cheap next to
  // the transformer forward; keeping them off worker threads keeps the
  // parallel phase a pure replay loop.
  std::vector<core::MaskedWindow> masked(batch.size());
  for (std::int64_t i = 0; i < batch_size; ++i) {
    Request& request = batch[static_cast<std::size_t>(i)];
    data::TimeSeries series;
    series.length = window;
    series.num_features = model.num_features();
    series.values = std::move(request.values);
    data::TimeSeries normalized = detector_->normalizer().Apply(series);
    if (config.per_window_normalization) {
      core::PerWindowNormalize(&normalized.values, window,
                               normalized.num_features);
    }
    Rng mask_rng(MixSeed(config.seed, request.stream, request.seq));
    masked[static_cast<std::size_t>(i)] =
        model.PrepareWindow(normalized.values, &mask_rng);
  }

  // Stage clock: phase 1 (normalization + masking) is the batch-formation
  // stage of every window in this batch.
  const std::uint64_t t_prep = NowNs();

  // Phase 2: score. Planned path: one ParallelFor over the batch, each
  // chunk claiming a free lane — inside a chunk every kernel-level
  // ParallelFor runs inline at fixed chunk boundaries (util/thread_pool.h),
  // so each window's scores are bitwise those of a sequential replay.
  const std::int64_t lane_want = std::min<std::int64_t>(
      batch_size, ThreadPool::Instance().num_threads());
  const bool planned = !fault_slow_batch && detector_->inference_plan_enabled() &&
                       EnsureLanesLocked(lane_want, masked[0]);
  std::vector<float> scores(batch.size(), 0.0f);
  if (planned) {
    ParallelFor(0, batch_size, 1, [&](std::int64_t b0, std::int64_t b1) {
      // Claim a lane: at most min(batch, threads) chunks run concurrently
      // and that many verified lanes exist, so the scan always terminates.
      Lane* lane = nullptr;
      for (std::size_t l = 0;; l = (l + 1) % static_cast<std::size_t>(lane_want)) {
        if (!lanes_[l]->busy.test_and_set(std::memory_order_acquire)) {
          lane = lanes_[l].get();
          break;
        }
      }
      for (std::int64_t i = b0; i < b1; ++i) {
        const Request& request = batch[static_cast<std::size_t>(i)];
        lane->plan->Score(masked[static_cast<std::size_t>(i)], &lane->out);
        scores[static_cast<std::size_t>(i)] =
            core::StreamState::TailScore(lane->out, window, request.fresh);
      }
      lane->busy.clear(std::memory_order_release);
    });
  } else {
    for (std::int64_t i = 0; i < batch_size; ++i) {
      const std::vector<float> out =
          model.ScoreWindow(masked[static_cast<std::size_t>(i)]);
      scores[static_cast<std::size_t>(i)] = core::StreamState::TailScore(
          out, window, batch[static_cast<std::size_t>(i)].fresh);
    }
    eager_windows_.fetch_add(batch_size, std::memory_order_relaxed);
  }
  const std::uint64_t t_scored = NowNs();
  const std::uint64_t elapsed = t_scored - t0;
  RecordLatency(elapsed / static_cast<std::uint64_t>(batch_size), batch_size);

  // Phase 3 (dispatch thread, serial, admission order): commit tail scores
  // and publish results.
  std::vector<ScoredWindow> done(batch.size());
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const Request& request = batch[static_cast<std::size_t>(i)];
    ScoredWindow& result = done[static_cast<std::size_t>(i)];
    result.stream = request.stream;
    result.seq = request.seq;
    result.score = scores[static_cast<std::size_t>(i)];
    result.fresh = request.fresh;
    result.degraded = request.imputed > 0;
    result.imputed_values = request.imputed;
    Entry& entry = *streams_[static_cast<std::size_t>(request.stream)];
    {
      std::lock_guard<std::mutex> stream_lock(entry.mu);
      entry.state.CommitRescore(result.score);
      result.is_anomaly = result.score >= entry.state.threshold();
    }
    if (result.is_anomaly) {
      alerts_.fetch_add(1, std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("serve.alerts", 1);
    }
  }
  {
    std::lock_guard<std::mutex> results_lock(results_mu_);
    results_.insert(results_.end(), done.begin(), done.end());
  }
  windows_scored_.fetch_add(batch_size, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  AtomicMax(&max_batch_, batch_size);
  TFMAE_COUNTER_ADD("serve.batch.count", 1);
  TFMAE_COUNTER_ADD("serve.batch.windows", batch_size);
  TFMAE_HISTOGRAM_RECORD("serve.batch.size",
                         static_cast<std::uint64_t>(batch_size));
  // Stage clock: results are published — each window's timeline is
  // complete. The accounting pass (stage histograms, SLO budgets, drift
  // reservoir, sampled trace spans) runs while score_mu_ is still held, so
  // it never interleaves with the next batch's stamps.
  const std::uint64_t t_done = NowNs();
  AccountBatch(batch, scores, t0, t_prep, t_scored, t_done);
  batch_start_ns_.store(0, std::memory_order_release);  // heartbeat: idle
  return batch_size;
}

void FleetServer::AccountBatch(const std::vector<Request>& batch,
                               const std::vector<float>& scores,
                               std::uint64_t t_pop, std::uint64_t t_prep,
                               std::uint64_t t_scored, std::uint64_t t_done) {
  const std::uint64_t n = static_cast<std::uint64_t>(batch.size());
  if (n == 0) return;
  // Post-pop phases are batch-wide work; each window carries an equal
  // share, so the shares add back up to the batch's wall time (modulo
  // integer division) and total == queue + batch + score + result holds
  // exactly per window — the reconciliation invariant live_smoke.py and
  // serve_obs_test.cc pin.
  const std::uint64_t batch_share = (t_prep - t_pop) / n;
  const std::uint64_t score_share = (t_scored - t_prep) / n;
  const std::uint64_t result_share = (t_done - t_scored) / n;

  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    for (const Request& request : batch) {
      // A restored window (t_admit_ns == 0) waited in a previous process;
      // its queue stage is unknowable and counts as zero.
      const std::uint64_t queue_ns =
          (request.t_admit_ns != 0 && t_pop > request.t_admit_ns)
              ? t_pop - request.t_admit_ns
              : 0;
      const std::uint64_t total_ns =
          queue_ns + batch_share + score_share + result_share;
      TFMAE_HISTOGRAM_RECORD("serve.stage.queue_ns", queue_ns);
      TFMAE_HISTOGRAM_RECORD("serve.stage.batch_ns", batch_share);
      TFMAE_HISTOGRAM_RECORD("serve.stage.score_ns", score_share);
      TFMAE_HISTOGRAM_RECORD("serve.stage.result_ns", result_share);
      TFMAE_HISTOGRAM_RECORD("serve.stage.total_ns", total_ns);
      stage_queue_sum_ns_ += queue_ns;
      stage_batch_sum_ns_ += batch_share;
      stage_score_sum_ns_ += score_share;
      stage_result_sum_ns_ += result_share;
      if (request.t_admit_ns != 0 && t_done > request.t_admit_ns) {
        const std::uint64_t e2e = t_done - request.t_admit_ns;
        e2e_counts_[Log2Bucket(e2e)] += 1;
        if (e2e_min_ns_ == 0 || e2e < e2e_min_ns_) e2e_min_ns_ = e2e;
        e2e_max_ns_ = std::max(e2e_max_ns_, e2e);
      }
    }
  }

  // Per-stream SLO budgets. Experienced latency is admission to result
  // commit (t_done - t_admit) — deliberately the wall latency a consumer
  // sees, not the amortized stage total.
  if (options_.slo_latency_ns > 0 || options_.slo_staleness_rows > 0) {
    const std::int64_t allowed = static_cast<std::int64_t>(
        options_.slo_budget * static_cast<double>(options_.slo_window));
    std::int64_t latency_breaches = 0;
    std::int64_t staleness_breaches = 0;
    struct Episode {
      std::int64_t stream;
      std::int64_t violations;
    };
    std::vector<Episode> episodes;
    for (const Request& request : batch) {
      bool violation = false;
      if (options_.slo_latency_ns > 0 && request.t_admit_ns != 0 &&
          t_done > request.t_admit_ns &&
          static_cast<std::int64_t>(t_done - request.t_admit_ns) >
              options_.slo_latency_ns) {
        ++latency_breaches;
        violation = true;
      }
      Entry& entry = *streams_[static_cast<std::size_t>(request.stream)];
      std::lock_guard<std::mutex> stream_lock(entry.mu);
      if (options_.slo_staleness_rows > 0 &&
          entry.state.total_pushed() - 1 - request.seq >
              options_.slo_staleness_rows) {
        ++staleness_breaches;
        violation = true;
      }
      if (entry.slo_ring.empty()) continue;
      const std::int64_t window =
          static_cast<std::int64_t>(entry.slo_ring.size());
      if (entry.slo_filled == window) {
        entry.slo_violations -= entry.slo_ring[entry.slo_pos];
      } else {
        ++entry.slo_filled;
      }
      entry.slo_ring[entry.slo_pos] = violation ? 1 : 0;
      entry.slo_violations += violation ? 1 : 0;
      entry.slo_pos = (entry.slo_pos + 1) % entry.slo_ring.size();
      if (!entry.slo_exhausted && entry.slo_filled == window &&
          entry.slo_violations > allowed) {
        entry.slo_exhausted = true;
        slo_exhausted_streams_.fetch_add(1, std::memory_order_relaxed);
        episodes.push_back(Episode{request.stream, entry.slo_violations});
      } else if (entry.slo_exhausted && entry.slo_violations <= allowed) {
        // Recovery: the sliding window slid back under budget — the latch
        // clears so a later regression counts as a new episode.
        entry.slo_exhausted = false;
        slo_exhausted_streams_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (latency_breaches > 0) {
      slo_latency_breaches_.fetch_add(latency_breaches,
                                      std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("serve.slo.latency_breaches", latency_breaches);
    }
    if (staleness_breaches > 0) {
      slo_staleness_breaches_.fetch_add(staleness_breaches,
                                        std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("serve.slo.staleness_breaches", staleness_breaches);
    }
    TFMAE_GAUGE_SET("serve.slo.exhausted_streams",
                    slo_exhausted_streams_.load(std::memory_order_relaxed));
    for (const Episode& episode : episodes) {
      slo_exhausted_episodes_.fetch_add(1, std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("serve.slo.budget_exhausted", 1);
      if (obs::LedgerActive()) {
        // Which stream exhausts, and when, depends entirely on load and
        // scheduling; every varying field is t_-tagged.
        obs::Ledger::Instance().Event(
            "serve.slo",
            {{"window", std::to_string(options_.slo_window)},
             {"budget", std::to_string(options_.slo_budget)},
             {"t_stream", std::to_string(episode.stream)},
             {"t_violations", std::to_string(episode.violations)}});
      }
    }
  }

  DriftObserve(scores);

  // Sampled full-span timelines: every trace_sample'th scored window
  // contributes its four real wall intervals to the chrome-trace capture.
  // Spans use actual phase boundaries (not amortized shares), so the
  // rendered timeline shows when the window truly sat where.
  if (options_.trace_sample > 0 && obs::TracingActive()) {
    static obs::TraceSite* const kQueueSite =
        obs::GetTraceSite("serve.stage.queue");
    static obs::TraceSite* const kBatchSite =
        obs::GetTraceSite("serve.stage.batch");
    static obs::TraceSite* const kScoreSite =
        obs::GetTraceSite("serve.stage.score");
    static obs::TraceSite* const kResultSite =
        obs::GetTraceSite("serve.stage.result");
    // The stage clock is epoch-based steady time; trace timestamps share
    // obs::NowNs()'s process origin. Both tick the same steady clock, so
    // one offset converts.
    const std::uint64_t offset = NowNs() - obs::NowNs();
    for (const Request& request : batch) {
      const std::uint64_t tick =
          trace_counter_.fetch_add(1, std::memory_order_relaxed);
      if (tick % static_cast<std::uint64_t>(options_.trace_sample) != 0) {
        continue;
      }
      const std::uint64_t admit =
          (request.t_admit_ns != 0 && request.t_admit_ns < t_pop)
              ? request.t_admit_ns
              : t_pop;
      if (admit >= offset) {
        obs::AppendTraceEvent(kQueueSite, admit - offset, t_pop - admit);
      }
      obs::AppendTraceEvent(kBatchSite, t_pop - offset, t_prep - t_pop);
      obs::AppendTraceEvent(kScoreSite, t_prep - offset, t_scored - t_prep);
      obs::AppendTraceEvent(kResultSite, t_scored - offset, t_done - t_scored);
    }
  }
}

void FleetServer::DriftObserve(const std::vector<float>& scores) {
  if (options_.drift_check_every <= 0 || options_.drift_reservoir <= 0) return;
  double ks = 0.0;
  std::size_t samples = 0;
  {
    std::lock_guard<std::mutex> lock(drift_mu_);
    if (drift_ref_.empty()) return;
    const std::size_t cap =
        static_cast<std::size_t>(options_.drift_reservoir);
    for (float s : scores) {
      if (drift_ring_.size() < cap) {
        drift_ring_.push_back(s);
      } else {
        drift_ring_[drift_pos_] = s;
      }
      drift_pos_ = (drift_pos_ + 1) % cap;
      ++drift_seen_;
      ++drift_since_check_;
    }
    if (drift_since_check_ < options_.drift_check_every) return;
    // A near-empty reservoir would make the K-S distance reservoir noise,
    // not evidence; wait for a useful sample.
    if (drift_ring_.size() < std::min<std::size_t>(cap, 32)) return;
    drift_since_check_ = 0;
    // Bin the reservoir on the reference's own edges, then compare CDFs.
    std::vector<std::uint64_t> recent(drift_ref_.buckets.size(), 0);
    for (float s : drift_ring_) {
      ++recent[static_cast<std::size_t>(core::ScoreDistributionBin(
          drift_ref_, static_cast<double>(s)))];
    }
    ks = obs::KsDistance(drift_ref_.lo, drift_ref_.hi, drift_ref_.buckets,
                         drift_ref_.lo, drift_ref_.hi, recent);
    drift_ks_ = ks;
    samples = drift_ring_.size();
  }
  drift_checks_.fetch_add(1, std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("serve.drift.checks", 1);
  // Gauges are integers; the distance is published in millionths.
  TFMAE_GAUGE_SET("serve.drift.ks", static_cast<std::int64_t>(ks * 1e6));
  if (ks <= options_.drift_threshold) return;
  drift_alarms_.fetch_add(1, std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("serve.drift.alarms", 1);
  if (obs::FlightRecorderActive()) {
    obs::FlightRecorder::Instance().Note(
        "drift", "online score drift: ks=" + std::to_string(ks) +
                     " over threshold " +
                     std::to_string(options_.drift_threshold));
  }
  if (obs::LedgerActive()) {
    // The reservoir's contents depend on scoring order across streams, so
    // the measured distance is schedule-dependent: t_-tagged.
    obs::Ledger::Instance().Event(
        "serve.drift",
        {{"threshold", std::to_string(options_.drift_threshold)},
         {"reservoir", std::to_string(options_.drift_reservoir)},
         {"t_ks", std::to_string(ks)},
         {"t_samples", std::to_string(samples)}});
  }
}

void FleetServer::TryFlush() {
  // One batch, only if no other thread is mid-batch: the process-wide
  // ThreadPool supports one dispatching thread at a time, and a skipped
  // flush is picked up by the next over-threshold push or explicit Flush.
  if (!score_mu_.try_lock()) return;
  ScoreBatchLocked();
  score_mu_.unlock();
}

std::int64_t FleetServer::Flush() {
  std::int64_t total = 0;
  for (;;) {
    std::lock_guard<std::mutex> lock(score_mu_);
    const std::int64_t n = ScoreBatchLocked();
    if (n == 0) break;
    total += n;
  }
  return total;
}

std::int64_t FleetServer::Drain() {
  // Latch the server closed FIRST: once a producer observes the queue
  // emptying it must not be able to refill it, or 4 fast producers can
  // livelock shutdown forever. Pushes racing the latch are fine — whatever
  // they admitted is scored by the flush below.
  draining_.store(true, std::memory_order_release);
  const std::int64_t scored = Flush();
  TFMAE_GAUGE_SET("serve.bytes_per_stream", ApproxBytesPerStream());
  bool first_drain = false;
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    first_drain = !drained_event_emitted_;
    drained_event_emitted_ = true;
  }
  if (first_drain && obs::LedgerActive()) {
    const ServeStats s = stats();
    obs::Ledger::Instance().Event(
        "serve",
        {{"streams", std::to_string(s.streams)},
         {"rows", std::to_string(s.rows_pushed)},
         {"windows", std::to_string(s.windows_scored)},
         {"alerts", std::to_string(s.alerts)},
         {"rejected", std::to_string(s.rows_rejected)},
         {"quarantined", std::to_string(s.rows_quarantined)},
         {"bytes_per_stream", std::to_string(s.bytes_per_stream)},
         {"precision", obs::JsonQuote(s.quant_lanes > 0 ? "int8" : "fp32")},
         {"quant_fallbacks", std::to_string(s.quant_fallbacks)},
         // Batching composition depends on flush timing (and overload on
         // ingest timing): t_-prefixed so the canonical event stream stays
         // invariant across thread counts and schedules.
         {"t_batches", std::to_string(s.batches)},
         {"t_max_batch", std::to_string(s.max_batch)},
         {"t_overloaded", std::to_string(s.rows_overloaded)}});
  }
  return scored;
}

void FleetServer::RecordShedStrike() {
  const std::int64_t strikes =
      shed_strikes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.degraded_after <= 0 || strikes < options_.degraded_after) return;
  if (degraded_.exchange(true, std::memory_order_relaxed)) return;
  // First time over the threshold: latch sticky degraded mode, exactly once.
  TFMAE_COUNTER_ADD("serve.shed.degraded_entered", 1);
  if (obs::FlightRecorderActive()) {
    obs::FlightRecorder::Instance().Note(
        "shed", std::string("fleet server entered degraded mode (policy=") +
                    ShedPolicyName(options_.shed_policy) + ", strikes=" +
                    std::to_string(strikes) + ")");
  }
  if (obs::LedgerActive()) {
    // Load-dependent by nature (it only exists when ingest outruns scoring),
    // so every field is timing-tagged and the event is excluded from
    // cross-thread-count canonical-stream comparisons.
    obs::Ledger::Instance().Event(
        "serve.shed",
        {{"policy", obs::JsonQuote(ShedPolicyName(options_.shed_policy))},
         {"t_strikes", std::to_string(strikes)},
         {"t_queue_capacity", std::to_string(options_.queue_capacity)}});
  }
}

void FleetServer::WatchdogLoop() {
  const auto poll = std::chrono::milliseconds(
      std::max<std::int64_t>(1, options_.watchdog_stall_ms / 4));
  const std::uint64_t stall_ns =
      static_cast<std::uint64_t>(options_.watchdog_stall_ms) * 1000000ull;
  std::uint64_t last_flagged = 0;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const std::uint64_t start = batch_start_ns_.load(std::memory_order_acquire);
    if (start == 0) continue;  // no batch in flight
    const std::uint64_t now = NowNs();
    if (now - start < stall_ns) continue;
    if (start == last_flagged) continue;  // one postmortem per stalled batch
    last_flagged = start;
    watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
    TFMAE_COUNTER_ADD("serve.watchdog.stalls", 1);
    const std::int64_t stalled_ms =
        static_cast<std::int64_t>((now - start) / 1000000ull);
    Log(LogLevel::kWarning,
        "serve watchdog: batch in flight for " + std::to_string(stalled_ms) +
            " ms (deadline " + std::to_string(options_.watchdog_stall_ms) +
            " ms)");
    if (obs::FlightRecorderActive()) {
      obs::FlightRecorder::Instance().Note(
          "watchdog", "scoring batch stalled " + std::to_string(stalled_ms) +
                          " ms (deadline " +
                          std::to_string(options_.watchdog_stall_ms) + " ms)");
      obs::FlightRecorder::Instance().Dump("serve.watchdog.stall");
    }
  }
}

FleetSnapshotData FleetServer::CaptureSnapshot() {
  FleetSnapshotData data;
  data.config_crc = config_crc_;
  data.streaming = options_.streaming;

  // A consistent cut needs three guarantees at once: no batch is in flight
  // (popped-but-uncommitted requests would be in neither the queue nor any
  // stream), no push is mid-absorb (a row absorbed but its window not yet
  // enqueued would make state and queue disagree), and the stream count is
  // stable. score_mu_ gives the first, holding EVERY stream lock gives the
  // second, open_mu_ the third. Lock order: score_mu_ -> open_mu_ ->
  // entry.mu (ascending) -> queue_mu_, consistent with every other path
  // (pushes take entry.mu -> queue_mu_; set_threshold open_mu_ -> entry.mu;
  // nothing takes score_mu_ while holding any of these).
  std::lock_guard<std::mutex> score_lock(score_mu_);
  std::lock_guard<std::mutex> open_lock(open_mu_);
  const std::int64_t n = num_streams_.load(std::memory_order_acquire);
  for (std::int64_t s = 0; s < n; ++s) {
    streams_[static_cast<std::size_t>(s)]->mu.lock();
  }
  {
    std::lock_guard<std::mutex> queue_lock(queue_mu_);
    data.pending.reserve(queue_.size());
    for (const Request& r : queue_) {
      PendingWindow p;
      p.stream = r.stream;
      p.seq = r.seq;
      p.fresh = r.fresh;
      p.imputed = r.imputed;
      p.values = r.values;
      data.pending.push_back(std::move(p));
    }
  }
  data.index = snapshot_index_.fetch_add(1, std::memory_order_relaxed) + 1;
  data.threshold = default_threshold_;
  data.counters.rows_pushed = rows_pushed_.load(std::memory_order_relaxed);
  data.counters.rows_overloaded =
      rows_overloaded_.load(std::memory_order_relaxed);
  data.counters.rows_rejected = rows_rejected_.load(std::memory_order_relaxed);
  data.counters.rows_quarantined =
      rows_quarantined_.load(std::memory_order_relaxed);
  data.counters.rows_warmup = rows_warmup_.load(std::memory_order_relaxed);
  data.counters.windows_enqueued =
      windows_enqueued_.load(std::memory_order_relaxed);
  data.counters.windows_scored =
      windows_scored_.load(std::memory_order_relaxed);
  data.counters.alerts = alerts_.load(std::memory_order_relaxed);
  data.counters.shed_dropped = shed_dropped_.load(std::memory_order_relaxed);
  data.counters.shed_deadline_expired =
      shed_deadline_expired_.load(std::memory_order_relaxed);
  data.stream_states.resize(static_cast<std::size_t>(n));
  for (std::int64_t s = 0; s < n; ++s) {
    util::ByteWriter writer;
    streams_[static_cast<std::size_t>(s)]->state.EncodeTo(&writer);
    data.stream_states[static_cast<std::size_t>(s)] = writer.Take();
  }
  for (std::int64_t s = n - 1; s >= 0; --s) {
    streams_[static_cast<std::size_t>(s)]->mu.unlock();
  }
  return data;
}

bool FleetServer::SnapshotNow(std::string* error) {
  if (options_.snapshot_dir.empty()) {
    if (error != nullptr) *error = "no snapshot_dir configured";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.snapshot_dir, ec);
  const FleetSnapshotData data = CaptureSnapshot();
  last_snapshot_rows_.store(data.counters.rows_pushed,
                            std::memory_order_relaxed);
  const std::string path =
      FleetSnapshotPath(options_.snapshot_dir, data.index);
  // File I/O runs outside every lock: the capture above copied what it
  // needs, so ingest and scoring resume while the container is written.
  std::string write_error;
  if (!WriteFleetSnapshot(data, path, &write_error)) {
    snapshots_failed_.fetch_add(1, std::memory_order_relaxed);
    TFMAE_COUNTER_ADD("serve.snapshot.failures", 1);
    Log(LogLevel::kWarning,
        "fleet snapshot write failed (" + write_error +
            "); serving continues on the previous snapshot");
    if (obs::FlightRecorderActive()) {
      obs::FlightRecorder::Instance().Note("snapshot",
                                           "write failed: " + write_error);
    }
    if (error != nullptr) *error = write_error;
    return false;
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("serve.snapshot.writes", 1);
  PruneFleetSnapshots(options_.snapshot_dir, options_.snapshot_keep);
  if (obs::LedgerActive()) {
    obs::Ledger::Instance().Event(
        "serve.snapshot",
        {{"file", obs::JsonQuote(path)},
         {"streams", std::to_string(data.stream_states.size())},
         {"rows", std::to_string(data.counters.rows_pushed)},
         // Pending depth and snapshot cadence depend on flush/ingest timing.
         {"t_index", std::to_string(data.index)},
         {"t_pending", std::to_string(data.pending.size())}});
  }
  return true;
}

void FleetServer::MaybeAutoSnapshot() {
  if (options_.snapshot_every <= 0 || options_.snapshot_dir.empty()) return;
  const std::int64_t rows = rows_pushed_.load(std::memory_order_relaxed);
  std::int64_t last = last_snapshot_rows_.load(std::memory_order_relaxed);
  if (rows - last < options_.snapshot_every) return;
  // One pusher wins the CAS and cuts the snapshot; the rest carry on.
  if (!last_snapshot_rows_.compare_exchange_strong(last, rows,
                                                   std::memory_order_relaxed)) {
    return;
  }
  SnapshotNow();
}

bool FleetServer::Restore(const FleetSnapshotData& snapshot,
                          std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (num_streams() != 0) {
    return fail("Restore requires a fresh server (no streams opened)");
  }
  if (snapshot.config_crc != config_crc_) {
    return fail("snapshot config CRC does not match this detector's config");
  }
  const core::StreamingOptions& a = snapshot.streaming;
  const core::StreamingOptions& b = options_.streaming;
  if (a.window != b.window || a.hop != b.hop ||
      a.impute_staleness_cap != b.impute_staleness_cap ||
      a.quarantine_sigma != b.quarantine_sigma ||
      a.quarantine_warmup != b.quarantine_warmup) {
    return fail("snapshot streaming options do not match this server's");
  }
  const std::int64_t n =
      static_cast<std::int64_t>(snapshot.stream_states.size());
  if (n > options_.max_streams) {
    return fail("snapshot holds more streams than max_streams");
  }
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    default_threshold_ = snapshot.threshold;
  }
  for (std::int64_t s = 0; s < n; ++s) {
    if (OpenStream() != s) return fail("stream slot allocation failed");
    Entry& entry = *streams_[static_cast<std::size_t>(s)];
    util::ByteReader reader(snapshot.stream_states[static_cast<std::size_t>(s)]);
    std::lock_guard<std::mutex> stream_lock(entry.mu);
    if (!entry.state.DecodeFrom(&reader) || !reader.AtEnd()) {
      return fail("stream " + std::to_string(s) + " payload is corrupt");
    }
  }
  {
    std::lock_guard<std::mutex> queue_lock(queue_mu_);
    for (const PendingWindow& p : snapshot.pending) {
      if (p.stream < 0 || p.stream >= n || p.seq < 0) {
        return fail("pending window references an invalid stream");
      }
      const Entry& entry = *streams_[static_cast<std::size_t>(p.stream)];
      const std::size_t expect =
          static_cast<std::size_t>(options_.streaming.window) *
          static_cast<std::size_t>(std::max<std::int64_t>(
              entry.state.num_features(), 0));
      if (p.values.size() != expect) {
        return fail("pending window has the wrong geometry");
      }
      Request request;
      request.stream = p.stream;
      request.seq = p.seq;
      request.fresh = p.fresh;
      request.imputed = p.imputed;
      request.values = p.values;
      queue_.push_back(std::move(request));
    }
  }
  rows_pushed_.store(snapshot.counters.rows_pushed, std::memory_order_relaxed);
  rows_overloaded_.store(snapshot.counters.rows_overloaded,
                         std::memory_order_relaxed);
  rows_rejected_.store(snapshot.counters.rows_rejected,
                       std::memory_order_relaxed);
  rows_quarantined_.store(snapshot.counters.rows_quarantined,
                          std::memory_order_relaxed);
  rows_warmup_.store(snapshot.counters.rows_warmup, std::memory_order_relaxed);
  windows_enqueued_.store(snapshot.counters.windows_enqueued,
                          std::memory_order_relaxed);
  windows_scored_.store(snapshot.counters.windows_scored,
                        std::memory_order_relaxed);
  alerts_.store(snapshot.counters.alerts, std::memory_order_relaxed);
  shed_dropped_.store(snapshot.counters.shed_dropped,
                      std::memory_order_relaxed);
  shed_deadline_expired_.store(snapshot.counters.shed_deadline_expired,
                               std::memory_order_relaxed);
  snapshot_index_.store(snapshot.index, std::memory_order_relaxed);
  last_snapshot_rows_.store(snapshot.counters.rows_pushed,
                            std::memory_order_relaxed);
  TFMAE_COUNTER_ADD("serve.snapshot.restores", 1);
  if (obs::LedgerActive()) {
    obs::Ledger::Instance().Event(
        "serve.restore",
        {{"streams", std::to_string(n)},
         {"rows", std::to_string(snapshot.counters.rows_pushed)},
         {"t_index", std::to_string(snapshot.index)},
         {"t_pending", std::to_string(snapshot.pending.size())}});
  }
  return true;
}

std::vector<ScoredWindow> FleetServer::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<ScoredWindow> out;
  out.swap(results_);
  return out;
}

const core::StreamHealth& FleetServer::health(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  return streams_[static_cast<std::size_t>(stream)]->state.health();
}

float FleetServer::last_score(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.last_tail_score();
}

std::int64_t FleetServer::total_pushed(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.total_pushed();
}

std::int64_t FleetServer::ApproxBytesPerStream() const {
  if (num_streams() == 0) return 0;
  Entry& entry = *streams_[0];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.ApproxBytes();
}

void FleetServer::RecordLatency(std::uint64_t ns_per_window,
                                std::int64_t windows) {
  // One registry sample per window (count == windows scored), so the
  // histogram's _sum adds up to the batches' prepare+score wall time and
  // reconciles with the batch+score stage sums.
  for (std::int64_t i = 0; i < windows; ++i) {
    TFMAE_HISTOGRAM_RECORD("serve.score.window_ns", ns_per_window);
  }
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_counts_[Log2Bucket(ns_per_window)] +=
      static_cast<std::uint64_t>(windows);
  if (latency_min_ns_ == 0 || ns_per_window < latency_min_ns_) {
    latency_min_ns_ = ns_per_window;
  }
  latency_max_ns_ = std::max(latency_max_ns_, ns_per_window);
}

ServeStats FleetServer::stats() const {
  ServeStats s;
  s.streams = num_streams();
  s.rows_pushed = rows_pushed_.load(std::memory_order_relaxed);
  s.rows_overloaded = rows_overloaded_.load(std::memory_order_relaxed);
  s.rows_rejected = rows_rejected_.load(std::memory_order_relaxed);
  s.rows_quarantined = rows_quarantined_.load(std::memory_order_relaxed);
  s.rows_warmup = rows_warmup_.load(std::memory_order_relaxed);
  s.windows_enqueued = windows_enqueued_.load(std::memory_order_relaxed);
  s.windows_scored = windows_scored_.load(std::memory_order_relaxed);
  s.eager_windows = eager_windows_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.alerts = alerts_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.bytes_per_stream = ApproxBytesPerStream();
  s.shed_dropped = shed_dropped_.load(std::memory_order_relaxed);
  s.shed_deadline_expired =
      shed_deadline_expired_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  s.snapshots_failed = snapshots_failed_.load(std::memory_order_relaxed);
  s.snapshot_index = snapshot_index();
  s.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  {
    // Quantiles from the log2 histograms (see HistogramQuantile), clamped
    // to observed min/max. A const_cast-free copy is not worth a second
    // mutex: stats() is an observer called off the hot path.
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(latency_mu_));
    s.p50_window_ns = HistogramQuantile(latency_counts_, kLatencyBuckets,
                                        latency_min_ns_, latency_max_ns_, 0.50);
    s.p95_window_ns = HistogramQuantile(latency_counts_, kLatencyBuckets,
                                        latency_min_ns_, latency_max_ns_, 0.95);
    s.p99_window_ns = HistogramQuantile(latency_counts_, kLatencyBuckets,
                                        latency_min_ns_, latency_max_ns_, 0.99);
    s.stage_queue_ns = static_cast<std::int64_t>(stage_queue_sum_ns_);
    s.stage_batch_ns = static_cast<std::int64_t>(stage_batch_sum_ns_);
    s.stage_score_ns = static_cast<std::int64_t>(stage_score_sum_ns_);
    s.stage_result_ns = static_cast<std::int64_t>(stage_result_sum_ns_);
    s.stage_total_ns = s.stage_queue_ns + s.stage_batch_ns +
                       s.stage_score_ns + s.stage_result_ns;
    s.p50_e2e_ns = HistogramQuantile(e2e_counts_, kLatencyBuckets, e2e_min_ns_,
                                     e2e_max_ns_, 0.50);
    s.p95_e2e_ns = HistogramQuantile(e2e_counts_, kLatencyBuckets, e2e_min_ns_,
                                     e2e_max_ns_, 0.95);
    s.p99_e2e_ns = HistogramQuantile(e2e_counts_, kLatencyBuckets, e2e_min_ns_,
                                     e2e_max_ns_, 0.99);
  }
  s.slo_latency_breaches =
      slo_latency_breaches_.load(std::memory_order_relaxed);
  s.slo_staleness_breaches =
      slo_staleness_breaches_.load(std::memory_order_relaxed);
  s.slo_exhausted_streams =
      slo_exhausted_streams_.load(std::memory_order_relaxed);
  s.slo_exhausted_episodes =
      slo_exhausted_episodes_.load(std::memory_order_relaxed);
  s.drift_checks = drift_checks_.load(std::memory_order_relaxed);
  s.drift_alarms = drift_alarms_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(drift_mu_));
    s.drift_ks = drift_ks_;
  }
  s.quant_fallbacks = quant_lane_fallbacks_.load(std::memory_order_relaxed) +
                      detector_->quant_fallbacks();
  {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(score_mu_));
    for (const auto& lane : lanes_) {
      if (lane->plan == nullptr) continue;
      ++s.plan_lanes;
      if (lane->quantized) ++s.quant_lanes;
      if (s.plan_arena_bytes == 0) {
        s.plan_arena_bytes = lane->plan->stats().arena_bytes;
        s.quant_arena_bytes = lane->plan->stats().quant_arena_bytes;
      }
    }
  }
  return s;
}

std::string ServeStatsJson(const ServeStats& s) {
  std::string out = "{";
  JsonField(&out, "streams", std::to_string(s.streams));
  JsonField(&out, "rows_pushed", std::to_string(s.rows_pushed));
  JsonField(&out, "rows_overloaded", std::to_string(s.rows_overloaded));
  JsonField(&out, "rows_rejected", std::to_string(s.rows_rejected));
  JsonField(&out, "rows_quarantined", std::to_string(s.rows_quarantined));
  JsonField(&out, "rows_warmup", std::to_string(s.rows_warmup));
  JsonField(&out, "windows_enqueued", std::to_string(s.windows_enqueued));
  JsonField(&out, "windows_scored", std::to_string(s.windows_scored));
  JsonField(&out, "eager_windows", std::to_string(s.eager_windows));
  JsonField(&out, "batches", std::to_string(s.batches));
  JsonField(&out, "max_batch", std::to_string(s.max_batch));
  JsonField(&out, "alerts", std::to_string(s.alerts));
  JsonField(&out, "plan_lanes", std::to_string(s.plan_lanes));
  JsonField(&out, "quant_lanes", std::to_string(s.quant_lanes));
  JsonField(&out, "quant_fallbacks", std::to_string(s.quant_fallbacks));
  JsonField(&out, "plan_arena_bytes", std::to_string(s.plan_arena_bytes));
  JsonField(&out, "quant_arena_bytes", std::to_string(s.quant_arena_bytes));
  JsonField(&out, "peak_queue_depth", std::to_string(s.peak_queue_depth));
  JsonField(&out, "bytes_per_stream", std::to_string(s.bytes_per_stream));
  JsonField(&out, "shed_dropped", std::to_string(s.shed_dropped));
  JsonField(&out, "shed_deadline_expired",
            std::to_string(s.shed_deadline_expired));
  JsonField(&out, "degraded", s.degraded ? "true" : "false");
  JsonField(&out, "snapshots_written", std::to_string(s.snapshots_written));
  JsonField(&out, "snapshots_failed", std::to_string(s.snapshots_failed));
  JsonField(&out, "snapshot_index", std::to_string(s.snapshot_index));
  JsonField(&out, "watchdog_stalls", std::to_string(s.watchdog_stalls));
  JsonField(&out, "p50_window_ns", JsonDouble(s.p50_window_ns));
  JsonField(&out, "p95_window_ns", JsonDouble(s.p95_window_ns));
  JsonField(&out, "p99_window_ns", JsonDouble(s.p99_window_ns));
  JsonField(&out, "stage_queue_ns", std::to_string(s.stage_queue_ns));
  JsonField(&out, "stage_batch_ns", std::to_string(s.stage_batch_ns));
  JsonField(&out, "stage_score_ns", std::to_string(s.stage_score_ns));
  JsonField(&out, "stage_result_ns", std::to_string(s.stage_result_ns));
  JsonField(&out, "stage_total_ns", std::to_string(s.stage_total_ns));
  JsonField(&out, "p50_e2e_ns", JsonDouble(s.p50_e2e_ns));
  JsonField(&out, "p95_e2e_ns", JsonDouble(s.p95_e2e_ns));
  JsonField(&out, "p99_e2e_ns", JsonDouble(s.p99_e2e_ns));
  JsonField(&out, "slo_latency_breaches",
            std::to_string(s.slo_latency_breaches));
  JsonField(&out, "slo_staleness_breaches",
            std::to_string(s.slo_staleness_breaches));
  JsonField(&out, "slo_exhausted_streams",
            std::to_string(s.slo_exhausted_streams));
  JsonField(&out, "slo_exhausted_episodes",
            std::to_string(s.slo_exhausted_episodes));
  JsonField(&out, "drift_checks", std::to_string(s.drift_checks));
  JsonField(&out, "drift_alarms", std::to_string(s.drift_alarms));
  JsonField(&out, "drift_ks", JsonDouble(s.drift_ks, "%.4f"));
  out.push_back('}');
  return out;
}

}  // namespace tfmae::serve
