#include "serve/fleet_server.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <utility>

#include "core/inference_plan.h"
#include "data/timeseries.h"
#include "eval/detection.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae::serve {
namespace {

// Per-(stream, seq) mask-RNG seed. The paper's CV/amplitude masks are pure
// functions of the window values and never draw from it; the random-masking
// ablation variants do, and this keeps their draws deterministic under ANY
// batch composition (a shared RNG would make mask draws depend on scoring
// order). splitmix64 finalizer.
std::uint64_t MixSeed(std::uint64_t seed, std::int64_t stream,
                      std::int64_t seq) {
  std::uint64_t x = seed +
                    0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(stream + 1) +
                    0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(seq + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Log2Bucket(std::uint64_t v) {
  int b = 0;
  while (v > 1 && b < 63) {
    v >>= 1;
    ++b;
  }
  return b;
}

void AtomicMax(std::atomic<std::int64_t>* target, std::int64_t value) {
  std::int64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

/// One stream slot: the compact state plus its ingest lock. Pushes to
/// different streams contend only on the queue; pushes to the same stream
/// are the caller's timeline and serialize here.
struct FleetServer::Entry {
  explicit Entry(const core::StreamingOptions& options) : state(options) {}
  std::mutex mu;
  core::StreamState state;
};

/// One batch lane: a private InferencePlan replica with its own planned
/// arena plus a reusable output buffer. Lanes are the batch dimension of
/// the PR 6 arena planner — replay is stateful (one arena, rebindable
/// inputs), so concurrency comes from replicas, not sharing. Every lane
/// self-verified against the eager path at capture, so all lanes produce
/// bitwise-identical scores for the same window.
struct FleetServer::Lane {
  std::unique_ptr<core::InferencePlan> plan;
  bool quantized = false;  ///< plan compiled for the int8 path
  std::vector<float> out;
  std::atomic_flag busy = ATOMIC_FLAG_INIT;
};

/// One ready window awaiting a batched pass: a value snapshot (the stream's
/// buffer keeps sliding underneath) plus the metadata its result carries.
struct FleetServer::Request {
  std::int64_t stream = -1;
  std::int64_t seq = -1;
  std::int64_t fresh = 0;
  std::int32_t imputed = 0;
  std::vector<float> values;
};

FleetServer::FleetServer(core::TfmaeDetector* detector, FleetOptions options)
    : detector_(detector), options_(options) {
  TFMAE_CHECK(detector != nullptr);
  TFMAE_CHECK_MSG(detector->fitted(),
                  "FleetServer requires a fitted detector");
  TFMAE_CHECK(options_.max_streams >= 1);
  TFMAE_CHECK(options_.queue_capacity >= 1);
  TFMAE_CHECK(options_.batch_max >= 1);
  // The serving geometry: one ready window == one model window, so the
  // batcher can coalesce windows from any mix of streams into one pass. A
  // larger stream window would make Score() slice sub-windows and average —
  // use the synchronous StreamingDetector for that shape.
  TFMAE_CHECK_MSG(options_.streaming.window <= detector->config().window,
                  "FleetServer: streaming.window must not exceed the "
                  "detector's config().window (one window per rescore)");
  streams_.resize(static_cast<std::size_t>(options_.max_streams));
}

FleetServer::~FleetServer() {
  // Shutdown contract: every admitted window is scored before the server
  // goes away, even if the owner forgot to Drain().
  Drain();
}

std::int64_t FleetServer::OpenStream() {
  std::lock_guard<std::mutex> lock(open_mu_);
  const std::int64_t n = num_streams_.load(std::memory_order_relaxed);
  if (n >= options_.max_streams) return -1;
  auto entry = std::make_unique<Entry>(options_.streaming);
  entry->state.set_threshold(default_threshold_);
  streams_[static_cast<std::size_t>(n)] = std::move(entry);
  // Publish AFTER the slot is filled so lock-free readers of num_streams()
  // always find a constructed Entry behind any id they accept.
  num_streams_.store(n + 1, std::memory_order_release);
  TFMAE_GAUGE_SET("serve.streams", n + 1);
  return n;
}

void FleetServer::set_threshold(float threshold) {
  std::lock_guard<std::mutex> lock(open_mu_);
  default_threshold_ = threshold;
  const std::int64_t n = num_streams_.load(std::memory_order_acquire);
  for (std::int64_t s = 0; s < n; ++s) {
    Entry& entry = *streams_[static_cast<std::size_t>(s)];
    std::lock_guard<std::mutex> stream_lock(entry.mu);
    entry.state.set_threshold(threshold);
  }
}

void FleetServer::CalibrateThreshold(
    const std::vector<float>& calibration_scores, double anomaly_fraction) {
  set_threshold(
      eval::QuantileThreshold(calibration_scores, anomaly_fraction));
}

AdmitStatus FleetServer::Push(std::int64_t stream,
                              const std::vector<float>& row,
                              core::StreamingResult* result) {
  TFMAE_TRACE("serve.push");
  if (stream < 0 || stream >= num_streams()) return AdmitStatus::kUnknownStream;
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];

  bool queued = false;
  std::int64_t depth = 0;
  {
    std::lock_guard<std::mutex> stream_lock(entry.mu);
    {
      // Admission control BEFORE the row is absorbed: an overloaded refusal
      // must leave the stream untouched so the caller can re-push the same
      // row after draining. Checked up front rather than at enqueue time —
      // once Absorb() has advanced the hop cadence there is no way to hand
      // the window back.
      std::lock_guard<std::mutex> queue_lock(queue_mu_);
      if (static_cast<std::int64_t>(queue_.size()) >=
          options_.queue_capacity) {
        rows_overloaded_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.rejected_overload", 1);
        return AdmitStatus::kOverloaded;
      }
    }

    const core::AbsorbOutcome outcome = entry.state.Absorb(row);
    switch (outcome.status) {
      case core::PushStatus::kRejected:
        rows_rejected_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.rejected_row", 1);
        return AdmitStatus::kRejectedRow;
      case core::PushStatus::kQuarantined:
        rows_quarantined_.fetch_add(1, std::memory_order_relaxed);
        rows_pushed_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.quarantined", 1);
        return AdmitStatus::kQuarantined;
      case core::PushStatus::kWarmup:
        rows_warmup_.fetch_add(1, std::memory_order_relaxed);
        rows_pushed_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.ingest.admitted", 1);
        return AdmitStatus::kWarmup;
      case core::PushStatus::kScored:
        break;
    }
    rows_pushed_.fetch_add(1, std::memory_order_relaxed);
    TFMAE_COUNTER_ADD("serve.ingest.admitted", 1);

    if (outcome.rescore_due) {
      Request request;
      request.stream = stream;
      request.seq = entry.state.total_pushed() - 1;
      request.fresh = outcome.fresh;
      request.imputed = outcome.imputed_values;
      request.values = entry.state.window();  // snapshot before it slides
      std::lock_guard<std::mutex> queue_lock(queue_mu_);
      queue_.push_back(std::move(request));
      depth = static_cast<std::int64_t>(queue_.size());
      AtomicMax(&peak_queue_depth_, depth);
      windows_enqueued_.fetch_add(1, std::memory_order_relaxed);
      queued = true;
    } else if (result != nullptr) {
      // In-between-hop push: StreamingDetector's documented semantics —
      // reuse the latest committed tail score.
      result->score = entry.state.last_tail_score();
      result->is_anomaly = result->score >= entry.state.threshold();
      result->degraded = outcome.imputed_values > 0;
      result->imputed_values = outcome.imputed_values;
    }
  }

  if (!queued) return AdmitStatus::kAccepted;
  TFMAE_GAUGE_MAX("serve.queue.depth_peak", depth);
  TFMAE_HISTOGRAM_RECORD("serve.queue.depth", static_cast<std::uint64_t>(depth));
  // Flush OUTSIDE every lock: the scoring path re-acquires stream locks to
  // commit results (lock order: score_mu_ -> entry.mu; the push path holds
  // entry.mu -> queue_mu_ — no cycle as long as nothing here holds a lock
  // while asking for score_mu_).
  if (options_.auto_flush && depth >= options_.batch_max) TryFlush();
  return AdmitStatus::kQueued;
}

bool FleetServer::EnsureLanesLocked(std::int64_t want,
                                    const core::MaskedWindow& example) {
  want = std::max<std::int64_t>(want, 1);
  while (static_cast<std::int64_t>(lanes_.size()) < want) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  // Lane precision: int8 when the detector selected it and carries a
  // calibration spec, unless a quantized capture already failed (sticky —
  // mixed-precision lanes would make batch scores depend on lane
  // assignment, breaking the batch-composition invariance contract).
  const core::QuantSpec* spec = nullptr;
  if (!quant_capture_failed_ &&
      detector_->quant_mode() == core::TfmaeDetector::QuantMode::kInt8 &&
      detector_->has_quant_spec()) {
    spec = &detector_->quant_spec();
  }
  for (std::int64_t i = 0; i < want; ++i) {
    Lane& lane = *lanes_[static_cast<std::size_t>(i)];
    const bool want_quant = spec != nullptr;
    if (lane.plan != nullptr && lane.plan->Matches(example) &&
        lane.quantized == want_quant) {
      continue;
    }
    lane.plan.reset();
    std::string error;
    lane.plan = core::InferencePlan::Capture(*detector_->model(), example,
                                             &lane.out, &error, spec);
    if (lane.plan == nullptr) {
      if (spec != nullptr) {
        // A failed int8 capture demotes the WHOLE server to fp32 lanes
        // (sticky): every already-captured int8 lane is dropped and this
        // loop restarts in fp32, so one batch never mixes precisions.
        quant_capture_failed_ = true;
        quant_lane_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        TFMAE_COUNTER_ADD("serve.quant.capture_fallbacks", 1);
        spec = nullptr;
        for (auto& l : lanes_) l->plan.reset();
        i = -1;
        continue;
      }
      // Capture failure never produces a wrong plan, only no plan: this
      // batch scores eagerly and the next batch retries the capture.
      TFMAE_COUNTER_ADD("serve.plan.capture_fallbacks", 1);
      return false;
    }
    lane.quantized = want_quant;
    TFMAE_COUNTER_ADD("serve.plan.lane_captures", 1);
  }
  return true;
}

std::int64_t FleetServer::ScoreBatchLocked() {
  std::vector<Request> batch;
  {
    std::lock_guard<std::mutex> queue_lock(queue_mu_);
    const std::int64_t take = std::min<std::int64_t>(
        options_.batch_max, static_cast<std::int64_t>(queue_.size()));
    batch.reserve(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  if (batch.empty()) return 0;
  TFMAE_TRACE("serve.batch");
  const std::int64_t batch_size = static_cast<std::int64_t>(batch.size());
  const std::int64_t window = options_.streaming.window;
  const core::TfmaeModel& model = *detector_->model();
  const core::TfmaeConfig& config = detector_->config();
  const std::uint64_t t0 = NowNs();

  // Phase 1 (dispatch thread, serial): replicate TfmaeDetector::Score's
  // exact per-window pipeline — global z-score, optional per-window
  // instance normalization, mask preparation. Masking/FFT are cheap next to
  // the transformer forward; keeping them off worker threads keeps the
  // parallel phase a pure replay loop.
  std::vector<core::MaskedWindow> masked(batch.size());
  for (std::int64_t i = 0; i < batch_size; ++i) {
    Request& request = batch[static_cast<std::size_t>(i)];
    data::TimeSeries series;
    series.length = window;
    series.num_features = model.num_features();
    series.values = std::move(request.values);
    data::TimeSeries normalized = detector_->normalizer().Apply(series);
    if (config.per_window_normalization) {
      core::PerWindowNormalize(&normalized.values, window,
                               normalized.num_features);
    }
    Rng mask_rng(MixSeed(config.seed, request.stream, request.seq));
    masked[static_cast<std::size_t>(i)] =
        model.PrepareWindow(normalized.values, &mask_rng);
  }

  // Phase 2: score. Planned path: one ParallelFor over the batch, each
  // chunk claiming a free lane — inside a chunk every kernel-level
  // ParallelFor runs inline at fixed chunk boundaries (util/thread_pool.h),
  // so each window's scores are bitwise those of a sequential replay.
  const std::int64_t lane_want = std::min<std::int64_t>(
      batch_size, ThreadPool::Instance().num_threads());
  const bool planned = detector_->inference_plan_enabled() &&
                       EnsureLanesLocked(lane_want, masked[0]);
  std::vector<float> scores(batch.size(), 0.0f);
  if (planned) {
    ParallelFor(0, batch_size, 1, [&](std::int64_t b0, std::int64_t b1) {
      // Claim a lane: at most min(batch, threads) chunks run concurrently
      // and that many verified lanes exist, so the scan always terminates.
      Lane* lane = nullptr;
      for (std::size_t l = 0;; l = (l + 1) % static_cast<std::size_t>(lane_want)) {
        if (!lanes_[l]->busy.test_and_set(std::memory_order_acquire)) {
          lane = lanes_[l].get();
          break;
        }
      }
      for (std::int64_t i = b0; i < b1; ++i) {
        const Request& request = batch[static_cast<std::size_t>(i)];
        lane->plan->Score(masked[static_cast<std::size_t>(i)], &lane->out);
        scores[static_cast<std::size_t>(i)] =
            core::StreamState::TailScore(lane->out, window, request.fresh);
      }
      lane->busy.clear(std::memory_order_release);
    });
  } else {
    for (std::int64_t i = 0; i < batch_size; ++i) {
      const std::vector<float> out =
          model.ScoreWindow(masked[static_cast<std::size_t>(i)]);
      scores[static_cast<std::size_t>(i)] = core::StreamState::TailScore(
          out, window, batch[static_cast<std::size_t>(i)].fresh);
    }
    eager_windows_.fetch_add(batch_size, std::memory_order_relaxed);
  }
  const std::uint64_t elapsed = NowNs() - t0;
  RecordLatency(elapsed / static_cast<std::uint64_t>(batch_size), batch_size);

  // Phase 3 (dispatch thread, serial, admission order): commit tail scores
  // and publish results.
  std::vector<ScoredWindow> done(batch.size());
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const Request& request = batch[static_cast<std::size_t>(i)];
    ScoredWindow& result = done[static_cast<std::size_t>(i)];
    result.stream = request.stream;
    result.seq = request.seq;
    result.score = scores[static_cast<std::size_t>(i)];
    result.fresh = request.fresh;
    result.degraded = request.imputed > 0;
    result.imputed_values = request.imputed;
    Entry& entry = *streams_[static_cast<std::size_t>(request.stream)];
    {
      std::lock_guard<std::mutex> stream_lock(entry.mu);
      entry.state.CommitRescore(result.score);
      result.is_anomaly = result.score >= entry.state.threshold();
    }
    if (result.is_anomaly) {
      alerts_.fetch_add(1, std::memory_order_relaxed);
      TFMAE_COUNTER_ADD("serve.alerts", 1);
    }
  }
  {
    std::lock_guard<std::mutex> results_lock(results_mu_);
    results_.insert(results_.end(), done.begin(), done.end());
  }
  windows_scored_.fetch_add(batch_size, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  AtomicMax(&max_batch_, batch_size);
  TFMAE_COUNTER_ADD("serve.batch.count", 1);
  TFMAE_COUNTER_ADD("serve.batch.windows", batch_size);
  TFMAE_HISTOGRAM_RECORD("serve.batch.size",
                         static_cast<std::uint64_t>(batch_size));
  return batch_size;
}

void FleetServer::TryFlush() {
  // One batch, only if no other thread is mid-batch: the process-wide
  // ThreadPool supports one dispatching thread at a time, and a skipped
  // flush is picked up by the next over-threshold push or explicit Flush.
  if (!score_mu_.try_lock()) return;
  ScoreBatchLocked();
  score_mu_.unlock();
}

std::int64_t FleetServer::Flush() {
  std::int64_t total = 0;
  for (;;) {
    std::lock_guard<std::mutex> lock(score_mu_);
    const std::int64_t n = ScoreBatchLocked();
    if (n == 0) break;
    total += n;
  }
  return total;
}

std::int64_t FleetServer::Drain() {
  const std::int64_t scored = Flush();
  TFMAE_GAUGE_SET("serve.bytes_per_stream", ApproxBytesPerStream());
  if (obs::LedgerActive()) {
    const ServeStats s = stats();
    obs::Ledger::Instance().Event(
        "serve",
        {{"streams", std::to_string(s.streams)},
         {"rows", std::to_string(s.rows_pushed)},
         {"windows", std::to_string(s.windows_scored)},
         {"alerts", std::to_string(s.alerts)},
         {"rejected", std::to_string(s.rows_rejected)},
         {"quarantined", std::to_string(s.rows_quarantined)},
         {"bytes_per_stream", std::to_string(s.bytes_per_stream)},
         {"precision", obs::JsonQuote(s.quant_lanes > 0 ? "int8" : "fp32")},
         {"quant_fallbacks", std::to_string(s.quant_fallbacks)},
         // Batching composition depends on flush timing (and overload on
         // ingest timing): t_-prefixed so the canonical event stream stays
         // invariant across thread counts and schedules.
         {"t_batches", std::to_string(s.batches)},
         {"t_max_batch", std::to_string(s.max_batch)},
         {"t_overloaded", std::to_string(s.rows_overloaded)}});
  }
  return scored;
}

std::vector<ScoredWindow> FleetServer::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<ScoredWindow> out;
  out.swap(results_);
  return out;
}

const core::StreamHealth& FleetServer::health(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  return streams_[static_cast<std::size_t>(stream)]->state.health();
}

float FleetServer::last_score(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.last_tail_score();
}

std::int64_t FleetServer::total_pushed(std::int64_t stream) const {
  TFMAE_CHECK(stream >= 0 && stream < num_streams());
  Entry& entry = *streams_[static_cast<std::size_t>(stream)];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.total_pushed();
}

std::int64_t FleetServer::ApproxBytesPerStream() const {
  if (num_streams() == 0) return 0;
  Entry& entry = *streams_[0];
  std::lock_guard<std::mutex> lock(entry.mu);
  return entry.state.ApproxBytes();
}

void FleetServer::RecordLatency(std::uint64_t ns_per_window,
                                std::int64_t windows) {
  TFMAE_HISTOGRAM_RECORD("serve.score.window_ns", ns_per_window);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_counts_[Log2Bucket(ns_per_window)] +=
      static_cast<std::uint64_t>(windows);
  if (latency_min_ns_ == 0 || ns_per_window < latency_min_ns_) {
    latency_min_ns_ = ns_per_window;
  }
  latency_max_ns_ = std::max(latency_max_ns_, ns_per_window);
}

ServeStats FleetServer::stats() const {
  ServeStats s;
  s.streams = num_streams();
  s.rows_pushed = rows_pushed_.load(std::memory_order_relaxed);
  s.rows_overloaded = rows_overloaded_.load(std::memory_order_relaxed);
  s.rows_rejected = rows_rejected_.load(std::memory_order_relaxed);
  s.rows_quarantined = rows_quarantined_.load(std::memory_order_relaxed);
  s.rows_warmup = rows_warmup_.load(std::memory_order_relaxed);
  s.windows_enqueued = windows_enqueued_.load(std::memory_order_relaxed);
  s.windows_scored = windows_scored_.load(std::memory_order_relaxed);
  s.eager_windows = eager_windows_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.alerts = alerts_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.bytes_per_stream = ApproxBytesPerStream();
  {
    // Quantiles from the log2 latency histogram with linear interpolation
    // inside a bucket (the obs exporters' scheme), clamped to observed
    // min/max. A const_cast-free copy is not worth a second mutex: stats()
    // is an observer called off the hot path.
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(latency_mu_));
    std::uint64_t total = 0;
    for (const std::uint64_t c : latency_counts_) total += c;
    const auto quantile = [&](double p) -> double {
      if (total == 0) return 0.0;
      const double target = p * static_cast<double>(total);
      double cumulative = 0.0;
      for (int b = 0; b < kLatencyBuckets; ++b) {
        const double count = static_cast<double>(latency_counts_[b]);
        if (count == 0.0) continue;
        if (cumulative + count >= target) {
          const double lo = static_cast<double>(1ULL << b);
          const double hi = lo * 2.0;
          const double frac = (target - cumulative) / count;
          double v = lo + (hi - lo) * frac;
          v = std::max(v, static_cast<double>(latency_min_ns_));
          v = std::min(v, static_cast<double>(latency_max_ns_));
          return v;
        }
        cumulative += count;
      }
      return static_cast<double>(latency_max_ns_);
    };
    s.p50_window_ns = quantile(0.50);
    s.p95_window_ns = quantile(0.95);
    s.p99_window_ns = quantile(0.99);
  }
  s.quant_fallbacks = quant_lane_fallbacks_.load(std::memory_order_relaxed) +
                      detector_->quant_fallbacks();
  {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(score_mu_));
    for (const auto& lane : lanes_) {
      if (lane->plan == nullptr) continue;
      ++s.plan_lanes;
      if (lane->quantized) ++s.quant_lanes;
      if (s.plan_arena_bytes == 0) {
        s.plan_arena_bytes = lane->plan->stats().arena_bytes;
        s.quant_arena_bytes = lane->plan->stats().quant_arena_bytes;
      }
    }
  }
  return s;
}

}  // namespace tfmae::serve
