#include "serve/fleet_snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "util/checkpoint_file.h"
#include "util/fault.h"
#include "util/logging.h"

namespace tfmae::serve {
namespace {

constexpr char kMetaSection[] = "fleet.meta";
constexpr char kStreamsSection[] = "fleet.streams";
constexpr char kPendingSection[] = "fleet.pending";

constexpr char kFilePrefix[] = "fleet_";
constexpr char kFileSuffix[] = ".tfmae";

std::vector<char> EncodeMeta(const FleetSnapshotData& d) {
  util::ByteWriter w;
  w.U32(kFleetSnapshotVersion);
  w.U32(d.config_crc);
  w.U64(d.index);
  w.I64(d.streaming.window);
  w.I64(d.streaming.hop);
  w.I64(d.streaming.impute_staleness_cap);
  w.F64(d.streaming.quarantine_sigma);
  w.I64(d.streaming.quarantine_warmup);
  w.F32(d.threshold);
  w.I64(d.counters.rows_pushed);
  w.I64(d.counters.rows_overloaded);
  w.I64(d.counters.rows_rejected);
  w.I64(d.counters.rows_quarantined);
  w.I64(d.counters.rows_warmup);
  w.I64(d.counters.windows_enqueued);
  w.I64(d.counters.windows_scored);
  w.I64(d.counters.alerts);
  w.I64(d.counters.shed_dropped);
  w.I64(d.counters.shed_deadline_expired);
  return w.Take();
}

bool DecodeMeta(const std::vector<char>& payload, FleetSnapshotData* d,
                std::string* error) {
  util::ByteReader r(payload);
  std::uint32_t version = 0;
  if (!r.U32(&version)) {
    *error = "truncated meta section";
    return false;
  }
  if (version != kFleetSnapshotVersion) {
    *error = "unsupported fleet snapshot version " + std::to_string(version);
    return false;
  }
  const bool ok =
      r.U32(&d->config_crc) && r.U64(&d->index) && r.I64(&d->streaming.window) &&
      r.I64(&d->streaming.hop) && r.I64(&d->streaming.impute_staleness_cap) &&
      r.F64(&d->streaming.quarantine_sigma) &&
      r.I64(&d->streaming.quarantine_warmup) && r.F32(&d->threshold) &&
      r.I64(&d->counters.rows_pushed) && r.I64(&d->counters.rows_overloaded) &&
      r.I64(&d->counters.rows_rejected) &&
      r.I64(&d->counters.rows_quarantined) && r.I64(&d->counters.rows_warmup) &&
      r.I64(&d->counters.windows_enqueued) &&
      r.I64(&d->counters.windows_scored) && r.I64(&d->counters.alerts) &&
      r.I64(&d->counters.shed_dropped) &&
      r.I64(&d->counters.shed_deadline_expired) && r.AtEnd();
  if (!ok) *error = "malformed meta section";
  return ok;
}

std::vector<char> EncodeStreams(const FleetSnapshotData& d) {
  util::ByteWriter w;
  w.U64(d.stream_states.size());
  for (const auto& state : d.stream_states) {
    w.U64(state.size());
    w.Raw(state.data(), state.size());
  }
  return w.Take();
}

bool DecodeStreams(const std::vector<char>& payload, FleetSnapshotData* d,
                   std::string* error) {
  util::ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.U64(&count) || count > (1ull << 24)) {
    *error = "malformed streams section";
    return false;
  }
  d->stream_states.resize(static_cast<std::size_t>(count));
  for (auto& state : d->stream_states) {
    std::uint64_t len = 0;
    if (!r.U64(&len) || len > payload.size()) {
      *error = "malformed streams section";
      return false;
    }
    state.resize(static_cast<std::size_t>(len));
    if (!r.Raw(state.data(), state.size())) {
      *error = "truncated streams section";
      return false;
    }
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes in streams section";
    return false;
  }
  return true;
}

std::vector<char> EncodePending(const FleetSnapshotData& d) {
  util::ByteWriter w;
  w.U64(d.pending.size());
  for (const PendingWindow& p : d.pending) {
    w.I64(p.stream);
    w.I64(p.seq);
    w.I64(p.fresh);
    w.U32(static_cast<std::uint32_t>(p.imputed));
    w.FloatArray(p.values);
  }
  return w.Take();
}

bool DecodePending(const std::vector<char>& payload, FleetSnapshotData* d,
                   std::string* error) {
  util::ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.U64(&count) || count > (1ull << 24)) {
    *error = "malformed pending section";
    return false;
  }
  d->pending.resize(static_cast<std::size_t>(count));
  for (PendingWindow& p : d->pending) {
    std::uint32_t imputed = 0;
    if (!r.I64(&p.stream) || !r.I64(&p.seq) || !r.I64(&p.fresh) ||
        !r.U32(&imputed) || !r.FloatArray(&p.values)) {
      *error = "truncated pending section";
      return false;
    }
    p.imputed = static_cast<std::int32_t>(imputed);
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes in pending section";
    return false;
  }
  return true;
}

/// Snapshot index encoded in a file name; -1 when `name` is not a fleet
/// snapshot file.
std::int64_t IndexFromFilename(const std::string& name) {
  const std::size_t prefix_len = sizeof(kFilePrefix) - 1;
  const std::size_t suffix_len = sizeof(kFileSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, kFilePrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kFileSuffix) != 0) {
    return -1;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

/// All snapshot files in `dir` as (index, path), highest index first.
std::vector<std::pair<std::int64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::int64_t index =
        IndexFromFilename(entry.path().filename().string());
    if (index >= 0) found.emplace_back(index, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

bool WriteFleetSnapshot(const FleetSnapshotData& data, const std::string& path,
                        std::string* error) {
  if (TFMAE_FAULT("serve.snapshot_write")) {
    if (error != nullptr) *error = "injected fault: serve.snapshot_write";
    return false;
  }
  util::CheckpointFileWriter writer;
  writer.AddSection(kMetaSection, EncodeMeta(data));
  writer.AddSection(kStreamsSection, EncodeStreams(data));
  writer.AddSection(kPendingSection, EncodePending(data));
  if (!writer.WriteAtomic(path)) {
    if (error != nullptr) *error = "snapshot write failed: " + path;
    return false;
  }
  return true;
}

std::optional<FleetSnapshotData> ReadFleetSnapshot(const std::string& path,
                                                   std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  const auto reader = util::CheckpointFileReader::Open(path, err);
  if (!reader.has_value()) return std::nullopt;
  const std::vector<char>* meta = reader->Section(kMetaSection);
  const std::vector<char>* streams = reader->Section(kStreamsSection);
  const std::vector<char>* pending = reader->Section(kPendingSection);
  if (meta == nullptr || streams == nullptr || pending == nullptr) {
    *err = "missing fleet snapshot section";
    return std::nullopt;
  }
  FleetSnapshotData data;
  if (!DecodeMeta(*meta, &data, err)) return std::nullopt;
  if (!DecodeStreams(*streams, &data, err)) return std::nullopt;
  if (!DecodePending(*pending, &data, err)) return std::nullopt;
  return data;
}

std::string FleetSnapshotPath(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kFilePrefix,
                static_cast<unsigned long long>(index), kFileSuffix);
  return (std::filesystem::path(dir) / name).string();
}

std::optional<std::pair<std::string, FleetSnapshotData>>
FindLatestValidFleetSnapshot(const std::string& dir, std::string* error) {
  std::string last_error = "no fleet snapshot files in " + dir;
  for (const auto& [index, path] : ListSnapshots(dir)) {
    std::string open_error;
    if (auto data = ReadFleetSnapshot(path, &open_error)) {
      return std::make_pair(path, std::move(*data));
    }
    Log(LogLevel::kWarning, "fleet snapshot " + path + " rejected (" +
                                open_error +
                                "), falling back to the previous one");
    last_error = open_error;
  }
  if (error != nullptr) *error = last_error;
  return std::nullopt;
}

void PruneFleetSnapshots(const std::string& dir, int keep_last) {
  const auto snapshots = ListSnapshots(dir);
  std::error_code ec;
  for (std::size_t i = static_cast<std::size_t>(std::max(0, keep_last));
       i < snapshots.size(); ++i) {
    std::filesystem::remove(snapshots[i].second, ec);
  }
}

}  // namespace tfmae::serve
