// Fleet serving plane: one shared trained model, thousands of streams
// (docs/SERVING.md; ROADMAP item 1).
//
// A monitoring fleet has N-thousand entities emitting telemetry rows, but
// only ONE trained model. Wrapping each entity in its own StreamingDetector
// would work, yet leaves the real serving lever on the table: every rescore
// is an identical window geometry, so ready windows from DIFFERENT streams
// can be coalesced into one batched pass through the pre-planned executor
// (DESIGN.md §10) instead of N separate synchronous Score() calls.
//
// FleetServer owns:
//  * one read-only fitted TfmaeDetector (model + z-score normalizer) shared
//    by every stream — weights are never copied per stream;
//  * N compact core::StreamState instances (sliding window, LOCF repair,
//    quarantine statistics, hop cadence — ApproxBytes() each);
//  * a bounded ready-window queue with typed admission control: when the
//    queue is full, Push returns AdmitStatus::kOverloaded WITHOUT consuming
//    the row (the stream is unchanged; the caller retries after a Flush);
//  * a batcher that drains up to batch_max ready windows at a time and
//    scores them in one ParallelFor pass over per-lane InferencePlan
//    replicas (the PR 6 arena planner extended to a batch dimension: each
//    lane owns its own planned arena, so lanes replay concurrently with
//    zero shared mutable state).
//
// Determinism contract: a window's score depends only on its values — the
// plan replay is bitwise-identical to eager scoring at any thread count,
// and every lane self-verified against eager at capture. Therefore batched
// scores are bitwise-identical to what a sequential per-stream
// StreamingDetector (sharing the same fitted detector) would emit,
// regardless of batch composition, flush timing, ingest interleaving, or
// TFMAE_NUM_THREADS. tests/serve_test.cc pins this at 1/2/4 threads.
//
// Int8 serving (DESIGN.md §12): when the detector selects QuantMode::kInt8
// and carries a calibration spec, lanes capture quantized plans instead.
// Quantized capture is deterministic, so every int8 lane is identical and
// the contract holds with "sequential replay of the same int8 plan" as the
// baseline. All lanes always share one precision: if any int8 capture
// fails, the server demotes every lane to fp32 (sticky, counted in
// ServeStats::quant_fallbacks) rather than mix precisions across a batch.
#ifndef TFMAE_SERVE_FLEET_SERVER_H_
#define TFMAE_SERVE_FLEET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/drift.h"
#include "core/streaming.h"
#include "serve/fleet_snapshot.h"

namespace tfmae::serve {

/// What admission control does when the ready-window queue is full
/// (docs/RESILIENCE.md, "Serving resilience"). Every policy is typed and
/// accounted (`serve.shed.*`); none silently drops an ADMITTED window —
/// kDropOldest surfaces the victim as a shed-marked result.
enum class ShedPolicy {
  /// Refuse the new row with kOverloaded; the row is not consumed and the
  /// caller retries after a Flush. The pre-PR-9 behaviour.
  kRejectNew,
  /// Evict the oldest queued window to admit the new row. The victim is
  /// never scored; it is published through TakeResults with `shed = true`
  /// (score meaningless) so its absence is observable, and its stream's
  /// tail score simply stays stale until the next rescore. Favors freshness
  /// over completeness.
  kDropOldest,
  /// Before admission, the pushing thread self-services the backlog
  /// (bounded flush-and-wait up to shed_deadline_ms); if the queue is still
  /// full at the deadline the push fails kOverloaded and
  /// `serve.shed.deadline_expired` counts it. Favors completeness over
  /// ingest latency.
  kBlockDeadline,
};

/// Stable lower-case name ("reject" / "drop_oldest" / "block"), as used by
/// TFMAE_SERVE_SHED_POLICY and `tfmae_serve --shed_policy`.
const char* ShedPolicyName(ShedPolicy policy);
/// Inverse of ShedPolicyName; nullopt for an unknown name.
std::optional<ShedPolicy> ParseShedPolicy(std::string_view name);

/// Fleet-server configuration.
struct FleetOptions {
  /// Per-stream windowing and degraded-input knobs. `streaming.window` must
  /// not exceed the detector's config().window so that every ready window
  /// maps to exactly one model window (the serving geometry).
  core::StreamingOptions streaming;
  /// Streams this server can ever hold (slots are preallocated so ingest
  /// never races a reallocation).
  std::int64_t max_streams = 65536;
  /// Ready-window queue bound. A Push whose queue is full is refused with
  /// kOverloaded before the row is consumed. Under concurrent ingest the
  /// depth can transiently exceed this by the number of in-flight pushes
  /// (admission is checked before the row is absorbed).
  std::int64_t queue_capacity = 4096;
  /// Max windows coalesced into one batched pass.
  std::int64_t batch_max = 64;
  /// Score a batch inline (from the pushing thread) whenever batch_max
  /// windows are ready. Off: windows accumulate until Flush()/Drain().
  bool auto_flush = true;
  /// Queue-full behaviour (see ShedPolicy).
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// kBlockDeadline only: longest a push may self-service the backlog
  /// before giving up with kOverloaded.
  std::int64_t shed_deadline_ms = 50;
  /// Consecutive shed/overload events before the server latches sticky
  /// degraded mode (one `serve.shed` ledger event + flight-recorder note;
  /// stats().degraded stays true for the rest of the run). <= 0 disables.
  std::int64_t degraded_after = 8;
  /// Snapshot directory for SnapshotNow()/automatic snapshots; empty
  /// disables snapshotting entirely.
  std::string snapshot_dir;
  /// Automatic crash-safety cadence: a snapshot is cut roughly every this
  /// many absorbed rows (checked after each push, outside all locks).
  /// 0 = manual SnapshotNow() only.
  std::int64_t snapshot_every = 0;
  /// Snapshots retained in snapshot_dir (older ones are pruned after every
  /// successful write). At least 2, so a torn newest file always leaves a
  /// valid predecessor to fall back to.
  int snapshot_keep = 4;
  /// Scoring watchdog: a batch in flight longer than this many ms is
  /// declared stalled — `serve.watchdog.stalls` is bumped and, when the
  /// flight recorder is armed, a postmortem is dumped. 0 = no watchdog
  /// thread.
  std::int64_t watchdog_stall_ms = 0;

  // ---- Live observability (docs/OBSERVABILITY.md, "Live endpoints & SLOs") -
  /// Sampled full-span window timelines: every Nth scored window emits its
  /// four stage spans (queue/batch/score/result) into the chrome-trace
  /// capture while tracing is active (obs::StartTracing). 0 = no sampling.
  std::int64_t trace_sample = 0;
  /// Per-stream latency SLO: a window whose experienced latency (admission
  /// to result commit) exceeds this many ns counts as a violation against
  /// its stream's error budget. 0 disables the latency objective.
  std::int64_t slo_latency_ns = 0;
  /// Per-stream staleness SLO: a result answering a row more than this many
  /// rows behind its stream's current head counts as a violation. 0
  /// disables the staleness objective.
  std::int64_t slo_staleness_rows = 0;
  /// Sliding error-budget window, in scored windows per stream.
  std::int64_t slo_window = 256;
  /// Fraction of the SLO window allowed to violate before the stream's
  /// budget is exhausted: once a full window holds more than
  /// floor(slo_budget * slo_window) violations the stream latches exhausted
  /// (one `serve.slo` ledger event per episode) until it recovers.
  double slo_budget = 0.01;
  /// Online drift monitor cadence: compare the recent-score reservoir
  /// against the calibration score reference every this many scored
  /// windows. 0 disables; so does a detector without a score reference
  /// (core/drift.h) when none was set via SetDriftReference or
  /// CalibrateThreshold.
  std::int64_t drift_check_every = 0;
  /// Two-sample K-S distance above which a drift alarm fires
  /// (`serve.drift` ledger event + `serve.drift.alarms` counter).
  double drift_threshold = 0.35;
  /// Recent-score reservoir capacity (a ring of the newest scores).
  std::int64_t drift_reservoir = 512;
};

/// Typed admission result of one Push.
enum class AdmitStatus {
  kAccepted,     ///< row absorbed; result available synchronously
  kQueued,       ///< row absorbed; window queued for batched scoring
  kWarmup,       ///< row absorbed; the first window is still filling
  kQuarantined,  ///< row replaced by an imputed stand-in; no score
  kRejectedRow,  ///< degraded-input reject (wrong arity / unimputable)
  kOverloaded,   ///< queue full: row NOT consumed, retry after Flush/Drain
  kUnknownStream,  ///< stream id was never OpenStream()ed
  kDraining,     ///< Drain() began: row NOT consumed, the server is shutting
                 ///< down and will never admit again
};

/// One asynchronous scoring result (delivered via TakeResults()).
struct ScoredWindow {
  std::int64_t stream = -1;
  /// Push index within the stream (StreamState::total_pushed() - 1 at
  /// enqueue time): which row this score answers.
  std::int64_t seq = -1;
  float score = 0.0f;
  bool is_anomaly = false;
  /// Rows scored fresh by this window (the hop segment).
  std::int64_t fresh = 0;
  bool degraded = false;
  std::int32_t imputed_values = 0;
  /// kDropOldest only: this window was evicted unscored to admit a newer
  /// row — `score`/`is_anomaly` are meaningless, the entry exists so the
  /// gap in (stream, seq) coverage is observable rather than silent.
  bool shed = false;
};

/// Cumulative serving counters (always available; the obs registry mirrors
/// them as `serve.*` metrics in observability builds).
struct ServeStats {
  std::int64_t streams = 0;
  std::int64_t rows_pushed = 0;        ///< rows absorbed into a stream
  std::int64_t rows_overloaded = 0;    ///< pushes refused by admission control
  std::int64_t rows_rejected = 0;      ///< degraded-input rejects
  std::int64_t rows_quarantined = 0;
  std::int64_t rows_warmup = 0;
  std::int64_t windows_enqueued = 0;
  std::int64_t windows_scored = 0;
  std::int64_t eager_windows = 0;  ///< scored without a plan (capture failed)
  std::int64_t batches = 0;
  std::int64_t max_batch = 0;
  std::int64_t alerts = 0;
  std::int64_t plan_lanes = 0;         ///< captured plan replicas
  std::int64_t quant_lanes = 0;        ///< lanes replaying an int8 plan
  std::int64_t quant_fallbacks = 0;    ///< int8 requests served fp32 (lane
                                       ///< captures + detector-side)
  std::int64_t plan_arena_bytes = 0;   ///< fp32 activation arena, one lane
  std::int64_t quant_arena_bytes = 0;  ///< packed u8 arena, one int8 lane
  std::int64_t peak_queue_depth = 0;
  std::int64_t bytes_per_stream = 0;   ///< StreamState::ApproxBytes (stream 0)
  std::int64_t shed_dropped = 0;       ///< windows evicted by kDropOldest
  std::int64_t shed_deadline_expired = 0;  ///< kBlockDeadline give-ups
  bool degraded = false;               ///< sticky saturation latch
  std::int64_t snapshots_written = 0;
  std::int64_t snapshots_failed = 0;
  std::int64_t snapshot_index = 0;     ///< index of the newest snapshot cut
  std::int64_t watchdog_stalls = 0;
  double p50_window_ns = 0.0;          ///< per-window score latency quantiles
  double p95_window_ns = 0.0;
  double p99_window_ns = 0.0;
  // Stage-attributed timeline sums (ns), mirrored by the `serve.stage.*`
  // histograms in observability builds. Queue is each window's own
  // admit->pop wait; batch/score/result are the window's share of its
  // batch's prepare/score/commit phases. By construction
  //   stage_total_ns == stage_queue_ns + stage_batch_ns
  //                     + stage_score_ns + stage_result_ns.
  std::int64_t stage_queue_ns = 0;
  std::int64_t stage_batch_ns = 0;
  std::int64_t stage_score_ns = 0;
  std::int64_t stage_result_ns = 0;
  std::int64_t stage_total_ns = 0;
  double p50_e2e_ns = 0.0;  ///< experienced admit->commit latency quantiles
  double p95_e2e_ns = 0.0;
  double p99_e2e_ns = 0.0;
  std::int64_t slo_latency_breaches = 0;    ///< windows over the latency SLO
  std::int64_t slo_staleness_breaches = 0;  ///< windows over the staleness SLO
  std::int64_t slo_exhausted_streams = 0;   ///< streams currently out of budget
  std::int64_t slo_exhausted_episodes = 0;  ///< exhaustion latches ever fired
  std::int64_t drift_checks = 0;            ///< reservoir-vs-reference checks
  std::int64_t drift_alarms = 0;            ///< checks over drift_threshold
  double drift_ks = 0.0;  ///< latest K-S distance vs the calibration reference
};

/// One-line JSON rendering of ServeStats — the payload of the /statusz
/// endpoint and of `tfmae_serve --stats_every` periodic lines. Keys match
/// the ServeStats field names; stable key order.
std::string ServeStatsJson(const ServeStats& stats);

/// Serves thousands of concurrent streams from one process.
///
/// Typical use:
///   TfmaeDetector detector(config);
///   detector.Fit(history);
///   serve::FleetServer server(&detector, options);
///   server.CalibrateThreshold(detector.Score(validation), 0.02);
///   std::vector<std::int64_t> ids;
///   for (int s = 0; s < fleet_size; ++s) ids.push_back(server.OpenStream());
///   // ingest (any thread; per-stream order is the caller's):
///   while (server.Push(ids[s], row) == serve::AdmitStatus::kOverloaded)
///     server.Flush();
///   // alerts:
///   for (const auto& r : server.TakeResults()) if (r.is_anomaly) Alert(r);
///   // shutdown:
///   server.Drain();  // scores every admitted window; loses nothing
///
/// Thread-safety: Push may be called concurrently for DIFFERENT streams;
/// pushes to the same stream must be externally ordered (they are the
/// stream's timeline). Flush/Drain/TakeResults may run concurrently with
/// ingest. The detector must not be refit while serving.
class FleetServer {
 public:
  /// `detector` must be fitted and outlive the server; its model and
  /// normalizer are shared read-only across all streams.
  FleetServer(core::TfmaeDetector* detector, FleetOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Registers a new stream and returns its id (dense, starting at 0).
  /// Fails (returns -1) once max_streams slots are in use.
  std::int64_t OpenStream();
  std::int64_t num_streams() const {
    return num_streams_.load(std::memory_order_acquire);
  }

  /// Sets the alert threshold applied to every stream (current and future).
  void set_threshold(float threshold);
  /// Threshold from calibration scores, as StreamingDetector does. Also
  /// builds the drift monitor's reference distribution from the same scores
  /// when none was installed yet (detector sidecar or SetDriftReference).
  void CalibrateThreshold(const std::vector<float>& calibration_scores,
                          double anomaly_fraction);

  /// Replaces the drift monitor's reference distribution (normally copied
  /// from the detector's persisted score reference at construction).
  void SetDriftReference(core::ScoreDistribution reference);

  /// Admits one observation row into `stream`. kQueued: the trailing window
  /// became due and was enqueued — its score arrives via TakeResults (tagged
  /// with this row's seq). kAccepted: no rescore due; when `result` is
  /// non-null it is filled with the stream's latest committed tail score
  /// (StreamingDetector's in-between-hop semantics). kOverloaded: the row
  /// was NOT consumed — the stream state is untouched and the same row
  /// should be re-pushed after a Flush.
  AdmitStatus Push(std::int64_t stream, const std::vector<float>& row,
                   core::StreamingResult* result = nullptr);

  /// Scores every queued window (in admission order, batch_max at a time).
  /// Returns the number of windows scored.
  std::int64_t Flush();

  /// Shutdown: latches the server closed — every Push from this point on
  /// returns kDraining WITHOUT consuming the row, so concurrent producers
  /// cannot livelock the drain by refilling the queue — then scores every
  /// already-admitted window and emits the ledger `serve` summary event
  /// (once, even if Drain is called again or by the destructor). No
  /// admitted window is ever dropped.
  std::int64_t Drain();

  /// True once Drain() has begun.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // ---- Crash safety (docs/RESILIENCE.md, "Serving resilience") -----------

  /// Cuts one snapshot of the complete serving state (every stream, the
  /// pending queue, the counters) and writes it to options_.snapshot_dir as
  /// "fleet_<index>.tfmae" (atomic tmp+rename; older files pruned to
  /// snapshot_keep). Ingest and scoring are blocked for the capture — the
  /// copy is taken at a batch boundary with every stream lock held, so the
  /// snapshot is a consistent cut: each stream's state and its queued
  /// windows agree. Returns false (reason in `*error`, previous snapshots
  /// untouched) on I/O failure or when no snapshot_dir is configured.
  /// Fault point: "serve.snapshot_write".
  bool SnapshotNow(std::string* error = nullptr);

  /// Rebuilds this server from a snapshot (see FindLatestValidFleetSnapshot
  /// for picking one). Must be called on a FRESH server (no OpenStream yet)
  /// whose detector and FleetOptions::streaming match the snapshot's; the
  /// detector's config CRC is verified against the snapshot's. Reopens
  /// every stream, decodes its state, re-enqueues the pending windows, and
  /// restores the counters, so that re-feeding each stream its rows from
  /// total_pushed(stream) on yields scores bitwise-identical to a run that
  /// was never interrupted (tests/serve_resilience_test.cc pins this at
  /// 1/2/4 threads). Returns false on any mismatch or corrupt stream
  /// payload; the server is then in an unspecified state and must be
  /// discarded.
  bool Restore(const FleetSnapshotData& snapshot, std::string* error = nullptr);

  /// Index of the newest snapshot cut (or restored from); 0 before any.
  std::int64_t snapshot_index() const {
    return static_cast<std::int64_t>(
        snapshot_index_.load(std::memory_order_relaxed));
  }

  /// True once the sticky degraded-mode latch fired (see
  /// FleetOptions::degraded_after).
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Completed results since the previous TakeResults, in scoring order
  /// (admission order; per-stream order always matches push order).
  std::vector<ScoredWindow> TakeResults();

  /// Per-stream degraded-input health (valid stream ids only).
  const core::StreamHealth& health(std::int64_t stream) const;
  /// Latest committed tail score of one stream.
  float last_score(std::int64_t stream) const;
  /// Rows consumed by one stream.
  std::int64_t total_pushed(std::int64_t stream) const;

  /// Approximate resident bytes of one stream's state.
  std::int64_t ApproxBytesPerStream() const;

  /// Cumulative serving counters (latency quantiles computed on call).
  ServeStats stats() const;

 private:
  struct Entry;
  struct Lane;
  struct Request;

  /// Drains and scores one batch; requires score_mu_. Returns windows
  /// scored (0 = queue empty).
  std::int64_t ScoreBatchLocked();
  /// One-batch flush from the ingest path (skips if a batch is in flight).
  void TryFlush();
  /// Ensures >= `want` capture-verified lanes; requires score_mu_. Returns
  /// false when capture fails (the batch falls back to eager scoring).
  bool EnsureLanesLocked(std::int64_t want, const core::MaskedWindow& example);
  void RecordLatency(std::uint64_t ns_per_window, std::int64_t windows);
  /// Post-commit accounting of one scored batch: per-stage histograms and
  /// sums, experienced-latency quantile samples, per-stream SLO budgets,
  /// the drift reservoir, and sampled chrome-trace spans. `batch` is the
  /// scored batch in admission order; the t_* stamps are the batch's phase
  /// boundaries on the local NowNs() clock.
  void AccountBatch(const std::vector<Request>& batch,
                    const std::vector<float>& scores, std::uint64_t t_pop,
                    std::uint64_t t_prep, std::uint64_t t_scored,
                    std::uint64_t t_done);
  /// Appends `scores` to the drift reservoir and runs a reference
  /// comparison when the cadence is due.
  void DriftObserve(const std::vector<float>& scores);
  /// Consistent cut of the whole serving state (locks score_mu_, open_mu_,
  /// every stream, then the queue — in that order).
  FleetSnapshotData CaptureSnapshot();
  /// Cuts a snapshot when snapshot_every rows have been absorbed since the
  /// last one. Called after each push, outside all locks.
  void MaybeAutoSnapshot();
  /// One shed/overload event: bumps the strike counter and latches sticky
  /// degraded mode at degraded_after consecutive strikes.
  void RecordShedStrike();
  /// Watchdog thread body: flags batches in flight > watchdog_stall_ms.
  void WatchdogLoop();

  core::TfmaeDetector* detector_;
  FleetOptions options_;
  float default_threshold_ = 0.0f;
  /// Crc32(ConfigToString(detector config)), stamped into every snapshot
  /// and verified on Restore.
  std::uint32_t config_crc_ = 0;

  // Stream slots are preallocated; OpenStream fills slot [num_streams_] and
  // then publishes the new count, so Push can index lock-free.
  std::vector<std::unique_ptr<Entry>> streams_;
  std::atomic<std::int64_t> num_streams_{0};
  std::mutex open_mu_;

  std::mutex queue_mu_;
  std::deque<Request> queue_;

  // One batched pass at a time: the process-wide ThreadPool supports a
  // single dispatching thread (util/thread_pool.h), so batch execution is
  // serialized here while ingest continues concurrently.
  std::mutex score_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Sticky int8 demotion: set when a quantized lane capture fails, so the
  /// server never mixes int8 and fp32 lanes in one batch. Guarded by
  /// score_mu_; the counter is read by stats() without it.
  bool quant_capture_failed_ = false;
  std::atomic<std::int64_t> quant_lane_fallbacks_{0};

  std::mutex results_mu_;
  std::vector<ScoredWindow> results_;

  // Counters (atomics: bumped from ingest and scoring paths concurrently).
  std::atomic<std::int64_t> rows_pushed_{0};
  std::atomic<std::int64_t> rows_overloaded_{0};
  std::atomic<std::int64_t> rows_rejected_{0};
  std::atomic<std::int64_t> rows_quarantined_{0};
  std::atomic<std::int64_t> rows_warmup_{0};
  std::atomic<std::int64_t> windows_enqueued_{0};
  std::atomic<std::int64_t> windows_scored_{0};
  std::atomic<std::int64_t> eager_windows_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> max_batch_{0};
  std::atomic<std::int64_t> alerts_{0};
  std::atomic<std::int64_t> peak_queue_depth_{0};
  std::atomic<std::int64_t> shed_dropped_{0};
  std::atomic<std::int64_t> shed_deadline_expired_{0};
  std::atomic<std::int64_t> shed_strikes_{0};  ///< consecutive; reset on admit
  std::atomic<bool> degraded_{false};          ///< sticky saturation latch
  std::atomic<bool> draining_{false};          ///< set by Drain, never cleared

  // Snapshot plumbing. snapshot_index_ is the index of the newest snapshot
  // cut (the next one is index + 1); last_snapshot_rows_ is the rows_pushed_
  // watermark at which it was cut (MaybeAutoSnapshot's cadence source).
  std::atomic<std::uint64_t> snapshot_index_{0};
  std::atomic<std::int64_t> last_snapshot_rows_{0};
  std::atomic<std::int64_t> snapshots_written_{0};
  std::atomic<std::int64_t> snapshots_failed_{0};

  // Watchdog: ScoreBatchLocked publishes the wall-clock start of the batch
  // in flight (0 = idle); the watchdog thread flags a batch that stays in
  // flight past watchdog_stall_ms, once per batch.
  std::atomic<std::uint64_t> batch_start_ns_{0};
  std::atomic<std::int64_t> watchdog_stalls_{0};
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  ///< guarded by watchdog_mu_

  // Per-window score latency: fixed log2 histogram (serve.score.window_ns),
  // guarded by latency_mu_. The stage sums and the experienced-latency
  // (admit->commit) histogram share the lock: all are written once per
  // batch from the accounting pass.
  std::mutex latency_mu_;
  static constexpr int kLatencyBuckets = 64;
  std::uint64_t latency_counts_[kLatencyBuckets] = {};
  std::uint64_t latency_min_ns_ = 0;
  std::uint64_t latency_max_ns_ = 0;
  std::uint64_t stage_queue_sum_ns_ = 0;
  std::uint64_t stage_batch_sum_ns_ = 0;
  std::uint64_t stage_score_sum_ns_ = 0;
  std::uint64_t stage_result_sum_ns_ = 0;
  std::uint64_t e2e_counts_[kLatencyBuckets] = {};
  std::uint64_t e2e_min_ns_ = 0;
  std::uint64_t e2e_max_ns_ = 0;
  bool drained_event_emitted_ = false;

  // Per-stream SLO accounting (rings live in each Entry, under entry.mu;
  // these are the fleet-wide totals).
  std::atomic<std::int64_t> slo_latency_breaches_{0};
  std::atomic<std::int64_t> slo_staleness_breaches_{0};
  std::atomic<std::int64_t> slo_exhausted_streams_{0};
  std::atomic<std::int64_t> slo_exhausted_episodes_{0};

  // Sampled-timeline cadence: one sample per trace_sample scored windows.
  std::atomic<std::uint64_t> trace_counter_{0};

  // Online drift monitor (guarded by drift_mu_ except the two counters,
  // which stats() reads without it).
  std::mutex drift_mu_;
  core::ScoreDistribution drift_ref_;
  std::vector<float> drift_ring_;  ///< newest drift_reservoir scores
  std::size_t drift_pos_ = 0;
  std::uint64_t drift_seen_ = 0;
  std::int64_t drift_since_check_ = 0;
  double drift_ks_ = 0.0;  ///< latest K-S distance
  std::atomic<std::int64_t> drift_checks_{0};
  std::atomic<std::int64_t> drift_alarms_{0};
};

}  // namespace tfmae::serve

#endif  // TFMAE_SERVE_FLEET_SERVER_H_
