// Crash-safe fleet snapshots — the serving half of the resilience plane
// (docs/RESILIENCE.md, "Serving resilience").
//
// A long-running FleetServer holds the only copy of N-thousand StreamStates:
// warm-up history, LOCF repair state, hop cadence, quarantine statistics.
// A killed process loses all of it, and re-warming a fleet from cold costs
// `window` rows per stream before the first score. A FleetSnapshot persists
// the whole serving state — every stream, the pending ready-window queue,
// and the server counters — through the same CRC-sectioned
// util/checkpoint_file container the training checkpoints use: atomic
// tmp+rename writes, per-section CRC-32, whole-file CRC, so a torn or
// bit-flipped snapshot is detected and skipped as a unit.
//
// Recovery policy mirrors core/checkpoint.h: snapshots are numbered
// "fleet_<index>.tfmae" inside a directory, FindLatestValidFleetSnapshot
// walks from the highest index down past corrupt files, and old snapshots
// are pruned to keep_last. Restore semantics (FleetServer::Restore): the
// restored server, re-fed each stream's rows from its recorded
// total_pushed() on, produces scores bitwise-identical to an uninterrupted
// run at any thread count — the contract tests/serve_resilience_test.cc and
// `scripts/check.sh chaos` enforce with a kill -9.
#ifndef TFMAE_SERVE_FLEET_SNAPSHOT_H_
#define TFMAE_SERVE_FLEET_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/streaming.h"

namespace tfmae::serve {

/// Bumped when the snapshot layout changes; readers reject other versions.
constexpr std::uint32_t kFleetSnapshotVersion = 1;

/// One queued-but-unscored ready window, exactly as FleetServer holds it:
/// a value snapshot plus the metadata its eventual result carries. Captured
/// so a snapshot taken between enqueue and Flush loses nothing.
struct PendingWindow {
  std::int64_t stream = -1;
  std::int64_t seq = -1;
  std::int64_t fresh = 0;
  std::int32_t imputed = 0;
  std::vector<float> values;
};

/// Cumulative server counters, persisted so operational accounting survives
/// a restart (a restored server's stats() continue, not reset).
struct FleetCounters {
  std::int64_t rows_pushed = 0;
  std::int64_t rows_overloaded = 0;
  std::int64_t rows_rejected = 0;
  std::int64_t rows_quarantined = 0;
  std::int64_t rows_warmup = 0;
  std::int64_t windows_enqueued = 0;
  std::int64_t windows_scored = 0;
  std::int64_t alerts = 0;
  std::int64_t shed_dropped = 0;
  std::int64_t shed_deadline_expired = 0;
};

/// The complete persisted serving state of one FleetServer.
struct FleetSnapshotData {
  /// Crc32(ConfigToString(detector config)): a snapshot must not be
  /// restored against a different model architecture or training recipe.
  std::uint32_t config_crc = 0;
  /// Monotone snapshot index (the filename's <index>); restore continues
  /// numbering from here.
  std::uint64_t index = 0;
  /// The fleet's per-stream windowing/repair configuration. Restore refuses
  /// a server constructed with different options — the hop cadence and
  /// repair behaviour are part of the state's meaning.
  core::StreamingOptions streaming;
  float threshold = 0.0f;
  FleetCounters counters;
  /// StreamState::EncodeTo payloads, indexed by stream id.
  std::vector<std::vector<char>> stream_states;
  /// The ready-window queue in admission order.
  std::vector<PendingWindow> pending;
};

/// Serializes `data` to `path` atomically (tmp+rename through the
/// checkpoint container). Returns false on I/O failure; any previous file
/// at `path` survives. Fault point: "io.checkpoint_write" (inherited from
/// the container writer).
bool WriteFleetSnapshot(const FleetSnapshotData& data, const std::string& path,
                        std::string* error = nullptr);

/// Opens and fully validates one snapshot; nullopt (reason in `*error`) on
/// corruption, truncation, or a version/layout mismatch.
std::optional<FleetSnapshotData> ReadFleetSnapshot(const std::string& path,
                                                   std::string* error = nullptr);

/// "<dir>/fleet_<index padded to 8>.tfmae".
std::string FleetSnapshotPath(const std::string& dir, std::uint64_t index);

/// Newest fully-valid snapshot in `dir` (highest index first, walking down
/// past corrupt/torn files — the newest-valid fallback the chaos soak
/// exercises by corrupting the newest file). nullopt when none validates.
std::optional<std::pair<std::string, FleetSnapshotData>>
FindLatestValidFleetSnapshot(const std::string& dir,
                             std::string* error = nullptr);

/// Deletes all but the `keep_last` highest-index "fleet_*.tfmae" files.
void PruneFleetSnapshots(const std::string& dir, int keep_last);

}  // namespace tfmae::serve

#endif  // TFMAE_SERVE_FLEET_SNAPSHOT_H_
