// Calibration score reference distribution (core/drift.h).
#include "core/drift.h"

#include <cmath>
#include <utility>

#include "util/checkpoint_file.h"

namespace tfmae::core {
namespace {

constexpr std::uint32_t kScoreRefVersion = 1;

// Hard ceiling on the decoded bin count: a corrupt length prefix must fail
// the decode, not drive a huge allocation.
constexpr std::uint64_t kMaxBins = 1 << 16;

}  // namespace

ScoreDistribution BuildScoreDistribution(const std::vector<float>& scores,
                                         int bins) {
  ScoreDistribution dist;
  if (bins <= 0) return dist;
  double lo = 0.0;
  double hi = 0.0;
  bool seen = false;
  for (float s : scores) {
    if (!std::isfinite(s)) continue;
    const double v = static_cast<double>(s);
    if (!seen) {
      lo = hi = v;
      seen = true;
    } else {
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
  }
  if (!seen) return dist;
  dist.lo = lo;
  dist.hi = hi;
  dist.buckets.assign(static_cast<std::size_t>(bins), 0);
  for (float s : scores) {
    if (!std::isfinite(s)) continue;
    const int b = ScoreDistributionBin(dist, static_cast<double>(s));
    ++dist.buckets[static_cast<std::size_t>(b)];
    ++dist.count;
  }
  return dist;
}

int ScoreDistributionBin(const ScoreDistribution& dist, double value) {
  const int bins = static_cast<int>(dist.buckets.size());
  if (bins <= 1) return 0;
  const double width = (dist.hi - dist.lo) / static_cast<double>(bins);
  if (!(width > 0.0)) return 0;  // constant calibration: everything in bin 0
  int b = static_cast<int>(std::floor((value - dist.lo) / width));
  if (b < 0) b = 0;
  if (b >= bins) b = bins - 1;
  return b;
}

std::vector<char> EncodeScoreDistribution(const ScoreDistribution& dist) {
  util::ByteWriter w;
  w.U32(kScoreRefVersion);
  w.F64(dist.lo);
  w.F64(dist.hi);
  w.U64(dist.count);
  w.U32(static_cast<std::uint32_t>(dist.buckets.size()));
  for (std::uint64_t b : dist.buckets) w.U64(b);
  return w.Take();
}

bool DecodeScoreDistribution(const std::vector<char>& payload,
                             ScoreDistribution* dist) {
  util::ByteReader r(payload);
  std::uint32_t version = 0;
  if (!r.U32(&version) || version != kScoreRefVersion) return false;
  ScoreDistribution out;
  std::uint32_t bins = 0;
  if (!r.F64(&out.lo) || !r.F64(&out.hi) || !r.U64(&out.count) ||
      !r.U32(&bins)) {
    return false;
  }
  if (bins > kMaxBins) return false;
  if (!std::isfinite(out.lo) || !std::isfinite(out.hi) || out.hi < out.lo) {
    return false;
  }
  out.buckets.resize(bins);
  std::uint64_t total = 0;
  for (std::uint64_t& b : out.buckets) {
    if (!r.U64(&b)) return false;
    total += b;
  }
  if (total != out.count) return false;
  if (!r.AtEnd()) return false;
  *dist = std::move(out);
  return true;
}

bool SaveScoreDistribution(const ScoreDistribution& dist,
                           const std::string& path) {
  util::CheckpointFileWriter writer;
  writer.AddSection(kScoreRefSection, EncodeScoreDistribution(dist));
  return writer.WriteAtomic(path);
}

bool LoadScoreDistribution(const std::string& path, ScoreDistribution* dist,
                           std::string* error) {
  auto reader = util::CheckpointFileReader::Open(path, error);
  if (!reader.has_value()) return false;
  const std::vector<char>* payload = reader->Section(kScoreRefSection);
  if (payload == nullptr) {
    if (error != nullptr) *error = "drift: no score_ref section in " + path;
    return false;
  }
  if (!DecodeScoreDistribution(*payload, dist)) {
    if (error != nullptr) *error = "drift: score_ref payload is corrupt";
    return false;
  }
  return true;
}

}  // namespace tfmae::core
