#include "core/streaming.h"

#include <algorithm>

#include "eval/detection.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::core {

StreamingDetector::StreamingDetector(AnomalyDetector* detector,
                                     StreamingOptions options)
    : detector_(detector), options_(options) {
  TFMAE_CHECK(detector != nullptr);
  TFMAE_CHECK(options.window >= 2 && options.hop >= 1);
}

void StreamingDetector::CalibrateThreshold(
    const std::vector<float>& calibration_scores, double anomaly_fraction) {
  threshold_ = eval::QuantileThreshold(calibration_scores, anomaly_fraction);
}

std::optional<StreamingResult> StreamingDetector::Push(
    const std::vector<float>& observation) {
  TFMAE_TRACE("core.streaming.push");
  if (num_features_ < 0) {
    num_features_ = static_cast<std::int64_t>(observation.size());
    TFMAE_CHECK(num_features_ >= 1);
    buffer_.reserve(
        static_cast<std::size_t>(options_.window * num_features_));
  }
  TFMAE_CHECK_MSG(static_cast<std::int64_t>(observation.size()) ==
                      num_features_,
                  "observation width changed mid-stream");

  if (buffered_rows_ == options_.window) {
    // Slide: drop the oldest row.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(num_features_));
    --buffered_rows_;
  }
  buffer_.insert(buffer_.end(), observation.begin(), observation.end());
  ++buffered_rows_;
  ++total_pushed_;

  if (buffered_rows_ < options_.window) return std::nullopt;

  ++pushes_since_rescore_;
  if (pushes_since_rescore_ >= options_.hop ||
      total_pushed_ == options_.window) {
    data::TimeSeries window_series;
    window_series.length = options_.window;
    window_series.num_features = num_features_;
    window_series.values = buffer_;
    TFMAE_COUNTER_ADD("core.streaming.rescores", 1);
    const std::vector<float> scores = detector_->Score(window_series);
    // Emit the maximum over the segment scored fresh since the previous
    // rescore, so an anomaly anywhere inside the hop segment is surfaced.
    const std::int64_t fresh =
        std::min<std::int64_t>(pushes_since_rescore_, options_.window);
    last_tail_score_ = 0.0f;
    for (std::int64_t k = options_.window - fresh; k < options_.window; ++k) {
      last_tail_score_ =
          std::max(last_tail_score_, scores[static_cast<std::size_t>(k)]);
    }
    pushes_since_rescore_ = 0;
  }
  StreamingResult result;
  result.score = last_tail_score_;
  result.is_anomaly = last_tail_score_ >= threshold_;
  TFMAE_COUNTER_ADD("core.streaming.scores", 1);
  if (result.is_anomaly) TFMAE_COUNTER_ADD("core.streaming.alerts", 1);
  return result;
}

}  // namespace tfmae::core
