#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "eval/detection.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"

namespace tfmae::core {

StreamState::StreamState(StreamingOptions options) : options_(options) {
  TFMAE_CHECK(options.window >= 2 && options.hop >= 1);
  TFMAE_CHECK(options.impute_staleness_cap >= 0);
  TFMAE_CHECK(options.quarantine_sigma >= 0.0);
  // Register the degraded-input counters up front so a clean stream's dump
  // shows them at 0 rather than omitting them.
  TFMAE_COUNTER_ADD("streaming.degraded.imputed_rows", 0);
  TFMAE_COUNTER_ADD("streaming.degraded.imputed_values", 0);
  TFMAE_COUNTER_ADD("streaming.degraded.quarantined_rows", 0);
  TFMAE_COUNTER_ADD("streaming.degraded.rejected_rows", 0);
}

float StreamState::TailScore(const std::vector<float>& window_scores,
                             std::int64_t window, std::int64_t fresh) {
  float tail = 0.0f;
  for (std::int64_t k = window - fresh; k < window; ++k) {
    tail = std::max(tail, window_scores[static_cast<std::size_t>(k)]);
  }
  return tail;
}

std::int64_t StreamState::ApproxBytes() const {
  auto bytes = static_cast<std::int64_t>(sizeof(StreamState));
  bytes += static_cast<std::int64_t>(buffer_.capacity() * sizeof(float));
  bytes += static_cast<std::int64_t>(last_good_.capacity() * sizeof(float));
  bytes += static_cast<std::int64_t>(has_last_good_.capacity() / 8);
  bytes +=
      static_cast<std::int64_t>(staleness_.capacity() * sizeof(std::int64_t));
  bytes += static_cast<std::int64_t>(stats_mean_.capacity() * sizeof(double));
  bytes += static_cast<std::int64_t>(stats_m2_.capacity() * sizeof(double));
  return bytes;
}

namespace {

// Bump when the StreamState wire layout changes; DecodeFrom rejects other
// versions instead of misinterpreting bytes.
constexpr std::uint32_t kStreamStateVersion = 1;

void EncodeF64Array(util::ByteWriter* writer, const std::vector<double>& v) {
  writer->U64(static_cast<std::uint64_t>(v.size()));
  writer->Raw(v.data(), v.size() * sizeof(double));
}

bool DecodeF64Array(util::ByteReader* reader, std::vector<double>* v,
                    std::uint64_t expect) {
  std::uint64_t count = 0;
  if (!reader->U64(&count) || count != expect) return false;
  v->resize(static_cast<std::size_t>(count));
  return reader->Raw(v->data(), static_cast<std::size_t>(count) * sizeof(double));
}

}  // namespace

void StreamState::EncodeTo(util::ByteWriter* writer) const {
  writer->U32(kStreamStateVersion);
  writer->I64(num_features_);
  writer->I64(buffered_rows_);
  writer->I64(total_pushed_);
  writer->I64(pushes_since_rescore_);
  writer->U32(scored_once_ ? 1 : 0);
  writer->F32(last_tail_score_);
  writer->F32(threshold_);
  writer->U32(static_cast<std::uint32_t>(last_push_status_));
  writer->I64(health_.rows_scored);
  writer->I64(health_.rows_warmup);
  writer->I64(health_.rows_imputed);
  writer->I64(health_.rows_quarantined);
  writer->I64(health_.rows_rejected);
  writer->I64(health_.values_imputed);
  writer->FloatArray(buffer_);
  writer->FloatArray(last_good_);
  std::vector<char> flags(has_last_good_.begin(), has_last_good_.end());
  writer->U64(static_cast<std::uint64_t>(flags.size()));
  writer->Raw(flags.data(), flags.size());
  writer->I64Array(staleness_);
  writer->I64(stats_count_);
  EncodeF64Array(writer, stats_mean_);
  EncodeF64Array(writer, stats_m2_);
}

bool StreamState::DecodeFrom(util::ByteReader* reader) {
  std::uint32_t version = 0;
  if (!reader->U32(&version) || version != kStreamStateVersion) return false;
  std::uint32_t scored_once = 0;
  std::uint32_t status = 0;
  if (!reader->I64(&num_features_) || !reader->I64(&buffered_rows_) ||
      !reader->I64(&total_pushed_) || !reader->I64(&pushes_since_rescore_) ||
      !reader->U32(&scored_once) || !reader->F32(&last_tail_score_) ||
      !reader->F32(&threshold_) || !reader->U32(&status)) {
    return false;
  }
  scored_once_ = scored_once != 0;
  if (status > static_cast<std::uint32_t>(PushStatus::kQuarantined)) {
    return false;
  }
  last_push_status_ = static_cast<PushStatus>(status);
  if (!reader->I64(&health_.rows_scored) || !reader->I64(&health_.rows_warmup) ||
      !reader->I64(&health_.rows_imputed) ||
      !reader->I64(&health_.rows_quarantined) ||
      !reader->I64(&health_.rows_rejected) ||
      !reader->I64(&health_.values_imputed)) {
    return false;
  }
  if (!reader->FloatArray(&buffer_) || !reader->FloatArray(&last_good_)) {
    return false;
  }
  std::uint64_t flag_count = 0;
  if (!reader->U64(&flag_count) || flag_count > (1u << 20)) return false;
  std::vector<char> flags(static_cast<std::size_t>(flag_count));
  if (!reader->Raw(flags.data(), flags.size())) return false;
  has_last_good_.assign(flags.begin(), flags.end());
  if (!reader->I64Array(&staleness_) || !reader->I64(&stats_count_)) {
    return false;
  }
  const std::uint64_t features =
      num_features_ > 0 ? static_cast<std::uint64_t>(num_features_) : 0;
  if (!DecodeF64Array(reader, &stats_mean_, features) ||
      !DecodeF64Array(reader, &stats_m2_, features)) {
    return false;
  }

  // Internal-consistency checks: a CRC-valid container can still hold a
  // payload this code never wrote (version skew caught above, but also any
  // logic bug on the encode side). Refuse instead of serving from it.
  if (num_features_ < -1 || num_features_ == 0) return false;
  if (num_features_ == -1) {
    return buffered_rows_ == 0 && total_pushed_ == 0 && buffer_.empty() &&
           last_good_.empty() && has_last_good_.empty() && staleness_.empty();
  }
  const auto n = static_cast<std::size_t>(num_features_);
  if (buffered_rows_ < 0 || buffered_rows_ > options_.window) return false;
  if (buffer_.size() != static_cast<std::size_t>(buffered_rows_) * n) {
    return false;
  }
  if (last_good_.size() != n || has_last_good_.size() != n ||
      staleness_.size() != n) {
    return false;
  }
  if (total_pushed_ < buffered_rows_ || pushes_since_rescore_ < 0 ||
      stats_count_ < 0) {
    return false;
  }
  buffer_.reserve(static_cast<std::size_t>(options_.window) * n);
  return true;
}

PushStatus StreamState::SanitizeRow(std::vector<float>* row,
                                    std::int32_t* imputed) {
  *imputed = 0;
  const std::size_t n = static_cast<std::size_t>(num_features_);
  std::vector<unsigned char> imputed_mask(n, 0);

  // Pass 1: repair non-finite values by LOCF where possible.
  bool over_staleness = false;
  for (std::size_t f = 0; f < n; ++f) {
    if (std::isfinite((*row)[f])) continue;
    if (!has_last_good_[f]) {
      // Nothing to carry forward (missing value before any good one): the
      // row cannot be repaired, so refuse it without consuming it.
      TFMAE_COUNTER_ADD("streaming.degraded.rejected_rows", 1);
      ++health_.rows_rejected;
      return PushStatus::kRejected;
    }
    (*row)[f] = last_good_[f];
    imputed_mask[f] = 1;
    ++*imputed;
    if (staleness_[f] + 1 > options_.impute_staleness_cap) {
      over_staleness = true;
    }
  }

  // Pass 2: range check against running statistics (imputed values already
  // passed it when first measured, but re-checking them is harmless).
  bool out_of_range = false;
  if (options_.quarantine_sigma > 0.0 &&
      stats_count_ >= std::max<std::int64_t>(options_.quarantine_warmup, 2)) {
    for (std::size_t f = 0; f < n && !out_of_range; ++f) {
      if (imputed_mask[f]) continue;
      const double variance =
          stats_m2_[f] / static_cast<double>(stats_count_ - 1);
      const double limit =
          options_.quarantine_sigma * std::sqrt(std::max(variance, 0.0));
      if (limit > 0.0 &&
          std::abs(static_cast<double>((*row)[f]) - stats_mean_[f]) > limit) {
        out_of_range = true;
      }
    }
  }

  if (over_staleness || out_of_range) {
    // Quarantine: substitute the last good value for EVERY feature so the
    // window keeps sliding on trusted data, but emit no score for this row.
    // Every feature counts as imputed for staleness purposes — even measured
    // ones, whose values were discarded.
    for (std::size_t f = 0; f < n; ++f) {
      (*row)[f] = last_good_[f];
      ++staleness_[f];
    }
    TFMAE_COUNTER_ADD("streaming.degraded.quarantined_rows", 1);
    ++health_.rows_quarantined;
    return PushStatus::kQuarantined;
  }

  // The row is accepted: fold its measured values into the LOCF sources and
  // running statistics; staleness continues counting for imputed features
  // and resets for ones that reported.
  ++stats_count_;
  for (std::size_t f = 0; f < n; ++f) {
    if (imputed_mask[f]) {
      ++staleness_[f];
      continue;  // keep the statistics unbiased: only measured values enter
    }
    staleness_[f] = 0;
    last_good_[f] = (*row)[f];
    has_last_good_[f] = true;
    const double delta = static_cast<double>((*row)[f]) - stats_mean_[f];
    stats_mean_[f] += delta / static_cast<double>(stats_count_);
    stats_m2_[f] +=
        delta * (static_cast<double>((*row)[f]) - stats_mean_[f]);
  }

  if (*imputed > 0) {
    TFMAE_COUNTER_ADD("streaming.degraded.imputed_rows", 1);
    TFMAE_COUNTER_ADD("streaming.degraded.imputed_values", *imputed);
    ++health_.rows_imputed;
    health_.values_imputed += *imputed;
  }
  return PushStatus::kScored;
}

AbsorbOutcome StreamState::Absorb(const std::vector<float>& observation) {
  AbsorbOutcome outcome;
  if (num_features_ < 0) {
    // First push fixes the arity. A first row with no finite values at all
    // is rejected below, but it still fixes the width: the source has
    // declared its schema even if its values are junk.
    num_features_ = static_cast<std::int64_t>(observation.size());
    TFMAE_CHECK_MSG(num_features_ >= 1, "empty observation on first push");
    buffer_.reserve(static_cast<std::size_t>(options_.window * num_features_));
    last_good_.assign(static_cast<std::size_t>(num_features_), 0.0f);
    has_last_good_.assign(static_cast<std::size_t>(num_features_), false);
    staleness_.assign(static_cast<std::size_t>(num_features_), 0);
    stats_mean_.assign(static_cast<std::size_t>(num_features_), 0.0);
    stats_m2_.assign(static_cast<std::size_t>(num_features_), 0.0);
  }
  if (static_cast<std::int64_t>(observation.size()) != num_features_) {
    // Wrong arity: a malformed record from the transport. Refuse it with a
    // typed status instead of corrupting the window (or CHECK-aborting a
    // long-lived service).
    TFMAE_COUNTER_ADD("streaming.degraded.rejected_rows", 1);
    ++health_.rows_rejected;
    last_push_status_ = PushStatus::kRejected;
    outcome.status = PushStatus::kRejected;
    outcome.wrong_arity = true;
    return outcome;
  }

  std::vector<float> row = observation;
  if (TFMAE_FAULT("streaming.corrupt_value")) {
    row[0] = std::numeric_limits<float>::quiet_NaN();
  }
  std::int32_t imputed = 0;
  const PushStatus sanitize_status = SanitizeRow(&row, &imputed);
  if (sanitize_status == PushStatus::kRejected) {
    last_push_status_ = PushStatus::kRejected;
    outcome.status = PushStatus::kRejected;
    return outcome;
  }

  if (buffered_rows_ == options_.window) {
    // Slide: drop the oldest row.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(num_features_));
    --buffered_rows_;
  }
  buffer_.insert(buffer_.end(), row.begin(), row.end());
  ++buffered_rows_;
  ++total_pushed_;

  if (sanitize_status == PushStatus::kQuarantined) {
    // The stand-in row advanced the window, but no score is emitted and the
    // hop cadence does not advance either (the row carries no fresh signal).
    last_push_status_ = PushStatus::kQuarantined;
    outcome.status = PushStatus::kQuarantined;
    return outcome;
  }

  if (buffered_rows_ < options_.window) {
    ++health_.rows_warmup;
    last_push_status_ = PushStatus::kWarmup;
    outcome.status = PushStatus::kWarmup;
    outcome.imputed_values = imputed;
    return outcome;
  }

  ++pushes_since_rescore_;
  if (pushes_since_rescore_ >= options_.hop || !scored_once_) {
    scored_once_ = true;
    outcome.rescore_due = true;
    // The segment scored fresh since the previous rescore; the owner emits
    // the maximum over it so an anomaly anywhere inside the hop segment is
    // surfaced (see TailScore).
    outcome.fresh =
        std::min<std::int64_t>(pushes_since_rescore_, options_.window);
    pushes_since_rescore_ = 0;
  }
  ++health_.rows_scored;
  last_push_status_ = PushStatus::kScored;
  outcome.status = PushStatus::kScored;
  outcome.imputed_values = imputed;
  return outcome;
}

StreamingDetector::StreamingDetector(AnomalyDetector* detector,
                                     StreamingOptions options)
    : detector_(detector), state_(options) {
  TFMAE_CHECK(detector != nullptr);
}

void StreamingDetector::CalibrateThreshold(
    const std::vector<float>& calibration_scores, double anomaly_fraction) {
  state_.set_threshold(
      eval::QuantileThreshold(calibration_scores, anomaly_fraction));
}

std::optional<StreamingResult> StreamingDetector::Push(
    const std::vector<float>& observation) {
  TFMAE_TRACE("core.streaming.push");
  const AbsorbOutcome outcome = state_.Absorb(observation);

  if (outcome.status == PushStatus::kRejected) {
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().StreamEvent("reject", state_.total_pushed(),
                                          0.0);
    }
    if (outcome.wrong_arity && obs::FlightRecorderActive()) {
      obs::FlightRecorder::Instance().Note(
          "stream", "wrong-arity row rejected after " +
                        std::to_string(state_.total_pushed()) + " rows");
    }
    return std::nullopt;
  }
  if (outcome.status == PushStatus::kQuarantined) {
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().StreamEvent("quarantine",
                                          state_.total_pushed() - 1, 0.0);
    }
    if (obs::FlightRecorderActive()) {
      obs::FlightRecorder::Instance().Note(
          "stream",
          "row " + std::to_string(state_.total_pushed() - 1) + " quarantined");
    }
    return std::nullopt;
  }
  if (outcome.status == PushStatus::kWarmup) {
    return std::nullopt;
  }

  if (outcome.rescore_due) {
    const StreamingOptions& options = state_.options();
    data::TimeSeries window_series;
    window_series.length = options.window;
    window_series.num_features = state_.num_features();
    window_series.values = state_.window();
    TFMAE_COUNTER_ADD("core.streaming.rescores", 1);
    // Every rescore reuses the same window geometry, so after the first
    // Score the detector's captured inference plan (DESIGN.md §10) replays
    // allocation-free for the lifetime of the stream.
    const std::vector<float> scores = detector_->Score(window_series);
    state_.CommitRescore(
        StreamState::TailScore(scores, options.window, outcome.fresh));
    TFMAE_GAUGE_SET("streaming.bytes_per_stream", state_.ApproxBytes());
  }
  StreamingResult result;
  result.score = state_.last_tail_score();
  result.is_anomaly = result.score >= state_.threshold();
  result.degraded = outcome.imputed_values > 0;
  result.imputed_values = outcome.imputed_values;
  TFMAE_COUNTER_ADD("core.streaming.scores", 1);
  if (result.is_anomaly) {
    TFMAE_COUNTER_ADD("core.streaming.alerts", 1);
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().StreamEvent("alert", state_.total_pushed() - 1,
                                          static_cast<double>(result.score));
    }
  }
  return result;
}

}  // namespace tfmae::core
