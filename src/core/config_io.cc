#include "core/config_io.h"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace tfmae::core {
namespace {

std::string TemporalMaskName(masking::TemporalMaskVariant variant) {
  switch (variant) {
    case masking::TemporalMaskVariant::kCoefficientOfVariation:
      return "cv";
    case masking::TemporalMaskVariant::kStdDev:
      return "stddev";
    case masking::TemporalMaskVariant::kRandom:
      return "random";
    case masking::TemporalMaskVariant::kNone:
      return "none";
  }
  return "cv";
}

std::string FrequencyMaskName(masking::FrequencyMaskVariant variant) {
  switch (variant) {
    case masking::FrequencyMaskVariant::kAmplitude:
      return "amplitude";
    case masking::FrequencyMaskVariant::kHighFrequency:
      return "high_frequency";
    case masking::FrequencyMaskVariant::kRandom:
      return "random";
    case masking::FrequencyMaskVariant::kNone:
      return "none";
  }
  return "amplitude";
}

// Field registry: each entry knows how to print itself and parse a value.
struct Field {
  std::function<std::string(const TfmaeConfig&)> print;
  std::function<bool(const std::string&, TfmaeConfig*)> parse;
};

template <typename T>
bool ParseNumber(const std::string& text, T* out) {
  std::istringstream stream(text);
  stream >> *out;
  return static_cast<bool>(stream) && stream.eof();
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

const std::map<std::string, Field>& Registry() {
  auto number_field = [](auto member) {
    return Field{
        [member](const TfmaeConfig& c) {
          std::ostringstream out;
          out << c.*member;
          return out.str();
        },
        [member](const std::string& text, TfmaeConfig* c) {
          return ParseNumber(text, &(c->*member));
        }};
  };
  auto bool_field = [](bool TfmaeConfig::* member) {
    return Field{
        [member](const TfmaeConfig& c) { return c.*member ? "true" : "false"; },
        [member](const std::string& text, TfmaeConfig* c) {
          return ParseBool(text, &(c->*member));
        }};
  };
  static const std::map<std::string, Field> registry = {
      {"window", number_field(&TfmaeConfig::window)},
      {"model_dim", number_field(&TfmaeConfig::model_dim)},
      {"num_layers", number_field(&TfmaeConfig::num_layers)},
      {"num_heads", number_field(&TfmaeConfig::num_heads)},
      {"ff_hidden", number_field(&TfmaeConfig::ff_hidden)},
      {"cv_window", number_field(&TfmaeConfig::cv_window)},
      {"temporal_mask_ratio", number_field(&TfmaeConfig::temporal_mask_ratio)},
      {"frequency_mask_ratio",
       number_field(&TfmaeConfig::frequency_mask_ratio)},
      {"learning_rate", number_field(&TfmaeConfig::learning_rate)},
      {"epochs", number_field(&TfmaeConfig::epochs)},
      {"clip_grad_norm", number_field(&TfmaeConfig::clip_grad_norm)},
      {"stride", number_field(&TfmaeConfig::stride)},
      {"batch_size", number_field(&TfmaeConfig::batch_size)},
      {"seed", number_field(&TfmaeConfig::seed)},
      {"use_adversarial", bool_field(&TfmaeConfig::use_adversarial)},
      {"reverse_adversarial", bool_field(&TfmaeConfig::reverse_adversarial)},
      {"adversarial_weight", number_field(&TfmaeConfig::adversarial_weight)},
      {"joint_alignment", bool_field(&TfmaeConfig::joint_alignment)},
      {"use_frequency_branch",
       bool_field(&TfmaeConfig::use_frequency_branch)},
      {"use_frequency_decoder",
       bool_field(&TfmaeConfig::use_frequency_decoder)},
      {"use_temporal_branch", bool_field(&TfmaeConfig::use_temporal_branch)},
      {"use_temporal_encoder",
       bool_field(&TfmaeConfig::use_temporal_encoder)},
      {"use_temporal_decoder",
       bool_field(&TfmaeConfig::use_temporal_decoder)},
      {"anomaly_fraction", number_field(&TfmaeConfig::anomaly_fraction)},
      {"score_stride", number_field(&TfmaeConfig::score_stride)},
      {"per_window_normalization",
       bool_field(&TfmaeConfig::per_window_normalization)},
      {"temporal_mask",
       Field{[](const TfmaeConfig& c) { return TemporalMaskName(c.temporal_mask); },
             [](const std::string& text, TfmaeConfig* c) {
               if (text == "cv") {
                 c->temporal_mask =
                     masking::TemporalMaskVariant::kCoefficientOfVariation;
               } else if (text == "stddev") {
                 c->temporal_mask = masking::TemporalMaskVariant::kStdDev;
               } else if (text == "random") {
                 c->temporal_mask = masking::TemporalMaskVariant::kRandom;
               } else if (text == "none") {
                 c->temporal_mask = masking::TemporalMaskVariant::kNone;
               } else {
                 return false;
               }
               return true;
             }}},
      {"frequency_mask",
       Field{[](const TfmaeConfig& c) {
               return FrequencyMaskName(c.frequency_mask);
             },
             [](const std::string& text, TfmaeConfig* c) {
               if (text == "amplitude") {
                 c->frequency_mask = masking::FrequencyMaskVariant::kAmplitude;
               } else if (text == "high_frequency") {
                 c->frequency_mask =
                     masking::FrequencyMaskVariant::kHighFrequency;
               } else if (text == "random") {
                 c->frequency_mask = masking::FrequencyMaskVariant::kRandom;
               } else if (text == "none") {
                 c->frequency_mask = masking::FrequencyMaskVariant::kNone;
               } else {
                 return false;
               }
               return true;
             }}},
      {"cv_method",
       Field{[](const TfmaeConfig& c) {
               return std::string(
                   c.cv_method == masking::CvMethod::kFft ? "fft" : "naive");
             },
             [](const std::string& text, TfmaeConfig* c) {
               if (text == "fft") {
                 c->cv_method = masking::CvMethod::kFft;
               } else if (text == "naive") {
                 c->cv_method = masking::CvMethod::kNaive;
               } else {
                 return false;
               }
               return true;
             }}},
  };
  return registry;
}

}  // namespace

std::string ConfigToString(const TfmaeConfig& config) {
  std::ostringstream out;
  out << "# TFMAE configuration\n";
  for (const auto& [key, field] : Registry()) {
    out << key << " = " << field.print(config) << '\n';
  }
  return out.str();
}

std::optional<TfmaeConfig> ConfigFromString(const std::string& text) {
  TfmaeConfig config;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments and whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t equals = line.find('=');
    if (equals == std::string::npos) {
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        Log(LogLevel::kError,
            "config line " + std::to_string(line_number) + ": missing '='");
        return std::nullopt;
      }
      continue;
    }
    auto trim = [](std::string s) {
      const std::size_t begin = s.find_first_not_of(" \t\r");
      const std::size_t end = s.find_last_not_of(" \t\r");
      if (begin == std::string::npos) return std::string();
      return s.substr(begin, end - begin + 1);
    };
    const std::string key = trim(line.substr(0, equals));
    const std::string value = trim(line.substr(equals + 1));
    const auto it = Registry().find(key);
    if (it == Registry().end()) {
      Log(LogLevel::kError, "config: unknown key '" + key + "'");
      return std::nullopt;
    }
    if (!it->second.parse(value, &config)) {
      Log(LogLevel::kError,
          "config: bad value '" + value + "' for key '" + key + "'");
      return std::nullopt;
    }
  }
  return config;
}

bool SaveConfig(const TfmaeConfig& config, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << ConfigToString(config);
  return static_cast<bool>(file);
}

std::optional<TfmaeConfig> LoadConfig(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ConfigFromString(buffer.str());
}

}  // namespace tfmae::core
