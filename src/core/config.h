// TFMAE configuration, including every ablation switch of Tables IV and V.
#ifndef TFMAE_CORE_CONFIG_H_
#define TFMAE_CORE_CONFIG_H_

#include <cstdint>

#include "masking/frequency_mask.h"
#include "masking/temporal_mask.h"

namespace tfmae::core {

/// Hyper-parameters and ablation switches of TFMAE.
///
/// Paper defaults (Section V-A.4): window |S|=100, D=128, L=3, Adam lr 1e-4,
/// one epoch, CV window W=10, per-dataset masking ratios. The defaults below
/// are the proportionally scaled-down settings used on this single-core CPU
/// substrate; tests and benches override as needed.
struct TfmaeConfig {
  // ---- architecture ----
  std::int64_t window = 50;        ///< |S|: training/inference window length
  std::int64_t model_dim = 32;     ///< D: latent width
  std::int64_t num_layers = 2;     ///< L: Transformer layers per stack
  std::int64_t num_heads = 4;      ///< attention heads
  std::int64_t ff_hidden = 64;     ///< feed-forward hidden width

  // ---- masking ----
  std::int64_t cv_window = 10;     ///< W: sliding window of the CV statistic
  double temporal_mask_ratio = 0.5;    ///< r^(T)
  double frequency_mask_ratio = 0.3;   ///< r^(F)
  masking::TemporalMaskVariant temporal_mask =
      masking::TemporalMaskVariant::kCoefficientOfVariation;
  masking::FrequencyMaskVariant frequency_mask =
      masking::FrequencyMaskVariant::kAmplitude;
  masking::CvMethod cv_method = masking::CvMethod::kFft;

  // ---- training ----
  // The paper trains one epoch at lr 1e-4 over hundreds of thousands of
  // stride-1 windows; on the scaled-down substrate the equivalent optimizer
  // budget is reached with more epochs over overlapping windows at a higher
  // learning rate (see DESIGN.md §5).
  float learning_rate = 1e-3f;
  int epochs = 30;
  float clip_grad_norm = 5.0f;
  std::int64_t stride = 25;        ///< training stride; 0 means = window
  /// Windows per optimizer step (gradient accumulation; the paper uses
  /// batches of 64 over far more windows — 1 is right for the scaled data).
  std::int64_t batch_size = 1;
  std::uint64_t seed = 42;

  // ---- objective (Table IV ablations) ----
  bool use_adversarial = true;       ///< false: "w/o L_adv" (Eq. (14) only)
  bool reverse_adversarial = false;  ///< true: "w/ L_radv" (swap P/F roles)
  float adversarial_weight = 0.2f;   ///< weight of the maximizing stage
  /// Substrate adaptation (documented in DESIGN.md): additionally align the
  /// temporal view to the detached frequency view in the minimizing stage.
  /// In the paper's regime (one pass over >10^5 stride-1 windows at lr 1e-4)
  /// the temporal branch barely moves and acts as a quasi-static label; on
  /// the scaled-down substrate it would otherwise receive no alignment
  /// signal at all. The paper-faithful objective (this flag off,
  /// adversarial_weight 1.0) is exercised by the Table IV ablation bench.
  bool joint_alignment = true;

  // ---- architecture ablations (Table IV) ----
  bool use_frequency_branch = true;  ///< false: "w/o Fre"
  bool use_frequency_decoder = true; ///< false: "w/o FD"
  bool use_temporal_branch = true;   ///< false: "w/o Tem"
  bool use_temporal_encoder = true;  ///< false: "w/o TE"
  bool use_temporal_decoder = true;  ///< false: "w/o TD"

  // ---- detection ----
  double anomaly_fraction = 0.01;  ///< r: validation quantile for delta
  /// Scoring stride; 0 means = window (no overlap). Smaller strides score
  /// each point from several window contexts and average, which localizes
  /// the discrepancy.
  std::int64_t score_stride = 0;
  /// Per-window instance normalization (zero mean / unit variance per
  /// feature within each window) on top of the global z-score. Makes both
  /// views insensitive to slow level/scale drift between train and test.
  bool per_window_normalization = true;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_CONFIG_H_
