// Common interface for every detector in the repository (TFMAE and all
// baselines), plus the shared evaluation protocol driver.
#ifndef TFMAE_CORE_ANOMALY_DETECTOR_H_
#define TFMAE_CORE_ANOMALY_DETECTOR_H_

#include <string>
#include <vector>

#include "data/profiles.h"
#include "data/timeseries.h"
#include "eval/detection.h"

namespace tfmae::core {

/// Unsupervised time-series anomaly detector: fit on (unlabeled) training
/// data, then emit one anomaly score per time step of any series.
class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Display name used in reports (e.g. "TFMAE", "LOF", "USAD").
  virtual std::string Name() const = 0;

  /// Trains the detector. Labels on `train`, if any, must be ignored.
  virtual void Fit(const data::TimeSeries& train) = 0;

  /// Per-time-step anomaly scores (higher = more anomalous),
  /// size == series.length. Requires Fit() to have been called.
  virtual std::vector<float> Score(const data::TimeSeries& series) = 0;
};

/// Runs the paper's protocol on one dataset: fit on train, calibrate the
/// threshold on the validation scores at `anomaly_fraction`, evaluate on the
/// test labels with point adjustment.
eval::DetectionReport RunProtocol(AnomalyDetector* detector,
                                  const data::LabeledDataset& dataset,
                                  double anomaly_fraction);

}  // namespace tfmae::core

#endif  // TFMAE_CORE_ANOMALY_DETECTOR_H_
