// Int8 calibration pass and QuantSpec persistence (core/quant.h).
#include "core/quant.h"

#include <cmath>
#include <map>
#include <utility>

#include "core/inference_plan.h"
#include "core/model.h"
#include "util/checkpoint_file.h"

namespace tfmae::core {
namespace {

constexpr std::uint32_t kQuantSpecVersion = 1;

// Hard ceiling on decoded counts: a corrupt length prefix must fail the
// decode, not drive a multi-gigabyte allocation.
constexpr std::int64_t kMaxSites = 4096;
constexpr std::int64_t kMaxChannels = 1 << 20;

}  // namespace

std::vector<char> EncodeQuantSpec(const QuantSpec& spec) {
  util::ByteWriter w;
  w.U32(kQuantSpecVersion);
  w.I64(spec.num_features);
  w.I64(spec.windows);
  w.U32(static_cast<std::uint32_t>(spec.sites.size()));
  for (const QuantSite& s : spec.sites) {
    w.I64(s.weight_index);
    w.I64(s.in_features);
    w.FloatArray(s.absmax);
    w.I64(s.moments.count);
    w.F64(s.moments.mean);
    w.F64(s.moments.m2);
  }
  return w.Take();
}

bool DecodeQuantSpec(const std::vector<char>& payload, QuantSpec* spec) {
  util::ByteReader r(payload);
  std::uint32_t version = 0;
  if (!r.U32(&version) || version != kQuantSpecVersion) return false;
  QuantSpec out;
  std::uint32_t count = 0;
  if (!r.I64(&out.num_features) || !r.I64(&out.windows) || !r.U32(&count)) {
    return false;
  }
  if (count > kMaxSites) return false;
  out.sites.resize(count);
  for (QuantSite& s : out.sites) {
    std::int64_t weight_index = -1;
    if (!r.I64(&weight_index) || !r.I64(&s.in_features) ||
        !r.FloatArray(&s.absmax) || !r.I64(&s.moments.count) ||
        !r.F64(&s.moments.mean) || !r.F64(&s.moments.m2)) {
      return false;
    }
    if (weight_index < 0 || weight_index > kMaxSites) return false;
    s.weight_index = static_cast<int>(weight_index);
    if (s.in_features <= 0 || s.in_features > kMaxChannels ||
        static_cast<std::int64_t>(s.absmax.size()) != s.in_features) {
      return false;
    }
    for (float a : s.absmax) {
      if (!std::isfinite(a) || a < 0.0f) return false;
    }
  }
  if (!r.AtEnd()) return false;
  *spec = std::move(out);
  return true;
}

bool SaveQuantSpec(const QuantSpec& spec, const std::string& path) {
  util::CheckpointFileWriter writer;
  writer.AddSection(kQuantSpecSection, EncodeQuantSpec(spec));
  return writer.WriteAtomic(path);
}

bool LoadQuantSpec(const std::string& path, QuantSpec* spec,
                   std::string* error) {
  auto reader = util::CheckpointFileReader::Open(path, error);
  if (!reader.has_value()) return false;
  const std::vector<char>* payload = reader->Section(kQuantSpecSection);
  if (payload == nullptr) {
    if (error != nullptr) *error = "quant: no quant_spec section in " + path;
    return false;
  }
  if (!DecodeQuantSpec(*payload, spec)) {
    if (error != nullptr) *error = "quant: quant_spec payload is corrupt";
    return false;
  }
  return true;
}

bool CalibrateQuantSpec(const TfmaeModel& model,
                        const std::vector<MaskedWindow>& windows,
                        std::int64_t num_features, QuantSpec* spec,
                        std::string* error) {
  if (windows.empty()) {
    if (error != nullptr) *error = "quant: no calibration windows";
    return false;
  }
  std::vector<float> scores;
  std::string capture_error;
  std::unique_ptr<InferencePlan> plan =
      InferencePlan::Capture(model, windows.front(), &scores, &capture_error);
  if (plan == nullptr) {
    if (error != nullptr) {
      *error = "quant: fp32 calibration plan failed: " + capture_error;
    }
    return false;
  }

  // Sites keyed by stable parameter index; ordered so the encoded spec is
  // deterministic for a given model and window set.
  std::map<int, QuantSite> sites;
  auto observer = [&sites](int weight_index, const float* data,
                           std::int64_t rows, std::int64_t cols) {
    QuantSite& site = sites[weight_index];
    if (site.weight_index < 0) {
      site.weight_index = weight_index;
      site.in_features = cols;
      site.absmax.assign(static_cast<std::size_t>(cols), 0.0f);
    }
    for (std::int64_t i = 0; i < rows; ++i) {
      const float* row = data + i * cols;
      for (std::int64_t j = 0; j < cols; ++j) {
        const float a = std::fabs(row[j]);
        float& mx = site.absmax[static_cast<std::size_t>(j)];
        if (a > mx) mx = a;
        site.moments.Observe(row[j]);
      }
    }
  };
  for (const MaskedWindow& window : windows) {
    if (!plan->Matches(window)) {
      if (error != nullptr) {
        *error = "quant: calibration window geometry mismatch";
      }
      return false;
    }
    plan->ScoreWithActivationObserver(window, &scores, observer);
  }
  if (sites.empty()) {
    if (error != nullptr) *error = "quant: graph has no weight-bearing matmuls";
    return false;
  }

  // Score-head guard: the final layer of each decoder stack is excluded
  // from the spec, so its matmuls stay fp32. The SymKL anomaly score is
  // second-order in the gap between the two views' distributions — on
  // well-reconstructed points that gap is near zero, and int8 noise
  // injected directly into the score-forming logits inflates scores
  // multiplicatively (relative score error grows as training shrinks the
  // fp32 scores). Keeping just these last layers fp32 cuts int8 score
  // error roughly 4x and is what holds point-adjust F1 inside the parity
  // tolerance; quantizing everything upstream is parity-neutral.
  for (int idx : model.ScoreHeadParameterIndices()) sites.erase(idx);
  if (sites.empty()) {
    if (error != nullptr) *error = "quant: no quantizable sites after guard";
    return false;
  }

  spec->num_features = num_features;
  spec->windows = static_cast<std::int64_t>(windows.size());
  spec->sites.clear();
  spec->sites.reserve(sites.size());
  for (auto& [index, site] : sites) spec->sites.push_back(std::move(site));
  return true;
}

}  // namespace tfmae::core
