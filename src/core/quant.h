// Int8 calibration: per-channel activation ranges for the quantized
// inference plan (DESIGN.md §12).
//
// A QuantSpec records, for every weight-bearing matmul in the scoring graph
// (the Linear layers: temporal/frequency input projections, attention
// q/k/v/o projections, feed-forward fc1/fc2), the observed absmax of each
// input channel plus a Welford mean/variance summary, measured by replaying
// calibration windows through the fp32 inference plan with observers
// attached. Sites are keyed by the model's stable parameter index
// (capture::NodeInfo::weight_index), which survives save/load because
// parameter order is the construction order of the network.
//
// The spec is persisted as its own CRC'd section ("quant_spec") in a PR 4
// checkpoint container (<prefix>.quant next to the .weights file), so a
// missing or corrupt calibration file degrades to fp32 scoring instead of
// failing the load.
#ifndef TFMAE_CORE_QUANT_H_
#define TFMAE_CORE_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tfmae::core {

class TfmaeModel;
struct MaskedWindow;

/// Streaming Welford accumulator over every observed activation value of
/// one site (reported in the ledger `quant` event; not used for scales).
struct QuantSiteMoments {
  std::int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Observe(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  double Variance() const {
    return count > 1 ? m2 / static_cast<double>(count - 1) : 0.0;
  }
};

/// Calibrated input ranges of one weight-bearing matmul.
struct QuantSite {
  int weight_index = -1;        ///< stable parameter index of the weight
  std::int64_t in_features = 0; ///< K of the matmul (input channel count)
  std::vector<float> absmax;    ///< per-input-channel |x| maximum, size K
  QuantSiteMoments moments;

  /// Per-tensor activation range: the max over channels. Constant-zero
  /// inputs calibrate to 0; ActivationScale() clamps.
  float TensorAbsMax() const {
    float v = 0.0f;
    for (float a : absmax) v = v > a ? v : a;
    return v;
  }
  /// u8 scale = absmax / 127, clamped to a positive floor so zero-variance
  /// calibration data can never produce a 0/inf/NaN scale.
  float ActivationScale() const {
    const float amax = TensorAbsMax();
    return (amax > 1e-20f ? amax : 1.0f) / 127.0f;
  }
};

/// The full calibration artifact for one fitted model.
struct QuantSpec {
  std::int64_t num_features = 0;  ///< raw feature count the model was fit on
  std::int64_t windows = 0;       ///< calibration windows observed
  std::vector<QuantSite> sites;

  bool empty() const { return sites.empty(); }
  const QuantSite* Find(int weight_index) const {
    for (const QuantSite& s : sites) {
      if (s.weight_index == weight_index) return &s;
    }
    return nullptr;
  }
};

/// Section name inside the checkpoint container.
inline constexpr char kQuantSpecSection[] = "quant_spec";

/// Serializes a QuantSpec into a section payload (ByteWriter format,
/// versioned).
std::vector<char> EncodeQuantSpec(const QuantSpec& spec);

/// Bounds-checked decode; returns false on any truncation, version skew, or
/// implausible length (the caller treats that as "no calibration").
bool DecodeQuantSpec(const std::vector<char>& payload, QuantSpec* spec);

/// Writes `spec` as a "quant_spec" section in a checkpoint container at
/// `path` (atomic tmp+rename). Returns false on I/O failure.
bool SaveQuantSpec(const QuantSpec& spec, const std::string& path);

/// Loads a QuantSpec container written by SaveQuantSpec. Returns false —
/// with a reason in `error` if non-null — on a missing file, a corrupt
/// container/section, or a decode failure; `spec` is untouched then.
bool LoadQuantSpec(const std::string& path, QuantSpec* spec,
                   std::string* error = nullptr);

/// Runs `windows` through a freshly captured fp32 inference plan with
/// absmax/Welford observers on every weight-bearing matmul input and fills
/// `spec`. `num_features` stamps the spec for the feature-count-mismatch
/// refusal at scoring time. Returns false (reason in `error`) when the
/// fp32 plan cannot capture or `windows` is empty — calibration never
/// falls back to an approximation.
bool CalibrateQuantSpec(const TfmaeModel& model,
                        const std::vector<MaskedWindow>& windows,
                        std::int64_t num_features, QuantSpec* spec,
                        std::string* error = nullptr);

}  // namespace tfmae::core

#endif  // TFMAE_CORE_QUANT_H_
