// End-to-end TFMAE detector: normalization, windowed training with the
// adversarial contrastive objective, and per-time-step scoring.
#ifndef TFMAE_CORE_DETECTOR_H_
#define TFMAE_CORE_DETECTOR_H_

#include <memory>
#include <string>

#include "core/anomaly_detector.h"
#include "core/model.h"
#include "nn/adam.h"

namespace tfmae::core {

/// Bookkeeping from the last Fit() call (feeds the Fig. 10 study).
struct TrainStats {
  double fit_seconds = 0.0;            ///< wall time of the whole Fit()
  double mean_loss_first_epoch = 0.0;  ///< Eq. (15) objective, epoch 1
  double mean_loss_last_epoch = 0.0;   ///< Eq. (15) objective, final epoch
  std::int64_t num_windows = 0;        ///< training windows sliced
  std::int64_t num_steps = 0;          ///< optimizer steps taken
  std::int64_t peak_tensor_bytes = 0;  ///< MemoryStats high-watermark
};

/// TFMAE anomaly detector implementing the shared AnomalyDetector protocol.
///
/// Wraps the two-branch masked autoencoder (core/model.h) with everything
/// the protocol needs around it: global z-score normalization fitted on
/// train, window slicing, one-time mask precomputation (masks depend only
/// on the data), Adam optimization of the adversarial contrastive
/// objective (Eq. (15)), and per-time-step symmetric-KL scoring (Eq. (16))
/// with overlapping-window averaging. Fit()/Score() are deterministic for
/// a fixed config and seed at any thread count (DESIGN.md §7).
class TfmaeDetector : public AnomalyDetector {
 public:
  explicit TfmaeDetector(TfmaeConfig config, std::string name = "TFMAE");

  std::string Name() const override { return name_; }

  /// Normalizes (z-score, fitted here), slices training windows, prepares
  /// masks once, then optimizes Eq. (15) with Adam for config.epochs passes.
  void Fit(const data::TimeSeries& train) override;

  /// Per-time-step symmetric-KL anomaly scores. Overlapping window scores
  /// are averaged. Requires Fit().
  std::vector<float> Score(const data::TimeSeries& series) override;

  const TrainStats& train_stats() const { return stats_; }
  const TfmaeConfig& config() const { return config_; }

  /// The trained network (null before Fit).
  TfmaeModel* model() { return model_.get(); }

  /// Persists the complete fitted detector (config, normalizer statistics,
  /// and network weights) under `prefix` (three files: <prefix>.config,
  /// <prefix>.norm, <prefix>.weights). Requires Fit(). Returns false on I/O
  /// failure.
  bool SaveCheckpoint(const std::string& prefix) const;

  /// Restores a detector saved by SaveCheckpoint. The returned detector is
  /// ready to Score() without re-fitting. Returns false on failure (and
  /// leaves this detector unusable until a successful Fit/Load).
  bool LoadCheckpoint(const std::string& prefix);

 private:
  std::string name_;
  TfmaeConfig config_;
  std::unique_ptr<TfmaeModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  TrainStats stats_;
  bool fitted_ = false;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_DETECTOR_H_
