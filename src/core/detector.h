// End-to-end TFMAE detector: normalization, windowed training with the
// adversarial contrastive objective, and per-time-step scoring.
#ifndef TFMAE_CORE_DETECTOR_H_
#define TFMAE_CORE_DETECTOR_H_

#include <memory>
#include <string>

#include "core/anomaly_detector.h"
#include "core/model.h"
#include "nn/adam.h"

namespace tfmae::core {

/// Bookkeeping from the last Fit() call (feeds the Fig. 10 study).
struct TrainStats {
  double fit_seconds = 0.0;
  double mean_loss_first_epoch = 0.0;
  double mean_loss_last_epoch = 0.0;
  std::int64_t num_windows = 0;
  std::int64_t num_steps = 0;
  std::int64_t peak_tensor_bytes = 0;
};

/// TFMAE anomaly detector implementing the shared AnomalyDetector protocol.
class TfmaeDetector : public AnomalyDetector {
 public:
  explicit TfmaeDetector(TfmaeConfig config, std::string name = "TFMAE");

  std::string Name() const override { return name_; }

  /// Normalizes (z-score, fitted here), slices training windows, prepares
  /// masks once, then optimizes Eq. (15) with Adam for config.epochs passes.
  void Fit(const data::TimeSeries& train) override;

  /// Per-time-step symmetric-KL anomaly scores. Overlapping window scores
  /// are averaged. Requires Fit().
  std::vector<float> Score(const data::TimeSeries& series) override;

  const TrainStats& train_stats() const { return stats_; }
  const TfmaeConfig& config() const { return config_; }

  /// The trained network (null before Fit).
  TfmaeModel* model() { return model_.get(); }

  /// Persists the complete fitted detector (config, normalizer statistics,
  /// and network weights) under `prefix` (three files: <prefix>.config,
  /// <prefix>.norm, <prefix>.weights). Requires Fit(). Returns false on I/O
  /// failure.
  bool SaveCheckpoint(const std::string& prefix) const;

  /// Restores a detector saved by SaveCheckpoint. The returned detector is
  /// ready to Score() without re-fitting. Returns false on failure (and
  /// leaves this detector unusable until a successful Fit/Load).
  bool LoadCheckpoint(const std::string& prefix);

 private:
  std::string name_;
  TfmaeConfig config_;
  std::unique_ptr<TfmaeModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  TrainStats stats_;
  bool fitted_ = false;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_DETECTOR_H_
