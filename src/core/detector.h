// End-to-end TFMAE detector: normalization, windowed training with the
// adversarial contrastive objective, and per-time-step scoring.
#ifndef TFMAE_CORE_DETECTOR_H_
#define TFMAE_CORE_DETECTOR_H_

#include <memory>
#include <string>

#include "core/anomaly_detector.h"
#include "core/checkpoint.h"
#include "core/drift.h"
#include "core/inference_plan.h"
#include "core/model.h"
#include "nn/adam.h"
#include "nn/numeric_guard.h"

namespace tfmae::core {

/// In-place per-feature instance normalization of one window ([len x
/// n_feat], row-major) — the optional per-window step of the scoring
/// pipeline (config.per_window_normalization). Exported so that
/// serve::FleetServer can replicate TfmaeDetector::Score's exact per-window
/// pipeline outside the detector.
void PerWindowNormalize(std::vector<float>* values, std::int64_t len,
                        std::int64_t n_feat);

/// Bookkeeping from the last Fit() call (feeds the Fig. 10 study and the
/// resilience tests).
struct TrainStats {
  double fit_seconds = 0.0;            ///< wall time of the whole Fit()
  double mean_loss_first_epoch = 0.0;  ///< Eq. (15) objective, epoch 1
  double mean_loss_last_epoch = 0.0;   ///< Eq. (15) objective, final epoch
  std::int64_t num_windows = 0;        ///< training windows sliced
  std::int64_t num_steps = 0;          ///< optimizer steps taken
  std::int64_t peak_tensor_bytes = 0;  ///< MemoryStats high-watermark
  nn::NumericGuardStats numeric;       ///< numeric-guard interventions
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoint_failures = 0;  ///< writes that failed (training went on)
  std::int64_t resumed_at_step = -1;     ///< -1 for a fresh (non-resumed) run
  bool interrupted = false;  ///< stopped early: max_steps, injected fault,
                             ///< or numeric-guard give-up
};

/// Training-time resilience options (all off by default, so plain Fit(train)
/// behaves exactly like the seed).
struct FitOptions {
  /// Directory for crash-safe TrainingCheckpoint bundles; empty disables
  /// checkpointing. Created if missing.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many optimizer steps (0 = off).
  std::int64_t checkpoint_every = 0;
  /// Checkpoint files retained after each write (older ones are pruned).
  int keep_last = 2;
  /// Stop cleanly after this many optimizer steps (0 = unlimited). The
  /// stats report interrupted=true; Resume() continues the run.
  std::int64_t max_steps = 0;
  /// NaN/Inf step guard configuration (enabled by default; zero effect on
  /// healthy runs — see nn/numeric_guard.h).
  nn::NumericGuardOptions numeric;
};

/// TFMAE anomaly detector implementing the shared AnomalyDetector protocol.
///
/// Wraps the two-branch masked autoencoder (core/model.h) with everything
/// the protocol needs around it: global z-score normalization fitted on
/// train, window slicing, one-time mask precomputation (masks depend only
/// on the data), Adam optimization of the adversarial contrastive
/// objective (Eq. (15)), and per-time-step symmetric-KL scoring (Eq. (16))
/// with overlapping-window averaging. Fit()/Score() are deterministic for
/// a fixed config and seed at any thread count (DESIGN.md §7).
class TfmaeDetector : public AnomalyDetector {
 public:
  explicit TfmaeDetector(TfmaeConfig config, std::string name = "TFMAE");

  std::string Name() const override { return name_; }

  /// Normalizes (z-score, fitted here), slices training windows, prepares
  /// masks once, then optimizes Eq. (15) with Adam for config.epochs passes.
  void Fit(const data::TimeSeries& train) override;

  /// Fit with resilience options: periodic crash-safe checkpoints, a step
  /// budget, and numeric-health guarding (see FitOptions).
  void Fit(const data::TimeSeries& train, const FitOptions& options);

  /// Continues an interrupted Fit from the newest valid checkpoint in
  /// `options.checkpoint_dir`, bitwise-identically to the run the
  /// checkpoint came from (same data, config, and seed required; enforced
  /// via a config CRC). Returns false — detector untouched — when no valid
  /// checkpoint exists or it does not match this detector/data; the caller
  /// should Fit() from scratch then.
  bool Resume(const data::TimeSeries& train, const FitOptions& options);

  /// Per-time-step symmetric-KL anomaly scores. Overlapping window scores
  /// are averaged. Requires Fit().
  std::vector<float> Score(const data::TimeSeries& series) override;

  const TrainStats& train_stats() const { return stats_; }
  const TfmaeConfig& config() const { return config_; }

  /// True after a successful Fit() or LoadCheckpoint().
  bool fitted() const { return fitted_; }

  /// The trained network (null before Fit).
  TfmaeModel* model() { return model_.get(); }
  const TfmaeModel* model() const { return model_.get(); }

  /// The global z-score statistics fitted on train. serve::FleetServer uses
  /// these to normalize stream windows exactly as Score() would.
  const data::ZScoreNormalizer& normalizer() const { return normalizer_; }

  /// Pre-planned inference (DESIGN.md §10). On by default (TFMAE_INFERENCE_PLAN=0
  /// disables): the first scored window captures the graph into an
  /// InferencePlan and later windows replay it, bitwise-identically to the
  /// eager path. Any capture failure falls back to eager scoring.
  void SetInferencePlanEnabled(bool on) { plan_enabled_ = on; }
  bool inference_plan_enabled() const { return plan_enabled_; }

  /// The active plan (null until a Score() built one, or when disabled).
  const InferencePlan* inference_plan() const { return plan_.get(); }

  /// Capture attempts that fell back to eager scoring (fault injection or
  /// unsupported graphs).
  std::int64_t plan_capture_failures() const { return plan_capture_failures_; }

  /// Int8 scoring path (DESIGN.md §12). The default tracks TFMAE_QUANT
  /// ("int8" enables; anything else — including unset — is off). With int8
  /// selected AND a calibration spec present, Score() compiles a quantized
  /// InferencePlan; a missing spec, a feature-count mismatch between the
  /// spec and the scored series, or a failed quantized capture each fall
  /// back to the fp32 path automatically (counted in quant_fallbacks(),
  /// ledger-visible as a `quant` event with verdict=fallback).
  enum class QuantMode { kOff = 0, kInt8 = 1 };
  void SetQuantMode(QuantMode mode);
  QuantMode quant_mode() const { return quant_mode_; }

  /// Runs the calibration pass: slices `series` into scoring windows,
  /// replays them through a fp32 plan with activation observers, and
  /// records per-channel absmax ranges into the detector's QuantSpec
  /// (persisted by SaveCheckpoint as <prefix>.quant). Requires Fit().
  /// Returns false — spec untouched — with a reason in `error`.
  bool Calibrate(const data::TimeSeries& series, std::string* error = nullptr);

  const QuantSpec& quant_spec() const { return quant_spec_; }
  void SetQuantSpec(QuantSpec spec);
  bool has_quant_spec() const { return !quant_spec_.empty(); }

  /// Score() calls / captures that wanted int8 but ran fp32 instead.
  std::int64_t quant_fallbacks() const { return quant_fallbacks_; }

  /// Calibration score reference for the online drift monitor (core/drift.h).
  /// Persisted by SaveCheckpoint as <prefix>.drift; like the quant sidecar,
  /// a missing or corrupt file degrades to "no reference" on load.
  const ScoreDistribution& score_reference() const { return score_reference_; }
  void SetScoreReference(ScoreDistribution dist);
  bool has_score_reference() const { return !score_reference_.empty(); }

  /// Persists the complete fitted detector (config, normalizer statistics,
  /// and network weights) under `prefix` (three files: <prefix>.config,
  /// <prefix>.norm, <prefix>.weights). Requires Fit(). Returns false on I/O
  /// failure.
  bool SaveCheckpoint(const std::string& prefix) const;

  /// Restores a detector saved by SaveCheckpoint. The returned detector is
  /// ready to Score() without re-fitting. Returns false on failure (and
  /// leaves this detector unusable until a successful Fit/Load).
  bool LoadCheckpoint(const std::string& prefix);

 private:
  /// Shared body of Fit/Resume. `resume_from` (may be null) is a validated
  /// checkpoint whose state is restored after the deterministic
  /// reconstruction of windows and masks.
  void FitInternal(const data::TimeSeries& train, const FitOptions& options,
                   const TrainingCheckpoint* resume_from);

  std::string name_;
  TfmaeConfig config_;
  std::unique_ptr<TfmaeModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  TrainStats stats_;
  bool fitted_ = false;

  // Pre-planned inference state. The plan is invalidated whenever the
  // weights change (Fit/Resume/LoadCheckpoint) or the window geometry
  // stops matching.
  std::unique_ptr<InferencePlan> plan_;
  bool plan_enabled_ = true;
  std::int64_t plan_capture_failures_ = 0;
  std::vector<float> plan_scores_;  ///< reusable replay output buffer

  // Int8 scoring state (DESIGN.md §12).
  QuantMode quant_mode_ = QuantMode::kOff;
  QuantSpec quant_spec_;
  std::int64_t quant_fallbacks_ = 0;

  // Drift-monitor reference distribution (core/drift.h).
  ScoreDistribution score_reference_;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_DETECTOR_H_
