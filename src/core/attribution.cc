#include "core/attribution.h"

#include <algorithm>

#include "util/logging.h"

namespace tfmae::core {
namespace {

// Mean score over [center-half_width, center+half_width] within `slice`
// coordinates.
double NeighborhoodMean(const std::vector<float>& scores, std::int64_t center,
                        std::int64_t half_width) {
  const std::int64_t lo = std::max<std::int64_t>(0, center - half_width);
  const std::int64_t hi = std::min<std::int64_t>(
      static_cast<std::int64_t>(scores.size()) - 1, center + half_width);
  double acc = 0.0;
  for (std::int64_t t = lo; t <= hi; ++t) {
    acc += scores[static_cast<std::size_t>(t)];
  }
  return acc / static_cast<double>(hi - lo + 1);
}

}  // namespace

std::vector<float> OcclusionAttribution(AnomalyDetector* detector,
                                        const data::TimeSeries& series,
                                        std::int64_t center,
                                        const AttributionOptions& options) {
  TFMAE_CHECK(detector != nullptr);
  TFMAE_CHECK_MSG(center >= 0 && center < series.length,
                  "attribution center out of range");
  // Cut a context slice around the point of interest.
  const std::int64_t begin = std::max<std::int64_t>(
      0, std::min(center - options.context / 2,
                  series.length - options.context));
  const std::int64_t length =
      std::min<std::int64_t>(options.context, series.length - begin);
  const data::TimeSeries slice = series.Slice(begin, length);
  const std::int64_t local_center = center - begin;

  const std::vector<float> baseline_scores = detector->Score(slice);
  const double baseline =
      NeighborhoodMean(baseline_scores, local_center, options.half_width);

  std::vector<float> attribution(
      static_cast<std::size_t>(series.num_features), 0.0f);
  for (std::int64_t n = 0; n < series.num_features; ++n) {
    data::TimeSeries occluded = slice;
    double mean = 0.0;
    for (std::int64_t t = 0; t < occluded.length; ++t) {
      mean += occluded.at(t, n);
    }
    mean /= static_cast<double>(occluded.length);
    for (std::int64_t t = 0; t < occluded.length; ++t) {
      occluded.at(t, n) = static_cast<float>(mean);
    }
    const std::vector<float> occluded_scores = detector->Score(occluded);
    const double without_feature =
        NeighborhoodMean(occluded_scores, local_center, options.half_width);
    attribution[static_cast<std::size_t>(n)] =
        static_cast<float>(baseline - without_feature);
  }
  return attribution;
}

}  // namespace tfmae::core
