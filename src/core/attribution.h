// Feature attribution for anomaly scores: which channels drive a detection?
//
// Detector-agnostic occlusion sensitivity: each feature is flattened to its
// local window mean in turn; the attribution of a feature is how much the
// anomaly score around the point of interest drops when that feature is
// occluded. Works with any AnomalyDetector (TFMAE or baselines), since it
// only needs Score().
#ifndef TFMAE_CORE_ATTRIBUTION_H_
#define TFMAE_CORE_ATTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "core/anomaly_detector.h"

namespace tfmae::core {

/// Tuning of the occlusion attribution.
struct AttributionOptions {
  /// Half-width of the scored neighbourhood around the point of interest.
  std::int64_t half_width = 5;
  /// Context slice handed to the detector around the point (must cover at
  /// least the detector's window).
  std::int64_t context = 100;
};

/// Per-feature attribution of the anomaly score around time `center` of
/// `series`: attribution[n] = mean score in [center-half_width,
/// center+half_width] with all features intact, minus the same mean with
/// feature n occluded (replaced by its context mean). Positive values mean
/// the feature contributes to the detection. Requires a fitted detector.
std::vector<float> OcclusionAttribution(AnomalyDetector* detector,
                                        const data::TimeSeries& series,
                                        std::int64_t center,
                                        const AttributionOptions& options = {});

}  // namespace tfmae::core

#endif  // TFMAE_CORE_ATTRIBUTION_H_
