// Masked-autoencoder forecasting — the paper's stated future-work direction
// ("extend TFMAE to other time series tasks, such as time series
// prediction"). The temporal masked autoencoder already recovers masked
// observations from context; forecasting is the special case where the
// masked positions are the last `horizon` steps of the window. This module
// implements exactly that: encode the observed prefix, decode with mask
// tokens at the future positions, and read the forecast out of a linear
// head trained with MSE on the true future.
#ifndef TFMAE_CORE_FORECASTING_H_
#define TFMAE_CORE_FORECASTING_H_

#include <memory>

#include "data/timeseries.h"
#include "nn/adam.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace tfmae::core {

/// Hyper-parameters of the masked forecaster.
struct ForecasterConfig {
  std::int64_t context = 40;   ///< observed prefix length
  std::int64_t horizon = 10;   ///< forecast length (masked tail)
  std::int64_t model_dim = 32;
  std::int64_t num_layers = 2;
  std::int64_t num_heads = 4;
  std::int64_t ff_hidden = 64;
  std::int64_t stride = 10;
  int epochs = 20;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 59;
};

/// Transformer masked-autoencoder forecaster.
class TfmaeForecaster {
 public:
  explicit TfmaeForecaster(ForecasterConfig config);

  const ForecasterConfig& config() const { return config_; }
  ~TfmaeForecaster();

  /// Trains on sliding (context + horizon) windows of `series`.
  /// Inputs are z-score normalized with statistics fitted here.
  void Fit(const data::TimeSeries& series);

  /// Forecasts `horizon` steps following the last `context` steps of
  /// `recent` (recent.length must be >= context). Returns a
  /// [horizon, num_features] series in the original scale.
  data::TimeSeries Forecast(const data::TimeSeries& recent) const;

  /// Mean squared one-shot forecast error over all windows of `series`
  /// (normalized scale) — a quick quality gauge used by tests.
  double Evaluate(const data::TimeSeries& series) const;

 private:
  class Net;
  ForecasterConfig config_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  mutable Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_FORECASTING_H_
