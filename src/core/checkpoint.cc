#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/checkpoint_file.h"
#include "util/logging.h"

namespace tfmae::core {
namespace {

constexpr char kMetaSection[] = "train.meta";
constexpr char kAdamSection[] = "train.adam";
constexpr char kWeightsSection[] = "params";

constexpr char kFilePrefix[] = "ckpt_";
constexpr char kFileSuffix[] = ".tfmae";

std::vector<char> EncodeMeta(const TrainingCheckpoint& c) {
  util::ByteWriter w;
  w.U32(c.config_crc);
  w.I64(c.num_features);
  w.I64(c.progress.epoch);
  w.I64(c.progress.next_window);
  w.I64(c.progress.steps);
  w.F64(c.progress.loss_sum);
  w.F64(c.progress.mean_loss_first_epoch);
  w.I64Array(c.progress.order);
  for (std::uint64_t word : c.rng.s) w.U64(word);
  w.U32(c.rng.has_cached_normal ? 1 : 0);
  w.F64(c.rng.cached_normal);
  return w.Take();
}

bool DecodeMeta(const std::vector<char>& payload, TrainingCheckpoint* c) {
  util::ByteReader r(payload);
  std::uint32_t cached_flag = 0;
  bool ok = r.U32(&c->config_crc) && r.I64(&c->num_features) &&
            r.I64(&c->progress.epoch) && r.I64(&c->progress.next_window) &&
            r.I64(&c->progress.steps) && r.F64(&c->progress.loss_sum) &&
            r.F64(&c->progress.mean_loss_first_epoch) &&
            r.I64Array(&c->progress.order);
  for (std::uint64_t& word : c->rng.s) ok = ok && r.U64(&word);
  ok = ok && r.U32(&cached_flag) && r.F64(&c->rng.cached_normal) && r.AtEnd();
  c->rng.has_cached_normal = cached_flag != 0;
  return ok;
}

std::vector<char> EncodeAdam(const nn::AdamState& adam) {
  util::ByteWriter w;
  w.I64(adam.step_count);
  w.U64(adam.m.size());
  for (const auto& moment : adam.m) w.FloatArray(moment);
  w.U64(adam.v.size());
  for (const auto& moment : adam.v) w.FloatArray(moment);
  return w.Take();
}

bool DecodeAdam(const std::vector<char>& payload, nn::AdamState* adam) {
  util::ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.I64(&adam->step_count) || !r.U64(&count)) return false;
  adam->m.resize(static_cast<std::size_t>(count));
  for (auto& moment : adam->m) {
    if (!r.FloatArray(&moment)) return false;
  }
  if (!r.U64(&count)) return false;
  adam->v.resize(static_cast<std::size_t>(count));
  for (auto& moment : adam->v) {
    if (!r.FloatArray(&moment)) return false;
  }
  return r.AtEnd();
}

/// Step number encoded in a checkpoint file name; -1 when `name` is not a
/// checkpoint file.
std::int64_t StepFromFilename(const std::string& name) {
  const std::size_t prefix_len = sizeof(kFilePrefix) - 1;
  const std::size_t suffix_len = sizeof(kFileSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len ||
      name.compare(0, prefix_len, kFilePrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kFileSuffix) != 0) {
    return -1;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

/// All checkpoint files in `dir` as (step, path), highest step first.
std::vector<std::pair<std::int64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::int64_t step = StepFromFilename(entry.path().filename().string());
    if (step >= 0) found.emplace_back(step, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

bool SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                            const std::string& path) {
  util::CheckpointFileWriter writer;
  writer.AddSection(kMetaSection, EncodeMeta(checkpoint));
  writer.AddSection(kAdamSection, EncodeAdam(checkpoint.adam));
  writer.AddSection(kWeightsSection, checkpoint.weights);
  return writer.WriteAtomic(path);
}

std::optional<TrainingCheckpoint> LoadTrainingCheckpoint(
    const std::string& path, std::string* error) {
  const auto reader = util::CheckpointFileReader::Open(path, error);
  if (!reader.has_value()) return std::nullopt;
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const std::vector<char>* meta = reader->Section(kMetaSection);
  const std::vector<char>* adam = reader->Section(kAdamSection);
  const std::vector<char>* weights = reader->Section(kWeightsSection);
  if (meta == nullptr || adam == nullptr || weights == nullptr) {
    return fail("missing checkpoint section");
  }
  TrainingCheckpoint checkpoint;
  if (!DecodeMeta(*meta, &checkpoint)) return fail("malformed meta section");
  if (!DecodeAdam(*adam, &checkpoint.adam)) {
    return fail("malformed adam section");
  }
  checkpoint.weights = *weights;
  return checkpoint;
}

std::string TrainingCheckpointPath(const std::string& dir, std::int64_t step) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08lld%s", kFilePrefix,
                static_cast<long long>(step), kFileSuffix);
  return (std::filesystem::path(dir) / name).string();
}

std::optional<std::pair<std::string, TrainingCheckpoint>>
FindLatestValidCheckpoint(const std::string& dir, std::string* error) {
  std::string last_error = "no checkpoint files in " + dir;
  for (const auto& [step, path] : ListCheckpoints(dir)) {
    std::string open_error;
    if (auto checkpoint = LoadTrainingCheckpoint(path, &open_error)) {
      return std::make_pair(path, std::move(*checkpoint));
    }
    Log(LogLevel::kWarning, "checkpoint " + path +
                                " rejected (" + open_error +
                                "), falling back to the previous one");
    last_error = open_error;
  }
  if (error != nullptr) *error = last_error;
  return std::nullopt;
}

void PruneTrainingCheckpoints(const std::string& dir, int keep_last) {
  const auto checkpoints = ListCheckpoints(dir);
  std::error_code ec;
  for (std::size_t i = static_cast<std::size_t>(std::max(0, keep_last));
       i < checkpoints.size(); ++i) {
    std::filesystem::remove(checkpoints[i].second, ec);
  }
}

}  // namespace tfmae::core
