#include "core/anomaly_detector.h"

namespace tfmae::core {

eval::DetectionReport RunProtocol(AnomalyDetector* detector,
                                  const data::LabeledDataset& dataset,
                                  double anomaly_fraction) {
  detector->Fit(dataset.train);
  const std::vector<float> val_scores = detector->Score(dataset.val);
  const std::vector<float> test_scores = detector->Score(dataset.test);
  return eval::EvaluateDetection(val_scores, test_scores, dataset.test.labels,
                                 anomaly_fraction);
}

}  // namespace tfmae::core
