// Pre-planned inference: capture once, replay forever (DESIGN.md §10).
//
// A trained TfmaeDetector scores every window of a series through the same
// static graph — only the input VALUES and the dynamic mask index vectors
// change from window to window. InferencePlan exploits that: one capture
// pass records the scoring graph of TfmaeModel::ScoreWindow as a flat op
// list (tensor/capture.h), a memory planner assigns every intermediate a
// fixed offset in one pool-backed arena via lifetime analysis, and a replay
// executor runs the plan as a tight loop over pre-resolved kernel pointers
// — zero shared_ptr churn, zero autograd construction, zero dispatch
// branching.
//
// Determinism contract: replay is bitwise-identical to the eager
// ScoreWindow at any TFMAE_NUM_THREADS. Both paths call the same per-element
// kernels (tensor/op_kernels.h) and cut parallel chunks at fixed boundaries
// that depend only on element counts; Capture() additionally self-verifies
// (one replay, memcmp against the captured eager scores) and returns null —
// eager fallback — on any mismatch. A failed capture never produces a wrong
// plan, only no plan.
#ifndef TFMAE_CORE_INFERENCE_PLAN_H_
#define TFMAE_CORE_INFERENCE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/quant.h"

namespace tfmae::core {

/// Build- and replay-time accounting, surfaced through the detector's
/// ledger `plan` event and bench_micro --inference_plan_json.
struct InferencePlanStats {
  std::int64_t captured_ops = 0;  ///< ops recorded by the capture pass
  std::int64_t ops = 0;           ///< ops in the final plan (after fusion)
  std::int64_t fused_ops = 0;     ///< elementwise producers folded away
  std::int64_t elided_reshapes = 0;  ///< reshapes turned into storage aliases
  std::int64_t slots = 0;            ///< arena slots (inputs + intermediates)
  std::int64_t arena_bytes = 0;      ///< one logical allocation, total size
  double capture_ms = 0.0;           ///< wall-clock cost of Capture()
  std::int64_t replays = 0;          ///< Score() calls served by this plan

  // Int8 path accounting (zero / false on fp32 plans; DESIGN.md §12).
  bool quantized = false;             ///< plan runs the int8 scoring path
  std::int64_t quant_linear_ops = 0;  ///< matmuls lowered to int8 kernels
  std::int64_t elided_quant_pairs = 0;  ///< quant/dequant pairs never built:
                                        ///< fused epilogues + shared-input
                                        ///< quantizations (q/k/v)
  std::int64_t quant_arena_bytes = 0;  ///< packed u8 activation arena
};

/// A compiled scoring program for one window geometry.
class InferencePlan {
 public:
  /// Captures the scoring graph by running the eager ScoreWindow under a
  /// recorder, plans arena storage, pre-resolves kernels, and self-verifies
  /// one replay against the eager result. The eager scores (the capture
  /// window's answer) are returned through `eager_scores` whether or not
  /// the capture succeeds, so the caller never computes a window twice.
  /// Returns null — with a reason in `error` if non-null — whenever any op
  /// is unsupported or the self-verification mismatches.
  ///
  /// When `quant` is non-null the plan is compiled for the int8 scoring
  /// path (DESIGN.md §12): every weight-bearing matmul with a calibrated
  /// site becomes a fused u8 x s8 linear kernel (bias / bias+GeLU consumers
  /// folded into the dequantization epilogue, shared inputs quantized
  /// once), and the remaining exp/tanh epilogues switch to the fast
  /// deterministic polynomials. An int8 plan cannot be bitwise-identical
  /// to eager, so self-verification instead requires (a) two replays to be
  /// bitwise-identical to each other, (b) all-finite scores, and (c)
  /// agreement with the eager scores within a coarse quantization-noise
  /// envelope. Replay stays bitwise thread-count-invariant.
  static std::unique_ptr<InferencePlan> Capture(
      const TfmaeModel& model, const MaskedWindow& example,
      std::vector<float>* eager_scores, std::string* error = nullptr,
      const QuantSpec* quant = nullptr);

  ~InferencePlan();
  InferencePlan(const InferencePlan&) = delete;
  InferencePlan& operator=(const InferencePlan&) = delete;

  /// True iff `window` has the geometry this plan was compiled for (length,
  /// feature count, masked/unmasked counts). Index values and data values
  /// may differ freely; a geometry change requires a fresh Capture().
  bool Matches(const MaskedWindow& window) const;

  /// Replays the plan on `window`. Writes the per-time-step scores into
  /// `out` (resized once; steady-state calls perform zero tensor
  /// allocations). Requires Matches(window).
  void Score(const MaskedWindow& window, std::vector<float>* out);

  /// Called once per weight-bearing matmul per observed replay, with the
  /// matmul's fp32 input activation ([rows x cols], cols == the weight's
  /// input-feature count) immediately before the op executes.
  using ActivationObserver = std::function<void(
      int weight_index, const float* data, std::int64_t rows,
      std::int64_t cols)>;

  /// Score() plus activation observation — the calibration pass
  /// (core/quant.cc) replays validation windows through this entry point to
  /// record per-channel absmax ranges. Scores are identical to Score()'s.
  void ScoreWithActivationObserver(const MaskedWindow& window,
                                   std::vector<float>* out,
                                   const ActivationObserver& observer);

  const InferencePlanStats& stats() const { return stats_; }

 private:
  struct State;
  InferencePlan();

  /// Shared replay body; `observer` may be null (the hot path).
  void ScoreImpl(const MaskedWindow& window, std::vector<float>* out,
                 const ActivationObserver* observer);

  InferencePlanStats stats_;
  std::unique_ptr<State> state_;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_INFERENCE_PLAN_H_
