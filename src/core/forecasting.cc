#include "core/forecasting.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::core {
namespace {

std::vector<std::int64_t> Iota(std::int64_t begin, std::int64_t end) {
  std::vector<std::int64_t> values(static_cast<std::size_t>(end - begin));
  for (std::int64_t i = begin; i < end; ++i) {
    values[static_cast<std::size_t>(i - begin)] = i;
  }
  return values;
}

}  // namespace

/// Encoder over the context, decoder over context+mask tokens, linear head.
class TfmaeForecaster::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const ForecasterConfig& config, Rng* rng)
      : num_features_(num_features),
        config_(config),
        proj_(num_features, config.model_dim, rng),
        encoder_(config.num_layers, config.model_dim, config.num_heads,
                 config.ff_hidden, rng),
        decoder_(config.num_layers, config.model_dim, config.num_heads,
                 config.ff_hidden, rng),
        head_(config.model_dim, num_features, rng) {
    mask_token_ = RegisterParameter(
        "mask_token", Tensor::Randn({config.model_dim}, rng, 0.02f));
    RegisterModule("proj", &proj_);
    RegisterModule("encoder", &encoder_);
    RegisterModule("decoder", &decoder_);
    RegisterModule("head", &head_);
  }

  /// context values: [context, N] -> forecast [horizon, N].
  Tensor Forecast(const Tensor& context) const {
    const std::int64_t c_len = config_.context;
    const std::int64_t total = c_len + config_.horizon;
    Tensor encoded = encoder_.Forward(
        nn::AddPositionalEncoding(proj_.Forward(context), Iota(0, c_len)));
    Tensor future_tokens = nn::AddPositionalEncoding(
        ops::RepeatRow(mask_token_, config_.horizon), Iota(c_len, total));
    Tensor full = ops::ConcatRows(encoded, future_tokens);
    Tensor decoded = decoder_.Forward(full);
    return head_.Forward(ops::SliceRows(decoded, c_len, config_.horizon));
  }

 private:
  std::int64_t num_features_;
  ForecasterConfig config_;
  nn::Linear proj_;
  nn::TransformerStack encoder_;
  nn::TransformerStack decoder_;
  nn::Linear head_;
  Tensor mask_token_;
};

TfmaeForecaster::TfmaeForecaster(ForecasterConfig config)
    : config_(config), rng_(config.seed) {
  TFMAE_CHECK(config.context >= 2 && config.horizon >= 1);
}

TfmaeForecaster::~TfmaeForecaster() = default;

void TfmaeForecaster::Fit(const data::TimeSeries& series) {
  const std::int64_t total = config_.context + config_.horizon;
  TFMAE_CHECK_MSG(series.length >= total,
                  "series shorter than context+horizon");
  normalizer_.Fit(series);
  const data::TimeSeries normalized = normalizer_.Apply(series);

  net_ = std::make_unique<Net>(series.num_features, config_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = config_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, total, config_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::int64_t n_feat = normalized.num_features;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      const std::int64_t start = starts[index];
      Tensor context = Tensor::FromData(
          {config_.context, n_feat},
          std::vector<float>(
              normalized.values.begin() +
                  static_cast<std::ptrdiff_t>(start * n_feat),
              normalized.values.begin() + static_cast<std::ptrdiff_t>(
                                              (start + config_.context) *
                                              n_feat)));
      Tensor target = Tensor::FromData(
          {config_.horizon, n_feat},
          std::vector<float>(
              normalized.values.begin() + static_cast<std::ptrdiff_t>(
                                              (start + config_.context) *
                                              n_feat),
              normalized.values.begin() +
                  static_cast<std::ptrdiff_t>((start + total) * n_feat)));
      Tensor loss = ops::MseLoss(net_->Forecast(context), target);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

data::TimeSeries TfmaeForecaster::Forecast(
    const data::TimeSeries& recent) const {
  TFMAE_CHECK_MSG(fitted_, "Forecast() called before Fit()");
  TFMAE_CHECK(recent.length >= config_.context &&
              recent.num_features ==
                  static_cast<std::int64_t>(normalizer_.means().size()));
  const data::TimeSeries normalized = normalizer_.Apply(recent);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  Tensor context = Tensor::FromData(
      {config_.context, n_feat},
      std::vector<float>(
          normalized.values.end() -
              static_cast<std::ptrdiff_t>(config_.context * n_feat),
          normalized.values.end()));
  Tensor forecast = net_->Forecast(context);

  // Undo the z-score normalization.
  data::TimeSeries out = data::TimeSeries::Zeros(config_.horizon, n_feat);
  for (std::int64_t t = 0; t < config_.horizon; ++t) {
    for (std::int64_t n = 0; n < n_feat; ++n) {
      out.at(t, n) =
          forecast.at(t * n_feat + n) *
              normalizer_.stds()[static_cast<std::size_t>(n)] +
          normalizer_.means()[static_cast<std::size_t>(n)];
    }
  }
  return out;
}

double TfmaeForecaster::Evaluate(const data::TimeSeries& series) const {
  TFMAE_CHECK_MSG(fitted_, "Evaluate() called before Fit()");
  const std::int64_t total = config_.context + config_.horizon;
  TFMAE_CHECK(series.length >= total);
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  double error_sum = 0.0;
  std::int64_t count = 0;
  for (std::int64_t start :
       data::WindowStarts(normalized.length, total, config_.horizon)) {
    Tensor context = Tensor::FromData(
        {config_.context, n_feat},
        std::vector<float>(
            normalized.values.begin() +
                static_cast<std::ptrdiff_t>(start * n_feat),
            normalized.values.begin() + static_cast<std::ptrdiff_t>(
                                            (start + config_.context) *
                                            n_feat)));
    Tensor forecast = net_->Forecast(context);
    for (std::int64_t t = 0; t < config_.horizon; ++t) {
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const double diff =
            static_cast<double>(forecast.at(t * n_feat + n)) -
            static_cast<double>(
                normalized.at(start + config_.context + t, n));
        error_sum += diff * diff;
        ++count;
      }
    }
  }
  return error_sum / std::max<std::int64_t>(count, 1);
}

}  // namespace tfmae::core
