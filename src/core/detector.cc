#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "core/config_io.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/stopwatch.h"

namespace tfmae::core {
namespace {

// Extracts window values [start, start+len) as a flat [len * N] vector.
std::vector<float> ExtractWindow(const data::TimeSeries& series,
                                 std::int64_t start, std::int64_t len) {
  const std::int64_t n_feat = series.num_features;
  return std::vector<float>(
      series.values.begin() +
          static_cast<std::ptrdiff_t>(start * n_feat),
      series.values.begin() +
          static_cast<std::ptrdiff_t>((start + len) * n_feat));
}

// In-place per-feature instance normalization of one window.
void NormalizeWindow(std::vector<float>* values, std::int64_t len,
                     std::int64_t n_feat) {
  for (std::int64_t n = 0; n < n_feat; ++n) {
    double sum = 0.0;
    for (std::int64_t t = 0; t < len; ++t) {
      sum += (*values)[static_cast<std::size_t>(t * n_feat + n)];
    }
    const double mean = sum / static_cast<double>(len);
    double sq = 0.0;
    for (std::int64_t t = 0; t < len; ++t) {
      const double d =
          (*values)[static_cast<std::size_t>(t * n_feat + n)] - mean;
      sq += d * d;
    }
    const double std_dev =
        std::sqrt(sq / static_cast<double>(len)) + 1e-4;
    for (std::int64_t t = 0; t < len; ++t) {
      float& v = (*values)[static_cast<std::size_t>(t * n_feat + n)];
      v = static_cast<float>((v - mean) / std_dev);
    }
  }
}

}  // namespace

TfmaeDetector::TfmaeDetector(TfmaeConfig config, std::string name)
    : name_(std::move(name)), config_(config), rng_(config.seed) {}

void TfmaeDetector::Fit(const data::TimeSeries& train) {
  TFMAE_CHECK_MSG(train.length >= 2, "training series too short");
  Stopwatch watch;
  MemoryStats::ResetPeak();

  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);

  model_ = std::make_unique<TfmaeModel>(train.num_features, config_, &rng_);
  nn::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  adam_options.clip_grad_norm = config_.clip_grad_norm;
  optimizer_ = std::make_unique<nn::Adam>(model_->Parameters(), adam_options);

  // Slice training windows and precompute masks once (masks are functions of
  // the data only).
  const std::int64_t window = std::min(config_.window, normalized.length);
  const std::int64_t stride = config_.stride > 0 ? config_.stride : window;
  const std::vector<std::int64_t> starts =
      data::WindowStarts(normalized.length, window, stride);
  std::vector<MaskedWindow> windows;
  windows.reserve(starts.size());
  for (std::int64_t start : starts) {
    std::vector<float> values = ExtractWindow(normalized, start, window);
    if (config_.per_window_normalization) {
      NormalizeWindow(&values, window, normalized.num_features);
    }
    windows.push_back(model_->PrepareWindow(values, &rng_));
  }
  stats_ = TrainStats{};
  stats_.num_windows = static_cast<std::int64_t>(windows.size());

  std::vector<std::size_t> order(windows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::int64_t batch = std::max<std::int64_t>(1, config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double loss_sum = 0.0;
    std::int64_t accumulated = 0;
    model_->ZeroGrad();
    for (std::size_t index : order) {
      const MaskedWindow& masked = windows[index];
      const TfmaeModel::Views views = model_->Forward(masked);
      // Gradients accumulate across the mini-batch; scale keeps the
      // effective step equal to the batch-mean gradient.
      const Tensor loss = ops::Scale(model_->Loss(views),
                                     1.0f / static_cast<float>(batch));
      loss.Backward();
      loss_sum += loss.item() * static_cast<double>(batch);
      if (++accumulated == batch) {
        optimizer_->Step();
        model_->ZeroGrad();
        accumulated = 0;
        ++stats_.num_steps;
      }
    }
    if (accumulated > 0) {
      optimizer_->Step();
      model_->ZeroGrad();
      ++stats_.num_steps;
    }
    const double mean_loss =
        windows.empty() ? 0.0 : loss_sum / static_cast<double>(windows.size());
    if (epoch == 0) stats_.mean_loss_first_epoch = mean_loss;
    stats_.mean_loss_last_epoch = mean_loss;
  }

  stats_.fit_seconds = watch.ElapsedSeconds();
  stats_.peak_tensor_bytes = MemoryStats::PeakBytes();
  fitted_ = true;
}

bool TfmaeDetector::SaveCheckpoint(const std::string& prefix) const {
  TFMAE_CHECK_MSG(fitted_, "SaveCheckpoint() called before Fit()");
  if (!SaveConfig(config_, prefix + ".config")) return false;
  {
    std::ofstream norm(prefix + ".norm");
    if (!norm) return false;
    norm.precision(std::numeric_limits<float>::max_digits10);
    norm << normalizer_.means().size() << '\n';
    for (std::size_t i = 0; i < normalizer_.means().size(); ++i) {
      norm << normalizer_.means()[i] << ' ' << normalizer_.stds()[i] << '\n';
    }
    if (!norm) return false;
  }
  return nn::SaveParameters(*model_, prefix + ".weights");
}

bool TfmaeDetector::LoadCheckpoint(const std::string& prefix) {
  const auto config = LoadConfig(prefix + ".config");
  if (!config.has_value()) return false;

  std::ifstream norm(prefix + ".norm");
  if (!norm) return false;
  std::size_t count = 0;
  norm >> count;
  if (!norm || count == 0) return false;
  std::vector<float> means(count);
  std::vector<float> stds(count);
  for (std::size_t i = 0; i < count; ++i) {
    norm >> means[i] >> stds[i];
  }
  if (!norm) return false;

  config_ = *config;
  rng_ = Rng(config_.seed);
  normalizer_.SetStatistics(std::move(means), std::move(stds));
  model_ = std::make_unique<TfmaeModel>(static_cast<std::int64_t>(count),
                                        config_, &rng_);
  if (!nn::LoadParameters(model_.get(), prefix + ".weights")) {
    model_.reset();
    return false;
  }
  optimizer_.reset();  // a loaded detector scores; re-Fit to train further
  fitted_ = true;
  return true;
}

std::vector<float> TfmaeDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  TFMAE_CHECK(series.num_features == model_->num_features());
  const data::TimeSeries normalized = normalizer_.Apply(series);

  const std::int64_t window = std::min(config_.window, normalized.length);
  const std::int64_t stride =
      config_.score_stride > 0 ? std::min(config_.score_stride, window)
                               : window;
  const std::vector<std::int64_t> starts =
      data::WindowStarts(normalized.length, window, stride);

  std::vector<double> score_sum(static_cast<std::size_t>(series.length), 0.0);
  std::vector<std::int32_t> score_count(
      static_cast<std::size_t>(series.length), 0);
  for (std::int64_t start : starts) {
    std::vector<float> values = ExtractWindow(normalized, start, window);
    if (config_.per_window_normalization) {
      NormalizeWindow(&values, window, normalized.num_features);
    }
    const MaskedWindow masked = model_->PrepareWindow(values, &rng_);
    const std::vector<float> window_scores = model_->ScoreWindow(masked);
    for (std::int64_t t = 0; t < window; ++t) {
      score_sum[static_cast<std::size_t>(start + t)] +=
          window_scores[static_cast<std::size_t>(t)];
      ++score_count[static_cast<std::size_t>(start + t)];
    }
  }
  std::vector<float> scores(static_cast<std::size_t>(series.length), 0.0f);
  for (std::size_t t = 0; t < scores.size(); ++t) {
    if (score_count[t] > 0) {
      scores[t] =
          static_cast<float>(score_sum[t] / static_cast<double>(score_count[t]));
    }
  }
  return scores;
}

}  // namespace tfmae::core
