#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/config_io.h"
#include "nn/numeric_guard.h"
#include "nn/serialize.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/quant_kernels.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/stopwatch.h"

namespace tfmae::core {
namespace {

// Fingerprint of the full training recipe; a checkpoint resumed under a
// different config would silently diverge, so Resume() rejects mismatches.
std::uint32_t ConfigCrc(const TfmaeConfig& config) {
  const std::string text = ConfigToString(config);
  return util::Crc32(text.data(), text.size());
}

// Extracts window values [start, start+len) as a flat [len * N] vector.
std::vector<float> ExtractWindow(const data::TimeSeries& series,
                                 std::int64_t start, std::int64_t len) {
  const std::int64_t n_feat = series.num_features;
  return std::vector<float>(
      series.values.begin() +
          static_cast<std::ptrdiff_t>(start * n_feat),
      series.values.begin() +
          static_cast<std::ptrdiff_t>((start + len) * n_feat));
}

}  // namespace

// In-place per-feature instance normalization of one window. Exported
// (detector.h) so the serving plane can replicate Score()'s pipeline.
void PerWindowNormalize(std::vector<float>* values, std::int64_t len,
                        std::int64_t n_feat) {
  for (std::int64_t n = 0; n < n_feat; ++n) {
    double sum = 0.0;
    for (std::int64_t t = 0; t < len; ++t) {
      sum += (*values)[static_cast<std::size_t>(t * n_feat + n)];
    }
    const double mean = sum / static_cast<double>(len);
    double sq = 0.0;
    for (std::int64_t t = 0; t < len; ++t) {
      const double d =
          (*values)[static_cast<std::size_t>(t * n_feat + n)] - mean;
      sq += d * d;
    }
    const double std_dev =
        std::sqrt(sq / static_cast<double>(len)) + 1e-4;
    for (std::int64_t t = 0; t < len; ++t) {
      float& v = (*values)[static_cast<std::size_t>(t * n_feat + n)];
      v = static_cast<float>((v - mean) / std_dev);
    }
  }
}

namespace {

// TFMAE_INFERENCE_PLAN gates pre-planned inference ("0" disables; default
// on — capture self-verification makes the plan safe by construction).
bool InferencePlanEnvDefault() {
  const char* v = std::getenv("TFMAE_INFERENCE_PLAN");
  if (v == nullptr || *v == '\0') return true;
  return !(v[0] == '0' && v[1] == '\0');
}

// TFMAE_QUANT selects the scoring precision: "int8" enables the quantized
// path (with automatic fp32 fallback), anything else is off.
TfmaeDetector::QuantMode QuantModeEnvDefault() {
  const char* v = std::getenv("TFMAE_QUANT");
  if (v != nullptr && std::string(v) == "int8") {
    return TfmaeDetector::QuantMode::kInt8;
  }
  return TfmaeDetector::QuantMode::kOff;
}

// Calibration replays are bounded: past this many windows the observed
// ranges have long converged and further replays only cost time.
constexpr std::size_t kMaxCalibrationWindows = 64;

}  // namespace

TfmaeDetector::TfmaeDetector(TfmaeConfig config, std::string name)
    : name_(std::move(name)),
      config_(config),
      rng_(config.seed),
      plan_enabled_(InferencePlanEnvDefault()),
      quant_mode_(QuantModeEnvDefault()) {}

void TfmaeDetector::SetQuantMode(QuantMode mode) {
  if (mode != quant_mode_) plan_.reset();  // precision change: plan is stale
  quant_mode_ = mode;
}

void TfmaeDetector::SetQuantSpec(QuantSpec spec) {
  quant_spec_ = std::move(spec);
  plan_.reset();
}

void TfmaeDetector::SetScoreReference(ScoreDistribution dist) {
  score_reference_ = std::move(dist);
}

bool TfmaeDetector::Calibrate(const data::TimeSeries& series,
                              std::string* error) {
  TFMAE_CHECK_MSG(fitted_, "Calibrate() called before Fit()");
  TFMAE_CHECK(series.num_features == model_->num_features());
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(config_.window, normalized.length);
  const std::int64_t stride =
      config_.score_stride > 0 ? std::min(config_.score_stride, window)
                               : window;
  const std::vector<std::int64_t> starts =
      data::WindowStarts(normalized.length, window, stride);

  // A private mask rng keeps calibration from perturbing the detector's
  // scoring stream — Score() after Calibrate() is bitwise the same as
  // Score() without it.
  Rng mask_rng(config_.seed + 1);
  std::vector<MaskedWindow> windows;
  windows.reserve(std::min(starts.size(), kMaxCalibrationWindows));
  for (std::int64_t start : starts) {
    if (windows.size() >= kMaxCalibrationWindows) break;
    std::vector<float> values = ExtractWindow(normalized, start, window);
    if (config_.per_window_normalization) {
      PerWindowNormalize(&values, window, normalized.num_features);
    }
    windows.push_back(model_->PrepareWindow(values, &mask_rng));
  }

  QuantSpec spec;
  if (!CalibrateQuantSpec(*model_, windows, series.num_features, &spec,
                          error)) {
    return false;
  }
  quant_spec_ = std::move(spec);
  plan_.reset();  // next Score() may now compile the quantized plan
  TFMAE_COUNTER_ADD("infer.quant.calibrations", 1);
  if (obs::LedgerActive()) {
    float amax_lo = 0.0f;
    float amax_hi = 0.0f;
    for (std::size_t i = 0; i < quant_spec_.sites.size(); ++i) {
      const float a = quant_spec_.sites[i].TensorAbsMax();
      if (i == 0) {
        amax_lo = amax_hi = a;
      } else {
        amax_lo = std::min(amax_lo, a);
        amax_hi = std::max(amax_hi, a);
      }
    }
    obs::Ledger::Instance().Event(
        "quant", {{"verdict", obs::JsonQuote("calibrated")},
                  {"sites", std::to_string(quant_spec_.sites.size())},
                  {"windows", std::to_string(quant_spec_.windows)},
                  {"amax_min", std::to_string(amax_lo)},
                  {"amax_max", std::to_string(amax_hi)}});
  }
  return true;
}

void TfmaeDetector::Fit(const data::TimeSeries& train) {
  FitInternal(train, FitOptions{}, nullptr);
}

void TfmaeDetector::Fit(const data::TimeSeries& train,
                        const FitOptions& options) {
  FitInternal(train, options, nullptr);
}

bool TfmaeDetector::Resume(const data::TimeSeries& train,
                           const FitOptions& options) {
  TFMAE_CHECK_MSG(!options.checkpoint_dir.empty(),
                  "Resume() requires FitOptions::checkpoint_dir");
  std::string error;
  auto found = FindLatestValidCheckpoint(options.checkpoint_dir, &error);
  if (!found.has_value()) {
    Log(LogLevel::kWarning, "Resume: no valid checkpoint (" + error + ")");
    return false;
  }
  const TrainingCheckpoint& checkpoint = found->second;
  if (checkpoint.config_crc != ConfigCrc(config_)) {
    Log(LogLevel::kError, "Resume: checkpoint " + found->first +
                              " was trained under a different config");
    return false;
  }
  if (checkpoint.num_features != train.num_features) {
    Log(LogLevel::kError,
        "Resume: checkpoint feature width does not match the training data");
    return false;
  }
  const std::int64_t window = std::min(config_.window, train.length);
  const std::int64_t stride = config_.stride > 0 ? config_.stride : window;
  const std::size_t expected_windows =
      data::WindowStarts(train.length, window, stride).size();
  if (checkpoint.progress.order.size() != expected_windows) {
    Log(LogLevel::kError,
        "Resume: checkpoint window count does not match the training data");
    return false;
  }
  Log(LogLevel::kInfo,
      "Resume: continuing from " + found->first + " (step " +
          std::to_string(checkpoint.progress.steps) + ")");
  FitInternal(train, options, &checkpoint);
  return true;
}

void TfmaeDetector::FitInternal(const data::TimeSeries& train,
                                const FitOptions& options,
                                const TrainingCheckpoint* resume_from) {
  TFMAE_CHECK_MSG(train.length >= 2, "training series too short");
  Stopwatch watch;
  MemoryStats::ResetPeak();

  // Every Fit starts from the configured seed so the reconstruction below
  // (parameter init, mask preparation) is a pure function of (data, config)
  // — the property that lets Resume() rebuild the pre-training state and
  // then overwrite it with the checkpointed one.
  rng_ = Rng(config_.seed);

  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);

  model_ = std::make_unique<TfmaeModel>(train.num_features, config_, &rng_);
  plan_.reset();  // weights change: any captured plan is stale
  nn::AdamOptions adam_options;
  adam_options.learning_rate = config_.learning_rate;
  adam_options.clip_grad_norm = config_.clip_grad_norm;
  optimizer_ = std::make_unique<nn::Adam>(model_->Parameters(), adam_options);

  // Slice training windows and precompute masks once (masks are functions of
  // the data only).
  const std::int64_t window = std::min(config_.window, normalized.length);
  const std::int64_t stride = config_.stride > 0 ? config_.stride : window;
  const std::vector<std::int64_t> starts =
      data::WindowStarts(normalized.length, window, stride);
  std::vector<MaskedWindow> windows;
  windows.reserve(starts.size());
  for (std::int64_t start : starts) {
    std::vector<float> values = ExtractWindow(normalized, start, window);
    if (config_.per_window_normalization) {
      PerWindowNormalize(&values, window, normalized.num_features);
    }
    windows.push_back(model_->PrepareWindow(values, &rng_));
  }
  stats_ = TrainStats{};
  stats_.num_windows = static_cast<std::int64_t>(windows.size());
  if (obs::LedgerActive()) {
    // One-time masking statistics: functions of (data, config, seed) only,
    // so the record is thread-count-invariant like every other event.
    std::int64_t masked_steps = 0;
    std::int64_t masked_bins = 0;
    for (const MaskedWindow& w : windows) {
      masked_steps += static_cast<std::int64_t>(w.temporal.masked.size());
      for (const auto& column : w.frequency) {
        masked_bins += static_cast<std::int64_t>(column.masked_bins.size());
      }
    }
    obs::Ledger::Instance().MaskingStats(
        static_cast<std::int64_t>(windows.size()), window, masked_steps,
        static_cast<std::int64_t>(windows.size()) * window, masked_bins);
  }

  std::vector<std::size_t> order(windows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Restore the checkpointed state over the freshly reconstructed one.
  std::int64_t start_epoch = 0;
  std::int64_t start_window = 0;
  double resumed_loss_sum = 0.0;
  if (resume_from != nullptr) {
    TFMAE_CHECK_MSG(nn::DecodeParameters(model_.get(), resume_from->weights),
                    "checkpoint weights do not match the model architecture");
    TFMAE_CHECK_MSG(optimizer_->ImportState(resume_from->adam),
                    "checkpoint optimizer state does not match the model");
    rng_.SetState(resume_from->rng);
    start_epoch = resume_from->progress.epoch;
    start_window = resume_from->progress.next_window;
    resumed_loss_sum = resume_from->progress.loss_sum;
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::size_t>(resume_from->progress.order[i]);
    }
    stats_.num_steps = resume_from->progress.steps;
    stats_.mean_loss_first_epoch = resume_from->progress.mean_loss_first_epoch;
    stats_.resumed_at_step = resume_from->progress.steps;
  }

  const bool checkpointing =
      !options.checkpoint_dir.empty() && options.checkpoint_every > 0;
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
  }
  const auto write_checkpoint = [&](std::int64_t epoch,
                                    std::int64_t next_window,
                                    double loss_sum) {
    TrainingCheckpoint checkpoint;
    checkpoint.config_crc = ConfigCrc(config_);
    checkpoint.num_features = train.num_features;
    checkpoint.progress.epoch = epoch;
    checkpoint.progress.next_window = next_window;
    checkpoint.progress.steps = stats_.num_steps;
    checkpoint.progress.loss_sum = loss_sum;
    checkpoint.progress.mean_loss_first_epoch = stats_.mean_loss_first_epoch;
    checkpoint.progress.order.assign(order.begin(), order.end());
    checkpoint.rng = rng_.GetState();
    checkpoint.adam = optimizer_->ExportState();
    checkpoint.weights = nn::EncodeParameters(*model_);
    const std::string path =
        TrainingCheckpointPath(options.checkpoint_dir, stats_.num_steps);
    const bool saved = SaveTrainingCheckpoint(checkpoint, path);
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().CheckpointWrite(
          stats_.num_steps, std::filesystem::path(path).filename().string(),
          saved);
    }
    if (saved) {
      ++stats_.checkpoints_written;
      TFMAE_COUNTER_ADD("core.fit.checkpoints_written", 1);
      PruneTrainingCheckpoints(options.checkpoint_dir, options.keep_last);
    } else {
      // A failed checkpoint write must never kill training: the model in
      // memory is healthy, only the recovery horizon shrinks.
      ++stats_.checkpoint_failures;
      TFMAE_COUNTER_ADD("core.fit.checkpoint_failures", 1);
      if (obs::FlightRecorderActive()) {
        obs::FlightRecorder::Instance().Note(
            "checkpoint",
            "write failed at step " + std::to_string(stats_.num_steps));
      }
      Log(LogLevel::kWarning, "checkpoint write failed at step " +
                                  std::to_string(stats_.num_steps) +
                                  "; training continues");
    }
  };

  nn::NumericGuard guard(optimizer_.get(), options.numeric);
  const std::int64_t batch = std::max<std::int64_t>(1, config_.batch_size);
  bool stop = false;
  for (std::int64_t epoch = start_epoch; epoch < config_.epochs && !stop;
       ++epoch) {
    std::int64_t window_begin = 0;
    double loss_sum = 0.0;
    if (resume_from != nullptr && epoch == start_epoch) {
      window_begin = start_window;
      loss_sum = resumed_loss_sum;
    } else {
      rng_.Shuffle(&order);
    }
    std::int64_t accumulated = 0;
    double step_loss = 0.0;
    model_->ZeroGrad();
    for (std::int64_t idx = window_begin;
         idx < static_cast<std::int64_t>(order.size()) && !stop; ++idx) {
      const MaskedWindow& masked = windows[order[static_cast<std::size_t>(idx)]];
      const TfmaeModel::Views views = model_->Forward(masked);
      // Gradients accumulate across the mini-batch; scale keeps the
      // effective step equal to the batch-mean gradient.
      const Tensor loss = ops::Scale(model_->Loss(views),
                                     1.0f / static_cast<float>(batch));
      loss.Backward();
      double window_loss = loss.item() * static_cast<double>(batch);
      if (TFMAE_FAULT("train.nan_loss")) {
        window_loss = std::numeric_limits<double>::quiet_NaN();
      }
      // Blown losses are skipped by the guard below; keeping them out of
      // the epoch mean keeps TrainStats finite through a recovered run.
      if (std::isfinite(window_loss)) loss_sum += window_loss;
      step_loss += window_loss;
      if (++accumulated == batch) {
        if (guard.PreStep(static_cast<float>(step_loss))) {
          if (obs::LedgerActive()) {
            // Pre-clip gradient norm; recomputed only when a ledger is open,
            // so default runs pay nothing for the record.
            obs::Ledger::Instance().Step(
                stats_.num_steps, step_loss,
                nn::GlobalGradNorm(optimizer_->parameters()),
                static_cast<double>(optimizer_->options().learning_rate));
          }
          optimizer_->Step();
          guard.CommitGoodStep();
          ++stats_.num_steps;
          if (checkpointing &&
              stats_.num_steps % options.checkpoint_every == 0) {
            write_checkpoint(epoch, idx + 1, loss_sum);
          }
          if (options.max_steps > 0 && stats_.num_steps >= options.max_steps) {
            stats_.interrupted = true;
            stop = true;
          }
        } else if (guard.gave_up()) {
          stats_.interrupted = true;
          stop = true;
          if (obs::FlightRecorderActive()) {
            obs::FlightRecorder::Instance().Dump("guard_give_up");
          }
        }
        model_->ZeroGrad();
        accumulated = 0;
        step_loss = 0.0;
        if (!stop && TFMAE_FAULT("train.interrupt")) {
          // Simulated crash: training stops without a final checkpoint, as
          // a SIGKILL would. Resume() picks up from the last periodic one.
          Log(LogLevel::kWarning, "injected training interrupt at step " +
                                      std::to_string(stats_.num_steps));
          stats_.interrupted = true;
          stop = true;
          if (obs::FlightRecorderActive()) {
            obs::FlightRecorder::Instance().Note(
                "fault", "train.interrupt at step " +
                             std::to_string(stats_.num_steps));
            obs::FlightRecorder::Instance().Dump("injected_fault");
          }
        }
      }
    }
    if (stop) break;
    if (accumulated > 0) {
      if (guard.PreStep(static_cast<float>(step_loss))) {
        if (obs::LedgerActive()) {
          obs::Ledger::Instance().Step(
              stats_.num_steps, step_loss,
              nn::GlobalGradNorm(optimizer_->parameters()),
              static_cast<double>(optimizer_->options().learning_rate));
        }
        optimizer_->Step();
        guard.CommitGoodStep();
        ++stats_.num_steps;
      } else if (guard.gave_up()) {
        stats_.interrupted = true;
        if (obs::FlightRecorderActive()) {
          obs::FlightRecorder::Instance().Dump("guard_give_up");
        }
        break;
      }
      model_->ZeroGrad();
    }
    const double mean_loss =
        windows.empty() ? 0.0 : loss_sum / static_cast<double>(windows.size());
    if (epoch == 0) stats_.mean_loss_first_epoch = mean_loss;
    stats_.mean_loss_last_epoch = mean_loss;
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().EpochEnd(epoch, mean_loss, stats_.num_steps);
    }
  }

  stats_.numeric = guard.stats();
  stats_.fit_seconds = watch.ElapsedSeconds();
  stats_.peak_tensor_bytes = MemoryStats::PeakBytes();
  fitted_ = true;
}

bool TfmaeDetector::SaveCheckpoint(const std::string& prefix) const {
  TFMAE_CHECK_MSG(fitted_, "SaveCheckpoint() called before Fit()");
  if (!SaveConfig(config_, prefix + ".config")) return false;
  {
    std::ofstream norm(prefix + ".norm");
    if (!norm) return false;
    norm.precision(std::numeric_limits<float>::max_digits10);
    norm << normalizer_.means().size() << '\n';
    for (std::size_t i = 0; i < normalizer_.means().size(); ++i) {
      norm << normalizer_.means()[i] << ' ' << normalizer_.stds()[i] << '\n';
    }
    if (!norm) return false;
  }
  if (!nn::SaveParameters(*model_, prefix + ".weights")) return false;
  // The calibration spec travels with the checkpoint as its own container
  // (<prefix>.quant) so a missing/corrupt quant file degrades the loaded
  // detector to fp32 scoring instead of failing the weight load.
  if (!quant_spec_.empty() && !SaveQuantSpec(quant_spec_, prefix + ".quant")) {
    return false;
  }
  // Same sidecar contract for the drift monitor's calibration score
  // reference (<prefix>.drift): absent when never built, tolerated when
  // missing at load.
  if (!score_reference_.empty() &&
      !SaveScoreDistribution(score_reference_, prefix + ".drift")) {
    return false;
  }
  return true;
}

bool TfmaeDetector::LoadCheckpoint(const std::string& prefix) {
  const auto config = LoadConfig(prefix + ".config");
  if (!config.has_value()) return false;

  std::ifstream norm(prefix + ".norm");
  if (!norm) return false;
  std::size_t count = 0;
  norm >> count;
  if (!norm || count == 0) return false;
  std::vector<float> means(count);
  std::vector<float> stds(count);
  for (std::size_t i = 0; i < count; ++i) {
    norm >> means[i] >> stds[i];
  }
  if (!norm) return false;

  config_ = *config;
  rng_ = Rng(config_.seed);
  normalizer_.SetStatistics(std::move(means), std::move(stds));
  model_ = std::make_unique<TfmaeModel>(static_cast<std::int64_t>(count),
                                        config_, &rng_);
  if (!nn::LoadParameters(model_.get(), prefix + ".weights")) {
    model_.reset();
    return false;
  }
  plan_.reset();  // loaded weights: any captured plan is stale
  quant_spec_ = QuantSpec{};
  std::string quant_error;
  if (!LoadQuantSpec(prefix + ".quant", &quant_spec_, &quant_error)) {
    // Missing or corrupt calibration: degrade to fp32 scoring; int8 mode
    // will count a fallback per Score() call until re-calibrated.
    quant_spec_ = QuantSpec{};
  }
  score_reference_ = ScoreDistribution{};
  std::string drift_error;
  if (!LoadScoreDistribution(prefix + ".drift", &score_reference_,
                             &drift_error)) {
    // Missing or corrupt reference: drift monitoring stays off until the
    // server rebuilds one from calibration scores.
    score_reference_ = ScoreDistribution{};
  }
  optimizer_.reset();  // a loaded detector scores; re-Fit to train further
  fitted_ = true;
  return true;
}

std::vector<float> TfmaeDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  TFMAE_CHECK(series.num_features == model_->num_features());
  const data::TimeSeries normalized = normalizer_.Apply(series);

  const std::int64_t window = std::min(config_.window, normalized.length);
  const std::int64_t stride =
      config_.score_stride > 0 ? std::min(config_.score_stride, window)
                               : window;
  const std::vector<std::int64_t> starts =
      data::WindowStarts(normalized.length, window, stride);

  std::vector<double> score_sum(static_cast<std::size_t>(series.length), 0.0);
  std::vector<std::int32_t> score_count(
      static_cast<std::size_t>(series.length), 0);
  // Resolve the scoring precision once per call. Int8 needs a calibration
  // spec whose feature count matches the scored series; anything else is a
  // counted, ledger-visible fallback to fp32.
  auto quant_fallback = [this](const std::string& reason) {
    ++quant_fallbacks_;
    TFMAE_COUNTER_ADD("infer.quant.fallbacks", 1);
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().Event(
          "quant", {{"verdict", obs::JsonQuote("fallback")},
                    {"reason", obs::JsonQuote(reason)}});
    }
  };
  const QuantSpec* quant = nullptr;
  if (quant_mode_ == QuantMode::kInt8) {
    if (quant_spec_.empty()) {
      quant_fallback("no calibration spec");
    } else if (quant_spec_.num_features != series.num_features) {
      quant_fallback("calibration feature count mismatch: spec " +
                     std::to_string(quant_spec_.num_features) + " vs series " +
                     std::to_string(series.num_features));
    } else if (!plan_enabled_) {
      quant_fallback("inference plan disabled");
    } else {
      quant = &quant_spec_;
    }
  }

  // A failed capture disables the plan for the remainder of this call
  // (each window would fail the same way); the next Score() retries.
  bool capture_failed_this_call = false;
  for (std::int64_t start : starts) {
    std::vector<float> values = ExtractWindow(normalized, start, window);
    if (config_.per_window_normalization) {
      PerWindowNormalize(&values, window, normalized.num_features);
    }
    const MaskedWindow masked = model_->PrepareWindow(values, &rng_);
    if (plan_enabled_ && plan_ != nullptr && plan_->Matches(masked) &&
        plan_->stats().quantized == (quant != nullptr)) {
      plan_->Score(masked, &plan_scores_);
    } else if (plan_enabled_ && !capture_failed_this_call) {
      // Capture (or re-capture after a geometry / precision change). The
      // capture pass runs this window eagerly and returns its scores
      // either way.
      std::string err;
      std::unique_ptr<InferencePlan> built;
      const QuantSpec* capture_quant = quant;
      if (capture_quant != nullptr && TFMAE_FAULT("infer.quant.capture")) {
        // Injected quant-capture fault: prove the fp32 fallback path.
        quant_fallback("injected fault: infer.quant.capture");
        capture_quant = nullptr;
        quant = nullptr;
      }
      if (TFMAE_FAULT("infer.plan.capture")) {
        err = "injected fault: infer.plan.capture";
        plan_scores_ = model_->ScoreWindow(masked);
      } else {
        built = InferencePlan::Capture(*model_, masked, &plan_scores_, &err,
                                       capture_quant);
        if (built == nullptr && capture_quant != nullptr) {
          // Quantized capture failed its self-verification (or lowering):
          // fall back to a fp32 plan for this and future windows.
          quant_fallback(err);
          quant = nullptr;
          built = InferencePlan::Capture(*model_, masked, &plan_scores_, &err);
        }
      }
      if (built != nullptr) {
        plan_ = std::move(built);
        const InferencePlanStats& ps = plan_->stats();
        TFMAE_COUNTER_ADD("infer.plan.detector_captures", 1);
        if (obs::LedgerActive()) {
          obs::Ledger::Instance().Event(
              "plan",
              {{"ops", std::to_string(ps.ops)},
               {"captured_ops", std::to_string(ps.captured_ops)},
               {"fused_ops", std::to_string(ps.fused_ops)},
               {"elided_reshapes", std::to_string(ps.elided_reshapes)},
               {"slots", std::to_string(ps.slots)},
               {"arena_bytes", std::to_string(ps.arena_bytes)},
               // Wall-clock field: the t_ prefix keeps it out of the
               // thread-count-invariant canonical stream.
               {"t_capture_ms", std::to_string(ps.capture_ms)}});
          if (ps.quantized) {
            obs::Ledger::Instance().Event(
                "quant",
                {{"verdict", obs::JsonQuote("self_verified")},
                 {"isa", obs::JsonQuote(quant::QuantGemmIsa())},
                 {"sites", std::to_string(quant_spec_.sites.size())},
                 {"quant_linear_ops", std::to_string(ps.quant_linear_ops)},
                 {"elided_quant_pairs",
                  std::to_string(ps.elided_quant_pairs)},
                 {"quant_arena_bytes",
                  std::to_string(ps.quant_arena_bytes)}});
          }
        }
      } else {
        plan_.reset();
        capture_failed_this_call = true;
        ++plan_capture_failures_;
        // The reason lands in the obs counters; scoring proceeds eagerly.
        (void)err;
        TFMAE_COUNTER_ADD("infer.plan.fallbacks", 1);
      }
    } else {
      plan_scores_ = model_->ScoreWindow(masked);
    }
    const std::vector<float>& window_scores = plan_scores_;
    for (std::int64_t t = 0; t < window; ++t) {
      score_sum[static_cast<std::size_t>(start + t)] +=
          window_scores[static_cast<std::size_t>(t)];
      ++score_count[static_cast<std::size_t>(start + t)];
    }
  }
  std::vector<float> scores(static_cast<std::size_t>(series.length), 0.0f);
  for (std::size_t t = 0; t < scores.size(); ++t) {
    if (score_count[t] > 0) {
      scores[t] =
          static_cast<float>(score_sum[t] / static_cast<double>(score_count[t]));
    }
  }
  if (obs::LedgerActive() && !scores.empty()) {
    // End-of-run anomaly-score distribution (the Fig. 9 CDF data): 64
    // linear buckets over the observed [min, max].
    float lo = scores[0];
    float hi = scores[0];
    for (const float s : scores) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    constexpr int kBuckets = 64;
    std::vector<std::uint64_t> buckets(kBuckets, 0);
    const double span = static_cast<double>(hi) - static_cast<double>(lo);
    for (const float s : scores) {
      int b = span > 0.0
                  ? static_cast<int>((static_cast<double>(s) - lo) / span *
                                     kBuckets)
                  : 0;
      buckets[static_cast<std::size_t>(std::clamp(b, 0, kBuckets - 1))] += 1;
    }
    obs::Ledger::Instance().ScoreHistogram(
        "anomaly_score", lo, hi, static_cast<std::uint64_t>(scores.size()),
        buckets);
  }
  return scores;
}

}  // namespace tfmae::core
