// The TFMAE network (paper Section IV): temporal-frequency masks feeding two
// Transformer-based autoencoders that emit per-time-step representations
// P^(L) (temporal view) and F^(L) (frequency view).
#ifndef TFMAE_CORE_MODEL_H_
#define TFMAE_CORE_MODEL_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/transformer.h"

namespace tfmae::core {

/// Precomputed masking state of one input window. Masks depend only on the
/// data (not on learned parameters), so they are computed once per window
/// and reused across epochs and scoring passes.
struct MaskedWindow {
  std::int64_t length = 0;
  std::int64_t num_features = 0;
  /// Raw window values, row-major [length, num_features].
  std::vector<float> values;
  /// Temporal mask (Eq. (2)).
  masking::TemporalMask temporal;
  /// Per-feature frequency mask decomposition (Eq. (9)-(10)).
  std::vector<masking::FrequencyMaskedColumn> frequency;
};

/// The dual masked autoencoder. All trainable parameters (projections, mask
/// tokens m^(T) and m^(F), and the three Transformer stacks) live here.
class TfmaeModel : public nn::Module {
 public:
  TfmaeModel(std::int64_t num_features, const TfmaeConfig& config, Rng* rng);

  /// The two views of Eq. (14)-(16): temporal P^(L) and frequency F^(L),
  /// both [window, model_dim].
  struct Views {
    Tensor temporal;
    Tensor frequency;
  };

  /// Prepares the masking state of one window (values: [T * N] row-major).
  /// `mask_rng` is consumed only by the random masking ablation variants.
  MaskedWindow PrepareWindow(const std::vector<float>& values,
                             Rng* mask_rng) const;

  /// Runs both autoencoders on a prepared window.
  Views Forward(const MaskedWindow& window) const;

  /// Training objective for one window (Eq. (14)/(15) depending on config):
  /// the contrastive stage detaches the temporal view; when adversarial
  /// training is on, a maximizing stage with the frequency view detached is
  /// subtracted. Returns a scalar tensor.
  Tensor Loss(const Views& views) const;

  /// Anomaly scores (Eq. (16)): per-time-step symmetric KL divergence
  /// between the two views' softmax distributions.
  std::vector<float> ScoreWindow(const MaskedWindow& window) const;

  const TfmaeConfig& config() const { return config_; }
  std::int64_t num_features() const { return num_features_; }

  /// Positions in Parameters() of the score head: every parameter of the
  /// final layer of each decoder stack. These layers form the logits that
  /// the SymKL anomaly score compares, and int8 calibration excludes them
  /// (see CalibrateQuantSpec).
  std::vector<int> ScoreHeadParameterIndices() const;

 private:
  Tensor TemporalView(const MaskedWindow& window) const;
  Tensor FrequencyView(const MaskedWindow& window) const;

  std::int64_t num_features_;
  TfmaeConfig config_;

  nn::Linear temporal_proj_;       // W^(T), b^(T) (Eq. (3))
  nn::Linear frequency_proj_;      // W^(F), b^(F) (Eq. (10))
  Tensor temporal_mask_token_;     // m^(T) in R^D
  Tensor frequency_token_re_;      // Re(m^(F)) in R^N
  Tensor frequency_token_im_;      // Im(m^(F)) in R^N
  nn::TransformerStack temporal_encoder_;
  nn::TransformerStack temporal_decoder_;
  nn::TransformerStack frequency_decoder_;

  // Shared per-window RNG for random-masking variants; mutable access is
  // routed through PrepareWindow's argument instead.
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_MODEL_H_
