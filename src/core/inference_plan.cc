// Plan builder + replay executor for pre-planned inference (DESIGN.md §10).
//
// Build pipeline (all at Capture() time):
//   1. trace   — run the eager ScoreWindow under a capture::Recorder.
//   2. elide   — Reshape outputs become value aliases of their inputs (a
//                row-major reshape is a copy with identical contents, so the
//                consumer can read the producer's storage directly).
//   3. fuse    — single-use elementwise (binary) producers are folded into
//                their consuming binary op as a per-element step program;
//                the folded intermediate is never materialized. Per-element
//                arithmetic and operand values are unchanged, so fusion is
//                bitwise-invisible.
//   4. plan    — lifetime analysis (first-def / last-use op interval per
//                storage) feeds a best-fit offset allocator that lays every
//                input, intermediate, and op scratch region into one arena.
//   5. resolve — every op becomes a ReplayOp: a kernel function pointer plus
//                raw data pointers into the arena / parameter storage.
//   6. verify  — one replay of the capture window, memcmp'd against the
//                eager scores; any difference rejects the plan.
//
// Replay (Score()) binds the window's values and index vectors into the
// arena and runs `for (op : ops) op.fn(op)`. No tensors, no autograd, no
// shared_ptr churn, no dispatch branching.
#include "core/inference_plan.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "nn/transformer.h"
#include "obs/trace.h"
#include "tensor/capture.h"
#include "tensor/gemm_kernels.h"
#include "tensor/op_kernels.h"
#include "tensor/pool.h"
#include "tensor/quant_kernels.h"
#include "util/logging.h"
#include "util/memory.h"

namespace tfmae::core {
namespace {

namespace cap = ops::capture;
namespace kn = ops::kernels;

// Fused per-element programs are bounded so replay can evaluate them on a
// fixed-size stack array.
constexpr int kMaxFusedSteps = 8;
constexpr int kMaxFusedExt = 2 * kMaxFusedSteps;

// Arena offsets are aligned to 16 floats (64 bytes, one cache line) so
// adjacent slots never share a line.
constexpr std::int64_t kAlignFloats = 16;

/// One step of a fused elementwise program. Operands encode as: >= 0 — an
/// index into the op's external operand table; < 0 — the result of step
/// -(value + 1).
struct FusedStep {
  kn::BinaryKind kind = kn::BinaryKind::kAdd;
  int lhs = 0;
  int rhs = 0;
};

struct ReplayOp;
using ReplayFn = void (*)(const ReplayOp&);

/// Resolved operands of one int8 linear op (DESIGN.md §12). Lives in
/// State::qdata; the ReplayOp only carries a pointer so the fp32 hot path
/// stays compact.
struct QuantOpData {
  const float* src = nullptr;    ///< fp32 input activation, [m, k]
  std::uint8_t* qbuf = nullptr;  ///< u8 arena slot, [m, k4]
  bool quantize = false;  ///< first site reading this input: fills qbuf
  const float* ch_inv = nullptr;  ///< per-channel 1/scale, k floats
  const std::int8_t* packed = nullptr;   ///< VNNI-packed s8 weights
  const float* col_scale = nullptr;      ///< per-output-channel scales
  const std::int32_t* col_comp = nullptr;  ///< zero-point compensation
  const float* bias = nullptr;             ///< null for Epilogue::kNone
  quant::Epilogue epilogue = quant::Epilogue::kNone;
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
};

/// A fully-resolved op: kernel pointer plus raw operand pointers. Replay
/// never touches tensors or node tables.
struct ReplayOp {
  ReplayFn fn = nullptr;

  const float* in0 = nullptr;
  const float* in1 = nullptr;
  const float* in2 = nullptr;
  std::int64_t n0 = 0;  ///< numel of in0 (broadcast modulus)
  std::int64_t n1 = 0;  ///< numel of in1 (broadcast modulus)
  float* out = nullptr;
  std::int64_t out_n = 0;

  // Dimension attributes; meaning depends on the kernel (gemm m/k/n, row
  // ops rows/cols, binary ops the BinaryKind).
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::int64_t batch = 0;
  float scalar = 0.0f;

  int perm[3] = {0, 1, 2};
  std::int64_t pdims[3] = {0, 0, 0};

  // Index-consuming ops: `idx` points at the plan-owned snapshot or is
  // rebound per replay to the window's mask vector (dyn >= 0).
  const std::int64_t* idx = nullptr;
  std::int64_t idx_n = 0;
  int dyn = -1;  ///< -1 static, 0 = unmasked vector, 1 = masked vector

  float* scratch = nullptr;  ///< arena region for row-op temporaries
  std::int64_t grain = 1;    ///< row chunk grain (scratch region indexing)
  const float* pe = nullptr;  ///< positional-encoding table (kPosEncAdd)

  int nsteps = 0;
  FusedStep steps[kMaxFusedSteps];
  const float* ext[kMaxFusedExt] = {nullptr};
  std::int64_t ext_n[kMaxFusedExt] = {0};

  const QuantOpData* qd = nullptr;  ///< int8 linear ops only
};

// ---- Replay kernels --------------------------------------------------------
//
// Every kernel reproduces the corresponding eager forward exactly: same
// per-element arithmetic (tensor/op_kernels.h), same accumulation order.
// Elementwise kernels use the coarser fixed-grain dispatch — chunk layout
// cannot change values when writes are disjoint — so a replayed window
// crosses the thread pool far fewer times than its eager twin.

void RunBinary(const ReplayOp& op) {
  const auto kind = static_cast<kn::BinaryKind>(op.m);
  const float* a = op.in0;
  const float* b = op.in1;
  float* out = op.out;
  if (op.n0 == op.out_n && op.n1 == op.out_n) {
    kn::ForEachElemChunkCoarse(op.out_n, [=](std::int64_t s, std::int64_t e) {
      for (std::int64_t i = s; i < e; ++i) {
        out[i] = kn::ApplyBinary(kind, a[i], b[i]);
      }
    });
    return;
  }
  // Broadcast path: rolling operand cursors instead of per-element modulo —
  // same element order and arithmetic, no integer division in the loop.
  const std::int64_t an = op.n0;
  const std::int64_t bn = op.n1;
  kn::ForEachElemChunkCoarse(op.out_n, [=](std::int64_t s, std::int64_t e) {
    std::int64_t ia = s % an;
    std::int64_t ib = s % bn;
    for (std::int64_t i = s; i < e; ++i) {
      out[i] = kn::ApplyBinary(kind, a[ia], b[ib]);
      if (++ia == an) ia = 0;
      if (++ib == bn) ib = 0;
    }
  });
}

void RunFused(const ReplayOp& op) {
  // Block-evaluated step program: each step runs as a tight binary loop over
  // a stack-resident block, so the interpreter overhead (operand resolution,
  // kind switch) is paid per block+step, not per element. Element order and
  // per-element arithmetic are exactly those of the unfused chain, so the
  // result stays bitwise-identical.
  kn::ForEachElemChunkCoarse(op.out_n, [&op](std::int64_t s, std::int64_t e) {
    constexpr std::int64_t kBlock = 256;
    float buf[kMaxFusedSteps][kBlock];
    float gather_a[kBlock];
    float gather_b[kBlock];
    for (std::int64_t b = s; b < e; b += kBlock) {
      const std::int64_t n = std::min(kBlock, e - b);
      for (int si = 0; si < op.nsteps; ++si) {
        const FusedStep& st = op.steps[si];
        // Resolve each operand to a dense pointer for this block: a prior
        // step's block, a full-size external slice, or a gathered broadcast
        // (rolling cursor, no per-element division).
        auto resolve = [&](int operand, float* gather) -> const float* {
          if (operand < 0) return buf[-operand - 1];
          const float* p = op.ext[operand];
          const std::int64_t pn = op.ext_n[operand];
          if (pn == op.out_n) return p + b;
          std::int64_t ip = b % pn;
          for (std::int64_t i = 0; i < n; ++i) {
            gather[i] = p[ip];
            if (++ip == pn) ip = 0;
          }
          return gather;
        };
        const float* pa = resolve(st.lhs, gather_a);
        const float* pb = resolve(st.rhs, gather_b);
        float* po = si == op.nsteps - 1 ? op.out + b : buf[si];
        switch (st.kind) {
          case kn::BinaryKind::kAdd:
            for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
            break;
          case kn::BinaryKind::kSub:
            for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
            break;
          case kn::BinaryKind::kMul:
            for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
            break;
          case kn::BinaryKind::kDiv:
            for (std::int64_t i = 0; i < n; ++i) po[i] = pa[i] / pb[i];
            break;
        }
      }
    }
  });
}

void RunBiasGelu(const ReplayOp& op) {
  const float* x = op.in0;
  const float* bias = op.in1;
  const std::int64_t bn = op.n1;
  float* out = op.out;
  // Row-blocked bias broadcast: a short prologue walks to the next bias
  // period boundary, then whole periods run as dense branch-free loops.
  kn::ForEachElemChunkCoarse(op.out_n, [=](std::int64_t s, std::int64_t e) {
    std::int64_t i = s;
    for (std::int64_t ib = s % bn; i < e && ib != 0; ++i) {
      out[i] = kn::GeluApprox(x[i] + bias[ib]);
      if (++ib == bn) ib = 0;
    }
    for (; i + bn <= e; i += bn) {
      for (std::int64_t c = 0; c < bn; ++c) {
        out[i + c] = kn::GeluApprox(x[i + c] + bias[c]);
      }
    }
    for (std::int64_t c = 0; i < e; ++i, ++c) {
      out[i] = kn::GeluApprox(x[i] + bias[c]);
    }
  });
}

// Int8-plan twin of RunBiasGelu: identical structure, FastGelu inside.
// Only quantized plans resolve to the Fast* kernels — the fp32 plan keeps
// libm so it stays bitwise-identical to eager scoring.
void RunBiasGeluFast(const ReplayOp& op) {
  const float* x = op.in0;
  const float* bias = op.in1;
  const std::int64_t bn = op.n1;
  float* out = op.out;
  kn::ForEachElemChunkCoarse(op.out_n, [=](std::int64_t s, std::int64_t e) {
    std::int64_t i = s;
    for (std::int64_t ib = s % bn; i < e && ib != 0; ++i) {
      out[i] = quant::FastGelu(x[i] + bias[ib]);
      if (++ib == bn) ib = 0;
    }
    for (; i + bn <= e; i += bn) {
      quant::BiasGeluRowFast(x + i, bias, out + i, bn);
    }
    for (std::int64_t c = 0; i < e; ++i, ++c) {
      out[i] = quant::FastGelu(x[i] + bias[c]);
    }
  });
}

void RunQuantLinear(const ReplayOp& op) {
  const QuantOpData& q = *op.qd;
  if (q.quantize) {
    quant::QuantizeU8PerChannel(q.src, q.qbuf, q.m, q.k, q.ch_inv);
  }
  // a_scale is 1: the per-channel activation scales are folded into the
  // packed weights (row_scale at pack time), see quant_kernels.h.
  quant::QuantLinear(q.qbuf, q.packed, q.col_scale, q.col_comp, q.bias, 1.0f,
                     q.epilogue, op.out, q.m, q.k, q.n);
}

void RunMatMul(const ReplayOp& op) {
  std::memset(op.out, 0,
              static_cast<std::size_t>(op.m * op.n) * sizeof(float));
  gemm::Gemm(op.in0, op.in1, op.out, op.m, op.k, op.n);
}

void RunBatchedMatMul(const ReplayOp& op) {
  std::memset(op.out, 0,
              static_cast<std::size_t>(op.batch * op.m * op.n) * sizeof(float));
  gemm::BatchedGemm(op.in0, op.in1, op.out, op.batch, op.m, op.k, op.n);
}

void RunBatchedMatMulBt(const ReplayOp& op) {
  std::memset(op.out, 0,
              static_cast<std::size_t>(op.batch * op.m * op.n) * sizeof(float));
  gemm::BatchedGemmBt(op.in0, op.in1, op.out, op.batch, op.m, op.k, op.n);
}

void RunPermute3(const ReplayOp& op) {
  kn::Permute3Forward(op.in0, op.out,
                      {op.pdims[0], op.pdims[1], op.pdims[2]},
                      {op.perm[0], op.perm[1], op.perm[2]});
}

void RunIndexRows(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  for (std::int64_t i = 0; i < op.idx_n; ++i) {
    std::memcpy(op.out + i * cols, op.in0 + op.idx[i] * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void RunScatterRows(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  std::memset(op.out, 0,
              static_cast<std::size_t>(op.m * cols) * sizeof(float));
  for (std::int64_t i = 0; i < op.idx_n; ++i) {
    std::memcpy(op.out + op.idx[i] * cols, op.in0 + i * cols,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void RunRepeatRow(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  for (std::int64_t i = 0; i < op.m; ++i) {
    std::memcpy(op.out + i * cols, op.in0,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void RunScaleSoftmax(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  kn::ForEachRowChunk(op.m, cols, [&op, cols](std::int64_t r0,
                                              std::int64_t r1) {
    float* tmp = op.scratch + (r0 / op.grain) * cols;
    for (std::int64_t r = r0; r < r1; ++r) {
      kn::ScaleSoftmaxRow(op.in0 + r * cols, op.out + r * cols, cols,
                          op.scalar, tmp);
    }
  });
}

// Int8-plan twin of RunScaleSoftmax with the FastExp polynomial.
void RunScaleSoftmaxFast(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  kn::ForEachRowChunk(op.m, cols, [&op, cols](std::int64_t r0,
                                              std::int64_t r1) {
    float* tmp = op.scratch + (r0 / op.grain) * cols;
    for (std::int64_t r = r0; r < r1; ++r) {
      quant::ScaleSoftmaxRowFast(op.in0 + r * cols, op.out + r * cols, cols,
                                 op.scalar, tmp);
    }
  });
}

void RunLayerNorm(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  kn::ForEachRowChunk(op.m, cols, [&op, cols](std::int64_t r0,
                                              std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float mean = 0.0f;
      float inv_std = 0.0f;
      kn::LayerNormRow(op.in0 + r * cols, op.in1, op.in2, cols, op.scalar,
                       op.out + r * cols, &mean, &inv_std);
    }
  });
}

void RunPosEncAdd(const ReplayOp& op) {
  const std::int64_t dim = op.k;
  for (std::int64_t i = 0; i < op.m; ++i) {
    const float* pe_row = op.pe + op.idx[i] * dim;
    const float* x = op.in0 + i * dim;
    float* out = op.out + i * dim;
    // Same operand order as the eager gather-then-AddInPlace: pe + x.
    for (std::int64_t d = 0; d < dim; ++d) out[d] = pe_row[d] + x[d];
  }
}

void RunSymKlPerRow(const ReplayOp& op) {
  const std::int64_t cols = op.k;
  kn::ForEachRowChunk(op.m, cols, [&op, cols](std::int64_t r0,
                                              std::int64_t r1) {
    float* tmp = op.scratch + (r0 / op.grain) * 2 * cols;
    for (std::int64_t r = r0; r < r1; ++r) {
      op.out[r] = kn::SymmetricKlRow(op.in0 + r * cols, op.in1 + r * cols,
                                     cols, tmp, tmp + cols);
    }
  });
}

// ---- Memory planner --------------------------------------------------------

/// Best-fit offset allocator over a single arena. Free blocks coalesce with
/// their neighbors; the arena grows only when no free block fits, so the
/// final size is the lifetime-aware high-water mark.
class ArenaPlanner {
 public:
  std::int64_t Alloc(std::int64_t floats) {
    floats = Align(floats);
    int best = -1;
    for (int i = 0; i < static_cast<int>(free_.size()); ++i) {
      if (free_[i].floats >= floats &&
          (best < 0 || free_[i].floats < free_[best].floats)) {
        best = i;
      }
    }
    if (best >= 0) {
      const std::int64_t offset = free_[best].offset;
      free_[best].offset += floats;
      free_[best].floats -= floats;
      if (free_[best].floats == 0) {
        free_.erase(free_.begin() + best);
      }
      return offset;
    }
    const std::int64_t offset = end_;
    end_ += floats;
    return offset;
  }

  void Free(std::int64_t offset, std::int64_t floats) {
    floats = Align(floats);
    Block block{offset, floats};
    auto pos = std::lower_bound(
        free_.begin(), free_.end(), block,
        [](const Block& a, const Block& b) { return a.offset < b.offset; });
    pos = free_.insert(pos, block);
    // Coalesce with the successor, then the predecessor.
    auto next = pos + 1;
    if (next != free_.end() && pos->offset + pos->floats == next->offset) {
      pos->floats += next->floats;
      free_.erase(next);
    }
    if (pos != free_.begin()) {
      auto prev = pos - 1;
      if (prev->offset + prev->floats == pos->offset) {
        prev->floats += pos->floats;
        free_.erase(pos);
      }
    }
  }

  std::int64_t total_floats() const { return end_; }

 private:
  struct Block {
    std::int64_t offset;
    std::int64_t floats;
  };
  static std::int64_t Align(std::int64_t floats) {
    return (floats + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  std::vector<Block> free_;  // sorted by offset
  std::int64_t end_ = 0;
};

/// Per-op scratch requirement (floats) and the row grain its region is
/// indexed by. Zero for ops without temporaries.
std::pair<std::int64_t, std::int64_t> ScratchFloats(const cap::CapturedOp& op) {
  if (op.kind == cap::OpKind::kScaleSoftmax ||
      op.kind == cap::OpKind::kSymKlPerRow) {
    const std::int64_t rows = op.attrs[0];
    const std::int64_t cols = op.attrs[1];
    const std::int64_t grain = kn::RowChunkGrain(cols);
    const std::int64_t chunks = (rows + grain - 1) / grain;
    const std::int64_t per_chunk =
        op.kind == cap::OpKind::kSymKlPerRow ? 2 * cols : cols;
    return {chunks * per_chunk, grain};
  }
  return {0, 1};
}

}  // namespace

// ---- State -----------------------------------------------------------------

struct InferencePlan::State {
  // Geometry the plan was compiled for (Matches()).
  std::int64_t length = 0;
  std::int64_t num_features = 0;
  std::int64_t unmasked_count = 0;
  std::int64_t masked_count = 0;
  std::int64_t freq_count = 0;
  std::int64_t score_rows = 0;

  // The arena: ONE pool allocation, ONE logical MemoryStats record.
  std::shared_ptr<float[]> arena;
  std::int64_t arena_floats = 0;

  std::vector<Tensor> params;  ///< keeps weight storage alive
  std::map<std::int64_t, std::vector<float>> pe_tables;  ///< dim -> [T, dim]
  std::vector<std::vector<std::int64_t>> index_snapshots;

  std::vector<ReplayOp> ops;
  struct BindInput {
    cap::InputTag tag;
    float* dst;
    std::int64_t numel;
  };
  std::vector<BindInput> inputs;
  std::vector<int> dyn_idx_ops;  ///< op indices whose idx rebinds per window
  int terminal = -1;             ///< index of the kSymKlPerRow op

  // Calibration observer sites: fp32 weight-bearing matmuls in op order.
  struct ObserverSite {
    int op_index;
    int weight_index;
    const float* in;
    std::int64_t rows;
    std::int64_t cols;
  };
  std::vector<ObserverSite> observer_sites;

  // Int8 path state (quantized plans only). qdata and qpacks never
  // reallocate once ReplayOps point into them (reserved up front).
  struct QuantWeightPack {
    std::vector<std::int8_t> packed;
    std::vector<float> col_scale;
    std::vector<std::int32_t> col_comp;
  };
  std::vector<QuantWeightPack> qpacks;
  std::vector<QuantOpData> qdata;
  std::unique_ptr<std::uint8_t[]> qarena;  ///< packed u8 activation slots
  std::int64_t qarena_bytes = 0;
  // Per-slot per-channel activation scales (and reciprocals); fully built
  // before any QuantOpData points into them.
  std::vector<std::vector<float>> qch_scale;
  std::vector<std::vector<float>> qch_inv;
};

InferencePlan::InferencePlan() = default;

InferencePlan::~InferencePlan() {
  if (state_ != nullptr && state_->arena != nullptr) {
    MemoryStats::RecordFree(
        static_cast<std::size_t>(state_->arena_floats) * sizeof(float));
  }
  if (state_ != nullptr && state_->qarena != nullptr) {
    MemoryStats::RecordFree(static_cast<std::size_t>(state_->qarena_bytes));
  }
}

// ---- Capture ---------------------------------------------------------------

std::unique_ptr<InferencePlan> InferencePlan::Capture(
    const TfmaeModel& model, const MaskedWindow& example,
    std::vector<float>* eager_scores, std::string* error,
    const QuantSpec* quant) {
  TFMAE_CHECK(eager_scores != nullptr);
  TFMAE_TRACE("infer.plan.capture");
  const auto t0 = std::chrono::steady_clock::now();
  auto fail = [error](const std::string& reason)
      -> std::unique_ptr<InferencePlan> {
    if (error != nullptr) *error = reason;
    TFMAE_COUNTER_ADD("infer.plan.capture_failures", 1);
    return nullptr;
  };

  // 1. Trace the eager scoring pass. The recorder keeps every noted tensor
  // alive, so node identity is stable for the duration.
  cap::Recorder recorder;
  for (const Tensor& p : model.Parameters()) recorder.AddParameter(p);
  recorder.TagIndexVector(&example.temporal.unmasked,
                          cap::IndexTag::kTemporalUnmasked);
  recorder.TagIndexVector(&example.temporal.masked,
                          cap::IndexTag::kTemporalMasked);
  *eager_scores = model.ScoreWindow(example);
  if (!recorder.ok()) return fail("capture: " + recorder.error());
  if (recorder.score_rows() < 0) return fail("capture: no terminal score op");

  const std::vector<cap::NodeInfo>& nodes = recorder.nodes();
  std::vector<cap::CapturedOp> captured = recorder.ops();

  auto plan = std::unique_ptr<InferencePlan>(new InferencePlan());
  plan->stats_.captured_ops = static_cast<std::int64_t>(captured.size());
  auto state = std::make_unique<State>();
  state->length = example.length;
  state->num_features = example.num_features;
  state->unmasked_count =
      static_cast<std::int64_t>(example.temporal.unmasked.size());
  state->masked_count =
      static_cast<std::int64_t>(example.temporal.masked.size());
  state->freq_count = static_cast<std::int64_t>(example.frequency.size());
  state->score_rows = recorder.score_rows();
  state->params = recorder.parameters();

  TFMAE_TRACE("infer.plan.build");

  // 2. Reshape elision: rewrite inputs to canonical value nodes, drop the
  // reshape ops. A canonical node owns the storage for every alias.
  std::vector<int> alias(nodes.size());
  for (int i = 0; i < static_cast<int>(alias.size()); ++i) alias[i] = i;
  std::vector<cap::CapturedOp> prog;
  prog.reserve(captured.size());
  for (cap::CapturedOp& op : captured) {
    for (int& in : op.inputs) in = alias[in];
    if (op.kind == cap::OpKind::kReshape) {
      alias[op.output] = op.inputs[0];
      ++plan->stats_.elided_reshapes;
      continue;
    }
    prog.push_back(std::move(op));
  }

  // 2b. Int8 lowering (quantized plans only): every weight-bearing matmul
  // with a calibrated site becomes a quant-linear op. A single consumer
  // that is the Linear bias add (kBinary kAdd with a weight operand) or the
  // feed-forward kBiasGelu is folded into the dequantization epilogue — the
  // fp32 matmul output is then never materialized, which is the "elide
  // quant/dequant pairs at fused boundaries" half of the accounting (the
  // other half is shared-input quantization reuse, counted at resolve).
  // qsite_of runs parallel to prog: >= 0 indexes qsites.
  struct QuantLowering {
    int x_node = -1;
    int w_node = -1;
    int bias_node = -1;  ///< -1 for Epilogue::kNone
    quant::Epilogue epilogue = quant::Epilogue::kNone;
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;
    int out_node = -1;  ///< the folded consumer's output (or the matmul's)
    const QuantSite* site = nullptr;
  };
  std::vector<QuantLowering> qsites;
  std::vector<int> qsite_of(prog.size(), -1);
  if (quant != nullptr) {
    std::vector<int> quses(nodes.size(), 0);
    std::vector<int> consumer(nodes.size(), -1);  // unique consumer, -2 many
    for (int i = 0; i < static_cast<int>(prog.size()); ++i) {
      for (int in : prog[i].inputs) {
        ++quses[in];
        consumer[in] = consumer[in] == -1 ? i : -2;
      }
    }
    // Debug-only site filter for parity bisection: comma-separated weight
    // indices. SKIP keeps the listed sites fp32; ONLY quantizes nothing but
    // the listed sites. Unset in production.
    auto parse_wlist = [](const char* name) {
      std::vector<int> out;
      const char* s = std::getenv(name);
      if (s == nullptr) return out;
      int v = 0;
      bool have = false;
      for (; ; ++s) {
        if (*s >= '0' && *s <= '9') {
          v = v * 10 + (*s - '0');
          have = true;
        } else {
          if (have) out.push_back(v);
          v = 0;
          have = false;
          if (*s == '\0') break;
        }
      }
      return out;
    };
    const std::vector<int> dbg_skip = parse_wlist("TFMAE_QUANT_SKIP_W");
    const std::vector<int> dbg_only = parse_wlist("TFMAE_QUANT_ONLY_W");
    auto dbg_allows = [&](int w) {
      for (int v : dbg_skip) {
        if (v == w) return false;
      }
      if (!dbg_only.empty()) {
        for (int v : dbg_only) {
          if (v == w) return true;
        }
        return false;
      }
      return true;
    };
    std::vector<bool> removed(prog.size(), false);
    std::vector<int> qmark(prog.size(), -1);
    for (int i = 0; i < static_cast<int>(prog.size()); ++i) {
      const cap::CapturedOp& op = prog[i];
      if (op.kind != cap::OpKind::kMatMul) continue;
      const int w_node = op.inputs[1];
      if (nodes[w_node].kind != cap::NodeKind::kWeight) continue;
      const QuantSite* site = quant->Find(nodes[w_node].weight_index);
      if (site == nullptr) continue;
      if (!dbg_allows(nodes[w_node].weight_index)) continue;
      const std::int64_t k = op.attrs[1];
      const std::int64_t n = op.attrs[2];
      if (site->in_features != k ||
          static_cast<std::int64_t>(site->absmax.size()) != k) {
        continue;  // calibrated against a different geometry: stay fp32
      }
      QuantLowering lo;
      lo.x_node = op.inputs[0];
      lo.w_node = w_node;
      lo.m = op.attrs[0];
      lo.k = k;
      lo.n = n;
      lo.out_node = op.output;
      lo.site = site;
      const int u = op.output;
      if (quses[u] == 1 && consumer[u] >= 0 && !removed[consumer[u]]) {
        const cap::CapturedOp& c = prog[consumer[u]];
        if (c.kind == cap::OpKind::kBinary &&
            static_cast<kn::BinaryKind>(c.attrs[0]) == kn::BinaryKind::kAdd) {
          const int other = c.inputs[0] == u ? c.inputs[1] : c.inputs[0];
          if (nodes[other].kind == cap::NodeKind::kWeight &&
              nodes[other].numel == n) {
            lo.bias_node = other;
            lo.epilogue = quant::Epilogue::kBias;
            lo.out_node = c.output;
            removed[consumer[u]] = true;
            ++plan->stats_.elided_quant_pairs;
          }
        } else if (c.kind == cap::OpKind::kBiasGelu && c.inputs[0] == u &&
                   nodes[c.inputs[1]].kind == cap::NodeKind::kWeight &&
                   nodes[c.inputs[1]].numel == n) {
          lo.bias_node = c.inputs[1];
          lo.epilogue = quant::Epilogue::kBiasGelu;
          lo.out_node = c.output;
          removed[consumer[u]] = true;
          ++plan->stats_.elided_quant_pairs;
        }
      }
      qmark[i] = static_cast<int>(qsites.size());
      qsites.push_back(lo);
    }
    if (qsites.empty()) {
      return fail("quant: no calibrated site matches this graph");
    }
    std::vector<cap::CapturedOp> lowered;
    std::vector<int> lowered_qsite;
    lowered.reserve(prog.size());
    for (int i = 0; i < static_cast<int>(prog.size()); ++i) {
      if (removed[i]) continue;
      cap::CapturedOp op = std::move(prog[i]);
      if (qmark[i] >= 0) {
        const QuantLowering& lo = qsites[static_cast<std::size_t>(qmark[i])];
        // The quant-linear op defines the folded consumer's output and
        // reads {x, w, bias}; the fp32 matmul intermediate disappears.
        op.output = lo.out_node;
        if (lo.bias_node >= 0) op.inputs.push_back(lo.bias_node);
      }
      lowered_qsite.push_back(qmark[i]);
      lowered.push_back(std::move(op));
    }
    prog = std::move(lowered);
    qsite_of = std::move(lowered_qsite);
    plan->stats_.quantized = true;
    plan->stats_.quant_linear_ops = static_cast<std::int64_t>(qsites.size());
  }

  // 3. Fusion: fold single-use binary producers into their consuming binary
  // op. Only when producer and consumer have equal element counts — the
  // spliced steps must be indexable by the consumer's element index.
  std::vector<int> uses(nodes.size(), 0);
  for (const cap::CapturedOp& op : prog) {
    for (int in : op.inputs) ++uses[in];
  }
  struct Program {
    std::vector<FusedStep> steps;
    std::vector<int> ext;  // canonical node ids
  };
  std::vector<Program> programs(prog.size());
  std::vector<bool> folded(prog.size(), false);
  std::unordered_map<int, int> producer_of;  // output node -> prog index
  for (int i = 0; i < static_cast<int>(prog.size()); ++i) {
    const cap::CapturedOp& op = prog[i];
    if (op.kind != cap::OpKind::kBinary) continue;
    Program pr;
    auto operand = [&](int node) -> int {
      auto it = producer_of.find(node);
      if (it != producer_of.end() && uses[node] == 1 &&
          nodes[node].numel == nodes[op.output].numel) {
        const Program& sub = programs[it->second];
        if (static_cast<int>(pr.steps.size() + sub.steps.size()) <
            kMaxFusedSteps) {
          const int ext_base = static_cast<int>(pr.ext.size());
          const int step_base = static_cast<int>(pr.steps.size());
          pr.ext.insert(pr.ext.end(), sub.ext.begin(), sub.ext.end());
          for (const FusedStep& st : sub.steps) {
            FusedStep moved = st;
            moved.lhs = st.lhs >= 0 ? st.lhs + ext_base
                                    : st.lhs - step_base;
            moved.rhs = st.rhs >= 0 ? st.rhs + ext_base
                                    : st.rhs - step_base;
            pr.steps.push_back(moved);
          }
          folded[it->second] = true;
          return -static_cast<int>(pr.steps.size());  // last spliced step
        }
      }
      pr.ext.push_back(node);
      return static_cast<int>(pr.ext.size()) - 1;
    };
    const int a = operand(op.inputs[0]);
    const int b = operand(op.inputs[1]);
    pr.steps.push_back(
        {static_cast<kn::BinaryKind>(op.attrs[0]), a, b});
    programs[i] = std::move(pr);
    producer_of[op.output] = i;
  }

  // Live ops and their effective inputs (fused binaries read their external
  // operand set, not the original two inputs).
  std::vector<int> live;
  for (int i = 0; i < static_cast<int>(prog.size()); ++i) {
    if (folded[i]) {
      ++plan->stats_.fused_ops;
      continue;
    }
    live.push_back(i);
  }
  auto effective_inputs = [&](int pi) -> const std::vector<int>& {
    return prog[pi].kind == cap::OpKind::kBinary ? programs[pi].ext
                                                 : prog[pi].inputs;
  };

  // 4. Lifetime analysis + arena layout. def/last are indices into `live`;
  // inputs are bound before op 0 (def -1) and terminal scores leave through
  // the caller's buffer.
  const int nops = static_cast<int>(live.size());
  std::vector<int> def(nodes.size(), -2), last(nodes.size(), -2);
  for (int j = 0; j < nops; ++j) {
    const cap::CapturedOp& op = prog[live[j]];
    for (int in : effective_inputs(live[j])) {
      if (nodes[in].kind == cap::NodeKind::kIntermediate ||
          nodes[in].kind == cap::NodeKind::kInput) {
        last[in] = std::max(last[in], j);
      }
    }
    if (op.output >= 0) def[op.output] = j;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == cap::NodeKind::kInput && alias[i] == static_cast<int>(i)) {
      def[i] = -1;
    }
  }

  ArenaPlanner planner;
  std::vector<std::int64_t> offset(nodes.size(), -1);
  std::vector<std::int64_t> scratch_offset(nops, -1);
  std::vector<std::int64_t> scratch_size(nops, 0);
  auto alloc_node = [&](int node) {
    offset[node] = planner.Alloc(nodes[node].numel);
    ++plan->stats_.slots;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (def[i] == -1) alloc_node(static_cast<int>(i));
  }
  for (int j = 0; j < nops; ++j) {
    const cap::CapturedOp& op = prog[live[j]];
    const std::int64_t sfloats = ScratchFloats(op).first;
    if (sfloats > 0) {
      scratch_offset[j] = planner.Alloc(sfloats);
      scratch_size[j] = sfloats;
      ++plan->stats_.slots;
    }
    if (op.output >= 0) {
      alloc_node(op.output);
      if (last[op.output] < j) last[op.output] = j;  // unread output
    }
    // Frees happen after op j: scratch immediately, operands at last use.
    if (scratch_offset[j] >= 0) planner.Free(scratch_offset[j], sfloats);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (last[i] == j && offset[i] >= 0 &&
          (nodes[i].kind == cap::NodeKind::kIntermediate ||
           nodes[i].kind == cap::NodeKind::kInput)) {
        planner.Free(offset[i], nodes[i].numel);
        last[i] = -3;  // freed
      }
    }
  }

  state->arena_floats = std::max<std::int64_t>(planner.total_floats(), 1);
  state->arena = pool::Acquire(state->arena_floats);
  const std::int64_t arena_bytes =
      state->arena_floats * static_cast<std::int64_t>(sizeof(float));
  MemoryStats::RecordAlloc(static_cast<std::size_t>(arena_bytes));
  plan->stats_.arena_bytes = arena_bytes;
  float* arena = state->arena.get();

  // 4b. Int8 activation arena: one u8 slot per DISTINCT quantized input
  // node (q/k/v share theirs), lifetime-planned exactly like the fp32
  // arena but in bytes — a slot is one quarter the size of its fp32
  // counterpart. The first quant op reading a node fills the slot; later
  // sites reuse it (each reuse is one more elided quant/dequant pair).
  struct QSlot {
    std::int64_t offset = -1;
    std::int64_t bytes = 0;
    int first = -1;  ///< live-op index that quantizes
    int last = -1;   ///< last live-op index that reads
    int vec = -1;    ///< index into State::qch_scale / qch_inv
    std::vector<float> ch_absmax;  ///< per-channel calibrated |x| range
  };
  std::map<int, QSlot> qslots;  // by canonical x node
  for (int j = 0; j < nops; ++j) {
    const int qi = qsite_of[live[j]];
    if (qi < 0) continue;
    const QuantLowering& lo = qsites[static_cast<std::size_t>(qi)];
    QSlot& slot = qslots[lo.x_node];
    if (slot.first < 0) {
      slot.first = j;
      slot.bytes = lo.m * quant::RoundUpK4(lo.k);
      slot.ch_absmax = lo.site->absmax;
    } else {
      ++plan->stats_.elided_quant_pairs;
      // Sites sharing an input see identical data, so their calibrated
      // ranges agree; the element-wise max is a no-op in practice but
      // keeps the slot's shared scales safe if they ever diverge.
      for (std::size_t c = 0; c < slot.ch_absmax.size(); ++c) {
        slot.ch_absmax[c] = std::max(slot.ch_absmax[c], lo.site->absmax[c]);
      }
    }
    slot.last = j;
  }
  // Activation scales, shared by every site reading the slot. The step is
  // per-tensor — the calibrated tensor-wide absmax — carried through the
  // per-channel fold machinery (all channels get the same step, so the
  // fold into the weight rows is a uniform no-op on weight precision).
  // Per-channel steps (SmoothQuant-style folding at alpha in {0.5, 1}) and
  // extra headroom were both tried and measurably hurt parity: tight
  // per-channel steps clip out-of-distribution test activations — exactly
  // the anomaly signal the detector scores — and the fold inflates the
  // per-column weight dynamic range.
  for (auto& [node, slot] : qslots) {
    slot.vec = static_cast<int>(state->qch_scale.size());
    float amax_max = 0.0f;
    for (const float a : slot.ch_absmax) amax_max = std::max(amax_max, a);
    if (amax_max <= 1e-20f) amax_max = 1.0f;
    std::vector<float> sc(slot.ch_absmax.size());
    std::vector<float> inv(slot.ch_absmax.size());
    for (std::size_t c = 0; c < slot.ch_absmax.size(); ++c) {
      sc[c] = amax_max / 127.0f;
      inv[c] = 1.0f / sc[c];
    }
    state->qch_scale.push_back(std::move(sc));
    state->qch_inv.push_back(std::move(inv));
  }
  if (!qslots.empty()) {
    ArenaPlanner qplanner;  // byte-granular (alignment = 16 bytes)
    for (int j = 0; j < nops; ++j) {
      for (auto& [node, slot] : qslots) {
        if (slot.first == j) slot.offset = qplanner.Alloc(slot.bytes);
      }
      for (auto& [node, slot] : qslots) {
        if (slot.last == j) qplanner.Free(slot.offset, slot.bytes);
      }
    }
    state->qarena_bytes = std::max<std::int64_t>(qplanner.total_floats(), 1);
    state->qarena =
        std::make_unique<std::uint8_t[]>(
            static_cast<std::size_t>(state->qarena_bytes));
    MemoryStats::RecordAlloc(static_cast<std::size_t>(state->qarena_bytes));
    plan->stats_.quant_arena_bytes = state->qarena_bytes;
  }

  // 5. Positional-encoding tables (pure function of (length, dim); a
  // longer table's prefix equals the shorter one, so the plan's private
  // table matches the eager path's cache bit-for-bit).
  for (int j = 0; j < nops; ++j) {
    const cap::CapturedOp& op = prog[live[j]];
    if (op.kind != cap::OpKind::kPosEncAdd) continue;
    const std::int64_t dim = op.attrs[1];
    if (state->pe_tables.count(dim) != 0) continue;
    Tensor table = nn::SinusoidalPositionalEncoding(state->length, dim);
    state->pe_tables[dim].assign(table.data(),
                                 table.data() + table.numel());
  }

  // 6. Resolve every live op into a ReplayOp.
  auto node_ptr = [&](int node) -> float* {
    const cap::NodeInfo& info = nodes[node];
    if (info.kind == cap::NodeKind::kWeight) {
      return state->params[static_cast<std::size_t>(info.weight_index)].data();
    }
    TFMAE_CHECK_MSG(offset[node] >= 0, "plan: node without storage");
    return arena + offset[node];
  };
  auto bind_indices = [&](ReplayOp* rop, const cap::CapturedOp& op,
                          int op_index) {
    if (op.index_tag == cap::IndexTag::kTemporalUnmasked) {
      rop->dyn = 0;
      state->dyn_idx_ops.push_back(op_index);
    } else if (op.index_tag == cap::IndexTag::kTemporalMasked) {
      rop->dyn = 1;
      state->dyn_idx_ops.push_back(op_index);
    } else {
      state->index_snapshots.push_back(op.indices);
      rop->idx = state->index_snapshots.back().data();
    }
  };

  state->ops.reserve(static_cast<std::size_t>(nops));
  // index_snapshots / qdata / qpacks must never reallocate once pointers
  // are taken.
  state->index_snapshots.reserve(static_cast<std::size_t>(nops));
  state->qdata.reserve(qsites.size());
  state->qpacks.reserve(qsites.size());
  const bool is_quant = quant != nullptr;
  for (int j = 0; j < nops; ++j) {
    const cap::CapturedOp& op = prog[live[j]];
    ReplayOp rop;
    if (op.output >= 0) {
      rop.out = node_ptr(op.output);
      rop.out_n = nodes[op.output].numel;
    }
    const int qi = qsite_of[live[j]];
    if (qi >= 0) {
      // Int8 linear: pack this site's weights once, wire the shared u8
      // activation slot, fuse the dequant (+bias/+GeLU) epilogue.
      const QuantLowering& lo = qsites[static_cast<std::size_t>(qi)];
      const QSlot& slot = qslots.at(lo.x_node);
      State::QuantWeightPack pack;
      pack.packed.resize(
          static_cast<std::size_t>(quant::PackedWeightBytes(lo.k, lo.n)));
      pack.col_scale.resize(static_cast<std::size_t>(lo.n));
      pack.col_comp.resize(static_cast<std::size_t>(lo.n));
      // The slot's per-channel activation scales fold into the weights
      // here; the replayed epilogue then dequantizes with a_scale = 1.
      quant::QuantizePackWeights(
          node_ptr(lo.w_node), lo.k, lo.n, pack.packed.data(),
          pack.col_scale.data(), pack.col_comp.data(),
          state->qch_scale[static_cast<std::size_t>(slot.vec)].data());
      state->qpacks.push_back(std::move(pack));
      const State::QuantWeightPack& stored = state->qpacks.back();
      QuantOpData qd;
      qd.src = node_ptr(lo.x_node);
      qd.qbuf = state->qarena.get() + slot.offset;
      qd.quantize = slot.first == j;
      qd.ch_inv = state->qch_inv[static_cast<std::size_t>(slot.vec)].data();
      qd.packed = stored.packed.data();
      qd.col_scale = stored.col_scale.data();
      qd.col_comp = stored.col_comp.data();
      qd.bias = lo.bias_node >= 0 ? node_ptr(lo.bias_node) : nullptr;
      qd.epilogue = lo.epilogue;
      qd.m = lo.m;
      qd.k = lo.k;
      qd.n = lo.n;
      state->qdata.push_back(qd);
      rop.fn = RunQuantLinear;
      rop.qd = &state->qdata.back();
      rop.m = lo.m;
      rop.k = lo.k;
      rop.n = lo.n;
      state->ops.push_back(rop);
      continue;
    }
    switch (op.kind) {
      case cap::OpKind::kBinary: {
        const Program& pr = programs[live[j]];
        if (pr.steps.size() == 1) {
          rop.fn = RunBinary;
          rop.m = op.attrs[0];  // BinaryKind
          const int a = pr.steps[0].lhs;
          const int b = pr.steps[0].rhs;
          rop.in0 = node_ptr(pr.ext[a]);
          rop.n0 = nodes[pr.ext[a]].numel;
          rop.in1 = node_ptr(pr.ext[b]);
          rop.n1 = nodes[pr.ext[b]].numel;
        } else {
          rop.fn = RunFused;
          rop.nsteps = static_cast<int>(pr.steps.size());
          TFMAE_CHECK(rop.nsteps <= kMaxFusedSteps &&
                      static_cast<int>(pr.ext.size()) <= kMaxFusedExt);
          for (int si = 0; si < rop.nsteps; ++si) rop.steps[si] = pr.steps[si];
          for (int ei = 0; ei < static_cast<int>(pr.ext.size()); ++ei) {
            rop.ext[ei] = node_ptr(pr.ext[ei]);
            rop.ext_n[ei] = nodes[pr.ext[ei]].numel;
          }
        }
        break;
      }
      case cap::OpKind::kBiasGelu:
        rop.fn = is_quant ? RunBiasGeluFast : RunBiasGelu;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.in1 = node_ptr(op.inputs[1]);
        rop.n1 = nodes[op.inputs[1]].numel;
        break;
      case cap::OpKind::kMatMul:
        rop.fn = RunMatMul;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.in1 = node_ptr(op.inputs[1]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.n = op.attrs[2];
        if (nodes[op.inputs[1]].kind == cap::NodeKind::kWeight) {
          // Calibration hook: this matmul's fp32 input is observable.
          state->observer_sites.push_back(
              {j, nodes[op.inputs[1]].weight_index, rop.in0, rop.m, rop.k});
        }
        break;
      case cap::OpKind::kBatchedMatMul:
      case cap::OpKind::kBatchedMatMulBt:
        rop.fn = op.kind == cap::OpKind::kBatchedMatMul ? RunBatchedMatMul
                                                        : RunBatchedMatMulBt;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.in1 = node_ptr(op.inputs[1]);
        rop.batch = op.attrs[0];
        rop.m = op.attrs[1];
        rop.k = op.attrs[2];
        rop.n = op.attrs[3];
        break;
      case cap::OpKind::kReshape:
        TFMAE_CHECK_MSG(false, "plan: reshape survived elision");
        break;
      case cap::OpKind::kPermute3:
        rop.fn = RunPermute3;
        rop.in0 = node_ptr(op.inputs[0]);
        for (int d = 0; d < 3; ++d) {
          rop.pdims[d] = op.attrs[d];
          rop.perm[d] = static_cast<int>(op.attrs[3 + d]);
        }
        break;
      case cap::OpKind::kIndexRows:
        rop.fn = RunIndexRows;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.k = op.attrs[0];
        rop.idx_n = rop.out_n / rop.k;
        bind_indices(&rop, op, j);
        break;
      case cap::OpKind::kScatterRows:
        rop.fn = RunScatterRows;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.idx_n = nodes[op.inputs[0]].numel / rop.k;
        bind_indices(&rop, op, j);
        break;
      case cap::OpKind::kRepeatRow:
        rop.fn = RunRepeatRow;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        break;
      case cap::OpKind::kScaleSoftmax:
        rop.fn = is_quant ? RunScaleSoftmaxFast : RunScaleSoftmax;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.scalar = op.scalar;
        rop.scratch = arena + scratch_offset[j];
        rop.grain = kn::RowChunkGrain(rop.k);
        break;
      case cap::OpKind::kLayerNorm:
        rop.fn = RunLayerNorm;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.in1 = node_ptr(op.inputs[1]);
        rop.in2 = node_ptr(op.inputs[2]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.scalar = op.scalar;
        break;
      case cap::OpKind::kPosEncAdd:
        rop.fn = RunPosEncAdd;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.pe = state->pe_tables.at(op.attrs[1]).data();
        bind_indices(&rop, op, j);
        break;
      case cap::OpKind::kSymKlPerRow:
        rop.fn = RunSymKlPerRow;
        rop.in0 = node_ptr(op.inputs[0]);
        rop.in1 = node_ptr(op.inputs[1]);
        rop.m = op.attrs[0];
        rop.k = op.attrs[1];
        rop.scratch = arena + scratch_offset[j];
        rop.grain = kn::RowChunkGrain(rop.k);
        state->terminal = j;
        break;
    }
    state->ops.push_back(rop);
  }
  plan->stats_.ops = static_cast<std::int64_t>(state->ops.size());

  // Input binding table (values rebound every replay).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].kind == cap::NodeKind::kInput &&
        alias[i] == static_cast<int>(i)) {
      state->inputs.push_back(
          {nodes[i].input_tag, arena + offset[i], nodes[i].numel});
    }
  }

  // From here on the plan owns the arena accounting (destructor records
  // the free), so failure paths stay balanced.
  const bool terminal_ok =
      state->terminal == static_cast<int>(state->ops.size()) - 1;
  plan->state_ = std::move(state);
  if (!terminal_ok) return fail("plan: score op is not terminal");

  // 7. Self-verification. fp32 plans must reproduce the eager scores
  // bit-for-bit. Int8 plans cannot (quantization changes values), so they
  // must instead (a) replay twice bitwise-identically — determinism —
  // (b) produce only finite scores, and (c) land inside a coarse
  // quantization-noise envelope of the eager scores, which catches wiring
  // bugs (wrong slot, stale scale) without rejecting honest rounding.
  {
    TFMAE_TRACE("infer.plan.verify");
    std::vector<float> replayed;
    plan->Score(example, &replayed);
    if (replayed.size() != eager_scores->size()) {
      return fail("plan: self-verification score count mismatch");
    }
    if (!is_quant) {
      if (std::memcmp(replayed.data(), eager_scores->data(),
                      replayed.size() * sizeof(float)) != 0) {
        return fail("plan: self-verification mismatch vs eager scores");
      }
    } else {
      std::vector<float> second;
      plan->Score(example, &second);
      if (std::memcmp(replayed.data(), second.data(),
                      replayed.size() * sizeof(float)) != 0) {
        return fail("quant: replay is not deterministic");
      }
      float eager_max = 0.0f;
      float max_err = 0.0f;
      for (std::size_t i = 0; i < replayed.size(); ++i) {
        if (!std::isfinite(replayed[i])) {
          return fail("quant: non-finite score in self-verification");
        }
        eager_max = std::max(eager_max, std::fabs((*eager_scores)[i]));
        max_err = std::max(max_err, std::fabs(replayed[i] -
                                              (*eager_scores)[i]));
      }
      if (max_err > 0.25f * std::max(eager_max, 1e-3f)) {
        return fail("quant: scores outside the eager agreement envelope");
      }
    }
  }
  plan->stats_.replays = 0;

  plan->stats_.capture_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  TFMAE_COUNTER_ADD("infer.plan.captures", 1);
  TFMAE_GAUGE_SET("infer.plan.ops", plan->stats_.ops);
  TFMAE_GAUGE_SET("infer.plan.arena_bytes", plan->stats_.arena_bytes);
  if (is_quant) {
    TFMAE_COUNTER_ADD("infer.quant.captures", 1);
    TFMAE_GAUGE_SET("infer.quant.arena_bytes", plan->stats_.quant_arena_bytes);
  }
  return plan;
}

// ---- Replay ----------------------------------------------------------------

bool InferencePlan::Matches(const MaskedWindow& window) const {
  const State& s = *state_;
  return window.length == s.length && window.num_features == s.num_features &&
         static_cast<std::int64_t>(window.temporal.unmasked.size()) ==
             s.unmasked_count &&
         static_cast<std::int64_t>(window.temporal.masked.size()) ==
             s.masked_count &&
         static_cast<std::int64_t>(window.frequency.size()) == s.freq_count;
}

void InferencePlan::Score(const MaskedWindow& window,
                          std::vector<float>* out) {
  ScoreImpl(window, out, nullptr);
}

void InferencePlan::ScoreWithActivationObserver(
    const MaskedWindow& window, std::vector<float>* out,
    const ActivationObserver& observer) {
  TFMAE_CHECK(observer != nullptr);
  ScoreImpl(window, out, &observer);
}

void InferencePlan::ScoreImpl(const MaskedWindow& window,
                              std::vector<float>* out,
                              const ActivationObserver* observer) {
  TFMAE_CHECK(out != nullptr && state_ != nullptr);
  TFMAE_CHECK_MSG(Matches(window), "inference plan replayed on a window of "
                                   "different geometry");
  TFMAE_TRACE("infer.plan.replay");
  State& s = *state_;

  // Canary discipline (TFMAE_POOL_SCRUB=1): poison the whole arena between
  // replays so a slot read before its op writes it fails loudly instead of
  // silently reusing the previous window's values.
  if (pool::ScrubEnabled()) {
    std::fill(s.arena.get(), s.arena.get() + s.arena_floats,
              std::numeric_limits<float>::quiet_NaN());
  }

  // Bind this window's dynamic state: input values and mask index vectors.
  for (const State::BindInput& in : s.inputs) {
    switch (in.tag) {
      case cap::InputTag::kTemporalValues:
        std::memcpy(in.dst, window.values.data(),
                    static_cast<std::size_t>(in.numel) * sizeof(float));
        break;
      case cap::InputTag::kFreqBase:
      case cap::InputTag::kFreqCos:
      case cap::InputTag::kFreqSin: {
        // Assemble the per-feature frequency columns directly into the
        // arena slot — same values the eager path materializes into its
        // FromData vectors.
        const std::int64_t t_len = s.length;
        const std::int64_t nf = s.num_features;
        for (std::int64_t f = 0; f < nf; ++f) {
          const auto& column = window.frequency[static_cast<std::size_t>(f)];
          const std::vector<float>& src =
              in.tag == cap::InputTag::kFreqBase
                  ? column.base
                  : (in.tag == cap::InputTag::kFreqCos ? column.cos_coef
                                                       : column.sin_coef);
          for (std::int64_t t = 0; t < t_len; ++t) {
            in.dst[t * nf + f] = src[static_cast<std::size_t>(t)];
          }
        }
        break;
      }
      case cap::InputTag::kNone:
        TFMAE_CHECK_MSG(false, "plan: untagged input slot");
    }
  }
  for (int j : s.dyn_idx_ops) {
    ReplayOp& op = s.ops[static_cast<std::size_t>(j)];
    const std::vector<std::int64_t>& idx =
        op.dyn == 0 ? window.temporal.unmasked : window.temporal.masked;
    op.idx = idx.data();
  }

  out->resize(static_cast<std::size_t>(s.score_rows));
  s.ops[static_cast<std::size_t>(s.terminal)].out = out->data();

  // TFMAE_PLAN_PROFILE=1 swaps the tight replay loop for a per-op timed
  // variant that prints a breakdown of where replay time goes every 100
  // replays (ops above 2% of the total). The timing wrappers perturb the
  // loop, so the default path stays branch-free.
  static const bool kProfile = std::getenv("TFMAE_PLAN_PROFILE") != nullptr;
  if (kProfile) {
    static std::vector<double> ns;
    static std::vector<const ReplayOp*> which;
    if (ns.size() < s.ops.size()) {
      ns.resize(s.ops.size(), 0.0);
      which.resize(s.ops.size());
    }
    std::size_t prof_si = 0;
    for (std::size_t j = 0; j < s.ops.size(); ++j) {
      // Calibration must still see activations when profiling is on.
      while (observer != nullptr && prof_si < s.observer_sites.size() &&
             s.observer_sites[prof_si].op_index == static_cast<int>(j)) {
        const auto& site = s.observer_sites[prof_si];
        (*observer)(site.weight_index, site.in, site.rows, site.cols);
        ++prof_si;
      }
      const auto t0 = std::chrono::steady_clock::now();
      s.ops[j].fn(s.ops[j]);
      ns[j] += std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      which[j] = &s.ops[j];
    }
    if (stats_.replays > 0 && stats_.replays % 100 == 0) {
      double total = 0;
      for (double v : ns) total += v;
      std::fprintf(stderr,
                   "plan profile over %lld replays, total %.0f ns/replay\n",
                   static_cast<long long>(stats_.replays),
                   total / static_cast<double>(stats_.replays));
      for (std::size_t j = 0; j < ns.size(); ++j) {
        if (ns[j] / total > 0.02) {
          std::fprintf(
              stderr,
              "  op[%zu] fn=%p out_n=%lld m=%lld k=%lld n=%lld batch=%lld"
              " nsteps=%d  %.1f%%  %.0f ns\n",
              j, reinterpret_cast<const void*>(which[j]->fn),
              static_cast<long long>(which[j]->out_n),
              static_cast<long long>(which[j]->m),
              static_cast<long long>(which[j]->k),
              static_cast<long long>(which[j]->n),
              static_cast<long long>(which[j]->batch), which[j]->nsteps,
              100.0 * ns[j] / total,
              ns[j] / static_cast<double>(stats_.replays));
        }
      }
    }
  } else if (observer != nullptr) {
    // Calibration replay: fire the observer with each weight-bearing
    // matmul's fp32 input right before that op executes. Scores are
    // identical to the unobserved path — the observer only reads.
    std::size_t si = 0;
    const auto& sites = s.observer_sites;
    for (std::size_t j = 0; j < s.ops.size(); ++j) {
      while (si < sites.size() && sites[si].op_index == static_cast<int>(j)) {
        (*observer)(sites[si].weight_index, sites[si].in, sites[si].rows,
                    sites[si].cols);
        ++si;
      }
      s.ops[j].fn(s.ops[j]);
    }
  } else {
    for (const ReplayOp& op : s.ops) op.fn(op);
  }

  ++stats_.replays;
  TFMAE_COUNTER_ADD("infer.plan.replays", 1);
}

}  // namespace tfmae::core
