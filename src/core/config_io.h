// Textual (de)serialization of TfmaeConfig — reproducibility plumbing so an
// experiment's exact configuration travels with its checkpoint and results.
// Format: one "key = value" pair per line, '#' comments allowed; unknown
// keys are rejected so typos fail loudly.
#ifndef TFMAE_CORE_CONFIG_IO_H_
#define TFMAE_CORE_CONFIG_IO_H_

#include <optional>
#include <string>

#include "core/config.h"

namespace tfmae::core {

/// Renders every field of `config` as "key = value" lines.
std::string ConfigToString(const TfmaeConfig& config);

/// Parses ConfigToString output (or a hand-written subset; omitted keys keep
/// their defaults). Returns std::nullopt and logs on malformed input or an
/// unknown key.
std::optional<TfmaeConfig> ConfigFromString(const std::string& text);

/// File convenience wrappers. Return false / nullopt on I/O failure.
bool SaveConfig(const TfmaeConfig& config, const std::string& path);
std::optional<TfmaeConfig> LoadConfig(const std::string& path);

}  // namespace tfmae::core

#endif  // TFMAE_CORE_CONFIG_IO_H_
