// Online/streaming anomaly detection on top of any fitted AnomalyDetector.
//
// The observability deployments the paper motivates (server fleets, water
// treatment, spacecraft) consume telemetry as a stream. StreamingDetector
// wraps a fitted detector with a ring buffer: observations are pushed one at
// a time; once the buffer holds a full window, each arriving observation is
// scored against its trailing window and compared to a calibrated threshold.
#ifndef TFMAE_CORE_STREAMING_H_
#define TFMAE_CORE_STREAMING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/anomaly_detector.h"

namespace tfmae::core {

/// Configuration of the streaming wrapper.
struct StreamingOptions {
  /// Trailing-window length used per score (should match the detector's
  /// training window).
  std::int64_t window = 50;
  /// Score every k-th arriving observation against its trailing window and
  /// back-fill the k-1 in-between scores from the same window (k = hop).
  /// hop=1 scores every step (most accurate, most expensive).
  std::int64_t hop = 5;
};

/// Per-observation streaming result.
struct StreamingResult {
  float score = 0.0f;
  bool is_anomaly = false;
};

/// Streams observations through a fitted detector.
///
/// Typical use:
///   TfmaeDetector detector(config);
///   detector.Fit(history);
///   StreamingDetector stream(&detector, options);
///   stream.CalibrateThreshold(detector.Score(validation), 0.02);
///   for (each new observation row) {
///     if (auto r = stream.Push(row)) { if (r->is_anomaly) Alert(...); }
///   }
class StreamingDetector {
 public:
  /// `detector` must outlive this wrapper and must already be fitted.
  StreamingDetector(AnomalyDetector* detector, StreamingOptions options);

  /// Sets the alert threshold so that `anomaly_fraction` of the calibration
  /// scores exceed it.
  void CalibrateThreshold(const std::vector<float>& calibration_scores,
                          double anomaly_fraction);

  /// Sets an explicit alert threshold.
  void set_threshold(float threshold) { threshold_ = threshold; }
  float threshold() const { return threshold_; }

  /// Pushes one observation (num_features values). Returns the score for
  /// this observation once enough history exists, std::nullopt during the
  /// initial fill. The trailing window is re-scored every `hop` pushes;
  /// pushes in between reuse the latest tail score (a documented
  /// approximation trading latency for compute — set hop=1 for exact
  /// per-step scoring).
  ///
  /// Warm-up semantics (hop > 1): the first `window - 1` pushes return
  /// std::nullopt — there is no partial-window scoring. The push that
  /// completes the first window ALWAYS triggers a fresh rescore, regardless
  /// of where it falls in the hop cycle, so the first emitted result is
  /// never a stale placeholder; only the newest observation (fresh = 1) is
  /// scored fresh at that point. The hop cadence then restarts from this
  /// first scoreable push: the next rescore happens at push `window + hop`,
  /// and the `hop - 1` results in between repeat the first fresh tail
  /// score. See streaming_test.cc ("WarmUpFirstResultIsFreshWithHop") for
  /// the pinned behaviour.
  std::optional<StreamingResult> Push(const std::vector<float>& observation);

  /// Number of observations consumed so far.
  std::int64_t total_pushed() const { return total_pushed_; }

 private:
  AnomalyDetector* detector_;
  StreamingOptions options_;
  std::int64_t num_features_ = -1;
  std::vector<float> buffer_;  // row-major sliding window, flattened
  std::int64_t buffered_rows_ = 0;
  std::int64_t total_pushed_ = 0;
  std::int64_t pushes_since_rescore_ = 0;
  float last_tail_score_ = 0.0f;
  float threshold_ = 0.0f;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_STREAMING_H_
