// Online/streaming anomaly detection on top of any fitted AnomalyDetector.
//
// The observability deployments the paper motivates (server fleets, water
// treatment, spacecraft) consume telemetry as a stream. StreamingDetector
// wraps a fitted detector with a ring buffer: observations are pushed one at
// a time; once the buffer holds a full window, each arriving observation is
// scored against its trailing window and compared to a calibrated threshold.
//
// Real telemetry is dirty, so Push additionally implements the degraded-
// input contract of docs/RESILIENCE.md instead of trusting every row:
//  * a wrong-arity observation is REJECTED (typed status, stream unchanged)
//    rather than aborting the process or indexing out of contract;
//  * NaN/Inf values are imputed per feature by last-observation-carried-
//    forward, up to `impute_staleness_cap` consecutive rows;
//  * a row whose staleness cap is exhausted, or that contains a wildly
//    out-of-range value (|x - mean| > quarantine_sigma * std of the values
//    accepted so far), is QUARANTINED: an imputed row keeps the window
//    moving, but no score or alert is emitted for it;
//  * per-stream health counts are available from health() and exported as
//    `streaming.degraded.*` metrics.
//
// The per-stream state (sliding window, LOCF sources, Welford statistics,
// hop cadence, threshold) lives in the standalone StreamState class so that
// serve::FleetServer (docs/SERVING.md) can hold thousands of compact stream
// states against ONE shared detector. StreamState decides WHAT to do with a
// row (absorb / reject / quarantine / rescore-due); its owner decides WHEN
// and HOW to score the window it exposes. StreamingDetector remains the
// synchronous single-stream owner with unchanged semantics.
#ifndef TFMAE_CORE_STREAMING_H_
#define TFMAE_CORE_STREAMING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/anomaly_detector.h"
#include "util/checkpoint_file.h"

namespace tfmae::core {

/// Configuration of the streaming wrapper.
struct StreamingOptions {
  /// Trailing-window length used per score (should match the detector's
  /// training window).
  std::int64_t window = 50;
  /// Score every k-th arriving observation against its trailing window and
  /// back-fill the k-1 in-between scores from the same window (k = hop).
  /// hop=1 scores every step (most accurate, most expensive).
  std::int64_t hop = 5;
  /// Maximum consecutive rows a feature may be imputed (LOCF) before the
  /// row is quarantined instead of scored.
  std::int64_t impute_staleness_cap = 5;
  /// Quarantine a row when any feature deviates more than this many running
  /// standard deviations from its running mean. 0 disables the range check.
  double quarantine_sigma = 0.0;
  /// Accepted rows required before the range check activates (the running
  /// statistics are meaningless earlier).
  std::int64_t quarantine_warmup = 64;
};

/// What happened to the most recent Push (see last_push_status()).
enum class PushStatus {
  kScored,       ///< row accepted and a result emitted
  kWarmup,       ///< row accepted; the first window is still filling
  kRejected,     ///< row refused (wrong arity / unimputable); stream unchanged
  kQuarantined,  ///< row replaced by an imputed stand-in; no result emitted
};

/// Per-observation streaming result.
struct StreamingResult {
  float score = 0.0f;
  bool is_anomaly = false;
  /// True when any feature of this row was imputed (the score is computed
  /// from repaired data — trustworthy, but worth surfacing to operators).
  bool degraded = false;
  /// Features imputed in this row.
  std::int32_t imputed_values = 0;
};

/// Cumulative per-stream health (mirrors the `streaming.degraded.*`
/// counters, but available without an observability build).
struct StreamHealth {
  std::int64_t rows_scored = 0;
  std::int64_t rows_warmup = 0;
  std::int64_t rows_imputed = 0;      ///< rows accepted with >= 1 imputed value
  std::int64_t rows_quarantined = 0;
  std::int64_t rows_rejected = 0;
  std::int64_t values_imputed = 0;    ///< individual feature values repaired
};

/// Everything one stream's Absorb() decided, for the owner to act on.
struct AbsorbOutcome {
  PushStatus status = PushStatus::kWarmup;
  /// status == kScored only: the trailing window must be (re)scored before a
  /// result can be emitted for this row (window() holds the values; commit
  /// the tail score with CommitRescore()). False: reuse last_tail_score().
  bool rescore_due = false;
  /// rescore_due only: rows scored fresh since the previous rescore
  /// (min(pushes since rescore, window)); feeds TailScore().
  std::int64_t fresh = 0;
  /// Features imputed in this row (status kScored/kWarmup).
  std::int32_t imputed_values = 0;
  /// status == kRejected only: distinguishes a wrong-arity transport error
  /// from an unimputable row (both rejected, different operator messages).
  bool wrong_arity = false;
};

/// The compact per-stream state: sliding window, LOCF/staleness repair
/// state, Welford running statistics, hop cadence, and alert threshold.
/// Holds NO model and performs NO scoring — Absorb() classifies a row and
/// reports when the window must be rescored; the owner scores window() and
/// commits the result. One instance costs ApproxBytes() (~window*features
/// floats plus per-feature repair state), which is what lets a fleet server
/// keep thousands of streams against one shared model.
///
/// Not thread-safe; owners serialize access per stream.
class StreamState {
 public:
  explicit StreamState(StreamingOptions options);

  /// Classifies and absorbs one observation. Exactly the degraded-input
  /// contract documented on StreamingDetector::Push: the first push fixes
  /// the arity; wrong-arity and unimputable rows are rejected without
  /// consuming them; NaN/Inf values are LOCF-imputed; stale or out-of-range
  /// rows are quarantined (window slides on stand-in values, hop cadence
  /// does not advance). Bumps the `streaming.degraded.*` counters and
  /// health() exactly as StreamingDetector always has.
  AbsorbOutcome Absorb(const std::vector<float>& observation);

  /// Stores the tail score of the rescore Absorb() asked for. Must be
  /// called (with TailScore() of the fresh segment) before the next Absorb
  /// whenever rescore_due was true; results for in-between pushes reuse it.
  void CommitRescore(float tail_score) { last_tail_score_ = tail_score; }

  /// Max over the `fresh` newest of `window_scores` — the per-row score a
  /// rescore emits, so an anomaly anywhere inside the hop segment surfaces.
  static float TailScore(const std::vector<float>& window_scores,
                         std::int64_t window, std::int64_t fresh);

  /// The current trailing window, row-major [buffered_rows() x
  /// num_features()] (full `window` rows once warm-up completes).
  const std::vector<float>& window() const { return buffer_; }

  const StreamingOptions& options() const { return options_; }
  /// Arity fixed by the first push (-1 before it).
  std::int64_t num_features() const { return num_features_; }
  std::int64_t buffered_rows() const { return buffered_rows_; }
  /// Observations consumed so far (rejected rows excluded).
  std::int64_t total_pushed() const { return total_pushed_; }
  float last_tail_score() const { return last_tail_score_; }

  void set_threshold(float threshold) { threshold_ = threshold; }
  float threshold() const { return threshold_; }

  /// Disposition of the most recent Absorb (kWarmup before any).
  PushStatus last_push_status() const { return last_push_status_; }

  /// Cumulative degraded-input accounting.
  const StreamHealth& health() const { return health_; }

  /// Approximate resident bytes of this stream state (struct plus the
  /// capacity of every owned buffer). This is the per-stream marginal cost
  /// of a fleet server — exported as the `streaming.bytes_per_stream` gauge
  /// and reported by `tfmae_serve --stats` (ROADMAP item 1's "small
  /// per-stream footprint", made measurable).
  std::int64_t ApproxBytes() const;

  /// Serializes the complete mutable state (window buffer, hop cadence,
  /// LOCF/staleness repair state, Welford statistics, health, threshold) so
  /// that a decoded copy continues bitwise-identically to this stream.
  /// The StreamingOptions are NOT encoded — they are configuration, carried
  /// by the owner (serve::FleetSnapshot stores them once per fleet) and
  /// supplied to the constructor before DecodeFrom.
  void EncodeTo(util::ByteWriter* writer) const;

  /// Restores state written by EncodeTo into this instance. Returns false
  /// (state unspecified, stream must be discarded) on a truncated payload or
  /// any internal inconsistency: wrong buffer size for the recorded row
  /// count, repair arrays that disagree with the arity, an out-of-range
  /// enum. The options this instance was constructed with must match the
  /// encoding stream's (the owner validates that before calling).
  bool DecodeFrom(util::ByteReader* reader);

 private:
  /// Validates and repairs one row in place. Returns the status the row
  /// should be treated with (kScored for a clean/imputed row, kRejected /
  /// kQuarantined otherwise); fills `imputed` with the repaired count.
  PushStatus SanitizeRow(std::vector<float>* row, std::int32_t* imputed);

  StreamingOptions options_;
  std::int64_t num_features_ = -1;
  std::vector<float> buffer_;  // row-major sliding window, flattened
  std::int64_t buffered_rows_ = 0;
  std::int64_t total_pushed_ = 0;
  std::int64_t pushes_since_rescore_ = 0;
  bool scored_once_ = false;
  float last_tail_score_ = 0.0f;
  float threshold_ = 0.0f;

  // Degraded-input state.
  PushStatus last_push_status_ = PushStatus::kWarmup;
  StreamHealth health_;
  std::vector<float> last_good_;        // per-feature LOCF source
  std::vector<bool> has_last_good_;
  std::vector<std::int64_t> staleness_;  // consecutive imputations per feature
  // Running per-feature statistics over accepted values (Welford).
  std::int64_t stats_count_ = 0;
  std::vector<double> stats_mean_;
  std::vector<double> stats_m2_;
};

/// Streams observations through a fitted detector.
///
/// Typical use:
///   TfmaeDetector detector(config);
///   detector.Fit(history);
///   StreamingDetector stream(&detector, options);
///   stream.CalibrateThreshold(detector.Score(validation), 0.02);
///   for (each new observation row) {
///     if (auto r = stream.Push(row)) { if (r->is_anomaly) Alert(...); }
///   }
class StreamingDetector {
 public:
  /// `detector` must outlive this wrapper and must already be fitted.
  StreamingDetector(AnomalyDetector* detector, StreamingOptions options);

  /// Sets the alert threshold so that `anomaly_fraction` of the calibration
  /// scores exceed it.
  void CalibrateThreshold(const std::vector<float>& calibration_scores,
                          double anomaly_fraction);

  /// Sets an explicit alert threshold.
  void set_threshold(float threshold) { state_.set_threshold(threshold); }
  float threshold() const { return state_.threshold(); }

  /// Pushes one observation (num_features values; the first accepted push
  /// fixes the arity). Returns the score for this observation once enough
  /// history exists; std::nullopt during the initial fill and for rejected
  /// or quarantined rows — last_push_status() distinguishes the three. The
  /// trailing window is re-scored every `hop` pushes; pushes in between
  /// reuse the latest tail score (a documented approximation trading
  /// latency for compute — set hop=1 for exact per-step scoring).
  ///
  /// Warm-up semantics (hop > 1): the first `window - 1` accepted pushes
  /// return std::nullopt — there is no partial-window scoring. The push
  /// that completes the first window ALWAYS triggers a fresh rescore,
  /// regardless of where it falls in the hop cycle, so the first emitted
  /// result is never a stale placeholder; only the newest observation
  /// (fresh = 1) is scored fresh at that point. The hop cadence then
  /// restarts from this first scoreable push: the next rescore happens at
  /// push `window + hop`, and the `hop - 1` results in between repeat the
  /// first fresh tail score. See streaming_test.cc
  /// ("WarmUpFirstResultIsFreshWithHop") for the pinned behaviour.
  std::optional<StreamingResult> Push(const std::vector<float>& observation);

  /// Disposition of the most recent Push (kWarmup before any push).
  PushStatus last_push_status() const { return state_.last_push_status(); }

  /// Cumulative degraded-input accounting.
  const StreamHealth& health() const { return state_.health(); }

  /// Number of observations consumed so far (rejected rows excluded).
  std::int64_t total_pushed() const { return state_.total_pushed(); }

  /// Approximate resident bytes of the per-stream state (see
  /// StreamState::ApproxBytes).
  std::int64_t ApproxBytes() const { return state_.ApproxBytes(); }

 private:
  AnomalyDetector* detector_;
  StreamState state_;
};

}  // namespace tfmae::core

#endif  // TFMAE_CORE_STREAMING_H_
