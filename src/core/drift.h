// Calibration score reference distribution for the online drift monitor
// (docs/OBSERVABILITY.md, "Live endpoints & SLOs"; ROADMAP item 5).
//
// At calibration time the detector scores the training windows anyway (to
// fit the anomaly threshold); BuildScoreDistribution snapshots those scores
// into a small fixed-bin linear histogram. The serving plane later compares
// a reservoir of recent online scores against this reference with the
// two-sample Kolmogorov-Smirnov distance (obs::KsDistance) and raises a
// `serve.drift` ledger event when the distance crosses the alarm threshold.
//
// The reference is persisted as its own CRC'd section ("score_ref") in a
// PR 4 checkpoint container (<prefix>.drift next to the .weights file),
// mirroring the QuantSpec sidecar: a missing or corrupt file degrades to
// "no drift monitoring" instead of failing the load.
#ifndef TFMAE_CORE_DRIFT_H_
#define TFMAE_CORE_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tfmae::core {

/// Fixed-bin linear histogram of calibration scores. Bin b covers
/// [lo + b*w, lo + (b+1)*w) with w = (hi - lo) / buckets.size(); the last
/// bin is closed on the right so hi itself lands in it.
struct ScoreDistribution {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;

  bool empty() const { return count == 0 || buckets.empty(); }
};

/// Default bin count: fine enough that KsDistance resolves a shifted score
/// distribution, coarse enough that the sidecar stays a few hundred bytes.
inline constexpr int kScoreDistributionBins = 64;

/// Section name inside the checkpoint container.
inline constexpr char kScoreRefSection[] = "score_ref";

/// Bins `scores` into a `bins`-bucket histogram spanning [min, max] of the
/// data (non-finite values are skipped). An empty or all-non-finite input
/// yields an empty() distribution. A constant input yields a single
/// populated bin with lo == hi.
ScoreDistribution BuildScoreDistribution(const std::vector<float>& scores,
                                         int bins = kScoreDistributionBins);

/// Returns the bin index of `value` in `dist` (clamped to the edge bins, so
/// online scores outside the calibration range accumulate in the extremes).
int ScoreDistributionBin(const ScoreDistribution& dist, double value);

/// Serializes a ScoreDistribution into a section payload (ByteWriter
/// format, versioned).
std::vector<char> EncodeScoreDistribution(const ScoreDistribution& dist);

/// Bounds-checked decode; returns false on truncation, version skew, a
/// non-finite range, or an implausible bin count (the caller treats that as
/// "no reference").
bool DecodeScoreDistribution(const std::vector<char>& payload,
                             ScoreDistribution* dist);

/// Writes `dist` as a "score_ref" section in a checkpoint container at
/// `path` (atomic tmp+rename). Returns false on I/O failure.
bool SaveScoreDistribution(const ScoreDistribution& dist,
                           const std::string& path);

/// Loads a container written by SaveScoreDistribution. Returns false — with
/// a reason in `error` if non-null — on a missing file, a corrupt
/// container/section, or a decode failure; `dist` is untouched then.
bool LoadScoreDistribution(const std::string& path, ScoreDistribution* dist,
                           std::string* error = nullptr);

}  // namespace tfmae::core

#endif  // TFMAE_CORE_DRIFT_H_
