#include "core/model.h"

#include <numeric>

#include "tensor/capture.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::core {
namespace {

// Positions 0..length-1 (full-sequence positional decoration).
std::vector<std::int64_t> AllPositions(std::int64_t length) {
  std::vector<std::int64_t> positions(static_cast<std::size_t>(length));
  std::iota(positions.begin(), positions.end(), 0);
  return positions;
}

}  // namespace

TfmaeModel::TfmaeModel(std::int64_t num_features, const TfmaeConfig& config,
                       Rng* rng)
    : num_features_(num_features),
      config_(config),
      temporal_proj_(num_features, config.model_dim, rng),
      frequency_proj_(num_features, config.model_dim, rng),
      temporal_encoder_(config.num_layers, config.model_dim, config.num_heads,
                        config.ff_hidden, rng),
      temporal_decoder_(config.num_layers, config.model_dim, config.num_heads,
                        config.ff_hidden, rng),
      frequency_decoder_(config.num_layers, config.model_dim, config.num_heads,
                         config.ff_hidden, rng) {
  TFMAE_CHECK(num_features >= 1);
  temporal_mask_token_ = RegisterParameter(
      "temporal_mask_token",
      Tensor::Randn({config.model_dim}, rng, 0.02f));
  frequency_token_re_ = RegisterParameter(
      "frequency_token_re", Tensor::Randn({num_features}, rng, 0.02f));
  frequency_token_im_ = RegisterParameter(
      "frequency_token_im", Tensor::Randn({num_features}, rng, 0.02f));
  RegisterModule("temporal_proj", &temporal_proj_);
  RegisterModule("frequency_proj", &frequency_proj_);
  RegisterModule("temporal_encoder", &temporal_encoder_);
  RegisterModule("temporal_decoder", &temporal_decoder_);
  RegisterModule("frequency_decoder", &frequency_decoder_);
}

std::vector<int> TfmaeModel::ScoreHeadParameterIndices() const {
  const std::string last = "layer" + std::to_string(config_.num_layers - 1);
  const std::string temporal_prefix = "temporal_decoder." + last + ".";
  const std::string frequency_prefix = "frequency_decoder." + last + ".";
  std::vector<int> out;
  const auto named = NamedParameters();
  for (std::size_t i = 0; i < named.size(); ++i) {
    const std::string& name = named[i].first;
    if (name.rfind(temporal_prefix, 0) == 0 ||
        name.rfind(frequency_prefix, 0) == 0) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

MaskedWindow TfmaeModel::PrepareWindow(const std::vector<float>& values,
                                       Rng* mask_rng) const {
  MaskedWindow window;
  window.num_features = num_features_;
  TFMAE_CHECK_MSG(
      static_cast<std::int64_t>(values.size()) % num_features_ == 0,
      "window size not a multiple of the feature count");
  window.length = static_cast<std::int64_t>(values.size()) / num_features_;
  TFMAE_CHECK(window.length >= 2);
  window.values = values;

  if (config_.use_temporal_branch) {
    window.temporal = masking::ComputeTemporalMask(
        values, window.length, num_features_, config_.cv_window,
        config_.temporal_mask_ratio, config_.temporal_mask, config_.cv_method,
        mask_rng);
  } else {
    // Unmasked pass-through: everything is "unmasked".
    window.temporal.unmasked = AllPositions(window.length);
  }

  if (config_.use_frequency_branch) {
    window.frequency.reserve(static_cast<std::size_t>(num_features_));
    std::vector<float> column(static_cast<std::size_t>(window.length));
    for (std::int64_t n = 0; n < num_features_; ++n) {
      for (std::int64_t t = 0; t < window.length; ++t) {
        column[static_cast<std::size_t>(t)] =
            values[static_cast<std::size_t>(t * num_features_ + n)];
      }
      window.frequency.push_back(masking::MaskFrequencyColumn(
          column, config_.frequency_mask_ratio, config_.frequency_mask,
          mask_rng));
    }
  }
  return window;
}

Tensor TfmaeModel::TemporalView(const MaskedWindow& window) const {
  const std::int64_t t_len = window.length;
  ops::capture::TagNextInput(ops::capture::InputTag::kTemporalValues);
  Tensor input = Tensor::FromData({t_len, num_features_}, window.values);

  if (!config_.use_temporal_branch) {
    // "w/o Tem": the view degrades to the decorated input projection.
    Tensor projected = temporal_proj_.Forward(input);
    return nn::AddPositionalEncoding(projected, AllPositions(t_len));
  }

  const auto& mask = window.temporal;
  Tensor full;
  if (mask.masked.empty()) {
    Tensor projected = temporal_proj_.Forward(input);
    Tensor decorated =
        nn::AddPositionalEncoding(projected, AllPositions(t_len));
    full = config_.use_temporal_encoder
               ? temporal_encoder_.Forward(decorated)
               : decorated;
  } else {
    // Unmasked tokens: project, decorate, encode (Eq. (3) + encoder).
    Tensor unmasked_input = ops::IndexRows(input, mask.unmasked);
    Tensor unmasked = temporal_proj_.Forward(unmasked_input);
    unmasked = nn::AddPositionalEncoding(unmasked, mask.unmasked);
    if (config_.use_temporal_encoder) {
      unmasked = temporal_encoder_.Forward(unmasked);
    }
    // Masked tokens: learnable m^(T) decorated with the original location.
    Tensor masked = ops::RepeatRow(
        temporal_mask_token_, static_cast<std::int64_t>(mask.masked.size()));
    masked = nn::AddPositionalEncoding(masked, mask.masked);
    // Insert masked representations into the encoded unmasked ones (the ||
    // operation of Fig. 5).
    full = ops::Add(ops::ScatterRows(unmasked, mask.unmasked, t_len),
                    ops::ScatterRows(masked, mask.masked, t_len));
  }
  if (config_.use_temporal_decoder) {
    full = temporal_decoder_.Forward(full);
  }
  return full;
}

Tensor TfmaeModel::FrequencyView(const MaskedWindow& window) const {
  const std::int64_t t_len = window.length;

  if (!config_.use_frequency_branch) {
    // "w/o Fre": the view degrades to the decorated input projection.
    ops::capture::TagNextInput(ops::capture::InputTag::kTemporalValues);
    Tensor input = Tensor::FromData({t_len, num_features_}, window.values);
    Tensor projected = frequency_proj_.Forward(input);
    return nn::AddPositionalEncoding(projected, AllPositions(t_len));
  }

  TFMAE_CHECK(static_cast<std::int64_t>(window.frequency.size()) ==
              num_features_);
  // Assemble the frequency-masked series: base + Re(m) * C + Im(m) * S,
  // where the coefficient matrices collect the masked bins' basis functions
  // per feature (see masking/frequency_mask.h).
  std::vector<float> base(static_cast<std::size_t>(t_len * num_features_));
  std::vector<float> cos_coef(base.size());
  std::vector<float> sin_coef(base.size());
  for (std::int64_t n = 0; n < num_features_; ++n) {
    const auto& column = window.frequency[static_cast<std::size_t>(n)];
    for (std::int64_t t = 0; t < t_len; ++t) {
      const std::size_t flat = static_cast<std::size_t>(t * num_features_ + n);
      base[flat] = column.base[static_cast<std::size_t>(t)];
      cos_coef[flat] = column.cos_coef[static_cast<std::size_t>(t)];
      sin_coef[flat] = column.sin_coef[static_cast<std::size_t>(t)];
    }
  }
  ops::capture::TagNextInput(ops::capture::InputTag::kFreqBase);
  Tensor base_t = Tensor::FromData({t_len, num_features_}, base);
  ops::capture::TagNextInput(ops::capture::InputTag::kFreqCos);
  Tensor cos_t = Tensor::FromData({t_len, num_features_}, cos_coef);
  ops::capture::TagNextInput(ops::capture::InputTag::kFreqSin);
  Tensor sin_t = Tensor::FromData({t_len, num_features_}, sin_coef);
  Tensor masked_series =
      ops::Add(base_t, ops::Add(ops::Mul(cos_t, frequency_token_re_),
                                ops::Mul(sin_t, frequency_token_im_)));

  Tensor projected = frequency_proj_.Forward(masked_series);  // Eq. (10)
  Tensor decorated =
      nn::AddPositionalEncoding(projected, AllPositions(t_len));  // Eq. (11)
  if (config_.use_frequency_decoder) {
    decorated = frequency_decoder_.Forward(decorated);
  }
  return decorated;
}

TfmaeModel::Views TfmaeModel::Forward(const MaskedWindow& window) const {
  Views views;
  views.temporal = TemporalView(window);
  views.frequency = FrequencyView(window);
  return views;
}

Tensor TfmaeModel::Loss(const Views& views) const {
  const Tensor& p = views.temporal;
  const Tensor& f = views.frequency;
  if (!config_.use_adversarial) {
    // Eq. (14) with the temporal gradient halted.
    Tensor loss = ops::SymmetricKlLoss(p.Detach(), f);
    if (config_.joint_alignment) {
      loss = ops::Add(loss, ops::SymmetricKlLoss(f.Detach(), p));
    }
    return loss;
  }
  Tensor minimize_stage;
  Tensor maximize_stage;
  if (!config_.reverse_adversarial) {
    // Eq. (15): minimize w.r.t. F^(L) (temporal side acts as the label),
    // maximize w.r.t. P^(L) (frequency side detached).
    minimize_stage = ops::SymmetricKlLoss(p.Detach(), f);
    maximize_stage = ops::SymmetricKlLoss(p, f.Detach());
  } else {
    // "w/ L_radv": swapped roles.
    minimize_stage = ops::SymmetricKlLoss(f.Detach(), p);
    maximize_stage = ops::SymmetricKlLoss(f, p.Detach());
  }
  if (config_.joint_alignment) {
    minimize_stage = ops::Add(
        minimize_stage,
        ops::SymmetricKlLoss(config_.reverse_adversarial ? p.Detach()
                                                         : f.Detach(),
                             config_.reverse_adversarial ? f : p));
  }
  return ops::Sub(minimize_stage,
                  ops::Scale(maximize_stage, config_.adversarial_weight));
}

std::vector<float> TfmaeModel::ScoreWindow(const MaskedWindow& window) const {
  NoGradGuard no_grad;
  const Views views = Forward(window);
  return ops::SymmetricKlPerRow(views.temporal, views.frequency);
}

}  // namespace tfmae::core
