// Crash-safe training checkpoints for TfmaeDetector::Fit (docs/RESILIENCE.md).
//
// A TrainingCheckpoint bundles everything the training loop needs to
// continue bitwise-identically to an uninterrupted run: network weights,
// Adam moments and step counter, the full RNG engine state, and the
// in-epoch progress (epoch, shuffled window order, position, running loss
// accumulator). Resume re-derives the rest — normalizer statistics, window
// slices, masks — deterministically from the training data and config, and
// a CRC of the config text guards against resuming under a different
// architecture or training recipe.
//
// Bundles persist as a single util/checkpoint_file.h container (atomic
// replace, CRC per section), named "ckpt_<step>.tfmae" inside a checkpoint
// directory. Recovery policy: FindLatestValidCheckpoint walks the directory
// from the highest step down and returns the first bundle that passes full
// validation, so a torn or bit-flipped newest file silently falls back to
// the previous good one.
#ifndef TFMAE_CORE_CHECKPOINT_H_
#define TFMAE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nn/adam.h"
#include "util/rng.h"

namespace tfmae::core {

/// Position inside the training loop at checkpoint time. `next_window`
/// indexes into `order`; checkpoints are only cut at optimizer-step
/// boundaries, so there is never partially accumulated gradient to persist.
struct TrainingProgress {
  std::int64_t epoch = 0;       ///< epoch currently in progress
  std::int64_t next_window = 0; ///< next index into `order` to train on
  std::int64_t steps = 0;       ///< optimizer steps completed so far
  double loss_sum = 0.0;        ///< loss accumulated over this epoch so far
  double mean_loss_first_epoch = 0.0;  ///< TrainStats carry-over
  std::vector<std::int64_t> order;     ///< this epoch's shuffled window order
};

/// The complete resumable training state.
struct TrainingCheckpoint {
  std::uint32_t config_crc = 0;   ///< Crc32 of ConfigToString(config)
  std::int64_t num_features = 0;  ///< input width; guards architecture reuse
  TrainingProgress progress;
  Rng::State rng;                 ///< detector RNG, post-window-preparation
  nn::AdamState adam;
  std::vector<char> weights;      ///< nn::EncodeParameters payload
};

/// Writes the bundle to `path` atomically. Returns false on I/O failure
/// (any previous file at `path` survives).
bool SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                            const std::string& path);

/// Opens and fully validates one bundle; nullopt (reason in `*error`) on
/// corruption or version/format mismatch.
std::optional<TrainingCheckpoint> LoadTrainingCheckpoint(
    const std::string& path, std::string* error = nullptr);

/// "<dir>/ckpt_<step padded to 8>.tfmae".
std::string TrainingCheckpointPath(const std::string& dir, std::int64_t step);

/// Newest fully-valid checkpoint in `dir` (highest step first, walking down
/// past corrupt/truncated files). nullopt when none validates.
std::optional<std::pair<std::string, TrainingCheckpoint>>
FindLatestValidCheckpoint(const std::string& dir, std::string* error = nullptr);

/// Deletes all but the `keep_last` highest-step "ckpt_*.tfmae" files.
void PruneTrainingCheckpoints(const std::string& dir, int keep_last);

}  // namespace tfmae::core

#endif  // TFMAE_CORE_CHECKPOINT_H_
