#include "data/timeseries.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tfmae::data {

TimeSeries TimeSeries::Zeros(std::int64_t length, std::int64_t num_features) {
  TFMAE_CHECK(length >= 0 && num_features >= 1);
  TimeSeries ts;
  ts.length = length;
  ts.num_features = num_features;
  ts.values.assign(static_cast<std::size_t>(length * num_features), 0.0f);
  return ts;
}

double TimeSeries::AnomalyRatio() const {
  if (labels.empty() || length == 0) return 0.0;
  std::int64_t count = 0;
  for (std::uint8_t label : labels) count += label;
  return static_cast<double>(count) / static_cast<double>(length);
}

TimeSeries TimeSeries::Slice(std::int64_t start, std::int64_t len) const {
  TFMAE_CHECK(start >= 0 && len >= 0 && start + len <= length);
  TimeSeries out;
  out.length = len;
  out.num_features = num_features;
  out.values.assign(
      values.begin() + static_cast<std::ptrdiff_t>(start * num_features),
      values.begin() +
          static_cast<std::ptrdiff_t>((start + len) * num_features));
  if (!labels.empty()) {
    out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(start),
                      labels.begin() + static_cast<std::ptrdiff_t>(start + len));
  }
  return out;
}

void ZScoreNormalizer::Fit(const TimeSeries& train) {
  TFMAE_CHECK(train.length > 0);
  const std::int64_t n_feat = train.num_features;
  means_.assign(static_cast<std::size_t>(n_feat), 0.0f);
  stds_.assign(static_cast<std::size_t>(n_feat), 1.0f);
  for (std::int64_t n = 0; n < n_feat; ++n) {
    double sum = 0.0;
    for (std::int64_t t = 0; t < train.length; ++t) sum += train.at(t, n);
    const double mean = sum / static_cast<double>(train.length);
    double sq = 0.0;
    for (std::int64_t t = 0; t < train.length; ++t) {
      const double d = train.at(t, n) - mean;
      sq += d * d;
    }
    const double std_dev =
        std::sqrt(sq / static_cast<double>(train.length));
    means_[static_cast<std::size_t>(n)] = static_cast<float>(mean);
    stds_[static_cast<std::size_t>(n)] =
        std_dev < 1e-6 ? 1.0f : static_cast<float>(std_dev);
  }
}

void ZScoreNormalizer::SetStatistics(std::vector<float> means,
                                     std::vector<float> stds) {
  TFMAE_CHECK(means.size() == stds.size() && !means.empty());
  for (float s : stds) TFMAE_CHECK_MSG(s > 0.0f, "non-positive std");
  means_ = std::move(means);
  stds_ = std::move(stds);
}

TimeSeries ZScoreNormalizer::Apply(const TimeSeries& series) const {
  TFMAE_CHECK_MSG(static_cast<std::size_t>(series.num_features) ==
                      means_.size(),
                  "normalizer fitted on a different feature count");
  TimeSeries out = series;
  for (std::int64_t t = 0; t < out.length; ++t) {
    for (std::int64_t n = 0; n < out.num_features; ++n) {
      out.at(t, n) = (out.at(t, n) - means_[static_cast<std::size_t>(n)]) /
                     stds_[static_cast<std::size_t>(n)];
    }
  }
  return out;
}

std::vector<std::int64_t> WindowStarts(std::int64_t length,
                                       std::int64_t window,
                                       std::int64_t stride) {
  TFMAE_CHECK(window >= 1 && stride >= 1);
  std::vector<std::int64_t> starts;
  if (length < window) return starts;
  std::int64_t start = 0;
  for (; start + window <= length; start += stride) starts.push_back(start);
  if (starts.back() + window != length) starts.push_back(length - window);
  return starts;
}

}  // namespace tfmae::data
