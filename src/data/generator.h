// Synthetic base-signal generation.
//
// Channels are sums of a few sinusoidal harmonics (random period, phase,
// amplitude) plus AR(1) noise and an optional slow drift — the canonical
// structure of the machine/server telemetry the paper's benchmarks record.
// A controllable level/scale change emulates the train-to-test distribution
// shift the paper studies (Figs. 1 and 9).
#ifndef TFMAE_DATA_GENERATOR_H_
#define TFMAE_DATA_GENERATOR_H_

#include <cstdint>

#include "data/timeseries.h"
#include "util/rng.h"

namespace tfmae::data {

/// Configuration of the base (anomaly-free) signal.
struct BaseSignalConfig {
  std::int64_t length = 0;
  std::int64_t num_features = 1;
  /// Sinusoidal components per channel.
  // Periods are chosen to fit inside typical detection windows (the scaled
  // default window is 50 steps), so every window sees full cycles.
  int num_harmonics = 2;
  double min_period = 12.0;
  double max_period = 40.0;
  double min_amplitude = 0.5;
  double max_amplitude = 1.5;
  /// AR(1) noise: x_t = ar_coefficient * x_{t-1} + N(0, noise_std).
  double noise_std = 0.08;
  double ar_coefficient = 0.6;
  /// Slow per-channel linear drift, stddev of slope per 1000 steps.
  double drift_std = 0.0;
  /// Recurring benign transients: short pulse events with a fixed per-run
  /// template that recur throughout the series (train and test alike) —
  /// routine operational events such as log rotation or maintenance spikes.
  /// They are NOT anomalies: models must learn them as normal, which is
  /// what separates learned detectors from purely local saliency methods.
  /// Expected number of events per 100 steps (0 disables).
  double benign_event_rate = 0.0;
  /// Pulse amplitude in units of the channel's oscillation amplitude.
  double benign_event_amplitude = 1.5;
  /// Pulse length in steps.
  std::int64_t benign_event_length = 8;
  std::uint64_t seed = 1;
};

/// Generates an anomaly-free series according to `config`.
TimeSeries GenerateBaseSignal(const BaseSignalConfig& config);

/// Applies a distribution shift in place: values become
/// (value * scale) + level_offset for every time step. Used on test slices
/// to emulate the train-to-test shift of Fig. 1/9.
void ApplyDistributionShift(TimeSeries* series, double scale,
                            double level_offset);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_GENERATOR_H_
