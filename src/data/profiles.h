// Benchmark dataset profiles.
//
// The paper evaluates on MSL, SMAP (NASA), PSM (eBay), SMD, SWaT, and the
// two synthetic NIPS-TS sets. The raw proprietary datasets are not
// redistributable offline, so each profile configures the synthetic
// substrate to match that dataset's published characteristics: feature
// count, anomaly ratio, dominant anomaly families (per the source papers'
// descriptions), and the presence of train-to-test distribution shift.
// Lengths are scaled down ~20-100x for the single-core CPU substrate; the
// `scale` argument lets benches grow them back.
#ifndef TFMAE_DATA_PROFILES_H_
#define TFMAE_DATA_PROFILES_H_

#include <string>
#include <vector>

#include "data/anomaly.h"
#include "data/generator.h"
#include "data/timeseries.h"

namespace tfmae::data {

/// The paper's seven benchmark datasets (Table II).
enum class BenchmarkDataset {
  kMsl,
  kPsm,
  kSmd,
  kSwat,
  kSmap,
  kNipsTsGlobal,
  kNipsTsSeasonal,
};

/// All datasets used in the main comparison (Table III order).
std::vector<BenchmarkDataset> MainDatasets();

/// Short name matching the paper's tables ("MSL", "PSM", ...).
std::string DatasetName(BenchmarkDataset dataset);

/// Full recipe for simulating one benchmark dataset.
struct DatasetProfile {
  std::string name;
  BaseSignalConfig base;          // length is filled per split
  std::int64_t train_length = 0;
  std::int64_t val_length = 0;
  std::int64_t test_length = 0;
  double test_anomaly_ratio = 0.1;
  /// Anomalies present (unlabeled, as contamination) in train/val — the
  /// source of the paper's "abnormal bias" challenge.
  double train_contamination = 0.02;
  AnomalyMix mix;
  AnomalyOptions anomaly_options;
  /// Distribution shift applied to the test slice (scale=1, level=0: none).
  double test_shift_scale = 1.0;
  double test_shift_level = 0.0;
  std::uint64_t seed = 7;
};

/// Train/val/test splits with labels. Train/val labels record the injected
/// contamination (models must not read them); test labels are ground truth.
struct LabeledDataset {
  std::string name;
  TimeSeries train;
  TimeSeries val;
  TimeSeries test;
};

/// Profile for `dataset`, with all split lengths multiplied by `scale`.
DatasetProfile GetProfile(BenchmarkDataset dataset, double scale = 1.0);

/// Generates the dataset: one continuous base signal split into train/val/
/// test (so the splits share channel structure), shift applied to the test
/// slice, anomalies injected per split.
LabeledDataset MakeDataset(const DatasetProfile& profile);

/// Convenience: MakeDataset(GetProfile(dataset, scale)).
LabeledDataset MakeBenchmarkDataset(BenchmarkDataset dataset,
                                    double scale = 1.0);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_PROFILES_H_
