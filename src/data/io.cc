#include "data/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace tfmae::data {

bool SaveCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  const bool with_labels = !series.labels.empty();
  for (std::int64_t n = 0; n < series.num_features; ++n) {
    if (n != 0) file << ',';
    file << 'f' << n;
  }
  if (with_labels) file << ",label";
  file << '\n';
  for (std::int64_t t = 0; t < series.length; ++t) {
    for (std::int64_t n = 0; n < series.num_features; ++n) {
      if (n != 0) file << ',';
      file << series.at(t, n);
    }
    if (with_labels) {
      file << ',' << static_cast<int>(series.labels[static_cast<std::size_t>(t)]);
    }
    file << '\n';
  }
  return static_cast<bool>(file);
}

std::optional<TimeSeries> LoadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::string line;
  if (!std::getline(file, line)) return std::nullopt;

  // Parse header.
  std::vector<std::string> columns;
  {
    std::stringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) columns.push_back(cell);
  }
  if (columns.empty()) return std::nullopt;
  const bool with_labels = columns.back() == "label";
  const std::int64_t num_features =
      static_cast<std::int64_t>(columns.size()) - (with_labels ? 1 : 0);
  if (num_features < 1) return std::nullopt;

  TimeSeries series;
  series.num_features = num_features;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string cell;
    for (std::int64_t n = 0; n < num_features; ++n) {
      if (!std::getline(row, cell, ',')) return std::nullopt;
      try {
        series.values.push_back(std::stof(cell));
      } catch (...) {
        return std::nullopt;
      }
    }
    if (with_labels) {
      if (!std::getline(row, cell, ',')) return std::nullopt;
      series.labels.push_back(cell == "1" ? 1 : 0);
    }
    ++series.length;
  }
  return series;
}

}  // namespace tfmae::data
