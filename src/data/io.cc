#include "data/io.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/fault.h"

namespace tfmae::data {
namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool IsMissingCell(const std::string& cell) {
  if (cell.empty()) return true;
  std::string lower;
  lower.reserve(cell.size());
  for (char c : cell) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower == "nan" || lower == "na" || lower == "null";
}

/// Strict full-cell float parse; std::stof would silently accept trailing
/// garbage ("1.5abc") and throw on others, hiding WHERE the input is bad.
bool ParseFloatCell(const std::string& cell, float* out) {
  const char* text = cell.c_str();
  char* parse_end = nullptr;
  errno = 0;
  const float value = std::strtof(text, &parse_end);
  if (parse_end == text || *parse_end != '\0') return false;
  *out = value;
  return true;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream row(line);
  while (std::getline(row, cell, ',')) cells.push_back(Trim(cell));
  // "a,b," has three cells; std::getline reports two. An empty trailing cell
  // matters here because empty means "missing value", not "no cell".
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::optional<TimeSeries> Fail(CsvDiagnostic* diagnostic, std::int64_t line,
                               const std::string& message) {
  if (diagnostic != nullptr) {
    diagnostic->line = line;
    diagnostic->message = message;
  }
  return std::nullopt;
}

}  // namespace

bool SaveCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  const bool with_labels = !series.labels.empty();
  for (std::int64_t n = 0; n < series.num_features; ++n) {
    if (n != 0) file << ',';
    file << 'f' << n;
  }
  if (with_labels) file << ",label";
  file << '\n';
  for (std::int64_t t = 0; t < series.length; ++t) {
    for (std::int64_t n = 0; n < series.num_features; ++n) {
      if (n != 0) file << ',';
      file << series.at(t, n);
    }
    if (with_labels) {
      file << ',' << static_cast<int>(series.labels[static_cast<std::size_t>(t)]);
    }
    file << '\n';
  }
  return static_cast<bool>(file);
}

std::optional<TimeSeries> LoadCsv(const std::string& path,
                                  CsvDiagnostic* diagnostic) {
  if (diagnostic != nullptr) *diagnostic = CsvDiagnostic{};
  std::ifstream file(path);
  if (!file) return Fail(diagnostic, 0, "cannot open " + path);
  std::string line;
  std::int64_t line_number = 1;
  if (!std::getline(file, line)) {
    return Fail(diagnostic, 1, "empty file (no header line)");
  }

  const std::vector<std::string> columns = SplitCsvLine(line);
  if (columns.empty()) return Fail(diagnostic, 1, "empty header line");
  const bool with_labels = columns.back() == "label";
  const std::int64_t num_features =
      static_cast<std::int64_t>(columns.size()) - (with_labels ? 1 : 0);
  if (num_features < 1) {
    return Fail(diagnostic, 1, "header declares no feature columns");
  }
  const std::size_t expected_cells = columns.size();

  TimeSeries series;
  series.num_features = num_features;
  while (std::getline(file, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;  // blank separator lines are fine
    if (TFMAE_FAULT("data.csv_row")) {
      return Fail(diagnostic, line_number, "injected I/O fault (data.csv_row)");
    }
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != expected_cells) {
      std::ostringstream why;
      why << "ragged row: expected " << expected_cells << " cells, got "
          << cells.size();
      return Fail(diagnostic, line_number, why.str());
    }
    for (std::int64_t n = 0; n < num_features; ++n) {
      const std::string& cell = cells[static_cast<std::size_t>(n)];
      if (IsMissingCell(cell)) {
        series.values.push_back(std::numeric_limits<float>::quiet_NaN());
        if (diagnostic != nullptr) ++diagnostic->missing_values;
        continue;
      }
      float value = 0.0f;
      if (!ParseFloatCell(cell, &value)) {
        return Fail(diagnostic, line_number,
                    "non-numeric cell \"" + cell + "\" in column " +
                        columns[static_cast<std::size_t>(n)]);
      }
      series.values.push_back(value);
    }
    if (with_labels) {
      const std::string& cell = cells.back();
      if (cell != "0" && cell != "1") {
        return Fail(diagnostic, line_number,
                    "label cell \"" + cell + "\" is not 0 or 1");
      }
      series.labels.push_back(cell == "1" ? 1 : 0);
    }
    ++series.length;
    if (diagnostic != nullptr) ++diagnostic->rows;
  }
  return series;
}

std::int64_t ImputeMissingLocf(TimeSeries* series) {
  std::int64_t imputed = 0;
  for (std::int64_t n = 0; n < series->num_features; ++n) {
    // Forward pass: carry the last finite value over gaps.
    bool have_good = false;
    float carry = 0.0f;
    for (std::int64_t t = 0; t < series->length; ++t) {
      float& value = series->at(t, n);
      if (std::isfinite(value)) {
        have_good = true;
        carry = value;
      } else if (have_good) {
        value = carry;
        ++imputed;
      }
    }
    if (!have_good) {
      // No finite value anywhere in this feature: zero-fill (already counted
      // nothing yet — count every row).
      for (std::int64_t t = 0; t < series->length; ++t) {
        series->at(t, n) = 0.0f;
        ++imputed;
      }
      continue;
    }
    // Backward pass: fill the leading gap from the first finite value.
    have_good = false;
    for (std::int64_t t = series->length - 1; t >= 0; --t) {
      float& value = series->at(t, n);
      if (std::isfinite(value)) {
        have_good = true;
        carry = value;
      } else if (have_good) {
        value = carry;
        ++imputed;
      }
    }
  }
  return imputed;
}

}  // namespace tfmae::data
