#include "data/anomaly.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tfmae::data {
namespace {

// Per-feature global mean/std of the series (used to size deviations).
struct FeatureStats {
  std::vector<double> mean;
  std::vector<double> std_dev;
};

FeatureStats ComputeStats(const TimeSeries& series) {
  FeatureStats stats;
  stats.mean.assign(static_cast<std::size_t>(series.num_features), 0.0);
  stats.std_dev.assign(static_cast<std::size_t>(series.num_features), 1.0);
  for (std::int64_t n = 0; n < series.num_features; ++n) {
    double sum = 0.0;
    for (std::int64_t t = 0; t < series.length; ++t) sum += series.at(t, n);
    const double mean = sum / static_cast<double>(series.length);
    double sq = 0.0;
    for (std::int64_t t = 0; t < series.length; ++t) {
      const double d = series.at(t, n) - mean;
      sq += d * d;
    }
    stats.mean[static_cast<std::size_t>(n)] = mean;
    stats.std_dev[static_cast<std::size_t>(n)] = std::max(
        1e-3, std::sqrt(sq / static_cast<double>(series.length)));
  }
  return stats;
}

std::vector<std::int64_t> PickFeatures(const TimeSeries& series,
                                       const AnomalyOptions& options,
                                       Rng* rng) {
  const std::int64_t count = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.feature_fraction *
                                   static_cast<double>(series.num_features)));
  return rng->SampleWithoutReplacement(series.num_features, count);
}

void MarkLabels(TimeSeries* series, std::int64_t start, std::int64_t len) {
  for (std::int64_t t = start; t < start + len; ++t) {
    series->labels[static_cast<std::size_t>(t)] = 1;
  }
}

}  // namespace

void InjectOne(TimeSeries* series, AnomalyType type,
               const AnomalyOptions& options, Rng* rng) {
  TFMAE_CHECK(series != nullptr && series->length > 2);
  if (series->labels.empty()) {
    series->labels.assign(static_cast<std::size_t>(series->length), 0);
  }
  const FeatureStats stats = ComputeStats(*series);
  const std::vector<std::int64_t> features = PickFeatures(*series, options, rng);

  switch (type) {
    case AnomalyType::kGlobalPoint: {
      const std::int64_t t =
          static_cast<std::int64_t>(rng->UniformInt(
              static_cast<std::uint64_t>(series->length)));
      for (std::int64_t n : features) {
        const double sigma = stats.std_dev[static_cast<std::size_t>(n)];
        const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
        series->at(t, n) += static_cast<float>(
            sign * options.magnitude * sigma * rng->Uniform(1.0, 1.8));
      }
      MarkLabels(series, t, 1);
      break;
    }
    case AnomalyType::kContextual: {
      // A short burst (2-5 steps) at a level that is plausible globally but
      // wrong for the local phase: invisible to pointwise detectors, visible
      // to local-fluctuation statistics.
      const std::int64_t len = 2 + static_cast<std::int64_t>(
                                       rng->UniformInt(4));
      const std::int64_t t =
          static_cast<std::int64_t>(rng->UniformInt(
              static_cast<std::uint64_t>(series->length - len)));
      for (std::int64_t n : features) {
        const double sigma = stats.std_dev[static_cast<std::size_t>(n)];
        const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
        const double level = stats.mean[static_cast<std::size_t>(n)] +
                             sign * sigma * rng->Uniform(1.0, 1.6);
        // Incident segments are noisy (thrashing), not flat: jitter keeps
        // the local dispersion statistics elevated inside the burst.
        for (std::int64_t k = t; k < t + len; ++k) {
          series->at(k, n) = static_cast<float>(
              level + rng->Normal(0.0, 0.5 * sigma));
        }
      }
      MarkLabels(series, t, len);
      break;
    }
    case AnomalyType::kSeasonal: {
      const std::int64_t len = options.min_segment +
                               static_cast<std::int64_t>(rng->UniformInt(
                                   static_cast<std::uint64_t>(
                                       options.max_segment -
                                       options.min_segment + 1)));
      const std::int64_t start =
          static_cast<std::int64_t>(rng->UniformInt(
              static_cast<std::uint64_t>(series->length - len)));
      // Replace the segment's oscillation with one 2-4x faster, preserving
      // the local level.
      const double speedup = rng->Uniform(2.0, 4.0);
      for (std::int64_t n : features) {
        const double sigma = stats.std_dev[static_cast<std::size_t>(n)];
        double level = 0.0;
        for (std::int64_t t = start; t < start + len; ++t) {
          level += series->at(t, n);
        }
        level /= static_cast<double>(len);
        const double phase = rng->Uniform(0.0, 2.0 * M_PI);
        for (std::int64_t t = start; t < start + len; ++t) {
          const double osc = std::sin(
              speedup * 2.0 * M_PI * static_cast<double>(t - start) /
                  static_cast<double>(len) * 4.0 +
              phase);
          series->at(t, n) = static_cast<float>(level + sigma * osc);
        }
      }
      MarkLabels(series, start, len);
      break;
    }
    case AnomalyType::kTrend: {
      const std::int64_t len = options.min_segment +
                               static_cast<std::int64_t>(rng->UniformInt(
                                   static_cast<std::uint64_t>(
                                       options.max_segment -
                                       options.min_segment + 1)));
      const std::int64_t start =
          static_cast<std::int64_t>(rng->UniformInt(
              static_cast<std::uint64_t>(series->length - len)));
      for (std::int64_t n : features) {
        const double sigma = stats.std_dev[static_cast<std::size_t>(n)];
        const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
        const double slope =
            sign * options.magnitude * sigma / static_cast<double>(len);
        for (std::int64_t t = start; t < start + len; ++t) {
          series->at(t, n) +=
              static_cast<float>(slope * static_cast<double>(t - start + 1));
        }
      }
      MarkLabels(series, start, len);
      break;
    }
    case AnomalyType::kShapelet: {
      const std::int64_t len = options.min_segment +
                               static_cast<std::int64_t>(rng->UniformInt(
                                   static_cast<std::uint64_t>(
                                       options.max_segment -
                                       options.min_segment + 1)));
      const std::int64_t start =
          static_cast<std::int64_t>(rng->UniformInt(
              static_cast<std::uint64_t>(series->length - len)));
      // Replace the waveform with a flat-topped square-ish shape at the
      // local level — a shape that never occurs in the smooth base signal.
      for (std::int64_t n : features) {
        const double sigma = stats.std_dev[static_cast<std::size_t>(n)];
        double level = 0.0;
        for (std::int64_t t = start; t < start + len; ++t) {
          level += series->at(t, n);
        }
        level /= static_cast<double>(len);
        const double amp = sigma * rng->Uniform(0.8, 1.5);
        for (std::int64_t t = start; t < start + len; ++t) {
          const std::int64_t half = len / 2;
          const double square = (t - start) < half ? amp : -amp;
          series->at(t, n) = static_cast<float>(
              level + square + rng->Normal(0.0, 0.3 * sigma));
        }
      }
      MarkLabels(series, start, len);
      break;
    }
  }
}

std::int64_t InjectAnomalies(TimeSeries* series, const AnomalyMix& mix,
                             double target_ratio,
                             const AnomalyOptions& options, Rng* rng) {
  TFMAE_CHECK(series != nullptr && rng != nullptr);
  TFMAE_CHECK_MSG(target_ratio >= 0.0 && target_ratio < 0.8,
                  "implausible anomaly ratio " << target_ratio);
  if (series->labels.empty()) {
    series->labels.assign(static_cast<std::size_t>(series->length), 0);
  }
  const double total_weight = mix.global_point + mix.contextual +
                              mix.seasonal + mix.trend + mix.shapelet;
  if (total_weight <= 0.0 || target_ratio <= 0.0) return 0;

  std::int64_t injected = 0;
  // Cap the number of attempts so overlapping segments cannot loop forever.
  const std::int64_t max_attempts = 20 * series->length / options.min_segment;
  for (std::int64_t attempt = 0;
       attempt < max_attempts && series->AnomalyRatio() < target_ratio;
       ++attempt) {
    double pick = rng->Uniform(0.0, total_weight);
    AnomalyType type = AnomalyType::kGlobalPoint;
    if ((pick -= mix.global_point) < 0.0) {
      type = AnomalyType::kGlobalPoint;
    } else if ((pick -= mix.contextual) < 0.0) {
      type = AnomalyType::kContextual;
    } else if ((pick -= mix.seasonal) < 0.0) {
      type = AnomalyType::kSeasonal;
    } else if ((pick -= mix.trend) < 0.0) {
      type = AnomalyType::kTrend;
    } else {
      type = AnomalyType::kShapelet;
    }
    InjectOne(series, type, options, rng);
    ++injected;
  }
  return injected;
}

}  // namespace tfmae::data
